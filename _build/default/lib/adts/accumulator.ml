(** The accumulator ADT (paper Fig. 7) — the running example for the
    abstract-locking construction (Fig. 8).

    [increment(x)] adds [x] to the total and returns nothing; [read()]
    returns the total.  Increments commute with each other; reads commute
    with each other; an increment never commutes with a read. *)

open Commlat_core

type t = { mutable total : int }

let create () = { total = 0 }
let increment t x = t.total <- t.total + x
let read t = t.total
let reset t = t.total <- 0

let m_increment = Invocation.meth "increment" 1
let m_read = Invocation.meth ~mutates:false "read" 0
let methods = [ m_increment; m_read ]

(** Fig. 7: increments self-commute, reads self-commute, increment/read
    conflict unconditionally. *)
let spec () =
  let s = Spec.create ~adt:"accumulator" methods in
  Spec.add_sym s "increment" "increment" Formula.True;
  Spec.add_sym s "increment" "read" Formula.False;
  Spec.add_sym s "read" "read" Formula.True;
  s

let exec (t : t) name (args : Value.t array) =
  match (name, args) with
  | "increment", [| v |] ->
      increment t (Value.to_int v);
      Value.Unit
  | "read", [||] -> Value.Int (read t)
  | _ -> Value.type_error "accumulator: bad invocation %s" name

let invoke_increment (det : Detector.t) t ~txn x =
  let inv = Invocation.make ~txn m_increment [| Value.Int x |] in
  ignore (det.Detector.on_invoke inv (fun () -> exec t "increment" inv.Invocation.args))

let invoke_read (det : Detector.t) t ~txn =
  let inv = Invocation.make ~txn m_read [||] in
  Value.to_int (det.Detector.on_invoke inv (fun () -> exec t "read" inv.Invocation.args))

let undo (t : t) (inv : Invocation.t) =
  match inv.Invocation.meth.name with
  | "increment" -> increment t (-Value.to_int inv.Invocation.args.(0))
  | _ -> ()

let model () : History.model =
  let t = create () in
  {
    History.reset = (fun () -> reset t);
    apply = (fun name args -> exec t name (Array.of_list args));
    snapshot = (fun () -> Value.Int t.total);
  }
