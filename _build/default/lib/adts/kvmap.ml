(** A key-value map ADT — the "transactional collection class" shape of the
    boosting literature the paper builds on (Carlstrom et al., Herlihy &
    Koskinen; paper §6).  Not one of the paper's four case-study
    structures, but the canonical first ADT a library author adds, so it
    doubles as the worked example of the user-facing workflow: write the
    precise specification, derive the SIMPLE core, synthesize detectors.

    Methods: [put k v] (returns the previous binding), [get k],
    [remove k] (returns the removed binding), [size ()].

    The precise specification is ONLINE-CHECKABLE (conditions compare
    previous-binding return values); its SIMPLE core — key disequalities
    with [size] conflicting with mutators — is derived mechanically by
    {!Commlat_core.Strengthen.simple_spec} and admits the read/write
    key-locking scheme of Carlstrom et al. *)

open Commlat_core

type t = { tbl : Value.t Value.Tbl.t }

let create () = { tbl = Value.Tbl.create 64 }

let get t k = Value.Tbl.find_opt t.tbl k

let put t k v =
  let old = get t k in
  Value.Tbl.replace t.tbl k v;
  old

let remove t k =
  let old = get t k in
  (match old with Some _ -> Value.Tbl.remove t.tbl k | None -> ());
  old

let size t = Value.Tbl.length t.tbl

let bindings t =
  Value.Tbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

let clear t = Value.Tbl.reset t.tbl

(* ------------------------------------------------------------------ *)
(* Methods and specifications                                          *)
(* ------------------------------------------------------------------ *)

let m_put = Invocation.meth "put" 2
let m_get = Invocation.meth ~mutates:false "get" 1
let m_remove = Invocation.meth "remove" 1
let m_size = Invocation.meth ~mutates:false "size" 0
let methods = [ m_put; m_get; m_remove; m_size ]

(** The precise specification.  [put]'s return value (the previous
    binding) and the written value both matter:

    - two puts commute iff keys differ, or both wrote the value the other
      one's return reports unchanged — we use the sound and nearly precise
      "keys differ or both stores wrote equal values and saw equal previous
      bindings";
    - put/get: keys differ, or the get saw exactly what the put wrote
      (then swapping changes nothing)… which is not expressible without
      comparing [r2] to [v1[1]]; both are plain values, so it is;
    - remove behaves as a put of "absent";
    - [size] commutes with mutations that did not change the domain
      (a put whose return was [Some _], a remove that returned [None]). *)
let precise_spec () =
  let open Formula in
  let k1 = arg1 0 and k2 = arg2 0 in
  let v1 = arg1 1 and v2 = arg2 1 in
  let s =
    Spec.create
      ~vfuns:
        [ ("some", function [ v ] -> Value.Opt (Some v) | _ -> Value.type_error "some/1") ]
      ~adt:"kvmap" methods
  in
  let keys_differ = ne k1 k2 in
  (* put ; put : different keys, or same value written and same previous
     binding observed (the second put is then a no-op replay) *)
  Spec.add_sym s "put" "put" (keys_differ ||| (eq v1 v2 &&& eq ret1 ret2));
  (* put ; get : different keys, or the put was a no-op (it re-wrote the
     binding it found: r1 = Some v1), in which case the get is unaffected
     by the swap *)
  Spec.add_sym s "put" "get" (keys_differ ||| eq ret1 (vfun "some" [ v1 ]));
  (* put ; remove : different keys only (a remove after a put undoes it) *)
  Spec.add_sym s "put" "remove" keys_differ;
  (* remove ; remove : different keys, or both found nothing *)
  Spec.add_sym s "remove" "remove"
    (keys_differ ||| (eq ret1 (const (Value.Opt None)) &&& eq ret2 (const (Value.Opt None))));
  (* remove ; get : different keys, or the key was already absent *)
  Spec.add_sym s "remove" "get" (keys_differ ||| eq ret1 (const (Value.Opt None)));
  Spec.add_sym s "get" "get" True;
  (* size vs mutators: commutes when the domain did not change *)
  Spec.add_sym s "size" "size" True;
  Spec.add_sym s "size" "get" True;
  (* put that replaced an existing binding keeps the domain: r != None *)
  Spec.add_directed s ~first:"put" ~second:"size"
    (ne ret1 (const (Value.Opt None)));
  Spec.add_directed s ~first:"size" ~second:"put"
    (ne ret2 (const (Value.Opt None)));
  Spec.add_directed s ~first:"remove" ~second:"size"
    (eq ret1 (const (Value.Opt None)));
  Spec.add_directed s ~first:"size" ~second:"remove"
    (eq ret2 (const (Value.Opt None)));
  s

(** SIMPLE core (derived mechanically): key disequalities; [size]
    conflicts with every mutator; lockable with r/w key locks. *)
let simple_spec () = Strengthen.simple_spec ~adt:"kvmap_rw" (precise_spec ())

(* ------------------------------------------------------------------ *)
(* Execution plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let exec (t : t) name (args : Value.t array) : Value.t =
  match (name, args) with
  | "put", [| k; v |] -> Value.Opt (put t k v)
  | "get", [| k |] -> Value.Opt (get t k)
  | "remove", [| k |] -> Value.Opt (remove t k)
  | "size", [||] -> Value.Int (size t)
  | _ -> Value.type_error "kvmap: bad invocation %s" name

(** Semantic undo driven by the recorded previous binding. *)
let undo (t : t) (inv : Invocation.t) =
  let k () = inv.Invocation.args.(0) in
  match (inv.Invocation.meth.Invocation.name, inv.Invocation.ret) with
  | ("put" | "remove"), Value.Opt (Some old) -> ignore (put t (k ()) old)
  | "put", Value.Opt None -> ignore (remove t (k ()))
  | _ -> ()

let hooks (t : t) =
  Gatekeeper.hooks
    ~undo:(fun inv -> undo t inv)
    ~redo:(fun inv -> ignore (exec t inv.Invocation.meth.Invocation.name inv.Invocation.args))
    (fun name _ -> raise (Formula.Unsupported ("kvmap sfun " ^ name)))

let model () : History.model =
  let t = create () in
  {
    History.reset = (fun () -> clear t);
    apply = (fun name args -> exec t name (Array.of_list args));
    snapshot =
      (fun () ->
        Value.List (List.map (fun (k, v) -> Value.Pair (k, v)) (bindings t)));
  }
