(** d-dimensional points and the Euclidean metric used by the kd-tree
    (paper §2.5: "dist(a, b) is an algorithm-defined distance metric such
    that nearest(a) returns the nearest point according to dist"). *)

type t = float array

let dim (p : t) = Array.length p

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (Float.equal x b.(i)) then ok := false) a;
  !ok

let dist2 (a : t) (b : t) =
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      s := !s +. (d *. d))
    a;
  !s

let dist a b = sqrt (dist2 a b)

(** The "point at infinity": the conventional nearest neighbour of a query
    against an empty or singleton data set (paper §5, clustering). *)
let at_infinity d : t = Array.make d infinity

let is_at_infinity (p : t) = Array.exists (fun x -> x = infinity) p

let pp ppf (p : t) = Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") float) p

let to_string p = Fmt.str "%a" pp p

(** Deterministic pseudo-random point cloud in the unit cube. *)
let random_cloud ~seed ~dim:d n : t array =
  let st = Random.State.make [| seed; d; n |] in
  Array.init n (fun _ -> Array.init d (fun _ -> Random.State.float st 1.0))

(* Value conversions *)

let to_value (p : t) = Commlat_core.Value.Point p

let of_value = Commlat_core.Value.to_point

(** Distance between two point-like values; option-wrapped and
    infinity-point values are treated as infinitely far, matching the
    empty-tree convention. *)
let dist_value (a : Commlat_core.Value.t) (b : Commlat_core.Value.t) =
  let open Commlat_core in
  let as_pt = function
    | Value.Point p -> Some p
    | Value.Opt (Some (Value.Point p)) -> Some p
    | Value.Opt None -> None
    | v -> Value.type_error "dist: not a point: %a" Value.pp v
  in
  match (as_pt a, as_pt b) with
  | Some pa, Some pb ->
      if is_at_infinity pa || is_at_infinity pb then infinity else dist pa pb
  | _ -> infinity
