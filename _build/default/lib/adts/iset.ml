(** The set ADT of paper §2.3 — methods [add], [remove], [contains] — with
    two concrete implementations sharing one abstract state (a sorted
    linked list and a hash table), its commutativity specifications
    (precise: Fig. 2; strengthened: Fig. 3; exclusive and partitioned:
    §4.1–4.2), gatekeeper hooks and a replay model for the serializability
    oracle.

    [add] and [remove] return a boolean indicating whether the invocation
    modified the set. *)

open Commlat_core

(* ------------------------------------------------------------------ *)
(* Concrete implementations                                            *)
(* ------------------------------------------------------------------ *)

module type IMPL = sig
  type t

  val create : unit -> t
  val add : t -> Value.t -> bool
  val remove : t -> Value.t -> bool
  val contains : t -> Value.t -> bool
  val elements : t -> Value.t list (* sorted; the abstract state *)
  val clear : t -> unit
end

(** Hash-table-backed set: O(1) operations. *)
module Hash_impl : IMPL = struct
  type t = unit Value.Tbl.t

  let create () = Value.Tbl.create 64

  let add t v =
    if Value.Tbl.mem t v then false
    else (
      Value.Tbl.add t v ();
      true)

  let remove t v =
    if Value.Tbl.mem t v then (
      Value.Tbl.remove t v;
      true)
    else false

  let contains t v = Value.Tbl.mem t v
  let elements t = Value.Tbl.fold (fun k () acc -> k :: acc) t [] |> List.sort Value.compare
  let clear t = Value.Tbl.reset t
end

(** Sorted singly-linked list: a deliberately different concrete layout for
    the same abstract state, used to demonstrate that gatekeepers protect
    the {e abstract} data type (paper §3.3: "a gatekeeper constructed to
    protect one abstract data type can protect all implementations"). *)
module List_impl : IMPL = struct
  type node = { value : Value.t; mutable next : node option }
  type t = { mutable head : node option }

  let create () = { head = None }

  (* Position of the first node with value >= v, as (predecessor, node). *)
  let locate t v =
    let rec go prev = function
      | Some n when Value.compare n.value v < 0 -> go (Some n) n.next
      | cur -> (prev, cur)
    in
    go None t.head

  let contains t v =
    match locate t v with Some _, Some n | None, Some n -> Value.equal n.value v | _ -> false

  let add t v =
    match locate t v with
    | _, Some n when Value.equal n.value v -> false
    | None, cur ->
        t.head <- Some { value = v; next = cur };
        true
    | Some p, cur ->
        p.next <- Some { value = v; next = cur };
        true

  let remove t v =
    match locate t v with
    | None, Some n when Value.equal n.value v ->
        t.head <- n.next;
        true
    | Some p, Some n when Value.equal n.value v ->
        p.next <- n.next;
        true
    | _ -> false

  let elements t =
    let rec go acc = function None -> List.rev acc | Some n -> go (n.value :: acc) n.next in
    go [] t.head

  let clear t = t.head <- None
end

(** A set value: a first-class choice of implementation. *)
type t = Set : (module IMPL with type t = 'a) * 'a -> t

let create ?(impl = `Hash) () =
  match impl with
  | `Hash -> Set ((module Hash_impl), Hash_impl.create ())
  | `List -> Set ((module List_impl), List_impl.create ())

let add (Set ((module I), s)) v = I.add s v
let remove (Set ((module I), s)) v = I.remove s v
let contains (Set ((module I), s)) v = I.contains s v
let elements (Set ((module I), s)) = I.elements s
let clear (Set ((module I), s)) = I.clear s
let cardinal t = List.length (elements t)

(* ------------------------------------------------------------------ *)
(* Methods and specifications                                          *)
(* ------------------------------------------------------------------ *)

let m_add = Invocation.meth "add" 1
let m_remove = Invocation.meth "remove" 1
let m_contains = Invocation.meth ~mutates:false "contains" 1
let methods = [ m_add; m_remove; m_contains ]

(* Formula shorthands: [a] is the first invocation's element, [b] the
   second's. *)
let a = Formula.arg1 0
let b = Formula.arg2 0

let neither_modified =
  Formula.(eq ret1 (cbool false) &&& eq ret2 (cbool false))

open struct
  let ne = Formula.ne
  let ( ||| ) = Formula.( ||| )
  let ret1 = Formula.ret1
  let cbool = Formula.cbool
  let eq = Formula.eq
end

(** Fig. 2: the precise specification.  Methods commute if their arguments
    differ or the relevant invocations did not modify the set. *)
let precise_spec () =
  let s = Spec.create ~adt:"set" methods in
  Spec.add_sym s "add" "add" (ne a b ||| neither_modified);
  Spec.add_sym s "add" "remove" (ne a b ||| neither_modified);
  Spec.add_sym s "add" "contains" (ne a b ||| eq ret1 (cbool false));
  Spec.add_sym s "remove" "remove" (ne a b ||| neither_modified);
  Spec.add_sym s "remove" "contains" (ne a b ||| eq ret1 (cbool false));
  Spec.add_sym s "contains" "contains" Formula.True;
  s

(** Fig. 3: the strengthened SIMPLE specification (drops the return-value
    disjuncts), implementable with read/write abstract locks on elements. *)
let simple_spec () =
  let s = Spec.create ~adt:"set_rw" methods in
  Spec.add_sym s "add" "add" (ne a b);
  Spec.add_sym s "add" "remove" (ne a b);
  Spec.add_sym s "add" "contains" (ne a b);
  Spec.add_sym s "remove" "remove" (ne a b);
  Spec.add_sym s "remove" "contains" (ne a b);
  Spec.add_sym s "contains" "contains" Formula.True;
  s

(** §4.1: further strengthened so [contains] no longer self-commutes on
    equal arguments — the induced locking scheme uses exclusive locks. *)
let exclusive_spec () =
  let s = simple_spec () in
  let s = Strengthen.map_conditions ~adt:"set_excl" s Fun.id in
  Spec.add_sym s "contains" "contains" (ne a b);
  s

(** §4.2: partition-based lock coarsening of {!exclusive_spec}: clauses
    [a != b] become [part(a) != part(b)], inducing locks on partitions. *)
let partitioned_spec ~nparts () =
  let part v = Value.Int (Value.hash v mod nparts) in
  Strengthen.partitioned ~adt:(Fmt.str "set_part%d" nparts) ~part_name:"part" ~part
    (exclusive_spec ())

(* ------------------------------------------------------------------ *)
(* Execution plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let exec (t : t) (name : string) (args : Value.t array) : Value.t =
  match (name, args) with
  | "add", [| v |] -> Value.Bool (add t v)
  | "remove", [| v |] -> Value.Bool (remove t v)
  | "contains", [| v |] -> Value.Bool (contains t v)
  | _ -> Value.type_error "set: bad invocation %s/%d" name (Array.length args)

(** Run one method through a conflict detector on behalf of [txn]; returns
    the boolean result.  May raise {!Detector.Conflict}. *)
let invoke (det : Detector.t) (t : t) ~txn name v : bool =
  let meth =
    match name with
    | "add" -> m_add
    | "remove" -> m_remove
    | "contains" -> m_contains
    | _ -> invalid_arg ("set: no method " ^ name)
  in
  let inv = Invocation.make ~txn meth [| v |] in
  Value.to_bool (det.Detector.on_invoke inv (fun () -> exec t name inv.Invocation.args))

(** The inverse action for speculative rollback: undoing an [add] that
    returned [true] removes the element, and vice versa. *)
let undo (t : t) (inv : Invocation.t) =
  match (inv.Invocation.meth.name, inv.Invocation.ret) with
  | "add", Value.Bool true -> ignore (remove t inv.Invocation.args.(0))
  | "remove", Value.Bool true -> ignore (add t inv.Invocation.args.(0))
  | _ -> ()

(** Gatekeeper hooks.  The set specs use no abstract-state functions, so
    only [undo]/[redo] matter (and only for the general gatekeeper, which
    no set spec needs — provided for completeness and tests). *)
let hooks (t : t) =
  Gatekeeper.hooks
    ~undo:(fun inv -> undo t inv)
    ~redo:(fun inv -> ignore (exec t inv.Invocation.meth.name inv.Invocation.args))
    (fun name _ -> raise (Formula.Unsupported ("set sfun " ^ name)))

(* ------------------------------------------------------------------ *)
(* Replay model for the serializability oracle                         *)
(* ------------------------------------------------------------------ *)

let model ?impl () : History.model =
  let t = create ?impl () in
  {
    History.reset = (fun () -> clear t);
    apply = (fun name args -> exec t name (Array.of_list args));
    snapshot = (fun () -> Value.List (elements t));
  }
