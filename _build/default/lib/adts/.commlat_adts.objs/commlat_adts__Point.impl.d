lib/adts/point.ml: Array Commlat_core Float Fmt Random Value
