lib/adts/accumulator.ml: Array Commlat_core Detector Formula History Invocation Spec Value
