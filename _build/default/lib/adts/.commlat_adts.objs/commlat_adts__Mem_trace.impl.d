lib/adts/mem_trace.ml: Hashtbl
