lib/adts/union_find_versioned.ml: Array Commlat_core Formula Gatekeeper Invocation List Union_find Value
