lib/adts/iset.ml: Array Commlat_core Detector Fmt Formula Fun Gatekeeper History Invocation List Spec Strengthen Value
