lib/adts/kdtree.ml: Array Commlat_core Detector Float Formula Gatekeeper History Invocation List Mem_trace Point Spec Stdlib Value
