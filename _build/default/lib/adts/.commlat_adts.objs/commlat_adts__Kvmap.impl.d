lib/adts/kvmap.ml: Array Commlat_core Formula Gatekeeper History Invocation List Spec Strengthen Value
