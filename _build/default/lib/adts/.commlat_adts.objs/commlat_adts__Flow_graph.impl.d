lib/adts/flow_graph.ml: Array Commlat_core Detector Fmt Formula Fun Hashtbl Invocation List Mem_trace Option Spec Strengthen Value
