lib/adts/union_find.ml: Array Commlat_core Detector Formula Gatekeeper Hashtbl History Invocation List Mem_trace Spec Value
