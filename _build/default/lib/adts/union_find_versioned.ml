(** A {e partially persistent} union-find: the plain disjoint-set forest of
    {!Union_find} extended with a version index that answers
    representative/rank/loser queries {e in any past state} without undoing
    anything.

    The paper's general gatekeeper evaluates conditions like
    [rep(s1, c) != loser(s1, a, b)] by physically rolling the structure
    back to [s1] and forward again (§3.3.2), and its conclusions ask
    whether "more efficient conflict detection schemes" exist.  This module
    is one answer for union-find: because a root is attached to a parent at
    most once, recording each attach with the sequence number of the union
    that performed it makes historical representative queries a simple
    stamped walk —

    - [rep_at ~seq x]: follow attach records with stamp < [seq];
    - [rank_at ~seq r]: the last rank record of [r] with stamp < [seq];

    both without touching the live forest.  Plugged into the gatekeeper
    through the [sfun_at] hook, this turns each state reconstruction from an
    undo/redo sweep over the mutation log into a few pointer chases.
    Aborted unions remove their records, so the index reflects exactly the
    applied operations, mirroring the mutation log's lifecycle.

    The live structure is still a {!Union_find.t}: all its operations,
    write logs and undo/redo machinery behave identically, so the two
    gatekeeper constructions can be compared like for like (see the
    [ablation] benchmark and [test_versioned_uf.ml]). *)

open Commlat_core

type attach = { stamp : int; target : int; by_uid : int }

type t = {
  base : Union_find.t;
  (* at most one live attach record per element (an element is attached as
     a root at most once; aborted attaches are removed) *)
  mutable attach : attach option array;
  (* rank history per element, newest first: (stamp, rank) *)
  mutable ranks : (int * int) list array;
  mutable last_stamp : int;
}

let create ?(capacity = 16) () =
  {
    base = Union_find.create ~capacity ();
    attach = Array.make capacity None;
    ranks = Array.make capacity [];
    last_stamp = 0;
  }

let base t = t.base

let ensure_capacity t i =
  if i >= Array.length t.attach then begin
    let cap = max (i + 1) (2 * Array.length t.attach) in
    let attach = Array.make cap None and ranks = Array.make cap [] in
    Array.blit t.attach 0 attach 0 (Array.length t.attach);
    Array.blit t.ranks 0 ranks 0 (Array.length t.ranks);
    t.attach <- attach;
    t.ranks <- ranks
  end

let create_element t =
  let i = Union_find.create_element t.base in
  ensure_capacity t i;
  i

let create_elements t k = List.init k (fun _ -> create_element t)

(* ------------------------------------------------------------------ *)
(* Versioned queries                                                   *)
(* ------------------------------------------------------------------ *)

(** Representative of [x] in the state just before the invocation stamped
    [seq] ran. *)
let rep_at (t : t) ~seq x =
  let rec go x =
    match t.attach.(x) with
    | Some a when a.stamp < seq -> go a.target
    | _ -> x
  in
  go x

(** Rank of element [x]'s set in the state just before [seq]. *)
let rank_at (t : t) ~seq x =
  let r = rep_at t ~seq x in
  let rec find = function
    | [] -> 0
    | (stamp, rank) :: rest -> if stamp < seq then rank else find rest
  in
  find t.ranks.(r)

(** [loser] (Fig. 5) evaluated in the state just before [seq]. *)
let loser_at (t : t) ~seq a b =
  let ra = rep_at t ~seq a and rb = rep_at t ~seq b in
  let ka = rank_at t ~seq ra and kb = rank_at t ~seq rb in
  if ka < kb then ra else if ka > kb then rb else rb

(* ------------------------------------------------------------------ *)
(* Mutations: delegate to the base structure, index the attach          *)
(* ------------------------------------------------------------------ *)

(** Execute an invocation (stamped by the detector) on the base structure
    and index any union attach it performed. *)
let exec_logged (t : t) (inv : Invocation.t) : Value.t =
  let r = Union_find.exec_logged t.base inv in
  (match (inv.Invocation.meth.Invocation.name, r) with
  | "union", Value.Bool true -> (
      match Union_find.merge_of t.base inv with
      | Some (winner, loser) ->
          t.last_stamp <- inv.Invocation.seq;
          t.attach.(loser) <-
            Some { stamp = inv.Invocation.seq; target = winner; by_uid = inv.Invocation.uid };
          (* a union of equal ranks bumps the winner's rank *)
          let cur = Union_find.rank_of t.base winner in
          (match t.ranks.(winner) with
          | (_, k) :: _ when k = cur -> ()
          | _ -> t.ranks.(winner) <- (inv.Invocation.seq, cur) :: t.ranks.(winner))
      | None -> ())
  | "create", Value.Int i -> ensure_capacity t i
  | _ -> ());
  r

(** Undo an invocation: restore the base structure from its write log and
    remove the indexed attach/rank records. *)
let undo (t : t) (inv : Invocation.t) =
  (* read the merge off the write log before the base undo discards its
     meaning; records are removed point-wise, no array scan *)
  let merge =
    if inv.Invocation.meth.Invocation.name = "union" then
      Union_find.merge_of t.base inv
    else None
  in
  Union_find.undo t.base inv;
  match merge with
  | None -> ()
  | Some (winner, loser) ->
      (match t.attach.(loser) with
      | Some a when a.by_uid = inv.Invocation.uid -> t.attach.(loser) <- None
      | _ -> ());
      t.ranks.(winner) <-
        List.filter (fun (stamp, _) -> stamp <> inv.Invocation.seq) t.ranks.(winner)

let redo (t : t) (inv : Invocation.t) =
  Union_find.redo t.base inv;
  (* re-index *)
  if inv.Invocation.meth.Invocation.name = "union" then
    match Union_find.merge_of t.base inv with
    | Some (winner, loser) ->
        t.attach.(loser) <-
          Some { stamp = inv.Invocation.seq; target = winner; by_uid = inv.Invocation.uid };
        let cur = Union_find.rank_of t.base winner in
        (match t.ranks.(winner) with
        | (_, k) :: _ when k = cur -> ()
        | _ -> t.ranks.(winner) <- (inv.Invocation.seq, cur) :: t.ranks.(winner))
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Gatekeeper hooks                                                    *)
(* ------------------------------------------------------------------ *)

let sfun_now (t : t) name args = Union_find.sfun t.base name args

let sfun_at (t : t) seq name (args : Value.t list) =
  match (name, args) with
  | "rep", [ x ] -> Value.Int (rep_at t ~seq (Value.to_int x))
  | "rank", [ x ] -> Value.Int (rank_at t ~seq (Value.to_int x))
  | "loser", [ a; b ] ->
      Value.Int (loser_at t ~seq (Value.to_int a) (Value.to_int b))
  | _ -> raise (Formula.Unsupported ("union_find sfun " ^ name))

(** Hooks for {!Commlat_core.Gatekeeper.general}: past states are answered
    by {!sfun_at}, so the gatekeeper never performs an undo/redo sweep
    (undo/redo remain available for transaction aborts). *)
let hooks (t : t) =
  Gatekeeper.hooks ~undo:(undo t) ~redo:(redo t)
    ~forget:(Union_find.forget t.base)
    ~sfun_at:(fun seq name args -> sfun_at t seq name args)
    (sfun_now t)
