(** Kd-trees (paper §2.5): nearest-neighbour search over a dynamic point
    set.

    The implementation follows the paper's description: points live only in
    leaves, each interior node records its splitting plane, and every node
    stores the bounding box of the points below it to prune [nearest]
    traversals.  [add]/[remove] update the bounding boxes along the
    root-to-leaf path — the source of the {e memory-level} conflicts that
    make TM-style detection serialize operations that semantically commute
    (clustering case study, §5).

    Concrete cell accesses (node bounding boxes, leaf payloads) are reported
    through a {!Mem_trace.t} so the STM baseline and the ParaMeter profiler
    can observe them. *)

open Commlat_core

type node =
  | Empty
  | Leaf of { id : int; pt : Point.t }
  | Node of inner

and inner = {
  id : int;
  dim : int;
  split : float;
  mutable lo : node;
  mutable hi : node;
  (* bounding box of all points below, inclusive *)
  bb_min : float array;
  bb_max : float array;
}

type t = {
  dims : int;
  mutable root : node;
  mutable count : int;
  mutable next_id : int;
  mutable tracer : Mem_trace.t;
}

let create ~dims () = { dims; root = Empty; count = 0; next_id = 0; tracer = Mem_trace.null }
let set_tracer t tr = t.tracer <- tr
let size t = t.count
let clear t =
  t.root <- Empty;
  t.count <- 0

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let node_id = function Empty -> -1 | Leaf l -> l.id | Node n -> n.id

(* ---------------- bounding boxes ---------------- *)

let read_bb t n =
  t.tracer.Mem_trace.read n.id

let grow_bb t n (p : Point.t) =
  (* Returns true if the box actually changed; only changes are writes. *)
  let changed = ref false in
  Array.iteri
    (fun i x ->
      if x < n.bb_min.(i) then (
        n.bb_min.(i) <- x;
        changed := true);
      if x > n.bb_max.(i) then (
        n.bb_max.(i) <- x;
        changed := true))
    p;
  t.tracer.Mem_trace.read n.id;
  if !changed then t.tracer.Mem_trace.write n.id

let subtree_bb t = function
  | Empty -> None
  | Leaf l ->
      t.tracer.Mem_trace.read l.id;
      Some (Array.copy l.pt, Array.copy l.pt)
  | Node n ->
      t.tracer.Mem_trace.read n.id;
      Some (Array.copy n.bb_min, Array.copy n.bb_max)

let refresh_bb t (n : inner) =
  (* Recompute n's box exactly from its children (used on the remove path). *)
  let boxes = List.filter_map (subtree_bb t) [ n.lo; n.hi ] in
  match boxes with
  | [] -> ()
  | (mn0, mx0) :: rest ->
      let mn = Array.copy mn0 and mx = Array.copy mx0 in
      List.iter
        (fun (m, x) ->
          Array.iteri (fun i v -> if v < mn.(i) then mn.(i) <- v) m;
          Array.iteri (fun i v -> if v > mx.(i) then mx.(i) <- v) x)
        rest;
      let changed = ref false in
      Array.iteri
        (fun i v ->
          if not (Float.equal n.bb_min.(i) v) then (
            n.bb_min.(i) <- v;
            changed := true))
        mn;
      Array.iteri
        (fun i v ->
          if not (Float.equal n.bb_max.(i) v) then (
            n.bb_max.(i) <- v;
            changed := true))
        mx;
      if !changed then t.tracer.Mem_trace.write n.id

(* Distance from a query point to a bounding box (0 inside). *)
let bb_dist2 (q : Point.t) bb_min bb_max =
  let s = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = if x < bb_min.(i) then bb_min.(i) -. x else if x > bb_max.(i) then x -. bb_max.(i) else 0.0 in
      s := !s +. (d *. d))
    q;
  !s

(* ---------------- add ---------------- *)

let split_leaf t (lp : Point.t) (p : Point.t) : node =
  (* Choose the dimension where the two points differ most. *)
  let dim = ref 0 and best = ref neg_infinity in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. p.(i)) in
      if d > !best then (
        best := d;
        dim := i))
    lp;
  let dim = !dim in
  (* Split at the smaller of the two coordinates: "x <= split" then sends
     exactly one of the points low, whatever the float rounding — a
     midpoint split can round onto one of the coordinates and strand both
     points on one side. *)
  let split = Float.min lp.(dim) p.(dim) in
  let leaf q = Leaf { id = fresh_id t; pt = q } in
  let l1 = leaf lp and l2 = leaf p in
  let lo, hi = if lp.(dim) <= split then (l1, l2) else (l2, l1) in
  let bb_min = Array.init (Array.length p) (fun i -> Float.min lp.(i) p.(i)) in
  let bb_max = Array.init (Array.length p) (fun i -> Float.max lp.(i) p.(i)) in
  let n = { id = fresh_id t; dim; split; lo; hi; bb_min; bb_max } in
  t.tracer.Mem_trace.write n.id;
  Node n

let add t (p : Point.t) : bool =
  if Array.length p <> t.dims then invalid_arg "Kdtree.add: wrong dimension";
  let rec go = function
    | Empty ->
        let l = Leaf { id = fresh_id t; pt = p } in
        t.tracer.Mem_trace.write (node_id l);
        (l, true)
    | Leaf l as leaf ->
        t.tracer.Mem_trace.read l.id;
        if Point.equal l.pt p then (leaf, false) else (split_leaf t l.pt p, true)
    | Node n as node ->
        let child = if p.(n.dim) <= n.split then n.lo else n.hi in
        let child', added = go child in
        if added then (
          if p.(n.dim) <= n.split then n.lo <- child' else n.hi <- child';
          grow_bb t n p);
        (node, added)
  in
  let root', added = go t.root in
  t.root <- root';
  if added then t.count <- t.count + 1;
  added

(* ---------------- remove ---------------- *)

let remove t (p : Point.t) : bool =
  let rec go = function
    | Empty -> (Empty, false)
    | Leaf l as leaf ->
        t.tracer.Mem_trace.read l.id;
        if Point.equal l.pt p then (
          t.tracer.Mem_trace.write l.id;
          (Empty, true))
        else (leaf, false)
    | Node n as node ->
        let on_lo = p.(n.dim) <= n.split in
        let child = if on_lo then n.lo else n.hi in
        let child', removed = go child in
        if not removed then (node, false)
        else (
          if on_lo then n.lo <- child' else n.hi <- child';
          match (n.lo, n.hi) with
          | Empty, other | other, Empty ->
              (* collapse single-child interior nodes *)
              t.tracer.Mem_trace.write n.id;
              (other, true)
          | _ ->
              refresh_bb t n;
              (node, true))
  in
  let root', removed = go t.root in
  t.root <- root';
  if removed then t.count <- t.count - 1;
  removed

let contains t (p : Point.t) : bool =
  let rec go = function
    | Empty -> false
    | Leaf l ->
        t.tracer.Mem_trace.read l.id;
        Point.equal l.pt p
    | Node n ->
        t.tracer.Mem_trace.read n.id;
        go (if p.(n.dim) <= n.split then n.lo else n.hi)
  in
  go t.root

(* ---------------- nearest ---------------- *)

(** Nearest point to [q], {e excluding} [q] itself if present — the query
    convention agglomerative clustering needs (§5: a point's nearest
    neighbour is another point; "the point at infinity is the closest point
    if the data set contains a single point").  Returns the point at
    infinity when there is no other point. *)
let nearest t (q : Point.t) : Point.t =
  let best_d2 = ref infinity and best = ref (Point.at_infinity t.dims) in
  let rec go = function
    | Empty -> ()
    | Leaf l ->
        t.tracer.Mem_trace.read l.id;
        let d2 = Point.dist2 q l.pt in
        if d2 < !best_d2 && not (Point.equal l.pt q) then (
          best_d2 := d2;
          best := l.pt)
    | Node n ->
        read_bb t n;
        if bb_dist2 q n.bb_min n.bb_max < !best_d2 then (
          let near, far = if q.(n.dim) <= n.split then (n.lo, n.hi) else (n.hi, n.lo) in
          go near;
          (match far with
          | Empty -> ()
          | Leaf _ -> go far
          | Node f ->
              read_bb t f;
              if bb_dist2 q f.bb_min f.bb_max < !best_d2 then go far))
  in
  go t.root;
  !best

let elements t =
  let rec go acc = function
    | Empty -> acc
    | Leaf l -> l.pt :: acc
    | Node n -> go (go acc n.lo) n.hi
  in
  go [] t.root |> List.sort (fun a b -> Stdlib.compare (Array.to_list a) (Array.to_list b))

(* ------------------------------------------------------------------ *)
(* Specification (paper Fig. 4)                                        *)
(* ------------------------------------------------------------------ *)

let m_add = Invocation.meth "add" 1
let m_remove = Invocation.meth "remove" 1
let m_nearest = Invocation.meth ~mutates:false "nearest" 1
let m_contains = Invocation.meth ~mutates:false "contains" 1
let methods = [ m_add; m_remove; m_nearest; m_contains ]

(** Fig. 4.  [dist] is a pure value function, so all conditions are
    state-free (and hence ONLINE-CHECKABLE, implementable by a forward
    gatekeeper) but {e not} SIMPLE: condition (2) compares distances, which
    no abstract-locking scheme can capture (Theorem 1 discussion). *)
let spec () =
  let open Formula in
  let a = arg1 0 and b = arg2 0 in
  let dist x y = vfun "dist" [ x; y ] in
  let neither = eq ret1 (cbool false) &&& eq ret2 (cbool false) in
  let s =
    Spec.create
      ~vfuns:
        [
          ( "dist",
            function
            | [ x; y ] -> Value.Float (Point.dist_value x y)
            | _ -> Value.type_error "dist/2" );
        ]
      ~adt:"kdtree" methods
  in
  (* (1) nearest/nearest always commute (read-only) *)
  Spec.add_sym s "nearest" "nearest" True;
  (* (2) nearest(a)/r1 ; add(b)/r2 : r2 = false \/ dist(a,b) > dist(a,r1) *)
  Spec.add_sym s "nearest" "add" (eq ret2 (cbool false) ||| gt (dist a b) (dist a ret1));
  (* (3) nearest(a)/r1 ; remove(b)/r2 : (a != b /\ r1 != b) \/ r2 = false.
     The reverse orientation is NOT the syntactic mirror: once the remove
     has happened first, swapping exposes the removed point to the query,
     so the removed point must be strictly farther than the reported
     neighbour (caught by the Fig.4 soundness property test). *)
  Spec.add_directed s ~first:"nearest" ~second:"remove"
    ((ne a b &&& ne ret1 b) ||| eq ret2 (cbool false));
  Spec.add_directed s ~first:"remove" ~second:"nearest"
    (eq ret1 (cbool false) ||| gt (dist b a) (dist b ret2));
  (* (4)-(6): set-like conditions *)
  Spec.add_sym s "remove" "remove" (ne a b ||| neither);
  Spec.add_sym s "remove" "add" (ne a b ||| neither);
  Spec.add_sym s "add" "add" (ne a b ||| neither);
  (* membership queries: set-like (paper Fig. 2 conditions (3) and (5)) *)
  Spec.add_sym s "contains" "contains" True;
  Spec.add_sym s "contains" "nearest" True;
  Spec.add_sym s "contains" "add" (ne a b ||| eq ret2 (cbool false));
  Spec.add_sym s "contains" "remove" (ne a b ||| eq ret2 (cbool false));
  s

(* ------------------------------------------------------------------ *)
(* Execution plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let exec (t : t) name (args : Value.t array) =
  match (name, args) with
  | "add", [| v |] -> Value.Bool (add t (Point.of_value v))
  | "remove", [| v |] -> Value.Bool (remove t (Point.of_value v))
  | "nearest", [| v |] -> Point.to_value (nearest t (Point.of_value v))
  | "contains", [| v |] -> Value.Bool (contains t (Point.of_value v))
  | _ -> Value.type_error "kdtree: bad invocation %s" name

let invoke (det : Detector.t) (t : t) ~txn name (p : Point.t) : Value.t =
  let meth =
    match name with
    | "add" -> m_add
    | "remove" -> m_remove
    | "nearest" -> m_nearest
    | "contains" -> m_contains
    | _ -> invalid_arg ("kdtree: no method " ^ name)
  in
  let inv = Invocation.make ~txn meth [| Point.to_value p |] in
  det.Detector.on_invoke inv (fun () -> exec t name inv.Invocation.args)

let undo (t : t) (inv : Invocation.t) =
  match (inv.Invocation.meth.name, inv.Invocation.ret) with
  | "add", Value.Bool true -> ignore (remove t (Point.of_value inv.Invocation.args.(0)))
  | "remove", Value.Bool true -> ignore (add t (Point.of_value inv.Invocation.args.(0)))
  | _ -> ()

let hooks (t : t) =
  Gatekeeper.hooks
    ~undo:(fun inv -> undo t inv)
    ~redo:(fun inv -> ignore (exec t inv.Invocation.meth.name inv.Invocation.args))
    (fun name _ -> raise (Formula.Unsupported ("kdtree sfun " ^ name)))

let model ~dims () : History.model =
  let t = create ~dims () in
  {
    History.reset = (fun () -> clear t);
    apply = (fun name args -> exec t name (Array.of_list args));
    snapshot =
      (fun () -> Value.List (List.map (fun p -> Point.to_value p) (elements t)));
  }
