(** Disciplined strengthening: moving {e down} the commutativity lattice
    (paper §4).

    Each transform produces a specification provably lower in the lattice
    (every new condition syntactically implies the old one), so a detector
    that is sound for the output is sound for the input — the paper's
    recipe for trading parallelism for overhead. *)

(** Apply [f] to every condition.  The caller is responsible for [f] being
    non-increasing; {!check_strengthening} verifies it. *)
val map_conditions : ?adt:string -> Spec.t -> (Formula.t -> Formula.t) -> Spec.t

(** [check_strengthening ~stronger ~weaker]: every condition of [stronger]
    syntactically implies the corresponding condition of [weaker]. *)
val check_strengthening : stronger:Spec.t -> weaker:Spec.t -> bool

(** The strongest SIMPLE formula obtainable from [f] by dropping disjuncts
    and replacing non-SIMPLE residue by [false] — exactly the move from the
    precise set spec (Fig. 2) to the strengthened one (Fig. 3). *)
val simple_core : Formula.t -> Formula.t

(** Strengthen a whole spec to its SIMPLE core: the systematic way to
    obtain an abstract-lockable spec from any spec (§4.1). *)
val simple_spec : ?adt:string -> Spec.t -> Spec.t

(** Partition-based lock coarsening (paper §4.2): replace every SIMPLE
    clause [t1 != t2] by [part(t1) != part(t2)].  Since
    [part(a) != part(b) => a != b] the result is lower in the lattice; the
    induced locking scheme locks partitions instead of elements. *)
val partitioned :
  ?adt:string ->
  part_name:string ->
  part:(Value.t -> Value.t) ->
  Spec.t ->
  Spec.t

(** Set the conditions for the given ordered pairs to [false] (e.g. turning
    read/write locks into exclusive locks by forbidding reader sharing, as
    in the preflow-push [ex] variant, paper §5). *)
val force_false : ?adt:string -> Spec.t -> (string * string) list -> Spec.t
