(** Histories and the serializability oracle (paper §2.1, Defs. 1–3,
    Appendix A).

    A history is the sequence of method invocations (with recorded return
    values) that actually executed.  The oracle used by the test suite
    checks the guarantee that commutativity-based conflict detection is
    supposed to provide: the concurrent execution is {e serializable} —
    there is some serial order of the committed transactions in which every
    invocation returns exactly what it returned in the concurrent run and
    which ends in the same abstract state.

    The oracle needs a replayable {!model} of the ADT; it enumerates all
    permutations of the transactions (test histories involve a handful),
    replaying each. *)

type model = {
  reset : unit -> unit;  (** restore the initial abstract state *)
  apply : string -> Value.t list -> Value.t;  (** invoke a method *)
  snapshot : unit -> Value.t;  (** current abstract state, comparable *)
}

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let txns_of (history : Invocation.t list) =
  List.sort_uniq Int.compare (List.map (fun (i : Invocation.t) -> i.txn) history)

(** Replay [history]'s invocations with transactions serialized in [order]
    (each transaction's invocations keep their program order).  Returns
    [Some final_state] if every replayed invocation returns its recorded
    value, [None] at the first mismatch. *)
let replay (model : model) (history : Invocation.t list) (order : int list) =
  model.reset ();
  let serial =
    List.concat_map
      (fun txn -> List.filter (fun (i : Invocation.t) -> i.txn = txn) history)
      order
  in
  let ok =
    List.for_all
      (fun (i : Invocation.t) ->
        let r = model.apply i.meth.name (Array.to_list i.args) in
        Value.equal r i.ret)
      serial
  in
  if ok then Some (model.snapshot ()) else None

(** Is the recorded concurrent history serializable?  [final] is the
    abstract state the concurrent execution actually ended in. *)
let serializable (model : model) ~(final : Value.t) (history : Invocation.t list) =
  let orders = permutations (txns_of history) in
  List.exists
    (fun order ->
      match replay model history order with
      | Some s -> Value.equal s final
      | None -> false)
    orders

(** The witness order, for diagnostics. *)
let serialization_witness (model : model) ~(final : Value.t)
    (history : Invocation.t list) =
  List.find_opt
    (fun order ->
      match replay model history order with
      | Some s -> Value.equal s final
      | None -> false)
    (permutations (txns_of history))

(** Check Definition 1 directly: do two invocations commute in the given
    state?  [prefix] brings the model from its initial state to the state
    of interest; returns [true] iff running [i1;i2] and [i2;i1] from there
    yields the same return values and the same final abstract state.  Used
    to validate the example specifications against ground truth. *)
let commute_in_state (model : model) ~(prefix : (string * Value.t list) list)
    (m1, args1) (m2, args2) =
  let run order =
    model.reset ();
    List.iter (fun (m, args) -> ignore (model.apply m args)) prefix;
    let rets = List.map (fun (m, args) -> model.apply m args) order in
    (rets, model.snapshot ())
  in
  let r12, s12 = run [ (m1, args1); (m2, args2) ] in
  let r21, s21 = run [ (m2, args2); (m1, args1) ] in
  match (r12, r21) with
  | [ ra; rb ], [ rb'; ra' ] ->
      Value.equal ra ra' && Value.equal rb rb' && Value.equal s12 s21
  | _ -> assert false
