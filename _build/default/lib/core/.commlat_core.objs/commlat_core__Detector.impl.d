lib/core/detector.ml: Fmt Invocation List Mutex Value
