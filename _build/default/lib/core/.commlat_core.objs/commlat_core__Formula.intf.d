lib/core/formula.mli: Fmt Value
