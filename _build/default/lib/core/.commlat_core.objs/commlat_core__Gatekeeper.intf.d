lib/core/gatekeeper.mli: Detector Invocation Spec Value
