lib/core/spec.mli: Fmt Formula Hashtbl Invocation Value
