lib/core/history.ml: Array Int Invocation List Value
