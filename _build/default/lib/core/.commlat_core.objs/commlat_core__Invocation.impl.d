lib/core/invocation.ml: Array Atomic Fmt Formula Option Value
