lib/core/invocation.mli: Fmt Formula Value
