lib/core/spec_lang.mli: Fmt Formula Spec Value
