lib/core/lattice.ml: Formula Invocation List Spec Stdlib Value
