lib/core/detector.mli: Invocation Value
