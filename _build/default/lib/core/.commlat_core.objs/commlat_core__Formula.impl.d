lib/core/formula.ml: Fmt List Option Stdlib Value
