lib/core/strengthen.mli: Formula Spec Value
