lib/core/value.mli: Fmt Format Hashtbl Map Set
