lib/core/spec_lang.ml: Fmt Format Formula Hashtbl Invocation List Spec String Value
