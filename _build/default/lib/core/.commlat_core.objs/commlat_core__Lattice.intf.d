lib/core/lattice.mli: Formula Invocation Spec
