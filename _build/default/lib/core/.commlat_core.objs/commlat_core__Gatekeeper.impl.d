lib/core/gatekeeper.ml: Array Detector Fmt Formula Fun Hashtbl Int Invocation List Mutex Option Spec Value
