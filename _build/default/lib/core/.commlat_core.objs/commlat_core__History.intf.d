lib/core/history.mli: Invocation Value
