lib/core/value.ml: Array Bool Float Fmt Format Hashtbl Int List Option Stdlib String
