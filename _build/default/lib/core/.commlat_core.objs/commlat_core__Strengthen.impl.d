lib/core/strengthen.ml: Formula Fun Lattice List Option Spec Value
