lib/core/spec.ml: Fmt Formula Hashtbl Invocation List Stdlib Value
