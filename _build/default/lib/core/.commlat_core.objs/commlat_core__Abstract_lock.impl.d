lib/core/abstract_lock.ml: Array Detector Fmt Formula Fun Hashtbl Invocation List Mutex Option Spec String Value
