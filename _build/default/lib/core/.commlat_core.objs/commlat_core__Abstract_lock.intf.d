lib/core/abstract_lock.mli: Detector Fmt Formula Hashtbl Spec Value
