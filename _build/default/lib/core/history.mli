(** Histories and the serializability oracle (paper §2.1, Defs. 1–3,
    Appendix A).

    A history is the sequence of method invocations (with recorded return
    values) that actually executed.  The oracle used by the test suite
    checks the guarantee commutativity-based conflict detection must
    provide: the concurrent execution is {e serializable} — some serial
    order of the committed transactions reproduces every recorded return
    value and ends in the same abstract state.  It enumerates all
    permutations of the transactions (test histories involve a handful),
    replaying each against a {!model}. *)

(** A replayable model of an ADT. *)
type model = {
  reset : unit -> unit;  (** restore the initial abstract state *)
  apply : string -> Value.t list -> Value.t;  (** invoke a method *)
  snapshot : unit -> Value.t;  (** current abstract state, comparable *)
}

val permutations : 'a list -> 'a list list

(** Distinct transaction ids appearing in a history. *)
val txns_of : Invocation.t list -> int list

(** Replay the history with transactions serialized in [order] (each
    transaction's invocations keep their program order).  [Some final]
    if every replayed invocation returns its recorded value. *)
val replay : model -> Invocation.t list -> int list -> Value.t option

(** Is the recorded concurrent history serializable?  [final] is the
    abstract state the concurrent execution actually ended in. *)
val serializable : model -> final:Value.t -> Invocation.t list -> bool

(** The witness serialization order, for diagnostics. *)
val serialization_witness :
  model -> final:Value.t -> Invocation.t list -> int list option

(** Check Definition 1 directly: do two invocations commute in the state
    reached by applying [prefix] from the initial state?  True iff running
    them in both orders yields the same return values and the same final
    abstract state. *)
val commute_in_state :
  model ->
  prefix:(string * Value.t list) list ->
  string * Value.t list ->
  string * Value.t list ->
  bool
