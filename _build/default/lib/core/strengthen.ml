(** Disciplined strengthening: moving {e down} the commutativity lattice
    (paper §4).

    Each transform takes a specification and produces one that is provably
    lower in the lattice (every new condition syntactically implies the old
    one), so a detector that is sound for the output is sound for the input
    — the paper's recipe for trading parallelism for overhead. *)

(** Apply [f] to every condition.  The caller is responsible for [f] being
    non-increasing; {!check_strengthening} verifies it. *)
let map_conditions ?adt (spec : Spec.t) f =
  let adt = match adt with Some a -> a | None -> Spec.adt spec in
  let out = Spec.create ~vfuns:spec.Spec.vfuns ~adt (Spec.methods spec) in
  List.iter
    (fun ((m1, m2), cond) -> Spec.add_directed out ~first:m1 ~second:m2 (f cond))
    (Spec.pairs spec);
  out

(** Every condition of the output syntactically implies the corresponding
    condition of the input. *)
let check_strengthening ~(stronger : Spec.t) ~(weaker : Spec.t) =
  Lattice.spec_leq stronger weaker

(* --------------------------------------------------------------- *)
(* The SIMPLE core of a condition                                   *)
(* --------------------------------------------------------------- *)

(** The strongest SIMPLE formula obtainable from [f] by dropping disjuncts
    and replacing non-SIMPLE residue by [false].  This is exactly the move
    from the precise set spec (Fig. 2) to the strengthened one (Fig. 3):
    [a != b \/ (r1 = false /\ r2 = false)] becomes [a != b]. *)
let rec simple_core (f : Formula.t) : Formula.t =
  if Formula.is_simple f then f
  else
    match f with
    | Formula.Or (a, b) -> (
        match (simple_core a, simple_core b) with
        | Formula.False, c | c, Formula.False -> c
        | a', _ ->
            (* keep a single branch: a disjunction of SIMPLE formulas is not
               SIMPLE (L2 has no \/) *)
            a')
    | Formula.And (a, b) -> (
        match (simple_core a, simple_core b) with
        | Formula.False, _ | _, Formula.False -> Formula.False
        | a', b' -> Formula.simplify (Formula.And (a', b')))
    | _ -> Formula.False

(** Strengthen a whole spec to its SIMPLE core — the systematic way to
    obtain an abstract-lockable spec from any spec. *)
let simple_spec ?adt spec = map_conditions ?adt spec simple_core

(* --------------------------------------------------------------- *)
(* Partition-based lock coarsening (paper §4.2)                     *)
(* --------------------------------------------------------------- *)

(** Replace every SIMPLE clause [t1 != t2] by [part(t1) != part(t2)], where
    [part] maps data elements to partition ids.  Since
    [part(a) != part(b) => a != b], the result is lower in the lattice; the
    induced locking scheme locks partitions instead of elements. *)
let partitioned ?adt ~part_name ~(part : Value.t -> Value.t) (spec : Spec.t) =
  let coarsen_clause = function
    | Formula.Cmp (Formula.Ne, a, b) as c when Option.is_some (Formula.simple_clause c)
      ->
        Formula.Cmp
          (Formula.Ne, Formula.Vfun (part_name, [ a ]), Formula.Vfun (part_name, [ b ]))
    | c -> c
  in
  let rec coarsen = function
    | Formula.And (a, b) -> Formula.And (coarsen a, coarsen b)
    | (Formula.Cmp _ | Formula.True | Formula.False) as c -> coarsen_clause c
    | c -> c
  in
  let coarsen_cond f = if Formula.is_simple f then coarsen f else f in
  let out = map_conditions ?adt spec coarsen_cond in
  {
    out with
    Spec.vfuns =
      (part_name, function [ v ] -> part v | _ -> Value.type_error "part/1")
      :: out.Spec.vfuns;
  }

(* --------------------------------------------------------------- *)
(* Forcing pairs to conflict                                        *)
(* --------------------------------------------------------------- *)

(** Set the conditions for the given ordered pairs to [false] (e.g. turning
    read/write locks into exclusive locks by forbidding reader/reader
    sharing, as in the preflow-push [ex] variant, paper §5). *)
let force_false ?adt (spec : Spec.t) pairs =
  let out = map_conditions ?adt spec Fun.id in
  List.iter (fun (m1, m2) -> Spec.add_directed out ~first:m1 ~second:m2 Formula.False) pairs;
  out
