(** Method descriptors and invocation records.

    An invocation is one atomic method call on a linearizable data
    structure (paper §2.1): a method, its arguments, its return value, the
    transaction that issued it and a global sequence number giving its
    linearization order (used by the general gatekeeper to roll state
    back). *)

type meth = {
  name : string;
  arity : int;
  mutates : bool;
      (** [true] if the method can change the {e abstract} state
          (e.g. [contains] and [nearest] never do). *)
  concrete : bool;
      (** [true] if the method can change the {e concrete} state.  Implied
          by [mutates]; additionally true for abstractly read-only methods
          with concrete side effects — the canonical example is
          union-find's [find], whose path compression rewrites parent
          pointers.  Transaction aborts must undo such methods (an aborted
          invocation has already executed when a gatekeeper detects the
          conflict). *)
  rollback_log : bool;
      (** [true] if the general gatekeeper must include this method in its
          mutation log so that past-state reconstruction undoes it.
          Defaults to [concrete]; can be turned off for concrete-but-
          abstractly-read-only methods whose writes provably never
          invalidate reconstruction (see
          {!Commlat_adts.Union_find.m_find_light}). *)
}

(** [meth name arity] describes a method.  [mutates] defaults to [true];
    [concrete] defaults to [mutates]; [rollback_log] defaults to
    [concrete]. *)
val meth : ?mutates:bool -> ?concrete:bool -> ?rollback_log:bool -> string -> int -> meth

val pp_meth : meth Fmt.t

type t = {
  uid : int;  (** unique id; lets ADTs attach per-invocation undo records *)
  meth : meth;
  args : Value.t array;
  mutable ret : Value.t;
  txn : int;  (** issuing transaction *)
  mutable seq : int;
      (** global linearization index, stamped by the detector when the
          invocation executes *)
}

(** Fresh invocation record with an unset return value and a unique
    [uid]. *)
val make : txn:int -> meth -> Value.t array -> t

val pp : t Fmt.t

(** [env ~sfun ~vfun i1 i2] builds a formula-evaluation environment binding
    the [M1] variables to invocation [i1] and the [M2] variables to [i2].
    State functions are delegated to [sfun] (which also receives the
    canonical term, letting gatekeepers answer from logs); pure value
    functions to [vfun]. *)
val env :
  sfun:(string -> Formula.state -> Value.t list -> Formula.term -> Value.t) ->
  vfun:(string -> Value.t list -> Value.t) ->
  t ->
  t ->
  Formula.env
