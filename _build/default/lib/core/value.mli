(** Universal runtime values for the commutativity-formula interpreter.

    Commutativity conditions (the logic {b L1} of the paper, Fig. 1) range
    over method arguments, return values and the results of uninterpreted
    functions on abstract state.  At runtime these are all represented
    uniformly as values of type {!t}, so that the generic detector
    constructions (abstract locking, gatekeeping) can log, compare and hash
    them without knowing the concrete ADT. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Point of float array  (** d-dimensional point, used by the kd-tree *)
  | Pair of t * t
  | Opt of t option
  | List of t list

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val point : float array -> t
val pair : t -> t -> t
val opt : t option -> t
val list : t list -> t
val true_ : t
val false_ : t

(** {1 Errors} *)

exception Type_error of string

(** [type_error fmt …] raises {!Type_error} with a formatted message. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Printing} *)

val pp : t Fmt.t
val to_string : t -> string

(** {1 Structural operations}

    Equality is structural; floats compare with [Float.equal] (so
    [nan = nan]), which is what memoised gatekeeper logs need: a logged
    value must compare equal to itself when re-checked. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** [hash] is compatible with {!equal}: equal values hash equally. *)
val hash : t -> int

(** {1 Projections}

    All raise {!Type_error} on a constructor mismatch.  [to_float] also
    accepts [Int]. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_point : t -> float array
val to_opt : t -> t option

(** {1 Containers keyed by values} *)

module As_key : sig
  type nonrec t = t

  val equal : t -> t -> bool
  val hash : t -> int
  val compare : t -> t -> int
end

module Tbl : Hashtbl.S with type key = t
module Map : Map.S with type key = t
module Set : Set.S with type elt = t
