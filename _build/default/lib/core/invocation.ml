(** Method descriptors and invocation records.

    An invocation is one atomic method call on a linearizable data structure
    (paper §2.1): a method, its arguments, its return value, the transaction
    that issued it and a global sequence number giving its linearization
    order (used by the general gatekeeper to roll state back). *)

type meth = {
  name : string;
  arity : int;
  mutates : bool;
      (** [true] if the method can change the {e abstract} state
          (e.g. [contains] and [nearest] never do). *)
  concrete : bool;
      (** [true] if the method can change the {e concrete} state.  Implied
          by [mutates]; additionally true for abstractly read-only methods
          with concrete side effects — the canonical example is
          union-find's [find], whose path compression rewrites parent
          pointers.  Transaction aborts must undo such methods (an aborted
          invocation has already executed when a gatekeeper detects the
          conflict). *)
  rollback_log : bool;
      (** [true] if the general gatekeeper must include this method in its
          mutation log so that past-state reconstruction undoes it.
          Defaults to [concrete]; can be turned off for concrete-but-
          abstractly-read-only methods whose writes provably never
          invalidate reconstruction (see
          {!Commlat_adts.Union_find.m_find_light}). *)
}

let meth ?(mutates = true) ?concrete ?rollback_log name arity =
  let concrete = Option.value ~default:mutates concrete in
  { name; arity; mutates; concrete;
    rollback_log = Option.value ~default:concrete rollback_log }

let pp_meth ppf m = Fmt.string ppf m.name

type t = {
  uid : int;  (** unique id; lets ADTs attach per-invocation undo records *)
  meth : meth;
  args : Value.t array;
  mutable ret : Value.t;
  txn : int;  (** issuing transaction *)
  mutable seq : int;
      (** global linearization index, stamped by the detector when the
          invocation executes *)
}

let uid_counter = Atomic.make 0

let make ~txn meth args =
  { uid = Atomic.fetch_and_add uid_counter 1; meth; args; ret = Value.Unit; txn; seq = 0 }

let pp ppf i =
  Fmt.pf ppf "%s(%a)/%a@@t%d" i.meth.name
    Fmt.(array ~sep:comma Value.pp)
    i.args Value.pp i.ret i.txn

(** Build a formula-evaluation environment binding the [M1] variables to
    invocation [i1] and the [M2] variables to [i2].  State functions are
    delegated to [sfun]; pure value functions to [vfun]. *)
let env ~(sfun : string -> Formula.state -> Value.t list -> Formula.term -> Value.t)
    ~(vfun : string -> Value.t list -> Value.t) (i1 : t) (i2 : t) : Formula.env =
  let arg side idx =
    let i = match side with Formula.M1 -> i1 | Formula.M2 -> i2 in
    if idx < 0 || idx >= Array.length i.args then
      Value.type_error "argument index %d out of range for %s" idx i.meth.name
    else i.args.(idx)
  in
  let ret side = match side with Formula.M1 -> i1.ret | Formula.M2 -> i2.ret in
  { Formula.arg; ret; sfun; vfun }
