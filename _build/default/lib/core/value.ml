(** Universal runtime values for the commutativity-formula interpreter.

    Commutativity conditions (the logic {b L1} of the paper, Fig. 1) range
    over method arguments, return values and the results of uninterpreted
    functions on abstract state.  At runtime these are all represented
    uniformly as values of type {!t}, so that the generic detector
    constructions (abstract locking, gatekeeping) can log, compare and hash
    them without knowing the concrete ADT. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Point of float array  (** d-dimensional point, used by the kd-tree *)
  | Pair of t * t
  | Opt of t option
  | List of t list

let unit = Unit
let bool b = Bool b
let int i = Int i
let float f = Float f
let str s = Str s
let point p = Point p
let pair a b = Pair (a, b)
let opt o = Opt o
let list l = List l
let true_ = Bool true
let false_ = Bool false

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Point p ->
      Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") float) p
  | Pair (a, b) -> Fmt.pf ppf "<%a,%a>" pp a pp b
  | Opt None -> Fmt.string ppf "None"
  | Opt (Some v) -> Fmt.pf ppf "Some %a" pp v
  | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp) l

let to_string v = Fmt.str "%a" pp v

(* Structural equality.  Floats compare with [Float.equal] (so nan = nan),
   which is what we want for memoised logs: a logged value must compare
   equal to itself when re-checked. *)
let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Point x, Point y ->
      Array.length x = Array.length y
      && (let ok = ref true in
          Array.iteri (fun i xi -> if not (Float.equal xi y.(i)) then ok := false) x;
          !ok)
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | Opt None, Opt None -> true
  | Opt (Some x), Opt (Some y) -> equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | _ -> false

let rec compare a b =
  let tag = function
    | Unit -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 3 | Str _ -> 4
    | Point _ -> 5 | Pair _ -> 6 | Opt _ -> 7 | List _ -> 8
  in
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Point x, Point y ->
      let c = Int.compare (Array.length x) (Array.length y) in
      if c <> 0 then c
      else
        let rec go i =
          if i >= Array.length x then 0
          else
            let c = Float.compare x.(i) y.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
  | Pair (x1, x2), Pair (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | Opt x, Opt y -> Option.compare compare x y
  | List x, List y -> List.compare compare x y
  | _ -> Int.compare (tag a) (tag b)

let rec hash = function
  | Unit -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Point p -> Array.fold_left (fun acc f -> (acc * 31) + Hashtbl.hash f) 41 p
  | Pair (a, b) -> (hash a * 31) + hash b
  | Opt None -> 43
  | Opt (Some v) -> (hash v * 31) + 47
  | List l -> List.fold_left (fun acc v -> (acc * 31) + hash v) 53 l

(* Projections, raising {!Type_error} on mismatch. *)

let to_bool = function Bool b -> b | v -> type_error "expected bool, got %a" pp v
let to_int = function Int i -> i | v -> type_error "expected int, got %a" pp v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "expected float, got %a" pp v

let to_point = function Point p -> p | v -> type_error "expected point, got %a" pp v
let to_opt = function Opt o -> o | v -> type_error "expected option, got %a" pp v

module As_key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (As_key)
module Map = Stdlib.Map.Make (As_key)
module Set = Stdlib.Set.Make (As_key)
