(** Transactions: one speculative iteration of an amorphous-data-parallel
    loop (one unit of Galois-style optimistic work).

    A transaction accumulates undo actions as it performs method
    invocations; {!rollback} runs them newest-first, restoring the abstract
    state the transaction saw when it started. *)

type status = Running | Committed | Aborted

type t = {
  id : int;
  mutable undo : (unit -> unit) list;  (** newest first *)
  mutable status : status;
}

let counter = Atomic.make 1

let fresh () = { id = Atomic.fetch_and_add counter 1; undo = []; status = Running }

let id t = t.id

(** Register the inverse of an action just performed. *)
let push_undo t f = t.undo <- f :: t.undo

let commit t =
  t.status <- Committed;
  t.undo <- []

(** Undo everything the transaction did, newest action first. *)
let rollback t =
  List.iter (fun f -> f ()) t.undo;
  t.undo <- [];
  t.status <- Aborted
