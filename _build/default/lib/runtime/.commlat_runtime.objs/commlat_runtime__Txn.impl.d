lib/runtime/txn.ml: Atomic List
