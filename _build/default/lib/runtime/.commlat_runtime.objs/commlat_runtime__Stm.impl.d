lib/runtime/stm.ml: Commlat_adts Commlat_core Detector Fmt Hashtbl Invocation List Mem_trace Mutex
