lib/runtime/executor.ml: Atomic Commlat_core Detector Domain Fmt List Mutex Queue Txn Unix
