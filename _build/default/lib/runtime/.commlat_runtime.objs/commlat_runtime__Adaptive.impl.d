lib/runtime/adaptive.ml: Commlat_core Detector Executor Float Fmt List Txn
