lib/runtime/boost.ml: Commlat_core Detector Invocation Txn Value
