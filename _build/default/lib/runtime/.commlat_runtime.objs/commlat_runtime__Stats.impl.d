lib/runtime/stats.ml: Float Fmt Gc List Unix
