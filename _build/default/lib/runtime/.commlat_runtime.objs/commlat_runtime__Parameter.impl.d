lib/runtime/parameter.ml: Executor Fmt
