(** Sequential reference algorithms used to validate every speculative run
    end-to-end: Edmonds–Karp maximum flow, Kruskal minimum spanning tree,
    and brute-force nearest neighbour. *)

(* ------------------------------------------------------------------ *)
(* Edmonds–Karp max flow                                               *)
(* ------------------------------------------------------------------ *)

(** Maximum s-t flow of a directed capacity list (BFS augmenting paths). *)
let max_flow ~n ~source ~sink (edges : (int * int * int) list) : int =
  (* adjacency with residual capacities *)
  let cap = Hashtbl.create (4 * List.length edges) in
  let adj = Array.make n [] in
  let add_arc u v c =
    match Hashtbl.find_opt cap (u, v) with
    | Some r -> r := !r + c
    | None ->
        Hashtbl.add cap (u, v) (ref c);
        adj.(u) <- v :: adj.(u)
  in
  List.iter
    (fun (u, v, c) ->
      add_arc u v c;
      add_arc v u 0)
    edges;
  let residual u v = match Hashtbl.find_opt cap (u, v) with Some r -> !r | None -> 0 in
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    (* BFS for a shortest augmenting path *)
    let parent = Array.make n (-1) in
    parent.(source) <- source;
    let q = Queue.create () in
    Queue.add source q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if parent.(v) < 0 && residual u v > 0 then (
            parent.(v) <- u;
            if v = sink then found := true else Queue.add v q))
        adj.(u)
    done;
    if not !found then continue := false
    else (
      (* bottleneck *)
      let rec bottleneck v acc =
        if v = source then acc
        else bottleneck parent.(v) (min acc (residual parent.(v) v))
      in
      let amt = bottleneck sink max_int in
      let rec apply v =
        if v <> source then (
          let u = parent.(v) in
          (Hashtbl.find cap (u, v)) := residual u v - amt;
          (Hashtbl.find cap (v, u)) := residual v u + amt;
          apply u)
      in
      apply sink;
      total := !total + amt)
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Kruskal MST                                                         *)
(* ------------------------------------------------------------------ *)

(** Minimum spanning forest: returns the chosen edges (weight-sorted). *)
let kruskal ~n (edges : (int * int * int) array) : (int * int * int) list =
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (
    let r = find parent.(i) in
    parent.(i) <- r;
    r)
  in
  let sorted = Array.copy edges in
  Array.sort (fun (_, _, w1) (_, _, w2) -> Int.compare w1 w2) sorted;
  let mst = ref [] in
  Array.iter
    (fun (u, v, w) ->
      let ru = find u and rv = find v in
      if ru <> rv then (
        parent.(ru) <- rv;
        mst := (u, v, w) :: !mst))
    sorted;
  List.rev !mst

let mst_weight ~n edges =
  List.fold_left (fun acc (_, _, w) -> acc + w) 0 (kruskal ~n edges)

(* ------------------------------------------------------------------ *)
(* Brute-force nearest neighbour                                       *)
(* ------------------------------------------------------------------ *)

open Commlat_adts

(** Nearest point to [q] among [pts], excluding [q] itself (matching the
    kd-tree's query convention); the point at infinity if none. *)
let nearest_brute (pts : Point.t list) (q : Point.t) : Point.t =
  List.fold_left
    (fun best p ->
      if Point.equal p q then best
      else if Point.dist2 q p < Point.dist2 q best then p
      else best)
    (Point.at_infinity (Array.length q))
    pts
