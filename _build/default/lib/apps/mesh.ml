(** Random-weight mesh graphs: the Boruvka input (the paper uses a randomly
    generated 1000×1000 mesh).

    Nodes form an [r]×[c] grid; each node is connected to its right and
    down neighbours.  Edge weights are a random permutation of
    [0 .. m-1], so all weights are distinct and the minimum spanning tree
    is unique — which lets tests compare the speculative MST edge-for-edge
    against Kruskal. *)

type t = {
  nodes : int;
  edges : (int * int * int) array;  (** (u, v, weight), undirected *)
}

let generate ?(seed = 7) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Mesh.generate";
  let node r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (node r c, node r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (node r c, node (r + 1) c) :: !edges
    done
  done;
  let edges = Array.of_list !edges in
  let m = Array.length edges in
  let weights = Array.init m Fun.id in
  let st = Random.State.make [| seed; rows; cols |] in
  for i = m - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = weights.(i) in
    weights.(i) <- weights.(j);
    weights.(j) <- tmp
  done;
  {
    nodes = rows * cols;
    edges = Array.mapi (fun i (u, v) -> (u, v, weights.(i))) edges;
  }
