(** Agglomerative clustering (Walter et al.), the paper's forward-gatekeeper
    case study (§5).

    A kd-tree holds all current cluster centres.  The operator picks a
    point [p], queries its nearest neighbour [n]; if the relationship is
    mutual ([nearest n = p]) the two are clustered: both are removed and a
    new point (their midpoint) is inserted and becomes new work.  Otherwise
    [p] is requeued (the globally closest pair is always mutual, so every
    pass makes progress).  The algorithm ends when a single cluster
    remains; the dendrogram records each merge.

    Variants: [kd-gk] — forward gatekeeper from the Fig. 4 specification
    (which is ONLINE-CHECKABLE but not SIMPLE); [kd-ml] — the STM baseline,
    which conflicts on the bounding-box updates even for operations that
    semantically commute. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

type t = {
  tree : Kdtree.t;
  mutable dendrogram : (Point.t * Point.t * Point.t) list;
      (** (a, b, merged) — newest first *)
  mu : Mutex.t;
}

let create ~dims () = { tree = Kdtree.create ~dims (); dendrogram = []; mu = Mutex.create () }

(** Insert the initial points (pre-speculative phase). *)
let load t (pts : Point.t array) = Array.iter (fun p -> ignore (Kdtree.add t.tree p)) pts

let midpoint (a : Point.t) (b : Point.t) : Point.t =
  Array.init (Array.length a) (fun i -> (a.(i) +. b.(i)) /. 2.0)

let kd_exec (t : t) name (inv : Invocation.t) =
  Kdtree.exec t.tree name inv.Invocation.args

let kd_nearest det (t : t) (txn : Txn.t) p =
  Point.of_value
    (Boost.invoke_ro det txn Kdtree.m_nearest [| Point.to_value p |]
       (kd_exec t "nearest"))

let kd_remove det (t : t) (txn : Txn.t) p =
  Value.to_bool
    (Boost.invoke det txn ~undo:(Kdtree.undo t.tree) Kdtree.m_remove
       [| Point.to_value p |] (kd_exec t "remove"))

let kd_add det (t : t) (txn : Txn.t) p =
  Value.to_bool
    (Boost.invoke det txn ~undo:(Kdtree.undo t.tree) Kdtree.m_add
       [| Point.to_value p |] (kd_exec t "add"))

(** One transaction: try to cluster [p] with its nearest neighbour. *)
let operator (t : t) (det : Detector.t) (txn : Txn.t) (p : Point.t) :
    Point.t list =
  let n = kd_nearest det t txn p in
  if Point.is_at_infinity n then
    (* [p] is gone (already clustered) or alone: no work left for it *)
    []
  else begin
    let m = kd_nearest det t txn n in
    if Point.equal m p then begin
      (* mutual nearest neighbours: cluster *)
      let removed_p = kd_remove det t txn p in
      if not removed_p then
        (* [p] vanished concurrently — the detector admitted this only if
           the ops commute, i.e. [p] was never there: retire this item. *)
        []
      else if not (kd_remove det t txn n) then begin
        (* [n] gone but [p] was present: cannot happen once conflicts are
           checked ([n] is our logged nearest-neighbour return value, so a
           concurrent removal of [n] conflicts); restore [p] defensively. *)
        ignore (kd_add det t txn p);
        [ p ]
      end
      else begin
        let c = midpoint p n in
        ignore (kd_add det t txn c);
        Mutex.protect t.mu (fun () ->
            let old = t.dendrogram in
            Txn.push_undo txn (fun () ->
                Mutex.protect t.mu (fun () -> t.dendrogram <- old));
            t.dendrogram <- (p, n, c) :: old);
        [ c ]
      end
    end
    else
      (* not mutual: requeue [p] (if still live) — it keeps its chance once
         the closer pair around [n] has been resolved.  The liveness check
         is a real [contains] invocation: a plain read here could observe an
         uncommitted concurrent removal of [p] and, if that transaction then
         aborted, leave a live point with no worklist item. *)
      let live =
        Value.to_bool
          (Boost.invoke_ro det txn Kdtree.m_contains [| Point.to_value p |]
             (kd_exec t "contains"))
      in
      if live then [ p ] else []
  end

(** Run clustering to completion; returns the dendrogram (oldest merge
    first) and the executor stats. *)
let run ?(processors = 4) ~detector ~(points : Point.t array) ~dims () :
    (Point.t * Point.t * Point.t) list * Executor.stats =
  let t = create ~dims () in
  load t points;
  let stats =
    Executor.run_rounds ~processors ~detector ~operator:(operator t detector)
      (Array.to_list points)
  in
  (List.rev t.dendrogram, stats)

let profile ~detector ~(points : Point.t array) ~dims () : Parameter.profile =
  let t = create ~dims () in
  load t points;
  Parameter.profile ~detector ~operator:(operator t detector) (Array.to_list points)
