(** GENRMF-style synthetic maximum-flow inputs (Goldfarb & Grigoriadis's
    RMF family — the paper evaluates preflow-push on a GENRMF instance from
    the CATS maxflow challenge suite; we implement the generator itself,
    see DESIGN.md §4.2).

    The network is a stack of [b] frames, each an [a]×[a] grid:

    - inside a frame, grid neighbours are connected in both directions with
      large capacity [c2 * a * a];
    - each vertex of frame [i] is connected to a distinct (randomly
      permuted) vertex of frame [i+1] with capacity drawn uniformly from
      [c1 .. c2];
    - the source is the first vertex of the first frame, the sink the last
      vertex of the last frame. *)

type t = {
  n : int;
  source : int;
  sink : int;
  edges : (int * int * int) list;
}

let generate ?(c1 = 1) ?(c2 = 100) ?(seed = 42) ~a ~b () =
  if a < 1 || b < 2 then invalid_arg "Genrmf.generate: need a >= 1, b >= 2";
  let st = Random.State.make [| seed; a; b; c1; c2 |] in
  let node frame x y = (frame * a * a) + (x * a) + y in
  let n = a * a * b in
  let in_frame_cap = c2 * a * a in
  let edges = ref [] in
  let add u v c = edges := (u, v, c) :: !edges in
  for f = 0 to b - 1 do
    (* in-frame grid edges, both directions *)
    for x = 0 to a - 1 do
      for y = 0 to a - 1 do
        let u = node f x y in
        if x + 1 < a then (
          add u (node f (x + 1) y) in_frame_cap;
          add (node f (x + 1) y) u in_frame_cap);
        if y + 1 < a then (
          add u (node f x (y + 1)) in_frame_cap;
          add (node f x (y + 1)) u in_frame_cap)
      done
    done;
    (* inter-frame edges along a random permutation *)
    if f + 1 < b then (
      let perm = Array.init (a * a) Fun.id in
      for i = Array.length perm - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      Array.iteri
        (fun i p ->
          let u = (f * a * a) + i and v = ((f + 1) * a * a) + p in
          add u v (c1 + Random.State.int st (max 1 (c2 - c1 + 1))))
        perm)
  done;
  { n; source = 0; sink = n - 1; edges = !edges }
