lib/apps/mesh.ml: Array Fun Random
