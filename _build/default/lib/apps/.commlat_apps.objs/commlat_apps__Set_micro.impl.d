lib/apps/set_micro.ml: Abstract_lock Boost Commlat_adts Commlat_core Commlat_runtime Detector Executor Gatekeeper Gc Invocation Iset List Random Txn Value
