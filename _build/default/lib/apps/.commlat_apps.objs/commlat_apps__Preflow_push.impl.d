lib/apps/preflow_push.ml: Array Boost Commlat_adts Commlat_core Commlat_runtime Detector Executor Flow_graph Genrmf Invocation List Parameter Txn Value
