lib/apps/clustering.ml: Array Boost Commlat_adts Commlat_core Commlat_runtime Detector Executor Invocation Kdtree List Mutex Parameter Point Txn Value
