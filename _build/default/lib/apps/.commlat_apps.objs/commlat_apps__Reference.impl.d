lib/apps/reference.ml: Array Commlat_adts Fun Hashtbl Int List Point Queue
