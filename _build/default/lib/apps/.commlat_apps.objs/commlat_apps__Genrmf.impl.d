lib/apps/genrmf.ml: Array Fun Random
