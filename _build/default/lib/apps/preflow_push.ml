(** Preflow-push maximum flow (Goldberg & Tarjan), the paper's first case
    study (§5): an amorphous data-parallel worklist algorithm over the
    {!Commlat_adts.Flow_graph} ADT.

    A worklist holds nodes with excess flow.  The operator pops a node,
    pushes excess along admissible residual edges ([height u = height v +
    1]), relabels the node if excess remains, and requeues any node that
    gained excess.  All graph accesses go through a conflict detector; the
    three evaluated variants draw their specifications from the
    commutativity lattice ({!Flow_graph.spec_rw} = [ml],
    {!Flow_graph.spec_exclusive} = [ex], {!Flow_graph.spec_partitioned} =
    [part]). *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

type problem = { g : Flow_graph.t; n : int; source : int; sink : int }

let of_genrmf (i : Genrmf.t) =
  { g = Flow_graph.of_edges ~n:i.Genrmf.n i.Genrmf.edges; n = i.Genrmf.n;
    source = i.Genrmf.source; sink = i.Genrmf.sink }

(** Saturate the source's outgoing edges and return the initial worklist
    (done outside the speculative phase, as the paper's algorithm
    initializes the worklist with the source's neighbours). *)
let initialize (p : problem) : int list =
  let open Flow_graph in
  p.g.height.(p.source) <- p.n;
  let active = ref [] in
  Array.iter
    (fun e ->
      if e.cap > 0 then (
        let amt = e.cap in
        e.cap <- 0;
        p.g.adj.(e.dst).(e.rev).cap <- p.g.adj.(e.dst).(e.rev).cap + amt;
        p.g.excess.(e.dst) <- p.g.excess.(e.dst) + amt;
        p.g.excess.(p.source) <- p.g.excess.(p.source) - amt;
        if e.dst <> p.sink then active := e.dst :: !active))
    p.g.adj.(p.source);
  List.rev !active

(** The operator: one worklist item = one transaction discharging [u]'s
    current excess (one pass over its neighbours + at most one relabel —
    the classic "discharge step"). *)
let operator (p : problem) (det : Detector.t) (txn : Txn.t) (u : int) : int list
    =
  if u = p.source || u = p.sink then []
  else
    let fg name (inv : Invocation.t) = Flow_graph.exec p.g name inv.Invocation.args in
    let iargs l = Array.of_list (List.map (fun i -> Value.Int i) l) in
    let decode_neighbors v =
      match v with
      | Value.List [ Value.Int excess; Value.Int height; Value.List ns ] ->
          ( excess,
            height,
            List.map
              (function
                | Value.Pair (Value.Int v, Value.Int c) -> (v, c)
                | _ -> assert false)
              ns )
      | _ -> assert false
    in
    let excess, height, ns =
      decode_neighbors
        (Boost.invoke_ro det txn Flow_graph.m_get_neighbors (iargs [ u ])
           (fg "get_neighbors"))
    in
    if excess <= 0 then [] (* stale item *)
    else begin
      let new_work = ref [] in
      let remaining = ref excess in
      (* read neighbour heights (each read is a checked invocation) *)
      let heights =
        List.map
          (fun (v, c) ->
            ( v,
              c,
              Value.to_int
                (Boost.invoke_ro det txn Flow_graph.m_height (iargs [ v ])
                   (fg "height")) ))
          ns
      in
      let residuals =
        (* track residual capacity net of our own pushes, so the relabel
           below sees up-to-date capacities (a stale saturated edge could
           yield a non-increasing relabel and livelock) *)
        List.map
          (fun (v, c, hv) ->
            if !remaining > 0 && c > 0 && height = hv + 1 then begin
              let amt =
                Value.to_int
                  (Boost.invoke det txn ~undo:(Flow_graph.undo p.g)
                     Flow_graph.m_push_flow (iargs [ u; v ]) (fg "push_flow"))
              in
              if amt > 0 then begin
                remaining := !remaining - amt;
                if v <> p.source && v <> p.sink && not (List.mem v !new_work)
                then new_work := v :: !new_work
              end;
              (v, c - amt, hv)
            end
            else (v, c, hv))
          heights
      in
      if !remaining > 0 then begin
        (* relabel: one above the lowest residual neighbour *)
        let min_h =
          List.fold_left
            (fun acc (_, c, hv) -> if c > 0 then min acc hv else acc)
            max_int residuals
        in
        if min_h < max_int then begin
          ignore
            (Boost.invoke det txn ~undo:(Flow_graph.undo p.g)
               Flow_graph.m_relabel_to
               (iargs [ u; min_h + 1 ])
               (fg "relabel_to"));
          new_work := u :: !new_work
        end
      end;
      List.rev !new_work
    end

(** Run to completion under [detector] with the bulk-synchronous executor;
    returns the flow value that reached the sink and the executor stats. *)
let run ?(processors = 4) ~detector (p : problem) : int * Executor.stats =
  let init = initialize p in
  let stats =
    Executor.run_rounds ~processors ~detector ~operator:(operator p detector) init
  in
  (Flow_graph.excess_of p.g p.sink, stats)

(** ParaMeter profile under [detector]. *)
let profile ~detector (p : problem) : Parameter.profile =
  let init = initialize p in
  Parameter.profile ~detector ~operator:(operator p detector) init
