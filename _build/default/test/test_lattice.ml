(* Tests for the commutativity lattice: lattice laws via bounded semantic
   equivalence, syntactic-implication soundness, and the orderings the
   paper claims between its example specifications. *)

open Commlat_core
open Formula

(* Sample environments: all combinations of small values for the two
   invocations' argument and return slots. *)
let sample_envs =
  let vals = [ Value.Int 0; Value.Int 1; Value.Bool true; Value.Bool false ] in
  List.concat_map
    (fun a1 ->
      List.concat_map
        (fun a2 ->
          List.concat_map
            (fun r1 ->
              List.map
                (fun r2 ->
                  Formula.env
                    ~vfun:(fun name args ->
                      match (name, args) with
                      | "part", [ v ] -> Value.Int (Value.hash v mod 2)
                      | _ -> raise (Unsupported name))
                    ~arg:(fun side _ -> match side with M1 -> a1 | M2 -> a2)
                    ~ret:(function M1 -> r1 | M2 -> r2)
                    ())
                vals)
            vals)
        vals)
    vals

let gen_formula = Test_formula.gen_formula

let leq = Lattice.leq_bounded ~envs:sample_envs
let equiv = Lattice.equiv_bounded ~envs:sample_envs

let check_bool = Alcotest.(check bool)

let test_syntactic_sound =
  QCheck.Test.make ~name:"leq_syntactic implies semantic leq" ~count:500
    (QCheck.pair gen_formula gen_formula) (fun (f1, f2) ->
      (not (Lattice.leq_syntactic f1 f2)) || leq f1 f2)

let test_meet_lower =
  QCheck.Test.make ~name:"meet is a lower bound" ~count:300
    (QCheck.pair gen_formula gen_formula) (fun (f1, f2) ->
      let m = Lattice.meet f1 f2 in
      leq m f1 && leq m f2)

let test_join_upper =
  QCheck.Test.make ~name:"join is an upper bound" ~count:300
    (QCheck.pair gen_formula gen_formula) (fun (f1, f2) ->
      let j = Lattice.join f1 f2 in
      leq f1 j && leq f2 j)

let test_meet_idempotent =
  QCheck.Test.make ~name:"meet idempotent (semantically)" ~count:200 gen_formula
    (fun f -> equiv (Lattice.meet f f) f)

let test_absorption =
  QCheck.Test.make ~name:"absorption: f meet (f join g) ~ f" ~count:200
    (QCheck.pair gen_formula gen_formula) (fun (f, g) ->
      equiv (Lattice.meet f (Lattice.join f g)) f)

let test_bot_least =
  QCheck.Test.make ~name:"false is least" ~count:200 gen_formula (fun f ->
      leq Lattice.bot f)

(* The lattice relations between the paper's set specifications:
   bot <= partitioned <= exclusive <= fig3 <= fig2(precise). *)
let test_set_spec_chain () =
  let open Commlat_adts in
  let precise = Iset.precise_spec () in
  let fig3 = Iset.simple_spec () in
  let excl = Iset.exclusive_spec () in
  let part = Iset.partitioned_spec ~nparts:4 () in
  let bot = Lattice.spec_bot ~adt:"set" Iset.methods in
  check_bool "bot <= part" true (Lattice.spec_leq bot part);
  check_bool "part <= excl" true (Lattice.spec_leq part excl);
  check_bool "excl <= fig3" true (Lattice.spec_leq excl fig3);
  check_bool "fig3 <= precise" true (Lattice.spec_leq fig3 precise);
  check_bool "precise </= fig3" false (Lattice.spec_leq precise fig3);
  check_bool "fig3 </= excl" false (Lattice.spec_leq fig3 excl);
  (* meet/join of specs *)
  let m = Lattice.spec_meet fig3 precise in
  check_bool "meet of comparable = lower" true
    (Lattice.spec_leq m fig3 && Lattice.spec_leq fig3 m);
  let j = Lattice.spec_join fig3 precise in
  check_bool "join of comparable >= upper" true (Lattice.spec_leq precise j)

(* partition clause semantically implies the element clause *)
let test_partition_implication () =
  let f_elem = ne (arg1 0) (arg2 0) in
  let f_part = ne (vfun "part" [ arg1 0 ]) (vfun "part" [ arg2 0 ]) in
  check_bool "part(a)!=part(b) => a!=b" true (leq f_part f_elem);
  check_bool "a!=b =/=> part(a)!=part(b)" false (leq f_elem f_part)

(* flow-graph chain used by preflow-push *)
let test_flow_spec_chain () =
  let open Commlat_adts in
  let rw = Flow_graph.spec_rw () in
  let ex = Flow_graph.spec_exclusive () in
  check_bool "ex <= rw" true (Lattice.spec_leq ex rw);
  check_bool "rw </= ex" false (Lattice.spec_leq rw ex)

let suite =
  [
    QCheck_alcotest.to_alcotest test_syntactic_sound;
    QCheck_alcotest.to_alcotest test_meet_lower;
    QCheck_alcotest.to_alcotest test_join_upper;
    QCheck_alcotest.to_alcotest test_meet_idempotent;
    QCheck_alcotest.to_alcotest test_absorption;
    QCheck_alcotest.to_alcotest test_bot_least;
    Alcotest.test_case "set spec chain" `Quick test_set_spec_chain;
    Alcotest.test_case "partition implication" `Quick test_partition_implication;
    Alcotest.test_case "flow spec chain" `Quick test_flow_spec_chain;
  ]
