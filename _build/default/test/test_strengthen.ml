(* Tests for the disciplined strengthening transforms of paper §4. *)

open Commlat_core
open Commlat_adts
open Formula

let check_bool = Alcotest.(check bool)

(* Dropping the return-value disjuncts from Fig. 2 must yield exactly the
   Fig. 3 specification — the paper's worked example of moving down the
   lattice. *)
let test_simple_core_fig2_to_fig3 () =
  let derived = Strengthen.simple_spec ~adt:"set-rw" (Iset.precise_spec ()) in
  let fig3 = Iset.simple_spec () in
  List.iter
    (fun ((m1, m2), f) ->
      let g = Spec.cond derived ~first:m1 ~second:m2 in
      check_bool (Fmt.str "(%s,%s) matches Fig.3" m1 m2) true (Formula.equal f g))
    (Spec.pairs fig3)

let test_simple_core_formula () =
  let f = Or (ne (arg1 0) (arg2 0), eq ret1 (cbool false)) in
  check_bool "keeps the SIMPLE disjunct" true
    (Formula.equal (Strengthen.simple_core f) (ne (arg1 0) (arg2 0)));
  check_bool "non-simple residue becomes false" true
    (Formula.equal (Strengthen.simple_core (eq ret1 (cbool false))) False);
  check_bool "already simple unchanged" true
    (Formula.equal (Strengthen.simple_core True) True)

let test_strengthenings_are_strengthenings () =
  let precise = Iset.precise_spec () in
  let fig3 = Iset.simple_spec () in
  let excl = Iset.exclusive_spec () in
  let part = Iset.partitioned_spec ~nparts:4 () in
  check_bool "fig3 strengthens precise" true
    (Strengthen.check_strengthening ~stronger:fig3 ~weaker:precise);
  check_bool "excl strengthens fig3" true
    (Strengthen.check_strengthening ~stronger:excl ~weaker:fig3);
  check_bool "part strengthens excl" true
    (Strengthen.check_strengthening ~stronger:part ~weaker:excl);
  check_bool "precise does not strengthen fig3" false
    (Strengthen.check_strengthening ~stronger:precise ~weaker:fig3)

let test_partitioned_classifies_simple () =
  let part = Iset.partitioned_spec ~nparts:4 () in
  check_bool "partitioned spec is SIMPLE" true (Spec.classify part = Simple);
  (* its conditions really use the part vfun *)
  let f = Spec.cond part ~first:"add" ~second:"add" in
  let has_part =
    match f with
    | Cmp (Ne, Vfun ("part", _), Vfun ("part", _)) -> true
    | _ -> false
  in
  check_bool "clauses coarsened" true has_part

let test_force_false () =
  let s = Strengthen.force_false (Iset.simple_spec ()) [ ("add", "add") ] in
  check_bool "forced pair" true
    (Formula.equal (Spec.cond s ~first:"add" ~second:"add") False);
  check_bool "other pairs kept" true
    (Formula.equal
       (Spec.cond s ~first:"add" ~second:"remove")
       (ne (arg1 0) (arg2 0)));
  check_bool "still a strengthening" true
    (Strengthen.check_strengthening ~stronger:s ~weaker:(Iset.simple_spec ()))

(* The flow-graph [ex] variant is exactly [rw] with reader/reader sharing
   removed. *)
let test_flow_ex_vs_rw () =
  let rw = Flow_graph.spec_rw () and ex = Flow_graph.spec_exclusive () in
  check_bool "ex <= rw" true (Strengthen.check_strengthening ~stronger:ex ~weaker:rw);
  List.iter
    (fun ((m1, m2), f_rw) ->
      let f_ex = Spec.cond ex ~first:m1 ~second:m2 in
      let both_reads =
        List.mem m1 [ "get_neighbors"; "height" ] && List.mem m2 [ "get_neighbors"; "height" ]
      in
      if not both_reads then
        check_bool (Fmt.str "(%s,%s) unchanged" m1 m2) true (Formula.equal f_rw f_ex))
    (Spec.pairs rw)

let suite =
  [
    Alcotest.test_case "Fig.2 -> Fig.3 via simple_core" `Quick
      test_simple_core_fig2_to_fig3;
    Alcotest.test_case "simple_core on formulas" `Quick test_simple_core_formula;
    Alcotest.test_case "strengthening chains verified" `Quick
      test_strengthenings_are_strengthenings;
    Alcotest.test_case "partitioned spec is SIMPLE with part clauses" `Quick
      test_partitioned_classifies_simple;
    Alcotest.test_case "force_false" `Quick test_force_false;
    Alcotest.test_case "flow ex vs rw" `Quick test_flow_ex_vs_rw;
  ]
