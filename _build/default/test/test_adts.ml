(* Unit and property tests of the substrate ADTs: set implementations,
   kd-tree, union-find, flow graph, accumulator, points. *)

open Commlat_core
open Commlat_adts

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------- *)
(* Set: the two concrete implementations agree                    *)
(* ------------------------------------------------------------- *)

let gen_set_ops =
  QCheck.(
    make
      ~print:(fun l -> Fmt.str "%d ops" (List.length l))
      Gen.(
        list_size (int_bound 60)
          (pair (oneofl [ "add"; "remove"; "contains" ]) (int_bound 8))))

let test_set_impls_agree =
  QCheck.Test.make ~name:"hash and list set impls observationally equal"
    ~count:300 gen_set_ops (fun ops ->
      let h = Iset.create ~impl:`Hash () and l = Iset.create ~impl:`List () in
      List.for_all
        (fun (m, v) ->
          let args = [| Value.Int v |] in
          Value.equal (Iset.exec h m args) (Iset.exec l m args))
        ops
      && List.equal Value.equal (Iset.elements h) (Iset.elements l))

let test_set_basics () =
  let s = Iset.create ~impl:`List () in
  check_bool "add new" true (Iset.add s (Value.Int 3));
  check_bool "add dup" false (Iset.add s (Value.Int 3));
  check_bool "contains" true (Iset.contains s (Value.Int 3));
  check_bool "remove" true (Iset.remove s (Value.Int 3));
  check_bool "remove gone" false (Iset.remove s (Value.Int 3));
  check_int "cardinal" 0 (Iset.cardinal s);
  (* ordering invariant of the list impl *)
  List.iter (fun i -> ignore (Iset.add s (Value.Int i))) [ 5; 1; 3; 2; 4 ];
  Alcotest.(check (list int))
    "sorted elements" [ 1; 2; 3; 4; 5 ]
    (List.map Value.to_int (Iset.elements s))

let test_set_undo () =
  let s = Iset.create () in
  let inv = Invocation.make ~txn:1 Iset.m_add [| Value.Int 7 |] in
  inv.Invocation.ret <- Iset.exec s "add" inv.Invocation.args;
  check_bool "added" true (Iset.contains s (Value.Int 7));
  Iset.undo s inv;
  check_bool "undone" false (Iset.contains s (Value.Int 7));
  (* undo of an unexecuted invocation is a no-op *)
  let inv2 = Invocation.make ~txn:1 Iset.m_add [| Value.Int 9 |] in
  Iset.undo s inv2;
  check_int "still empty" 0 (Iset.cardinal s)

(* ------------------------------------------------------------- *)
(* Kd-tree                                                        *)
(* ------------------------------------------------------------- *)

let gen_kd_ops =
  QCheck.(
    make
      ~print:(fun l -> Fmt.str "%d ops" (List.length l))
      Gen.(
        list_size (int_bound 80)
          (tup3 (oneofl [ `Add; `Remove; `Nearest ])
             (float_bound_inclusive 4.0) (float_bound_inclusive 4.0))))

let test_kdtree_vs_brute =
  QCheck.Test.make ~name:"kd-tree tracks a brute-force set+nearest model"
    ~count:200 gen_kd_ops (fun ops ->
      let t = Kdtree.create ~dims:2 () in
      let live = ref [] in
      List.for_all
        (fun (op, x, y) ->
          (* quantize to hit duplicates *)
          let p = [| Float.round x; Float.round y |] in
          match op with
          | `Add ->
              let expected = not (List.exists (Point.equal p) !live) in
              let got = Kdtree.add t p in
              if got then live := p :: !live;
              got = expected
          | `Remove ->
              let expected = List.exists (Point.equal p) !live in
              let got = Kdtree.remove t p in
              if got then live := List.filter (fun q -> not (Point.equal q p)) !live;
              got = expected
          | `Nearest ->
              let got = Kdtree.nearest t p in
              let want = Commlat_apps.Reference.nearest_brute !live p in
              Float.equal (Point.dist_value (Value.Point p) (Value.Point got))
                (Point.dist_value (Value.Point p) (Value.Point want)))
        ops
      && Kdtree.size t = List.length !live)

let test_kdtree_nearest_excludes_self () =
  let t = Kdtree.create ~dims:2 () in
  ignore (Kdtree.add t [| 1.0; 1.0 |]);
  check_bool "single point: nearest is at infinity" true
    (Point.is_at_infinity (Kdtree.nearest t [| 1.0; 1.0 |]));
  ignore (Kdtree.add t [| 2.0; 2.0 |]);
  check_bool "nearest excludes the query point" true
    (Point.equal (Kdtree.nearest t [| 1.0; 1.0 |]) [| 2.0; 2.0 |])

let test_kdtree_empty () =
  let t = Kdtree.create ~dims:3 () in
  check_bool "empty nearest at infinity" true
    (Point.is_at_infinity (Kdtree.nearest t [| 0.; 0.; 0. |]));
  check_bool "remove on empty" false (Kdtree.remove t [| 0.; 0.; 0. |]);
  check_int "size" 0 (Kdtree.size t)

let test_kdtree_dim_mismatch () =
  let t = Kdtree.create ~dims:2 () in
  Alcotest.check_raises "wrong dims"
    (Invalid_argument "Kdtree.add: wrong dimension") (fun () ->
      ignore (Kdtree.add t [| 1.0 |]))

(* ------------------------------------------------------------- *)
(* Union-find                                                     *)
(* ------------------------------------------------------------- *)

let test_uf_basics () =
  let uf = Union_find.create () in
  let es = Union_find.create_elements uf 5 in
  check_int "elements" 5 (List.length es);
  check_bool "distinct sets" false (Union_find.same_set uf 0 1);
  check_bool "union merges" true (Union_find.union uf 0 1);
  check_bool "merged" true (Union_find.same_set uf 0 1);
  check_bool "re-union is noop" false (Union_find.union uf 0 1);
  check_int "find consistent" (Union_find.find uf 0) (Union_find.find uf 1)

let gen_uf_ops =
  QCheck.(
    make
      ~print:(fun l -> Fmt.str "%d unions" (List.length l))
      Gen.(list_size (int_bound 40) (pair (int_bound 15) (int_bound 15))))

(* model: naive quadratic DSU *)
let test_uf_vs_naive =
  QCheck.Test.make ~name:"union-find partitions match a naive model" ~count:300
    gen_uf_ops (fun unions ->
      let n = 16 in
      let uf = Union_find.create () in
      ignore (Union_find.create_elements uf n);
      let label = Array.init n Fun.id in
      let naive_union a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then
          Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf a b);
          naive_union a b)
        unions;
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> Union_find.same_set uf i j = (label.(i) = label.(j)))
            (List.init n Fun.id))
        (List.init n Fun.id))

let test_uf_union_by_rank_loser () =
  let uf = Union_find.create () in
  ignore (Union_find.create_elements uf 6);
  (* rank(0) becomes 1 *)
  ignore (Union_find.union uf 0 1);
  (* loser of (2, 0): 2 has rank 0 < 1 *)
  check_int "lower rank loses" 2 (Union_find.loser uf 2 0);
  (* tie: b's representative loses *)
  check_int "tie: rep(b) loses" (Union_find.rep uf 3) (Union_find.loser uf 2 3)

let test_uf_undo_redo_roundtrip =
  QCheck.Test.make ~name:"undo then redo of a union restores both states"
    ~count:300 gen_uf_ops (fun unions ->
      let uf = Union_find.create () in
      ignore (Union_find.create_elements uf 16);
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) unions;
      let before = Union_find.partition_snapshot uf in
      let inv = Invocation.make ~txn:1 Union_find.m_union [| Value.Int 3; Value.Int 9 |] in
      inv.Invocation.ret <- Union_find.exec_logged uf inv;
      let after = Union_find.partition_snapshot uf in
      Union_find.undo uf inv;
      let undone = Union_find.partition_snapshot uf in
      Union_find.redo uf inv;
      let redone = Union_find.partition_snapshot uf in
      Value.equal before undone && Value.equal after redone)

let test_uf_path_compression_observable () =
  (* find really does rewrite parent pointers: trace it *)
  let uf = Union_find.create () in
  ignore (Union_find.create_elements uf 4);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 2);
  let c = Mem_trace.collector () in
  Union_find.set_tracer uf c.Mem_trace.tracer;
  ignore (Union_find.find uf 3);
  check_bool "compression writes happened" true (Mem_trace.write_list c <> []);
  Union_find.set_tracer uf Mem_trace.null

(* ------------------------------------------------------------- *)
(* Flow graph                                                     *)
(* ------------------------------------------------------------- *)

let diamond () =
  (* s=0, t=3; two disjoint paths of capacity 3 and 2 *)
  Flow_graph.of_edges ~n:4 [ (0, 1, 3); (1, 3, 3); (0, 2, 2); (2, 3, 2) ]

let test_flow_push_basics () =
  let g = diamond () in
  let open Flow_graph in
  g.excess.(0) <- 10;
  g.height.(0) <- 1;
  check_int "push limited by capacity" 3 (push_flow_raw g 0 1);
  check_int "excess moved" 3 (excess_of g 1);
  check_int "source excess reduced" 7 (excess_of g 0);
  check_int "no height gradient, no push" 0 (push_flow_raw g 1 3);
  (* unpush is the exact inverse *)
  unpush_raw g 0 1 3;
  check_int "excess restored" 10 (excess_of g 0);
  check_int "dest restored" 0 (excess_of g 1)

let test_flow_relabel_undo () =
  let g = diamond () in
  let old = Flow_graph.relabel_to_raw g 2 5 in
  check_int "old height" 0 old;
  check_int "new height" 5 (Flow_graph.height_of g 2);
  let inv =
    Invocation.make ~txn:1 Flow_graph.m_relabel_to [| Value.Int 2; Value.Int 9 |]
  in
  inv.Invocation.ret <- Flow_graph.exec g "relabel_to" inv.Invocation.args;
  check_int "relabelled" 9 (Flow_graph.height_of g 2);
  Flow_graph.undo g inv;
  check_int "undone" 5 (Flow_graph.height_of g 2)

let test_flow_conservation =
  QCheck.Test.make ~name:"pushes conserve total excess" ~count:200
    QCheck.(
      make
        ~print:(fun l -> Fmt.str "%d pushes" (List.length l))
        Gen.(list_size (int_bound 20) (pair (int_bound 3) (int_bound 3))))
    (fun pushes ->
      let g = diamond () in
      let open Flow_graph in
      g.excess.(0) <- 10;
      g.height.(0) <- 2;
      g.height.(1) <- 1;
      g.height.(2) <- 1;
      let total () = g.excess.(0) + g.excess.(1) + g.excess.(2) + g.excess.(3) in
      let t0 = total () in
      List.iter (fun (u, v) -> if u <> v then ignore (push_flow_raw g u v)) pushes;
      total () = t0)

let test_flow_parallel_edge_merge () =
  (* duplicate directed edges and opposite pairs merge cleanly *)
  let g = Flow_graph.of_edges ~n:2 [ (0, 1, 2); (0, 1, 3); (1, 0, 4) ] in
  let open Flow_graph in
  check_int "one edge object per direction" 1 (Array.length g.adj.(0));
  g.excess.(0) <- 100;
  g.height.(0) <- 1;
  check_int "merged capacity" 5 (push_flow_raw g 0 1)

(* ------------------------------------------------------------- *)
(* Accumulator & points                                           *)
(* ------------------------------------------------------------- *)

let test_accumulator () =
  let a = Accumulator.create () in
  Accumulator.increment a 5;
  Accumulator.increment a (-3);
  check_int "total" 2 (Accumulator.read a);
  let m = Accumulator.model () in
  ignore (m.History.apply "increment" [ Value.Int 4 ]);
  Alcotest.(check bool)
    "model snapshot" true
    (Value.equal (m.History.snapshot ()) (Value.Int 4))

let test_points () =
  Alcotest.(check (float 1e-9)) "dist" 5.0 (Point.dist [| 0.; 0. |] [| 3.; 4. |]);
  check_bool "equal" true (Point.equal [| 1.; 2. |] [| 1.; 2. |]);
  check_bool "at_infinity" true (Point.is_at_infinity (Point.at_infinity 2));
  Alcotest.(check (float 1e-9))
    "dist_value with infinity" infinity
    (Point.dist_value (Value.Point [| 0.; 0. |]) (Value.Point (Point.at_infinity 2)));
  let cloud = Point.random_cloud ~seed:3 ~dim:4 100 in
  check_int "cloud size" 100 (Array.length cloud);
  check_bool "deterministic" true
    (Point.equal cloud.(0) (Point.random_cloud ~seed:3 ~dim:4 100).(0))

let suite =
  [
    QCheck_alcotest.to_alcotest test_set_impls_agree;
    Alcotest.test_case "set basics" `Quick test_set_basics;
    Alcotest.test_case "set undo" `Quick test_set_undo;
    QCheck_alcotest.to_alcotest test_kdtree_vs_brute;
    Alcotest.test_case "nearest excludes self" `Quick test_kdtree_nearest_excludes_self;
    Alcotest.test_case "kdtree empty" `Quick test_kdtree_empty;
    Alcotest.test_case "kdtree dim mismatch" `Quick test_kdtree_dim_mismatch;
    Alcotest.test_case "union-find basics" `Quick test_uf_basics;
    QCheck_alcotest.to_alcotest test_uf_vs_naive;
    Alcotest.test_case "union-by-rank loser" `Quick test_uf_union_by_rank_loser;
    QCheck_alcotest.to_alcotest test_uf_undo_redo_roundtrip;
    Alcotest.test_case "path compression writes" `Quick
      test_uf_path_compression_observable;
    Alcotest.test_case "flow push basics" `Quick test_flow_push_basics;
    Alcotest.test_case "flow relabel undo" `Quick test_flow_relabel_undo;
    QCheck_alcotest.to_alcotest test_flow_conservation;
    Alcotest.test_case "parallel edges merged" `Quick test_flow_parallel_edge_merge;
    Alcotest.test_case "accumulator" `Quick test_accumulator;
    Alcotest.test_case "points" `Quick test_points;
  ]
