test/test_formula.ml: Accumulator Alcotest Commlat_adts Commlat_core Flow_graph Fmt Formula Iset Kdtree List QCheck QCheck_alcotest Spec Union_find Value
