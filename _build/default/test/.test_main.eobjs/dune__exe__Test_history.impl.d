test/test_history.ml: Alcotest Array Commlat_adts Commlat_core Dump Fmt Formula History Invocation Iset Kdtree List QCheck QCheck_alcotest Spec Union_find Value
