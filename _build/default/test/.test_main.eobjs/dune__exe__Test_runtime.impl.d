test/test_runtime.ml: Abstract_lock Alcotest Boost Commlat_adts Commlat_core Commlat_runtime Detector Executor Fmt Gen Invocation Iset List Mem_trace QCheck QCheck_alcotest Stats Txn Value
