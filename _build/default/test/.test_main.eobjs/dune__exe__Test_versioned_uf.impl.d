test/test_versioned_uf.ml: Alcotest Commlat_adts Commlat_core Detector Fmt Fun Gatekeeper Gen Invocation List QCheck QCheck_alcotest Union_find Union_find_versioned Value
