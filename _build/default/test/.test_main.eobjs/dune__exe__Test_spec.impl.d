test/test_spec.ml: Accumulator Alcotest Commlat_adts Commlat_core Flow_graph Formula Invocation Iset Kdtree List Spec Union_find Value
