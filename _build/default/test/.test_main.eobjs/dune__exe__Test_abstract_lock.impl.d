test/test_abstract_lock.ml: Abstract_lock Accumulator Alcotest Array Commlat_adts Commlat_core Detector Fmt Formula Fun Hashtbl Invocation Iset Kdtree List QCheck QCheck_alcotest Spec Value
