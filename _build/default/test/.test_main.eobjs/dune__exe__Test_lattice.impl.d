test/test_lattice.ml: Alcotest Commlat_adts Commlat_core Flow_graph Formula Iset Lattice List QCheck QCheck_alcotest Test_formula Value
