test/test_strengthen.ml: Alcotest Commlat_adts Commlat_core Flow_graph Fmt Formula Iset List Spec Strengthen
