test/test_value.ml: Alcotest Array Commlat_core Float Int QCheck QCheck_alcotest Value
