test/test_general_gatekeeper.ml: Alcotest Array Commlat_adts Commlat_core Commlat_runtime Detector Executor Fmt Gatekeeper Gen History Invocation List QCheck QCheck_alcotest Txn Union_find Value
