test/test_stm.ml: Alcotest Array Commlat_adts Commlat_core Commlat_runtime Detector Executor Fmt Gatekeeper Gen History Invocation Iset List Mem_trace QCheck QCheck_alcotest Stm Txn Union_find Value
