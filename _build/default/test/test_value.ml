(* Tests for Commlat_core.Value: equality/ordering/hash laws and
   projections. *)

open Commlat_core

let gen_value : Value.t QCheck.arbitrary =
  let open QCheck.Gen in
  let base =
    oneof
      [
        return Value.Unit;
        map Value.bool bool;
        map Value.int small_signed_int;
        map Value.float (float_bound_inclusive 100.0);
        map Value.str (string_size ~gen:printable (int_bound 6));
        map (fun l -> Value.Point (Array.of_list l)) (list_size (int_bound 3) (float_bound_inclusive 10.0));
      ]
  in
  let rec value n =
    if n = 0 then base
    else
      frequency
        [
          (3, base);
          (1, map2 Value.pair (value (n - 1)) (value (n - 1)));
          (1, map Value.opt (opt (value (n - 1))));
          (1, map Value.list (list_size (int_bound 3) (value (n - 1))));
        ]
  in
  QCheck.make ~print:Value.to_string (value 2)

let prop _label t = QCheck_alcotest.to_alcotest t

let check_bool = Alcotest.(check bool)

let test_projections () =
  check_bool "to_bool" true (Value.to_bool (Value.Bool true));
  Alcotest.(check int) "to_int" 42 (Value.to_int (Value.Int 42));
  Alcotest.(check (float 1e-9)) "to_float int" 3.0 (Value.to_float (Value.Int 3));
  Alcotest.check_raises "to_int of bool"
    (Value.Type_error "expected int, got true") (fun () ->
      ignore (Value.to_int (Value.Bool true)))

let test_equal_basic () =
  check_bool "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  check_bool "int ne" false (Value.equal (Value.Int 3) (Value.Int 4));
  check_bool "point eq" true
    (Value.equal (Value.Point [| 1.0; 2.0 |]) (Value.Point [| 1.0; 2.0 |]));
  check_bool "point ne len" false
    (Value.equal (Value.Point [| 1.0 |]) (Value.Point [| 1.0; 2.0 |]));
  check_bool "nan eq nan" true
    (Value.equal (Value.Float Float.nan) (Value.Float Float.nan));
  check_bool "cross type" false (Value.equal (Value.Int 1) (Value.Bool true))

let test_tbl () =
  let tbl = Value.Tbl.create 8 in
  Value.Tbl.replace tbl (Value.pair (Value.int 1) (Value.str "x")) 10;
  Alcotest.(check (option int))
    "tbl find" (Some 10)
    (Value.Tbl.find_opt tbl (Value.pair (Value.int 1) (Value.str "x")))

let suite =
  [
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "equal basic" `Quick test_equal_basic;
    Alcotest.test_case "hashtbl structural" `Quick test_tbl;
    prop "equal refl"
      (QCheck.Test.make ~name:"equal is reflexive" ~count:200 gen_value (fun v ->
           Value.equal v v));
    prop "compare refl"
      (QCheck.Test.make ~name:"compare v v = 0" ~count:200 gen_value (fun v ->
           Value.compare v v = 0));
    prop "hash consistent"
      (QCheck.Test.make ~name:"equal implies same hash" ~count:200
         (QCheck.pair gen_value gen_value) (fun (a, b) ->
           (not (Value.equal a b)) || Value.hash a = Value.hash b));
    prop "compare antisym"
      (QCheck.Test.make ~name:"compare antisymmetric" ~count:200
         (QCheck.pair gen_value gen_value) (fun (a, b) ->
           Int.compare (Value.compare a b) 0 = -Int.compare (Value.compare b a) 0));
    prop "compare/equal agree"
      (QCheck.Test.make ~name:"compare = 0 iff equal" ~count:200
         (QCheck.pair gen_value gen_value) (fun (a, b) ->
           Value.equal a b = (Value.compare a b = 0)));
  ]
