(* Ground-truth validation of the example commutativity specifications
   against Definition 1, plus tests of the serializability oracle itself.

   The central claims checked here:
   - Fig. 2 (set, precise): the condition is true IFF the invocations
     commute (precision);
   - Fig. 3 / exclusive / partitioned: the condition implies commutativity
     (soundness of strengthened specs);
   - Fig. 4 (kd-tree): soundness;
   - Fig. 5 (union-find): soundness at the level of the partition abstract
     state (the paper treats representatives/ranks as auxiliary "hidden"
     state — §2.2's discussion — so the oracle's union-find snapshot is the
     partition, not the concrete forest). *)

open Commlat_core
open Commlat_adts

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- *)
(* Oracle sanity                                                  *)
(* ------------------------------------------------------------- *)

let test_permutations () =
  Alcotest.(check int) "3! perms" 6 (List.length (History.permutations [ 1; 2; 3 ]));
  Alcotest.(check int) "0! perms" 1 (List.length (History.permutations []))

let mk_inv ~txn meth args ret =
  let i = Invocation.make ~txn meth (Array.of_list args) in
  i.Invocation.ret <- ret;
  i

let test_oracle_set () =
  let model = Iset.model () in
  (* t1: add 1 -> true; t2: contains 1 -> false. Serializable as t2;t1. *)
  let h =
    [
      mk_inv ~txn:1 Iset.m_add [ Value.Int 1 ] (Value.Bool true);
      mk_inv ~txn:2 Iset.m_contains [ Value.Int 1 ] (Value.Bool false);
    ]
  in
  let final = Value.List [ Value.Int 1 ] in
  check_bool "serializable" true (History.serializable model ~final h);
  Alcotest.(check (option (list int)))
    "witness order" (Some [ 2; 1 ])
    (History.serialization_witness model ~final h);
  (* interleaving with contradictory observations: t1 adds 1 (true), t2
     sees 1 present AND sees 2 absent after t1 added 2 -> craft an
     impossible pair *)
  let bad =
    [
      mk_inv ~txn:1 Iset.m_add [ Value.Int 1 ] (Value.Bool true);
      mk_inv ~txn:2 Iset.m_contains [ Value.Int 1 ] (Value.Bool true);
      mk_inv ~txn:2 Iset.m_add [ Value.Int 1 ] (Value.Bool true);
    ]
  in
  check_bool "non-serializable observations rejected" false
    (History.serializable model ~final bad)

let test_commute_in_state () =
  let model = Iset.model () in
  check_bool "adds of same element on empty set do not commute... " true
    (* both return true in one order? no: second add returns false; swapped
       the other returns false: return values differ -> not commuting *)
    (not
       (History.commute_in_state model ~prefix:[]
          (Iset.m_add.Invocation.name, [ Value.Int 1 ])
          (Iset.m_add.Invocation.name, [ Value.Int 1 ])));
  check_bool "adds of same element on a set that has it commute" true
    (History.commute_in_state model
       ~prefix:[ ("add", [ Value.Int 1 ]) ]
       ("add", [ Value.Int 1 ])
       ("add", [ Value.Int 1 ]));
  check_bool "contains/contains commute" true
    (History.commute_in_state model ~prefix:[] ("contains", [ Value.Int 1 ])
       ("contains", [ Value.Int 2 ]))

(* ------------------------------------------------------------- *)
(* Set: Fig. 2 is precise, Fig. 3 is sound                        *)
(* ------------------------------------------------------------- *)

(* Evaluate a state-free set condition given concrete args and the return
   values observed when running (m1; m2) from the prefix state. *)
let eval_set_cond spec m1 a1 m2 a2 ~prefix =
  let model = Iset.model () in
  model.History.reset ();
  List.iter (fun (m, args) -> ignore (model.History.apply m args)) prefix;
  let r1 = model.History.apply m1 [ a1 ] in
  let r2 = model.History.apply m2 [ a2 ] in
  let env =
    Formula.env
      ~vfun:(Spec.vfun spec)
      ~arg:(fun side _ -> match side with Formula.M1 -> a1 | Formula.M2 -> a2)
      ~ret:(function Formula.M1 -> r1 | Formula.M2 -> r2)
      ()
  in
  Formula.eval env (Spec.cond spec ~first:m1 ~second:m2)

let gen_set_case =
  let open QCheck.Gen in
  let meth = oneofl [ "add"; "remove"; "contains" ] in
  let elt = map (fun i -> Value.Int i) (int_bound 2) in
  let prefix_op = pair meth (map (fun e -> [ e ]) elt) in
  QCheck.make
    ~print:(fun (m1, a1, m2, a2, prefix) ->
      Fmt.str "%s(%a); %s(%a) after %d prefix ops" m1 Value.pp a1 m2 Value.pp a2
        (List.length prefix))
    (tup5 meth elt meth elt (list_size (int_bound 4) prefix_op))

let test_fig2_precise =
  QCheck.Test.make ~name:"Fig.2 set condition is precise (iff ground truth)"
    ~count:2000 gen_set_case (fun (m1, a1, m2, a2, prefix) ->
      let spec = Iset.precise_spec () in
      let cond = eval_set_cond spec m1 a1 m2 a2 ~prefix in
      let model = Iset.model () in
      let truth = History.commute_in_state model ~prefix (m1, [ a1 ]) (m2, [ a2 ]) in
      cond = truth)

let sound_spec_test name specf =
  QCheck.Test.make ~name ~count:1000 gen_set_case (fun (m1, a1, m2, a2, prefix) ->
      let spec = specf () in
      let cond = eval_set_cond spec m1 a1 m2 a2 ~prefix in
      let model = Iset.model () in
      (not cond)
      || History.commute_in_state model ~prefix (m1, [ a1 ]) (m2, [ a2 ]))

let test_fig3_sound = sound_spec_test "Fig.3 set condition is sound" Iset.simple_spec

let test_excl_sound =
  sound_spec_test "exclusive set condition is sound" Iset.exclusive_spec

let test_part_sound =
  sound_spec_test "partitioned set condition is sound" (fun () ->
      Iset.partitioned_spec ~nparts:2 ())

(* Fig. 3 is strictly incomplete: double add of a present element commutes
   but is rejected. *)
let test_fig3_incomplete () =
  let spec = Iset.simple_spec () in
  let prefix = [ ("add", [ Value.Int 1 ]) ] in
  let cond = eval_set_cond spec "add" (Value.Int 1) "add" (Value.Int 1) ~prefix in
  let model = Iset.model () in
  let truth =
    History.commute_in_state model ~prefix
      ("add", [ Value.Int 1 ])
      ("add", [ Value.Int 1 ])
  in
  check_bool "rejected" false cond;
  check_bool "but commutes" true truth

(* ------------------------------------------------------------- *)
(* Kd-tree: Fig. 4 soundness                                      *)
(* ------------------------------------------------------------- *)

let grid_point =
  (* small grid so collisions and close neighbours happen *)
  QCheck.Gen.(
    map2
      (fun x y -> Value.Point [| float_of_int x; float_of_int y |])
      (int_bound 3) (int_bound 3))

let gen_kd_case =
  let open QCheck.Gen in
  let meth = oneofl [ "add"; "remove"; "nearest"; "contains" ] in
  let prefix_op = map (fun p -> ("add", [ p ])) grid_point in
  QCheck.make
    ~print:(fun (m1, a1, m2, a2, prefix) ->
      Fmt.str "%s(%a); %s(%a) after %d adds" m1 Value.pp a1 m2 Value.pp a2
        (List.length prefix))
    (tup5 meth grid_point meth grid_point (list_size (int_bound 5) prefix_op))

let test_kdtree_sound =
  QCheck.Test.make ~name:"Fig.4 kd-tree conditions are sound" ~count:2000
    gen_kd_case (fun (m1, a1, m2, a2, prefix) ->
      let spec = Kdtree.spec () in
      let model = Kdtree.model ~dims:2 () in
      model.History.reset ();
      List.iter (fun (m, args) -> ignore (model.History.apply m args)) prefix;
      let r1 = model.History.apply m1 [ a1 ] in
      let r2 = model.History.apply m2 [ a2 ] in
      let env =
        Formula.env
          ~vfun:(Spec.vfun spec)
          ~arg:(fun side _ -> match side with Formula.M1 -> a1 | Formula.M2 -> a2)
          ~ret:(function Formula.M1 -> r1 | Formula.M2 -> r2)
          ()
      in
      let cond = Formula.eval env (Spec.cond spec ~first:m1 ~second:m2) in
      (not cond)
      || History.commute_in_state model ~prefix (m1, [ a1 ]) (m2, [ a2 ]))

(* ------------------------------------------------------------- *)
(* Union-find: Fig. 5 soundness (partition-level)                 *)
(* ------------------------------------------------------------- *)

let gen_uf_case =
  let open QCheck.Gen in
  let elt = int_bound 5 in
  let meth = oneofl [ "union"; "find" ] in
  let args_of m = match m with "union" -> map2 (fun a b -> [ a; b ]) elt elt | _ -> map (fun a -> [ a ]) elt in
  let case =
    meth >>= fun m1 ->
    meth >>= fun m2 ->
    args_of m1 >>= fun a1 ->
    args_of m2 >>= fun a2 ->
    list_size (int_bound 4) (map2 (fun a b -> (a, b)) elt elt) >>= fun prefix ->
    return (m1, a1, m2, a2, prefix)
  in
  QCheck.make
    ~print:(fun (m1, a1, m2, a2, prefix) ->
      Fmt.str "%s(%a); %s(%a) after %d unions" m1
        Fmt.(Dump.list int)
        a1 m2
        Fmt.(Dump.list int)
        a2 (List.length prefix))
    case

let test_uf_sound =
  QCheck.Test.make ~name:"Fig.5 union-find conditions are sound (partition level)"
    ~count:2000 gen_uf_case (fun (m1, a1, m2, a2, prefix) ->
      (* build the prefix state on a scratch structure to evaluate the
         s1-dependent condition eagerly *)
      let uf = Union_find.create () in
      ignore (Union_find.create_elements uf 6);
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) prefix;
      let sfun name state args _t =
        ignore state;
        Union_find.sfun uf name args
      in
      (* (union,union) and (union,find) use no return values; (find,union)
         needs r1, and find leaves the abstract state unchanged, so
         applying the find before evaluating is safe. *)
      let r1 =
        if m1 = "find" then Value.Int (Union_find.find uf (List.hd a1)) else Value.Unit
      in
      let env =
        Formula.env ~sfun
          ~arg:(fun side i ->
            let l = match side with Formula.M1 -> a1 | Formula.M2 -> a2 in
            Value.Int (List.nth l i))
          ~ret:(function Formula.M1 -> r1 | Formula.M2 -> Value.Unit)
          ()
      in
      let spec = Union_find.spec () in
      let cond =
        match Formula.eval env (Spec.cond spec ~first:m1 ~second:m2) with
        | b -> b
        | exception (Formula.Unsupported _ | Value.Type_error _) -> false
      in
      let vargs l = List.map (fun i -> Value.Int i) l in
      let model = Union_find.model ~elements:6 () in
      let prefix_ops = List.map (fun (a, b) -> ("union", vargs [ a; b ])) prefix in
      (not cond)
      || History.commute_in_state model ~prefix:prefix_ops (m1, vargs a1)
           (m2, vargs a2))

let suite =
  [
    Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "oracle on set histories" `Quick test_oracle_set;
    Alcotest.test_case "commute_in_state basics" `Quick test_commute_in_state;
    QCheck_alcotest.to_alcotest test_fig2_precise;
    QCheck_alcotest.to_alcotest test_fig3_sound;
    QCheck_alcotest.to_alcotest test_excl_sound;
    QCheck_alcotest.to_alcotest test_part_sound;
    Alcotest.test_case "Fig.3 is strictly incomplete" `Quick test_fig3_incomplete;
    QCheck_alcotest.to_alcotest test_kdtree_sound;
    QCheck_alcotest.to_alcotest test_uf_sound;
  ]
