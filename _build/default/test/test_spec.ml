(* Tests for Spec: symmetric registration, defaults, orientation handling,
   validation. *)

open Commlat_core
open Formula

let check_bool = Alcotest.(check bool)

let meths =
  [ Invocation.meth "m" 1; Invocation.meth ~mutates:false "r" 1; Invocation.meth "k" 2 ]

let test_default_false () =
  let s = Spec.create ~adt:"t" meths in
  check_bool "missing pair defaults to false" true
    (Formula.equal (Spec.cond s ~first:"m" ~second:"r") False)

let test_add_sym_mirror () =
  let s = Spec.create ~adt:"t" meths in
  (* condition referencing both sides asymmetrically *)
  Spec.add_sym s "m" "r" (Or (ne (arg1 0) (arg2 0), eq ret1 (cbool false)));
  let f_mr = Spec.cond s ~first:"m" ~second:"r" in
  let f_rm = Spec.cond s ~first:"r" ~second:"m" in
  check_bool "mirrored orientation registered" true
    (Formula.equal f_rm (Or (ne (arg2 0) (arg1 0), eq ret2 (cbool false))));
  check_bool "orientations differ syntactically" false (Formula.equal f_mr f_rm)

let test_add_sym_rejects_state () =
  let s = Spec.create ~adt:"t" meths in
  Alcotest.check_raises "state-dependent sym"
    (Invalid_argument "Spec.add_sym: state-dependent formula; use add_directed")
    (fun () -> Spec.add_sym s "m" "r" (ne (sfun "f" S1 [ arg1 0 ]) (arg2 0)))

let test_unknown_method () =
  let s = Spec.create ~adt:"t" meths in
  Alcotest.check_raises "unknown method"
    (Invalid_argument "Spec: unknown method nope on t") (fun () ->
      Spec.add_directed s ~first:"nope" ~second:"m" True)

let test_validate_total () =
  let s = Spec.create ~adt:"t" [ Invocation.meth "m" 1 ] in
  Alcotest.check_raises "missing pair"
    (Invalid_argument "Spec t: missing condition for (m,m)") (fun () ->
      Spec.validate ~require_total:true s);
  Spec.add_sym s "m" "m" True;
  Spec.validate ~require_total:true s

let test_vfun_lookup () =
  let s =
    Spec.create ~vfuns:[ ("double", function [ Value.Int x ] -> Value.Int (2 * x) | _ -> assert false) ]
      ~adt:"t" meths
  in
  Alcotest.(check int) "vfun" 10 (Value.to_int (Spec.vfun s "double" [ Value.Int 5 ]));
  Alcotest.check_raises "unknown vfun" (Formula.Unsupported "vfun nope") (fun () ->
      ignore (Spec.vfun s "nope" []))

(* The full specs of all example ADTs are total in both orientations over
   their declared methods. *)
let test_examples_total () =
  let open Commlat_adts in
  List.iter
    (fun spec -> Spec.validate ~require_total:true spec)
    [
      Iset.precise_spec ();
      Iset.simple_spec ();
      Iset.exclusive_spec ();
      Iset.partitioned_spec ~nparts:4 ();
      Accumulator.spec ();
      Kdtree.spec ();
      Union_find.spec ();
      Flow_graph.spec_rw ();
      Flow_graph.spec_exclusive ();
      Flow_graph.spec_partitioned ~nparts:8 ();
    ]

let suite =
  [
    Alcotest.test_case "default false" `Quick test_default_false;
    Alcotest.test_case "add_sym mirrors" `Quick test_add_sym_mirror;
    Alcotest.test_case "add_sym rejects state" `Quick test_add_sym_rejects_state;
    Alcotest.test_case "unknown method" `Quick test_unknown_method;
    Alcotest.test_case "validate totality" `Quick test_validate_total;
    Alcotest.test_case "vfun lookup" `Quick test_vfun_lookup;
    Alcotest.test_case "example specs are total" `Quick test_examples_total;
  ]
