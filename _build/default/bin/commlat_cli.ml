(* The commlat command-line tool: work with textual commutativity
   specifications (see Spec_lang and examples/specs/).

     commlat classify FILE        classification + per-condition breakdown
     commlat matrix FILE          synthesized abstract-lock matrix (SIMPLE)
     commlat check FILE           parse + well-formedness + totality report
     commlat order FILE1 FILE2    lattice comparison of two specs
     commlat print FILE           canonical re-print (round-trips) *)

open Commlat_core
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match Spec_lang.parse (read_file path) with
  | spec -> spec
  | exception Spec_lang.Parse_error (pos, msg) ->
      Fmt.epr "%s: %a@." path Spec_lang.pp_error (pos, msg);
      exit 2

let spec_file_arg ?(pos = 0) () =
  let p = pos in
  Arg.(required & pos p (some file) None & info [] ~docv:"SPEC" ~doc:"Specification file.")

(* ---- classify ---- *)

let classify_cmd =
  let run path =
    let spec = load path in
    Fmt.pr "spec %s: %a@." (Spec.adt spec) Formula.pp_cls (Spec.classify spec);
    Fmt.pr "@.per-condition breakdown:@.";
    List.iter
      (fun ((m1, m2), f) ->
        Fmt.pr "  %-12s ; %-12s %-18s %a@." m1 m2
          (Fmt.str "%a" Formula.pp_cls (Formula.classify f))
          Formula.pp f)
      (Spec.pairs spec);
    Fmt.pr
      "@.implementation: %s@."
      (match Spec.classify spec with
      | Formula.Simple -> "abstract locking (paper §3.2)"
      | Formula.Online -> "forward gatekeeper (paper §3.3.1)"
      | Formula.General -> "general gatekeeper with state rollback (paper §3.3.2)")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a specification (SIMPLE / ONLINE-CHECKABLE / GENERAL).")
    Term.(const run $ spec_file_arg ())

(* ---- matrix ---- *)

let matrix_cmd =
  let run path reduce =
    let spec = load path in
    match Abstract_lock.construct spec with
    | scheme ->
        let scheme = if reduce then Abstract_lock.reduce scheme else scheme in
        Fmt.pr "abstract-lock compatibility matrix for %s%s:@.%a@."
          (Spec.adt spec)
          (if reduce then " (reduced)" else "")
          (Abstract_lock.pp_matrix ~only_used:reduce)
          scheme
    | exception Abstract_lock.Not_simple (m1, m2, f) ->
        Fmt.epr
          "%s is not SIMPLE: condition for (%s, %s) is %a@.No sound and \
           complete abstract locking scheme exists (Theorem 1); use a \
           gatekeeper, or strengthen the spec to its SIMPLE core.@."
          (Spec.adt spec) m1 m2 Formula.pp f;
        exit 1
  in
  let reduce =
    Arg.(value & flag & info [ "reduce"; "r" ] ~doc:"Drop superfluous modes (Fig. 8b).")
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Synthesize the abstract-locking scheme of a SIMPLE spec.")
    Term.(const run $ spec_file_arg () $ reduce)

(* ---- check ---- *)

let check_cmd =
  let run path =
    let spec = load path in
    Spec.validate spec;
    let methods = Spec.methods spec in
    let missing = ref [] in
    List.iter
      (fun (m1 : Invocation.meth) ->
        List.iter
          (fun (m2 : Invocation.meth) ->
            if
              not
                (List.mem_assoc (m1.Invocation.name, m2.Invocation.name)
                   (Spec.pairs spec))
            then missing := (m1.Invocation.name, m2.Invocation.name) :: !missing)
          methods)
      methods;
    Fmt.pr "%s: %d methods, %d conditions, classification %a@." (Spec.adt spec)
      (List.length methods)
      (List.length (Spec.pairs spec))
      Formula.pp_cls (Spec.classify spec);
    (match !missing with
    | [] -> Fmt.pr "total: every ordered method pair has a condition@."
    | ms ->
        Fmt.pr "missing (default to 'never', i.e. always conflict):@.";
        List.iter (fun (a, b) -> Fmt.pr "  %s ; %s@." a b) (List.rev ms));
    (* strengthening hint *)
    if Spec.classify spec <> Formula.Simple then
      Fmt.pr "@.SIMPLE core (lockable strengthening, paper §4.1):@.%a"
        Spec_lang.print_spec
        (Strengthen.simple_spec ~adt:(Spec.adt spec ^ "_simple") spec)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and report on a specification.")
    Term.(const run $ spec_file_arg ())

(* ---- order ---- *)

let order_cmd =
  let run p1 p2 =
    let s1 = load p1 and s2 = load p2 in
    let le12 = Lattice.spec_leq s1 s2 and le21 = Lattice.spec_leq s2 s1 in
    (match (le12, le21) with
    | true, true -> Fmt.pr "%s and %s are equivalent@." (Spec.adt s1) (Spec.adt s2)
    | true, false ->
        Fmt.pr "%s < %s : the first is a strengthening (fewer commutes, \
                cheaper schemes)@."
          (Spec.adt s1) (Spec.adt s2)
    | false, true ->
        Fmt.pr "%s < %s : the second is a strengthening@." (Spec.adt s2) (Spec.adt s1)
    | false, false ->
        Fmt.pr "%s and %s are incomparable (syntactic check)@." (Spec.adt s1)
          (Spec.adt s2));
    exit (if le12 || le21 then 0 else 1)
  in
  Cmd.v
    (Cmd.info "order" ~doc:"Compare two specifications in the commutativity lattice.")
    Term.(const run $ spec_file_arg ~pos:0 () $ spec_file_arg ~pos:1 ())

(* ---- print ---- *)

let print_cmd =
  let run path =
    let spec = load path in
    Fmt.pr "%a" Spec_lang.print_spec spec
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Re-print a specification in canonical form.")
    Term.(const run $ spec_file_arg ())

let () =
  let info =
    Cmd.info "commlat" ~version:"1.0.0"
      ~doc:"Work with commutativity specifications (PLDI 2011 lattice framework)."
  in
  exit (Cmd.eval (Cmd.group info [ classify_cmd; matrix_cmd; check_cmd; order_cmd; print_cmd ]))
