(** Boosted method invocation: the glue between application transactions,
    conflict detectors and ADT undo actions.

    The undo action is registered {e before} the detector runs the method:
    gatekeepers (and the STM baseline) execute the method first and may
    detect the conflict afterwards, and in that case the half-done
    transaction must still roll the invocation back. *)

open Commlat_core

(** [invoke det txn ~undo meth args exec]: run [exec inv] under conflict
    detection on behalf of [txn], with [undo inv] registered as the
    transaction-rollback action.  Returns the method's result; raises
    {!Detector.Conflict} if the invocation does not commute with a live
    one. *)
val invoke :
  Detector.t ->
  Txn.t ->
  undo:(Invocation.t -> unit) ->
  Invocation.meth ->
  Value.t array ->
  (Invocation.t -> Value.t) ->
  Value.t

(** Read-only invocation: no undo needed.  The detector's guards are still
    registered: the invocation may hold detector state (locks, log
    entries) that an abort must release atomically. *)
val invoke_ro :
  Detector.t ->
  Txn.t ->
  Invocation.meth ->
  Value.t array ->
  (Invocation.t -> Value.t) ->
  Value.t
