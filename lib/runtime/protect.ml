(** Unified detector construction: one entry point over every conflict
    detection scheme the library offers, so applications stop hand-rolling
    per-scheme dispatch.

    A {!scheme} names a point of the commutativity-lattice implementation
    space — the ⊥ global lock, abstract locking, forward/general
    gatekeeping, the STM baseline — and [Sharded (s, n)] overlays footprint
    sharding/striping on a base scheme.  An {!adt} record carries whatever
    the data structure offers a detector: gatekeeper hooks, and/or a
    memory-trace connector for the STM.  {!protect} puts them together. *)

open Commlat_core
open Commlat_adts

type scheme =
  | Global_lock  (** the ⊥ specification: one exclusive lock *)
  | Abstract_lock  (** paper §3.2, from a SIMPLE spec *)
  | Forward_gk  (** paper §3.3.1, ONLINE-CHECKABLE specs *)
  | General_gk  (** paper §3.3.2, any L1 spec (needs undo/redo hooks) *)
  | Stm  (** concrete-cell STM baseline (needs a tracer connector) *)
  | Sharded of scheme * int
      (** footprint-sharded variant of a gatekeeper ([nshards] shards) or
          striped variant of abstract locking ([n] stripes) *)

let rec scheme_name = function
  | Global_lock -> "global-lock"
  | Abstract_lock -> "abslock"
  | Forward_gk -> "fwd-gk"
  | General_gk -> "gen-gk"
  | Stm -> "stm"
  | Sharded (s, n) -> Fmt.str "%s-sharded:%d" (scheme_name s) n

let default_nshards = 16

let scheme_of_string s : (scheme, string) result =
  let base = function
    | "global-lock" -> Ok Global_lock
    | "abslock" -> Ok Abstract_lock
    | "fwd-gk" -> Ok Forward_gk
    | "gen-gk" -> Ok General_gk
    | "stm" -> Ok Stm
    | other ->
        Error
          (Fmt.str
             "unknown scheme %S (expected global-lock, abslock, fwd-gk, \
              gen-gk, stm, optionally with a -sharded[:N] suffix)"
             other)
  in
  match String.index_opt s '-' with
  | _ when not (String.length s > 0) -> Error "empty scheme name"
  | _ -> (
      (* split off a trailing "-sharded" or "-sharded:N" *)
      let try_suffix =
        let re = "-sharded" in
        let ls = String.length s and lr = String.length re in
        let rec find i =
          if i + lr > ls then None
          else if String.sub s i lr = re then Some i
          else find (i + 1)
        in
        match find 0 with
        | None -> None
        | Some i -> (
            let rest = String.sub s (i + lr) (ls - i - lr) in
            let b = String.sub s 0 i in
            if rest = "" then Some (b, Some default_nshards)
            else if String.length rest > 1 && rest.[0] = ':' then
              match
                int_of_string_opt (String.sub rest 1 (String.length rest - 1))
              with
              | Some n when n > 0 -> Some (b, Some n)
              | _ -> Some (b, None)
            else None)
      in
      match try_suffix with
      | Some (_, None) -> Error (Fmt.str "bad shard count in %S" s)
      | Some (b, Some n) -> (
          match base b with
          | Ok bs -> Ok (Sharded (bs, n))
          | Error e -> Error e)
      | None -> base s)

(** What a data structure offers its detector. *)
type adt = {
  hooks : Gatekeeper.hooks option;
      (** state-function/undo/redo hooks (gatekeeping) *)
  connect_tracer : (Mem_trace.t -> unit) option;
      (** route the ADT's concrete reads/writes to an STM tracer *)
}

let adt ?hooks ?connect_tracer () = { hooks; connect_tracer }

let require_hooks name = function
  | { hooks = Some h; _ } -> h
  | _ -> invalid_arg (Fmt.str "Protect.protect: %s needs adt hooks" name)

(** Build a detector for [spec] over [adt] with the given scheme.  [?obs]
    enables/disables the detector's observability registry.
    [?reduce_scheme] is forwarded to {!Abstract_lock.Private.detector}.

    [?compiled] (default [true]) routes conflict checks through the spec
    compiler ({!Commlat_core.Compile}): gatekeepers evaluate state-free
    conditions with zero-environment, zero-allocation closures, and
    abstract locks compute lock keys the same way.  Verdicts are identical
    to the interpreter's on every input (differential-tested), and the
    compiled path is 3.4x faster geomean (BENCH_compile.json), so it is
    the default; pass [~compiled:false] to select the interpreter
    explicitly (the cross-executor equivalence matrix runs both ways).
    [Global_lock] and [Stm] never evaluate conditions, so they ignore
    it.

    Raises [Invalid_argument] when the scheme needs something the [adt]
    record doesn't offer (gatekeeper hooks, an STM tracer connector), when
    the spec is outside the scheme's logic fragment (non-SIMPLE spec under
    [Abstract_lock], non-ONLINE-CHECKABLE under [Forward_gk]), or on a
    malformed [Sharded] scheme ([Sharded] applies to gatekeepers and
    abstract locking only, and does not nest). *)
let protect ?obs ?reduce_scheme ?(compiled = true) ~(spec : Spec.t)
    ~(adt : adt) (s : scheme) : Detector.t =
  match s with
  | Global_lock -> Detector.Private.global_lock ?obs ()
  | Abstract_lock -> Abstract_lock.Private.detector ?reduce_scheme ~compiled ?obs spec
  | Forward_gk ->
      fst
        (Gatekeeper.Private.forward ~compiled ?obs
           ~hooks:(require_hooks "fwd-gk" adt) spec)
  | General_gk ->
      fst
        (Gatekeeper.Private.general ~compiled ?obs
           ~hooks:(require_hooks "gen-gk" adt) spec)
  | Stm -> (
      match adt.connect_tracer with
      | None -> invalid_arg "Protect.protect: stm needs adt connect_tracer"
      | Some connect ->
          let det, tracer = Stm.Private.create ?obs () in
          connect tracer;
          det)
  | Sharded (base, n) -> (
      if n <= 0 then
        invalid_arg "Protect.protect: shard count must be positive";
      match base with
      | Forward_gk ->
          fst
            (Gatekeeper.forward_sharded ~nshards:n ~compiled ?obs
               ~hooks:(require_hooks "fwd-gk-sharded" adt) spec)
      | General_gk ->
          fst
            (Gatekeeper.general_sharded ~nshards:n ~compiled ?obs
               ~hooks:(require_hooks "gen-gk-sharded" adt) spec)
      | Abstract_lock ->
          Abstract_lock.Private.detector ?reduce_scheme ~stripes:n ~compiled ?obs spec
      | Global_lock | Stm | Sharded _ ->
          invalid_arg
            (Fmt.str "Protect.protect: %s cannot be sharded" (scheme_name base)))

(** Like {!protect} for the gatekeeper schemes, but also hand back the
    {!Gatekeeper.t} so embedders that manage their own admission (the
    server's batched read path uses {!Gatekeeper.batch_check}) can reach
    past the {!Detector.t} facade.  Raises [Invalid_argument] on
    non-gatekeeper schemes. *)
let protect_gatekeeper ?obs ?(compiled = true) ~(hooks : Gatekeeper.hooks)
    ~(spec : Spec.t) (s : scheme) : Detector.t * Gatekeeper.t =
  match s with
  | Forward_gk -> Gatekeeper.Private.forward ~compiled ?obs ~hooks spec
  | General_gk -> Gatekeeper.Private.general ~compiled ?obs ~hooks spec
  | Sharded (Forward_gk, n) when n > 0 ->
      Gatekeeper.forward_sharded ~nshards:n ~compiled ?obs ~hooks spec
  | Sharded (General_gk, n) when n > 0 ->
      Gatekeeper.general_sharded ~nshards:n ~compiled ?obs ~hooks spec
  | s ->
      invalid_arg
        (Fmt.str "Protect.protect_gatekeeper: %s is not a gatekeeper scheme"
           (scheme_name s))

(** Every base scheme, in lattice-ish order (coarsest first). *)
let all_schemes = [ Global_lock; Abstract_lock; Forward_gk; General_gk; Stm ]
