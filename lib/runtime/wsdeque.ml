(** Re-export of {!Commlat_wsdeque.Wsdeque}.

    The deque lives in its own tiny library so that [Commlat_sched] (the
    parallel explorer work-steals schedule prefixes) can depend on it
    without dragging in the whole runtime; existing executor code keeps
    using it under the historical [Wsdeque] name via this alias. *)

include Commlat_wsdeque.Wsdeque
