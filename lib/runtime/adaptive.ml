(** Adaptive conflict-detector selection.

    The paper closes §5 with: "the ability to rank checkers by permittivity
    can allow an automated system to adaptively and dynamically select from
    these implementations as run-time needs change, given observations of
    parallelism and overhead, though we leave the design and development of
    such a system to future work."  This module is that system, behind a
    first-class {!policy}:

    - {!Offline_sample} is the bulk-synchronous form: {!choose} runs a
      {e sampling prefix} of the workload under each candidate, measuring
      throughput (which folds together the detector's overhead [o_d] and
      the parallelism [a_d] it admits at the requested processor count —
      exactly the two quantities the paper's [T·o_d/min(a_d,p)] model
      trades off), and the winner runs the full workload.
    - {!Online} is the long-running form (`commlat serve --adaptive`): a
      hysteresis {e controller} walks a chain of lattice points at run
      time, consuming per-window observability deltas ({!signals}) —
      strengthening one step when conflict-check overhead dominates and
      nothing aborts, weakening back toward the precise spec when the
      abort ratio climbs.  The mechanism that makes the verdict take
      effect (detector hot-swap at an epoch boundary) lives in the
      server; this module owns only the decision rule, so it can be
      tested deterministically on synthetic signal streams.

    Sampling re-executes the prefix from scratch per candidate, so the
    candidate constructor must provide fresh state each time (the same
    requirement the benchmarks have). *)

open Commlat_core

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

type policy =
  | Offline_sample of { processors : int; sample_size : int }
      (** sample every candidate on a workload prefix, pick the cheapest *)
  | Online of { strengthen_above : float; weaken_above : float; cooldown : int }
      (** hysteresis controller over a lattice chain: strengthen one step
          when checks-per-invocation exceeds [strengthen_above] with a
          (near-)zero abort ratio; weaken one step when the abort ratio
          exceeds [weaken_above]; hold for [cooldown] observation windows
          after any transition (weakening bypasses the cooldown — it is
          the safety valve) *)

let default_offline = Offline_sample { processors = 4; sample_size = 64 }
let default_online = Online { strengthen_above = 2.0; weaken_above = 0.05; cooldown = 3 }

type 'w candidate = {
  name : string;
  prepare : unit -> Detector.t * (Txn.t -> 'w -> 'w list) * 'w list;
      (** fresh application state + detector + operator + initial worklist *)
}

type verdict = Hold | Strengthen | Weaken

let verdict_name = function
  | Hold -> "hold"
  | Strengthen -> "strengthen"
  | Weaken -> "weaken"

(** One observation window's worth of detector-counter deltas.  All fields
    are differences between two successive obs snapshots of the {e
    currently installed} detector (never lifetime totals).  Counters a
    scheme does not export (a lock detector has no [checks]; a gatekeeper
    has no [lock_denials]) are simply 0. *)
type signals = {
  s_invocations : int;
  s_conflicts : int;  (** spec-refused invocations (gatekeepers) *)
  s_checks : int;  (** commutativity conditions evaluated *)
  s_checks_avoided : int;  (** scans skipped by footprint sharding *)
  s_lock_denials : int;  (** lock-based schemes' refusals *)
  s_requests : int;  (** embedder-level work units (0 if unknown) *)
  s_ro_fast : int;  (** batch_check fast-path admissions (0 if unknown) *)
}

let no_signals =
  {
    s_invocations = 0;
    s_conflicts = 0;
    s_checks = 0;
    s_checks_avoided = 0;
    s_lock_denials = 0;
    s_requests = 0;
    s_ro_fast = 0;
  }

(** One recorded lattice move. *)
type transition = {
  t_window : int;  (** observation-window index (0-based) *)
  t_from : string;  (** level name the controller left *)
  t_to : string;  (** level name it installed *)
  t_verdict : verdict;  (** [Strengthen] or [Weaken] *)
  t_abort_ratio : float;  (** the window's conflicts-per-invocation *)
  t_check_cost : float;  (** the window's checks-per-invocation *)
}

type 'w decision = {
  winner : 'w candidate;
  scores : (string * float) list;  (** virtual time per iteration, lower wins *)
  samples : int;
  transitions : transition list;
      (** per-window lattice moves; always [] for {!Offline_sample}, which
          decides once, before execution *)
}

(* ------------------------------------------------------------------ *)
(* The online controller                                               *)
(* ------------------------------------------------------------------ *)

(** Hysteresis state for one lattice chain (one protected ADT).  [levels]
    is ordered weakest-first: index 0 is the most precise spec, the last
    index the coarsest strengthening. *)
type controller = {
  c_levels : string array;
  c_strengthen_above : float;
  c_weaken_above : float;
  c_cooldown : int;
  mutable c_cur : int;
  mutable c_window : int;  (** windows observed so far *)
  mutable c_cool : int;  (** windows left before strengthening again *)
  c_burned : bool array;
      (** [c_burned.(i)]: level [i] was recently weakened {e away from} —
          it refused too much under the current workload — so the
          controller will not strengthen back into it until the workload
          has looked calm (low checks, no conflicts) for [c_cooldown]
          consecutive windows.  This is what stops the
          strengthen/abort/weaken limit cycle a plain threshold rule
          exhibits on a steady contended phase. *)
  mutable c_quiet : int;  (** consecutive calm windows, for un-burning *)
  mutable c_transitions : transition list;  (** newest first *)
}

let controller ?(policy = default_online) (levels : string list) : controller =
  let strengthen_above, weaken_above, cooldown =
    match policy with
    | Online { strengthen_above; weaken_above; cooldown } ->
        (strengthen_above, weaken_above, cooldown)
    | Offline_sample _ ->
        invalid_arg "Adaptive.controller: needs an Online policy"
  in
  (match levels with
  | [] | [ _ ] -> invalid_arg "Adaptive.controller: needs at least two levels"
  | _ -> ());
  {
    c_levels = Array.of_list levels;
    c_strengthen_above = strengthen_above;
    c_weaken_above = weaken_above;
    c_cooldown = max 0 cooldown;
    c_cur = 0;
    c_window = 0;
    c_cool = 0;
    c_burned = Array.make (List.length levels) false;
    c_quiet = 0;
    c_transitions = [];
  }

let current (c : controller) = c.c_cur
let current_level (c : controller) = c.c_levels.(c.c_cur)
let transitions (c : controller) = List.rev c.c_transitions

let ratio num den = float_of_int num /. float_of_int (max 1 den)

(** Feed one window of signals; returns the verdict AND applies it to the
    controller's own level cursor (the caller performs the actual detector
    swap, then reads {!current}).  The rule:

    - [abort_ratio > weaken_above] → {!Weaken} (one step toward precise),
      immediately — aborting work is strictly worse than checking it, so
      weakening ignores the cooldown.  The level being left is {e burned}.
    - [check_cost > strengthen_above] with an abort ratio under a quarter
      of the weaken threshold, cooldown expired, and the next-stronger
      level not burned → {!Strengthen} one step.
    - otherwise {!Hold}.  Calm windows (low cost, no conflicts)
      accumulate; [cooldown] consecutive calm windows clear every burn
      (the workload changed, strengthened levels deserve another try). *)
let observe (c : controller) (s : signals) : verdict =
  let w = c.c_window in
  c.c_window <- w + 1;
  if c.c_cool > 0 then c.c_cool <- c.c_cool - 1;
  let refusals = s.s_conflicts + s.s_lock_denials in
  let abort_ratio = ratio refusals s.s_invocations in
  let check_cost = ratio s.s_checks s.s_invocations in
  let calm = refusals = 0 && check_cost <= c.c_strengthen_above in
  if calm then begin
    c.c_quiet <- c.c_quiet + 1;
    if c.c_quiet >= c.c_cooldown then Array.fill c.c_burned 0 (Array.length c.c_burned) false
  end
  else c.c_quiet <- 0;
  let move verdict target =
    let tr =
      {
        t_window = w;
        t_from = c.c_levels.(c.c_cur);
        t_to = c.c_levels.(target);
        t_verdict = verdict;
        t_abort_ratio = abort_ratio;
        t_check_cost = check_cost;
      }
    in
    c.c_transitions <- tr :: c.c_transitions;
    c.c_cur <- target;
    c.c_cool <- c.c_cooldown;
    verdict
  in
  if s.s_invocations = 0 then Hold
  else if abort_ratio > c.c_weaken_above && c.c_cur > 0 then begin
    (* the level we are leaving refused too much of this workload *)
    c.c_burned.(c.c_cur) <- true;
    move Weaken (c.c_cur - 1)
  end
  else if
    check_cost > c.c_strengthen_above
    && abort_ratio <= c.c_weaken_above /. 4.0
    && c.c_cool = 0
    && c.c_cur < Array.length c.c_levels - 1
    && not c.c_burned.(c.c_cur + 1)
  then move Strengthen (c.c_cur + 1)
  else Hold

let pp_transition ppf (t : transition) =
  Fmt.pf ppf "w%d %s: %s -> %s (aborts %.3f, checks/inv %.2f)" t.t_window
    (verdict_name t.t_verdict) t.t_from t.t_to t.t_abort_ratio t.t_check_cost

(* ------------------------------------------------------------------ *)
(* Offline sampling                                                    *)
(* ------------------------------------------------------------------ *)

(** Score = estimated virtual runtime per unit of useful work on
    [processors] simulated processors: [makespan / committed], scaled by
    the measured per-unit wall cost.  Folds overhead and admitted
    parallelism into one number, exactly what the paper's model divides. *)
let score ~processors ~sample_size (c : 'w candidate) : float =
  let detector, operator, init = c.prepare () in
  let prefix =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: r -> x :: take (n - 1) r
    in
    take sample_size init
  in
  let s = Executor.run_rounds ~processors ~detector ~operator prefix in
  if s.Executor.committed = 0 then infinity
  else
    let per_unit_wall = s.Executor.wall_s /. Float.max 1.0 s.Executor.total_work in
    per_unit_wall *. s.Executor.makespan /. float_of_int s.Executor.committed

(** Sample every candidate on a prefix of the workload and pick the one
    with the lowest virtual per-iteration cost.  Only meaningful under an
    {!Offline_sample} policy — an {!Online} policy has no sampling prefix
    (its decisions come from {!observe} on a live controller) and is
    rejected.

    Candidates must have pairwise-distinct, non-empty names: names are how
    the decision's [scores] report reads, and scoring through a name lookup
    is precisely the bug that used to silently credit one duplicate with
    the other's measurement. *)
let choose ?(policy = default_offline) (candidates : 'w candidate list) :
    'w decision =
  let processors, sample_size =
    match policy with
    | Offline_sample { processors; sample_size } -> (processors, sample_size)
    | Online _ ->
        invalid_arg
          "Adaptive.choose: Online policy has no sampling phase (drive a \
           controller with observe instead)"
  in
  match candidates with
  | [] -> invalid_arg "Adaptive.choose: no candidates"
  | _ ->
      List.iter
        (fun c -> if c.name = "" then invalid_arg "Adaptive.choose: empty candidate name")
        candidates;
      let seen = Hashtbl.create (List.length candidates) in
      List.iter
        (fun c ->
          if Hashtbl.mem seen c.name then
            invalid_arg
              (Printf.sprintf "Adaptive.choose: duplicate candidate name %S" c.name)
          else Hashtbl.add seen c.name ())
        candidates;
      (* each candidate is paired with ITS OWN score — never matched back
         up by name *)
      let scored =
        List.map (fun c -> (c, score ~processors ~sample_size c)) candidates
      in
      let winner, _ =
        List.fold_left
          (fun ((_, best_s) as best) ((_, s) as cand) ->
            if s < best_s then cand else best)
          (List.hd scored) (List.tl scored)
      in
      {
        winner;
        scores = List.map (fun (c, s) -> (c.name, s)) scored;
        samples = sample_size;
        transitions = [];
      }

(** Sample, pick, and run the winner on the full workload.  Returns the
    decision and the winning run's stats. *)
let run ?(policy = default_offline) (candidates : 'w candidate list) :
    'w decision * Executor.stats =
  let decision = choose ~policy candidates in
  let processors =
    match policy with
    | Offline_sample { processors; _ } -> processors
    | Online _ -> assert false (* choose already rejected it *)
  in
  let detector, operator, init = decision.winner.prepare () in
  let stats = Executor.run_rounds ~processors ~detector ~operator init in
  (decision, stats)

let pp_decision ppf (d : _ decision) =
  Fmt.pf ppf "winner=%s after %d samples:" d.winner.name d.samples;
  List.iter (fun (n, s) -> Fmt.pf ppf " %s=%.3gus" n (1e6 *. s)) d.scores;
  match d.transitions with
  | [] -> ()
  | ts -> Fmt.pf ppf " [%a]" Fmt.(list ~sep:(any "; ") pp_transition) ts
