(** Adaptive conflict-detector selection.

    The paper closes §5 with: "the ability to rank checkers by permittivity
    can allow an automated system to adaptively and dynamically select from
    these implementations as run-time needs change, given observations of
    parallelism and overhead, though we leave the design and development of
    such a system to future work."  This module is that system, for the
    bulk-synchronous executor:

    + the library author supplies {e candidates} — conflict detectors built
      from different points of a data structure's commutativity lattice,
      each able to (re)build itself against fresh application state;
    + {!choose} runs a {e sampling prefix} of the workload under each
      candidate, measuring throughput (which folds together the detector's
      overhead [o_d] and the parallelism [a_d] it admits at the requested
      processor count — exactly the two quantities the paper's
      [T·o_d/min(a_d,p)] model trades off);
    + the winner runs the full workload.

    Sampling re-executes the prefix from scratch per candidate, so the
    candidate constructor must provide fresh state each time (the same
    requirement the benchmarks have). *)

open Commlat_core

type 'w candidate = {
  name : string;
  prepare : unit -> Detector.t * (Txn.t -> 'w -> 'w list) * 'w list;
      (** fresh application state + detector + operator + initial worklist *)
}

type 'w decision = {
  winner : 'w candidate;
  scores : (string * float) list;  (** virtual time per iteration, lower wins *)
  samples : int;
}

(** Score = estimated virtual runtime per unit of useful work on
    [processors] simulated processors: [makespan / committed], scaled by
    the measured per-unit wall cost.  Folds overhead and admitted
    parallelism into one number, exactly what the paper's model divides. *)
let score ~processors ~sample_size (c : 'w candidate) : float =
  let detector, operator, init = c.prepare () in
  let prefix =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: r -> x :: take (n - 1) r
    in
    take sample_size init
  in
  let s = Executor.run_rounds ~processors ~detector ~operator prefix in
  if s.Executor.committed = 0 then infinity
  else
    let per_unit_wall = s.Executor.wall_s /. Float.max 1.0 s.Executor.total_work in
    per_unit_wall *. s.Executor.makespan /. float_of_int s.Executor.committed

(** Sample every candidate on a prefix of the workload and pick the one
    with the lowest virtual per-iteration cost.

    Candidates must have pairwise-distinct, non-empty names: names are how
    the decision's [scores] report reads, and scoring through a name lookup
    is precisely the bug that used to silently credit one duplicate with
    the other's measurement. *)
let choose ?(processors = 4) ?(sample_size = 64) (candidates : 'w candidate list) :
    'w decision =
  match candidates with
  | [] -> invalid_arg "Adaptive.choose: no candidates"
  | _ ->
      List.iter
        (fun c -> if c.name = "" then invalid_arg "Adaptive.choose: empty candidate name")
        candidates;
      let seen = Hashtbl.create (List.length candidates) in
      List.iter
        (fun c ->
          if Hashtbl.mem seen c.name then
            invalid_arg
              (Printf.sprintf "Adaptive.choose: duplicate candidate name %S" c.name)
          else Hashtbl.add seen c.name ())
        candidates;
      (* each candidate is paired with ITS OWN score — never matched back
         up by name *)
      let scored =
        List.map (fun c -> (c, score ~processors ~sample_size c)) candidates
      in
      let winner, _ =
        List.fold_left
          (fun ((_, best_s) as best) ((_, s) as cand) ->
            if s < best_s then cand else best)
          (List.hd scored) (List.tl scored)
      in
      {
        winner;
        scores = List.map (fun (c, s) -> (c.name, s)) scored;
        samples = sample_size;
      }

(** Sample, pick, and run the winner on the full workload.  Returns the
    decision and the winning run's stats. *)
let run ?(processors = 4) ?(sample_size = 64) (candidates : 'w candidate list) :
    'w decision * Executor.stats =
  let decision = choose ~processors ~sample_size candidates in
  let detector, operator, init = decision.winner.prepare () in
  let stats = Executor.run_rounds ~processors ~detector ~operator init in
  (decision, stats)

let pp_decision ppf (d : _ decision) =
  Fmt.pf ppf "winner=%s after %d samples:" d.winner.name d.samples;
  List.iter (fun (n, s) -> Fmt.pf ppf " %s=%.3gus" n (1e6 *. s)) d.scores
