(** Speculative executors for amorphous data-parallel loops.

    Applications are expressed Galois-style: a worklist of items and an
    {e operator} that processes one item inside a transaction, performing
    method invocations on shared ADTs through a conflict {!Detector} and
    returning newly generated work.  Two executors are provided:

    - {!run_rounds} — a deterministic {e bulk-synchronous} speculative
      executor: in each round up to [processors] pending items execute as
      concurrent transactions (their locks/log entries coexist in the
      detector), survivors commit at the end of the round, conflict victims
      roll back and retry in a later round.  With [processors = max_int] and
      unit costs this is exactly the ParaMeter methodology the paper uses to
      measure available parallelism (see {!Parameter}); with a finite
      [processors] it is the discrete-event simulator behind the
      runtime-vs-threads figures (DESIGN.md §4.1).
    - {!run_domains} — real concurrency on OCaml 5 domains, used by the
      integration tests; interleaving is at method-invocation granularity.

    The operator {b must} register an undo action with its transaction for
    every mutation it performs, so aborts can roll back. *)

open Commlat_core
module Obs = Commlat_obs.Obs

type stats = {
  committed : int;  (** iterations that committed *)
  aborted : int;  (** iteration executions that rolled back *)
  rounds : int;  (** # of bulk-synchronous rounds = critical path length *)
  makespan : float;  (** sum over rounds of the max iteration cost *)
  total_work : float;  (** summed cost of every execution, retries included *)
  wall_s : float;  (** real elapsed seconds *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "committed=%d aborted=%d (abort ratio %.2f%%) rounds=%d makespan=%.0f \
     total=%.0f wall=%.3fs"
    s.committed s.aborted
    (100.0 *. float_of_int s.aborted /. float_of_int (max 1 (s.committed + s.aborted)))
    s.rounds s.makespan s.total_work s.wall_s

let abort_ratio s =
  float_of_int s.aborted /. float_of_int (max 1 (s.committed + s.aborted))

(** Average parallelism in the ParaMeter sense: committed iterations per
    round. *)
let parallelism s = float_of_int s.committed /. float_of_int (max 1 s.rounds)

(* ------------------------------------------------------------------ *)
(* Bulk-synchronous speculative executor                               *)
(* ------------------------------------------------------------------ *)

(* A functional deque: conflict victims are pushed to the {e front} so they
   run first in the next round.  The first transaction of a round can never
   conflict (it checks against an empty active set), so this policy makes
   global progress provable — and breaks the reader-pins-writer livelocks
   that plain FIFO retry can cycle through forever (a contention-management
   decision; the paper notes each benchmark used "the best available
   contention manager"). *)
(* Per-run observability hooks: counters for commit/abort/retry, per-round
   commit/abort histograms and abort events, recorded into the caller's
   registry when one is supplied ([?obs]).  A [None] costs one branch per
   recording site. *)
type obs_hooks = {
  o_commit : Obs.counter;
  o_abort : Obs.counter;
  o_retry : Obs.counter;
  o_rounds : Obs.counter;
  o_round_commits : Obs.dist;
  o_round_aborts : Obs.dist;
  o_obs : Obs.t;
}

let obs_hooks = function
  | None -> None
  | Some obs ->
      Some
        {
          o_commit = Obs.counter obs "committed";
          o_abort = Obs.counter obs "aborted";
          o_retry = Obs.counter obs "retries";
          o_rounds = Obs.counter obs "rounds";
          o_round_commits = Obs.dist obs "round_commits";
          o_round_aborts = Obs.dist obs "round_aborts";
          o_obs = obs;
        }

let run_rounds ?(processors = 4) ?(cost = fun _ -> 1.0) ?obs
    ~(detector : Detector.t) ~(operator : Txn.t -> 'w -> 'w list)
    (init : 'w list) : stats =
  let oh = obs_hooks obs in
  let front = ref [] and back = ref [] and size = ref 0 in
  let push_back w =
    back := w :: !back;
    incr size
  in
  let push_front_all ws =
    front := ws @ !front;
    size := !size + List.length ws
  in
  let rec pop () =
    match !front with
    | w :: rest ->
        front := rest;
        decr size;
        w
    | [] ->
        assert (!back <> []);
        front := List.rev !back;
        back := [];
        pop ()
  in
  List.iter push_back init;
  let committed = ref 0 and aborted = ref 0 and rounds = ref 0 in
  let makespan = ref 0.0 and total = ref 0.0 in
  let t0 = Stats.now_s () in
  while !size > 0 do
    incr rounds;
    let batch_size = min processors !size in
    let batch = List.init batch_size (fun _ -> pop ()) in
    let round_max = ref 0.0 in
    let survivors = ref [] (* (txn, new work), newest first *) in
    let retry = ref [] in
    List.iter
      (fun item ->
        let txn = Txn.fresh () in
        let c = cost item in
        total := !total +. c;
        if c > !round_max then round_max := c;
        match operator txn item with
        | produced -> survivors := (txn, produced) :: !survivors
        | exception Detector.Conflict { reason; _ } ->
            incr aborted;
            Txn.rollback txn;
            detector.Detector.on_abort (Txn.id txn);
            (match oh with
            | Some h ->
                Obs.incr h.o_abort;
                Obs.incr h.o_retry;
                Obs.event h.o_obs ~tag:"abort" reason
            | None -> ());
            retry := item :: !retry)
      batch;
    (* Commit survivors (releases their locks / log entries), then requeue:
       conflict victims at the front, freshly produced work at the back. *)
    List.iter
      (fun (txn, produced) ->
        incr committed;
        Txn.commit txn;
        detector.Detector.on_commit (Txn.id txn);
        List.iter push_back produced)
      (List.rev !survivors);
    (match oh with
    | Some h ->
        let n_commit = List.length !survivors and n_abort = List.length !retry in
        Obs.add h.o_commit n_commit;
        Obs.incr h.o_rounds;
        Obs.observe h.o_round_commits n_commit;
        Obs.observe h.o_round_aborts n_abort
    | None -> ());
    push_front_all (List.rev !retry);
    makespan := !makespan +. !round_max
  done;
  {
    committed = !committed;
    aborted = !aborted;
    rounds = !rounds;
    makespan = !makespan;
    total_work = !total;
    wall_s = Stats.now_s () -. t0;
  }

(** Plain sequential execution (one item at a time, conflict detection
    still active if the detector has any).  [run_rounds ~processors:1]
    specialised; used for the overhead measurements [o_d]. *)
let run_sequential ?cost ?obs ~detector ~operator init =
  run_rounds ~processors:1 ?cost ?obs ~detector ~operator init

(* ------------------------------------------------------------------ *)
(* Domain-based executor                                               *)
(* ------------------------------------------------------------------ *)

(** Real concurrency on OCaml 5 domains.  Whole operator runs, commits and
    rollbacks are serialized under one mutex: transactions from different
    domains never interleave {e within} an operator, but their lock/log
    lifetimes overlap (locks are released only at the commit step), so
    cross-domain conflicts, aborts and retries are fully exercised while
    shared ADT state stays race-free.  [operator] receives the detector it
    should route invocations through (the same one passed in).

    A non-[Conflict] exception from the operator is a bug in the operator,
    not speculation: the raising transaction is rolled back, every worker is
    told to stop, and the exception is re-raised (with its backtrace) after
    all domains have joined.  Before this, the raising worker died inside
    its critical section while every other domain spun forever on
    [pending > 0] — a livelock. *)
let run_domains ?(domains = 2) ?obs ~(detector : Detector.t)
    ~(operator : Detector.t -> Txn.t -> 'w -> 'w list) (init : 'w list) : stats =
  let oh = obs_hooks obs in
  let world = Mutex.create () in
  let det = detector in
  let operator = operator det in
  let q = Queue.create () in
  List.iter (fun w -> Queue.add w q) init;
  let qmu = Mutex.create () in
  let pending = Atomic.make (List.length init) in
  let committed = Atomic.make 0 and aborted = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let record_failure e bt =
    (* first failure wins; any later ones are secondary casualties *)
    ignore (Atomic.compare_and_set failure None (Some (e, bt)));
    Atomic.set stop true
  in
  let pop () =
    Mutex.protect qmu (fun () -> if Queue.is_empty q then None else Some (Queue.pop q))
  in
  let push items =
    match items with
    | [] -> ()
    | _ -> Mutex.protect qmu (fun () -> List.iter (fun w -> Queue.add w q) items)
  in
  let t0 = Stats.now_s () in
  let worker () =
    let continue = ref true in
    while !continue && not (Atomic.get stop) do
      match pop () with
      | None -> if Atomic.get pending = 0 then continue := false else Domain.cpu_relax ()
      | Some item -> (
          let txn = Txn.fresh () in
          (* the rollback must happen inside the SAME critical section as
             the operator: if the Conflict exception released the mutex
             first, another worker's operator could observe the doomed
             transaction's not-yet-undone effects *)
          let outcome =
            Mutex.protect world (fun () ->
                match operator txn item with
                | produced -> `Ok produced
                | exception Detector.Conflict { reason; _ } ->
                    Txn.rollback txn;
                    det.Detector.on_abort (Txn.id txn);
                    `Conflict reason
                | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    Txn.rollback txn;
                    det.Detector.on_abort (Txn.id txn);
                    `Error (e, bt))
          in
          match outcome with
          | `Ok produced ->
              Atomic.incr committed;
              Mutex.protect world (fun () ->
                  Txn.commit txn;
                  det.Detector.on_commit (Txn.id txn));
              (match oh with Some h -> Obs.incr h.o_commit | None -> ());
              Atomic.fetch_and_add pending (List.length produced) |> ignore;
              push produced;
              Atomic.decr pending
          | `Conflict reason ->
              Atomic.incr aborted;
              (match oh with
              | Some h ->
                  Obs.incr h.o_abort;
                  Obs.incr h.o_retry;
                  Obs.event h.o_obs ~tag:"abort" reason
              | None -> ());
              Domain.cpu_relax ();
              push [ item ] (* retry; [pending] unchanged *)
          | `Error (e, bt) -> record_failure e bt)
    done
  in
  let guarded_worker () =
    (* nothing may escape a worker: an uncaught exception from e.g. a
       commit hook must also stop the fleet rather than strand it *)
    try worker () with e -> record_failure e (Printexc.get_raw_backtrace ())
  in
  let ds = List.init (max 1 (domains - 1)) (fun _ -> Domain.spawn guarded_worker) in
  guarded_worker ();
  List.iter Domain.join ds;
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  {
    committed = Atomic.get committed;
    aborted = Atomic.get aborted;
    rounds = 0;
    makespan = 0.0;
    total_work = float_of_int (Atomic.get committed + Atomic.get aborted);
    wall_s = Stats.now_s () -. t0;
  }
