(** Speculative executors for amorphous data-parallel loops.

    Applications are expressed Galois-style: a worklist of items and an
    {e operator} that processes one item inside a transaction, performing
    method invocations on shared ADTs through a conflict {!Detector} and
    returning newly generated work.  Two executors are provided:

    - {!run_rounds} — a deterministic {e bulk-synchronous} speculative
      executor: in each round up to [processors] pending items execute as
      concurrent transactions (their locks/log entries coexist in the
      detector), survivors commit at the end of the round, conflict victims
      roll back and retry in a later round.  With [processors = max_int] and
      unit costs this is exactly the ParaMeter methodology the paper uses to
      measure available parallelism (see {!Parameter}); with a finite
      [processors] it is the discrete-event simulator behind the
      runtime-vs-threads figures (DESIGN.md §4.1).
    - {!run_domains} — real concurrency on OCaml 5 domains, used by the
      integration tests; interleaving is at method-invocation granularity.

    The operator {b must} register an undo action with its transaction for
    every mutation it performs, so aborts can roll back. *)

open Commlat_core
module Obs = Commlat_obs.Obs

type stats = {
  committed : int;  (** iterations that committed *)
  aborted : int;  (** iteration executions that rolled back *)
  rounds : int option;
      (** # of bulk-synchronous rounds = critical path length.  [None] for
          {!run_domains}: a free-running parallel execution has no rounds,
          and reporting 0 used to make {!parallelism} print
          [committed /. 1] — an absurd figure. *)
  makespan : float;
      (** {!run_rounds}: sum over rounds of the max iteration cost (cost
          units).  {!run_domains}: real elapsed seconds (= [wall_s]). *)
  total_work : float;
      (** {!run_rounds}: summed cost of every execution, retries included
          (cost units).  {!run_domains}: summed per-domain busy seconds. *)
  wall_s : float;  (** real elapsed seconds *)
  backoff_seed : int option;
      (** {!run_domains}: the seed of the per-domain backoff-jitter RNGs,
          recorded so a run's backoff behaviour can be reproduced.  [None]
          for bulk-synchronous runs, which never back off. *)
}

let pp_rounds ppf = function
  | Some r -> Fmt.int ppf r
  | None -> Fmt.string ppf "-"

let pp_seed ppf = function
  | Some s -> Fmt.pf ppf " backoff-seed=%d" s
  | None -> ()

let pp_stats ppf s =
  Fmt.pf ppf
    "committed=%d aborted=%d (abort ratio %.2f%%) rounds=%a makespan=%g \
     total=%g wall=%.3fs%a"
    s.committed s.aborted
    (100.0 *. float_of_int s.aborted /. float_of_int (max 1 (s.committed + s.aborted)))
    pp_rounds s.rounds s.makespan s.total_work s.wall_s pp_seed s.backoff_seed

let abort_ratio s =
  float_of_int s.aborted /. float_of_int (max 1 (s.committed + s.aborted))

(** The round count of a bulk-synchronous run.  Raises [Invalid_argument]
    on {!run_domains} stats, which have no rounds. *)
let rounds_exn s =
  match s.rounds with
  | Some r -> r
  | None -> invalid_arg "Executor.rounds_exn: a domains run has no rounds"

(** Average parallelism.  Bulk-synchronous runs: committed iterations per
    round (the ParaMeter sense).  Domain runs ([rounds = None]): effective
    parallelism [total_work /. wall_s] — summed busy seconds over elapsed
    seconds, at most the domain count. *)
let parallelism s =
  match s.rounds with
  | Some r -> float_of_int s.committed /. float_of_int (max 1 r)
  | None -> if s.wall_s > 0.0 then s.total_work /. s.wall_s else 0.0

(* ------------------------------------------------------------------ *)
(* Bulk-synchronous speculative executor                               *)
(* ------------------------------------------------------------------ *)

(* A functional deque: conflict victims are pushed to the {e front} so they
   run first in the next round.  The first transaction of a round can never
   conflict (it checks against an empty active set), so this policy makes
   global progress provable — and breaks the reader-pins-writer livelocks
   that plain FIFO retry can cycle through forever (a contention-management
   decision; the paper notes each benchmark used "the best available
   contention manager"). *)
(* Per-run observability hooks: counters for commit/abort/retry, per-round
   commit/abort histograms and abort events, recorded into the caller's
   registry when one is supplied ([?obs]).  A [None] costs one branch per
   recording site. *)
type obs_hooks = {
  o_commit : Obs.counter;
  o_abort : Obs.counter;
  o_retry : Obs.counter;
  o_rounds : Obs.counter;
  o_round_commits : Obs.dist;
  o_round_aborts : Obs.dist;
  o_obs : Obs.t;
}

let obs_hooks = function
  | None -> None
  | Some obs ->
      Some
        {
          o_commit = Obs.counter obs "committed";
          o_abort = Obs.counter obs "aborted";
          o_retry = Obs.counter obs "retries";
          o_rounds = Obs.counter obs "rounds";
          o_round_commits = Obs.dist obs "round_commits";
          o_round_aborts = Obs.dist obs "round_aborts";
          o_obs = obs;
        }

let run_rounds ?(processors = 4) ?(cost = fun _ -> 1.0) ?obs
    ~(detector : Detector.t) ~(operator : Txn.t -> 'w -> 'w list)
    (init : 'w list) : stats =
  let oh = obs_hooks obs in
  let front = ref [] and back = ref [] and size = ref 0 in
  let push_back w =
    back := w :: !back;
    incr size
  in
  let push_front_all ws =
    front := ws @ !front;
    size := !size + List.length ws
  in
  let rec pop () =
    match !front with
    | w :: rest ->
        front := rest;
        decr size;
        w
    | [] ->
        assert (!back <> []);
        front := List.rev !back;
        back := [];
        pop ()
  in
  List.iter push_back init;
  let committed = ref 0 and aborted = ref 0 and rounds = ref 0 in
  let makespan = ref 0.0 and total = ref 0.0 in
  let t0 = Stats.now_s () in
  while !size > 0 do
    incr rounds;
    let batch_size = min processors !size in
    let batch = List.init batch_size (fun _ -> pop ()) in
    let round_max = ref 0.0 in
    let survivors = ref [] (* (txn, new work), newest first *) in
    let retry = ref [] in
    List.iter
      (fun item ->
        let txn = Txn.fresh () in
        let c = cost item in
        total := !total +. c;
        if c > !round_max then round_max := c;
        match operator txn item with
        | produced -> survivors := (txn, produced) :: !survivors
        | exception Detector.Conflict { reason; _ } ->
            incr aborted;
            Txn.rollback txn;
            detector.Detector.on_abort (Txn.id txn);
            (match oh with
            | Some h ->
                Obs.incr h.o_abort;
                Obs.incr h.o_retry;
                Obs.event h.o_obs ~tag:"abort" reason
            | None -> ());
            retry := item :: !retry)
      batch;
    (* Commit survivors (releases their locks / log entries), then requeue:
       conflict victims at the front, freshly produced work at the back. *)
    List.iter
      (fun (txn, produced) ->
        incr committed;
        Txn.commit txn;
        detector.Detector.on_commit (Txn.id txn);
        List.iter push_back produced)
      (List.rev !survivors);
    (match oh with
    | Some h ->
        let n_commit = List.length !survivors and n_abort = List.length !retry in
        Obs.add h.o_commit n_commit;
        Obs.incr h.o_rounds;
        Obs.observe h.o_round_commits n_commit;
        Obs.observe h.o_round_aborts n_abort
    | None -> ());
    push_front_all (List.rev !retry);
    makespan := !makespan +. !round_max
  done;
  {
    committed = !committed;
    aborted = !aborted;
    rounds = Some !rounds;
    makespan = !makespan;
    total_work = !total;
    wall_s = Stats.now_s () -. t0;
    backoff_seed = None;
  }

(** Plain sequential execution (one item at a time, conflict detection
    still active if the detector has any).  [run_rounds ~processors:1]
    specialised; used for the overhead measurements [o_d]. *)
let run_sequential ?cost ?obs ~detector ~operator init =
  run_rounds ~processors:1 ?cost ?obs ~detector ~operator init

(* ------------------------------------------------------------------ *)
(* Domain-based executor                                               *)
(* ------------------------------------------------------------------ *)

(* Observability hooks for the domain executor.  Deliberately a different
   set from {!obs_hooks}: a free-running parallel execution has no rounds,
   so recording a [rounds] counter or per-round histograms would make
   `commlat stats` render empty distributions as if no work happened.
   Those fields are simply absent from domain-run snapshots (the snapshot
   schema is generic, so `commlat stats --validate` accepts both shapes);
   instead we record steals and the per-domain commit distribution. *)
type domain_hooks = {
  dh_commit : Obs.counter;
  dh_abort : Obs.counter;
  dh_retry : Obs.counter;
  dh_steal : Obs.counter;  (** items taken from another domain's deque *)
  dh_domain_commits : Obs.dist;  (** one sample per domain: its commits *)
  dh_obs : Obs.t;
}

let domain_hooks = function
  | None -> None
  | Some obs ->
      Some
        {
          dh_commit = Obs.counter obs "committed";
          dh_abort = Obs.counter obs "aborted";
          dh_retry = Obs.counter obs "retries";
          dh_steal = Obs.counter obs "steals";
          dh_domain_commits = Obs.dist obs "domain_commits";
          dh_obs = obs;
        }

(** Real concurrency on OCaml 5 domains.  There is no global serialization:
    each worker domain runs operators concurrently, and every shared
    mutable path is protected by the layer that owns it —

    - {e detector state and the ADT's concrete state}: each detector's
      internal {!Guard.t} (its [on_invoke] executes the method inside its
      critical section, so concurrent transactions interleave at
      method-invocation granularity, exactly the atomicity §2.1 assumes);
    - {e the undo log}: private to its transaction until an abort, when the
      executor replays it while holding {e every} involved detector's guard
      ({!Guard.protect_all} over the transaction's registered guards plus
      the detector's own), so a concurrent general-gatekeeper undo/redo
      sweep can never interleave with — and re-apply — writes the rollback
      is reverting; [on_abort] then re-enters those guards;
    - {e the work supply}: one {!Wsdeque} per domain (owner pops the front,
      retries go back to the front, new work to the back; idle domains
      steal from other deques' backs).

    Termination is exact, not spun-for: [pending] counts queued-or-running
    items and is updated {e once} per completed item
    ([fetch_and_add (k-1)] {e before} the [k] children are published, so it
    never transiently under-counts).  A worker finding every deque empty
    sleeps on a condition variable, guarded by a wake version number read
    before it scanned — a publish between scan and sleep changes the
    version and the sleep is skipped, so wakeups cannot be missed.  The
    worker that drives [pending] to zero broadcasts, and everyone exits.

    Commit order: the detector's [on_commit] runs first (releasing
    locks/log entries), then [Txn.commit] discards the undo log, and only
    then are the commit counters incremented — a raising commit hook finds
    stats untouched and the undo log intact, so the transaction is rolled
    back before the failure propagates.

    A non-[Conflict] exception from the operator (or a commit hook) is a
    bug in the operator, not speculation: the raising transaction is rolled
    back, every worker is told to stop, and the exception is re-raised
    (with its backtrace) after all domains have joined.

    Returned stats: [rounds = None] (no rounds exist to count — see
    {!stats}), [makespan = wall_s], [total_work] = summed per-domain busy
    seconds, so {!parallelism} reports effective parallelism
    [total_work /. wall_s]. *)
let run_domains ?(domains = 2) ?(backoff_seed = 0x5eedbacc) ?obs
    ~(detector : Detector.t)
    ~(operator : Detector.t -> Txn.t -> 'w -> 'w list) (init : 'w list) : stats =
  let dh = domain_hooks obs in
  let det = detector in
  let operator = operator det in
  let n = max 1 domains in
  let deques = Array.init n (fun _ -> Wsdeque.create ()) in
  List.iteri (fun i w -> Wsdeque.push_back deques.(i mod n) w) init;
  let pending = Atomic.make (List.length init) in
  let committed = Atomic.make 0 and aborted = Atomic.make 0 in
  let steals = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  (* sleep/wake protocol: [wake] is a version number bumped on every
     publish; sleepers re-check it (under [idle_mu]) against the value they
     read before scanning the deques *)
  let wake = Atomic.make 0 in
  let idle_mu = Mutex.create () in
  let idle_cv = Condition.create () in
  let notify () =
    Atomic.incr wake;
    Mutex.protect idle_mu (fun () -> Condition.broadcast idle_cv)
  in
  let record_failure e bt =
    (* first failure wins; any later ones are secondary casualties *)
    ignore (Atomic.compare_and_set failure None (Some (e, bt)));
    Atomic.set stop true;
    notify ()
  in
  (* Roll a doomed transaction back and release its detector state as ONE
     step with respect to every detector it touched. *)
  let abort_atomically txn =
    Guard.protect_all
      (Txn.guards txn @ det.Detector.guards)
      (fun () ->
        Txn.rollback txn;
        det.Detector.on_abort (Txn.id txn))
  in
  let domain_commits = Array.make n 0 in
  let busy = Array.make n 0.0 in
  let t0 = Stats.now_s () in
  let worker me () =
    let mine = deques.(me) in
    let steal_one () =
      let rec go k =
        if k >= n then None
        else
          match Wsdeque.steal deques.((me + k) mod n) with
          | Some _ as r ->
              Atomic.incr steals;
              (match dh with Some h -> Obs.incr h.dh_steal | None -> ());
              r
          | None -> go (k + 1)
      in
      go 1
    in
    (* Consecutive failed attempts by this worker: the retry backoff below
       scales with it, and any successful commit resets it.  The RNG
       jitters each sleep so workers that lost to the same transaction
       don't wake in lockstep and immediately re-collide; seeding it from
       [backoff_seed] and the worker index keeps runs reproducible (the
       seed is recorded in the returned stats). *)
    let setbacks = ref 0 in
    let rng = Random.State.make [| backoff_seed; me |] in
    let process item =
      let t_item = Stats.now_s () in
      let txn = Txn.fresh () in
      (match operator txn item with
      | produced -> (
          match
            det.Detector.on_commit (Txn.id txn);
            Txn.commit txn
          with
          | () ->
              setbacks := 0;
              Atomic.incr committed;
              domain_commits.(me) <- domain_commits.(me) + 1;
              (match dh with Some h -> Obs.incr h.dh_commit | None -> ());
              let k = List.length produced in
              if k > 0 then begin
                (* the children replace their parent in [pending] with one
                   atomic update, BEFORE they are published: the counter
                   never transiently under-counts queued work, so no worker
                   can conclude termination early *)
                ignore (Atomic.fetch_and_add pending (k - 1));
                Wsdeque.push_back_all mine produced;
                notify ()
              end
              else if Atomic.fetch_and_add pending (-1) = 1 then
                (* that was the last pending item: wake sleepers to exit *)
                notify ()
          | exception e ->
              (* raising commit hook: stats untouched, undo log intact *)
              let bt = Printexc.get_raw_backtrace () in
              abort_atomically txn;
              record_failure e bt)
      | exception Detector.Conflict { reason; _ } ->
          abort_atomically txn;
          Atomic.incr aborted;
          (match dh with
          | Some h ->
              Obs.incr h.dh_abort;
              Obs.incr h.dh_retry;
              Obs.event h.dh_obs ~tag:"abort" reason
          | None -> ());
          (* retry-at-front on our own deque; [pending] unchanged.  The
             item stays with an awake worker, so no notify is needed.
             Back off before retrying: the transaction we lost to lives on
             another domain, and with more domains than cores it may be
             descheduled — burning our whole timeslice re-conflicting with
             it (and paying a gatekeeper sweep per attempt) starves it of
             the CPU it needs to finish.  Spin for the first few setbacks,
             then sleep with capped exponential growth, which yields the
             processor to the very transaction we are waiting on. *)
          Wsdeque.push_front mine item;
          incr setbacks;
          if !setbacks <= 4 then Domain.cpu_relax ()
          else begin
            let base =
              min 0.002 (5e-5 *. float_of_int (1 lsl min 10 (!setbacks - 4)))
            in
            Unix.sleepf (base *. (0.5 +. Random.State.float rng 1.0))
          end
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          abort_atomically txn;
          record_failure e bt);
      busy.(me) <- busy.(me) +. (Stats.now_s () -. t_item)
    in
    let running = ref true in
    while !running && not (Atomic.get stop) do
      (* read the wake version BEFORE scanning: a publish landing after the
         scan bumps it, and the sleep check below catches the change *)
      let v = Atomic.get wake in
      match Wsdeque.pop mine with
      | Some item -> process item
      | None -> (
          match steal_one () with
          | Some item -> process item
          | None ->
              if Atomic.get pending = 0 then running := false
              else
                Mutex.protect idle_mu (fun () ->
                    if
                      Atomic.get wake = v
                      && Atomic.get pending > 0
                      && not (Atomic.get stop)
                    then Condition.wait idle_cv idle_mu))
    done
  in
  let guarded_worker me () =
    (* nothing may escape a worker: an uncaught exception must stop the
       fleet rather than strand it *)
    try worker me () with e -> record_failure e (Printexc.get_raw_backtrace ())
  in
  let ds =
    List.init (n - 1) (fun i -> Domain.spawn (fun () -> guarded_worker (i + 1) ()))
  in
  guarded_worker 0 ();
  List.iter Domain.join ds;
  (match dh with
  | Some h -> Array.iter (Obs.observe h.dh_domain_commits) domain_commits
  | None -> ());
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let wall_s = Stats.now_s () -. t0 in
  {
    committed = Atomic.get committed;
    aborted = Atomic.get aborted;
    rounds = None;
    makespan = wall_s;
    total_work = Array.fold_left ( +. ) 0.0 busy;
    wall_s;
    backoff_seed = Some backoff_seed;
  }
