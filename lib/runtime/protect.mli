(** Unified detector construction: one entry point over every conflict
    detection scheme the library offers.

    Instead of hand-rolling a dispatch over [Detector.global_lock],
    [Abstract_lock.detector], [Gatekeeper.forward]/[general] and
    [Stm.create], applications describe {e what the ADT offers} ({!adt})
    and {e which scheme they want} ({!scheme}) and call {!protect}:

    {[
      let det =
        Protect.protect ~spec:(Iset.precise_spec ())
          ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
          (Protect.Sharded (Protect.Forward_gk, 16))
    ]} *)

open Commlat_core
open Commlat_adts

type scheme =
  | Global_lock  (** the ⊥ specification: one exclusive lock *)
  | Abstract_lock  (** paper §3.2, from a SIMPLE spec *)
  | Forward_gk  (** paper §3.3.1, ONLINE-CHECKABLE specs *)
  | General_gk  (** paper §3.3.2, any L1 spec (needs undo/redo hooks) *)
  | Stm  (** concrete-cell STM baseline (needs a tracer connector) *)
  | Sharded of scheme * int
      (** footprint-sharded variant of a gatekeeper ([n] shards) or striped
          variant of abstract locking ([n] stripes); applies to [Forward_gk],
          [General_gk] and [Abstract_lock] only, and does not nest *)

(** Canonical spelling: ["global-lock"], ["abslock"], ["fwd-gk"],
    ["gen-gk"], ["stm"], with a ["-sharded:N"] suffix for [Sharded].  Used
    by the CLI and the benchmark [--detector] filters. *)
val scheme_name : scheme -> string

(** Inverse of {!scheme_name}; also accepts a bare ["-sharded"] suffix
    (shard count defaults to 16). *)
val scheme_of_string : string -> (scheme, string) result

val default_nshards : int

(** What a data structure offers its detector. *)
type adt = {
  hooks : Gatekeeper.hooks option;
      (** state-function/undo/redo hooks (gatekeeping) *)
  connect_tracer : (Mem_trace.t -> unit) option;
      (** route the ADT's concrete reads/writes to an STM tracer *)
}

val adt :
  ?hooks:Gatekeeper.hooks ->
  ?connect_tracer:(Mem_trace.t -> unit) ->
  unit ->
  adt

(** Build a detector for [spec] over [adt] with the given scheme.  [?obs]
    enables/disables the detector's observability registry;
    [?reduce_scheme] is forwarded to {!Abstract_lock.detector}.

    [?compiled] (default [true]) routes conflict checks through the spec
    compiler ({!Commlat_core.Compile}): gatekeepers evaluate state-free
    conditions with zero-environment, zero-allocation closures, and
    abstract locks compute lock keys the same way.  Verdicts are identical
    to the interpreter's (differential-tested; see the [compile] bench for
    the throughput gap), so compilation is on by default; pass
    [~compiled:false] to opt out into the interpreter (the cross-executor
    equivalence matrix exercises both paths).  [Global_lock] and [Stm]
    never evaluate conditions, so they ignore it.

    Raises [Invalid_argument] when the scheme needs something the [adt]
    record doesn't offer, when the spec is outside the scheme's logic
    fragment, or on a malformed [Sharded] scheme. *)
val protect :
  ?obs:bool ->
  ?reduce_scheme:bool ->
  ?compiled:bool ->
  spec:Spec.t ->
  adt:adt ->
  scheme ->
  Detector.t

(** Like {!protect} restricted to the gatekeeper schemes ([Forward_gk],
    [General_gk], and their [Sharded] variants), returning the underlying
    {!Gatekeeper.t} alongside the detector — for embedders that need the
    gatekeeper's own surface (e.g. {!Gatekeeper.batch_check} on the
    server's batched read path).  [?compiled] defaults to [true], as in
    {!protect}.  Raises [Invalid_argument] on non-gatekeeper schemes. *)
val protect_gatekeeper :
  ?obs:bool ->
  ?compiled:bool ->
  hooks:Gatekeeper.hooks ->
  spec:Spec.t ->
  scheme ->
  Detector.t * Gatekeeper.t

(** Every base scheme, coarsest first. *)
val all_schemes : scheme list
