(** Boosted method invocation: the glue between application transactions,
    conflict detectors and ADT undo actions.

    The undo action is registered {e before} the detector runs the method:
    gatekeepers (and the STM baseline) execute the method first and may
    detect the conflict afterwards, and in that case the half-done
    transaction must still roll the invocation back.  ADT undo functions
    dispatch on [inv.ret], which is only set once the method has actually
    executed — so an undo registered for an invocation that never ran is a
    no-op. *)

open Commlat_core

(** [invoke det txn ~undo meth args exec]: run [exec inv] under conflict
    detection on behalf of [txn], with [undo inv] registered as the
    transaction-rollback action.  Returns the method's result; raises
    {!Detector.Conflict} if the invocation does not commute with a live
    one. *)
let invoke (det : Detector.t) (txn : Txn.t) ~(undo : Invocation.t -> unit)
    (meth : Invocation.meth) (args : Value.t array)
    (exec : Invocation.t -> Value.t) : Value.t =
  let inv = Invocation.make ~txn:(Txn.id txn) meth args in
  Txn.register_guards txn det.Detector.guards;
  if meth.Invocation.concrete then Txn.push_undo txn (fun () -> undo inv);
  det.Detector.on_invoke inv (fun () -> exec inv)

(** Read-only invocation: no undo needed.  The detector's guards are still
    registered: the invocation may hold detector state (locks, log entries)
    that an abort must release atomically. *)
let invoke_ro (det : Detector.t) (txn : Txn.t) (meth : Invocation.meth)
    (args : Value.t array) (exec : Invocation.t -> Value.t) : Value.t =
  let inv = Invocation.make ~txn:(Txn.id txn) meth args in
  Txn.register_guards txn det.Detector.guards;
  det.Detector.on_invoke inv (fun () -> exec inv)
