(** Transactions: one speculative iteration of an amorphous-data-parallel
    loop (one unit of Galois-style optimistic work).

    A transaction accumulates undo actions as it performs method
    invocations; {!rollback} runs them newest-first, restoring the abstract
    state the transaction saw when it started.

    It also accumulates the {!Commlat_core.Guard.t}s of every detector it
    invoked through ({!register_guards}, called by {!Boost}).  The domain
    executor takes all of them around [rollback] + [on_abort], making the
    whole abort one atomic step with respect to each involved detector —
    without this, a general gatekeeper's undo/redo sweep on another domain
    could re-apply writes the rollback had just reverted. *)

open Commlat_core

type status = Running | Committed | Aborted

type t = {
  id : int;
  mutable undo : (unit -> unit) list;  (** newest first *)
  mutable status : status;
  mutable guards : Guard.t list;
      (** guards of every detector this transaction invoked through *)
}

let counter = Atomic.make 1

let fresh () =
  { id = Atomic.fetch_and_add counter 1; undo = []; status = Running; guards = [] }

let id t = t.id
let status t = t.status

(** Register the inverse of an action just performed. *)
let push_undo t f = t.undo <- f :: t.undo

(** Record that the transaction invoked through a detector owning these
    guards; duplicates are kept out so the list stays as short as the
    number of distinct detectors touched. *)
let register_guards t gs =
  List.iter (fun g -> if not (List.memq g t.guards) then t.guards <- g :: t.guards) gs

(** Every guard registered so far (undedup'd against other sources; callers
    combine with the detector's own guard list and {!Guard.protect_all}
    dedups). *)
let guards t = t.guards

let commit t =
  t.status <- Committed;
  t.undo <- []

(** Undo everything the transaction did, newest action first. *)
let rollback t =
  List.iter (fun f -> f ()) t.undo;
  t.undo <- [];
  t.status <- Aborted
