(** Speculative executors for amorphous data-parallel loops.

    Applications are expressed Galois-style: a worklist of items and an
    {e operator} that processes one item inside a transaction, performing
    method invocations on shared ADTs through a conflict {!Detector} and
    returning newly generated work.  Two executors are provided:

    - {!run_rounds} — a deterministic {e bulk-synchronous} speculative
      executor: in each round up to [processors] pending items execute as
      concurrent transactions, survivors commit at the end of the round,
      conflict victims roll back and retry in a later round.  With
      [processors = max_int] and unit costs this is exactly the ParaMeter
      methodology the paper uses to measure available parallelism (see
      {!Parameter}).
    - {!run_domains} — real concurrency on OCaml 5 domains; interleaving
      is at method-invocation granularity.  Work is spread over per-domain
      {!Wsdeque}s with stealing, aborts are made atomic by taking every
      involved detector guard, and termination is exact (a pending count
      plus a versioned sleep/wake protocol).

    The operator {b must} register an undo action with its transaction for
    every mutation it performs, so aborts can roll back. *)

open Commlat_core
module Obs = Commlat_obs.Obs

type stats = {
  committed : int;  (** iterations that committed *)
  aborted : int;  (** iteration executions that rolled back *)
  rounds : int option;
      (** # of bulk-synchronous rounds = critical path length; [None] for
          {!run_domains} (a free-running execution has no rounds) *)
  makespan : float;
      (** {!run_rounds}: sum over rounds of the max iteration cost (cost
          units).  {!run_domains}: real elapsed seconds (= [wall_s]). *)
  total_work : float;
      (** {!run_rounds}: summed cost of every execution, retries included
          (cost units).  {!run_domains}: summed per-domain busy seconds. *)
  wall_s : float;  (** real elapsed seconds *)
  backoff_seed : int option;
      (** {!run_domains}: seed of the per-domain backoff-jitter RNGs
          (printed by {!pp_stats} as [backoff-seed=N]); [None] for
          bulk-synchronous runs *)
}

val pp_stats : stats Fmt.t
val abort_ratio : stats -> float

(** The round count of a bulk-synchronous run.  Raises [Invalid_argument]
    on {!run_domains} stats, which have no rounds. *)
val rounds_exn : stats -> int

(** Average parallelism.  Bulk-synchronous runs: committed iterations per
    round (the ParaMeter sense).  Domain runs: effective parallelism
    [total_work /. wall_s], at most the domain count. *)
val parallelism : stats -> float

(** Bulk-synchronous speculative execution.  [cost] assigns each item a
    virtual cost (default 1.0); [obs], when given, receives
    committed/aborted/retries/rounds counters and per-round commit/abort
    histograms. *)
val run_rounds :
  ?processors:int ->
  ?cost:('w -> float) ->
  ?obs:Obs.t ->
  detector:Detector.t ->
  operator:(Txn.t -> 'w -> 'w list) ->
  'w list ->
  stats

(** [run_rounds ~processors:1] (conflict detection still active); used for
    the overhead measurements [o_d]. *)
val run_sequential :
  ?cost:('w -> float) ->
  ?obs:Obs.t ->
  detector:Detector.t ->
  operator:(Txn.t -> 'w -> 'w list) ->
  'w list ->
  stats

(** Real concurrency on OCaml 5 domains.  The operator additionally
    receives the detector so it can invoke through it on any domain.
    Returned stats have [rounds = None], [makespan = wall_s] and
    [total_work] = summed per-domain busy seconds.  A non-[Conflict]
    exception from the operator is re-raised after all domains join.

    Retry backoff sleeps are jittered by per-domain RNGs seeded from
    [backoff_seed] (and the domain index), so contending workers don't
    wake in lockstep; the seed is echoed in [stats.backoff_seed] and by
    {!pp_stats}. *)
val run_domains :
  ?domains:int ->
  ?backoff_seed:int ->
  ?obs:Obs.t ->
  detector:Detector.t ->
  operator:(Detector.t -> Txn.t -> 'w -> 'w list) ->
  'w list ->
  stats
