(** Object-granularity software transactional memory — the baseline the
    paper compares against (they used DSTM2; see DESIGN.md §4 for the
    substitution).

    Conflict detection is at the level of the ADT's concrete cells (tree
    nodes, parent-pointer cells, graph nodes), reported through the
    {!Commlat_adts.Mem_trace} instrumentation: a transaction conflicts if
    it reads a cell written by another live transaction or writes a cell
    read or written by one.  Checking happens when each method invocation
    completes (invocations are atomic, §2.1), so an aborted transaction is
    rolled back by its semantic undo log exactly as with the other
    detectors. *)

open Commlat_core
open Commlat_adts

(** STM state: the cell ownership table and the per-invocation read/write
    accumulators (internal). *)
type t

(** [?obs] enables/disables the observability registry (scope ["stm"]:
    [invocations], [conflicts], [read_set]/[write_set] distributions). *)
val make : ?obs:bool -> unit -> t

(** The memory-trace sink ADTs report their concrete reads/writes to. *)
val tracer : t -> Mem_trace.t

val detector : t -> Detector.t

(** Implementation detail of {!Protect} (scheme [Stm]) and of the runtime's
    own tests; application code should construct detectors through
    [Protect.protect] with an [adt] carrying a [connect_tracer]. *)
module Private : sig
  (** Convenience: a fresh STM with its detector and tracer. *)
  val create : ?obs:bool -> unit -> Detector.t * Mem_trace.t
end
