(** Transactions: one speculative iteration of an amorphous-data-parallel
    loop (one unit of Galois-style optimistic work).

    A transaction accumulates undo actions as it performs method
    invocations; {!rollback} runs them newest-first, restoring the abstract
    state the transaction saw when it started.  It also accumulates the
    {!Commlat_core.Guard.t}s of every detector it invoked through
    ({!register_guards}, called by {!Boost}): the domain executor takes all
    of them around [rollback] + [on_abort], making the whole abort one
    atomic step with respect to each involved detector. *)

open Commlat_core

type status = Running | Committed | Aborted

(** Transaction state: id, undo log, status and registered guards.  The
    undo log and guard list are internal — mutate them only through
    {!push_undo} / {!register_guards}. *)
type t

(** A fresh [Running] transaction with a process-unique id. *)
val fresh : unit -> t

val id : t -> int
val status : t -> status

(** Register the inverse of an action just performed. *)
val push_undo : t -> (unit -> unit) -> unit

(** Record that the transaction invoked through a detector owning these
    guards (deduplicated). *)
val register_guards : t -> Guard.t list -> unit

(** Every guard registered so far (callers combine with the detector's own
    guard list; {!Guard.protect_all} dedups). *)
val guards : t -> Guard.t list

(** Mark committed and discard the undo log. *)
val commit : t -> unit

(** Undo everything the transaction did, newest action first, and mark
    aborted. *)
val rollback : t -> unit
