(** Object-granularity software transactional memory — the baseline the
    paper compares against (they used DSTM2; see DESIGN.md §4 for the
    substitution).

    Conflict detection is at the level of the ADT's concrete cells (tree
    nodes, parent-pointer cells, graph nodes), reported through the
    {!Commlat_adts.Mem_trace} instrumentation: a transaction conflicts if it
    reads a cell written by another live transaction or writes a cell read
    or written by one.  Checking happens when each method invocation
    completes (invocations are atomic, §2.1), so an aborted transaction is
    rolled back by its semantic undo log exactly as with the other
    detectors. *)

open Commlat_core
open Commlat_adts
module Obs = Commlat_obs.Obs

type cell_state = { mutable writer : int option; mutable readers : int list }

type t = {
  cells : (int, cell_state) Hashtbl.t;
  touched : (int, int list ref) Hashtbl.t;  (** txn -> cells it registered *)
  mutable current : int;  (** txn whose invocation is executing *)
  mutable cur_reads : int list;
  mutable cur_writes : int list;
  mu : Guard.t;
  obs : Obs.t;
  c_inv : Obs.counter;
  c_conflicts : Obs.counter;
  d_reads : Obs.dist;  (** cells read per invocation (with repeats) *)
  d_writes : Obs.dist;  (** cells written per invocation (with repeats) *)
}

let make ?obs:obs_enabled () =
  let obs = Obs.create ?enabled:obs_enabled "stm" in
  {
    cells = Hashtbl.create 4096;
    touched = Hashtbl.create 64;
    current = -1;
    cur_reads = [];
    cur_writes = [];
    mu = Guard.create ();
    obs;
    c_inv = Obs.counter obs "invocations";
    c_conflicts = Obs.counter obs "conflicts";
    d_reads = Obs.dist obs "read_set";
    d_writes = Obs.dist obs "write_set";
  }

(** The tracer to install on the protected ADT(s).  Each traced access is
    also a {!Schedpoint} yield point, so the virtual scheduler sees STM
    read/write granularity (cell accesses happen inside [on_invoke]'s
    guard, so other invocations cannot interleave — but the announcements
    make the trace show {e what} the STM conflicts on). *)
let tracer (t : t) : Mem_trace.t =
  {
    Mem_trace.read =
      (fun c ->
        if t.current >= 0 then begin
          Schedpoint.emit (Schedpoint.Read c);
          t.cur_reads <- c :: t.cur_reads
        end);
    write =
      (fun c ->
        if t.current >= 0 then begin
          Schedpoint.emit (Schedpoint.Write c);
          t.cur_writes <- c :: t.cur_writes
        end);
  }

let cell_state t c =
  match Hashtbl.find_opt t.cells c with
  | Some s -> s
  | None ->
      let s = { writer = None; readers = [] } in
      Hashtbl.add t.cells c s;
      s

let note_touched t txn c =
  match Hashtbl.find_opt t.touched txn with
  | Some l -> if not (List.mem c !l) then l := c :: !l
  | None -> Hashtbl.add t.touched txn (ref [ c ])

let release (t : t) txn =
  Guard.protect t.mu (fun () ->
      match Hashtbl.find_opt t.touched txn with
      | None -> ()
      | Some l ->
          List.iter
            (fun c ->
              match Hashtbl.find_opt t.cells c with
              | None -> ()
              | Some s ->
                  if s.writer = Some txn then s.writer <- None;
                  s.readers <- List.filter (fun r -> r <> txn) s.readers;
                  if s.writer = None && s.readers = [] then Hashtbl.remove t.cells c)
            !l;
          Hashtbl.remove t.touched txn)

let detector (t : t) : Detector.t =
  let on_invoke (inv : Invocation.t) exec =
    let txn = inv.Invocation.txn in
    Guard.protect t.mu (fun () ->
        t.current <- txn;
        t.cur_reads <- [];
        t.cur_writes <- [];
        let finish () =
          t.current <- -1;
          t.cur_reads <- [];
          t.cur_writes <- []
        in
        match exec () with
        | exception e ->
            finish ();
            raise e
        | r ->
            inv.Invocation.ret <- r;
            let reads = t.cur_reads and writes = t.cur_writes in
            finish ();
            Obs.incr t.c_inv;
            Obs.observe t.d_reads (List.length reads);
            Obs.observe t.d_writes (List.length writes);
            let conflict ~with_ kind c =
              Obs.incr t.c_conflicts;
              Obs.label t.obs ~cat:"abort_cause" kind;
              Detector.conflict ~txn ~with_ (Fmt.str "%s on cell %d" kind c)
            in
            (* register and check writes: exclusive *)
            List.iter
              (fun c ->
                let s = cell_state t c in
                (match s.writer with
                | Some w when w <> txn -> conflict ~with_:w "w/w" c
                | _ -> ());
                (match List.find_opt (fun r' -> r' <> txn) s.readers with
                | Some r' -> conflict ~with_:r' "r/w" c
                | None -> ());
                s.writer <- Some txn;
                note_touched t txn c)
              writes;
            (* register and check reads: shared unless written *)
            List.iter
              (fun c ->
                let s = cell_state t c in
                (match s.writer with
                | Some w when w <> txn -> conflict ~with_:w "w/r" c
                | _ -> ());
                if not (List.mem txn s.readers) then s.readers <- txn :: s.readers;
                note_touched t txn c)
              reads;
            r)
  in
  {
    Detector.name = "stm";
    on_invoke;
    on_commit = (fun txn -> release t txn);
    on_abort = (fun txn -> release t txn);
    reset =
      (fun () ->
        Guard.protect t.mu (fun () ->
            Hashtbl.reset t.cells;
            Hashtbl.reset t.touched));
    snapshot = (fun () -> Obs.snapshot t.obs);
    guards = [ t.mu ];
  }

(** Convenience: a fresh STM with its detector and tracer. *)
let create ?obs () =
  let t = make ?obs () in
  (detector t, tracer t)

module Private = struct
  let create = create
end
