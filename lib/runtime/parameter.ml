(** ParaMeter-style parallelism profiling (Kulkarni et al., PPoPP 2009 —
    the tool the paper uses for the "Path length" and "Parallelism" columns
    of Table 1).

    The methodology: execute the program as a sequence of bulk-synchronous
    rounds with unboundedly many processors; in each round, greedily run
    every pending iteration that does not conflict (under the conflict
    detection scheme being profiled) with an iteration already accepted in
    the round.  The number of rounds is the {e critical path length} (in
    units of iterations) and committed-iterations / rounds is the
    {e average parallelism}.

    This is {!Executor.run_rounds} with [processors = max_int] and unit
    costs. *)

type profile = {
  critical_path : int;
  total_iterations : int;
  parallelism : float;
  aborted : int;
}

let pp ppf p =
  Fmt.pf ppf "path=%d iters=%d parallelism=%.2f (aborts seen: %d)" p.critical_path
    p.total_iterations p.parallelism p.aborted

(** [max_procs] bounds the per-round window (and hence the largest
    measurable parallelism); unbounded windows make the profiler quadratic
    in the worklist size.  The default of 4096 is far above any parallelism
    the paper reports. *)
let profile ?(max_procs = 4096) ~detector ~operator init : profile =
  let s = Executor.run_rounds ~processors:max_procs ~detector ~operator init in
  {
    critical_path = Executor.rounds_exn s;
    total_iterations = s.Executor.committed;
    parallelism = Executor.parallelism s;
    aborted = s.Executor.aborted;
  }
