(** Adaptive conflict-detector selection.

    The paper closes §5 noting that ranking checkers by permittivity could
    let "an automated system ... adaptively and dynamically select from
    these implementations as run-time needs change"; this module is that
    system, for the bulk-synchronous executor.  {!choose} runs a sampling
    prefix of the workload under each candidate, measuring throughput
    (folding together the detector's overhead [o_d] and the parallelism
    [a_d] it admits — the two quantities the paper's [T·o_d/min(a_d,p)]
    model trades off); the winner runs the full workload.

    Sampling re-executes the prefix from scratch per candidate, so the
    candidate constructor must provide fresh state each time. *)

open Commlat_core

type 'w candidate = {
  name : string;
  prepare : unit -> Detector.t * (Txn.t -> 'w -> 'w list) * 'w list;
      (** fresh application state + detector + operator + initial
          worklist *)
}

type 'w decision = {
  winner : 'w candidate;
  scores : (string * float) list;
      (** virtual time per iteration, lower wins *)
  samples : int;
}

(** Sample every candidate on a prefix of [sample_size] items and pick the
    cheapest.  Raises [Invalid_argument] on an empty candidate list, empty
    names or duplicate names. *)
val choose :
  ?processors:int -> ?sample_size:int -> 'w candidate list -> 'w decision

(** Sample, pick, and run the winner on the full workload.  Returns the
    decision and the winning run's stats. *)
val run :
  ?processors:int ->
  ?sample_size:int ->
  'w candidate list ->
  'w decision * Executor.stats

val pp_decision : _ decision Fmt.t
