(** Adaptive detector selection (paper §5's "future work" system), behind a
    first-class policy type.

    Two policies navigate the same commutativity lattice:

    - {!Offline_sample}: run a sampling prefix of the workload under each
      candidate detector, score by virtual per-iteration cost, run the
      winner ({!choose} / {!run}).  One decision, before execution.
    - {!Online}: a hysteresis {!controller} consumes per-window
      observability deltas ({!signals}) from the {e live} detector and
      walks a chain of lattice points one step at a time — strengthening
      when conflict-check overhead dominates, weakening back toward the
      precise spec when abort ratios climb.  The host (the server's epoch
      scheduler) performs the actual hot-swap and feeds the next window.

    The module owns only decision logic; it never swaps a detector itself,
    which keeps the controller deterministic and unit-testable on
    synthetic signal streams. *)

open Commlat_core

type policy =
  | Offline_sample of { processors : int; sample_size : int }
      (** sample every candidate on a workload prefix, pick the cheapest *)
  | Online of { strengthen_above : float; weaken_above : float; cooldown : int }
      (** strengthen one lattice step when checks-per-invocation exceeds
          [strengthen_above] while (almost) nothing aborts; weaken one
          step when the abort ratio exceeds [weaken_above]; hold
          [cooldown] observation windows after any transition (weakening
          bypasses the cooldown — it is the safety valve) *)

(** [Offline_sample { processors = 4; sample_size = 64 }] *)
val default_offline : policy

(** [Online { strengthen_above = 2.0; weaken_above = 0.05; cooldown = 3 }] *)
val default_online : policy

(** A named way to run the workload: fresh state, a detector over it, the
    operator and initial worklist.  [prepare] must rebuild from scratch on
    every call (sampling executes a prefix once per candidate, then the
    winner re-runs the full list). *)
type 'w candidate = {
  name : string;
  prepare : unit -> Detector.t * (Txn.t -> 'w -> 'w list) * 'w list;
}

type verdict = Hold | Strengthen | Weaken

val verdict_name : verdict -> string

(** One observation window's detector-counter deltas (differences between
    successive obs snapshots, never lifetime totals).  Counters a scheme
    does not export are 0. *)
type signals = {
  s_invocations : int;
  s_conflicts : int;  (** spec-refused invocations (gatekeepers) *)
  s_checks : int;  (** commutativity conditions evaluated *)
  s_checks_avoided : int;  (** scans skipped by footprint sharding *)
  s_lock_denials : int;  (** lock-based schemes' refusals *)
  s_requests : int;  (** embedder-level work units (0 if unknown) *)
  s_ro_fast : int;  (** batch_check fast-path admissions (0 if unknown) *)
}

(** All zeros. *)
val no_signals : signals

(** One recorded lattice move. *)
type transition = {
  t_window : int;  (** observation-window index (0-based) *)
  t_from : string;  (** level name the controller left *)
  t_to : string;  (** level name it installed *)
  t_verdict : verdict;  (** [Strengthen] or [Weaken] *)
  t_abort_ratio : float;  (** the window's conflicts-per-invocation *)
  t_check_cost : float;  (** the window's checks-per-invocation *)
}

type 'w decision = {
  winner : 'w candidate;
  scores : (string * float) list;  (** virtual time per iteration, lower wins *)
  samples : int;
  transitions : transition list;
      (** per-window lattice moves; always [] for {!Offline_sample} *)
}

(** {1 The online controller} *)

(** Hysteresis state for one lattice chain (one protected ADT). *)
type controller

(** [controller ?policy levels] — [levels] are the chain's level names,
    weakest-first: index 0 the most precise spec, the last index the
    coarsest strengthening.  The cursor starts at 0; [policy] defaults to
    {!default_online}.

    @raise Invalid_argument if [policy] is not [Online], or fewer than two
    levels are given. *)
val controller : ?policy:policy -> string list -> controller

(** Current level index / name.  The caller installs the corresponding
    detector after each {!observe} that returns a non-[Hold] verdict. *)
val current : controller -> int

val current_level : controller -> string

(** Feed one window of signals.  Updates the cursor, cooldown, and burn
    set, records any transition, and returns the verdict.  A level the
    controller weakens {e away from} is {e burned} — not re-entered until
    the workload has looked calm (no refusals, check cost under threshold)
    for [cooldown] consecutive windows — which is what stops the
    strengthen/abort/weaken limit cycle on a steady contended phase. *)
val observe : controller -> signals -> verdict

(** All recorded transitions, oldest first. *)
val transitions : controller -> transition list

val pp_transition : transition Fmt.t

(** {1 Offline sampling} *)

(** Sample every candidate on [sample_size] worklist items with
    [processors] simulated processors; lower score wins.  Scores estimate
    virtual runtime per unit of useful work — the paper's
    [T·o_d/min(a_d,p)] folded into a measurement.  [policy] defaults to
    {!default_offline}.

    @raise Invalid_argument under an [Online] policy (it has no sampling
    phase), on an empty candidate list, or on empty/duplicate names. *)
val choose : ?policy:policy -> 'w candidate list -> 'w decision

(** [choose], then run the winner on the full worklist; returns the
    decision and the winning run's stats. *)
val run : ?policy:policy -> 'w candidate list -> 'w decision * Executor.stats

val pp_decision : _ decision Fmt.t
