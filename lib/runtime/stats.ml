(** Measurement helpers: wall-clock timing and the paper's §5 performance
    model [T · o_d / min(a_d, p)]. *)

(** Monotonic wall clock in seconds (CLOCK_MONOTONIC via the bechamel
    stubs).  [Unix.gettimeofday] is subject to NTP steps — a single step
    mid-measurement used to corrupt medians and every overhead ratio, so
    all timing in this repo goes through here.  The epoch is arbitrary:
    only differences are meaningful. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)

(** Median-of-[reps] timing for less noisy small measurements.  A major
    collection runs before each sample so that garbage from earlier
    experiments is not charged to this one. *)
let time_median ?(reps = 3) f =
  let samples =
    List.init reps (fun _ ->
        Gc.full_major ();
        let _, dt = time f in
        dt)
    |> List.sort Float.compare
  in
  List.nth samples (reps / 2)

(** Overhead of a conflict-detection scheme: single-threaded speculative
    runtime over plain sequential runtime (the paper's [o_d]). *)
let overhead ~sequential_s ~single_thread_s =
  if sequential_s <= 0.0 then nan else single_thread_s /. sequential_s

(** The paper's simple model of best-case parallel runtime on [p]
    processors: [T · o_d / min(a_d, p)]. *)
let model_runtime ~t_seq ~overhead:od ~parallelism:ad ~processors:p =
  t_seq *. od /. Float.min ad (float_of_int p)

type row = {
  label : string;
  path_length : int;
  parallelism : float;
  overhead : float;
}

let pp_row ppf r =
  Fmt.pf ppf "%-12s path=%-10d parallelism=%-10.2f overhead=%.2f" r.label
    r.path_length r.parallelism r.overhead

let pp_table ppf rows =
  Fmt.pf ppf "%-12s %-12s %-12s %s@." "variant" "path" "parallelism" "overhead";
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rows
