(** Boruvka's minimum-spanning-tree algorithm, the paper's general
    gatekeeping case study (§5).

    Each graph node starts as its own component; the operator picks a
    component, finds the lightest edge leaving it, merges the two
    components (a [union] on the shared {!Commlat_adts.Union_find}
    structure) and adds the edge to the MST.  Component membership queries
    and merges go through a conflict detector over the union-find ADT:

    - [uf-gk]: the general gatekeeper built from the Fig. 5 specification
      (conditions (1)–(2) need state rollback);
    - [uf-ml]: the STM baseline detecting conflicts on the concrete
      parent/rank cells — where path compression makes semantically
      read-only [find]s collide.

    Component edge lists are auxiliary shared state; the paper "used
    boosted objects wherever possible" for exactly such structures, so they
    are protected by their own synthesized abstract-lock detector (methods
    [scan r] / [merge r r'] with SIMPLE rep-disequality conditions) composed
    with the union-find detector through {!Commlat_core.Detector.compose}. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

(* The boosted component-edge map: [scan r] reads representative [r]'s
   candidate list; [merge a b] rewrites the lists of both representatives.
   The induced locking is read/write locks on representatives. *)
let m_scan = Invocation.meth ~mutates:false "scan" 1
let m_merge = Invocation.meth "merge" 2

let comp_spec () =
  let open Formula in
  let s = Spec.create ~adt:"comp_edges" [ m_scan; m_merge ] in
  Spec.add_sym s "scan" "scan" True;
  Spec.add_sym s "scan" "merge" (ne (arg1 0) (arg2 0) &&& ne (arg1 0) (arg2 1));
  Spec.add_sym s "merge" "merge"
    (ne (arg1 0) (arg2 0) &&& ne (arg1 0) (arg2 1) &&& ne (arg1 1) (arg2 0)
    &&& ne (arg1 1) (arg2 1));
  s

type t = {
  uf : Union_find.t;
  aux : Detector.t;  (** protects [comp_edges] and [mst] *)
  mutable comp_edges : (int * int * int) list array;
      (** per representative: candidate outgoing edges (u, v, w) *)
  mutable mst : (int * int * int) list;
  mu : Mutex.t;  (** memory safety for the domain executor *)
  (* union-find backend: the plain structure by default, or the partially
     persistent wrapper (create_versioned) whose exec/undo also maintain
     the version index *)
  exec_inv : Invocation.t -> Value.t;
  undo_inv : Invocation.t -> unit;
}

let mk ~(mesh : Mesh.t) uf exec_inv undo_inv =
  let comp_edges = Array.make mesh.Mesh.nodes [] in
  Array.iter
    (fun (u, v, w) ->
      comp_edges.(u) <- (u, v, w) :: comp_edges.(u);
      comp_edges.(v) <- (u, v, w) :: comp_edges.(v))
    mesh.Mesh.edges;
  {
    uf;
    aux =
      Protect.protect ~spec:(comp_spec ()) ~adt:(Protect.adt ())
        Protect.Abstract_lock;
    comp_edges;
    mst = [];
    mu = Mutex.create ();
    exec_inv;
    undo_inv;
  }

let create ~(mesh : Mesh.t) () =
  let uf = Union_find.create ~capacity:mesh.Mesh.nodes () in
  ignore (Union_find.create_elements uf mesh.Mesh.nodes);
  mk ~mesh uf (Union_find.exec_logged uf) (Union_find.undo uf)

(** Boruvka over the partially persistent union-find: the general
    gatekeeper built from {!Union_find_versioned.hooks} then answers its
    past-state queries without rollback.  Returns the app state and the
    versioned structure (whose [base] is [t.uf]). *)
let create_versioned ~(mesh : Mesh.t) () =
  let vt = Union_find_versioned.create ~capacity:mesh.Mesh.nodes () in
  ignore (Union_find_versioned.create_elements vt mesh.Mesh.nodes);
  let t =
    mk ~mesh
      (Union_find_versioned.base vt)
      (Union_find_versioned.exec_logged vt)
      (Union_find_versioned.undo vt)
  in
  (t, vt)

(** The detector to hand to an executor: the union-find detector composed
    with the component-map detector, so commits/aborts release both. *)
let full_detector (t : t) (uf_det : Detector.t) : Detector.t =
  Detector.compose [ uf_det; t.aux ]

(* Both methods run through {!Boost}: the rollback action (replaying the
   invocation's concrete write log backwards) is registered before the
   detector executes the method, so a post-execution conflict still rolls
   back.  [find] needs this too — path compression writes. *)

(* Finds use the full descriptor: compression writes go into the general
   gatekeeper's rollback log so its sweeps can reconstruct any active
   invocation's pre-state exactly.  The light descriptor
   ({!Union_find.m_find_light}) is only sound under detectors that never
   sweep — with truly concurrent domains, an admitted find can compress
   across a committed-but-still-sweepable attach edge. *)
let uf_find det (t : t) (txn : Txn.t) x =
  Value.to_int
    (Boost.invoke det txn ~undo:t.undo_inv Union_find.m_find
       [| Value.Int x |] t.exec_inv)

(* Returns (merged, merge): [merge] is [Some (winner, loser)] when two
   components were joined. *)
let uf_union det (t : t) (txn : Txn.t) a b =
  let inv =
    Invocation.make ~txn:(Txn.id txn) Union_find.m_union
      [| Value.Int a; Value.Int b |]
  in
  Txn.register_guards txn det.Detector.guards;
  Txn.push_undo txn (fun () -> t.undo_inv inv);
  let r = det.Detector.on_invoke inv (fun () -> t.exec_inv inv) in
  (* the write log lives in the base structure either way; read it under
     the detector's guards — concurrent invocations resize the log table *)
  let merge =
    Guard.protect_all det.Detector.guards (fun () -> Union_find.merge_of t.uf inv)
  in
  (Value.to_bool r, merge)

(** One transaction: contract one component. The item is a node whose
    component we try to contract; stale items (nodes that are no longer
    representatives) retire immediately. *)
let operator (t : t) (det : Detector.t) (txn : Txn.t) (item : int) : int list =
  let rep = uf_find det t txn item in
  if rep <> item then [] (* merged away; the winning component carries on *)
  else begin
    (* lock the component's candidate list (boosted read) before scanning *)
    ignore
      (Boost.invoke_ro t.aux txn m_scan [| Value.Int rep |] (fun _ -> Value.Unit));
    let lightest = ref None in
    let survivors = ref [] in
    List.iter
      (fun (u, v, w) ->
        let ru = uf_find det t txn u in
        let rv = uf_find det t txn v in
        if ru <> rv then begin
          survivors := (u, v, w) :: !survivors;
          match !lightest with
          | Some (_, _, _, wmin) when wmin <= w -> ()
          | _ -> lightest := Some (u, v, (if ru = rep then rv else ru), w)
        end)
      t.comp_edges.(rep);
    match !lightest with
    | None -> [] (* spanning tree of this component is complete *)
    | Some (u, v, other_rep, w) ->
        ignore other_rep;
        let merged, merge = uf_union det t txn u v in
        if not merged then
          (* cannot happen: a concurrent union displacing ru or rv would
             have conflicted with our finds *)
          invalid_arg "boruvka: chosen edge no longer crosses components";
        let new_rep, lost_rep =
          match merge with
          | Some (winner, loser) -> (winner, loser)
          | None -> invalid_arg "boruvka: merged union has no attach record"
        in
        (* boosted write of both components' candidate lists *)
        ignore
          (Boost.invoke t.aux txn
             ~undo:(fun _ -> ())
             m_merge
             [| Value.Int new_rep; Value.Int lost_rep |]
             (fun _ -> Value.Unit));
        Mutex.protect t.mu (fun () ->
            let old_new = t.comp_edges.(new_rep)
            and old_lost = t.comp_edges.(lost_rep)
            and old_mst = t.mst in
            Txn.push_undo txn (fun () ->
                Mutex.protect t.mu (fun () ->
                    t.comp_edges.(new_rep) <- old_new;
                    t.comp_edges.(lost_rep) <- old_lost;
                    t.mst <- old_mst));
            (* survivors of the scanned list, minus the chosen edge, plus
               the loser's list (pruned when next scanned) *)
            let keep =
              List.filter (fun (a, b, w') -> not (a = u && b = v && w' = w)) !survivors
            in
            let donor = if lost_rep = rep then old_new else old_lost in
            t.comp_edges.(new_rep) <- keep @ donor;
            t.comp_edges.(lost_rep) <- [];
            t.mst <- (u, v, w) :: old_mst);
        [ new_rep ]
  end

(** Run Boruvka to completion; returns the MST edges and executor stats. *)
let run ?(processors = 4) ~detector (mesh : Mesh.t) : (int * int * int) list * Executor.stats =
  let t = create ~mesh () in
  let init = List.init mesh.Mesh.nodes Fun.id in
  let stats =
    Executor.run_rounds ~processors ~detector:(full_detector t detector)
      ~operator:(operator t detector) init
  in
  (t.mst, stats)

let profile ~detector (mesh : Mesh.t) : Parameter.profile =
  let t = create ~mesh () in
  let init = List.init mesh.Mesh.nodes Fun.id in
  Parameter.profile ~detector:(full_detector t detector)
    ~operator:(operator t detector) init

let mst_weight mst = List.fold_left (fun acc (_, _, w) -> acc + w) 0 mst
