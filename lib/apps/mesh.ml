(** Random-weight mesh graphs: the Boruvka input (the paper uses a randomly
    generated 1000×1000 mesh).

    Nodes form an [r]×[c] grid; each node is connected to its right and
    down neighbours.  Edge weights are a random permutation of
    [0 .. m-1], so all weights are distinct and the minimum spanning tree
    is unique — which lets tests compare the speculative MST edge-for-edge
    against Kruskal. *)

type t = {
  nodes : int;
  edges : (int * int * int) array;  (** (u, v, weight), undirected *)
}

let generate ?(seed = 7) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Mesh.generate";
  let node r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (node r c, node r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (node r c, node (r + 1) c) :: !edges
    done
  done;
  let edges = Array.of_list !edges in
  let m = Array.length edges in
  let weights = Array.init m Fun.id in
  let st = Random.State.make [| seed; rows; cols |] in
  for i = m - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = weights.(i) in
    weights.(i) <- weights.(j);
    weights.(j) <- tmp
  done;
  {
    nodes = rows * cols;
    edges = Array.mapi (fun i (u, v) -> (u, v, weights.(i))) edges;
  }

(** Random point clouds: the Delaunay mesh refinement input.

    [n] points strictly inside the square [\[0, size\]²], kept a margin of
    [size/8] away from the border (so refinement circumcenters of interior
    triangles tend to stay inside the bounding box).  Points are snapped
    apart on a 1024×1024 rejection lattice, so they are pairwise distinct
    by a robust float margin; the same [(seed, n)] always yields the same
    array. *)
let points ?(seed = 11) ~n ~size () : (float * float) array =
  if n < 1 || size <= 0.0 then invalid_arg "Mesh.points";
  let st = Random.State.make [| seed; n; 977 |] in
  let margin = size /. 8.0 in
  let span = size -. (2.0 *. margin) in
  let cell (x, y) =
    ( int_of_float (x *. 1024.0 /. size),
      int_of_float (y *. 1024.0 /. size) )
  in
  let seen = Hashtbl.create (2 * n) in
  let pts = Array.make n (0.0, 0.0) in
  let i = ref 0 in
  while !i < n do
    let p =
      ( margin +. Random.State.float st span,
        margin +. Random.State.float st span )
    in
    let key = cell p in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      pts.(!i) <- p;
      incr i
    end
  done;
  pts
