(** Delaunay mesh refinement — the paper's flagship irregular application
    (Galois' DMR), on the {!Commlat_adts.Triset} worklist ADT.

    The mesh is a Bowyer–Watson triangulation of a point cloud inside a
    bounding square.  Refinement is Chew's algorithm: a triangle is {e bad}
    when its circumradius-to-shortest-edge ratio exceeds [sqrt 2]; fixing
    one inserts its circumcenter, which re-triangulates the {e cavity} —
    the connected set of triangles whose circumcircle contains the new
    point.

    Concurrency structure (the paper's §5 claim in miniature): the only
    {e protected} state is the triangle liveness set.  A refinement
    transaction [take]s every triangle of its cavity and [contains]-reads
    the boundary ring; the structural tables (vertex coordinates, triangle
    records, edge adjacency) are read {e dirty} under a plain mutex.  That
    is sound because any structural fact the transaction relies on is
    witnessed by a detector operation on the triangle that carries it: a
    competitor changing the cavity or its ring must [take] one of those
    ids first, which the commutativity spec flags as a conflict — so the
    loser aborts, rolls its takes and structural edits back through the
    undo log, and retries against the committed mesh.  Disjoint cavities
    share no ids and proceed in parallel. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

type tri = { v1 : int; v2 : int; v3 : int }  (** vertex ids, sorted *)

type t = {
  mutable pts : (float * float) array;  (** vertex coordinates, append-only *)
  mutable npts : int;
  tris : (int, tri) Hashtbl.t;  (** live triangle id -> vertices *)
  edge_tris : (int * int, int list) Hashtbl.t;
      (** sorted vertex pair -> ids of the (≤ 2) triangles sharing it *)
  live : Triset.t;  (** the protected liveness set; keys = [tris] keys *)
  mutable next_id : int;  (** ids are minted once and never reused *)
  mu : Mutex.t;  (** guards the structural tables, never held across a
                     detector call (guard acquisition can suspend) *)
  size : float;
  max_pts : int;  (** refinement stops inserting past this many vertices *)
}

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)
(* ------------------------------------------------------------------ *)

let dist2 (ax, ay) (bx, by) =
  let dx = ax -. bx and dy = ay -. by in
  (dx *. dx) +. (dy *. dy)

(** Circumcenter and squared circumradius; [None] for (near-)degenerate
    triangles. *)
let circumcircle ((ax, ay) as pa) (bx, by) (cx, cy) :
    ((float * float) * float) option =
  let d =
    2.0 *. ((ax *. (by -. cy)) +. (bx *. (cy -. ay)) +. (cx *. (ay -. by)))
  in
  if Float.abs d < 1e-9 then None
  else
    let a2 = (ax *. ax) +. (ay *. ay)
    and b2 = (bx *. bx) +. (by *. by)
    and c2 = (cx *. cx) +. (cy *. cy) in
    let ux =
      ((a2 *. (by -. cy)) +. (b2 *. (cy -. ay)) +. (c2 *. (ay -. by))) /. d
    and uy =
      ((a2 *. (cx -. bx)) +. (b2 *. (ax -. cx)) +. (c2 *. (bx -. ax))) /. d
    in
    Some ((ux, uy), dist2 pa (ux, uy))

let tri_edges { v1; v2; v3 } = [ (v1, v2); (v1, v3); (v2, v3) ]

let mk_tri a b c =
  match List.sort compare [ a; b; c ] with
  | [ v1; v2; v3 ] -> { v1; v2; v3 }
  | _ -> assert false

let pt t i = Mutex.protect t.mu (fun () -> t.pts.(i))

let tri_coords t tr =
  Mutex.protect t.mu (fun () -> (t.pts.(tr.v1), t.pts.(tr.v2), t.pts.(tr.v3)))

(** Strict containment in the circumcircle, with a relative slack so
    cocircular configurations (four lattice points on one circle) land on
    the "outside" side deterministically. *)
let in_circum t tr p =
  let pa, pb, pc = tri_coords t tr in
  match circumcircle pa pb pc with
  | None -> false
  | Some (cc, r2) -> dist2 p cc < r2 *. (1.0 -. 1e-9)

(** [Some center] iff the triangle is bad (Chew: circumradius² > 2 ×
    shortest-edge²) {e and} its circumcenter is strictly inside the
    bounding square — centers that escape the box are left alone, as in
    the usual bounded-refinement formulation. *)
let refine_target t tr : (float * float) option =
  let pa, pb, pc = tri_coords t tr in
  match circumcircle pa pb pc with
  | None -> None
  | Some (((cx, cy) as cc), r2) ->
      let min_e2 =
        Float.min (dist2 pa pb) (Float.min (dist2 pa pc) (dist2 pb pc))
      in
      if
        r2 > 2.0 *. min_e2 *. (1.0 +. 1e-9)
        && cx > 0.0 && cx < t.size && cy > 0.0 && cy < t.size
      then Some cc
      else None

(* ------------------------------------------------------------------ *)
(* Structural tables (caller holds [mu], or is single-threaded)         *)
(* ------------------------------------------------------------------ *)

let add_point t p =
  if t.npts = Array.length t.pts then begin
    let np = Array.make ((2 * Array.length t.pts) + 8) (0.0, 0.0) in
    Array.blit t.pts 0 np 0 t.npts;
    t.pts <- np
  end;
  t.pts.(t.npts) <- p;
  t.npts <- t.npts + 1;
  t.npts - 1

let add_tri_struct t id tr =
  Hashtbl.replace t.tris id tr;
  List.iter
    (fun e ->
      let prev = try Hashtbl.find t.edge_tris e with Not_found -> [] in
      Hashtbl.replace t.edge_tris e (id :: prev))
    (tri_edges tr)

let remove_tri_struct t id tr =
  Hashtbl.remove t.tris id;
  List.iter
    (fun e ->
      match
        List.filter
          (fun x -> x <> id)
          (try Hashtbl.find t.edge_tris e with Not_found -> [])
      with
      | [] -> Hashtbl.remove t.edge_tris e
      | rest -> Hashtbl.replace t.edge_tris e rest)
    (tri_edges tr)

(** Edges used by exactly one triangle of the cavity: its boundary. *)
let boundary_edges (trs : tri list) =
  let cnt = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      List.iter
        (fun e ->
          Hashtbl.replace cnt e
            (1 + Option.value ~default:0 (Hashtbl.find_opt cnt e)))
        (tri_edges tr))
    trs;
  Hashtbl.fold (fun e c acc -> if c = 1 then e :: acc else acc) cnt []

(** Mint, record and publish a triangle (sequential paths only). *)
let publish t tr =
  let id = t.next_id in
  t.next_id <- id + 1;
  add_tri_struct t id tr;
  ignore (Triset.add t.live id);
  id

(* ------------------------------------------------------------------ *)
(* Construction: sequential Bowyer–Watson                              *)
(* ------------------------------------------------------------------ *)

(** Insert one point into the current (Delaunay) triangulation: collect
    the in-circle cavity by full scan, re-triangulate its boundary fan.
    Skips points whose insertion would create a degenerate triangle. *)
let insert_seq t p =
  let cav =
    Hashtbl.fold
      (fun cid ctr acc -> if in_circum t ctr p then (cid, ctr) :: acc else acc)
      t.tris []
    |> List.sort compare
  in
  if cav <> [] then begin
    let boundary = List.sort compare (boundary_edges (List.map snd cav)) in
    let fine =
      boundary <> []
      && List.for_all
           (fun (u, v) -> Option.is_some (circumcircle (pt t u) (pt t v) p))
           boundary
    in
    if fine then begin
      let pi = add_point t p in
      List.iter
        (fun (cid, ctr) ->
          remove_tri_struct t cid ctr;
          ignore (Triset.take t.live cid))
        cav;
      List.iter (fun (u, v) -> ignore (publish t (mk_tri u v pi))) boundary
    end
  end

(** Triangulate [input] inside the square [\[0, size\]²] (all points must
    be strictly inside): four corner vertices, two seed triangles, then
    incremental insertion. *)
let create ?(max_pts = 4096) ?(size = 100.0) (input : (float * float) array) :
    t =
  if size <= 0.0 then invalid_arg "Delaunay.create: size must be positive";
  let t =
    {
      pts = Array.make (Array.length input + 8) (0.0, 0.0);
      npts = 0;
      tris = Hashtbl.create 256;
      edge_tris = Hashtbl.create 256;
      live = Triset.create ();
      next_id = 0;
      mu = Mutex.create ();
      size;
      max_pts;
    }
  in
  let c0 = add_point t (0.0, 0.0) in
  let c1 = add_point t (size, 0.0) in
  let c2 = add_point t (size, size) in
  let c3 = add_point t (0.0, size) in
  ignore (publish t (mk_tri c0 c1 c2));
  ignore (publish t (mk_tri c0 c2 c3));
  Array.iter (insert_seq t) input;
  t

(* ------------------------------------------------------------------ *)
(* Refinement                                                          *)
(* ------------------------------------------------------------------ *)

(** Refinable bad triangles (the initial worklist), sorted. *)
let bad_ids t =
  if t.npts >= t.max_pts then []
  else
    List.filter
      (fun id ->
        match Hashtbl.find_opt t.tris id with
        | Some tr -> Option.is_some (refine_target t tr)
        | None -> false)
      (Triset.elements t.live)

(** The refinement operator, as one transaction under a conflict detector:
    claim the cavity through the liveness set, read-protect the boundary
    ring, then apply the structural rewrite with undo actions registered
    for rollback.  Returns the new bad triangle ids (follow-on work).

    Races surface in exactly two ways, both handled: a {e committed}
    competing refinement makes some structural read inconsistent with the
    liveness set ([take]/[contains] returns false, or an adjacency entry
    dangles) — we raise {!Detector.Conflict} against ourselves and let the
    runtime retry; an {e in-flight} competitor holds a live invocation on
    a shared id, and the detector itself raises when our claim does not
    commute with it. *)
let operator (t : t) (det : Detector.t) (txn : Txn.t) (id : int) : int list =
  let live_op name id' =
    let meth =
      match name with "take" -> Triset.m_take | _ -> Triset.m_add
    in
    Value.to_bool
      (Boost.invoke det txn
         ~undo:(Triset.undo t.live)
         meth
         [| Value.Int id' |]
         (fun inv -> Triset.exec t.live name inv.Invocation.args))
  in
  let live_ro id' =
    Value.to_bool
      (Boost.invoke_ro det txn Triset.m_contains
         [| Value.Int id' |]
         (fun inv -> Triset.exec t.live "contains" inv.Invocation.args))
  in
  let stale () =
    Detector.conflict ~txn:(Txn.id txn) ~with_:(Txn.id txn)
      "delaunay: cavity raced a committed refinement"
  in
  if not (live_ro id) then []
  else
    match Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.tris id) with
    | None -> stale ()
    | Some tr -> (
        match refine_target t tr with
        | None -> []
        | Some _ when t.npts >= t.max_pts -> []
        | Some cc ->
            if not (live_op "take" id) then stale ();
            (* cavity: BFS over the connected in-circle region, claiming
               members as they are discovered; ring: the just-outside
               neighbours, whose liveness our boundary depends on *)
            let cav : (int, tri) Hashtbl.t = Hashtbl.create 8 in
            let ring : (int, unit) Hashtbl.t = Hashtbl.create 8 in
            Hashtbl.replace cav id tr;
            let queue = Queue.create () in
            Queue.add tr queue;
            while not (Queue.is_empty queue) do
              let tr0 = Queue.pop queue in
              List.iter
                (fun e ->
                  let nbrs =
                    Mutex.protect t.mu (fun () ->
                        try Hashtbl.find t.edge_tris e with Not_found -> [])
                  in
                  List.iter
                    (fun nid ->
                      if
                        (not (Hashtbl.mem cav nid))
                        && not (Hashtbl.mem ring nid)
                      then
                        match
                          Mutex.protect t.mu (fun () ->
                              Hashtbl.find_opt t.tris nid)
                        with
                        | None -> stale ()
                        | Some ntr ->
                            if in_circum t ntr cc then begin
                              if not (live_op "take" nid) then stale ();
                              Hashtbl.replace cav nid ntr;
                              Queue.add ntr queue
                            end
                            else begin
                              if not (live_ro nid) then stale ();
                              Hashtbl.replace ring nid ()
                            end)
                    nbrs)
                (tri_edges tr0)
            done;
            let cavl =
              Hashtbl.fold (fun cid ctr acc -> (cid, ctr) :: acc) cav []
              |> List.sort compare
            in
            let boundary =
              List.sort compare (boundary_edges (List.map snd cavl))
            in
            let fine =
              boundary <> []
              && List.for_all
                   (fun (u, v) ->
                     Option.is_some (circumcircle (pt t u) (pt t v) cc))
                   boundary
            in
            if not fine then begin
              (* degenerate insertion: give the cavity back — the
                 transaction nets to zero on the protected set *)
              List.iter (fun (cid, _) -> ignore (live_op "add" cid)) cavl;
              []
            end
            else begin
              (* structural rewrite under the mutex (detector calls stay
                 outside it); every edit registers its inverse.  The
                 vertex append is deliberately not undone: ids are
                 append-only, and an aborted refinement merely leaves an
                 unreferenced coordinate behind. *)
              let news =
                Mutex.protect t.mu (fun () ->
                    let pi = add_point t cc in
                    List.iter
                      (fun (cid, ctr) ->
                        remove_tri_struct t cid ctr;
                        Txn.push_undo txn (fun () ->
                            Mutex.protect t.mu (fun () ->
                                add_tri_struct t cid ctr)))
                      cavl;
                    List.map
                      (fun (u, v) ->
                        let nid = t.next_id in
                        t.next_id <- nid + 1;
                        let ntr = mk_tri u v pi in
                        add_tri_struct t nid ntr;
                        Txn.push_undo txn (fun () ->
                            Mutex.protect t.mu (fun () ->
                                remove_tri_struct t nid ntr));
                        (nid, ntr))
                      boundary)
              in
              List.iter (fun (nid, _) -> ignore (live_op "add" nid)) news;
              List.filter_map
                (fun (nid, ntr) ->
                  if Option.is_some (refine_target t ntr) then Some nid
                  else None)
                news
            end)

(** Sequential reference refinement (same cavity policy, no detector). *)
let refine_seq t =
  let q = Queue.create () in
  List.iter (fun id -> Queue.add id q) (bad_ids t);
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    if Triset.contains t.live id then
      match Hashtbl.find_opt t.tris id with
      | None -> ()
      | Some tr -> (
          match refine_target t tr with
          | None -> ()
          | Some _ when t.npts >= t.max_pts -> ()
          | Some cc ->
              let cav = Hashtbl.create 8 in
              Hashtbl.replace cav id tr;
              let bfs = Queue.create () in
              Queue.add tr bfs;
              while not (Queue.is_empty bfs) do
                let tr0 = Queue.pop bfs in
                List.iter
                  (fun e ->
                    List.iter
                      (fun nid ->
                        if not (Hashtbl.mem cav nid) then
                          match Hashtbl.find_opt t.tris nid with
                          | Some ntr when in_circum t ntr cc ->
                              Hashtbl.replace cav nid ntr;
                              Queue.add ntr bfs
                          | _ -> ())
                      (try Hashtbl.find t.edge_tris e with Not_found -> []))
                  (tri_edges tr0)
              done;
              let cavl =
                Hashtbl.fold (fun cid ctr acc -> (cid, ctr) :: acc) cav []
                |> List.sort compare
              in
              let boundary =
                List.sort compare (boundary_edges (List.map snd cavl))
              in
              if
                boundary <> []
                && List.for_all
                     (fun (u, v) ->
                       Option.is_some (circumcircle (pt t u) (pt t v) cc))
                     boundary
              then begin
                let pi = add_point t cc in
                List.iter
                  (fun (cid, ctr) ->
                    remove_tri_struct t cid ctr;
                    ignore (Triset.take t.live cid))
                  cavl;
                List.iter
                  (fun (u, v) ->
                    let nid = publish t (mk_tri u v pi) in
                    match Hashtbl.find_opt t.tris nid with
                    | Some ntr when Option.is_some (refine_target t ntr) ->
                        Queue.add nid q
                    | _ -> ())
                  boundary
              end)
  done

(* ------------------------------------------------------------------ *)
(* Detector construction and the parallel driver                       *)
(* ------------------------------------------------------------------ *)

(** Abstract locking (and the global lock) need the SIMPLE strengthening;
    gatekeepers get the precise claim-set spec. *)
let spec_for (scheme : Protect.scheme) =
  match scheme with
  | Protect.Abstract_lock | Protect.Sharded (Protect.Abstract_lock, _)
  | Protect.Global_lock ->
      Triset.simple_spec ()
  | _ -> Triset.precise_spec ()

let detector ?obs ?(compiled = true) t scheme =
  Protect.protect ?obs ~compiled ~spec:(spec_for scheme)
    ~adt:(Protect.adt ~hooks:(Triset.hooks t.live) ())
    scheme

(** Refine to quiescence on real domains. *)
let refine ?(processors = 4) ~detector:det t : Executor.stats =
  Executor.run_rounds ~processors ~detector:det
    ~operator:(fun txn id -> operator t det txn id)
    (bad_ids t)

(* ------------------------------------------------------------------ *)
(* Checkers                                                            *)
(* ------------------------------------------------------------------ *)

let live_tris t =
  Hashtbl.fold (fun id tr acc -> (id, tr) :: acc) t.tris []
  |> List.sort compare

(** The Delaunay property over the live triangulation: no vertex of the
    mesh lies strictly inside any triangle's circumcircle.  (Vertices are
    collected from the live triangles, so coordinates orphaned by aborted
    transactions don't count.)  Returns a description of the first
    violation. *)
let delaunay_violation t : string option =
  let verts = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ tr ->
      List.iter
        (fun v -> Hashtbl.replace verts v ())
        [ tr.v1; tr.v2; tr.v3 ])
    t.tris;
  let bad = ref None in
  Hashtbl.iter
    (fun id tr ->
      if !bad = None then
        match circumcircle t.pts.(tr.v1) t.pts.(tr.v2) t.pts.(tr.v3) with
        | None -> bad := Some (Fmt.str "triangle %d is degenerate" id)
        | Some (cc, r2) ->
            Hashtbl.iter
              (fun v () ->
                if
                  !bad = None && v <> tr.v1 && v <> tr.v2 && v <> tr.v3
                  && dist2 t.pts.(v) cc < r2 *. (1.0 -. 1e-7)
                then
                  bad :=
                    Some
                      (Fmt.str "vertex %d inside circumcircle of triangle %d"
                         v id))
              verts)
    t.tris;
  !bad

let delaunay_ok t = delaunay_violation t = None

(** Total area of the live triangles — must equal [size²] whenever the
    mesh is quiescent (the box stays perfectly tiled). *)
let area_total t =
  Hashtbl.fold
    (fun _ tr acc ->
      let ax, ay = t.pts.(tr.v1)
      and bx, by = t.pts.(tr.v2)
      and cx, cy = t.pts.(tr.v3) in
      acc
      +. (Float.abs (((bx -. ax) *. (cy -. ay)) -. ((cx -. ax) *. (by -. ay)))
          /. 2.0))
    t.tris 0.0
