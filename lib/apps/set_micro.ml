(** The set microbenchmark of paper §5 (Table 2).

    Threads concurrently hit a shared set: each operation picks an object
    from a pool and either [add]s it or asks [contains] (50/50).  Two
    inputs: all objects distinct, or objects drawn from 10 equivalence
    classes (so the same keys are hit constantly).  Four conflict-detection
    schemes generated from the set's commutativity lattice:

    - [`Global] — the ⊥ specification: one exclusive lock;
    - [`Exclusive] — exclusive abstract locks on elements (§4.1);
    - [`Rw] — read/write abstract locks from the Fig. 3 spec;
    - [`Gatekeeper] — forward gatekeeper from the precise Fig. 2 spec. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

type scheme = [ `Global | `Exclusive | `Rw | `Gatekeeper | `Gatekeeper_sharded ]

let scheme_name = function
  | `Global -> "global-lock"
  | `Exclusive -> "abs-lock-excl"
  | `Rw -> "abs-lock-rw"
  | `Gatekeeper -> "gatekeeper"
  | `Gatekeeper_sharded -> "gatekeeper-sharded"

(* Construction goes through the unified {!Protect} entry point; the spec
   picks the lattice point, the scheme picks the detector family. *)
let detector_of (set : Iset.t) (s : scheme) : Detector.t =
  let adt = Protect.adt ~hooks:(Iset.hooks set) () in
  match s with
  | `Global -> Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt Protect.Global_lock
  | `Exclusive -> Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt Protect.Abstract_lock
  | `Rw -> Protect.protect ~spec:(Iset.simple_spec ()) ~adt Protect.Abstract_lock
  | `Gatekeeper -> Protect.protect ~spec:(Iset.precise_spec ()) ~adt Protect.Forward_gk
  | `Gatekeeper_sharded ->
      Protect.protect ~spec:(Iset.precise_spec ()) ~adt
        (Protect.Sharded (Protect.Forward_gk, Protect.default_nshards))

type op = { key : Value.t; is_add : bool }

(** [ops n ~classes ~seed]: the workload.  [classes = 0] means all keys
    distinct (the paper's first input); [classes = 10] gives the
    10-equivalence-class input. *)
let ops ?(seed = 17) ~classes n : op list =
  let st = Random.State.make [| seed; classes; n |] in
  List.init n (fun i ->
      let key = if classes <= 0 then i else Random.State.int st classes in
      { key = Value.Int key; is_add = Random.State.bool st })

(** One transaction per operation, as in the paper's microbenchmark. *)
let operator (set : Iset.t) (det : Detector.t) (txn : Txn.t) (o : op) : op list =
  let exec name (inv : Invocation.t) = Iset.exec set name inv.Invocation.args in
  (if o.is_add then
     ignore
       (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add [| o.key |]
          (exec "add"))
   else ignore (Boost.invoke_ro det txn Iset.m_contains [| o.key |] (exec "contains")));
  []

type result = {
  scheme : scheme;
  abort_pct : float;
  wall_s : float;
  makespan : float;
  stats : Executor.stats;
  snapshot : Commlat_obs.Obs.snapshot;
      (** the detector's own counters after the run *)
}

(** Run the microbenchmark for one scheme on [threads] simulated
    processors. *)
let run ?(threads = 4) ?(seed = 17) ~classes ~n (s : scheme) : result =
  Gc.full_major ();
  let set = Iset.create () in
  let det = detector_of set s in
  let stats =
    Executor.run_rounds ~processors:threads ~detector:det
      ~operator:(operator set det) (ops ~seed ~classes n)
  in
  {
    scheme = s;
    abort_pct = 100.0 *. Executor.abort_ratio stats;
    wall_s = stats.Executor.wall_s;
    makespan = stats.Executor.makespan;
    stats;
    snapshot = det.Detector.snapshot ();
  }

let all_schemes : scheme list =
  [ `Global; `Exclusive; `Rw; `Gatekeeper; `Gatekeeper_sharded ]
