(** The long-running `commlat serve` process: socket front-end, per-core
    worker domains, epoch-based group commit.

    Threading model (DESIGN.md §11):

    - One {e reader systhread per connection} decodes frames and routes
      each invoke request to a worker queue by its footprint hash
      ({!Engine.route_hash}); keyless requests round-robin.  Readers never
      touch a detector — {!Commlat_core.Guard} ownership is per-{e domain},
      so all transactional work happens on worker domains.
    - [domains] {e worker domains} each drain their queue in epochs of up
      to [batch] requests.  Within an epoch every admitted request's
      transaction stays open; at the epoch boundary the worker commits
      them all (one detector pass each, releasing active-table entries
      and firing commit-time [forget] hooks) and then flushes each
      connection's responses as one buffered write.  Group commit
      amortizes commit work and response syscalls across the batch.
    - A {!Detector.Conflict} inside an epoch first flushes the epoch's
      open transactions (the conflicter is usually among them), then
      retries with capped exponential backoff; after [max_retries] the
      client gets an [Err] frame.  Every other per-request exception is
      already contained by {!Engine.try_req}.

    Termination: a [Quit] request stops the accept loop, lets every
    worker drain its queue ([pending] outstanding-request counter must
    reach zero), joins the worker domains and returns — the CLI then
    exits 0.  Malformed frames answer an [Err] and keep the connection;
    unrecoverable framing (oversized prefix, mid-frame EOF) closes just
    that connection.  Both leave [pending] balanced, so a bad client can
    neither kill a worker nor wedge shutdown. *)

module Obs = Commlat_obs.Obs

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

type config = {
  addr : addr;
  domains : int;  (** worker domains (transaction executors) *)
  batch : int;  (** max requests drained per epoch *)
  max_retries : int;  (** conflict retries before an [Err] reply *)
  nshards : int;  (** detector shards per exposed ADT *)
  verbose : bool;
  adaptive : bool;  (** run the online lattice controller (DESIGN.md §12) *)
  level : string option;
      (** pin every chain that has a level of this name ("simple",
          "part"); mutually exclusive with [adaptive] *)
  tick : float;  (** controller observation-window length, seconds *)
  strengthen_above : float;  (** checks-per-invocation strengthen threshold *)
  weaken_above : float;  (** abort-ratio weaken threshold *)
  cooldown : int;  (** observation windows held after a transition *)
}

let default_config =
  {
    addr = Unix_sock "/tmp/commlat.sock";
    domains = 2;
    batch = 64;
    max_retries = 64;
    nshards = Engine.default_nshards;
    verbose = false;
    adaptive = false;
    level = None;
    tick = 0.05;
    strengthen_above = 2.0;
    weaken_above = 0.05;
    cooldown = 3;
  }

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  out_mu : Mutex.t;  (** serializes writes from workers and the reader *)
  mutable alive : bool;
}

let send_resp conn resp =
  Mutex.protect conn.out_mu (fun () ->
      if conn.alive then
        try Wire.write_frame conn.fd (Wire.encode_resp resp)
        with _ -> conn.alive <- false)

type job = { req : Wire.req; jconn : conn }

(* One blocking multi-producer queue per worker domain. *)
type queue = {
  mu : Mutex.t;
  cv : Condition.t;
  q : job Queue.t;
}

let queue_create () = { mu = Mutex.create (); cv = Condition.create (); q = Queue.create () }

let queue_push qu j =
  Mutex.protect qu.mu (fun () ->
      Queue.push j qu.q;
      Condition.signal qu.cv)

(* Pop up to [n] jobs; blocks while empty unless [stop] is set or
   [unblock ()] holds (a swap barrier is pending and this worker must go
   participate).  Returns [] when woken empty. *)
let queue_drain qu ~stop ~unblock n =
  Mutex.protect qu.mu (fun () ->
      while Queue.is_empty qu.q && (not (Atomic.get stop)) && not (unblock ()) do
        Condition.wait qu.cv qu.mu
      done;
      let rec take k acc =
        if k = 0 || Queue.is_empty qu.q then List.rev acc
        else take (k - 1) (Queue.pop qu.q :: acc)
      in
      take n [])

let wake_all qu = Mutex.protect qu.mu (fun () -> Condition.broadcast qu.cv)

(* ------------------------------------------------------------------ *)
(* The swap gate                                                       *)
(* ------------------------------------------------------------------ *)

(* An all-workers rendezvous at which detector hot-swaps run (DESIGN.md
   §12).  The controller posts a thunk; every worker, on reaching its next
   epoch boundary (all its transactions just committed, so no gatekeeper
   holds live state for it), parks here; the last arriver executes the
   thunk and releases everyone.  Reader threads are not involved — they
   only answer Stats/Ping inline and route invokes to workers, so the
   swap never waits on a slow client.

   Liveness: the barrier always completes because workers never exit
   while a request is posted — shutdown is two-phase ([stop] silences the
   poster and is joined first; [stop_workers] is set only after, when no
   request can be in flight). *)
type gate = {
  g_mu : Mutex.t;
  g_cv : Condition.t;
  mutable g_req : (unit -> unit) option;
  mutable g_waiting : int;  (** workers parked at the barrier *)
  mutable g_gen : int;  (** barrier generation, bumped on release *)
  g_workers : int;
}

let gate_create ~workers =
  {
    g_mu = Mutex.create ();
    g_cv = Condition.create ();
    g_req = None;
    g_waiting = 0;
    g_gen = 0;
    g_workers = workers;
  }

(* Is a swap pending?  Used as the queues' [unblock] predicate; takes the
   gate mutex so a worker can never miss a freshly posted request. *)
let gate_pending (g : gate) () =
  Mutex.protect g.g_mu (fun () -> g.g_req <> None)

(* Worker side: called at every epoch boundary (after [flush_epoch], so
   the calling worker holds zero open transactions). *)
let gate_check (g : gate) =
  Mutex.protect g.g_mu (fun () ->
      match g.g_req with
      | None -> ()
      | Some _ ->
          g.g_waiting <- g.g_waiting + 1;
          if g.g_waiting = g.g_workers then begin
            (* every worker is quiescent: run the swap *)
            (match g.g_req with
            | Some thunk -> ( try thunk () with _ -> ())
            | None -> ());
            g.g_req <- None;
            g.g_waiting <- 0;
            g.g_gen <- g.g_gen + 1;
            Condition.broadcast g.g_cv
          end
          else begin
            let gen = g.g_gen in
            while g.g_gen = gen do
              Condition.wait g.g_cv g.g_mu
            done
          end)

(* Controller side: post a thunk, wake every worker queue, wait for the
   barrier to run it.  [stop] aborts the post (and the wait for a slot)
   during shutdown. *)
let gate_post (g : gate) ~stop ~queues thunk =
  Mutex.lock g.g_mu;
  while g.g_req <> None && not (Atomic.get stop) do
    Condition.wait g.g_cv g.g_mu
  done;
  if Atomic.get stop then Mutex.unlock g.g_mu
  else begin
    g.g_req <- Some thunk;
    Mutex.unlock g.g_mu;
    Array.iter wake_all queues;
    Mutex.lock g.g_mu;
    while g.g_req <> None do
      Condition.wait g.g_cv g.g_mu
    done;
    Mutex.unlock g.g_mu
  end

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

(* Epoch state: open transactions + per-connection response outboxes. *)
type epoch = {
  mutable open_txns : Engine.pending list;  (* newest first *)
  outboxes : (conn * Buffer.t) list ref;
}

let epoch_create () = { open_txns = []; outboxes = ref [] }

let outbox ep conn =
  match List.assq_opt conn !(ep.outboxes) with
  | Some b -> b
  | None ->
      let b = Buffer.create 256 in
      ep.outboxes := (conn, b) :: !(ep.outboxes);
      b

let stage ep conn resp =
  let payload = Wire.encode_resp resp in
  let b = outbox ep conn in
  (* frame = length prefix + payload, accumulated for one write *)
  Buffer.add_uint8 b ((String.length payload lsr 24) land 0xff);
  Buffer.add_uint8 b ((String.length payload lsr 16) land 0xff);
  Buffer.add_uint8 b ((String.length payload lsr 8) land 0xff);
  Buffer.add_uint8 b (String.length payload land 0xff);
  Buffer.add_string b payload

(* Group commit + response flush: the epoch boundary. *)
let flush_epoch eng ep =
  List.iter (Engine.commit eng) (List.rev ep.open_txns);
  ep.open_txns <- [];
  List.iter
    (fun (conn, b) ->
      if Buffer.length b > 0 then begin
        let s = Buffer.contents b in
        Buffer.clear b;
        Mutex.protect conn.out_mu (fun () ->
            if conn.alive then
              try
                Wire.really_write conn.fd (Bytes.unsafe_of_string s) 0
                  (String.length s)
              with _ -> conn.alive <- false)
      end)
    !(ep.outboxes);
  ep.outboxes := []

let backoff_sleep attempt =
  if attempt > 4 then begin
    let exp = min (attempt - 4) 8 in
    Unix.sleepf (1e-6 *. float_of_int (1 lsl exp))
  end

let worker ~eng ~qu ~stop ~gate ~pending ~max_retries ~batch () =
  let ep = epoch_create () in
  let run_job job =
    let rec attempt n =
      match Engine.try_req eng job.req with
      | Engine.Done (p, resp) ->
          (match p with
          | Some p -> ep.open_txns <- p :: ep.open_txns
          | None -> ());
          stage ep job.jconn resp
      | Engine.Conflicted reason ->
          (* our own open transactions may be the conflicter: close the
             epoch before retrying so the retry runs against a clean
             active table *)
          flush_epoch eng ep;
          if n >= max_retries then
            stage ep job.jconn
              (Wire.Err (Wire.req_id job.req, "conflict retries exhausted: " ^ reason))
          else begin
            backoff_sleep n;
            attempt (n + 1)
          end
    in
    (match attempt 0 with
    | () -> ()
    | exception e ->
        (* belt-and-braces: Engine.try_req contains per-request failures,
           but if anything else ever escapes, answer and keep the worker
           (and the pending counter) alive *)
        stage ep job.jconn
          (Wire.Err (Wire.req_id job.req, "internal error: " ^ Printexc.to_string e)));
    ignore (Atomic.fetch_and_add pending (-1))
  in
  let unblock = gate_pending gate in
  let rec loop () =
    match queue_drain qu ~stop ~unblock batch with
    | [] when Atomic.get stop && not (unblock ()) ->
        flush_epoch eng ep (* stopping, drained, no swap pending: exit *)
    | jobs ->
        List.iter run_job jobs;
        flush_epoch eng ep;
        (* epoch boundary: all this worker's transactions are committed —
           participate in any pending detector swap *)
        gate_check gate;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection readers                                                  *)
(* ------------------------------------------------------------------ *)

let reader ~eng ~queues ~rr ~stop ~pending conn () =
  let nworkers = Array.length queues in
  let route job =
    let w =
      match Engine.route_hash eng job.req with
      | Some h -> (h land max_int) mod nworkers
      | None -> (Atomic.fetch_and_add rr 1) mod nworkers
    in
    ignore (Atomic.fetch_and_add pending 1);
    queue_push queues.(w) job
  in
  let rec loop () =
    match Wire.read_frame conn.fd with
    | None -> () (* clean EOF *)
    | exception Wire.Malformed _ | exception Unix.Unix_error _ ->
        () (* framing broken: drop the connection *)
    | Some payload -> (
        match Wire.decode_req payload with
        | exception Wire.Malformed msg ->
            (* the frame boundary survived, so answer and keep reading *)
            send_resp conn (Wire.Err (0, msg));
            loop ()
        | Wire.Quit id ->
            send_resp conn (Wire.Reply (id, Commlat_core.Value.Unit));
            Atomic.set stop true;
            Array.iter wake_all queues
        | Wire.Stats _ | Wire.Ping _ as req ->
            (* answered inline: no transaction, no detector guard *)
            (match Engine.try_req eng req with
            | Engine.Done (None, resp) -> send_resp conn resp
            | _ -> assert false);
            loop ()
        | req ->
            route { req; jconn = conn };
            loop ())
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect conn.out_mu (fun () -> conn.alive <- false);
      try Unix.close conn.fd with _ -> ())
    loop

(* ------------------------------------------------------------------ *)
(* The adaptive controller                                             *)
(* ------------------------------------------------------------------ *)

(* One systhread: every [tick] seconds, difference each multi-level
   chain's current-detector obs snapshot into an
   {!Commlat_runtime.Adaptive.signals} window, feed its hysteresis
   controller, and — when any verdict moves — post one gate thunk that
   applies every due {!Engine.set_level}.  Baseline snapshots are
   re-taken inside the thunk (the successor detector's counters differ
   from the predecessor's), so the next window differences the detector
   actually installed. *)
let controller_loop ~eng ~gate ~queues ~stop (cfg : config) () =
  let module Adaptive = Commlat_runtime.Adaptive in
  let policy =
    Adaptive.Online
      {
        strengthen_above = cfg.strengthen_above;
        weaken_above = cfg.weaken_above;
        cooldown = cfg.cooldown;
      }
  in
  let ctrls =
    List.filter_map
      (fun (adt, levels) ->
        if List.length levels < 2 then None
        else
          Some (adt, Adaptive.controller ~policy levels,
                ref (Engine.level_snapshot eng adt)))
      (Engine.chains eng)
  in
  while not (Atomic.get stop) do
    Thread.delay cfg.tick;
    if not (Atomic.get stop) then begin
      let moves =
        List.filter_map
          (fun (adt, ctrl, prev) ->
            let snap = Engine.level_snapshot eng adt in
            let d name =
              max 0 (Obs.counter_value snap name - Obs.counter_value !prev name)
            in
            let signals =
              {
                Adaptive.no_signals with
                Adaptive.s_invocations = d "invocations";
                s_conflicts = d "conflicts";
                s_checks = d "checks";
                s_checks_avoided = d "checks_avoided";
                s_lock_denials = d "lock_denials";
              }
            in
            prev := snap;
            match Adaptive.observe ctrl signals with
            | Adaptive.Hold -> None
            | Adaptive.Strengthen | Adaptive.Weaken ->
                Some (adt, Adaptive.current ctrl, prev))
          ctrls
      in
      if moves <> [] then
        gate_post gate ~stop ~queues (fun () ->
            List.iter
              (fun (adt, idx, prev) ->
                Engine.set_level eng adt idx;
                prev := Engine.level_snapshot eng adt)
              moves);
      if cfg.verbose then
        List.iter
          (fun (adt, idx, _) ->
            Fmt.epr "commlat serve: %s -> level %d@." adt idx)
          moves
    end
  done

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let listen_socket addr =
  match addr with
  | Unix_sock path ->
      (try Unix.unlink path with _ -> ());
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      Unix.listen s 128;
      s
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt s Unix.SO_REUSEADDR true;
      Unix.bind s (Unix.ADDR_INET (ip, port));
      Unix.listen s 128;
      s

(** Run the server until a [Quit] request arrives; returns the engine (so
    callers can inspect final counters).  Blocking. *)
let run (cfg : config) : Engine.t =
  if cfg.domains < 1 then invalid_arg "Server.run: domains must be >= 1";
  if cfg.adaptive && cfg.level <> None then
    invalid_arg "Server.run: --adaptive and --level are mutually exclusive";
  let eng =
    (* the controller is blind without counters, so adaptive mode forces
       the obs registry on regardless of the COMMLAT_OBS toggle *)
    if cfg.adaptive then
      Engine.create ~obs:true ~nshards:cfg.nshards ()
    else Engine.create ~nshards:cfg.nshards ?level:cfg.level ()
  in
  let stop = Atomic.make false in
  (* two-phase shutdown: [stop] silences the accept loop and the adaptive
     controller; [stop_workers] is raised only after the controller has
     been joined, so no swap barrier can be posted once workers are
     allowed to exit — which is what guarantees every posted barrier
     completes (all workers stay alive until then) *)
  let stop_workers = Atomic.make false in
  let pending = Atomic.make 0 in
  let rr = Atomic.make 0 in
  let queues = Array.init cfg.domains (fun _ -> queue_create ()) in
  let gate = gate_create ~workers:cfg.domains in
  let workers =
    Array.mapi
      (fun _i qu ->
        Domain.spawn
          (worker ~eng ~qu ~stop:stop_workers ~gate ~pending
             ~max_retries:cfg.max_retries ~batch:cfg.batch))
      queues
  in
  let ctrl =
    if cfg.adaptive then
      Some (Thread.create (controller_loop ~eng ~gate ~queues ~stop cfg) ())
    else None
  in
  let lsock = listen_socket cfg.addr in
  if cfg.verbose then
    Fmt.pr "commlat serve: listening on %a (%d domains, batch %d%s)@."
      pp_addr cfg.addr cfg.domains cfg.batch
      (if cfg.adaptive then ", adaptive" else "");
  (* accept with a timeout so the loop observes [stop] *)
  while not (Atomic.get stop) do
    match Unix.select [ lsock ] [] [] 0.1 with
    | [ _ ], _, _ -> (
        match Unix.accept lsock with
        | fd, _ ->
            let conn = { fd; out_mu = Mutex.create (); alive = true } in
            ignore
              (Thread.create (reader ~eng ~queues ~rr ~stop ~pending conn) ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | _ -> ()
  done;
  (* phase 1: retire the controller.  Any barrier it posted completes
     normally (workers are still running), after which it observes [stop]
     within one tick and exits. *)
  Option.iter Thread.join ctrl;
  (* phase 2: workers exit once their queues are empty *)
  Atomic.set stop_workers true;
  Array.iter wake_all queues;
  Array.iter Domain.join workers;
  (* a reader racing [Quit] may have enqueued after its worker exited:
     answer those with an error so the pending counter still balances *)
  Array.iter
    (fun qu ->
      Mutex.protect qu.mu (fun () ->
          while not (Queue.is_empty qu.q) do
            let j = Queue.pop qu.q in
            send_resp j.jconn (Wire.Err (Wire.req_id j.req, "server shutting down"));
            ignore (Atomic.fetch_and_add pending (-1))
          done))
    queues;
  (try Unix.close lsock with _ -> ());
  (match cfg.addr with
  | Unix_sock p -> ( try Unix.unlink p with _ -> ())
  | Tcp _ -> ());
  if cfg.verbose then Fmt.pr "commlat serve: drained, shutting down@.";
  eng
