(** The server's transactional core: a registry of protected ADTs, one
    request = one transaction, with commit decoupled from execution so
    workers can group-commit a whole epoch.

    Each exposed ADT is built through
    {!Commlat_runtime.Protect.protect_gatekeeper} (spec compilation on by
    default): kvmap, set and orset sit behind footprint-sharded {e
    forward} gatekeepers (their precise specs are online-checkable, and —
    per the scalable-commutativity rule — their commuting requests touch
    disjoint shards), union-find behind a {e general} gatekeeper (its
    conditions need state functions and rollback).

    Failure containment (the server-edge contract): {!try_req} turns {e
    any} per-request failure — unknown ADT or method, wrong arity,
    [Value.Type_error] from a malformed argument, out-of-range union-find
    element — into a rolled-back transaction plus an [Err] response frame.
    Exceptions never escape to the calling worker domain, so a bad request
    cannot kill a worker or wedge the server's pending-request
    accounting.  Only {!Detector.Conflict} is surfaced (as {!Conflicted})
    because the caller owns the retry/flush policy. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

type exposed = {
  ename : string;
  det : Detector.t;
  gk : Gatekeeper.t;
  fp : Footprint.t;  (** shard-routing keys, from the same spec *)
  lookup : string -> Invocation.meth option;
  exec_inv : Invocation.t -> Value.t;
  undo_inv : Invocation.t -> unit;
  batchable : bool;
      (** forward/striped gatekeeper: {!Gatekeeper.batch_check}'s
          no-state-reconstruction precondition holds, enabling the
          read-only fast path *)
}

type t = {
  exposed : (string * exposed) list;
  orset : Orset.t;  (** handle for the leak regression / commuting mix *)
  obs : Obs.t;
  c_requests : Obs.counter;
  c_commits : Obs.counter;
  c_aborts : Obs.counter;
  c_errors : Obs.counter;
  c_ro_fast : Obs.counter;  (** reads admitted by the batch_check path *)
}

(** A successfully executed request whose transaction is still open,
    awaiting the epoch's group commit. *)
type pending = { txn : Txn.t; pdet : Detector.t }

type outcome =
  | Done of pending option * Wire.resp
      (** answered; [Some p] must be passed to {!commit} at epoch end *)
  | Conflicted of string
      (** rolled back after a {!Detector.Conflict}: flush the epoch's open
          transactions (they may be the other side) and retry *)

let meth_finder meths =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (m : Invocation.meth) -> Hashtbl.replace tbl m.name m) meths;
  fun name -> Hashtbl.find_opt tbl name

let default_nshards = 16
let default_uf_elements = 4096

(** [create ()] builds the four exposed ADTs.  [uf_elements] union-find
    elements are pre-created so wire clients can [union]/[find] on element
    ids in [\[0, uf_elements)] without a [create] handshake. *)
let create ?obs:obs_enabled ?(nshards = default_nshards)
    ?(uf_elements = default_uf_elements) () : t =
  let sharded = Protect.Sharded (Protect.Forward_gk, nshards) in
  let kv = Kvmap.create () in
  let kv_spec = Kvmap.precise_spec () in
  let kv_det, kv_gk =
    Protect.protect_gatekeeper ?obs:obs_enabled ~hooks:(Kvmap.hooks kv)
      ~spec:kv_spec sharded
  in
  let set = Iset.create () in
  let set_spec = Iset.precise_spec () in
  let set_det, set_gk =
    Protect.protect_gatekeeper ?obs:obs_enabled ~hooks:(Iset.hooks set)
      ~spec:set_spec sharded
  in
  let ors = Orset.create () in
  let ors_spec = Orset.spec () in
  let ors_det, ors_gk =
    Protect.protect_gatekeeper ?obs:obs_enabled ~hooks:(Orset.hooks ors)
      ~spec:ors_spec sharded
  in
  let uf = Union_find.create ~capacity:uf_elements () in
  ignore (Union_find.create_elements uf uf_elements);
  let uf_spec = Union_find.spec () in
  let uf_det, uf_gk =
    Protect.protect_gatekeeper ?obs:obs_enabled ~hooks:(Union_find.hooks uf)
      ~spec:uf_spec Protect.General_gk
  in
  let obs = Obs.create ?enabled:obs_enabled "serve" in
  {
    exposed =
      [
        ( "kvmap",
          {
            ename = "kvmap";
            det = kv_det;
            gk = kv_gk;
            fp = Footprint.analyze kv_spec;
            lookup = meth_finder Kvmap.methods;
            exec_inv =
              (fun inv ->
                Kvmap.exec kv inv.Invocation.meth.name inv.Invocation.args);
            undo_inv = Kvmap.undo kv;
            batchable = true;
          } );
        ( "set",
          {
            ename = "set";
            det = set_det;
            gk = set_gk;
            fp = Footprint.analyze set_spec;
            lookup = meth_finder Iset.methods;
            exec_inv =
              (fun inv ->
                Iset.exec set inv.Invocation.meth.name inv.Invocation.args);
            undo_inv = Iset.undo set;
            batchable = true;
          } );
        ( "orset",
          {
            ename = "orset";
            det = ors_det;
            gk = ors_gk;
            fp = Footprint.analyze ors_spec;
            lookup = meth_finder Orset.methods;
            exec_inv = Orset.exec_logged ors;
            undo_inv = Orset.undo ors;
            batchable = true;
          } );
        ( "union-find",
          {
            ename = "union-find";
            det = uf_det;
            gk = uf_gk;
            fp = Footprint.analyze uf_spec;
            lookup = meth_finder Union_find.methods;
            exec_inv = Union_find.exec_logged uf;
            undo_inv = Union_find.undo uf;
            batchable = false;  (* general gk: conditions reconstruct state *)
          } );
      ];
    orset = ors;
    obs;
    c_requests = Obs.counter obs "requests";
    c_commits = Obs.counter obs "commits";
    c_aborts = Obs.counter obs "conflict_aborts";
    c_errors = Obs.counter obs "request_errors";
    c_ro_fast = Obs.counter obs "ro_fast_path";
  }

let exposed_names t = List.map fst t.exposed
let orset_handle t = t.orset

(* Roll a doomed request's transaction back and release its detector state
   as one atomic step (same protocol as the domain executor). *)
let abort_atomically (p : pending) =
  Guard.protect_all
    (Txn.guards p.txn @ p.pdet.Detector.guards)
    (fun () ->
      Txn.rollback p.txn;
      p.pdet.Detector.on_abort (Txn.id p.txn))

(** Commit one epoch-open transaction: detector first (releases locks and
    active-table entries — for the orset this is where the [forget] hook
    drops its presence-log entries), then the transaction's own log. *)
let commit (t : t) (p : pending) =
  p.pdet.Detector.on_commit (Txn.id p.txn);
  Txn.commit p.txn;
  Obs.incr t.c_commits

let err t id fmt =
  Fmt.kstr
    (fun m ->
      Obs.incr t.c_errors;
      Done (None, Wire.Err (id, m)))
    fmt

(* Read-only admission without a transaction: execute the (abstractly and
   concretely effect-free) method under the gatekeeper's guards, then run
   the single-pass {!Gatekeeper.batch_check} scan against every active
   invocation.  If the scan passes, the read linearizes right here and is
   already durable — no entry insertion, no lock table traffic, no commit
   work at the epoch boundary.  Sound because a committed invocation need
   not stay visible to later admission checks, and the whole step happens
   under the same guards the invoke path takes. *)
let try_ro_fast (t : t) (ex : exposed) ~id (meth : Invocation.meth) args =
  Guard.protect_all ex.det.Detector.guards (fun () ->
      let txn = Txn.fresh () in
      let inv = Invocation.make ~txn:(Txn.id txn) meth args in
      let r = ex.exec_inv inv in
      inv.Invocation.ret <- r;
      match Gatekeeper.batch_check ex.gk inv with
      | () ->
          Obs.incr t.c_ro_fast;
          Some (Done (None, Wire.Reply (id, r)))
      | exception Detector.Conflict _ ->
          (* nothing to undo (the method is effect-free); fall back to the
             transactional path, which will queue behind the conflicter *)
          None)

let try_invoke (t : t) ~id adt meth args : outcome =
  match List.assoc_opt adt t.exposed with
  | None -> err t id "unknown adt %S (have: %s)" adt
               (String.concat ", " (exposed_names t))
  | Some ex -> (
      match ex.lookup meth with
      | None -> err t id "%s: unknown method %S" adt meth
      | Some m when m.Invocation.arity <> Array.length args ->
          err t id "%s.%s: arity %d, got %d arguments" adt meth
            m.Invocation.arity (Array.length args)
      | Some m -> (
          let ro = (not m.Invocation.mutates) && not m.Invocation.concrete in
          match
            if ro && ex.batchable then try_ro_fast t ex ~id m args else None
          with
          | Some outcome -> outcome
          | None -> (
              let txn = Txn.fresh () in
              let p = { txn; pdet = ex.det } in
              match
                if ro then
                  Boost.invoke_ro ex.det txn m args ex.exec_inv
                else Boost.invoke ex.det txn ~undo:ex.undo_inv m args ex.exec_inv
              with
              | r -> Done (Some p, Wire.Reply (id, r))
              | exception Detector.Conflict { reason; _ } ->
                  abort_atomically p;
                  Obs.incr t.c_aborts;
                  Conflicted reason
              | exception e ->
                  (* the server-edge contract: malformed arguments (a
                     [Value.Type_error], an out-of-bounds index, an
                     [Unsupported] state function) doom this transaction
                     only — roll it back and answer with an error frame *)
                  abort_atomically p;
                  err t id "%s.%s: %s" adt meth (Printexc.to_string e))))

(** One merged snapshot: the engine's own counters plus every exposed
    detector's registry. *)
let snapshot_json_string (t : t) : string =
  let snaps =
    Obs.snapshot t.obs
    :: List.map (fun (_, ex) -> ex.det.Detector.snapshot ()) t.exposed
  in
  Jsonx.to_string (Obs.snapshot_to_json (Obs.merge "serve" snaps))

(** Handle one request; never raises except {!Detector.Conflict} mapped to
    {!Conflicted}.  [Quit] is answered like [Ping] — connection/shutdown
    policy belongs to the caller. *)
let try_req (t : t) (req : Wire.req) : outcome =
  Obs.incr t.c_requests;
  match req with
  | Wire.Invoke { id; adt; meth; args } -> try_invoke t ~id adt meth args
  | Wire.Stats id ->
      Done (None, Wire.Reply (id, Value.Str (snapshot_json_string t)))
  | Wire.Ping id | Wire.Quit id -> Done (None, Wire.Reply (id, Value.Unit))

(** Synchronous request execution with immediate commit and bounded
    conflict retry — the single-threaded in-process conformance path (the
    wire tests speak to this, no sockets involved). *)
let handle ?(max_retries = 16) (t : t) (req : Wire.req) : Wire.resp =
  let rec go attempts =
    match try_req t req with
    | Done (p, resp) ->
        Option.iter (commit t) p;
        resp
    | Conflicted reason ->
        if attempts >= max_retries then
          Wire.Err (Wire.req_id req, "conflict retries exhausted: " ^ reason)
        else go (attempts + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Shard routing                                                       *)
(* ------------------------------------------------------------------ *)

(** Worker-routing hash of a request, derived from the same equality
    footprint that drives detector sharding: requests whose footprint keys
    differ commute (that is the footprint guarantee), so hashing the key
    sends conflicting requests to the {e same} worker — where they
    serialize on the queue instead of aborting each other — and spreads
    commuting ones across cores.  Keyless methods (and non-invoke
    requests) return [None]; the caller round-robins those. *)
let route_hash (t : t) (req : Wire.req) : int option =
  match req with
  | Wire.Stats _ | Wire.Quit _ | Wire.Ping _ -> None
  | Wire.Invoke { adt; meth; args; _ } -> (
      match List.assoc_opt adt t.exposed with
      | None -> None
      | Some ex -> (
          match ex.lookup meth with
          | Some m when m.Invocation.arity = Array.length args -> (
              (* throwaway record: routing must not burn invocation uids *)
              let dummy =
                {
                  Invocation.uid = 0;
                  meth = m;
                  args;
                  ret = Value.Unit;
                  txn = 0;
                  seq = 0;
                }
              in
              match Footprint.key_value ex.fp dummy with
              | Some v -> Some (Value.hash v)
              | None ->
                  (* keyless method but keyed-looking argument (union-find's
                     state-dependent spec defeats the footprint analysis):
                     route by first argument for locality, still sound —
                     routing never decides admission *)
                  if Array.length args > 0 then Some (Value.hash args.(0))
                  else None)
          | _ -> None))
