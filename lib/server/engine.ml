(** The server's transactional core: a registry of protected ADTs, one
    request = one transaction, with commit decoupled from execution so
    workers can group-commit a whole epoch.

    Each exposed ADT is built through
    {!Commlat_runtime.Protect.protect_gatekeeper} (spec compilation on by
    default): kvmap, set and orset sit behind footprint-sharded {e
    forward} gatekeepers (their precise specs are online-checkable, and —
    per the scalable-commutativity rule — their commuting requests touch
    disjoint shards), union-find behind a {e general} gatekeeper (its
    conditions need state functions and rollback).

    Failure containment (the server-edge contract): {!try_req} turns {e
    any} per-request failure — unknown ADT or method, wrong arity,
    [Value.Type_error] from a malformed argument, out-of-range union-find
    element — into a rolled-back transaction plus an [Err] response frame.
    Exceptions never escape to the calling worker domain, so a bad request
    cannot kill a worker or wedge the server's pending-request
    accounting.  Only {!Detector.Conflict} is surfaced (as {!Conflicted})
    because the caller owns the retry/flush policy. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

(** One point of an exposed ADT's lattice chain.  Detectors are built
    lazily on first entry and cached forever: a level the controller
    revisits keeps its gatekeeper (whose active table is empty — it was
    swapped out at a barrier with every transaction committed) and its obs
    counters, so [Stats] totals stay monotone across swaps. *)
type level = {
  l_name : string;
  l_spec : Spec.t;
  mutable l_built : (Detector.t * Gatekeeper.t) option;
}

type exposed = {
  ename : string;
  mutable det : Detector.t;  (** current level's detector *)
  mutable gk : Gatekeeper.t;  (** current level's gatekeeper *)
  fp : Footprint.t;
      (** shard-routing keys, always from the {e precise} spec: routing is
          advisory (it never decides admission), and the precise footprint
          is the finest, so it stays valid at every coarser level *)
  lookup : string -> Invocation.meth option;
  exec_inv : Invocation.t -> Value.t;
  undo_inv : Invocation.t -> unit;
  batchable : bool;
      (** forward/striped gatekeeper: {!Gatekeeper.batch_check}'s
          no-state-reconstruction precondition holds, enabling the
          read-only fast path *)
  levels : level array;  (** weakest-first: index 0 is the precise spec *)
  mutable cur : int;  (** index into [levels] *)
  scheme : Protect.scheme;  (** every level is built under this scheme *)
  hooks : Gatekeeper.hooks;
  obs_enabled : bool option;  (** [?obs] to pass when building new levels *)
}

type t = {
  exposed : (string * exposed) list;
  orset : Orset.t;  (** handle for the leak regression / commuting mix *)
  obs : Obs.t;
  c_requests : Obs.counter;
  c_commits : Obs.counter;
  c_aborts : Obs.counter;
  c_errors : Obs.counter;
  c_ro_fast : Obs.counter;  (** reads admitted by the batch_check path *)
  c_strengthens : Obs.counter;  (** lattice moves away from precise *)
  c_weakens : Obs.counter;  (** lattice moves back toward precise *)
}

(** A successfully executed request whose transaction is still open,
    awaiting the epoch's group commit. *)
type pending = { txn : Txn.t; pdet : Detector.t }

type outcome =
  | Done of pending option * Wire.resp
      (** answered; [Some p] must be passed to {!commit} at epoch end *)
  | Conflicted of string
      (** rolled back after a {!Detector.Conflict}: flush the epoch's open
          transactions (they may be the other side) and retry *)

let meth_finder meths =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (m : Invocation.meth) -> Hashtbl.replace tbl m.name m) meths;
  fun name -> Hashtbl.find_opt tbl name

let default_nshards = 16
let default_uf_elements = 4096

(** Partitions per "part" level: hash-coarsened key domains (paper §4.2's
    partition locking, kept gatekeeper-shaped so the striped/batchable
    machinery works at every lattice point). *)
let default_nparts = 8

let hash_part nparts v = Value.Int (Value.hash v mod nparts)

(** Strengthening chain for the kvmap: precise → SIMPLE core (key
    disequalities) → partition-coarsened keys. *)
let kvmap_levels () =
  let simple = Kvmap.simple_spec () in
  [
    ("precise", Kvmap.precise_spec ());
    ("simple", simple);
    ( "part",
      Strengthen.partitioned ~adt:"kvmap_part" ~part_name:"part"
        ~part:(hash_part default_nparts) simple );
  ]

let set_levels () =
  [
    ("precise", Iset.precise_spec ());
    ("simple", Iset.simple_spec ());
    ("part", Iset.partitioned_spec ~nparts:default_nparts ());
  ]

(** The orset's hand spec is already SIMPLE (adds self-commute, only
    identical tagged pairs conflict), so its chain has a single
    strengthening: partition-coarsened element/tag disequalities. *)
let orset_levels () =
  [
    ("precise", Orset.spec ());
    ( "part",
      Strengthen.partitioned ~adt:"orset_part" ~part_name:"part"
        ~part:(hash_part default_nparts) (Orset.spec ()) );
  ]

(** The server's flow-graph network: a [flow_nodes]-node ladder (ring +
    chords), capacious enough that wire workloads exercise pushes and
    relabels on arbitrary node pairs without running out of edges. *)
let flow_nodes = 64

let flow_edges () =
  let chain = List.init (flow_nodes - 1) (fun i -> (i, i + 1, 1000)) in
  let chords =
    List.init (flow_nodes - 8) (fun i -> (i, i + 8, 500))
  in
  chain @ chords

let flow_levels () =
  [
    ("precise", Flow_graph.spec_rw ());
    ("simple", Flow_graph.spec_exclusive ());
    ( "part",
      Flow_graph.spec_partitioned ~nparts:default_nparts ~n:flow_nodes () );
  ]

let mk_exposed ?obs ~scheme ~ename ~meths ~exec_inv ~undo_inv ~hooks ~batchable
    levels : exposed =
  let levels =
    Array.of_list
      (List.map (fun (n, s) -> { l_name = n; l_spec = s; l_built = None }) levels)
  in
  let det, gk =
    Protect.protect_gatekeeper ?obs ~hooks ~spec:levels.(0).l_spec scheme
  in
  levels.(0).l_built <- Some (det, gk);
  {
    ename;
    det;
    gk;
    fp = Footprint.analyze levels.(0).l_spec;
    lookup = meth_finder meths;
    exec_inv;
    undo_inv;
    batchable;
    levels;
    cur = 0;
    scheme;
    hooks;
    obs_enabled = obs;
  }

(* ------------------------------------------------------------------ *)
(* Lattice navigation                                                   *)
(* ------------------------------------------------------------------ *)

let find_exposed (t : t) adt : exposed =
  match List.assoc_opt adt t.exposed with
  | Some ex -> ex
  | None -> invalid_arg (Fmt.str "Engine: unknown adt %S" adt)

(** Every exposed ADT with its chain's level names, weakest-first. *)
let chains (t : t) : (string * string list) list =
  List.map
    (fun (adt, (ex : exposed)) ->
      (adt, Array.to_list (Array.map (fun lv -> lv.l_name) ex.levels)))
    t.exposed

let current_level (t : t) adt = (find_exposed t adt).levels.((find_exposed t adt).cur).l_name
let current_level_index (t : t) adt = (find_exposed t adt).cur

(** The {e current} detector's obs snapshot — what the adaptive controller
    differences per window (unlike [Stats], which merges every built
    level so totals stay monotone across swaps). *)
let level_snapshot (t : t) adt : Obs.snapshot =
  (find_exposed t adt).det.Detector.snapshot ()

(** Hot-swap one ADT's detector to the chain level at [idx], replaying any
    live gatekeeper state into the successor.  The caller must guarantee
    no invocation races with the swap — the server calls this inside an
    all-workers epoch barrier (where every open transaction has just
    committed, so the replayed list is empty); single-threaded embedders
    (tests, the conformance path) may call it between requests.  Levels
    are built on first entry and cached, so obs counters and [Stats]
    totals survive revisits. *)
let set_level (t : t) adt idx =
  let ex = find_exposed t adt in
  if idx < 0 || idx >= Array.length ex.levels then
    invalid_arg
      (Fmt.str "Engine.set_level: %s has %d levels, got %d" adt
         (Array.length ex.levels) idx);
  if idx <> ex.cur then begin
    let live = Gatekeeper.active_invocations ex.gk in
    let det, gk =
      match ex.levels.(idx).l_built with
      | Some dg -> dg
      | None ->
          let dg =
            Protect.protect_gatekeeper ?obs:ex.obs_enabled ~hooks:ex.hooks
              ~spec:ex.levels.(idx).l_spec ex.scheme
          in
          ex.levels.(idx).l_built <- Some dg;
          dg
    in
    Gatekeeper.adopt gk live;
    let dir = if idx > ex.cur then t.c_strengthens else t.c_weakens in
    ex.det <- det;
    ex.gk <- gk;
    ex.cur <- idx;
    Obs.incr dir;
    Obs.label t.obs ~cat:"adaptive_level"
      (adt ^ ":" ^ ex.levels.(idx).l_name)
  end

(** [set_level] by level name; false if the chain has no such level. *)
let set_level_name (t : t) adt name : bool =
  let ex = find_exposed t adt in
  let found = ref false in
  Array.iteri
    (fun i lv ->
      if lv.l_name = name then begin
        found := true;
        set_level t adt i
      end)
    ex.levels;
  !found

(** [create ()] builds the five exposed ADTs, each with its lattice chain
    (weakest-first).  [uf_elements] union-find elements are pre-created so
    wire clients can [union]/[find] on element ids in [\[0, uf_elements)]
    without a [create] handshake.  [?level] pins every chain that has a
    level of that name ("simple", "part") to it at startup — chains
    without it (union-find has only "precise") are unaffected. *)
let create ?obs:obs_enabled ?(nshards = default_nshards)
    ?(uf_elements = default_uf_elements) ?level () : t =
  let sharded = Protect.Sharded (Protect.Forward_gk, nshards) in
  let kv = Kvmap.create () in
  let set = Iset.create () in
  let ors = Orset.create () in
  let uf = Union_find.create ~capacity:uf_elements () in
  ignore (Union_find.create_elements uf uf_elements);
  let fg = Flow_graph.of_edges ~n:flow_nodes (flow_edges ()) in
  let obs = Obs.create ?enabled:obs_enabled "serve" in
  let t =
    {
      exposed =
        [
          ( "kvmap",
            mk_exposed ?obs:obs_enabled ~scheme:sharded ~ename:"kvmap"
              ~meths:Kvmap.methods
              ~exec_inv:(fun inv ->
                Kvmap.exec kv inv.Invocation.meth.name inv.Invocation.args)
              ~undo_inv:(Kvmap.undo kv) ~hooks:(Kvmap.hooks kv) ~batchable:true
              (kvmap_levels ()) );
          ( "set",
            mk_exposed ?obs:obs_enabled ~scheme:sharded ~ename:"set"
              ~meths:Iset.methods
              ~exec_inv:(fun inv ->
                Iset.exec set inv.Invocation.meth.name inv.Invocation.args)
              ~undo_inv:(Iset.undo set) ~hooks:(Iset.hooks set) ~batchable:true
              (set_levels ()) );
          ( "orset",
            mk_exposed ?obs:obs_enabled ~scheme:sharded ~ename:"orset"
              ~meths:Orset.methods ~exec_inv:(Orset.exec_logged ors)
              ~undo_inv:(Orset.undo ors) ~hooks:(Orset.hooks ors)
              ~batchable:true (orset_levels ()) );
          ( "union-find",
            mk_exposed ?obs:obs_enabled ~scheme:Protect.General_gk
              ~ename:"union-find" ~meths:Union_find.methods
              ~exec_inv:(Union_find.exec_logged uf)
              ~undo_inv:(Union_find.undo uf) ~hooks:(Union_find.hooks uf)
              ~batchable:false (* general gk: conditions reconstruct state *)
              [ ("precise", Union_find.spec ()) ] );
          ( "flow-graph",
            mk_exposed ?obs:obs_enabled ~scheme:sharded ~ename:"flow-graph"
              ~meths:Flow_graph.methods
              ~exec_inv:(fun inv ->
                Flow_graph.exec fg inv.Invocation.meth.name inv.Invocation.args)
              ~undo_inv:(Flow_graph.undo fg)
              ~hooks:
                (Gatekeeper.hooks
                   ~undo:(Flow_graph.undo fg)
                   ~redo:(fun inv ->
                     ignore
                       (Flow_graph.exec fg inv.Invocation.meth.name
                          inv.Invocation.args))
                   (fun name _ ->
                     raise (Formula.Unsupported ("flow-graph sfun " ^ name))))
              ~batchable:true (flow_levels ()) );
        ];
      orset = ors;
      obs;
      c_requests = Obs.counter obs "requests";
      c_commits = Obs.counter obs "commits";
      c_aborts = Obs.counter obs "conflict_aborts";
      c_errors = Obs.counter obs "request_errors";
      c_ro_fast = Obs.counter obs "ro_fast_path";
      c_strengthens = Obs.counter obs "adaptive_strengthens";
      c_weakens = Obs.counter obs "adaptive_weakens";
    }
  in
  (match level with
  | None -> ()
  | Some name ->
      List.iter
        (fun (adt, (ex : exposed)) ->
          Array.iteri
            (fun i lv -> if lv.l_name = name then set_level t adt i)
            ex.levels)
        t.exposed);
  t

let exposed_names t = List.map fst t.exposed
let orset_handle t = t.orset

(* Roll a doomed request's transaction back and release its detector state
   as one atomic step (same protocol as the domain executor). *)
let abort_atomically (p : pending) =
  Guard.protect_all
    (Txn.guards p.txn @ p.pdet.Detector.guards)
    (fun () ->
      Txn.rollback p.txn;
      p.pdet.Detector.on_abort (Txn.id p.txn))

(** Commit one epoch-open transaction: detector first (releases locks and
    active-table entries — for the orset this is where the [forget] hook
    drops its presence-log entries), then the transaction's own log. *)
let commit (t : t) (p : pending) =
  p.pdet.Detector.on_commit (Txn.id p.txn);
  Txn.commit p.txn;
  Obs.incr t.c_commits

let err t id fmt =
  Fmt.kstr
    (fun m ->
      Obs.incr t.c_errors;
      Done (None, Wire.Err (id, m)))
    fmt

(* Read-only admission without a transaction: execute the (abstractly and
   concretely effect-free) method under the gatekeeper's guards, then run
   the single-pass {!Gatekeeper.batch_check} scan against every active
   invocation.  If the scan passes, the read linearizes right here and is
   already durable — no entry insertion, no lock table traffic, no commit
   work at the epoch boundary.  Sound because a committed invocation need
   not stay visible to later admission checks, and the whole step happens
   under the same guards the invoke path takes. *)
let try_ro_fast (t : t) (ex : exposed) ~id (meth : Invocation.meth) args =
  Guard.protect_all ex.det.Detector.guards (fun () ->
      let txn = Txn.fresh () in
      let inv = Invocation.make ~txn:(Txn.id txn) meth args in
      let r = ex.exec_inv inv in
      inv.Invocation.ret <- r;
      match Gatekeeper.batch_check ex.gk inv with
      | () ->
          Obs.incr t.c_ro_fast;
          Some (Done (None, Wire.Reply (id, r)))
      | exception Detector.Conflict _ ->
          (* nothing to undo (the method is effect-free); fall back to the
             transactional path, which will queue behind the conflicter *)
          None)

let try_invoke (t : t) ~id adt meth args : outcome =
  match List.assoc_opt adt t.exposed with
  | None -> err t id "unknown adt %S (have: %s)" adt
               (String.concat ", " (exposed_names t))
  | Some ex -> (
      match ex.lookup meth with
      | None -> err t id "%s: unknown method %S" adt meth
      | Some m when m.Invocation.arity <> Array.length args ->
          err t id "%s.%s: arity %d, got %d arguments" adt meth
            m.Invocation.arity (Array.length args)
      | Some m -> (
          let ro = (not m.Invocation.mutates) && not m.Invocation.concrete in
          match
            if ro && ex.batchable then
              (* same containment contract as the transactional arm below:
                 a malformed argument raised by the (effect-free) method
                 body answers an error frame instead of escaping [handle] *)
              try try_ro_fast t ex ~id m args
              with e -> Some (err t id "%s.%s: %s" adt meth (Printexc.to_string e))
            else None
          with
          | Some outcome -> outcome
          | None -> (
              let txn = Txn.fresh () in
              let p = { txn; pdet = ex.det } in
              match
                if ro then
                  Boost.invoke_ro ex.det txn m args ex.exec_inv
                else Boost.invoke ex.det txn ~undo:ex.undo_inv m args ex.exec_inv
              with
              | r -> Done (Some p, Wire.Reply (id, r))
              | exception Detector.Conflict { reason; _ } ->
                  abort_atomically p;
                  Obs.incr t.c_aborts;
                  Conflicted reason
              | exception e ->
                  (* the server-edge contract: malformed arguments (a
                     [Value.Type_error], an out-of-bounds index, an
                     [Unsupported] state function) doom this transaction
                     only — roll it back and answer with an error frame *)
                  abort_atomically p;
                  err t id "%s.%s: %s" adt meth (Printexc.to_string e))))

(** One merged snapshot: the engine's own counters plus every {e built}
    lattice level's detector registry for every exposed ADT — levels keep
    their counters when swapped out, so [Stats] totals stay monotone
    across adaptive hot-swaps. *)
let snapshot_json_string (t : t) : string =
  let snaps =
    Obs.snapshot t.obs
    :: List.concat_map
         (fun (_, (ex : exposed)) ->
           Array.to_list ex.levels
           |> List.filter_map (fun lv ->
                  Option.map (fun ((d : Detector.t), _) -> d.snapshot ()) lv.l_built))
         t.exposed
  in
  Jsonx.to_string (Obs.snapshot_to_json (Obs.merge "serve" snaps))

(** Handle one request; never raises except {!Detector.Conflict} mapped to
    {!Conflicted}.  [Quit] is answered like [Ping] — connection/shutdown
    policy belongs to the caller. *)
let try_req (t : t) (req : Wire.req) : outcome =
  Obs.incr t.c_requests;
  match req with
  | Wire.Invoke { id; adt; meth; args } -> try_invoke t ~id adt meth args
  | Wire.Stats id ->
      Done (None, Wire.Reply (id, Value.Str (snapshot_json_string t)))
  | Wire.Ping id | Wire.Quit id -> Done (None, Wire.Reply (id, Value.Unit))

(** Synchronous request execution with immediate commit and bounded
    conflict retry — the single-threaded in-process conformance path (the
    wire tests speak to this, no sockets involved). *)
let handle ?(max_retries = 16) (t : t) (req : Wire.req) : Wire.resp =
  let rec go attempts =
    match try_req t req with
    | Done (p, resp) ->
        Option.iter (commit t) p;
        resp
    | Conflicted reason ->
        if attempts >= max_retries then
          Wire.Err (Wire.req_id req, "conflict retries exhausted: " ^ reason)
        else go (attempts + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Shard routing                                                       *)
(* ------------------------------------------------------------------ *)

(** Worker-routing hash of a request, derived from the same equality
    footprint that drives detector sharding: requests whose footprint keys
    differ commute (that is the footprint guarantee), so hashing the key
    sends conflicting requests to the {e same} worker — where they
    serialize on the queue instead of aborting each other — and spreads
    commuting ones across cores.  Keyless methods (and non-invoke
    requests) return [None]; the caller round-robins those. *)
let route_hash (t : t) (req : Wire.req) : int option =
  match req with
  | Wire.Stats _ | Wire.Quit _ | Wire.Ping _ -> None
  | Wire.Invoke { adt; meth; args; _ } -> (
      match List.assoc_opt adt t.exposed with
      | None -> None
      | Some ex -> (
          match ex.lookup meth with
          | Some m when m.Invocation.arity = Array.length args -> (
              (* throwaway record: routing must not burn invocation uids *)
              let dummy =
                {
                  Invocation.uid = 0;
                  meth = m;
                  args;
                  ret = Value.Unit;
                  txn = 0;
                  seq = 0;
                }
              in
              match Footprint.key_value ex.fp dummy with
              | Some v -> Some (Value.hash v)
              | None ->
                  (* keyless method but keyed-looking argument (union-find's
                     state-dependent spec defeats the footprint analysis):
                     route by first argument for locality, still sound —
                     routing never decides admission *)
                  if Array.length args > 0 then Some (Value.hash args.(0))
                  else None)
          | _ -> None))
