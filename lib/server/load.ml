(** Open-loop load generator for `commlat serve` (`commlat load`).

    Coordinated-omission-safe by construction: the i-th request of a run
    is {e scheduled} at [t0 + i/rate] independently of how fast the server
    answers, and its latency is measured from that scheduled instant to
    response receipt.  A stalled server therefore inflates the latency of
    every request scheduled during the stall — exactly the queueing delay
    a closed-loop generator silently omits.  The request id carries the
    op index, so the receiver recomputes the scheduled time from the id
    alone and no send-side bookkeeping is shared across threads.

    Key skew is Zipfian over [keys] keys (exponent [theta], YCSB-style)
    via an inverse-CDF table; each connection runs one sender and one
    receiver systhread over its own socket, all recording into one
    {!Commlat_obs.Histo} (wait-free, shared).

    Mixes:
    - [Read_heavy]: kvmap, 90% [get] / 10% [put] — the commuting-heavy
      baseline (reads admit each other; the server's batch_check fast
      path eats most of these).
    - [Write_heavy]: kvmap, 50% [put] / 40% [get] / 10% [remove].
    - [Commuting]: orset [add] with a globally fresh id per op — under
      the or-set spec {e every} pair of these commutes (the
      scalable-commutativity-rule mix: conflict-free by interface).
    - [Non_commuting]: kvmap [put] of random values on Zipf-hot keys
      plus 10% [size] — same-key puts with different values and
      domain-size reads are spec-refused, so contention is real, not an
      artifact of the implementation.
    - [Put]: kvmap [put] whose value is a pure function of the key —
      commutes under the precise spec in steady state but not under the
      coarsened ones.  The phase-shifting adaptive experiment's driver
      (see {!default_phases}). *)

open Commlat_core
module Histo = Commlat_obs.Histo
module Jsonx = Commlat_obs.Jsonx

type mix = Read_heavy | Write_heavy | Commuting | Non_commuting | Put

let mix_name = function
  | Read_heavy -> "read-heavy"
  | Write_heavy -> "write-heavy"
  | Commuting -> "commuting"
  | Non_commuting -> "non-commuting"
  | Put -> "put"

let mix_of_string = function
  | "read-heavy" -> Ok Read_heavy
  | "write-heavy" -> Ok Write_heavy
  | "commuting" -> Ok Commuting
  | "non-commuting" -> Ok Non_commuting
  | "put" -> Ok Put
  | s ->
      Error
        (Fmt.str
           "unknown mix %S (expected read-heavy, write-heavy, commuting, \
            non-commuting, put)"
           s)

let all_mixes = [ Read_heavy; Write_heavy; Commuting; Non_commuting ]

type config = {
  addr : Server.addr;
  conns : int;
  rate : float;  (** aggregate target request rate, req/s *)
  duration : float;  (** seconds of scheduled load *)
  keys : int;
  theta : float;  (** Zipf exponent; 0 = uniform *)
  seed : int;
  mix : mix;
  burst : int;
      (** arrival burstiness: requests are scheduled in groups of [burst]
          at the same instant (aggregate rate unchanged).  [1] = evenly
          spaced.  Bursts are what fill server epochs: a worker that
          drains one request at a time never has two transactions open,
          so commutativity checks (and refusals) only happen when
          arrivals cluster. *)
}

let default_config =
  {
    addr = Server.Unix_sock "/tmp/commlat.sock";
    conns = 4;
    rate = 2000.0;
    duration = 2.0;
    keys = 100_000;
    theta = 0.99;
    seed = 42;
    mix = Read_heavy;
    burst = 1;
  }

type result = {
  sent : int;
  completed : int;
  errors : int;  (** [Err] responses (incl. conflict-retry exhaustion) *)
  elapsed : float;
  hist : Histo.t;  (** latencies in nanoseconds *)
  server_obs : Jsonx.t option;  (** final server snapshot ([Stats]) *)
}

(* ------------------------------------------------------------------ *)
(* Zipf sampling                                                       *)
(* ------------------------------------------------------------------ *)

(* Inverse-CDF table: O(keys) setup, O(log keys) per sample. *)
let zipf_cdf ~keys ~theta =
  let w = Array.make keys 0.0 in
  let acc = ref 0.0 in
  for i = 0 to keys - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) theta);
    w.(i) <- !acc
  done;
  let total = !acc in
  Array.map (fun x -> x /. total) w

let zipf_sample cdf st =
  let u = Random.State.float st 1.0 in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* ------------------------------------------------------------------ *)
(* Request synthesis                                                   *)
(* ------------------------------------------------------------------ *)

(* [op] is the global op index — used both as the wire id (latency
   recovery) and as the or-set's globally fresh tag. *)
let request_of cfg cdf st ~op : Wire.req =
  let key () = Value.Int (zipf_sample cdf st) in
  let u = Random.State.float st 1.0 in
  match cfg.mix with
  | Read_heavy ->
      if u < 0.9 then Wire.Invoke { id = op; adt = "kvmap"; meth = "get"; args = [| key () |] }
      else
        Wire.Invoke
          { id = op; adt = "kvmap"; meth = "put";
            args = [| key (); Value.Int (Random.State.bits st) |] }
  | Write_heavy ->
      if u < 0.5 then
        Wire.Invoke
          { id = op; adt = "kvmap"; meth = "put";
            args = [| key (); Value.Int (Random.State.bits st) |] }
      else if u < 0.9 then
        Wire.Invoke { id = op; adt = "kvmap"; meth = "get"; args = [| key () |] }
      else
        Wire.Invoke { id = op; adt = "kvmap"; meth = "remove"; args = [| key () |] }
  | Commuting ->
      (* fresh tag per op: the add;add and add;remove conditions are
         discharged for every pair — conflict-free by the spec *)
      Wire.Invoke
        { id = op; adt = "orset"; meth = "add";
          args = [| key (); Value.Int op |] }
  | Non_commuting ->
      if u < 0.9 then
        Wire.Invoke
          { id = op; adt = "kvmap"; meth = "put";
            args = [| key (); Value.Int (Random.State.bits st) |] }
      else Wire.Invoke { id = op; adt = "kvmap"; meth = "size"; args = [||] }
  | Put ->
      (* the value is a pure function of the key, so in steady state every
         same-key pair of these puts satisfies the precise kvmap put;put
         condition (equal values, equal returned old bindings) but violates
         the SIMPLE/partitioned coarsenings (same key).  Zipf-hot keys under
         this mix are exactly the workload where weakening toward the
         precise spec pays. *)
      let k = zipf_sample cdf st in
      Wire.Invoke
        { id = op; adt = "kvmap"; meth = "put";
          args = [| Value.Int k; Value.Int ((2 * k) + 1) |] }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let connect (addr : Server.addr) =
  let fd =
    match addr with
    | Server.Unix_sock path ->
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_UNIX path);
        s
    | Server.Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_INET (ip, port));
        s
  in
  (* a wedged server must fail the run, not hang it *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  fd

(** One request/response on a fresh connection (control plane). *)
let rpc addr (req : Wire.req) : Wire.resp =
  let fd = connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Wire.write_frame fd (Wire.encode_req req);
      match Wire.read_frame fd with
      | Some payload -> Wire.decode_resp payload
      | None -> Wire.Err (Wire.req_id req, "connection closed"))

let fetch_stats addr : Jsonx.t option =
  match rpc addr (Wire.Stats 0) with
  | Wire.Reply (_, Value.Str s) -> (
      match Jsonx.parse s with Ok j -> Some j | Error _ -> None)
  | _ -> None
  | exception _ -> None

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let now = Unix.gettimeofday

(** Run one load phase against a live server.  Blocks for roughly
    [cfg.duration] (longer if the server lags — that lag is the measured
    latency). *)
let run (cfg : config) : result =
  if cfg.conns < 1 then invalid_arg "Load.run: conns must be >= 1";
  if cfg.rate <= 0.0 then invalid_arg "Load.run: rate must be positive";
  let n_ops = int_of_float (cfg.rate *. cfg.duration) in
  let n_ops = max cfg.conns n_ops in
  let cdf = zipf_cdf ~keys:(max 1 cfg.keys) ~theta:cfg.theta in
  let hist = Histo.create () in
  let sent = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let errors = Atomic.make 0 in
  if cfg.burst < 1 then invalid_arg "Load.run: burst must be >= 1";
  let t0 = now () +. 0.05 (* let every sender arm before the first slot *) in
  (* burst > 1 quantizes the schedule: ops [k*burst, (k+1)*burst) share
     slot k.  The receiver recovers the same instant from the op id, so
     latency still measures from the scheduled arrival. *)
  let sched_of op =
    t0
    +. float_of_int (op / cfg.burst) *. (float_of_int cfg.burst /. cfg.rate)
  in
  let conn_threads =
    List.init cfg.conns (fun c ->
        let fd = connect cfg.addr in
        let my_ops =
          let rec go i acc = if i >= n_ops then List.rev acc else go (i + cfg.conns) (i :: acc) in
          go c []
        in
        let n_mine = List.length my_ops in
        let sender () =
          let st = Random.State.make [| cfg.seed; c; 0xbeef |] in
          List.iter
            (fun op ->
              let dt = sched_of op -. now () in
              if dt > 0.0 then Unix.sleepf dt;
              let req = request_of cfg cdf st ~op in
              (try Wire.write_frame fd (Wire.encode_req req)
               with _ -> ());
              Atomic.incr sent)
            my_ops
        in
        let receiver () =
          let rec go k =
            if k < n_mine then
              match Wire.read_frame fd with
              | None -> () (* connection lost; sent-completed shows it *)
              | exception _ -> ()
              | Some payload ->
                  (match Wire.decode_resp payload with
                  | Wire.Reply (id, _) | Wire.Err (id, _) as resp ->
                      (match resp with
                      | Wire.Err _ -> Atomic.incr errors
                      | _ -> ());
                      let lat_s = now () -. sched_of id in
                      Histo.record hist
                        (int_of_float (Float.max 0.0 lat_s *. 1e9));
                      Atomic.incr completed
                  | exception Wire.Malformed _ -> Atomic.incr errors);
                  go (k + 1)
          in
          go 0
        in
        let rt = Thread.create receiver () in
        let stt = Thread.create sender () in
        (fd, rt, stt))
  in
  List.iter
    (fun (fd, rt, stt) ->
      Thread.join stt;
      Thread.join rt;
      try Unix.close fd with _ -> ())
    conn_threads;
  let elapsed = now () -. t0 in
  {
    sent = Atomic.get sent;
    completed = Atomic.get completed;
    errors = Atomic.get errors;
    elapsed = Float.max elapsed 1e-9;
    hist;
    server_obs = fetch_stats cfg.addr;
  }

(* ------------------------------------------------------------------ *)
(* Phase-shifting sweep                                                *)
(* ------------------------------------------------------------------ *)

(** One segment of a phase-shifting run: the same server, a different
    workload regime.  The three default phases are chosen so that each
    favours a different lattice point (see DESIGN.md §12):
    commuting-heavy uniform puts (checks dominate → strengthen pays),
    hot-key contention where the coarsened specs refuse what the precise
    one admits (→ weaken pays), then a read-heavy tail. *)
type phase = {
  p_name : string;
  p_mix : mix;
  p_theta : float;
  p_keys : int;
  p_duration : float;
  p_burst : int;
}

let default_phases ?(burst = 32) ~duration () =
  [
    { p_name = "commuting"; p_mix = Put; p_theta = 0.0; p_keys = 50_000;
      p_duration = duration; p_burst = burst };
    { p_name = "hot-key"; p_mix = Put; p_theta = 1.2; p_keys = 512;
      p_duration = duration; p_burst = burst };
    { p_name = "read-heavy"; p_mix = Read_heavy; p_theta = 0.5;
      p_keys = 50_000; p_duration = duration; p_burst = burst };
  ]

(** Run the phases back to back against one live server (same detector
    state throughout — that continuity is the point: an adaptive server
    must renavigate the lattice as the regime under it shifts).  Returns
    [(phase, result)] in order; each result's [server_obs] is the
    {e cumulative} server snapshot at the end of that phase, so per-phase
    counter deltas are the caller's subtraction. *)
let run_phases (cfg : config) (phases : phase list) : (phase * result) list =
  List.map
    (fun p ->
      let r =
        run
          { cfg with mix = p.p_mix; theta = p.p_theta; keys = p.p_keys;
            duration = p.p_duration; burst = p.p_burst }
      in
      (p, r))
    phases

(* ------------------------------------------------------------------ *)
(* BENCH row                                                           *)
(* ------------------------------------------------------------------ *)

(** One `commlat-bench/1` row.  Latencies are reported in milliseconds
    (p50/p99/p999 both inside ["latency_ms"] and as top-level fields for
    the CI gate); ["obs"] carries the server's merged snapshot, which is
    what makes the row validate. *)
let row_json ~(cfg : config) ~domains (r : result) : Jsonx.t =
  let q ql = float_of_int (Histo.quantile r.hist ql) *. 1e-6 in
  let obs =
    match r.server_obs with
    | Some j -> j
    | None ->
        (* a validating row needs a snapshot even if the Stats call
           failed: an empty one is honest about what we got *)
        Commlat_obs.Obs.(snapshot_to_json (snapshot (create ~enabled:true "serve-load")))
  in
  Jsonx.Obj
    [
      ("workload", Jsonx.Str ("serve-" ^ mix_name cfg.mix));
      ("mix", Jsonx.Str (mix_name cfg.mix));
      ("domains", Jsonx.Int domains);
      ("conns", Jsonx.Int cfg.conns);
      ("target_rate_rps", Jsonx.Float cfg.rate);
      ("duration_s", Jsonx.Float cfg.duration);
      ("keys", Jsonx.Int cfg.keys);
      ("zipf_theta", Jsonx.Float cfg.theta);
      ("burst", Jsonx.Int cfg.burst);
      ("sent", Jsonx.Int r.sent);
      ("completed", Jsonx.Int r.completed);
      ("errors", Jsonx.Int r.errors);
      ("elapsed_s", Jsonx.Float r.elapsed);
      ( "throughput_rps",
        Jsonx.Float (float_of_int r.completed /. r.elapsed) );
      ("p50_ms", Jsonx.Float (q 0.50));
      ("p99_ms", Jsonx.Float (q 0.99));
      ("p999_ms", Jsonx.Float (q 0.999));
      ("latency_ms", Histo.summary_json ~scale:1e-6 r.hist);
      ("obs", obs);
    ]

(* ------------------------------------------------------------------ *)
(* Self-serve: spawn a server child per cell                           *)
(* ------------------------------------------------------------------ *)

(** Spawn [exe serve] as a child process on a fresh Unix socket, wait for
    the socket to accept, run [f addr], send [Quit], and reap the child.
    [extra_args] are appended to the child's argv verbatim (e.g.
    [["--adaptive"]] or [["--level"; "precise"]]).  Returns [f]'s result
    and the child's exit status — a nonzero server exit must fail the
    benchmark run. *)
let with_server ~exe ~domains ?(nshards = Engine.default_nshards) ?(batch = 64)
    ?(extra_args = []) (f : Server.addr -> 'a) : 'a * Unix.process_status =
  let path =
    Filename.temp_file "commlat-serve-" ".sock" |> fun p ->
    Sys.remove p;
    p
  in
  let argv =
    Array.of_list
      ([
         exe; "serve"; "--socket"; path; "--domains"; string_of_int domains;
         "--shards"; string_of_int nshards; "--batch"; string_of_int batch;
       ]
      @ extra_args)
  in
  let pid = Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr in
  let deadline = now () +. 10.0 in
  let rec wait_ready () =
    if now () > deadline then failwith "server did not come up within 10s";
    match rpc (Server.Unix_sock path) (Wire.Ping 0) with
    | Wire.Reply _ -> ()
    | _ -> failwith "server refused ping"
    | exception _ ->
        Unix.sleepf 0.05;
        wait_ready ()
  in
  wait_ready ();
  let finish () =
    (try ignore (rpc (Server.Unix_sock path) (Wire.Quit 0)) with _ -> ());
    let _, status = Unix.waitpid [] pid in
    status
  in
  match f (Server.Unix_sock path) with
  | r ->
      let status = finish () in
      (r, status)
  | exception e ->
      (try Unix.kill pid Sys.sigkill with _ -> ());
      ignore (try finish () with _ -> Unix.WEXITED 0);
      raise e
