(** The `commlat serve` wire protocol: length-prefixed binary frames.

    Framing: every message is a 4-byte big-endian payload length followed
    by that many payload bytes.  Payloads longer than {!max_frame} are a
    protocol violation — {!read_frame} refuses to allocate for them
    (connection-level error), and {!decode_req} never sees them.

    Payload grammar (all integers big-endian):

    {v
    request  := 0x01 id:i64 adt:str8 meth:str8 argc:u8 value*argc   Invoke
              | 0x02 id:i64                                         Stats
              | 0x03 id:i64                                         Quit
              | 0x04 id:i64                                         Ping
    response := 0x01 id:i64 value                                   Reply
              | 0x02 id:i64 msg:str32                               Err
    str8     := len:u8  byte*len
    str32    := len:u32 byte*len
    value    := 0x00                                                Unit
              | 0x01 b:u8                                           Bool
              | 0x02 n:i64                                          Int
              | 0x03 bits:i64                                       Float
              | 0x04 s:str32                                        Str
              | 0x05 d:u16 f64*d                                    Point
              | 0x06 value value                                    Pair
              | 0x07 0x00 | 0x07 0x01 value                         Opt
              | 0x08 n:u32 value*n                                  List
    v}

    The codec is pure (strings in, strings out) so the round-trip property
    tests and the in-process conformance test run in tier-1 without
    touching a socket; {!read_frame}/{!write_frame} add the [Unix]
    framing on top.  Every decoder is total: malformed input raises
    {!Malformed}, never [Invalid_argument] or an out-of-bounds crash. *)

open Commlat_core

exception Malformed of string

let malformed fmt = Fmt.kstr (fun m -> raise (Malformed m)) fmt

(** Refuse frames above 16 MiB: a corrupt or adversarial length prefix
    must not make the server allocate unboundedly. *)
let max_frame = 16 * 1024 * 1024

type req =
  | Invoke of { id : int; adt : string; meth : string; args : Value.t array }
      (** one transactional method call *)
  | Stats of int  (** server obs snapshot as a JSON string *)
  | Quit of int  (** drain, then shut the server down cleanly *)
  | Ping of int

type resp =
  | Reply of int * Value.t  (** success; the invocation's return value *)
  | Err of int * string
      (** the request failed (unknown ADT/method, malformed arguments,
          retries exhausted) — the transaction was rolled back, the
          server lives on *)

let req_id = function Invoke { id; _ } | Stats id | Quit id | Ping id -> id
let resp_id = function Reply (id, _) | Err (id, _) -> id

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let put_u16 b n =
  put_u8 b (n lsr 8);
  put_u8 b n

let put_u32 b n =
  if n < 0 || n > 0xffff_ffff then malformed "encode: u32 out of range (%d)" n;
  put_u8 b (n lsr 24);
  put_u8 b (n lsr 16);
  put_u8 b (n lsr 8);
  put_u8 b n

let put_i64 b n = Buffer.add_int64_be b (Int64.of_int n)

let put_str8 b s =
  if String.length s > 0xff then malformed "encode: name longer than 255B";
  put_u8 b (String.length s);
  Buffer.add_string b s

let put_str32 b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let rec put_value b (v : Value.t) =
  match v with
  | Value.Unit -> put_u8 b 0x00
  | Value.Bool x ->
      put_u8 b 0x01;
      put_u8 b (if x then 1 else 0)
  | Value.Int n ->
      put_u8 b 0x02;
      put_i64 b n
  | Value.Float f ->
      put_u8 b 0x03;
      Buffer.add_int64_be b (Int64.bits_of_float f)
  | Value.Str s ->
      put_u8 b 0x04;
      put_str32 b s
  | Value.Point p ->
      put_u8 b 0x05;
      put_u16 b (Array.length p);
      Array.iter (fun f -> Buffer.add_int64_be b (Int64.bits_of_float f)) p
  | Value.Pair (x, y) ->
      put_u8 b 0x06;
      put_value b x;
      put_value b y
  | Value.Opt None -> (
      put_u8 b 0x07;
      put_u8 b 0x00)
  | Value.Opt (Some x) ->
      put_u8 b 0x07;
      put_u8 b 0x01;
      put_value b x
  | Value.List l ->
      put_u8 b 0x08;
      put_u32 b (List.length l);
      List.iter (put_value b) l

let encode_req (r : req) : string =
  let b = Buffer.create 64 in
  (match r with
  | Invoke { id; adt; meth; args } ->
      put_u8 b 0x01;
      put_i64 b id;
      put_str8 b adt;
      put_str8 b meth;
      if Array.length args > 0xff then malformed "encode: more than 255 args";
      put_u8 b (Array.length args);
      Array.iter (put_value b) args
  | Stats id ->
      put_u8 b 0x02;
      put_i64 b id
  | Quit id ->
      put_u8 b 0x03;
      put_i64 b id
  | Ping id ->
      put_u8 b 0x04;
      put_i64 b id);
  Buffer.contents b

let encode_resp (r : resp) : string =
  let b = Buffer.create 64 in
  (match r with
  | Reply (id, v) ->
      put_u8 b 0x01;
      put_i64 b id;
      put_value b v
  | Err (id, msg) ->
      put_u8 b 0x02;
      put_i64 b id;
      put_str32 b msg);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

(* A bounds-checked cursor over the payload string. *)
type cursor = { s : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.s then
    malformed "decode: truncated payload (%s at byte %d, %d left)" what c.pos
      (String.length c.s - c.pos)

let get_u8 c what =
  need c 1 what;
  let n = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  n

let get_u16 c what =
  let hi = get_u8 c what in
  let lo = get_u8 c what in
  (hi lsl 8) lor lo

let get_u32 c what =
  let a = get_u8 c what in
  let b = get_u8 c what in
  let d = get_u8 c what in
  let e = get_u8 c what in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let get_i64 c what =
  need c 8 what;
  let n = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  Int64.to_int n

let get_bytes c n what =
  need c n what;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_str8 c what =
  let n = get_u8 c what in
  get_bytes c n what

let get_str32 c what =
  let n = get_u32 c what in
  if n > max_frame then malformed "decode: %s length %d exceeds frame cap" what n;
  get_bytes c n what

(* [Array.init]/[List.init] apply their function in unspecified order —
   fatal with a mutable cursor — so sequences decode through this left-to-
   right loop. *)
let read_n n f =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f () :: acc) in
  go n []

let get_f64 c what =
  need c 8 what;
  let n = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  Int64.float_of_bits n

let rec get_value c =
  match get_u8 c "value tag" with
  | 0x00 -> Value.Unit
  | 0x01 -> (
      match get_u8 c "bool" with
      | 0 -> Value.Bool false
      | 1 -> Value.Bool true
      | n -> malformed "decode: bad bool byte %#x" n)
  | 0x02 -> Value.Int (get_i64 c "int")
  | 0x03 -> Value.Float (get_f64 c "float")
  | 0x04 -> Value.Str (get_str32 c "string")
  | 0x05 ->
      let d = get_u16 c "point dim" in
      (* 8 bytes per coordinate must fit in what's left *)
      need c (8 * d) "point";
      Value.Point (Array.of_list (read_n d (fun () -> get_f64 c "point coord")))
  | 0x06 ->
      let x = get_value c in
      let y = get_value c in
      Value.Pair (x, y)
  | 0x07 -> (
      match get_u8 c "opt tag" with
      | 0 -> Value.Opt None
      | 1 -> Value.Opt (Some (get_value c))
      | n -> malformed "decode: bad option byte %#x" n)
  | 0x08 ->
      let n = get_u32 c "list length" in
      (* each element is at least a tag byte: cheap upper bound that stops
         a tiny frame from declaring a huge list *)
      need c n "list";
      Value.List (read_n n (fun () -> get_value c))
  | t -> malformed "decode: unknown value tag %#x" t

let finish c what =
  if c.pos <> String.length c.s then
    malformed "decode: %d trailing bytes after %s"
      (String.length c.s - c.pos)
      what

let decode_req (s : string) : req =
  let c = { s; pos = 0 } in
  let r =
    match get_u8 c "request tag" with
    | 0x01 ->
        let id = get_i64 c "id" in
        let adt = get_str8 c "adt name" in
        let meth = get_str8 c "method name" in
        let argc = get_u8 c "argc" in
        let args = Array.of_list (read_n argc (fun () -> get_value c)) in
        Invoke { id; adt; meth; args }
    | 0x02 -> Stats (get_i64 c "id")
    | 0x03 -> Quit (get_i64 c "id")
    | 0x04 -> Ping (get_i64 c "id")
    | t -> malformed "decode: unknown request tag %#x" t
  in
  finish c "request";
  r

let decode_resp (s : string) : resp =
  let c = { s; pos = 0 } in
  let r =
    match get_u8 c "response tag" with
    | 0x01 ->
        let id = get_i64 c "id" in
        Reply (id, get_value c)
    | 0x02 ->
        let id = get_i64 c "id" in
        Err (id, get_str32 c "error message")
    | t -> malformed "decode: unknown response tag %#x" t
  in
  finish c "response";
  r

(* ------------------------------------------------------------------ *)
(* Socket framing                                                      *)
(* ------------------------------------------------------------------ *)

let rec really_write fd buf ofs len =
  if len > 0 then
    let n =
      try Unix.write fd buf ofs len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd buf (ofs + n) (len - n)

(* [really_read fd buf ofs len] returns [false] on clean EOF at offset 0,
   raises [Malformed] on EOF mid-message. *)
let really_read fd buf ofs len =
  let rec go ofs len =
    if len = 0 then true
    else
      match Unix.read fd buf ofs len with
      | 0 ->
          if ofs = 0 then false
          else malformed "read: connection closed mid-frame"
      | n -> go (ofs + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs len
  in
  go ofs len

(** Write one frame (length prefix + payload) as a single [write] burst. *)
let write_frame fd (payload : string) =
  let n = String.length payload in
  if n > max_frame then malformed "write_frame: payload %dB exceeds cap" n;
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  really_write fd buf 0 (4 + n)

(** Read one frame's payload; [None] on clean EOF at a frame boundary.
    Raises [Malformed] on a mid-frame EOF or an oversized length prefix
    (the declared bytes are {e not} consumed — callers must close the
    connection, resynchronization is impossible). *)
let read_frame fd : string option =
  let hdr = Bytes.create 4 in
  if not (really_read fd hdr 0 4) then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      malformed "read_frame: declared payload %dB exceeds cap" n;
    let buf = Bytes.create n in
    if n > 0 then ignore (really_read fd buf 0 n);
    Some (Bytes.unsafe_to_string buf)
  end
