(** An OR-set-style tuple ADT with id-tagged operations (ROADMAP item 5a;
    the Boogie commutativity proof [ORset_Com_Boogie.bpl] quoted in
    SNIPPETS.md is the reference model).

    The abstract state is a set of [(element, id)] pairs.  [add e i]
    inserts the pair, [remove e i] deletes it; both return [unit] — the
    Boogie procedures likewise return nothing, and it is exactly this
    observational blindness that makes the tuple space commute so widely
    (Malta/Martinez-style tuple ADTs, PAPERS.md):

    - [add ; add] commute {e always} (set insertion, even of the same
      pair);
    - [remove ; remove] commute {e always} (deletion is idempotent);
    - [add ; remove] commute unless they target the {e identical} tagged
      pair — the residual condition [v1[0] != v2[0] \/ v1[1] != v2[1]].

    The Boogie proof's [comAddRemove] carries the precondition
    [(a1,k1) not in R2]: in a real OR-set history every [add] uses a fresh
    id, so the same-pair case never arises and {e everything commutes}.
    This spec makes that freshness assumption explicit as a commutativity
    condition instead of an ambient precondition, so detectors built from
    it stay sound even on histories that violate freshness. *)

open Commlat_core

type t = {
  pairs : unit Value.Tbl.t;
  presence_log : (int, bool) Hashtbl.t;
      (** pre-state presence per executed invocation uid; see
          {!exec_logged}.  Per-instance: a module-global table would be
          shared across instances (two sets logging the same uid clobber
          each other) and leak entries forever on commit. *)
  log_mu : Mutex.t;
      (** protects [presence_log]: detector guards serialize invocations on
          {e one} instance, but nothing else orders two instances' logs, and
          [Hashtbl] is not domain-safe. *)
}

let create () =
  {
    pairs = Value.Tbl.create 64;
    presence_log = Hashtbl.create 64;
    log_mu = Mutex.create ();
  }

let key e i = Value.Pair (e, i)
let add t e i = Value.Tbl.replace t.pairs (key e i) ()
let remove t e i = Value.Tbl.remove t.pairs (key e i)
let mem t e i = Value.Tbl.mem t.pairs (key e i)

(** Visible elements: those with at least one surviving tag. *)
let elements t =
  Value.Tbl.fold
    (fun k () acc -> match k with Value.Pair (e, _) -> e :: acc | _ -> acc)
    t.pairs []
  |> List.sort_uniq Value.compare

let pairs t =
  Value.Tbl.fold (fun k () acc -> k :: acc) t.pairs [] |> List.sort Value.compare

let clear t = Value.Tbl.reset t.pairs

(* ------------------------------------------------------------------ *)
(* Methods and specification                                           *)
(* ------------------------------------------------------------------ *)

let m_add = Invocation.meth "add" 2
let m_remove = Invocation.meth "remove" 2
let methods = [ m_add; m_remove ]

(** The hand-written spec (what [commlat synth --adt orset] re-derives):
    only an add and a remove of the identical tagged pair conflict. *)
let spec () =
  let open Formula in
  let s = Spec.create ~adt:"orset" methods in
  let pairs_differ = ne (arg1 0) (arg2 0) ||| ne (arg1 1) (arg2 1) in
  Spec.add_sym s "add" "add" True;
  Spec.add_sym s "remove" "remove" True;
  Spec.add_sym s "add" "remove" pairs_differ;
  s

(* ------------------------------------------------------------------ *)
(* Execution plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let exec (t : t) name (args : Value.t array) : Value.t =
  match (name, args) with
  | "add", [| e; i |] ->
      add t e i;
      Value.Unit
  | "remove", [| e; i |] ->
      remove t e i;
      Value.Unit
  | _ -> Value.type_error "orset: bad invocation %s/%d" name (Array.length args)

(** Undo is not observation-driven (returns are unit), so it must consult
    the pre-state: an [add] of a pair that was already present undoes to a
    no-op.  Presence is logged per instance in [t.presence_log], keyed by
    invocation uid; entries are dropped both by {!undo} and — for
    invocations that commit and are never undone — by the {!forget} hook
    the gatekeeper calls from its end-of-transaction sweep, so the log
    cannot grow without bound in a long-running process. *)

let exec_logged (t : t) (inv : Invocation.t) : Value.t =
  let e = inv.Invocation.args.(0) and i = inv.Invocation.args.(1) in
  let was = mem t e i in
  Mutex.protect t.log_mu (fun () ->
      Hashtbl.replace t.presence_log inv.Invocation.uid was);
  exec t inv.Invocation.meth.name inv.Invocation.args

let undo (t : t) (inv : Invocation.t) =
  let e = inv.Invocation.args.(0) and i = inv.Invocation.args.(1) in
  let was =
    Mutex.protect t.log_mu (fun () ->
        let w = Hashtbl.find_opt t.presence_log inv.Invocation.uid in
        Hashtbl.remove t.presence_log inv.Invocation.uid;
        w)
  in
  (* [None]: the invocation never executed on THIS instance (e.g. its exec
     raised before logging, or the undo was routed to the wrong set) —
     undoing anything would corrupt the state it never touched. *)
  match was with
  | None -> ()
  | Some was -> (
      match inv.Invocation.meth.name with
      | "add" -> if not was then remove t e i
      | "remove" -> if was then add t e i
      | _ -> ())

let forget (t : t) (inv : Invocation.t) =
  Mutex.protect t.log_mu (fun () ->
      Hashtbl.remove t.presence_log inv.Invocation.uid)

(** Number of live presence-log entries (regression handle: must return to
    0 once every transaction has committed or aborted). *)
let log_size (t : t) =
  Mutex.protect t.log_mu (fun () -> Hashtbl.length t.presence_log)

let invoke (det : Detector.t) (t : t) ~txn name e i : unit =
  let meth =
    match name with
    | "add" -> m_add
    | "remove" -> m_remove
    | _ -> invalid_arg ("orset: no method " ^ name)
  in
  let inv = Invocation.make ~txn meth [| e; i |] in
  ignore (det.Detector.on_invoke inv (fun () -> exec_logged t inv))

let hooks (t : t) =
  Gatekeeper.hooks
    ~undo:(fun inv -> undo t inv)
    ~redo:(fun inv -> ignore (exec_logged t inv))
    ~forget:(fun inv -> forget t inv)
    (fun name _ -> raise (Formula.Unsupported ("orset sfun " ^ name)))

(* ------------------------------------------------------------------ *)
(* Replay model (also the bounded-analysis reference semantics)         *)
(* ------------------------------------------------------------------ *)

let model () : History.model =
  let t = create () in
  {
    History.reset = (fun () -> clear t);
    apply = (fun name args -> exec t name (Array.of_list args));
    snapshot = (fun () -> Value.List (pairs t));
  }
