(** Disjoint-set union-find (paper §2.5): a disjoint-set forest with
    union-by-rank {e and path compression} — the paper's flagship example of
    an ADT whose concrete state changes (compression rewrites parent
    pointers on [find]) while its abstract state does not, defeating
    memory-level conflict detection.

    The abstract state is the partition into disjoint sets plus the
    representative and rank of each set; the helper functions [rep], [rank]
    and [loser] of Fig. 5 are exposed as state functions for the formula
    interpreter.  Its specification is the paper's only GENERAL one
    (conditions (1)–(2) evaluate [rep]/[loser] in an earlier state using
    later arguments), so it exercises the general gatekeeper's rollback
    machinery: every mutating invocation records its concrete writes, and
    {!undo}/{!redo} replay them. *)

open Commlat_core

type write = { cell : [ `Parent | `Rank ]; idx : int; old_v : int; new_v : int }

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable n : int;
  mutable tracer : Mem_trace.t;
  mutable current_log : write list;  (** writes of the op being executed *)
  mutable logging : bool;
  logs : (int, write list) Hashtbl.t;  (** invocation uid -> its writes *)
}

let create ?(capacity = 16) () =
  {
    parent = Array.make capacity (-1);
    rank = Array.make capacity 0;
    n = 0;
    tracer = Mem_trace.null;
    current_log = [];
    logging = false;
    logs = Hashtbl.create 64;
  }

let set_tracer t tr = t.tracer <- tr
let size t = t.n

let ensure_capacity t i =
  if i >= Array.length t.parent then (
    let cap = max (i + 1) (2 * Array.length t.parent) in
    let parent = Array.make cap (-1) and rank = Array.make cap 0 in
    Array.blit t.parent 0 parent 0 t.n;
    Array.blit t.rank 0 rank 0 t.n;
    t.parent <- parent;
    t.rank <- rank)

(* Concrete cell ids for the memory tracer: parent cell of i is 2i, rank
   cell is 2i+1. *)
let parent_cell i = 2 * i
let rank_cell i = (2 * i) + 1

let write_parent t i v =
  if t.logging then
    t.current_log <- { cell = `Parent; idx = i; old_v = t.parent.(i); new_v = v } :: t.current_log;
  t.parent.(i) <- v;
  t.tracer.Mem_trace.write (parent_cell i)

let write_rank t i v =
  if t.logging then
    t.current_log <- { cell = `Rank; idx = i; old_v = t.rank.(i); new_v = v } :: t.current_log;
  t.rank.(i) <- v;
  t.tracer.Mem_trace.write (rank_cell i)

(** [create_element t] makes a fresh singleton set and returns its element.
    The paper's [create(a)]; it commutes with nothing (Fig. 5 (3,5,6)), so
    applications create all elements before the speculative phase. *)
let create_element t =
  let i = t.n in
  ensure_capacity t i;
  t.n <- i + 1;
  write_parent t i i;
  write_rank t i 0;
  i

let create_elements t k = List.init k (fun _ -> create_element t)

(* Representative without path compression (and without trace noise):
   used by the abstract-state helpers, which must not mutate. *)
let rec rep_ro t i = if t.parent.(i) = i then i else rep_ro t t.parent.(i)

(** [find] with full path compression: every node on the walk is re-pointed
    at the root — concrete writes with no abstract effect. *)
let find t i =
  if i < 0 || i >= t.n then invalid_arg "Union_find.find: unknown element";
  let rec root j =
    t.tracer.Mem_trace.read (parent_cell j);
    if t.parent.(j) = j then j else root t.parent.(j)
  in
  let r = root i in
  let rec compress j =
    if t.parent.(j) <> r then (
      let next = t.parent.(j) in
      write_parent t j r;
      compress next)
  in
  compress i;
  r

(** [union a b]: merge the sets of [a] and [b] by rank.  Returns [true] if
    two distinct sets were merged. *)
let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    t.tracer.Mem_trace.read (rank_cell ra);
    t.tracer.Mem_trace.read (rank_cell rb);
    let win, lose =
      if t.rank.(ra) > t.rank.(rb) then (ra, rb)
      else if t.rank.(ra) < t.rank.(rb) then (rb, ra)
      else (ra, rb)
      (* equal ranks: [b]'s representative loses, matching Fig. 5's
         definition of [loser] *)
    in
    write_parent t lose win;
    if t.rank.(win) = t.rank.(lose) then write_rank t win (t.rank.(win) + 1);
    true
  end

let same_set t a b = rep_ro t a = rep_ro t b

(* ------------------------------------------------------------------ *)
(* Abstract-state helpers of Fig. 5                                    *)
(* ------------------------------------------------------------------ *)

(** [rep s x] — the representative of [x]: what [find x] would return.
    Read-only (no compression), so safe for gatekeeper evaluation. *)
let rep t x = rep_ro t x

let rank_of t x = t.rank.(rep_ro t x)

(** [loser s a b] — the representative of [a] or [b] that would lose a
    union: the one of smaller rank, or [rep b] on ties. *)
let loser t a b =
  let ra = rep_ro t a and rb = rep_ro t b in
  if t.rank.(ra) < t.rank.(rb) then ra
  else if t.rank.(ra) > t.rank.(rb) then rb
  else rb

(* ------------------------------------------------------------------ *)
(* Methods and specification (Fig. 5)                                  *)
(* ------------------------------------------------------------------ *)

(* [find] leaves the abstract state unchanged but path compression rewrites
   parent pointers, so it is [concrete]: its writes are logged and replayed
   by state rollback (otherwise undoing a union over which a find had
   compressed would corrupt the forest). *)
let m_union = Invocation.meth "union" 2
let m_find = Invocation.meth ~mutates:false ~concrete:true "find" 1

(** A [find] descriptor whose compression writes stay out of the general
    gatekeeper's rollback log.  {b Sound only under detectors that never
    sweep} (abstract locks, forward gatekeepers, the STM baseline): a
    general gatekeeper running truly concurrent transactions must be able
    to undo {e committed} mutations too (an older invocation's pre-state
    [s1] can predate them), and an admitted find may legitimately compress
    across a committed-but-still-sweepable attach edge — a sweep that
    cannot undo that compression reconstructs the wrong [s1].  Under the
    round-based executors every sweepable mutation belonged to an active
    transaction, no admitted find ever crossed one (that is exactly the
    [rep(s1,c) != loser(s1,a,b)] condition), and this descriptor was safe
    with the general gatekeeper as well; with domain concurrency, use
    {!m_find} there instead. *)
let m_find_light =
  Invocation.meth ~mutates:false ~concrete:true ~rollback_log:false "find" 1

let m_create = Invocation.meth "create" 0
let methods = [ m_union; m_find; m_create ]

(** Fig. 5, both orientations spelled out.  Conditions (1)–(2) are not
    ONLINE-CHECKABLE: they evaluate [rep]/[loser] in the {e first}
    invocation's state using the {e second} invocation's arguments. *)
let spec () =
  let open Formula in
  let s = Spec.create ~adt:"union_find" methods in
  let loser1 x y = sfun "loser" S1 [ x; y ] in
  let rep1 x = sfun "rep" S1 [ x ] in
  (* (1) union(a,b) ; union(c,d):
         rep(s1,c) != loser(s1,a,b) /\ rep(s1,d) != loser(s1,a,b) *)
  Spec.add_directed s ~first:"union" ~second:"union"
    (ne (rep1 (arg2 0)) (loser1 (arg1 0) (arg1 1))
    &&& ne (rep1 (arg2 1)) (loser1 (arg1 0) (arg1 1)));
  (* (2) union(a,b) ; find(c): rep(s1,c) != loser(s1,a,b) *)
  Spec.add_directed s ~first:"union" ~second:"find"
    (ne (rep1 (arg2 0)) (loser1 (arg1 0) (arg1 1)));
  (* (2') find(c)/r1 ; union(a,b): r1 != loser(s1,a,b) — the mirrored
     orientation: the union must not displace the representative the find
     reported. *)
  Spec.add_directed s ~first:"find" ~second:"union"
    (ne ret1 (loser1 (arg2 0) (arg2 1)));
  (* (4) find/find always commute *)
  Spec.add_directed s ~first:"find" ~second:"find" True;
  (* (3,5,6) create commutes with nothing *)
  List.iter
    (fun m ->
      Spec.add_directed s ~first:"create" ~second:m False;
      Spec.add_directed s ~first:m ~second:"create" False)
    [ "union"; "find"; "create" ];
  s

(* ------------------------------------------------------------------ *)
(* Execution plumbing with per-invocation write logs                   *)
(* ------------------------------------------------------------------ *)

let exec_raw (t : t) name (args : Value.t array) =
  match (name, args) with
  | "union", [| a; b |] -> Value.Bool (union t (Value.to_int a) (Value.to_int b))
  | "find", [| a |] -> Value.Int (find t (Value.to_int a))
  | "create", [||] -> Value.Int (create_element t)
  | _ -> Value.type_error "union-find: bad invocation %s" name

(** Execute an invocation, recording its concrete writes under its uid so
    {!undo}/{!redo} can replay them. *)
let exec_logged (t : t) (inv : Invocation.t) =
  t.logging <- true;
  t.current_log <- [];
  let r = exec_raw t inv.Invocation.meth.name inv.Invocation.args in
  Hashtbl.replace t.logs inv.Invocation.uid t.current_log;
  t.current_log <- [];
  t.logging <- false;
  r

(* A parent write whose old value was the cell itself re-pointed a root:
   that is the union's attach edge.  Every other parent write is path
   compression (compression never writes a root cell: the walk stops
   there). *)
let is_attach w = w.cell = `Parent && w.old_v = w.idx

(** Restore the concrete state to just before [inv] ran.

    Attach writes (re-pointing a root) are replayed unconditionally: no
    other transaction can write that cell while this union is active —
    reaching it means crossing the attach edge, which conditions (1)–(2)
    refuse.  Compression and rank writes are restored {e only if still in
    place} (the cell still holds the value this write put there), because
    both CAN be superseded while the writer is live: another transaction's
    find may legally compress the same parent cell further, and another
    union into the same winner may legally bump the same rank cell (Fig. 5
    only guards losers).  Restoring an absolute old value over such a
    later write would corrupt it — and since the later write stays in the
    gatekeeper's mutation log, a subsequent sweep's redo would resurrect
    the clobbered value, skewing every future [loser]/[rep] evaluation.
    The conditional restore makes rollback a no-op exactly where a
    surviving write superseded ours.  (Inside a gatekeeper sweep, undo/redo
    is strictly LIFO, so the conditions always hold and this is the plain
    replay.) *)
let undo (t : t) (inv : Invocation.t) =
  match Hashtbl.find_opt t.logs inv.Invocation.uid with
  | None -> ()
  | Some writes ->
      (* newest-first already: current_log was built by consing *)
      List.iter
        (fun w ->
          match w.cell with
          | `Parent when is_attach w -> t.parent.(w.idx) <- w.old_v
          | `Parent ->
              if t.parent.(w.idx) = w.new_v then t.parent.(w.idx) <- w.old_v
          | `Rank -> if t.rank.(w.idx) = w.new_v then t.rank.(w.idx) <- w.old_v)
        writes

(** Re-apply [inv]'s concrete writes (exact redo; no re-execution). *)
let redo (t : t) (inv : Invocation.t) =
  match Hashtbl.find_opt t.logs inv.Invocation.uid with
  | None -> ()
  | Some writes ->
      List.iter
        (fun w ->
          match w.cell with
          | `Parent when is_attach w -> t.parent.(w.idx) <- w.new_v
          | `Parent ->
              (* symmetric to [undo]: re-apply a compression write only if
                 its pre-state is in place, so a sweep's redo does not
                 resurrect compression that a concurrent rollback voided *)
              if t.parent.(w.idx) = w.old_v then t.parent.(w.idx) <- w.new_v
          | `Rank -> if t.rank.(w.idx) = w.old_v then t.rank.(w.idx) <- w.new_v)
        (List.rev writes)

let forget (t : t) (inv : Invocation.t) = Hashtbl.remove t.logs inv.Invocation.uid

(** For a [union] invocation that merged ([ret = true]): the (winner,
    loser) roots, read off the invocation's write log (the attach is the
    unique parent write whose old value was the cell itself, i.e. a root).
    Lets clients learn the surviving representative without issuing a
    post-union [find]. *)
let merge_of (t : t) (inv : Invocation.t) : (int * int) option =
  match Hashtbl.find_opt t.logs inv.Invocation.uid with
  | None -> None
  | Some writes ->
      List.find_map
        (fun w ->
          match w.cell with
          | `Parent when w.old_v = w.idx -> Some (w.new_v, w.idx)
          | _ -> None)
        writes

let sfun (t : t) name (args : Value.t list) =
  match (name, args) with
  | "rep", [ x ] -> Value.Int (rep t (Value.to_int x))
  | "rank", [ x ] -> Value.Int (rank_of t (Value.to_int x))
  | "loser", [ a; b ] -> Value.Int (loser t (Value.to_int a) (Value.to_int b))
  | _ -> raise (Formula.Unsupported ("union-find sfun " ^ name))

let hooks (t : t) =
  Gatekeeper.hooks ~undo:(undo t) ~redo:(redo t) ~forget:(forget t) (sfun t)

let invoke (det : Detector.t) (t : t) ~txn name (args : int list) : Value.t =
  let meth =
    match name with
    | "union" -> m_union
    | "find" -> m_find
    | "create" -> m_create
    | _ -> invalid_arg ("union-find: no method " ^ name)
  in
  let inv =
    Invocation.make ~txn meth (Array.of_list (List.map (fun i -> Value.Int i) args))
  in
  det.Detector.on_invoke inv (fun () -> exec_logged t inv)

(* ------------------------------------------------------------------ *)
(* Replay model: abstract state = the partition                        *)
(* ------------------------------------------------------------------ *)

(** Canonical abstract state: for each element, the smallest element of its
    set (independent of forest shape, rank bookkeeping and compression). *)
let partition_snapshot t =
  let min_of = Hashtbl.create 16 in
  for i = t.n - 1 downto 0 do
    Hashtbl.replace min_of (rep_ro t i) i
  done;
  Value.List (List.init t.n (fun i -> Value.Int (Hashtbl.find min_of (rep_ro t i))))

(** Replay model.  NOTE: [find]'s return value is the {e representative},
    which depends on union order; the serializability oracle compares
    return values, which is exactly what the paper's conditions preserve
    (hidden return values, §2.2 discussion). *)
let model ~elements () : History.model =
  let t = ref (create ()) in
  let init () =
    t := create ();
    ignore (create_elements !t elements)
  in
  init ();
  {
    History.reset = init;
    apply = (fun name args -> exec_raw !t name (Array.of_list args));
    snapshot = (fun () -> partition_snapshot !t);
  }
