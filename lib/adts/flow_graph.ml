(** Flow networks for the preflow-push case study (paper §5).

    The graph is exposed to transactions through four methods whose
    argument lists are exactly their node footprints, so that the
    commutativity specification is SIMPLE (clauses are node
    disequalities) and the derived abstract-locking scheme is precisely
    read/write locking on nodes — which, as the paper notes, "is identical
    to the conflict detection performed by a transactional memory":

    - [get_neighbors u] — adjacency, residual capacities, height and excess
      of [u] (one read of node [u]: residual capacities of [u]'s incident
      edges and [u]'s excess are only ever written by [push_flow]
      invocations that take [u] as an argument, so a read lock on [u]
      protects them);
    - [height v] — read of node [v];
    - [push_flow u v] — push as much excess as the residual edge allows;
      writes nodes [u] and [v]; returns the amount pushed;
    - [relabel_to u h] — set [u]'s height; writes node [u]; returns the
      previous height (which makes the method its own undo).

    Three specification variants from the lattice: {!spec_rw} (read/write
    node locks — the paper's [ml]), {!spec_exclusive} (reader/reader
    sharing removed — [ex]) and {!spec_partitioned} ([part], §4.2). *)

open Commlat_core

type edge = {
  dst : int;
  mutable cap : int;  (** residual capacity *)
  rev : int;  (** index of the reverse edge in [adj.(dst)] *)
}

type t = {
  n : int;
  adj : edge array array;
  excess : int array;
  height : int array;
  mutable tracer : Mem_trace.t;
}

(** Build a network from a directed capacity list.  Parallel edges and
    opposite-direction pairs are merged so that each unordered node pair is
    represented by exactly one edge object and its reverse — [push_flow]'s
    undo needs the residual edge [u -> v] to be unique. *)
let of_edges ~n (edges : (int * int * int) list) =
  let caps = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v, c) ->
      if u = v then invalid_arg "Flow_graph.of_edges: self loop";
      let cur = Option.value ~default:0 (Hashtbl.find_opt caps (u, v)) in
      Hashtbl.replace caps (u, v) (cur + c))
    edges;
  (* one record per unordered pair, with the capacity in each direction *)
  let pairs = Hashtbl.create (Hashtbl.length caps) in
  Hashtbl.iter
    (fun (u, v) c ->
      let key = (min u v, max u v) in
      let fwd, bwd = Option.value ~default:(0, 0) (Hashtbl.find_opt pairs key) in
      if u < v then Hashtbl.replace pairs key (fwd + c, bwd)
      else Hashtbl.replace pairs key (fwd, bwd + c))
    caps;
  let deg = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) _ ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    pairs;
  let adj = Array.init n (fun i -> Array.make deg.(i) { dst = -1; cap = 0; rev = -1 }) in
  let fill = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) (c_uv, c_vu) ->
      let iu = fill.(u) and iv = fill.(v) in
      adj.(u).(iu) <- { dst = v; cap = c_uv; rev = iv };
      adj.(v).(iv) <- { dst = u; cap = c_vu; rev = iu };
      fill.(u) <- iu + 1;
      fill.(v) <- iv + 1)
    pairs;
  {
    n;
    adj;
    excess = Array.make n 0;
    height = Array.make n 0;
    tracer = Mem_trace.null;
  }

let set_tracer t tr = t.tracer <- tr
let n_nodes t = t.n

(* ------------------------------------------------------------------ *)
(* Raw operations                                                      *)
(* ------------------------------------------------------------------ *)

let read_node t u = t.tracer.Mem_trace.read u
let write_node t u = t.tracer.Mem_trace.write u

let get_neighbors_raw t u =
  read_node t u;
  (t.excess.(u), t.height.(u), Array.to_list (Array.map (fun e -> (e.dst, e.cap)) t.adj.(u)))

let height_raw t v =
  read_node t v;
  t.height.(v)

(** Push along the residual edge [u -> v] if the preflow-push conditions
    hold ([excess u > 0], [height u = height v + 1], residual capacity):
    moves [min excess residual]; returns the amount moved (0 if
    inapplicable). *)
let push_flow_raw t u v =
  read_node t u;
  read_node t v;
  if t.excess.(u) <= 0 || t.height.(u) <> t.height.(v) + 1 then 0
  else
    match Array.find_opt (fun e -> e.dst = v && e.cap > 0) t.adj.(u) with
    | None -> 0
    | Some e ->
        let amt = min t.excess.(u) e.cap in
        e.cap <- e.cap - amt;
        t.adj.(v).(e.rev).cap <- t.adj.(v).(e.rev).cap + amt;
        t.excess.(u) <- t.excess.(u) - amt;
        t.excess.(v) <- t.excess.(v) + amt;
        write_node t u;
        write_node t v;
        amt

(** Transfer [amt] back from [v] to [u]: the semantic inverse of a push. *)
let unpush_raw t u v amt =
  if amt > 0 then (
    match Array.find_opt (fun e -> e.dst = v) t.adj.(u) with
    | None -> invalid_arg "unpush: no such edge"
    | Some e ->
        e.cap <- e.cap + amt;
        t.adj.(v).(e.rev).cap <- t.adj.(v).(e.rev).cap - amt;
        t.excess.(u) <- t.excess.(u) + amt;
        t.excess.(v) <- t.excess.(v) - amt)

let relabel_to_raw t u h =
  read_node t u;
  let old = t.height.(u) in
  t.height.(u) <- h;
  write_node t u;
  old

(* ------------------------------------------------------------------ *)
(* Methods and specifications                                          *)
(* ------------------------------------------------------------------ *)

let m_get_neighbors = Invocation.meth ~mutates:false "get_neighbors" 1
let m_height = Invocation.meth ~mutates:false "height" 1
let m_push_flow = Invocation.meth "push_flow" 2
let m_relabel_to = Invocation.meth "relabel_to" 2
let methods = [ m_get_neighbors; m_height; m_push_flow; m_relabel_to ]

(* node arguments *)
let u1 = Formula.arg1 0
let u2 = Formula.arg2 0
let v1 = Formula.arg1 1
let v2 = Formula.arg2 1

open struct
  let ne = Formula.ne
  let ( &&& ) = Formula.( &&& )
  let _True = Formula.True
end

let _ = _True

(** Read/write node locking — the paper's [ml] baseline: reads share,
    writers need their argument nodes exclusively. *)
let spec_rw () =
  let s = Spec.create ~adt:"flow_graph_rw" methods in
  (* reads commute with reads *)
  Spec.add_sym s "get_neighbors" "get_neighbors" Formula.True;
  Spec.add_sym s "get_neighbors" "height" Formula.True;
  Spec.add_sym s "height" "height" Formula.True;
  (* reads vs writes: disjoint nodes *)
  Spec.add_sym s "get_neighbors" "push_flow" (ne u1 u2 &&& ne u1 v2);
  Spec.add_sym s "get_neighbors" "relabel_to" (ne u1 u2);
  Spec.add_sym s "height" "push_flow" (ne u1 u2 &&& ne u1 v2);
  Spec.add_sym s "height" "relabel_to" (ne u1 u2);
  (* writes vs writes: disjoint nodes *)
  Spec.add_sym s "push_flow" "push_flow"
    (ne u1 u2 &&& ne u1 v2 &&& ne v1 u2 &&& ne v1 v2);
  Spec.add_sym s "push_flow" "relabel_to" (ne u1 u2 &&& ne v1 u2);
  Spec.add_sym s "relabel_to" "relabel_to" (ne u1 u2);
  s

(** Exclusive node locking — [ex]: reader/reader sharing on the same node
    removed (a strengthening, one step down the lattice). *)
let spec_exclusive () =
  let s = Strengthen.map_conditions ~adt:"flow_graph_ex" (spec_rw ()) Fun.id in
  Spec.add_sym s "get_neighbors" "get_neighbors" (ne u1 u2);
  Spec.add_sym s "get_neighbors" "height" (ne u1 u2);
  Spec.add_sym s "height" "height" (ne u1 u2);
  s

(** Partition locking — [part]: node disequalities coarsened to partition
    disequalities (paper §4.2); the induced scheme locks partitions.  The
    partition map matters: the paper follows the data-partitioning approach
    of Kulkarni et al. (ASPLOS 2008), where a partition is a {e connected
    region} of the graph, so a transaction's whole neighbourhood usually
    falls in one partition.  [n] is the number of graph nodes; nodes are
    split into [nparts] contiguous blocks (GENRMF ids are frame-major, so
    blocks are spatially coherent).  A custom [part] map can be supplied. *)
let spec_partitioned ?part ~nparts ?(n = max_int) () =
  let block v =
    let v = Value.to_int v in
    if n = max_int then Value.Int (v mod nparts)
    else Value.Int (min (nparts - 1) (v * nparts / n))
  in
  let part = Option.value ~default:block part in
  Strengthen.partitioned
    ~adt:(Fmt.str "flow_graph_part%d" nparts)
    ~part_name:"part" ~part (spec_exclusive ())

(* ------------------------------------------------------------------ *)
(* Execution plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let exec (t : t) name (args : Value.t array) =
  match (name, args) with
  | "get_neighbors", [| u |] ->
      let excess, height, ns = get_neighbors_raw t (Value.to_int u) in
      Value.List
        [
          Value.Int excess;
          Value.Int height;
          Value.List (List.map (fun (v, c) -> Value.Pair (Value.Int v, Value.Int c)) ns);
        ]
  | "height", [| v |] -> Value.Int (height_raw t (Value.to_int v))
  | "push_flow", [| u; v |] ->
      Value.Int (push_flow_raw t (Value.to_int u) (Value.to_int v))
  | "relabel_to", [| u; h |] ->
      Value.Int (relabel_to_raw t (Value.to_int u) (Value.to_int h))
  | _ -> Value.type_error "flow-graph: bad invocation %s" name

let meth_of = function
  | "get_neighbors" -> m_get_neighbors
  | "height" -> m_height
  | "push_flow" -> m_push_flow
  | "relabel_to" -> m_relabel_to
  | name -> invalid_arg ("flow-graph: no method " ^ name)

let invoke (det : Detector.t) (t : t) ~txn name (args : int list) : Value.t =
  let inv =
    Invocation.make ~txn (meth_of name)
      (Array.of_list (List.map (fun i -> Value.Int i) args))
  in
  det.Detector.on_invoke inv (fun () -> exec t name inv.Invocation.args)

(** Semantic undo: a push is unpushed; a relabel is re-relabelled to the
    old height it returned; reads undo to nothing. *)
let undo (t : t) (inv : Invocation.t) =
  match (inv.Invocation.meth.name, inv.Invocation.ret) with
  | "push_flow", Value.Int amt ->
      unpush_raw t
        (Value.to_int inv.Invocation.args.(0))
        (Value.to_int inv.Invocation.args.(1))
        amt
  | "relabel_to", Value.Int old ->
      ignore (relabel_to_raw t (Value.to_int inv.Invocation.args.(0)) old)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Invariants and reference results                                    *)
(* ------------------------------------------------------------------ *)

(** Total excess at a node (for checking conservation in tests). *)
let excess_of t u = t.excess.(u)

let height_of t u = t.height.(u)

(** The flow currently entering [sink]. *)
let inflow t sink =
  (* flow on (u, sink) = cap of the reverse (residual) edge (sink, u) minus
     its original capacity; with 0-capacity reverse edges this is just the
     residual cap on (sink, u) for edges that started at 0.  We instead sum
     excess, which equals inflow at the sink for a preflow. *)
  t.excess.(sink)

(* ------------------------------------------------------------------ *)
(* Replay model (the bounded-analysis reference semantics)             *)
(* ------------------------------------------------------------------ *)

(** Comparable encoding of the abstract state: per-node excess and height,
    plus every directed residual capacity.  Edge lists are emitted in
    sorted (src, dst) order so structurally equal states encode equally
    regardless of adjacency-array layout. *)
let abstract_snapshot t =
  let nodes =
    List.init t.n (fun u ->
        Value.List [ Value.Int u; Value.Int t.excess.(u); Value.Int t.height.(u) ])
  in
  let edges = ref [] in
  Array.iteri
    (fun u row ->
      Array.iter (fun e -> edges := (u, e.dst, e.cap) :: !edges) row)
    t.adj;
  let edges =
    List.sort compare !edges
    |> List.map (fun (u, v, c) -> Value.List [ Value.Int u; Value.Int v; Value.Int c ])
  in
  Value.Pair (Value.List nodes, Value.List edges)

(** A replayable model on a small fixed network (the reference semantics
    the spec analysis executes against).  Besides the four spec methods,
    [apply] accepts the pseudo-method [seed u amt] — excess injection used
    only by the analysis' initial-state setups, mirroring what saturating
    the source's out-edges does in a real preflow-push run. *)
let model ?(n = 4) ?(edges = [ (0, 1, 4); (1, 2, 3); (2, 3, 5); (0, 2, 2) ]) () :
    History.model =
  let fresh () = of_edges ~n edges in
  let t = ref (fresh ()) in
  {
    History.reset = (fun () -> t := fresh ());
    apply =
      (fun name args ->
        match (name, args) with
        | "seed", [ u; amt ] ->
            let u = Value.to_int u in
            !t.excess.(u) <- !t.excess.(u) + Value.to_int amt;
            Value.Unit
        | _ -> exec !t name (Array.of_list args));
    snapshot = (fun () -> abstract_snapshot !t);
  }
