(** Concrete-memory access tracing.

    The paper's baseline detects conflicts at the memory level (DSTM2-style
    object granularity).  Our ADTs expose the equivalent instrumentation:
    each internal cell (tree node, parent pointer, graph node record) has an
    integer id, and a tracer is told about every read and write of a cell.
    The STM baseline and the ParaMeter profiler plug in here; the default
    tracer is free. *)

type t = { read : int -> unit; write : int -> unit }

let null = { read = ignore; write = ignore }

(** Fan a cell's accesses out to both tracers — e.g. an STM's conflict
    tracer and a profiling collector on the same ADT. *)
let tee a b =
  {
    read =
      (fun c ->
        a.read c;
        b.read c);
    write =
      (fun c ->
        a.write c;
        b.write c);
  }

(** A tracer that accumulates read/write sets, for profiling. *)
type collector = {
  tracer : t;
  reads : (int, unit) Hashtbl.t;
  writes : (int, unit) Hashtbl.t;
}

let collector () =
  let reads = Hashtbl.create 64 and writes = Hashtbl.create 64 in
  {
    tracer =
      {
        read = (fun c -> if not (Hashtbl.mem reads c) then Hashtbl.add reads c ());
        write = (fun c -> if not (Hashtbl.mem writes c) then Hashtbl.add writes c ());
      };
    reads;
    writes;
  }

let clear c =
  Hashtbl.reset c.reads;
  Hashtbl.reset c.writes

(* Hashtbl.fold enumerates in bucket order, which varies with insertion
   history; sort so profiler output and tests are deterministic. *)
let read_list c =
  Hashtbl.fold (fun k () acc -> k :: acc) c.reads [] |> List.sort Int.compare

let write_list c =
  Hashtbl.fold (fun k () acc -> k :: acc) c.writes [] |> List.sort Int.compare
let read_count c = Hashtbl.length c.reads
let write_count c = Hashtbl.length c.writes
