(** The triangle set — the protected worklist ADT of Delaunay mesh
    refinement (ROADMAP item 5's tuple-based family).

    Elements are integer triangle ids (ids are minted once and never
    reused, so an id {e is} the triangle).  Three methods:

    - [take id] — atomically claim-and-remove a live triangle: [true] iff
      the id was present.  A refinement cavity is claimed by [take]-ing
      every triangle in it; two overlapping cavities race on some shared
      id, exactly one [take] returns [true], and the precise specification
      makes the two takes non-commuting — which is what lets a conflict
      detector serialize cavity operations while disjoint cavities (all
      ids distinct) proceed in parallel.
    - [add id] — publish a freshly created triangle ([true] iff new).
    - [contains id] — liveness test, read-only.

    Semantically [take]/[add]/[contains] are the set ADT's
    [remove]/[add]/[contains] under a claim reading, so the commutativity
    conditions mirror paper Fig. 2/Fig. 3 for the set: the precise spec
    keeps the "both returned false" disjuncts (two failed takes of a dead
    id commute), the SIMPLE spec is argument-disjointness only — the
    per-cavity {e footprint} is the id set, giving sharded detectors their
    keys. *)

open Commlat_core

type t = { tbl : (int, unit) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let add t id =
  if Hashtbl.mem t.tbl id then false
  else begin
    Hashtbl.replace t.tbl id ();
    true
  end

let take t id =
  if Hashtbl.mem t.tbl id then begin
    Hashtbl.remove t.tbl id;
    true
  end
  else false

let contains t id = Hashtbl.mem t.tbl id
let cardinal t = Hashtbl.length t.tbl

let elements t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.tbl [] |> List.sort compare

let clear t = Hashtbl.reset t.tbl

(* ------------------------------------------------------------------ *)
(* Methods and specifications                                          *)
(* ------------------------------------------------------------------ *)

let m_take = Invocation.meth "take" 1
let m_add = Invocation.meth "add" 1
let m_contains = Invocation.meth ~mutates:false "contains" 1
let methods = [ m_take; m_add; m_contains ]

let a = Formula.arg1 0
let b = Formula.arg2 0

open struct
  let ne = Formula.ne
  let ( ||| ) = Formula.( ||| )
  let ( &&& ) = Formula.( &&& )
  let ret1 = Formula.ret1
  let ret2 = Formula.ret2
  let cbool = Formula.cbool
  let eq = Formula.eq
end

let neither_modified = eq ret1 (cbool false) &&& eq ret2 (cbool false)

(** The precise specification (the set's Fig. 2 under the claim reading):
    ids differ, or neither invocation changed liveness. *)
let precise_spec () =
  let s = Spec.create ~adt:"triset" methods in
  Spec.add_sym s "take" "take" (ne a b ||| neither_modified);
  Spec.add_sym s "take" "add" (ne a b ||| neither_modified);
  Spec.add_sym s "take" "contains" (ne a b ||| eq ret1 (cbool false));
  Spec.add_sym s "add" "add" (ne a b ||| neither_modified);
  Spec.add_sym s "add" "contains" (ne a b ||| eq ret1 (cbool false));
  Spec.add_sym s "contains" "contains" Formula.True;
  s

(** SIMPLE strengthening: argument disjointness only — implementable with
    abstract locks on ids and the source of the sharded detectors' keys
    (the cavity footprint). *)
let simple_spec () =
  let s = Spec.create ~adt:"triset_rw" methods in
  Spec.add_sym s "take" "take" (ne a b);
  Spec.add_sym s "take" "add" (ne a b);
  Spec.add_sym s "take" "contains" (ne a b);
  Spec.add_sym s "add" "add" (ne a b);
  Spec.add_sym s "add" "contains" (ne a b);
  Spec.add_sym s "contains" "contains" Formula.True;
  s

(* ------------------------------------------------------------------ *)
(* Execution plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let exec (t : t) (name : string) (args : Value.t array) : Value.t =
  match (name, args) with
  | "take", [| Value.Int id |] -> Value.Bool (take t id)
  | "add", [| Value.Int id |] -> Value.Bool (add t id)
  | "contains", [| Value.Int id |] -> Value.Bool (contains t id)
  | _ ->
      Value.type_error "triset: bad invocation %s/%d" name (Array.length args)

(** Run one method through a conflict detector on behalf of [txn]; may
    raise {!Detector.Conflict}. *)
let invoke (det : Detector.t) (t : t) ~txn name id : bool =
  let meth =
    match name with
    | "take" -> m_take
    | "add" -> m_add
    | "contains" -> m_contains
    | _ -> invalid_arg ("triset: no method " ^ name)
  in
  let inv = Invocation.make ~txn meth [| Value.Int id |] in
  Value.to_bool
    (det.Detector.on_invoke inv (fun () -> exec t name inv.Invocation.args))

(** Rollback: a successful [take] is undone by re-adding the id, a
    successful [add] by taking it back out. *)
let undo (t : t) (inv : Invocation.t) =
  match (inv.Invocation.meth.name, inv.Invocation.ret, inv.Invocation.args) with
  | "take", Value.Bool true, [| Value.Int id |] -> ignore (add t id)
  | "add", Value.Bool true, [| Value.Int id |] -> ignore (take t id)
  | _ -> ()

let hooks (t : t) =
  Gatekeeper.hooks
    ~undo:(fun inv -> undo t inv)
    ~redo:(fun inv ->
      ignore (exec t inv.Invocation.meth.name inv.Invocation.args))
    (fun name _ -> raise (Formula.Unsupported ("triset sfun " ^ name)))

(* ------------------------------------------------------------------ *)
(* Replay model for the serializability oracle                         *)
(* ------------------------------------------------------------------ *)

let model () : History.model =
  let t = create () in
  {
    History.reset = (fun () -> clear t);
    apply = (fun name args -> exec t name (Array.of_list args));
    snapshot =
      (fun () -> Value.List (List.map (fun id -> Value.Int id) (elements t)));
  }
