(** The commutativity-condition logic {b L1} (paper Fig. 1), together with
    its two restrictions {b L2} (SIMPLE conditions, Fig. 6) and {b L3}
    (ONLINE-CHECKABLE conditions, Fig. 9).

    A formula [f_{m1,m2}(s1,v1,r1,s2,v2,r2)] talks about two method
    invocations: [m1] (the {e earlier} one, executed in abstract state
    [s1], with arguments [v1] and return value [r1]) and [m2] (the {e
    later} one, in state [s2]).  Reading: "[m1(v1)/r1] commutes with
    [m2(v2)/r2] if [f]". *)

(** Which of the two invocations a variable belongs to. *)
type side = M1 | M2

(** Which abstract state a state function is evaluated in. *)
type state = S1 | S2

type arith = Add | Sub | Mul | Div
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Terms of L1.  [Sfun (f, s, args)] is an uninterpreted function of an
    abstract state (e.g. union-find's [rep(s, x)]); [Vfun (f, args)] is a
    pure function of values only (e.g. the kd-tree metric [dist(a, b)] or a
    partition map [part(a)]).  Arguments of [Sfun]/[Vfun] must themselves
    be state-free (enforced by {!well_formed}). *)
type term =
  | Arg of side * int
  | Ret of side
  | Const of Value.t
  | Sfun of string * state * term list
  | Vfun of string * term list
  | Arith of arith * term * term

type t =
  | True
  | False
  | Cmp of cmp * term * term
  | Not of t
  | And of t * t
  | Or of t * t

(** {1 Constructors} *)

val arg1 : int -> term
val arg2 : int -> term
val ret1 : term
val ret2 : term
val const : Value.t -> term
val cbool : bool -> term
val cint : int -> term
val sfun : string -> state -> term list -> term
val vfun : string -> term list -> term
val eq : term -> term -> t
val ne : term -> term -> t
val lt : term -> term -> t
val gt : term -> term -> t

(** n-ary conjunction/disjunction ([conj [] = True], [disj [] = False]). *)
val conj : t list -> t

val disj : t list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

(** {1 Printing}

    The output of {!pp} is valid {!Spec_lang} formula syntax, so formulas
    round-trip through print/parse. *)

val pp_side : side Fmt.t
val pp_state : state Fmt.t
val pp_arith : arith Fmt.t
val pp_cmp : cmp Fmt.t
val pp_term : term Fmt.t
val pp : t Fmt.t
val to_string : t -> string

(** {1 Structural analysis} *)

val term_mentions_side : side -> term -> bool
val term_mentions_ret : side -> term -> bool
val term_has_sfun : term -> bool

(** All [Sfun] occurrences in a formula, as
    [(name, state, argument terms, canonical term)]. *)
val all_sfuns : t -> (string * state * term list * term) list

val mentions_side : side -> t -> bool

(** Does the formula mention the return value of the given side ([r1]/[r2]),
    including inside function arguments? *)
val mentions_ret : side -> t -> bool

(** Top-level disjuncts, left to right; a non-disjunction is its own single
    disjunct ([disjuncts f = [f]]). *)
val disjuncts : t -> t list

(** Arguments of [Sfun]/[Vfun] must be state-free, matching the grammars of
    L1/L3 where function arguments are plain values. *)
val well_formed : t -> bool

(** {1 Classification (paper §3)} *)

type cls = Simple | Online | General

val pp_cls : cls Fmt.t

(** A lock-key term: a state-free term mentioning variables of exactly one
    side (so the lock key can be computed from one invocation alone).
    Returns the side, or [None] for constants, mixed-side or
    state-dependent terms. *)
val lock_key_side : term -> side option

(** A SIMPLE clause is a disequality [t1 != t2] between a pure term of m1
    and a pure term of m2 (Def. 6 case iii; with [Vfun]-derived keys this
    also covers the partition-coarsened specs of paper §4.2).  Returns the
    (m1-term, m2-term) pair in normalized order. *)
val simple_clause : t -> (term * term) option

(** The {e equality footprint} of a condition: its top-level disjuncts of
    shape [t1 != t2] with [t1] a pure m1-side term and [t2] a pure m2-side
    term (each in normalized (m1, m2) order).  If the two key values of any
    such clause differ at runtime, the condition is trivially [true] and
    the invocations commute — the property footprint sharding exploits
    ({!Footprint}). *)
val footprint_clauses : t -> (term * term) list

(** Decompose a SIMPLE formula (L2) into its clauses; [None] if the formula
    is not SIMPLE.  [Some []] means the methods always commute.  Note that
    [False] is SIMPLE but returns [None] here — handle it separately. *)
val as_simple : t -> (term * term) list option

val is_simple : t -> bool

(** ONLINE-CHECKABLE (L3): every function of [s1] takes only m1 values as
    arguments, so its result can be logged when m1 executes. *)
val is_online : t -> bool

val classify : t -> cls

(** The [Sfun]s of state [S1] whose arguments mention only m1: the
    primitive-function set [C_m1] a forward gatekeeper logs when [m1]
    executes (paper §3.3.1). *)
val f1_functions : t -> (string * term list * term) list

(** The [Sfun]s of state [S1] whose arguments {e do} mention m2: evaluating
    these requires reconstructing [s1] (paper §3.3.2, general
    gatekeeping). *)
val rollback_functions : t -> (string * term list * term) list

(** {1 Evaluation} *)

(** Evaluation environment.  [sfun] receives the canonical [Sfun] term as a
    last argument so gatekeepers can answer [S1] queries from their logs. *)
type env = {
  arg : side -> int -> Value.t;
  ret : side -> Value.t;
  sfun : string -> state -> Value.t list -> term -> Value.t;
  vfun : string -> Value.t list -> Value.t;
}

exception Unsupported of string

(** Build an environment; omitted [sfun]/[vfun] raise {!Unsupported}. *)
val env :
  ?sfun:(string -> state -> Value.t list -> term -> Value.t) ->
  ?vfun:(string -> Value.t list -> Value.t) ->
  arg:(side -> int -> Value.t) ->
  ret:(side -> Value.t) ->
  unit ->
  env

(** The (total) arithmetic of L1 terms.  Integer operands stay integers;
    mixed or non-integer operands coerce to float via {!Value.to_float}.
    {b Division by zero is defined}: [Int x / Int 0 = Int 0] (the
    SMT-LIB-style total extension), and float division follows IEEE
    (inf/nan).  A condition must always produce a verdict — an exception
    escaping mid-check would leave a gatekeeper's protocol half-done — and
    the compiled fast path ({!Compile}) matches this function exactly. *)
val arith_op : arith -> Value.t -> Value.t -> Value.t

(** Comparison over values: [Eq]/[Ne] are {!Value.equal}, the orderings use
    {!Value.compare}. *)
val cmp_op : cmp -> Value.t -> Value.t -> bool

val eval_term : env -> term -> Value.t
val eval : env -> t -> bool

(** Staged compilation: [compile f env = eval env f], with the AST
    dispatch paid once instead of per evaluation.  Detectors evaluate the
    same handful of conditions millions of times, so this matters (see the
    bench ablation). *)
val compile : t -> env -> bool

val compile_term : term -> env -> Value.t

(** {1 Transformations} *)

(** Swap the roles of m1 and m2 in a {e state-free} formula.  Raises
    [Invalid_argument] on state-dependent formulas: their symmetric
    counterpart is ADT-specific and must be supplied explicitly (see
    {!Spec.add_directed}). *)
val mirror : t -> t

val is_state_free : t -> bool

(** Shallow logical simplification (constant folding on connectives). *)
val simplify : t -> t

val equal_term : term -> term -> bool
val equal : t -> t -> bool
