(** A textual language for commutativity specifications.

    The paper's specifications (Figs. 2–5, 7) are tables "m1 ; m2 commute
    if φ" with φ in the logic L1; this module gives them a concrete syntax
    so specifications can live in [.spec] files, be inspected by the
    [commlat] CLI, and round-trip through the pretty-printer
    ({!Formula.pp} output is valid formula syntax).  See the module
    implementation header and [examples/specs/] for the grammar and
    examples.

    Rules without the [directed] keyword are registered in both
    orientations ({!Spec.add_sym}), which requires the formula to be
    state-free; state-dependent conditions must say [directed] and give
    both orientations explicitly. *)

type pos = { line : int; col : int }

exception Parse_error of pos * string

val pp_error : (pos * string) Fmt.t

(** Parse a full specification.  [vfuns] supplies interpretations for the
    pure value functions the formulas mention (needed to {e run} detectors
    built from the spec; classification and lock synthesis work without
    them).  Reports unknown methods, out-of-range argument indices and
    malformed formulas with line/column positions. *)
val parse : ?vfuns:(string * (Value.t list -> Value.t)) list -> string -> Spec.t

(** Source record of one rule: the declared method pair, whether it was
    [directed], and the position of the rule's first token.  A rule without
    [directed] registers both orientations, so one [rule_info] covers the
    ordered pair {e and} its mirror. *)
type rule_info = {
  r_first : string;
  r_second : string;
  r_directed : bool;
  r_pos : pos;
}

(** Like {!parse}, additionally returning the source record of every rule —
    the [commlat lint] analysis pass uses these to position its
    diagnostics. *)
val parse_with_rules :
  ?vfuns:(string * (Value.t list -> Value.t)) list -> string -> Spec.t * rule_info list

(** Position of the rule covering the ordered pair ([first], [second]), if
    any; a [directed] rule matches exactly, an undirected one in either
    orientation. *)
val rule_pos : rule_info list -> first:string -> second:string -> pos option

(** Parse just a formula (the syntax accepted after [commute if]). *)
val parse_formula_string : string -> Formula.t

(** Print a specification in the textual form; {!parse} of the output
    reconstructs an equivalent specification. *)
val print_spec : Spec.t Fmt.t

val spec_to_string : Spec.t -> string
