(** Equality-footprint analysis for shard-keyed conflict detection.

    A condition's {e footprint clauses} ({!Formula.footprint_clauses}) are
    its top-level disjuncts of shape [t1 != t2] comparing a pure m1-side
    term against a pure m2-side term: if the two values differ at runtime
    the condition is trivially [true] and the invocations commute.
    {!analyze} turns that per-pair structure into a per-method {e shard
    key}: a pure argument term such that whenever two invocations of keyed
    methods have different key values, {e every} condition between them
    (either order) is discharged by a footprint clause on exactly those
    keys — so a hash-sharded active-invocation table may skip the check.

    Methods for which no such key exists (state-dependent conditions,
    conditions without disequality clauses, [false] pairs) are {e keyless};
    their invocations live in a dedicated overflow shard and are checked
    against everything, preserving soundness.

    Soundness of {!shard_of}: {!Value.hash} respects {!Value.equal}, so
    equal key values always land in the same shard; distinct shards
    therefore imply distinct key values, which imply commutativity against
    every keyed invocation outside the shard. *)

type t

(** Run the analysis.  Total: specs with no usable keys yield an all-keyless
    result (every invocation goes to the overflow shard, degenerating to
    unsharded behavior). *)
val analyze : Spec.t -> t

(** The chosen M1-side key term of a method, or [None] if keyless.  Key
    terms never mention the return value, so they are computable before the
    method executes. *)
val key_term : t -> string -> Formula.term option

val keyed : t -> string -> bool

(** No method has a key (sharding degenerates to a single overflow shard). *)
val all_keyless : t -> bool

(** Evaluate the key term of an invocation's method, or [None] if the
    method is keyless. *)
val key_value : t -> Invocation.t -> Value.t option

(** [shard_of t ~nshards inv] is the shard index in [\[0, nshards)] of a
    keyed invocation, or [None] for the overflow shard. *)
val shard_of : t -> nshards:int -> Invocation.t -> int option

val pp : t Fmt.t
