(** Virtual yield points for systematic concurrency testing.  See the
    interface for the contract; the implementation is a single global hook
    cell kept deliberately branch-cheap for the production (uninstalled)
    path. *)

type action =
  | Acquire of int
  | Release of int
  | Invoke of { det : string; inv : Invocation.t }
  | Commit of { det : string; txn : int }
  | Abort of { det : string; txn : int }
  | Read of int
  | Write of int

let pp_action ppf = function
  | Acquire g -> Fmt.pf ppf "acq(g%d)" g
  | Release g -> Fmt.pf ppf "rel(g%d)" g
  | Invoke { det; inv } -> Fmt.pf ppf "invoke %a [%s]" Invocation.pp inv det
  | Commit { det; txn = _ } -> Fmt.pf ppf "commit [%s]" det
  | Abort { det; txn = _ } -> Fmt.pf ppf "abort [%s]" det
  | Read c -> Fmt.pf ppf "read(c%d)" c
  | Write c -> Fmt.pf ppf "write(c%d)" c

(* One mutable cell, read on every Guard.lock/unlock in the process.  Not
   an [Atomic.t]: installation is only legal while single-domain (the
   virtual scheduler), and the uninstalled fast path must stay a plain
   load + branch. *)
let hook : (action -> unit) option ref = ref None

let install f =
  match !hook with
  | Some _ -> invalid_arg "Schedpoint.install: a hook is already installed"
  | None -> hook := Some f

let uninstall () = hook := None
let active () = Option.is_some !hook
let emit a = match !hook with None -> () | Some f -> f a
