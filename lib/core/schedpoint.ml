(** Virtual yield points for systematic concurrency testing.  See the
    interface for the contract; the implementation is a domain-local hook
    cell kept deliberately branch-cheap for the production (uninstalled)
    path. *)

type action =
  | Acquire of int
  | Release of int
  | Invoke of { det : string; inv : Invocation.t }
  | Commit of { det : string; txn : int }
  | Abort of { det : string; txn : int }
  | Read of int
  | Write of int

let pp_action ppf = function
  | Acquire g -> Fmt.pf ppf "acq(g%d)" g
  | Release g -> Fmt.pf ppf "rel(g%d)" g
  | Invoke { det; inv } -> Fmt.pf ppf "invoke %a [%s]" Invocation.pp inv det
  | Commit { det; txn = _ } -> Fmt.pf ppf "commit [%s]" det
  | Abort { det; txn = _ } -> Fmt.pf ppf "abort [%s]" det
  | Read c -> Fmt.pf ppf "read(c%d)" c
  | Write c -> Fmt.pf ppf "write(c%d)" c

(* One mutable cell per domain, read on every Guard.lock/unlock in the
   process.  Domain-local storage rather than a global ref so that several
   domains can each run their own virtual scheduler concurrently (the
   parallel DPOR explorer); within a domain installation stays
   unsynchronized and the uninstalled fast path is a DLS load + branch. *)
let hook : (action -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install f =
  match Domain.DLS.get hook with
  | Some _ -> invalid_arg "Schedpoint.install: a hook is already installed"
  | None -> Domain.DLS.set hook (Some f)

let uninstall () = Domain.DLS.set hook None
let active () = Option.is_some (Domain.DLS.get hook)
let emit a = match Domain.DLS.get hook with None -> () | Some f -> f a
