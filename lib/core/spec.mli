(** Commutativity specifications (paper §2.3).

    A specification maps each {e ordered} pair of methods [(m1, m2)] — read
    "[m1] was invoked first" — to a commutativity condition.  The paper
    writes specifications symmetrically and omits the mirrored halves "for
    brevity" (Fig. 2 footnote); here both orientations are stored
    explicitly, because for state-dependent conditions (union-find, Fig. 5)
    the two orientations are genuinely different formulas.

    Missing entries default to [false] — the sound choice: methods the
    author said nothing about are assumed to conflict. *)

type t = {
  adt : string;
  methods : Invocation.meth list;
  conditions : (string * string, Formula.t) Hashtbl.t;
  vfuns : (string * (Value.t list -> Value.t)) list;
      (** interpretations of the pure value functions ([dist], [part], …)
          used by this spec's formulas *)
}

val create : ?vfuns:(string * (Value.t list -> Value.t)) list -> adt:string -> Invocation.meth list -> t

val adt : t -> string
val methods : t -> Invocation.meth list

(** Look up a declared method; raises [Invalid_argument] if unknown. *)
val find_meth : t -> string -> Invocation.meth

(** Interpretation of a pure value function; raises {!Formula.Unsupported}
    if the spec does not define it. *)
val vfun : t -> string -> Value.t list -> Value.t

(** Register the condition for the ordered pair ([first], [second]).
    Raises on ill-formed formulas or unknown methods. *)
val add_directed : t -> first:string -> second:string -> Formula.t -> unit

(** Register a condition for both orientations.  Only valid for state-free
    formulas, whose mirror is a pure renaming; state-dependent conditions
    must use {!add_directed} in each orientation. *)
val add_sym : t -> string -> string -> Formula.t -> unit

(** The condition for "[first] executed, then [second]"; [Formula.False]
    when unspecified. *)
val cond : t -> first:string -> second:string -> Formula.t

(** All registered (ordered pair, condition) entries, in a deterministic
    order (sorted by method-name pair) — never raw [Hashtbl.fold] order,
    so JSON diagnostics and goldens cannot flake across hash-seed
    changes. *)
val all_conditions : t -> ((string * string) * Formula.t) list

(** Alias of {!all_conditions} (historical name). *)
val pairs : t -> ((string * string) * Formula.t) list

(** Interpretation of a pure value function, resolved once; [None] if the
    spec does not define it.  The spec compiler ({!Compile}) uses this at
    compile time instead of paying {!vfun}'s [List.assoc] per
    evaluation. *)
val vfun_impl : t -> string -> (Value.t list -> Value.t) option

(** Classification of a whole specification: the weakest scheme able to
    implement it (paper §3.4's hierarchy).  SIMPLE iff all conditions are;
    ONLINE-CHECKABLE iff all are at most online-checkable; GENERAL
    otherwise. *)
val classify : t -> Formula.cls

(** Check well-formedness of every condition; with [require_total], also
    require every ordered method pair to be covered. *)
val validate : ?require_total:bool -> t -> unit

(** [commutes t i1 i2] decides commutativity of two {e observed}
    invocations — the condition for "[i1] first" evaluated on their actual
    arguments and return values.  [Some true]: the pair commutes here
    (Definition 1: both orders are equivalent), so a schedule explorer may
    treat them as independent.  [Some false]: refuted on these values.
    [None]: undecidable from observations alone — the condition is
    state-dependent, mentions a return value flagged unknown via
    [~ret1_known]/[~ret2_known] (both default [true]), or uses an
    uninterpreted function.  Treat [None] as "may conflict". *)
val commutes :
  ?ret1_known:bool -> ?ret2_known:bool -> t -> Invocation.t -> Invocation.t ->
  bool option

val pp : t Fmt.t
