(** The commutativity-condition logic {b L1} (paper Fig. 1), together with
    its two restrictions {b L2} (SIMPLE conditions, Fig. 6) and {b L3}
    (ONLINE-CHECKABLE conditions, Fig. 9).

    A formula [f_{m1,m2}(s1,v1,r1,s2,v2,r2)] talks about two method
    invocations: [m1] (the {e earlier} one, executed in abstract state [s1],
    with arguments [v1] and return value [r1]) and [m2] (the {e later} one,
    in state [s2]).  Reading: "[m1(v1)/r1] commutes with [m2(v2)/r2] if
    [f]". *)

(** Which of the two invocations a variable belongs to. *)
type side = M1 | M2

(** Which abstract state a state function is evaluated in. *)
type state = S1 | S2

type arith = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Terms of L1.  [Sfun (f, s, args)] is an uninterpreted function of an
    abstract state (e.g. union-find's [rep(s, x)]); [Vfun (f, args)] is a
    pure function of values only (e.g. the kd-tree metric [dist(a, b)] or a
    partition map [part(a)]).  Arguments of [Sfun]/[Vfun] must themselves be
    state-free (enforced by {!well_formed}). *)
type term =
  | Arg of side * int
  | Ret of side
  | Const of Value.t
  | Sfun of string * state * term list
  | Vfun of string * term list
  | Arith of arith * term * term

type t =
  | True
  | False
  | Cmp of cmp * term * term
  | Not of t
  | And of t * t
  | Or of t * t

(* ------------------------------------------------------------------ *)
(* Constructors / sugar                                                *)
(* ------------------------------------------------------------------ *)

let arg1 i = Arg (M1, i)
let arg2 i = Arg (M2, i)
let ret1 = Ret M1
let ret2 = Ret M2
let const v = Const v
let cbool b = Const (Value.Bool b)
let cint i = Const (Value.Int i)
let sfun name state args = Sfun (name, state, args)
let vfun name args = Vfun (name, args)
let eq a b = Cmp (Eq, a, b)
let ne a b = Cmp (Ne, a, b)
let lt a b = Cmp (Lt, a, b)
let gt a b = Cmp (Gt, a, b)

let rec conj = function [] -> True | [ f ] -> f | f :: fs -> And (f, conj fs)
let rec disj = function [] -> False | [ f ] -> f | f :: fs -> Or (f, disj fs)

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_side ppf = function M1 -> Fmt.string ppf "1" | M2 -> Fmt.string ppf "2"
let pp_state ppf = function S1 -> Fmt.string ppf "s1" | S2 -> Fmt.string ppf "s2"

let pp_arith ppf = function
  | Add -> Fmt.string ppf "+"
  | Sub -> Fmt.string ppf "-"
  | Mul -> Fmt.string ppf "*"
  | Div -> Fmt.string ppf "/"

let pp_cmp ppf = function
  | Eq -> Fmt.string ppf "="
  | Ne -> Fmt.string ppf "!="
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="

let rec pp_term ppf = function
  | Arg (s, i) -> Fmt.pf ppf "v%a[%d]" pp_side s i
  | Ret s -> Fmt.pf ppf "r%a" pp_side s
  | Const v -> Value.pp ppf v
  | Sfun (f, s, args) ->
      Fmt.pf ppf "%s(%a%a)" f pp_state s
        Fmt.(list ~sep:nop (any ", " ++ pp_term))
        args
  | Vfun (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_term) args
  | Arith (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_term a pp_arith op pp_term b

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (c, a, b) -> Fmt.pf ppf "%a %a %a" pp_term a pp_cmp c pp_term b
  | Not f -> Fmt.pf ppf "!(%a)" pp f
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp a pp b

let to_string f = Fmt.str "%a" pp f

(* ------------------------------------------------------------------ *)
(* Structural analysis                                                 *)
(* ------------------------------------------------------------------ *)

let rec term_mentions_side side = function
  | Arg (s, _) | Ret s -> s = side
  | Const _ -> false
  | Sfun (_, _, args) | Vfun (_, args) ->
      List.exists (term_mentions_side side) args
  | Arith (_, a, b) -> term_mentions_side side a || term_mentions_side side b

let rec term_mentions_ret side = function
  | Ret s -> s = side
  | Arg _ | Const _ -> false
  | Sfun (_, _, args) | Vfun (_, args) -> List.exists (term_mentions_ret side) args
  | Arith (_, a, b) -> term_mentions_ret side a || term_mentions_ret side b

let rec term_has_sfun = function
  | Arg _ | Ret _ | Const _ -> false
  | Sfun _ -> true
  | Vfun (_, args) -> List.exists term_has_sfun args
  | Arith (_, a, b) -> term_has_sfun a || term_has_sfun b

let rec term_sfuns acc = function
  | Arg _ | Ret _ | Const _ -> acc
  | Sfun (name, st, args) as t ->
      let acc = List.fold_left term_sfuns acc args in
      (name, st, args, t) :: acc
  | Vfun (_, args) -> List.fold_left term_sfuns acc args
  | Arith (_, a, b) -> term_sfuns (term_sfuns acc a) b

let rec sfuns acc = function
  | True | False -> acc
  | Cmp (_, a, b) -> term_sfuns (term_sfuns acc a) b
  | Not f -> sfuns acc f
  | And (a, b) | Or (a, b) -> sfuns (sfuns acc a) b

(** All [Sfun] occurrences in a formula, innermost first. *)
let all_sfuns f = sfuns [] f

let mentions_side side f =
  let rec go = function
    | True | False -> false
    | Cmp (_, a, b) -> term_mentions_side side a || term_mentions_side side b
    | Not f -> go f
    | And (a, b) | Or (a, b) -> go a || go b
  in
  go f

let mentions_ret side f =
  let rec go = function
    | True | False -> false
    | Cmp (_, a, b) -> term_mentions_ret side a || term_mentions_ret side b
    | Not f -> go f
    | And (a, b) | Or (a, b) -> go a || go b
  in
  go f

(** Top-level disjuncts, left to right ([disjuncts (a \/ (b \/ c)) =
    [a; b; c]]); a non-disjunction is its own single disjunct. *)
let rec disjuncts = function
  | Or (a, b) -> disjuncts a @ disjuncts b
  | f -> [ f ]

(** Well-formedness: arguments of [Sfun] and [Vfun] must be state-free
    (matching the grammars of L1/L3, where function arguments are plain
    values). *)
let well_formed f =
  let rec term_ok ~nested = function
    | Arg _ | Ret _ | Const _ -> true
    | Sfun (_, _, args) -> (not nested) && List.for_all (term_ok ~nested:true) args
    | Vfun (_, args) -> List.for_all (term_ok ~nested) args
    | Arith (_, a, b) -> term_ok ~nested a && term_ok ~nested b
  in
  let rec go = function
    | True | False -> true
    | Cmp (_, a, b) -> term_ok ~nested:false a && term_ok ~nested:false b
    | Not f -> go f
    | And (a, b) | Or (a, b) -> go a && go b
  in
  go f

(* ------------------------------------------------------------------ *)
(* Classification: SIMPLE (L2) / ONLINE-CHECKABLE (L3) / GENERAL (L1)  *)
(* ------------------------------------------------------------------ *)

type cls = Simple | Online | General

let pp_cls ppf = function
  | Simple -> Fmt.string ppf "SIMPLE"
  | Online -> Fmt.string ppf "ONLINE-CHECKABLE"
  | General -> Fmt.string ppf "GENERAL"

(** A lock-key term: a state-free term mentioning variables of exactly one
    side (so the lock key can be computed from one invocation alone).
    Returns the side, or [None] if the term is constant or mixes sides or
    touches state. *)
let lock_key_side t =
  if term_has_sfun t then None
  else
    let m1 = term_mentions_side M1 t and m2 = term_mentions_side M2 t in
    match (m1, m2) with
    | true, false -> Some M1
    | false, true -> Some M2
    | _ -> None

(** A SIMPLE clause is a disequality [t1 != t2] between a pure term of m1
    and a pure term of m2 (Def. 6 case iii; with [Vfun]-derived keys this
    also covers the partition-coarsened specs of paper §4.2).  Returns the
    (m1-term, m2-term) pair in normalized order. *)
let simple_clause = function
  | Cmp (Ne, a, b) -> (
      match (lock_key_side a, lock_key_side b) with
      | Some M1, Some M2 -> Some (a, b)
      | Some M2, Some M1 -> Some (b, a)
      | _ -> None)
  | _ -> None

(** The {e equality footprint} of a condition: the top-level disjuncts of
    shape [t1 != t2] with [t1] a pure m1-side term and [t2] a pure m2-side
    term.  If any such clause's two key values differ at runtime the whole
    condition is trivially [true] — the invocations commute — so
    invocations whose keys hash to different shards can never conflict
    through this condition.  This is the static analysis behind
    {!Footprint} and the sharded gatekeepers. *)
let footprint_clauses f = List.filter_map simple_clause (disjuncts f)

(** Decompose a SIMPLE formula (L2) into its clauses; [None] if the formula
    is not SIMPLE.  [Some []] means the methods always commute ([true]). *)
let rec as_simple = function
  | True -> Some []
  | False -> None (* handled separately: [false] is SIMPLE but has no clauses *)
  | Cmp _ as c -> Option.map (fun cl -> [ cl ]) (simple_clause c)
  | And (a, b) -> (
      match (as_simple a, as_simple b) with
      | Some ca, Some cb -> Some (ca @ cb)
      | _ -> None)
  | Not _ | Or _ -> None

let is_simple = function False -> true | f -> Option.is_some (as_simple f)

(** ONLINE-CHECKABLE (L3): every function of [s1] takes only m1 values as
    arguments, so its result can be logged when m1 executes. *)
let is_online f =
  well_formed f
  && List.for_all
       (fun (_, st, args, _) ->
         match st with
         | S2 -> true
         | S1 -> not (List.exists (term_mentions_side M2) args))
       (all_sfuns f)

let classify f = if is_simple f then Simple else if is_online f then Online else General

(** The [Sfun]s of state [S1] whose arguments mention only m1: these form
    the primitive-function set [C_m1] that a forward gatekeeper must log
    when [m1] executes (paper §3.3.1). *)
let f1_functions f =
  all_sfuns f
  |> List.filter (fun (_, st, args, _) ->
         st = S1 && not (List.exists (term_mentions_side M2) args))
  |> List.map (fun (name, _, args, t) -> (name, args, t))

(** The [Sfun]s of state [S1] whose arguments {e do} mention m2: evaluating
    these requires rolling the data structure back to [s1] (paper §3.3.2,
    general gatekeeping). *)
let rollback_functions f =
  all_sfuns f
  |> List.filter (fun (_, st, args, _) ->
         st = S1 && List.exists (term_mentions_side M2) args)
  |> List.map (fun (name, _, args, t) -> (name, args, t))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Evaluation environment.  [sfun] receives the canonical [Sfun] term as a
    last resort key so gatekeepers can answer [S1] queries from their logs. *)
type env = {
  arg : side -> int -> Value.t;
  ret : side -> Value.t;
  sfun : string -> state -> Value.t list -> term -> Value.t;
  vfun : string -> Value.t list -> Value.t;
}

exception Unsupported of string

let env ?(sfun = fun name _ _ _ -> raise (Unsupported name))
    ?(vfun = fun name _ -> raise (Unsupported name)) ~arg ~ret () =
  { arg; ret; sfun; vfun }

(* Arithmetic is total.  Integer division by zero is defined as 0 (the
   SMT-LIB-style total extension): a condition must always produce a
   verdict — an exception escaping mid-check would leave a gatekeeper's
   protocol half-done — and the compiled fast path (Compile) must agree
   with this interpreter bit-for-bit.  Float division follows IEEE
   (inf/nan), which is likewise total. *)
let arith_op op a b =
  match (op, a, b) with
  | Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Div, Value.Int x, Value.Int y -> Value.Int (if y = 0 then 0 else x / y)
  | Add, _, _ -> Value.Float (Value.to_float a +. Value.to_float b)
  | Sub, _, _ -> Value.Float (Value.to_float a -. Value.to_float b)
  | Mul, _, _ -> Value.Float (Value.to_float a *. Value.to_float b)
  | Div, _, _ -> Value.Float (Value.to_float a /. Value.to_float b)

let cmp_op op a b =
  match op with
  | Eq -> Value.equal a b
  | Ne -> not (Value.equal a b)
  | Lt -> Value.compare a b < 0
  | Le -> Value.compare a b <= 0
  | Gt -> Value.compare a b > 0
  | Ge -> Value.compare a b >= 0

let rec eval_term env = function
  | Arg (s, i) -> env.arg s i
  | Ret s -> env.ret s
  | Const v -> v
  | Sfun (name, st, args) as t ->
      env.sfun name st (List.map (eval_term env) args) t
  | Vfun (name, args) -> env.vfun name (List.map (eval_term env) args)
  | Arith (op, a, b) -> arith_op op (eval_term env a) (eval_term env b)

let rec eval env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> cmp_op op (eval_term env a) (eval_term env b)
  | Not f -> not (eval env f)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Staged compilation of formulas to closures: the AST is traversed once,
   producing a function of the environment.  Detectors evaluate the same
   handful of conditions millions of times, so removing the interpretive
   dispatch matters (see the bench ablation). *)

let rec compile_term (t : term) : env -> Value.t =
  match t with
  | Arg (s, i) -> fun e -> e.arg s i
  | Ret s -> fun e -> e.ret s
  | Const v -> fun _ -> v
  | Sfun (name, st, args) ->
      let cargs = List.map compile_term args in
      fun e -> e.sfun name st (List.map (fun c -> c e) cargs) t
  | Vfun (name, args) ->
      let cargs = List.map compile_term args in
      fun e -> e.vfun name (List.map (fun c -> c e) cargs)
  | Arith (op, a, b) ->
      let ca = compile_term a and cb = compile_term b in
      fun e -> arith_op op (ca e) (cb e)

(** [compile f] is semantically [fun env -> eval env f], with the AST
    dispatch paid once instead of per evaluation. *)
let rec compile (f : t) : env -> bool =
  match f with
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (Eq, a, b) ->
      let ca = compile_term a and cb = compile_term b in
      fun e -> Value.equal (ca e) (cb e)
  | Cmp (Ne, a, b) ->
      let ca = compile_term a and cb = compile_term b in
      fun e -> not (Value.equal (ca e) (cb e))
  | Cmp (op, a, b) ->
      let ca = compile_term a and cb = compile_term b in
      fun e -> cmp_op op (ca e) (cb e)
  | Not f ->
      let c = compile f in
      fun e -> not (c e)
  | And (a, b) ->
      let ca = compile a and cb = compile b in
      fun e -> ca e && cb e
  | Or (a, b) ->
      let ca = compile a and cb = compile b in
      fun e -> ca e || cb e

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

(** Swap the roles of m1 and m2 in a {e state-free} formula.  Raises
    [Invalid_argument] if the formula mentions abstract state: the symmetric
    counterpart of a state-dependent condition is ADT-specific and must be
    supplied explicitly (see {!Spec}). *)
let mirror f =
  let rec term = function
    | Arg (M1, i) -> Arg (M2, i)
    | Arg (M2, i) -> Arg (M1, i)
    | Ret M1 -> Ret M2
    | Ret M2 -> Ret M1
    | Const _ as t -> t
    | Sfun _ -> invalid_arg "Formula.mirror: state-dependent formula"
    | Vfun (name, args) -> Vfun (name, List.map term args)
    | Arith (op, a, b) -> Arith (op, term a, term b)
  in
  let rec go = function
    | True -> True
    | False -> False
    | Cmp (op, a, b) -> Cmp (op, term a, term b)
    | Not f -> Not (go f)
    | And (a, b) -> And (go a, go b)
    | Or (a, b) -> Or (go a, go b)
  in
  go f

let is_state_free f =
  let rec term = function
    | Arg _ | Ret _ | Const _ -> true
    | Sfun _ -> false
    | Vfun (_, args) -> List.for_all term args
    | Arith (_, a, b) -> term a && term b
  in
  let rec go = function
    | True | False -> true
    | Cmp (_, a, b) -> term a && term b
    | Not f -> go f
    | And (a, b) | Or (a, b) -> go a && go b
  in
  go f

(** Shallow logical simplification (constant folding on connectives). *)
let rec simplify = function
  | And (a, b) -> (
      match (simplify a, simplify b) with
      | False, _ | _, False -> False
      | True, f | f, True -> f
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (simplify a, simplify b) with
      | True, _ | _, True -> True
      | False, f | f, False -> f
      | a, b -> Or (a, b))
  | Not f -> (
      match simplify f with True -> False | False -> True | f -> Not f)
  | f -> f

let equal_term : term -> term -> bool = Stdlib.( = )

let rec equal (a : t) (b : t) =
  match (a, b) with
  | True, True | False, False -> true
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      o1 = o2 && equal_term a1 a2 && equal_term b1 b2
  | Not a, Not b -> equal a b
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      equal a1 a2 && equal b1 b2
  | _ -> false
