(** Gatekeeping (paper §3.3): conflict detection by logging method
    invocations and evaluating commutativity conditions directly.

    A gatekeeper intercepts every method invocation [m(v)]: it evaluates
    the primitive-function set [C_m] into a result log, executes the
    method, checks the condition [f_{ma,m}] against every active invocation
    [ma] of other transactions (reading [ma]'s side from its log), and
    raises {!Detector.Conflict} if any condition is false.  The whole
    sequence is atomic (one mutex per gatekeeper).

    {b Forward} gatekeepers ({!forward}) require every condition to be
    ONLINE-CHECKABLE (logic L3).  {b General} gatekeepers ({!general})
    accept any L1 condition: functions of [s1] that need m2-information
    (union-find's [rep(s1, c)]) are evaluated either by rolling the data
    structure back — one batched reverse-chronological undo/redo sweep per
    incoming invocation — or, when the ADT provides [sfun_at], by querying
    a partially persistent representation directly.

    {b Footprint sharding} ({!forward_sharded}, {!general_sharded}): the
    active-invocation table is split into hash shards keyed by the
    {!Footprint} analysis, plus one overflow shard for keyless methods.  A
    keyed incoming invocation is checked only against its own shard and the
    overflow shard — the analysis guarantees invocations in other keyed
    shards commute with it.  When the spec additionally needs no rollback
    and every condition is state-free, the shards are {e striped} under
    per-shard {!Guard.t}s, so same-ADT-different-key invocations no longer
    serialize on a single gatekeeper mutex.

    Most callers should construct detectors through {!Commlat_runtime}'s
    [Protect] module rather than these low-level entry points. *)

(** How a gatekeeper talks to the data structure it protects. *)
type hooks = {
  sfun : string -> Value.t list -> Value.t;
      (** evaluate an abstract-state function ([rep], [rank], [loser], …)
          on the {e current} state *)
  sfun_at : (int -> string -> Value.t list -> Value.t) option;
      (** [sfun_at seq name args]: evaluate a state function in the state
          just {e before} the invocation stamped [seq] executed, {b without
          rolling back} — for partially-persistent ADTs such as
          {!Commlat_adts.Union_find_versioned}.  When provided, the general
          gatekeeper uses it instead of the undo/redo sweep. *)
  undo : Invocation.t -> unit;
      (** restore the state to just before this invocation ran (general
          gatekeeping only; [forward] never calls it) *)
  redo : Invocation.t -> unit;  (** re-apply an undone invocation *)
  forget : Invocation.t -> unit;
      (** the gatekeeper will never undo this invocation again: drop any
          bookkeeping (e.g. concrete write logs) *)
}

(** Build hooks; omitted [undo]/[redo] raise if invoked, [forget] defaults
    to a no-op. *)
val hooks :
  ?undo:(Invocation.t -> unit) ->
  ?redo:(Invocation.t -> unit) ->
  ?forget:(Invocation.t -> unit) ->
  ?sfun_at:(int -> string -> Value.t list -> Value.t) ->
  (string -> Value.t list -> Value.t) ->
  hooks

(** Gatekeeper state (exposed for instrumentation). *)
type t

(** Number of state-reconstruction sweeps performed so far. *)
val rollback_count : t -> int

(** The gatekeeper's observability registry: [invocations], [checks],
    [conflicts], [log_hits], [rollback_hits], [rollbacks],
    [sfun_at_queries], the [sweep_depth] distribution and per-method-pair
    [abort_cause] labels.  Sharded gatekeepers additionally export
    [shard_inserts], [overflow_inserts], [checks_avoided] and per-shard
    [shard_NN_inserts] counters.  The same data is exported through the
    detector's [snapshot] hook. *)
val obs : t -> Commlat_obs.Obs.t

(** The footprint analysis backing a sharded gatekeeper ([None] when
    unsharded). *)
val footprint : t -> Footprint.t option

(** Whether the gatekeeper runs the striped (per-shard guard) protocol
    rather than a single global guard. *)
val striped : t -> bool

(** Whether the gatekeeper was built with [~compiled:true] (state-free
    conditions check through {!Compile}'s zero-environment closures). *)
val is_compiled : t -> bool

(** Batch log scan: check one {e executed} incoming invocation against
    every active invocation it can conflict with — its own shard plus the
    overflow shard when keyed (the footprint's shard-disjointness
    discharges the other keyed shards), all shards otherwise — in a
    single pass with no intermediate list, raising {!Detector.Conflict}
    on the first refutation.  This is the scan the forward and striped
    invoke paths run after [exec]; it is exposed for tests and for
    embedders that manage their own entry insertion.  The server
    (lib/server/engine.ml) also uses it as a {e zero-insertion conflict
    probe}: a method that is effect-free both abstractly and concretely
    executes under the guards, stamps its return, and batch-checks — if
    the scan passes, the read commits without ever entering the log,
    which is sound because a committed invocation is not required to
    stay visible to later conflict checks.  Preconditions: the caller
    holds the gatekeeper's guard(s) for the scanned shards, and no
    condition involving [inv]'s method needs state reconstruction (always
    true for forward/striped gatekeepers). *)
val batch_check : t -> Invocation.t -> unit

(** The [C_m] log set of a method: the s1-functions (name, argument terms)
    recorded on every invocation of that method.  Order is unspecified. *)
val cm_functions : t -> string -> (string * Formula.term list) list

(** {1 Live-state transfer}

    Support for hot-swapping one gatekeeper for another over the same ADT
    (the server's adaptive controller; see DESIGN.md §12).  The swap
    protocol is: quiesce or hold every guard of the {e old} gatekeeper,
    read {!active_invocations}, build the successor, {!adopt} the list,
    install the successor's detector. *)

(** Every entry in the active-invocation table, in seq (execution) order.
    Takes the gatekeeper's guards, so it is safe to call concurrently —
    though a meaningful swap reads it at a point where the caller knows no
    new invocations can race in (e.g. the server's epoch barrier, where
    every open transaction has just committed and the list is empty). *)
val active_invocations : t -> Invocation.t list

(** Re-home already-executed invocations into this gatekeeper: restamp
    their [seq] (preserving relative order), rebuild their [C_m] logs
    against the current state, and insert them into the active table (and
    mutation log, for [rollback_log] methods).  Sound when the adopted
    methods' log sets are empty or the underlying state has not mutated
    since they executed — trivially true for the empty list the server's
    epoch barrier produces, and for state-free (forward/striped) specs. *)
val adopt : t -> Invocation.t list -> unit

(** Footprint-sharded forward gatekeeper ([nshards] defaults to 16).  When
    every condition is state-free the shards are striped under per-shard
    guards; otherwise sharding only narrows the check scan.  Equivalent to
    {!forward} in the conflicts it reports; [Footprint.all_keyless] specs
    degenerate to a single overflow shard (= unsharded behavior). *)
val forward_sharded :
  ?nshards:int ->
  ?compiled:bool ->
  ?obs:bool ->
  hooks:hooks ->
  Spec.t ->
  Detector.t * t

(** Footprint-sharded general gatekeeper: the check scan narrows to own
    shard + overflow, but a single guard is kept — past-state
    reconstruction needs a globally ordered mutation log. *)
val general_sharded :
  ?nshards:int ->
  ?compiled:bool ->
  ?obs:bool ->
  hooks:hooks ->
  Spec.t ->
  Detector.t * t

(** Unsharded single-scheme constructors.  These are implementation detail
    of {!Commlat_runtime.Protect} (schemes [Forward_gk] / [General_gk]) and
    of this library's own tests; application code should construct
    detectors through [Protect.protect] / [Protect.protect_gatekeeper],
    which is why they no longer appear at the module's top level. *)
module Private : sig
  (** Forward gatekeeper (paper §3.3.1).  Raises [Invalid_argument] if the
      spec has non-ONLINE-CHECKABLE conditions; [hooks.undo]/[redo] are
      never used, so bare [hooks sfun] suffices.  [?obs] defaults to the
      [COMMLAT_OBS] environment toggle; [?compiled] (default [false]) swaps
      state-free conditions to {!Compile}d zero-allocation closures. *)
  val forward :
    ?compiled:bool -> ?obs:bool -> hooks:hooks -> Spec.t -> Detector.t * t

  (** General gatekeeper (paper §3.3.2).  Accepts any L1 spec; needs
      working [undo]/[redo] hooks (or [sfun_at]). *)
  val general :
    ?compiled:bool -> ?obs:bool -> hooks:hooks -> Spec.t -> Detector.t * t
end
