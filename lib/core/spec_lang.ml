(** A textual language for commutativity specifications.

    The paper's specifications (Figs. 2–5, 7) are tables "m1 ; m2 commute
    if φ" with φ in the logic L1.  This module gives them a concrete
    syntax so specifications can live in [.spec] files, be checked by the
    CLI, and round-trip through the pretty-printer ({!Formula.pp} output is
    valid formula syntax).

    {v
    # the paper's Fig. 2
    spec set
    methods add/1 mut, remove/1 mut, contains/1

    add ; add           commute if v1[0] != v2[0] \/ (r1 = false /\ r2 = false)
    add ; remove        commute if v1[0] != v2[0] \/ (r1 = false /\ r2 = false)
    add ; contains      commute if v1[0] != v2[0] \/ r1 = false
    remove ; remove     commute if v1[0] != v2[0] \/ (r1 = false /\ r2 = false)
    remove ; contains   commute if v1[0] != v2[0] \/ r1 = false
    contains ; contains commute always
    v}

    Grammar (comments run [#] to end of line):

    {v
    spec      ::= "spec" IDENT methods rule*
    methods   ::= "methods" meth ("," meth)*
    meth      ::= IDENT "/" INT ["mut"]
    rule      ::= IDENT ";" IDENT "commute"
                  ("always" | "never" | "if" formula) ["directed"]
    formula   ::= conj (OR conj)*        OR is backslash-slash
    conj      ::= atom (AND atom)*       AND is slash-backslash
    atom      ::= "!" atom | "(" formula ")" | "true" | "false"
                | term cmp term
    cmp       ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    term      ::= factor (("+" | "-") factor)*
    factor    ::= prim (("*" | "/") prim)*
    prim      ::= "v1" "[" INT "]" | "v2" "[" INT "]" | "r1" | "r2"
                | INT | FLOAT | "(" term ")"
                | IDENT "(" ("s1" | "s2") ("," term)* ")"   state function
                | IDENT "(" term ("," term)* ")"            value function
    v}

    Undeclared method names, arity violations and malformed formulas are
    reported with line/column positions.  Rules without [directed] are
    registered in both orientations ({!Spec.add_sym}), which requires the
    formula to be state-free; state-dependent conditions must say
    [directed] and give both orientations explicitly, exactly as the
    library API requires. *)

type pos = { line : int; col : int }

exception Parse_error of pos * string

let parse_error pos fmt = Format.kasprintf (fun m -> raise (Parse_error (pos, m))) fmt

let pp_error ppf (pos, msg) = Fmt.pf ppf "line %d, column %d: %s" pos.line pos.col msg

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | SEMI
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | AND (* /\ *)
  | OR (* \/ *)
  | BANG
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACK -> Fmt.string ppf "'['"
  | RBRACK -> Fmt.string ppf "']'"
  | COMMA -> Fmt.string ppf "','"
  | SEMI -> Fmt.string ppf "';'"
  | SLASH -> Fmt.string ppf "'/'"
  | EQ -> Fmt.string ppf "'='"
  | NE -> Fmt.string ppf "'!='"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | AND -> Fmt.string ppf "'/\\'"
  | OR -> Fmt.string ppf "'\\/'"
  | BANG -> Fmt.string ppf "'!'"
  | EOF -> Fmt.string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize the whole input; each token carries its position. *)
let tokenize (src : string) : (token * pos) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let pos () = { line = !line; col = !i - !bol + 1 } in
  let push tok p = toks := (tok, p) :: !toks in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = '\n' then (
      incr line;
      incr i;
      bol := !i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then (
      while !i < n && src.[!i] <> '\n' do
        incr i
      done)
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (IDENT (String.sub src start (!i - start))) p)
    else if is_digit c then (
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' then (
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push (FLOAT (float_of_string (String.sub src start (!i - start)))) p)
      else push (INT (int_of_string (String.sub src start (!i - start)))) p)
    else
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "!=" ->
          push NE p;
          i := !i + 2
      | "<=" ->
          push LE p;
          i := !i + 2
      | ">=" ->
          push GE p;
          i := !i + 2
      | "/\\" ->
          push AND p;
          i := !i + 2
      | "\\/" ->
          push OR p;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> push LPAREN p
          | ')' -> push RPAREN p
          | '[' -> push LBRACK p
          | ']' -> push RBRACK p
          | ',' -> push COMMA p
          | ';' -> push SEMI p
          | '/' -> push SLASH p
          | '=' -> push EQ p
          | '<' -> push LT p
          | '>' -> push GT p
          | '+' -> push PLUS p
          | '-' -> push MINUS p
          | '*' -> push STAR p
          | '!' -> push BANG p
          | _ -> parse_error p "unexpected character %C" c)
  done;
  List.rev ((EOF, pos ()) :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the token list                       *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : (token * pos) list }

let peek s = match s.toks with [] -> (EOF, { line = 0; col = 0 }) | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let next s =
  let t = peek s in
  advance s;
  t

let expect s tok what =
  let got, p = next s in
  if got <> tok then parse_error p "expected %s, found %a" what pp_token got

let expect_ident s what =
  match next s with
  | IDENT x, _ -> x
  | got, p -> parse_error p "expected %s, found %a" what pp_token got

let expect_int s what =
  match next s with
  | INT x, _ -> x
  | got, p -> parse_error p "expected %s, found %a" what pp_token got

(* ---- terms ---- *)

let rec parse_formula s : Formula.t =
  let left = parse_conj s in
  match peek s with
  | OR, _ ->
      advance s;
      Formula.Or (left, parse_formula s)
  | _ -> left

and parse_conj s : Formula.t =
  let left = parse_atom s in
  match peek s with
  | AND, _ ->
      advance s;
      Formula.And (left, parse_conj s)
  | _ -> left

and parse_atom s : Formula.t =
  match peek s with
  | BANG, _ ->
      advance s;
      Formula.Not (parse_atom s)
  | LPAREN, _ -> (
      (* parenthesized formula or parenthesized term; try formula first by
         scanning: a formula must eventually contain a comparison or
         connective before its closing paren balances.  Simpler: parse a
         term, and if the next token is a comparison finish a comparison,
         else the parenthesized expression must itself be a formula —
         re-parse.  We implement the standard trick: parse as formula with
         backtracking. *)
      let saved = s.toks in
      advance s;
      match parse_formula s with
      | f -> (
          match peek s with
          | RPAREN, _ -> (
              advance s;
              (* could still be the left operand of a comparison if f was
                 actually a term — but terms are not formulas in this
                 grammar, so a '(' formula ')' followed by a comparison
                 operator means the input really was a parenthesized term;
                 backtrack. *)
              match peek s with
              | (EQ | NE | LT | LE | GT | GE), _ ->
                  s.toks <- saved;
                  parse_cmp s
              | _ -> f)
          | _, _ ->
              s.toks <- saved;
              parse_cmp s)
      | exception Parse_error _ ->
          s.toks <- saved;
          parse_cmp s)
  | IDENT ("true" | "false"), _ -> (
      (* "true"/"false" are formulas on their own but boolean constants
         inside comparisons ("true != r1"): look one token ahead *)
      let saved = s.toks in
      let which = match next s with IDENT w, _ -> w | _ -> assert false in
      match peek s with
      | (EQ | NE | LT | LE | GT | GE | PLUS | MINUS | STAR | SLASH), _ ->
          s.toks <- saved;
          parse_cmp s
      | _ -> if which = "true" then Formula.True else Formula.False)
  | _ -> parse_cmp s

and parse_cmp s : Formula.t =
  let l = parse_term s in
  let op, p = next s in
  let cmp =
    match op with
    | EQ -> Formula.Eq
    | NE -> Formula.Ne
    | LT -> Formula.Lt
    | LE -> Formula.Le
    | GT -> Formula.Gt
    | GE -> Formula.Ge
    | got -> parse_error p "expected a comparison operator, found %a" pp_token got
  in
  let r = parse_term s in
  Formula.Cmp (cmp, l, r)

and parse_term s : Formula.term =
  let left = parse_factor s in
  match peek s with
  | PLUS, _ ->
      advance s;
      Formula.Arith (Formula.Add, left, parse_term s)
  | MINUS, _ ->
      advance s;
      Formula.Arith (Formula.Sub, left, parse_term s)
  | _ -> left

and parse_factor s : Formula.term =
  let left = parse_prim s in
  match peek s with
  | STAR, _ ->
      advance s;
      Formula.Arith (Formula.Mul, left, parse_factor s)
  | SLASH, _ ->
      advance s;
      Formula.Arith (Formula.Div, left, parse_factor s)
  | _ -> left

and parse_prim s : Formula.term =
  match next s with
  | INT i, _ -> Formula.Const (Value.Int i)
  | FLOAT f, _ -> Formula.Const (Value.Float f)
  | MINUS, _ -> (
      match next s with
      | INT i, _ -> Formula.Const (Value.Int (-i))
      | FLOAT f, _ -> Formula.Const (Value.Float (-.f))
      | got, p -> parse_error p "expected a number after '-', found %a" pp_token got)
  | LPAREN, _ ->
      let t = parse_term s in
      expect s RPAREN "')'";
      t
  | IDENT "r1", _ -> Formula.Ret Formula.M1
  | IDENT "r2", _ -> Formula.Ret Formula.M2
  | IDENT "v1", _ ->
      expect s LBRACK "'['";
      let i = expect_int s "argument index" in
      expect s RBRACK "']'";
      Formula.Arg (Formula.M1, i)
  | IDENT "v2", _ ->
      expect s LBRACK "'['";
      let i = expect_int s "argument index" in
      expect s RBRACK "']'";
      Formula.Arg (Formula.M2, i)
  | IDENT "true", _ -> Formula.Const (Value.Bool true)
  | IDENT "false", _ -> Formula.Const (Value.Bool false)
  | IDENT "None", _ -> Formula.Const (Value.Opt None)
  | IDENT name, p -> (
      match peek s with
      | LPAREN, _ -> (
          advance s;
          (* state function if the first argument is s1/s2 *)
          match peek s with
          | IDENT "s1", _ | IDENT "s2", _ ->
              let state =
                match next s with
                | IDENT "s1", _ -> Formula.S1
                | _ -> Formula.S2
              in
              let args = parse_more_args s [] in
              Formula.Sfun (name, state, args)
          | _ ->
              let first = parse_term s in
              let args = parse_more_args s [ first ] in
              Formula.Vfun (name, args))
      | _ -> parse_error p "unknown variable %S (use v1[i], v2[i], r1, r2)" name)
  | got, p -> parse_error p "expected a term, found %a" pp_token got

and parse_more_args s acc : Formula.term list =
  match next s with
  | RPAREN, _ -> List.rev acc
  | COMMA, _ ->
      let t = parse_term s in
      parse_more_args s (t :: acc)
  | got, p -> parse_error p "expected ',' or ')', found %a" pp_token got

(* ---- spec structure ---- *)

let parse_methods s =
  expect s (IDENT "methods") "'methods'";
  let rec one acc =
    let name = expect_ident s "method name" in
    expect s SLASH "'/'";
    let arity = expect_int s "arity" in
    let mutates =
      match peek s with
      | IDENT "mut", _ ->
          advance s;
          true
      | _ -> false
    in
    let acc = Invocation.meth ~mutates name arity :: acc in
    match peek s with
    | COMMA, _ ->
        advance s;
        one acc
    | _ -> List.rev acc
  in
  one []

type rule = {
  m1 : string;
  m2 : string;
  cond : Formula.t;
  directed : bool;
  rule_pos : pos;
}

let parse_rule s : rule =
  let _, rule_pos = peek s in
  let m1 = expect_ident s "method name" in
  expect s SEMI "';'";
  let m2 = expect_ident s "method name" in
  expect s (IDENT "commute") "'commute'";
  let cond =
    match next s with
    | IDENT "always", _ -> Formula.True
    | IDENT "never", _ -> Formula.False
    | IDENT "if", _ -> parse_formula s
    | got, p -> parse_error p "expected 'always', 'never' or 'if', found %a" pp_token got
  in
  let directed =
    match peek s with
    | IDENT "directed", _ ->
        advance s;
        true
    | _ -> false
  in
  { m1; m2; cond; directed; rule_pos }

(** Source record of one rule of a parsed specification: the declared
    method pair, whether it was [directed], and the position of the rule's
    first token.  A rule without [directed] registers both orientations, so
    one [rule_info] covers the pair (first, second) {e and} its mirror. *)
type rule_info = {
  r_first : string;
  r_second : string;
  r_directed : bool;
  r_pos : pos;
}

(** Position of the rule covering the ordered pair ([first], [second]),
    if any: a [directed] rule matches exactly, an undirected one in either
    orientation. *)
let rule_pos (rules : rule_info list) ~first ~second =
  List.find_map
    (fun r ->
      if
        (r.r_first = first && r.r_second = second)
        || ((not r.r_directed) && r.r_first = second && r.r_second = first)
      then Some r.r_pos
      else None)
    rules

(** Parse a full specification, also returning the source record of every
    rule (used by the [commlat lint] analysis pass to attach positions to
    its diagnostics).  [vfuns] supplies interpretations for the pure value
    functions the formulas mention (needed to {e run} detectors built from
    the spec; classification and lock synthesis work without them). *)
let parse_with_rules ?(vfuns = []) (src : string) : Spec.t * rule_info list =
  let s = { toks = tokenize src } in
  expect s (IDENT "spec") "'spec'";
  let adt = expect_ident s "specification name" in
  let methods = parse_methods s in
  let spec = Spec.create ~vfuns ~adt methods in
  let infos = ref [] in
  let has m = List.exists (fun (x : Invocation.meth) -> x.name = m) methods in
  let rec rules () =
    match peek s with
    | EOF, _ -> ()
    | _ ->
        let r = parse_rule s in
        if not (has r.m1) then parse_error r.rule_pos "unknown method %S" r.m1;
        if not (has r.m2) then parse_error r.rule_pos "unknown method %S" r.m2;
        (* arity check: argument indices must be in range *)
        let check_arity side m =
          let meth = List.find (fun (x : Invocation.meth) -> x.name = m) methods in
          let rec term = function
            | Formula.Arg (sd, i) when sd = side && i >= meth.Invocation.arity ->
                parse_error r.rule_pos
                  "argument index %d out of range for %s/%d" i m
                  meth.Invocation.arity
            | Formula.Arg _ | Formula.Ret _ | Formula.Const _ -> ()
            | Formula.Sfun (_, _, args) | Formula.Vfun (_, args) -> List.iter term args
            | Formula.Arith (_, a, b) ->
                term a;
                term b
          in
          let rec go = function
            | Formula.True | Formula.False -> ()
            | Formula.Cmp (_, a, b) ->
                term a;
                term b
            | Formula.Not f -> go f
            | Formula.And (a, b) | Formula.Or (a, b) ->
                go a;
                go b
          in
          go r.cond
        in
        check_arity Formula.M1 r.m1;
        check_arity Formula.M2 r.m2;
        (if r.directed then Spec.add_directed spec ~first:r.m1 ~second:r.m2 r.cond
         else
           try Spec.add_sym spec r.m1 r.m2 r.cond
           with Invalid_argument _ ->
             parse_error r.rule_pos
               "state-dependent condition: add 'directed' and give both \
                orientations explicitly");
        infos :=
          { r_first = r.m1; r_second = r.m2; r_directed = r.directed; r_pos = r.rule_pos }
          :: !infos;
        rules ()
  in
  rules ();
  (spec, List.rev !infos)

let parse ?vfuns (src : string) : Spec.t = fst (parse_with_rules ?vfuns src)

(** Parse just a formula (the syntax accepted after [commute if]). *)
let parse_formula_string (src : string) : Formula.t =
  let s = { toks = tokenize src } in
  let f = parse_formula s in
  (match peek s with
  | EOF, _ -> ()
  | got, p -> parse_error p "trailing input: %a" pp_token got);
  f

(* ------------------------------------------------------------------ *)
(* Printing: specs back to the textual form                            *)
(* ------------------------------------------------------------------ *)

let print_spec ppf (spec : Spec.t) =
  Fmt.pf ppf "spec %s@." (Spec.adt spec);
  Fmt.pf ppf "methods %a@."
    Fmt.(
      list ~sep:(any ", ") (fun ppf (m : Invocation.meth) ->
          Fmt.pf ppf "%s/%d%s" m.name m.arity (if m.mutates then " mut" else "")))
    (Spec.methods spec);
  (* print each unordered pair once when symmetric, both when not *)
  let pairs = Spec.pairs spec in
  let printed = Hashtbl.create 16 in
  List.iter
    (fun ((m1, m2), f) ->
      if not (Hashtbl.mem printed (m1, m2)) then begin
        let mirror_matches =
          Formula.is_state_free f
          && (m1 = m2
             ||
             let g = Spec.cond spec ~first:m2 ~second:m1 in
             Formula.equal g (Formula.mirror f))
        in
        let body ppf = function
          | Formula.True -> Fmt.string ppf "commute always"
          | Formula.False -> Fmt.string ppf "commute never"
          | f -> Fmt.pf ppf "commute if %a" Formula.pp f
        in
        if mirror_matches && m1 <= m2 then begin
          Hashtbl.replace printed (m1, m2) ();
          Hashtbl.replace printed (m2, m1) ();
          Fmt.pf ppf "%s ; %s %a@." m1 m2 body f
        end
        else if not (mirror_matches && m2 < m1) then begin
          Hashtbl.replace printed (m1, m2) ();
          Fmt.pf ppf "%s ; %s %a directed@." m1 m2 body f
        end
      end)
    pairs

let spec_to_string spec = Fmt.str "%a" print_spec spec
