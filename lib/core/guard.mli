(** Reentrant, canonically-ordered locks for detector-internal state.

    Conflict detectors serialize their critical sections behind a guard
    instead of a bare [Mutex.t] so that (a) the domain executor can hold a
    detector's guard across a transaction rollback while the detector's
    own [on_abort] re-enters it, and (b) rollbacks spanning several
    detectors ({!Detector.compose}) can take all their guards in a globally
    consistent order ({!protect_all}), ruling out deadlock between
    concurrent multi-detector rollbacks.

    Ownership is per-domain: a guard is reentrant for the domain holding
    it, not across systhreads within a domain. *)

type t

val create : unit -> t

(** Creation order — the canonical acquisition order used by
    {!protect_all}. *)
val id : t -> int

(** Acquire (blocking); free re-entry if this domain already holds it. *)
val lock : t -> unit

(** Release one level; the guard is freed when the depth reaches zero.
    Must be called by the owning domain. *)
val unlock : t -> unit

(** [protect t f] runs [f] holding [t]; releases on any exit. *)
val protect : t -> (unit -> 'a) -> 'a

(** [protect_all ts f] runs [f] holding every guard in [ts], acquired in
    canonical id order (duplicates taken once). *)
val protect_all : t list -> (unit -> 'a) -> 'a
