(** Virtual yield points for systematic concurrency testing.

    The runtime's synchronization operations — guard acquire/release,
    detector invoke/commit/abort, STM cell reads/writes — announce
    themselves here just before they execute.  In production nothing is
    installed and {!emit} is a single predictable branch; under the
    deterministic scheduler ([Commlat_sched]) a hook is installed that
    suspends the current fiber at each announcement, turning every
    synchronization point into an explicit scheduling decision.

    The hook is {e domain-local} and unsynchronized within its domain:
    each domain may install at most one hook, and emissions only reach the
    hook installed on the emitting domain.  This is what lets the parallel
    explorer ([Commlat_sched.Pexplore]) run one virtual scheduler per
    domain concurrently; exploration still never shares a domain with
    [Executor.run_domains]. *)

(** A synchronization point, announced {e before} the operation runs. *)
type action =
  | Acquire of int  (** {!Guard.lock} on the guard with this creation id *)
  | Release of int  (** {!Guard.unlock} *)
  | Invoke of { det : string; inv : Invocation.t }
      (** a detector is about to mediate [inv] *)
  | Commit of { det : string; txn : int }  (** [on_commit] about to run *)
  | Abort of { det : string; txn : int }  (** [on_abort] about to run *)
  | Read of int  (** STM tracer: concrete cell read *)
  | Write of int  (** STM tracer: concrete cell write *)

val pp_action : action Fmt.t

(** [install f] routes every subsequent {!emit} {e on this domain} to
    [f]; raises [Invalid_argument] if this domain already has a hook. *)
val install : (action -> unit) -> unit

(** Remove this domain's hook (idempotent). *)
val uninstall : unit -> unit

(** Is a hook currently installed on this domain? *)
val active : unit -> bool

(** Announce an action: calls this domain's hook, or does nothing. *)
val emit : action -> unit
