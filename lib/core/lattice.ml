(** The commutativity lattice (paper §2.4).

    Valid commutativity conditions for a method pair form a bounded lattice
    ordered by logical implication, with meet = conjunction, join =
    disjunction, bottom = [false] and top = the precise condition.
    Specifications are ordered pointwise.

    Implication between L1 formulas is undecidable in general, so two
    decision procedures are provided:

    - {!leq_syntactic}: a cheap sufficient condition covering the moves the
      paper actually performs (dropping disjuncts, strengthening clauses,
      going to [false]);
    - {!leq_bounded}: exhaustive evaluation over caller-supplied sample
      environments — a bounded model check used by the test suite to verify
      every lattice claim on the example specs. *)

let meet f1 f2 = Formula.simplify (Formula.And (f1, f2))
let join f1 f2 = Formula.simplify (Formula.Or (f1, f2))
let bot = Formula.False
let top_of f = f (* the precise condition plays the role of top *)

(* --------------------------------------------------------------- *)
(* Syntactic implication (sufficient, not complete)                 *)
(* --------------------------------------------------------------- *)

let rec leq_syntactic (f1 : Formula.t) (f2 : Formula.t) =
  Formula.equal f1 f2
  ||
  match (f1, f2) with
  | Formula.False, _ -> true
  | _, Formula.True -> true
  (* key coarsening (paper §4.2): [g(x) != g(y)] implies [x != y] for any
     function [g] applied to both sides — the partition rule *)
  | ( Formula.Cmp (Formula.Ne, Formula.Vfun (g1, [ x1 ]), Formula.Vfun (g2, [ y1 ])),
      Formula.Cmp (Formula.Ne, x2, y2) )
    when g1 = g2
         && (Formula.equal_term x1 x2 && Formula.equal_term y1 y2
            || Formula.equal_term x1 y2 && Formula.equal_term y1 x2) ->
      true
  | Formula.Or (a, b), _ -> leq_syntactic a f2 && leq_syntactic b f2
  | _, Formula.Or (a, b) -> leq_syntactic f1 a || leq_syntactic f1 b
  | Formula.And (a, b), _ -> leq_syntactic a f2 || leq_syntactic b f2
  | _, Formula.And (a, b) -> leq_syntactic f1 a && leq_syntactic f1 b
  | _ -> false

(* --------------------------------------------------------------- *)
(* Bounded (semantic) implication                                   *)
(* --------------------------------------------------------------- *)

(** [leq_bounded ~envs f1 f2] checks [f1 => f2] on every supplied sample
    environment.  Environments whose evaluation raises
    {!Formula.Unsupported} or {!Value.Type_error} (e.g. an [add] return
    value plugged where a point is expected) are skipped: sample spaces are
    allowed to be generous. *)
let leq_bounded ~envs f1 f2 =
  List.for_all
    (fun env ->
      match (Formula.eval env f1, Formula.eval env f2) with
      | v1, v2 -> (not v1) || v2
      | exception (Formula.Unsupported _ | Value.Type_error _) -> true)
    envs

let equiv_bounded ~envs f1 f2 = leq_bounded ~envs f1 f2 && leq_bounded ~envs f2 f1

(** Like {!leq_bounded}, but distinguishes "implication held on every
    environment that evaluated" from "no environment evaluated at all"
    (e.g. every sample raised on an uninterpreted function).  [None] means
    the check produced no evidence either way — callers that act on a
    positive answer (the spec linter's dead-disjunct and misclassification
    analyses) must not treat vacuity as confirmation. *)
let leq_bounded_checked ~envs f1 f2 =
  let evaluated = ref false in
  let ok =
    List.for_all
      (fun env ->
        match (Formula.eval env f1, Formula.eval env f2) with
        | v1, v2 ->
            evaluated := true;
            (not v1) || v2
        | exception (Formula.Unsupported _ | Value.Type_error _) -> true)
      envs
  in
  (* if [for_all] stopped early the failing environment did evaluate, so
     [evaluated] is reliable in both outcomes *)
  if !evaluated then Some ok else None

let equiv_bounded_checked ~envs f1 f2 =
  match (leq_bounded_checked ~envs f1 f2, leq_bounded_checked ~envs f2 f1) with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

(* --------------------------------------------------------------- *)
(* Specification-level lattice                                      *)
(* --------------------------------------------------------------- *)

(** Pointwise order: [s1 <= s2] iff for every ordered method pair the
    condition in [s1] implies the one in [s2] (missing entries are
    [false]).  Uses the syntactic order. *)
let spec_leq (s1 : Spec.t) (s2 : Spec.t) =
  let keys =
    List.sort_uniq Stdlib.compare
      (List.map fst (Spec.pairs s1) @ List.map fst (Spec.pairs s2))
  in
  List.for_all
    (fun (m1, m2) ->
      leq_syntactic (Spec.cond s1 ~first:m1 ~second:m2) (Spec.cond s2 ~first:m1 ~second:m2))
    keys

let combine op ~adt (s1 : Spec.t) (s2 : Spec.t) =
  let methods = Spec.methods s1 in
  let vfuns_merged =
    (* interpretations from both sides; s1 wins on name clashes *)
    s1.Spec.vfuns @ List.filter (fun (n, _) -> not (List.mem_assoc n s1.Spec.vfuns)) s2.Spec.vfuns
  in
  let out = Spec.create ~vfuns:vfuns_merged ~adt methods in
  let keys =
    List.sort_uniq Stdlib.compare
      (List.map fst (Spec.pairs s1) @ List.map fst (Spec.pairs s2))
  in
  List.iter
    (fun (m1, m2) ->
      let f =
        op (Spec.cond s1 ~first:m1 ~second:m2) (Spec.cond s2 ~first:m1 ~second:m2)
      in
      Spec.add_directed out ~first:m1 ~second:m2 f)
    keys;
  out

(** Pointwise meet of two specifications (greatest lower bound). *)
let spec_meet ?(adt = "meet") s1 s2 = combine meet ~adt s1 s2

(** Pointwise join of two specifications (least upper bound). *)
let spec_join ?(adt = "join") s1 s2 = combine join ~adt s1 s2

(** ⊥: every condition is [false] — implementable as a single global lock
    (paper §4.1). *)
let spec_bot ~adt methods =
  let s = Spec.create ~adt methods in
  List.iter
    (fun (m1 : Invocation.meth) ->
      List.iter
        (fun (m2 : Invocation.meth) ->
          Spec.add_directed s ~first:m1.name ~second:m2.name Formula.False)
        methods)
    methods;
  s
