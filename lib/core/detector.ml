(** Common interface of conflict detectors.

    A detector mediates every method invocation on a protected data
    structure.  [on_invoke inv exec] must:

    - decide whether [inv] may proceed given the currently active
      invocations of other transactions (raising {!Conflict} otherwise), and
    - run [exec] (the actual data-structure operation), recording its
      return value in [inv.ret].

    Different schemes order these steps differently: abstract locking
    acquires locks {e before} executing, gatekeepers execute first and then
    check (conditions may refer to the return value).  Either way the whole
    of [on_invoke] is atomic with respect to other invocations on the same
    detector.

    When [on_invoke] raises {!Conflict} after [exec] has run, the enclosing
    transaction is doomed; the runtime rolls its effects back through the
    transaction undo log and calls {!on_abort}. *)

exception Conflict of { txn : int; with_ : int; reason : string }

let conflict ~txn ~with_ reason = raise (Conflict { txn; with_; reason })

module Obs = Commlat_obs.Obs

type t = {
  name : string;
  on_invoke : Invocation.t -> (unit -> Value.t) -> Value.t;
  on_commit : int -> unit;
  on_abort : int -> unit;
  reset : unit -> unit;
  snapshot : unit -> Obs.snapshot;
  guards : Guard.t list;
      (** the reentrant guards serializing this detector's internal state
          (and, during [on_invoke], the protected ADT's concrete state).
          The domain executor takes all of them around a transaction's
          rollback + [on_abort] so no concurrent sweep or invocation can
          interleave with the undo log.  Empty for detectors with no
          internal state. *)
}

(** A snapshot hook for detectors with nothing to report (ad-hoc test
    detectors, baselines). *)
let no_snapshot () = Obs.empty "unobserved"

(** No detection at all: used to measure the plain sequential baseline
    [T] in the paper's performance model (§5, "Putting it all together"). *)
let none =
  {
    name = "none";
    on_invoke =
      (fun inv exec ->
        let r = exec () in
        inv.Invocation.ret <- r;
        r);
    on_commit = ignore;
    on_abort = ignore;
    reset = ignore;
    snapshot = (fun () -> Obs.empty "none");
    guards = [];
  }

(** Compose the transaction-lifecycle view of several detectors, one per
    protected structure: commits, aborts and resets are forwarded to every
    member.  Invocations must still be routed to the member that protects
    the structure being touched; calling [on_invoke] on the composition is
    an error.  Used when a transaction spans multiple protected ADTs (e.g.
    Boruvka's union-find plus its boosted component-edge map). *)
let compose (ds : t list) : t =
  {
    name = Fmt.str "compose(%a)" Fmt.(list ~sep:comma string) (List.map (fun d -> d.name) ds);
    on_invoke =
      (fun _ _ ->
        invalid_arg "Detector.compose: route invocations to a member detector");
    on_commit = (fun txn -> List.iter (fun d -> d.on_commit txn) ds);
    on_abort = (fun txn -> List.iter (fun d -> d.on_abort txn) ds);
    reset = (fun () -> List.iter (fun d -> d.reset ()) ds);
    snapshot =
      (fun () ->
        Obs.merge
          (Fmt.str "compose(%a)" Fmt.(list ~sep:comma string)
             (List.map (fun d -> d.name) ds))
          (List.map (fun d -> d.snapshot ()) ds));
    guards = List.concat_map (fun d -> d.guards) ds;
  }

(** Serialize invocations of distinct transactions: the first transaction to
    touch the structure owns it until it ends.  This is what the abstract
    locking construction yields for the ⊥ specification (a single global
    exclusive lock, paper §4.1); provided directly for convenience. *)
let global_lock ?obs:obs_enabled () =
  let owner = ref None in
  let mu = Guard.create () in
  let obs = Obs.create ?enabled:obs_enabled "global-lock" in
  let c_inv = Obs.counter obs "invocations" in
  let c_acq = Obs.counter obs "lock_acquisitions" in
  let c_deny = Obs.counter obs "lock_denials" in
  let release txn =
    Guard.protect mu (fun () ->
        match !owner with Some o when o = txn -> owner := None | _ -> ())
  in
  {
    name = "global-lock";
    on_invoke =
      (fun inv exec ->
        Guard.protect mu (fun () ->
            Obs.incr c_inv;
            (match !owner with
            | Some o when o <> inv.Invocation.txn ->
                Obs.incr c_deny;
                Obs.label obs ~cat:"lock_deny" "<ds>:exclusive";
                Obs.label obs ~cat:"abort_cause" "global lock held";
                conflict ~txn:inv.Invocation.txn ~with_:o "global lock held"
            | _ ->
                Obs.incr c_acq;
                Obs.label obs ~cat:"lock_acquire" "<ds>:exclusive";
                owner := Some inv.Invocation.txn);
            let r = exec () in
            inv.Invocation.ret <- r;
            r));
    on_commit = release;
    on_abort = release;
    reset = (fun () -> owner := None);
    snapshot = (fun () -> Obs.snapshot obs);
    guards = [ mu ];
  }

module Private = struct
  let global_lock = global_lock
end
