(** Abstract locking (paper §3.2): the systematic construction of lock-based
    conflict detectors from SIMPLE commutativity specifications.

    The construction follows the paper's three steps: one lock per data
    member plus one for the whole structure; one lock {e mode} per
    method/slot; and a compatibility matrix derived from the specification
    ([false] conditions make the [ds] modes incompatible, each SIMPLE
    clause [t1 != t2] makes the corresponding slot modes incompatible,
    everything else is compatible).  Modes compatible with every mode are
    superfluous and removed by {!reduce} (the Fig. 8(a) → 8(b)
    optimization).

    Theorem 1: the scheme produced here is sound and complete w.r.t. the
    input specification iff the specification is SIMPLE — property-tested
    in [test/test_abstract_lock.ml]. *)

(** What a method must lock: the structure lock, or the value of a pure key
    term over the invocation's arguments/returns (possibly derived, e.g.
    [part(v1[0])] for partition coarsening). *)
type acquisition = {
  mode : int;  (** mode index in the compatibility matrix *)
  key : Formula.term option;
      (** [None] = the data-structure lock; [Some t] = lock on the runtime
          value of the M1-side pure term [t] *)
  after_exec : bool;  (** return-value locks are acquired after execution *)
}

type scheme = {
  spec : Spec.t;
  mode_names : string array;  (** mode index -> display name *)
  compat : bool array array;  (** symmetric compatibility matrix *)
  acquisitions : (string, acquisition list) Hashtbl.t;  (** per method *)
  reduced : bool;
}

val mode_name : scheme -> int -> string
val n_modes : scheme -> int

exception Not_simple of string * string * Formula.t

(** Build the full (unreduced) abstract locking scheme for a SIMPLE spec.
    Raises {!Not_simple} if some condition is outside L2. *)
val construct : Spec.t -> scheme

(** Drop superfluous modes: a mode compatible with all modes need never be
    acquired (paper Fig. 8(b)). *)
val reduce : scheme -> scheme

(** Print the compatibility matrix ([only_used] restricts to modes some
    method actually acquires). *)
val pp_matrix : ?only_used:bool -> scheme Fmt.t

(** {1 Runtime lock table} *)

type lock_obj = Ds | Key of Value.t

type table

(** Build a runtime lock table.  [stripes > 0] splits it into [stripes]
    hash slices plus a dedicated slice for the [Ds] lock, each under its
    own {!Guard.t}, so acquisitions of footprint-disjoint keys do not
    serialize.  [?obs] enables/disables the observability registry. *)
val table : ?obs:bool -> ?stripes:int -> scheme -> table

(** Release every lock held by a transaction. *)
val release_all : table -> int -> unit

(** {1 Detector} *)

(** Implementation detail of {!Commlat_runtime.Protect} (schemes
    [Abstract_lock] / [Sharded (Abstract_lock, n)]) and of this library's
    own tests; application code should construct detectors through
    [Protect.protect]. *)
module Private : sig
  (** Build a conflict detector from a SIMPLE specification.
      [reduce_scheme] (default [true]) applies the superfluous-mode
      optimization first.  [stripes > 0] stripes the lock table (see
      {!table}): an invocation takes only the stripe guards of the locks
      it acquires — methods with return-value acquisitions take all of
      them — and the concrete execution is briefly serialized under a
      dedicated guard.  Reports exactly the conflicts of the unstriped
      detector.

      [compiled] (default [false]) evaluates key terms through
      {!Compile.key}'s zero-environment closures instead of staging a
      {!Formula.env} per invocation; key values (hence lock behaviour) are
      identical.  The mode-compatibility matrix is always consulted
      through the {!Compile.Bitmat} bitset. *)
  val detector :
    ?reduce_scheme:bool ->
    ?stripes:int ->
    ?compiled:bool ->
    ?obs:bool ->
    Spec.t ->
    Detector.t
end
