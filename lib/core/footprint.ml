(** Equality-footprint analysis: assign each method of a specification a
    {e shard key} — a pure argument term such that two invocations with
    different key values provably commute — or decide that no such key
    exists (the method is {e keyless} and must be checked against
    everything).

    The analysis is built on {!Formula.footprint_clauses}: a condition's
    footprint clauses are its top-level disjuncts of shape [t1 != t2] with
    [t1] pure-m1 and [t2] pure-m2.  If such a clause's two key values
    differ at runtime the whole condition is trivially [true].  So if
    method [m1] is keyed by [k1], method [m2] by [k2], and {e every}
    condition between them (in both orders) has a footprint clause
    comparing exactly [k1] against [k2], then invocations of [m1] and [m2]
    whose key values differ can never conflict — a hash-sharded active
    table may skip the check entirely (same key value ⟹ same hash ⟹ same
    shard, since {!Value.hash} respects {!Value.equal}).

    Key assignment is an iterative demotion loop: start by computing each
    method's candidate keys (the intersection, over all its constrained
    pairs, of the clause terms on its side); while some method that has
    constrained pairs ends up with no candidate, demote the method with the
    most clause-less constrained pairs to keyless (its partners' pairs with
    it become unconstrained: keyless invocations live in the overflow shard
    and are checked against everything, which is always sound) and
    recompute.  A final pairwise verification checks that the {e chosen}
    keys of every keyed-keyed pair are matched by one clause of each
    condition between them, demoting on failure; this matters for
    multi-clause conditions, where independently chosen keys could satisfy
    different clauses. *)

type t = {
  spec : Spec.t;
  keys : (string, Formula.term) Hashtbl.t;
      (** method name -> chosen M1-side key term; absent = keyless *)
  compiled : (string, Invocation.t -> Value.t) Hashtbl.t;
}

(* Normalize an M2-side term to the corresponding M1-side term (same
   convention as the abstract-locking construction), so a method's slot
   gets the same key term whether the method appears first or second in a
   condition. *)
let rec to_m1_term = function
  | Formula.Arg (_, i) -> Formula.Arg (Formula.M1, i)
  | Formula.Ret _ -> Formula.Ret Formula.M1
  | Formula.Const _ as t -> t
  | Formula.Vfun (f, args) -> Formula.Vfun (f, List.map to_m1_term args)
  | Formula.Arith (op, a, b) -> Formula.Arith (op, to_m1_term a, to_m1_term b)
  | Formula.Sfun _ -> invalid_arg "Footprint: key term mentions state"

(* A usable shard key must be computable when the invocation is inserted
   into the active table — before the method executes — so terms mentioning
   the return value are out. *)
let usable t = not (Formula.term_mentions_ret Formula.M1 t)

(* The m1-normalized clause terms a condition offers to each side. *)
let side_terms cond =
  let clauses = Formula.footprint_clauses cond in
  ( List.filter usable (List.map fst clauses),
    List.filter usable (List.map (fun (_, t2) -> to_m1_term t2) clauses) )

(* For the self pair (m, m): a key [k] only helps if one clause compares
   [k] on BOTH sides. *)
let self_terms cond =
  Formula.footprint_clauses cond
  |> List.filter_map (fun (t1, t2) ->
         let t2 = to_m1_term t2 in
         if Formula.equal_term t1 t2 && usable t1 then Some t1 else None)

let inter a b = List.filter (fun t -> List.exists (Formula.equal_term t) b) a

let analyze (spec : Spec.t) : t =
  let names =
    List.map (fun (m : Invocation.meth) -> m.name) (Spec.methods spec)
  in
  let keyless : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Candidate keys for [m] given the current keyless set, together with
     the number of constrained pairs contributing no candidate at all.
     [None] = no constrained pairs (the method needs no key: every partner
     either always commutes with it or sits in the overflow shard). *)
  let candidates m =
    let acc = ref None and nfail = ref 0 in
    let constrain terms =
      incr nfail;
      match terms with
      | [] -> acc := Some []
      | _ -> (
          decr nfail;
          match !acc with
          | None -> acc := Some terms
          | Some cur -> acc := Some (inter cur terms))
    in
    List.iter
      (fun m' ->
        if not (Hashtbl.mem keyless m') then
          if m' = m then (
            match Spec.cond spec ~first:m ~second:m with
            | Formula.True -> ()
            | cond -> constrain (self_terms cond))
          else begin
            (match Spec.cond spec ~first:m ~second:m' with
            | Formula.True -> ()
            | cond -> constrain (fst (side_terms cond)));
            match Spec.cond spec ~first:m' ~second:m with
            | Formula.True -> ()
            | cond -> constrain (snd (side_terms cond))
          end)
      names;
    (!acc, !nfail)
  in
  (* Demotion loop: peel off methods that cannot be keyed, one per
     iteration, until the survivors all have candidates. *)
  let chosen : (string, Formula.term) Hashtbl.t = Hashtbl.create 8 in
  let rec assign () =
    Hashtbl.reset chosen;
    let bad = ref [] in
    let moved = ref false in
    List.iter
      (fun m ->
        if not (Hashtbl.mem keyless m) then
          match candidates m with
          | None, _ ->
              (* no constrained pairs: nothing to key on; overflow is free
                 for it (all its remaining conditions are [true]) *)
              Hashtbl.replace keyless m ();
              moved := true
          | Some [], nfail -> bad := (m, nfail) :: !bad
          | Some terms, _ ->
              (* deterministic choice: smallest by printed form *)
              let key =
                List.sort
                  (fun a b ->
                    compare
                      (Fmt.str "%a" Formula.pp_term a)
                      (Fmt.str "%a" Formula.pp_term b))
                  terms
                |> List.hd
              in
              Hashtbl.replace chosen m key)
      names;
    if !moved then assign ()
      (* a method just went keyless mid-pass: candidates computed earlier in
         the pass may have been over-constrained by it — recompute before
         demoting anyone else *)
    else
      match
        List.sort
          (fun (m1, n1) (m2, n2) ->
            match compare n2 n1 with 0 -> compare m1 m2 | c -> c)
          !bad
      with
      | [] -> verify ()
      | (m, _) :: _ ->
          Hashtbl.replace keyless m ();
          assign ()
  (* Pairwise verification of the chosen keys: every condition between two
     keyed methods must have one clause comparing exactly their keys. *)
  and verify () =
    let violations : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let matched k1 k2 cond =
      Formula.footprint_clauses cond
      |> List.exists (fun (t1, t2) ->
             Formula.equal_term t1 k1 && Formula.equal_term (to_m1_term t2) k2)
    in
    let bump m =
      Hashtbl.replace violations m
        (1 + Option.value ~default:0 (Hashtbl.find_opt violations m))
    in
    Hashtbl.iter
      (fun m1 k1 ->
        Hashtbl.iter
          (fun m2 k2 ->
            match Spec.cond spec ~first:m1 ~second:m2 with
            | Formula.True -> ()
            | cond ->
                if not (matched k1 k2 cond) then begin
                  bump m1;
                  bump m2
                end)
          chosen)
      chosen;
    if Hashtbl.length violations = 0 then ()
    else begin
      let worst =
        Hashtbl.fold (fun m n acc -> (m, n) :: acc) violations []
        |> List.sort (fun (m1, n1) (m2, n2) ->
               match compare n2 n1 with 0 -> compare m1 m2 | c -> c)
        |> List.hd |> fst
      in
      Hashtbl.replace keyless worst ();
      assign ()
    end
  in
  assign ();
  (* Shard keys are on the hot path of every sharded insert and scan:
     compile them to zero-environment closures (Compile.key) instead of
     staging a Formula.env per invocation.  Key values are identical. *)
  let compiled = Hashtbl.create 8 in
  Hashtbl.iter
    (fun m key -> Hashtbl.replace compiled m (Compile.key spec key))
    chosen;
  { spec; keys = Hashtbl.copy chosen; compiled }

let key_term t m = Hashtbl.find_opt t.keys m
let keyed t m = Hashtbl.mem t.keys m
let all_keyless t = Hashtbl.length t.keys = 0

let key_value t (inv : Invocation.t) =
  Option.map
    (fun f -> f inv)
    (Hashtbl.find_opt t.compiled inv.Invocation.meth.name)

(** The shard index of an invocation, or [None] for the overflow shard.
    Same key value ⟹ same shard; different shards ⟹ different key values
    ⟹ the invocations commute with every keyed method's invocations in
    other shards. *)
let shard_of t ~nshards inv =
  Option.map
    (fun v -> Value.hash v land max_int mod nshards)
    (key_value t inv)

let pp ppf (t : t) =
  let keyed, keyless =
    List.partition
      (fun (m : Invocation.meth) -> Hashtbl.mem t.keys m.name)
      (Spec.methods t.spec)
  in
  Fmt.pf ppf "@[<v>footprint(%s):@," (Spec.adt t.spec);
  List.iter
    (fun (m : Invocation.meth) ->
      Fmt.pf ppf "  %-12s keyed on %a@," m.name Formula.pp_term
        (Hashtbl.find t.keys m.name))
    keyed;
  List.iter
    (fun (m : Invocation.meth) -> Fmt.pf ppf "  %-12s keyless (overflow)@," m.name)
    keyless;
  Fmt.pf ppf "@]"
