(** Gatekeeping (paper §3.3): conflict detection by logging method
    invocations and evaluating commutativity conditions directly.

    A gatekeeper intercepts every method invocation [m(v)]:

    + it evaluates the primitive-function set [C_m] — every function of the
      {e current} abstract state appearing (as an [s1]-function of m1-only
      values) in any condition in which [m] is the earlier method — and
      stores the results in a {e result log} [L_{m(v)}] together with [v]
      and the return value;
    + it checks, for every {e active} invocation [ma(va)] of another
      transaction, the condition [f_{ma,m}], reading [ma]'s side from
      [L_{ma(va)}]; if any condition evaluates to [false] a conflict is
      raised;
    + when a transaction ends, its logs and active invocations are removed.

    {b Forward} gatekeepers ({!forward}) require every condition to be
    ONLINE-CHECKABLE (logic L3): all the information needed later is in the
    logs.  {b General} gatekeepers ({!general}) accept any L1 condition: a
    function of [s1] that needs m2-information (union-find's [rep (s1, c)])
    is evaluated by {e rolling the data structure back} to [s1] — undoing,
    in reverse order, every mutating invocation that executed after the
    active one — evaluating, and rolling forward again.  The whole
    intercept/check/execute/log sequence is atomic (one mutex per
    gatekeeper).

    {b Footprint sharding} ({!forward_sharded}, {!general_sharded}): the
    active-invocation table is split into [nshards] hash shards keyed by
    the {!Footprint} analysis plus one {e overflow} shard for invocations
    of keyless methods.  An incoming keyed invocation is checked only
    against its own shard and the overflow shard: invocations in other
    keyed shards have different key values, and the analysis guarantees a
    disequality clause on exactly those keys discharges every condition
    between them.  A keyless incoming invocation is checked against every
    shard.  When the spec needs no rollback and every condition is
    state-free, the shards are additionally {e striped}: each shard has its
    own {!Guard.t}, so same-ADT-different-key invocations no longer
    serialize on one gatekeeper mutex (only the concrete [exec] is briefly
    serialized, under a dedicated guard). *)

(** How a gatekeeper talks to the data structure it protects. *)
type hooks = {
  sfun : string -> Value.t list -> Value.t;
      (** evaluate an abstract-state function ([rep], [rank], [loser], …)
          on the {e current} state *)
  sfun_at : (int -> string -> Value.t list -> Value.t) option;
      (** [sfun_at seq name args]: evaluate a state function in the state
          just {e before} the invocation stamped [seq] executed, {b without
          rolling back} — for partially-persistent ADTs such as
          {!Commlat_adts.Union_find_versioned}.  When provided, the general
          gatekeeper uses it instead of the undo/redo sweep, answering the
          paper's future-work question about cheaper general conflict
          detection. *)
  undo : Invocation.t -> unit;
      (** restore the abstract state to just before this invocation ran
          (general gatekeeping only; [forward] never calls it) *)
  redo : Invocation.t -> unit;  (** re-apply an undone invocation *)
  forget : Invocation.t -> unit;
      (** the gatekeeper will never undo this invocation again: drop any
          bookkeeping (e.g. concrete write logs) *)
}

let hooks ?(undo = fun _ -> invalid_arg "gatekeeper: undo unsupported")
    ?(redo = fun _ -> invalid_arg "gatekeeper: redo unsupported")
    ?(forget = fun _ -> ()) ?sfun_at sfun =
  { sfun; sfun_at; undo; redo; forget }

(* ------------------------------------------------------------------ *)

type entry = {
  inv : Invocation.t;
  log : (string * Value.t list, Value.t) Hashtbl.t;
      (** results of [C_m] functions, keyed by (name, evaluated args) *)
}

module Obs = Commlat_obs.Obs

(* One slice of the active-invocation table.  An unsharded gatekeeper is a
   single overflow shard; [s_guard] and [s_muts] are used only in striped
   mode (coarse mode keeps the gatekeeper-global [mu] and [mutation_log]). *)
type shard = {
  s_active : (string, entry list ref) Hashtbl.t;
      (** active invocations, bucketed by method name so that method pairs
          whose condition is [true] (e.g. find/find, nearest/nearest) are
          skipped without touching individual entries *)
  mutable s_n : int;
  mutable s_muts : Invocation.t list;
      (** striped mode: this shard's mutating invocations, newest first —
          only ever [forget]-bookkeeping, dropped when their transaction
          ends (striped gatekeepers never reconstruct past states) *)
  s_guard : Guard.t;
}

type t = {
  spec : Spec.t;
  hooks : hooks;
  allow_rollback : bool;
  (* C_m: per method, the s1-functions to log, as (name, arg terms). *)
  cm : (string, (string * Formula.term list) list) Hashtbl.t;
  (* footprint sharding: [fp = None] means unsharded ([nshards = 0], a
     single overflow shard).  [shards] has length [nshards + 1]; the last
     element is the overflow shard for keyless invocations. *)
  fp : Footprint.t option;
  nshards : int;
  shards : shard array;
  striped : bool;
      (** per-shard guards; requires [not allow_rollback] and every
          condition state-free (no [Sfun]), so checks need no logs, no
          live [sfun] and no state reconstruction *)
  compiled_mode : bool;
      (** constructed with [~compiled:true]: state-free conditions check
          through {!Compile}'s zero-environment closures *)
  (* per ordered method pair: the condition and its rollback-function set,
     precomputed at construction so the table is read-only at runtime
     (striped shards evaluate conditions concurrently) *)
  cond_info : (string * string, cond_info) Hashtbl.t;
  false_info : cond_info;  (** for methods the spec never mentions *)
  mutable mutation_log : Invocation.t list;
      (** coarse mode: mutating invocations, newest first *)
  mutable seq : int;  (** always stamped under [mu] *)
  mu : Guard.t;
      (** coarse mode: the gatekeeper-global guard.  Striped mode: the
          [exec] guard, serializing only seq stamping + the concrete
          operation; created {e after} the shard guards so that
          {!Guard.protect_all}'s canonical id order matches the
          shard-then-exec nesting order of {!on_invoke_striped}. *)
  stats_rollbacks : int ref;
  obs : Obs.t;
  c_invocations : Obs.counter;  (** method invocations intercepted *)
  c_checks : Obs.counter;  (** commutativity conditions evaluated *)
  c_conflicts : Obs.counter;  (** conditions that evaluated to false *)
  c_log_hits : Obs.counter;  (** s1-function reads served from the C_m log *)
  c_rb_hits : Obs.counter;  (** s1-function reads served by reconstruction *)
  c_rollbacks : Obs.counter;  (** undo/redo sweeps (= [stats_rollbacks]) *)
  c_sfun_at : Obs.counter;  (** past-state queries on persistent ADTs *)
  d_sweep_depth : Obs.dist;  (** mutations undone per sweep *)
  (* sharding observability (registered only when [nshards > 0]) *)
  c_shard_inserts : Obs.counter;  (** insertions into keyed shards *)
  c_overflow_inserts : Obs.counter;  (** insertions into the overflow shard *)
  c_checks_avoided : Obs.counter;
      (** active entries skipped because they live in other keyed shards *)
  c_per_shard : Obs.counter array;  (** per-shard insertion counters *)
}

and cond_info = {
  formula : Formula.t;
  compiled : Formula.env -> bool;  (** staged compilation of [formula] *)
  fast : (Invocation.t -> Invocation.t -> bool) option;
      (** {!Compile}d zero-environment checker — present when the
          gatekeeper was built with [~compiled:true] and the condition is
          state-free; [None] falls back to [compiled] + {!check_env} *)
  rollback_fns : (string * Formula.term list) list;
      (** s1-functions needing state reconstruction, from
          {!Formula.rollback_functions} *)
}

(* Deduplication goes through a hash set keyed by (method, function):
   the old [List.filter]/[List.mem] version was quadratic in the number of
   logged state functions, which dominated gatekeeper construction for
   specs with many conditions over the same method. *)
let build_cm (spec : Spec.t) =
  let cm = Hashtbl.create 16 in
  let seen : (string * (string * Formula.term list), unit) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun ((m1, _), cond) ->
      Formula.f1_functions cond
      |> List.iter (fun (name, args, _) ->
             let f = (name, args) in
             if not (Hashtbl.mem seen (m1, f)) then begin
               Hashtbl.add seen (m1, f) ();
               Hashtbl.replace cm m1
                 (f :: Option.value ~default:[] (Hashtbl.find_opt cm m1))
             end))
    (Spec.pairs spec);
  cm

(* [cspec = Some spec] (the [~compiled:true] construction) additionally
   compiles state-free conditions to zero-environment checkers; the staged
   interpreter closure is kept either way, as the fallback for
   state-dependent conditions. *)
let cond_info_of_formula ?cspec formula =
  let rollback_fns =
    Formula.rollback_functions formula
    |> List.map (fun (name, args, _) -> (name, args))
  in
  let fast =
    match cspec with
    | None -> None
    | Some spec -> (
        match Compile.compile_condition spec formula with
        | Compile.Static b -> Some (fun _ _ -> b)
        | Compile.Fast f -> Some f
        | Compile.Interp _ -> None)
  in
  { formula; compiled = Formula.compile formula; fast; rollback_fns }

(* The condition table is fully precomputed over the spec's method pairs;
   an invocation of a method the spec never declared falls back to the
   (sound) [false] entry. *)
let cond_info_of (t : t) ~first ~second =
  match Hashtbl.find_opt t.cond_info (first, second) with
  | Some i -> i
  | None -> t.false_info

(* Evaluate a pure (state-free) term against one invocation's args/ret. *)
let eval_m1_term (t : t) (inv : Invocation.t) term =
  let env =
    Formula.env
      ~vfun:(Spec.vfun t.spec)
      ~arg:(fun _ i -> inv.Invocation.args.(i))
      ~ret:(fun _ -> inv.Invocation.ret)
      ()
  in
  Formula.eval_term env term

(* The formula-evaluation environment for checking [f_{e.inv, inv2}].
   [rb_cache] holds the pre-evaluated rollback functions (general
   gatekeeping): all of them were computed under a single undo/redo cycle
   by {!eval_rollback_fns}, not one cycle per occurrence. *)
let check_env (t : t) (e : entry) (inv2 : Invocation.t)
    ~(rb_cache : (string * Value.t list, Value.t) Hashtbl.t option) :
    Formula.env =
  let sfun name state (args : Value.t list) (_term : Formula.term) =
    match state with
    | Formula.S2 ->
        (* s2 = the state inv2 runs in; evaluated live.  All example specs
           are s2-free; see DESIGN.md §5 for the mutating-method caveat. *)
        t.hooks.sfun name args
    | Formula.S1 -> (
        match Hashtbl.find_opt e.log (name, args) with
        | Some v ->
            Obs.incr t.c_log_hits;
            v
        | None -> (
            match
              Option.bind rb_cache (fun c -> Hashtbl.find_opt c (name, args))
            with
            | Some v ->
                Obs.incr t.c_rb_hits;
                v
            | None ->
                invalid_arg
                  (Fmt.str
                     "forward gatekeeper: %s not in log of %a (condition not \
                      ONLINE-CHECKABLE?)"
                     name Invocation.pp e.inv)))
  in
  Invocation.env ~sfun ~vfun:(Spec.vfun t.spec) e.inv inv2

(* Pure two-invocation environment for evaluating the (state-free) argument
   terms of rollback functions. *)
let pure_env (t : t) (e : entry) (inv2 : Invocation.t) : Formula.env =
  Invocation.env
    ~sfun:(fun name _ _ _ -> raise (Formula.Unsupported name))
    ~vfun:(Spec.vfun t.spec) e.inv inv2

(* For every (entry, cond_info) pair whose condition contains rollback
   functions, evaluate those functions at the entry's pre-state [s1] in ONE
   reverse-chronological sweep over the mutation log: walk backwards in
   time undoing mutations, pausing at each entry's sequence point to
   evaluate its functions, then redo everything forwards.  This batching —
   one undo/redo cycle per incoming invocation instead of one per (entry,
   function) pair — is the same trick the paper's union-find gatekeeper
   uses ("undoes the effects of all potentially interfering calls to
   union, and re-executes find"). *)
let rollback_sweep (t : t) (inv2 : Invocation.t)
    (needs_check : (entry * cond_info) list) :
    (int, (string * Value.t list, Value.t) Hashtbl.t) Hashtbl.t =
  let caches = Hashtbl.create 8 in
  (match t.hooks.sfun_at with
  | Some sfun_at when t.allow_rollback ->
      (* partially-persistent ADT: past states are queried directly *)
      List.iter
        (fun ((e : entry), (info : cond_info)) ->
          match info.rollback_fns with
          | [] -> ()
          | fns ->
              let env = pure_env t e inv2 in
              let cache = Hashtbl.create 4 in
              List.iter
                (fun (name, arg_terms) ->
                  let args = List.map (Formula.eval_term env) arg_terms in
                  if
                    (not (Hashtbl.mem e.log (name, args)))
                    && not (Hashtbl.mem cache (name, args))
                  then begin
                    Obs.incr t.c_sfun_at;
                    Hashtbl.replace cache (name, args)
                      (sfun_at e.inv.Invocation.seq name args)
                  end)
                fns;
              if Hashtbl.length cache > 0 then
                Hashtbl.replace caches e.inv.Invocation.uid cache)
        needs_check
  | _ ->
  if t.allow_rollback then
     let items =
       List.filter_map
         (fun ((e : entry), (info : cond_info)) ->
           match info.rollback_fns with
           | [] -> None
           | fns ->
               let env = pure_env t e inv2 in
               let wanted =
                 List.map
                   (fun (name, arg_terms) ->
                     (name, List.map (Formula.eval_term env) arg_terms))
                   fns
                 |> List.sort_uniq compare
                 |> List.filter (fun (name, args) ->
                        not (Hashtbl.mem e.log (name, args)))
               in
               if wanted = [] then None else Some (e, wanted))
         needs_check
       |> List.sort (fun ((e1 : entry), _) ((e2 : entry), _) ->
              Int.compare e2.inv.Invocation.seq e1.inv.Invocation.seq)
       (* newest first: we undo progressively further into the past *)
     in
     if items <> [] then begin
       incr t.stats_rollbacks;
       Obs.incr t.c_rollbacks;
       let undone = ref [] (* oldest-undone first, i.e. redo order *) in
       let log = ref t.mutation_log (* newest first *) in
       Fun.protect
         ~finally:(fun () ->
           Obs.observe t.d_sweep_depth (List.length !undone);
           List.iter t.hooks.redo !undone)
         (fun () ->
           List.iter
             (fun ((e : entry), wanted) ->
               let rec undo_to () =
                 match !log with
                 | m :: rest when m.Invocation.seq >= e.inv.Invocation.seq ->
                     t.hooks.undo m;
                     undone := m :: !undone;
                     log := rest;
                     undo_to ()
                 | _ -> ()
               in
               undo_to ();
               let cache = Hashtbl.create 4 in
               List.iter
                 (fun (name, args) ->
                   Hashtbl.replace cache (name, args) (t.hooks.sfun name args))
                 wanted;
               Hashtbl.replace caches e.inv.Invocation.uid cache)
             items)
     end);
  caches

let populate_log (t : t) (entry : entry) ~post_exec =
  let fns = Option.value ~default:[] (Hashtbl.find_opt t.cm entry.inv.Invocation.meth.name) in
  List.iter
    (fun (name, arg_terms) ->
      let needs_ret =
        List.exists (Formula.term_mentions_ret Formula.M1) arg_terms
      in
      if needs_ret = post_exec then
        let args = List.map (eval_m1_term t entry.inv) arg_terms in
        if not (Hashtbl.mem entry.log (name, args)) then
          Hashtbl.replace entry.log (name, args) (t.hooks.sfun name args))
    fns

(* ------------------------------------------------------------------ *)
(* Shard plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let overflow_idx t = t.nshards

(* The shard an invocation's entry lives in.  Keyless methods (and every
   method of an unsharded gatekeeper) go to the overflow shard.  Key terms
   never mention the return value, so this is computable before [exec]. *)
let shard_idx (t : t) (inv : Invocation.t) =
  match t.fp with
  | None -> overflow_idx t
  | Some fp -> (
      match Footprint.shard_of fp ~nshards:t.nshards inv with
      | Some i -> i
      | None -> overflow_idx t)

(* The shards an incoming invocation must be checked against: its own plus
   the overflow shard (keyed), or everything (keyless/unsharded). *)
let scan_shards (t : t) idx =
  if idx = overflow_idx t then Array.to_list t.shards
  else [ t.shards.(idx); t.shards.(overflow_idx t) ]

let n_active t = Array.fold_left (fun acc sh -> acc + sh.s_n) 0 t.shards

let insert_entry (t : t) (sh : shard) entry =
  let name = entry.inv.Invocation.meth.name in
  let bucket =
    match Hashtbl.find_opt sh.s_active name with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add sh.s_active name b;
        b
  in
  bucket := entry :: !bucket;
  sh.s_n <- sh.s_n + 1;
  if t.nshards > 0 then begin
    if sh == t.shards.(overflow_idx t) then Obs.incr t.c_overflow_inserts
    else Obs.incr t.c_shard_inserts;
    match t.c_per_shard with [||] -> () | a -> Obs.incr a.(shard_idx t entry.inv)
  end

let remove_entry (sh : shard) entry =
  match Hashtbl.find_opt sh.s_active entry.inv.Invocation.meth.name with
  | None -> ()
  | Some bucket ->
      let before = List.length !bucket in
      bucket := List.filter (fun e -> e != entry) !bucket;
      sh.s_n <- sh.s_n - (before - List.length !bucket)

(* Entries an incoming invocation skipped: everything active in keyed
   shards other than the scanned ones.  In striped mode the [s_n] reads on
   unheld shards are benignly racy (plain int loads feeding a counter). *)
let record_avoided (t : t) idx =
  if t.nshards > 0 && idx < overflow_idx t then begin
    let avoided = ref 0 in
    Array.iteri
      (fun i sh -> if i < overflow_idx t && i <> idx then avoided := !avoided + sh.s_n)
      t.shards;
    if !avoided > 0 then Obs.add t.c_checks_avoided !avoided
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ?(nshards = 0) ?(compiled = false) ?obs:obs_enabled ~allow_rollback
    hooks spec =
  (match Spec.classify spec with
  | Formula.General when not allow_rollback ->
      invalid_arg
        (Fmt.str
           "Gatekeeper.forward: spec %s has non-ONLINE-CHECKABLE conditions; \
            use Gatekeeper.general"
           (Spec.adt spec))
  | _ -> ());
  if nshards < 0 then invalid_arg "Gatekeeper: nshards must be >= 0";
  let sharded = nshards > 0 in
  let striped =
    sharded && (not allow_rollback)
    && List.for_all (fun (_, cond) -> Formula.is_state_free cond) (Spec.pairs spec)
  in
  let obs =
    Obs.create ?enabled:obs_enabled
      (Fmt.str "%s-gk%s(%s)"
         (if allow_rollback then "gen" else "fwd")
         (if sharded then "-sharded" else "")
         (Spec.adt spec))
  in
  let fresh_shard () =
    { s_active = Hashtbl.create 8; s_n = 0; s_muts = []; s_guard = Guard.create () }
  in
  (* shard guards first, [mu] last: protect_all's canonical (creation-id)
     order then agrees with the shard-guard-then-exec-guard nesting of the
     striped invoke path, ruling out deadlock against atomic aborts *)
  let shards = Array.init (nshards + 1) (fun _ -> fresh_shard ()) in
  let mu = Guard.create () in
  let cspec = if compiled then Some spec else None in
  let cond_info = Hashtbl.create 32 in
  List.iter
    (fun (m1 : Invocation.meth) ->
      List.iter
        (fun (m2 : Invocation.meth) ->
          Hashtbl.replace cond_info (m1.name, m2.name)
            (cond_info_of_formula ?cspec
               (Spec.cond spec ~first:m1.name ~second:m2.name)))
        (Spec.methods spec))
    (Spec.methods spec);
  {
    spec;
    hooks;
    allow_rollback;
    cm = build_cm spec;
    fp = (if sharded then Some (Footprint.analyze spec) else None);
    nshards;
    shards;
    striped;
    compiled_mode = compiled;
    cond_info;
    false_info = cond_info_of_formula ?cspec Formula.False;
    mutation_log = [];
    seq = 0;
    mu;
    stats_rollbacks = ref 0;
    obs;
    c_invocations = Obs.counter obs "invocations";
    c_checks = Obs.counter obs "checks";
    c_conflicts = Obs.counter obs "conflicts";
    c_log_hits = Obs.counter obs "log_hits";
    c_rb_hits = Obs.counter obs "rollback_hits";
    c_rollbacks = Obs.counter obs "rollbacks";
    c_sfun_at = Obs.counter obs "sfun_at_queries";
    d_sweep_depth = Obs.dist obs "sweep_depth";
    c_shard_inserts = Obs.counter obs "shard_inserts";
    c_overflow_inserts = Obs.counter obs "overflow_inserts";
    c_checks_avoided = Obs.counter obs "checks_avoided";
    c_per_shard =
      (if sharded then
         Array.init (nshards + 1) (fun i ->
             Obs.counter obs
               (if i = nshards then "shard_overflow_inserts"
                else Fmt.str "shard_%02d_inserts" i))
       else [||]);
  }

(* ------------------------------------------------------------------ *)
(* Invocation: coarse (single-guard) path                              *)
(* ------------------------------------------------------------------ *)

let raise_conflict (t : t) (e : entry) (inv : Invocation.t) =
  Obs.incr t.c_conflicts;
  Obs.label t.obs ~cat:"abort_cause"
    (Fmt.str "%s;%s" e.inv.Invocation.meth.name inv.Invocation.meth.name);
  if t.allow_rollback then begin
    (* Erase the refused invocation before the guard releases: nothing has
       run since its [exec], so replaying its write log is an exact LIFO
       restore.  It leaves the mutation log too (it never happened), and
       forgetting its log makes the transaction rollback's own undo closure
       for it a no-op. *)
    t.hooks.undo inv;
    t.mutation_log <-
      List.filter
        (fun (m : Invocation.t) -> m.uid <> inv.Invocation.uid)
        t.mutation_log;
    t.hooks.forget inv
  end;
  Detector.conflict ~txn:inv.Invocation.txn ~with_:e.inv.Invocation.txn
    (Fmt.str "%a does not commute with %a" Invocation.pp e.inv Invocation.pp inv)

(* Batch log scan: check one {e executed} incoming invocation against
   every active invocation it can conflict with — its own shard plus the
   overflow shard when keyed (the footprint's shard-disjointness
   discharges every other keyed shard), all shards otherwise — in a
   single pass, bucket by bucket, with no intermediate list.  Trivially
   [true] conditions skip whole buckets; compiled conditions go through
   their zero-environment checker.  Only valid when no condition needs
   state reconstruction against this gatekeeper's log (forward mode /
   striped mode — the general path batches differently, via
   {!rollback_sweep}).  The caller holds the relevant guards. *)
let scan_active_idx (t : t) idx (inv : Invocation.t) =
  let second = inv.Invocation.meth.name in
  let check_bucket bucket eval =
    List.iter
      (fun (e : entry) ->
        if e.inv.Invocation.txn <> inv.Invocation.txn then begin
          Obs.incr t.c_checks;
          if not (eval e) then raise_conflict t e inv
        end)
      !bucket
  in
  List.iter
    (fun (sh : shard) ->
      Hashtbl.iter
        (fun first bucket ->
          let info = cond_info_of t ~first ~second in
          match info.formula with
          | Formula.True -> ()
          | Formula.False -> check_bucket bucket (fun _ -> false)
          | _ -> (
              match info.fast with
              | Some f -> check_bucket bucket (fun e -> f e.inv inv)
              | None ->
                  check_bucket bucket (fun e ->
                      info.compiled (check_env t e inv ~rb_cache:None))))
        sh.s_active)
    (scan_shards t idx)

(* The public batch entry point: route by shard, then one-pass scan. *)
let batch_check (t : t) (inv : Invocation.t) =
  scan_active_idx t (shard_idx t inv) inv

let on_invoke_coarse (t : t) (inv : Invocation.t) exec =
  Guard.protect t.mu (fun () ->
      Obs.incr t.c_invocations;
      t.seq <- t.seq + 1;
      inv.Invocation.seq <- t.seq;
      let entry = { inv; log = Hashtbl.create 4 } in
      (* Functions of s1 that need only the arguments are evaluated in the
         pre-state (s1 is the state the method is invoked in)... *)
      populate_log t entry ~post_exec:false;
      let r = exec () in
      inv.Invocation.ret <- r;
      if inv.Invocation.meth.rollback_log then t.mutation_log <- inv :: t.mutation_log;
      (* ... and ret-dependent ones after it returns (valid for read-only
         methods such as [nearest]; see Spec docs). *)
      populate_log t entry ~post_exec:true;
      let idx = shard_idx t inv in
      let insert () = insert_entry t t.shards.(idx) entry in
      (* The method has already executed; if a condition fails below, the
         transaction is doomed, but its rollback runs later, outside this
         guard.  Until then no concurrent invocation may observe the
         refused invocation's own mutation: it is about to be undone, and
         worse, writes {e derived} from it (a find compressing across a
         doomed attach edge) would survive the owner's rollback and leave
         the structure in a state matching no history at all.  A {b
         general} gatekeeper has undo hooks, so it erases the refused
         invocation's effects right here, before raising (see
         {!raise_conflict}) — nothing lingers and nothing extra needs
         protecting.  A {b forward} gatekeeper cannot undo, so instead it
         makes the refused invocation visible: the entry goes into the
         active table BEFORE the checks (it is filtered out of its own),
         and until [on_abort] removes it concurrent transactions are
         admitted only if they commute with it, exactly as they are against
         the transaction's earlier invocations. *)
      if not t.allow_rollback then insert ();
      (* Check against every active invocation of other transactions in the
         shards this invocation can conflict with, bucketed by method so
         trivially-true conditions skip whole buckets.  First collect the
         entries whose condition needs state reconstruction, so all their
         rollback functions are evaluated in a single reverse-chronological
         sweep (the paper's union-find gatekeeper batches its rollback the
         same way). *)
      record_avoided t idx;
      if not t.allow_rollback then
        (* Forward mode never reconstructs state, so the scan is a single
           batch pass over the relevant shards — no intermediate list. *)
        scan_active_idx t idx inv
      else begin
        let needs_check = ref [] in
        List.iter
          (fun (sh : shard) ->
            Hashtbl.iter
              (fun first bucket ->
                let info =
                  cond_info_of t ~first ~second:inv.Invocation.meth.name
                in
                match info.formula with
                | Formula.True -> ()
                | _ ->
                    List.iter
                      (fun (e : entry) ->
                        if e.inv.Invocation.txn <> inv.Invocation.txn then
                          needs_check := (e, info) :: !needs_check)
                      !bucket)
              sh.s_active)
          (scan_shards t idx);
        let rb_caches = rollback_sweep t inv !needs_check in
        List.iter
          (fun ((e : entry), info) ->
            Obs.incr t.c_checks;
            let ok =
              match info.formula with
              | Formula.False -> false
              | _ -> (
                  match Hashtbl.find_opt rb_caches e.inv.Invocation.uid with
                  | None when info.rollback_fns = [] && info.fast <> None ->
                      (* compiled construction: state-free conditions keep
                         their zero-environment checker even on the
                         general path *)
                      (match info.fast with
                      | Some f -> f e.inv inv
                      | None -> assert false)
                  | rb_cache -> info.compiled (check_env t e inv ~rb_cache))
            in
            if not ok then raise_conflict t e inv)
          !needs_check
      end;
      if t.allow_rollback then insert ();
      r)

(* ------------------------------------------------------------------ *)
(* Invocation: striped path                                            *)
(* ------------------------------------------------------------------ *)

(* Per-shard guards.  A keyed invocation holds only its own shard's guard;
   a keyless one holds every shard guard.  The overflow shard can be read
   under any single shard guard, because every overflow {e mutator} — a
   keyless insert, or the all-shard sweep of {!on_end} / [reset] — holds
   all the guards, including the reader's.  The concrete [exec] (and seq
   stamping) is serialized under [t.mu], nested innermost; [t.mu] was
   created after the shard guards, so this nesting agrees with
   {!Guard.protect_all}'s canonical order and atomic aborts cannot
   deadlock against invocations.

   Soundness of the insert-BEFORE-exec protocol: while an invocation holds
   its shard guard(s), no other invocation that could conflict with it can
   be anywhere inside its own insert/exec/check section (they share a
   guard), so every entry it observes is complete (executed, earlier seq)
   and every pair of potentially conflicting invocations is checked by
   whichever of the two entered its guarded section last. *)
let on_invoke_striped (t : t) (inv : Invocation.t) exec =
  Obs.incr t.c_invocations;
  let idx = shard_idx t inv in
  let sh = t.shards.(idx) in
  let keyed = idx < overflow_idx t in
  let held =
    if keyed then [ sh.s_guard ]
    else Array.to_list (Array.map (fun s -> s.s_guard) t.shards)
  in
  Guard.protect_all held (fun () ->
      let entry = { inv; log = Hashtbl.create 1 } in
      insert_entry t sh entry;
      let r =
        try
          Guard.protect t.mu (fun () ->
              t.seq <- t.seq + 1;
              inv.Invocation.seq <- t.seq;
              let r = exec () in
              inv.Invocation.ret <- r;
              if inv.Invocation.meth.rollback_log then
                sh.s_muts <- inv :: sh.s_muts;
              r)
        with e ->
          (* a raising [exec] is an ADT/operator failure, not a conflict:
             withdraw the entry so the table only ever holds invocations
             that actually ran *)
          remove_entry sh entry;
          raise e
      in
      record_avoided t idx;
      (* conditions are state-free: one batch pass, no logs, no sweeps *)
      scan_active_idx t idx inv;
      r)

let on_invoke (t : t) (inv : Invocation.t) exec =
  if t.striped then on_invoke_striped t inv exec else on_invoke_coarse t inv exec

(* ------------------------------------------------------------------ *)
(* End of transaction                                                  *)
(* ------------------------------------------------------------------ *)

let prune (t : t) =
  if n_active t = 0 then (
    List.iter t.hooks.forget t.mutation_log;
    t.mutation_log <- [])
  else begin
    let min_seq = ref max_int in
    Array.iter
      (fun (sh : shard) ->
        Hashtbl.iter
          (fun _ bucket ->
            List.iter
              (fun e -> if e.inv.Invocation.seq < !min_seq then min_seq := e.inv.Invocation.seq)
              !bucket)
          sh.s_active)
      t.shards;
    let keep, drop =
      List.partition (fun (i : Invocation.t) -> i.seq >= !min_seq) t.mutation_log
    in
    List.iter t.hooks.forget drop;
    t.mutation_log <- keep
  end

let drop_txn_entries (sh : shard) txn =
  Hashtbl.iter
    (fun _ bucket ->
      let keep = List.filter (fun e -> e.inv.Invocation.txn <> txn) !bucket in
      sh.s_n <- sh.s_n - (List.length !bucket - List.length keep);
      bucket := keep)
    sh.s_active

(* End-of-transaction bookkeeping.  [drop_mutations] distinguishes abort
   from commit: an {e aborted} transaction's mutations were just undone by
   its rollback, so they leave the log (they never happened); a
   {e committed} transaction's mutations are history and MUST stay — under
   true concurrency an older transaction's invocation can still be active,
   and reconstructing its pre-state [s1] requires undoing every later
   mutation, committed or not.  (The round-based executor never exposed
   this: there, every active invocation was newer than every committed
   mutation.)  [prune] retires committed entries once no active invocation
   predates them.

   Striped gatekeepers never reconstruct, so a transaction's mutations are
   forgotten as soon as it ends, commit or abort (an abort's rollback has
   already run by the time [on_abort] gets here). *)
let on_end ~drop_mutations (t : t) txn =
  if t.striped then
    Guard.protect_all
      (Array.to_list (Array.map (fun s -> s.s_guard) t.shards))
      (fun () ->
        ignore drop_mutations;
        Array.iter
          (fun (sh : shard) ->
            drop_txn_entries sh txn;
            let keep, drop =
              List.partition
                (fun (i : Invocation.t) -> i.txn <> txn)
                sh.s_muts
            in
            List.iter t.hooks.forget drop;
            sh.s_muts <- keep)
          t.shards)
  else
    Guard.protect t.mu (fun () ->
        Array.iter (fun sh -> drop_txn_entries sh txn) t.shards;
        if drop_mutations then
          t.mutation_log <-
            (let keep, drop =
               List.partition (fun (i : Invocation.t) -> i.txn <> txn) t.mutation_log
             in
             List.iter t.hooks.forget drop;
             keep);
        prune t)

let rollback_count (t : t) = !(t.stats_rollbacks)
let obs (t : t) = t.obs
let footprint (t : t) = t.fp
let striped (t : t) = t.striped
let is_compiled (t : t) = t.compiled_mode

(** The [C_m] log set of a method: the s1-functions whose results the
    gatekeeper records on every invocation of [m] (exposed so tests can pin
    the construction; order is unspecified). *)
let cm_functions (t : t) m =
  Option.value ~default:[] (Hashtbl.find_opt t.cm m)

let all_guards (t : t) =
  if t.striped then
    Array.to_list (Array.map (fun (s : shard) -> s.s_guard) t.shards) @ [ t.mu ]
  else [ t.mu ]

(* ------------------------------------------------------------------ *)
(* Live-state transfer (detector hot-swap)                             *)
(* ------------------------------------------------------------------ *)

let active_invocations (t : t) : Invocation.t list =
  Guard.protect_all (all_guards t) (fun () ->
      let acc = ref [] in
      Array.iter
        (fun (sh : shard) ->
          Hashtbl.iter
            (fun _ bucket -> List.iter (fun e -> acc := e.inv :: !acc) !bucket)
            sh.s_active)
        t.shards;
      List.sort
        (fun (a : Invocation.t) (b : Invocation.t) -> Int.compare a.seq b.seq)
        !acc)

let adopt (t : t) (invs : Invocation.t list) =
  Guard.protect_all (all_guards t) (fun () ->
      List.iter
        (fun (inv : Invocation.t) ->
          t.seq <- t.seq + 1;
          inv.Invocation.seq <- t.seq;
          let entry = { inv; log = Hashtbl.create 4 } in
          (* both halves of the C_m log: the invocation has already
             executed, so ret-mentioning argument terms are evaluable *)
          populate_log t entry ~post_exec:false;
          populate_log t entry ~post_exec:true;
          if inv.Invocation.meth.rollback_log then begin
            if t.striped then begin
              let sh = t.shards.(shard_idx t inv) in
              sh.s_muts <- inv :: sh.s_muts
            end
            else t.mutation_log <- inv :: t.mutation_log
          end;
          insert_entry t t.shards.(shard_idx t inv) entry)
        invs)

let detector ~name (t : t) : Detector.t =
  {
    Detector.name;
    on_invoke = (fun inv exec -> on_invoke t inv exec);
    on_commit = (fun txn -> on_end ~drop_mutations:false t txn);
    on_abort = (fun txn -> on_end ~drop_mutations:true t txn);
    reset =
      (fun () ->
        Guard.protect_all (all_guards t) (fun () ->
            Array.iter
              (fun (sh : shard) ->
                Hashtbl.reset sh.s_active;
                sh.s_n <- 0;
                List.iter t.hooks.forget sh.s_muts;
                sh.s_muts <- [])
              t.shards;
            List.iter t.hooks.forget t.mutation_log;
            t.mutation_log <- []));
    snapshot = (fun () -> Obs.snapshot t.obs);
    guards = all_guards t;
  }

(** Forward gatekeeper (paper §3.3.1).  Requires an ONLINE-CHECKABLE spec;
    never rolls the data structure back, so [hooks.undo]/[redo] are unused
    and a bare [hooks sfun] suffices. *)
let forward ?compiled ?obs ~hooks:h (spec : Spec.t) : Detector.t * t =
  let t = make ?compiled ?obs ~allow_rollback:false h spec in
  (detector ~name:(Fmt.str "fwd-gk(%s)" (Spec.adt spec)) t, t)

(** General gatekeeper (paper §3.3.2).  Accepts any L1 spec; needs working
    [undo]/[redo] hooks. *)
let general ?compiled ?obs ~hooks:h (spec : Spec.t) : Detector.t * t =
  let t = make ?compiled ?obs ~allow_rollback:true h spec in
  (detector ~name:(Fmt.str "gen-gk(%s)" (Spec.adt spec)) t, t)

(** Footprint-sharded forward gatekeeper.  When every condition is
    state-free the shards are striped under per-shard guards; otherwise the
    sharding only narrows the scan (single guard). *)
let forward_sharded ?(nshards = 16) ?compiled ?obs ~hooks:h (spec : Spec.t) :
    Detector.t * t =
  let t = make ~nshards ?compiled ?obs ~allow_rollback:false h spec in
  (detector ~name:(Fmt.str "fwd-gk-sharded(%s)" (Spec.adt spec)) t, t)

(** Footprint-sharded general gatekeeper: the active table is sharded (the
    scan narrows to own shard + overflow) but the gatekeeper keeps its
    single guard — past-state reconstruction needs a globally ordered
    mutation log. *)
let general_sharded ?(nshards = 16) ?compiled ?obs ~hooks:h (spec : Spec.t) :
    Detector.t * t =
  let t = make ~nshards ?compiled ?obs ~allow_rollback:true h spec in
  (detector ~name:(Fmt.str "gen-gk-sharded(%s)" (Spec.adt spec)) t, t)

module Private = struct
  let forward = forward
  let general = general
end
