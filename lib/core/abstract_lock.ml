(** Abstract locking (paper §3.2).

    This module implements the paper's systematic construction of abstract
    locking schemes from SIMPLE commutativity specifications:

    + one lock per data member (any value reachable as a method argument or
      return value, possibly through a pure key-derivation function such as
      [part]) plus one lock for the whole structure;
    + one lock {e mode} per method/slot: [m:ds] for the method's access to
      the structure, and one mode per clause position ([m:arg_i], [m:ret],
      [m:part(arg_i)], …);
    + a compatibility matrix derived from the specification:
      {ul
      {- [f_{m1,m2} = false] ⟹ [m1:ds] incompatible with [m2:ds];}
      {- each SIMPLE clause [t1 != t2] ⟹ mode of [t1] incompatible with
         mode of [t2];}
      {- everything else compatible.}}

    Modes compatible with every mode are superfluous; {!reduce} removes
    them (the Fig. 8(a) → Fig. 8(b) optimization).

    Theorem 1 of the paper: the scheme produced here is sound and complete
    with respect to the input specification iff the specification is SIMPLE
    — property-tested in [test/test_abstract_lock.ml]. *)

(* ------------------------------------------------------------------ *)
(* Scheme construction                                                 *)
(* ------------------------------------------------------------------ *)

(** What a method must lock: the structure lock, or the value of a pure
    key term over the invocation's arguments/returns. *)
type acquisition = {
  mode : int;  (** mode index in the compatibility matrix *)
  key : Formula.term option;
      (** [None] = the data-structure lock; [Some t] = lock on the runtime
          value of [t] (an M1-side pure term, e.g. [v1\[0\]] or
          [part(v1\[0\])]) *)
  after_exec : bool;  (** return-value locks are acquired after execution *)
}

type scheme = {
  spec : Spec.t;
  mode_names : string array;  (** mode index -> display name *)
  compat : bool array array;  (** symmetric compatibility matrix *)
  acquisitions : (string, acquisition list) Hashtbl.t;  (** per method *)
  reduced : bool;
}

let mode_name scheme i = scheme.mode_names.(i)
let n_modes scheme = Array.length scheme.mode_names

(** Canonical display/identity for a mode: method name + slot term. *)
let slot_id meth_name = function
  | None -> meth_name ^ ":ds"
  | Some t -> Fmt.str "%s:%a" meth_name Formula.pp_term t

(* Normalize an M2-side term to the corresponding M1-side term, so the same
   slot of a method gets the same mode whether the method appears first or
   second in a condition. *)
let rec to_m1_term = function
  | Formula.Arg (_, i) -> Formula.Arg (Formula.M1, i)
  | Formula.Ret _ -> Formula.Ret Formula.M1
  | Formula.Const _ as t -> t
  | Formula.Vfun (f, args) -> Formula.Vfun (f, List.map to_m1_term args)
  | Formula.Arith (op, a, b) -> Formula.Arith (op, to_m1_term a, to_m1_term b)
  | Formula.Sfun _ -> invalid_arg "abstract lock key mentions state"

exception Not_simple of string * string * Formula.t

(** Build the full (unreduced) abstract locking scheme for a SIMPLE spec.
    Raises {!Not_simple} if some condition is not in L2. *)
let construct (spec : Spec.t) : scheme =
  let modes = Hashtbl.create 32 in
  let names = ref [] in
  let n = ref 0 in
  let mode_of id =
    match Hashtbl.find_opt modes id with
    | Some i -> i
    | None ->
        let i = !n in
        incr n;
        Hashtbl.add modes id i;
        names := id :: !names;
        i
  in
  (* Step 1 of the construction: every method gets a ds mode plus one mode
     per argument and return value (Fig. 8(a) shows all of them; the
     reduction below drops the superfluous ones). *)
  List.iter
    (fun (m : Invocation.meth) ->
      ignore (mode_of (slot_id m.name None));
      for i = 0 to m.arity - 1 do
        ignore (mode_of (slot_id m.name (Some (Formula.Arg (Formula.M1, i)))))
      done;
      ignore (mode_of (slot_id m.name (Some (Formula.Ret Formula.M1)))))
    (Spec.methods spec);
  let incompat = Hashtbl.create 32 in
  let mark i j =
    Hashtbl.replace incompat (i, j) ();
    Hashtbl.replace incompat (j, i) ()
  in
  let acqs : (string, acquisition list) Hashtbl.t = Hashtbl.create 16 in
  let add_acq meth_name a =
    let cur = Option.value ~default:[] (Hashtbl.find_opt acqs meth_name) in
    if not (List.exists (fun a' -> a'.mode = a.mode) cur) then
      Hashtbl.replace acqs meth_name (a :: cur)
  in
  (* Step 2: every method acquires the structure lock in its ds mode, each
     argument's lock in its argument mode, and its return value's lock in
     its ret mode (the last one necessarily after execution). *)
  List.iter
    (fun (m : Invocation.meth) ->
      add_acq m.name
        { mode = mode_of (slot_id m.name None); key = None; after_exec = false };
      for i = 0 to m.arity - 1 do
        let t = Formula.Arg (Formula.M1, i) in
        add_acq m.name
          { mode = mode_of (slot_id m.name (Some t)); key = Some t; after_exec = false }
      done;
      let r = Formula.Ret Formula.M1 in
      add_acq m.name
        { mode = mode_of (slot_id m.name (Some r)); key = Some r; after_exec = true })
    (Spec.methods spec);
  (* Walk the specification. *)
  List.iter
    (fun ((m1, m2), cond) ->
      match cond with
      | Formula.False -> mark (mode_of (slot_id m1 None)) (mode_of (slot_id m2 None))
      | _ -> (
          match Formula.as_simple cond with
          | None -> raise (Not_simple (m1, m2, cond))
          | Some clauses ->
              List.iter
                (fun (t1, t2) ->
                  let t2m1 = to_m1_term t2 in
                  let mode1 = mode_of (slot_id m1 (Some t1))
                  and mode2 = mode_of (slot_id m2 (Some t2m1)) in
                  mark mode1 mode2;
                  add_acq m1
                    {
                      mode = mode1;
                      key = Some t1;
                      after_exec = Formula.term_mentions_ret Formula.M1 t1;
                    };
                  add_acq m2
                    {
                      mode = mode2;
                      key = Some t2m1;
                      after_exec = Formula.term_mentions_ret Formula.M1 t2m1;
                    })
                clauses))
    (Spec.pairs spec);
  let size = !n in
  let compat = Array.init size (fun i -> Array.init size (fun j -> not (Hashtbl.mem incompat (i, j)))) in
  let mode_names = Array.make size "" in
  List.iteri (fun k id -> mode_names.(size - 1 - k) <- id) !names;
  { spec; mode_names; compat; acquisitions = acqs; reduced = false }

(** Drop superfluous modes: a mode compatible with all modes need never be
    acquired (paper Fig. 8(b)). *)
let reduce (s : scheme) : scheme =
  let superfluous i = Array.for_all Fun.id s.compat.(i) in
  let acquisitions = Hashtbl.create 16 in
  Hashtbl.iter
    (fun m acqs ->
      Hashtbl.replace acquisitions m (List.filter (fun a -> not (superfluous a.mode)) acqs))
    s.acquisitions;
  { s with acquisitions; reduced = true }

let pp_matrix ?(only_used = true) ppf (s : scheme) =
  let used = Array.make (n_modes s) false in
  Hashtbl.iter (fun _ acqs -> List.iter (fun a -> used.(a.mode) <- true) acqs) s.acquisitions;
  let keep i = (not only_used) || used.(i) in
  let idxs = List.filter keep (List.init (n_modes s) Fun.id) in
  let width =
    List.fold_left (fun w i -> max w (String.length s.mode_names.(i))) 0 idxs
  in
  Fmt.pf ppf "%*s" (width + 1) "";
  List.iter (fun j -> Fmt.pf ppf " %*s" width s.mode_names.(j)) idxs;
  Fmt.pf ppf "@.";
  List.iter
    (fun i ->
      Fmt.pf ppf "%*s " (width + 1) s.mode_names.(i);
      List.iter
        (fun j -> Fmt.pf ppf " %*s" width (if s.compat.(i).(j) then "ok" else "X"))
        idxs;
      Fmt.pf ppf "@.")
    idxs

(* ------------------------------------------------------------------ *)
(* Runtime lock table                                                  *)
(* ------------------------------------------------------------------ *)

type lock_obj = Ds | Key of Value.t

module Obj_key = struct
  type t = lock_obj

  let equal a b =
    match (a, b) with
    | Ds, Ds -> true
    | Key x, Key y -> Value.equal x y
    | _ -> false

  let hash = function Ds -> 7 | Key v -> Value.hash v
end

module Obj_tbl = Hashtbl.Make (Obj_key)

type holder = { txn : int; mode : int; mutable count : int }

module Obs = Commlat_obs.Obs

(* One slice of the lock table.  A lock object lives in exactly one stripe
   (determined by its key hash; [Ds] gets a dedicated stripe), so
   acquisitions of footprint-disjoint keys touch different stripes and —
   under the striped invoke protocol — different guards. *)
type stripe = {
  locks : holder list ref Obj_tbl.t;
  held : (int, (lock_obj * holder) list) Hashtbl.t;  (** per txn *)
  sg : Guard.t;
}

type table = {
  scheme : scheme;
  compat_bits : Compile.Bitmat.t;
      (** [scheme.compat] packed into a bitset: the acquire path reads one
          byte instead of chasing two array indirections *)
  nstripes : int;  (** 0 = unstriped (a single stripe) *)
  stripes : stripe array;
      (** length [nstripes + 1] when striped — the last stripe holds the
          [Ds] lock — else 1 *)
  mu : Guard.t;
      (** the [exec] guard, serializing the concrete operation only;
          created {e after} the stripe guards so {!Guard.protect_all}'s
          canonical id order matches the stripe-then-exec nesting of
          [on_invoke] *)
  obs : Obs.t;
  c_acq : Obs.counter;  (** fresh lock acquisitions *)
  c_upg : Obs.counter;  (** re-entrant re-acquisitions (count bumps) *)
  c_deny : Obs.counter;  (** incompatible requests (conflicts) *)
}

let table ?obs:obs_enabled ?(stripes = 0) scheme =
  if stripes < 0 then invalid_arg "Abstract_lock.table: stripes must be >= 0";
  let obs =
    Obs.create ?enabled:obs_enabled
      (Fmt.str "abslock%s(%s)"
         (if stripes > 0 then "-striped" else "")
         (Spec.adt scheme.spec))
  in
  let fresh () =
    { locks = Obj_tbl.create 256; held = Hashtbl.create 64; sg = Guard.create () }
  in
  (* Deliberate [let] sequence: the stripe guards MUST be created before
     [mu] so their creation ids are smaller.  Creating both inside the
     record literal would leave the order unspecified (OCaml evaluates
     record fields right-to-left in practice, giving [mu] the SMALLER id)
     and invert {!Guard.protect_all}'s canonical order against the
     stripe-then-exec nesting of [on_invoke] — an ABBA deadlock between an
     invocation and an atomic abort. *)
  let slices = Array.init (if stripes = 0 then 1 else stripes + 1) (fun _ -> fresh ()) in
  let mu = Guard.create () in
  {
    scheme;
    compat_bits = Compile.Bitmat.of_matrix scheme.compat;
    nstripes = stripes;
    stripes = slices;
    mu;
    obs;
    c_acq = Obs.counter obs "lock_acquisitions";
    c_upg = Obs.counter obs "lock_upgrades";
    c_deny = Obs.counter obs "lock_denials";
  }

(* The stripe a lock object lives in: [Ds] gets the dedicated last stripe,
   keys hash across the rest. *)
let stripe_idx t = function
  | _ when t.nstripes = 0 -> 0
  | Ds -> t.nstripes
  | Key v -> Value.hash v land max_int mod t.nstripes

let stripe_guards t = Array.to_list (Array.map (fun s -> s.sg) t.stripes)

(* Must be called with [obj]'s stripe guard held. *)
let acquire_locked t (s : stripe) ~txn obj mode =
  let cell =
    match Obj_tbl.find_opt s.locks obj with
    | Some c -> c
    | None ->
        let c = ref [] in
        Obj_tbl.add s.locks obj c;
        c
  in
  List.iter
    (fun h ->
      if h.txn <> txn && not (Compile.Bitmat.get t.compat_bits h.mode mode)
      then begin
        Obs.incr t.c_deny;
        Obs.label t.obs ~cat:"lock_deny" t.scheme.mode_names.(mode);
        Obs.label t.obs ~cat:"abort_cause"
          (Fmt.str "%s|%s" t.scheme.mode_names.(h.mode) t.scheme.mode_names.(mode));
        Detector.conflict ~txn ~with_:h.txn
          (Fmt.str "lock %s held in mode %s, requested %s"
             (match obj with Ds -> "<ds>" | Key v -> Value.to_string v)
             t.scheme.mode_names.(h.mode) t.scheme.mode_names.(mode))
      end)
    !cell;
  match List.find_opt (fun h -> h.txn = txn && h.mode = mode) !cell with
  | Some h ->
      Obs.incr t.c_upg;
      h.count <- h.count + 1
  | None ->
      Obs.incr t.c_acq;
      Obs.label t.obs ~cat:"lock_acquire" t.scheme.mode_names.(mode);
      let h = { txn; mode; count = 1 } in
      cell := h :: !cell;
      Hashtbl.replace s.held txn
        ((obj, h) :: Option.value ~default:[] (Hashtbl.find_opt s.held txn))

(* A transaction's locks may span stripes, so take every stripe guard. *)
let release_all t txn =
  Guard.protect_all (stripe_guards t) (fun () ->
      Array.iter
        (fun (s : stripe) ->
          (match Hashtbl.find_opt s.held txn with
          | None -> ()
          | Some held ->
              List.iter
                (fun (obj, h) ->
                  match Obj_tbl.find_opt s.locks obj with
                  | None -> ()
                  | Some cell ->
                      cell := List.filter (fun h' -> h' != h) !cell;
                      if !cell = [] then Obj_tbl.remove s.locks obj)
                held);
          Hashtbl.remove s.held txn)
        t.stripes)

(* ------------------------------------------------------------------ *)
(* Detector                                                            *)
(* ------------------------------------------------------------------ *)

(* Compile a pure M1-side key term to a function of the invocation. *)
let compile_key (spec : Spec.t) (t : Formula.term) : Invocation.t -> Value.t =
  let c = Formula.compile_term t in
  fun inv ->
    c
      (Formula.env
         ~vfun:(fun name args -> Spec.vfun spec name args)
         ~arg:(fun _ i -> inv.Invocation.args.(i))
         ~ret:(fun _ -> inv.Invocation.ret)
         ())

(** Build a conflict detector from a SIMPLE specification.  [reduce_scheme]
    (default [true]) applies the superfluous-mode optimization first.

    [stripes > 0] stripes the lock table: lock objects hash across
    [stripes] guard-protected slices (plus a dedicated slice for the [Ds]
    lock), and an invocation takes only the guards of the stripes it
    acquires locks in — so transactions locking footprint-disjoint keys no
    longer serialize on one table mutex.  A method with after-execution
    (return-value) acquisitions takes every stripe guard, since its stripe
    is unknown before [exec].  The concrete [exec] itself is briefly
    serialized under a dedicated guard.

    [compiled] (default [false]) evaluates key terms through
    {!Compile.key}'s zero-environment closures instead of staging an
    environment per invocation; key values (hence lock behaviour) are
    identical.  The compatibility matrix is always consulted through the
    {!Compile.Bitmat} bitset. *)
let detector ?(reduce_scheme = true) ?(stripes = 0) ?(compiled = false) ?obs
    (spec : Spec.t) : Detector.t =
  let scheme = construct spec in
  let scheme = if reduce_scheme then reduce scheme else scheme in
  let t = table ?obs ~stripes scheme in
  let key_fn =
    if compiled then Compile.key spec else compile_key spec
  in
  (* stage the key computations once per method *)
  let compiled_acqs :
      (string, (int * bool * (Invocation.t -> Value.t) option) list) Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun m acqs ->
      Hashtbl.replace compiled_acqs m
        (List.map
           (fun (a : acquisition) ->
             (a.mode, a.after_exec, Option.map key_fn a.key))
           acqs))
    scheme.acquisitions;
  let c_inv = Obs.counter t.obs "invocations" in
  let all_sgs = stripe_guards t in
  let on_invoke (inv : Invocation.t) exec =
    let txn = inv.Invocation.txn in
    let acqs =
      Option.value ~default:[]
        (Hashtbl.find_opt compiled_acqs inv.Invocation.meth.name)
    in
    Obs.incr c_inv;
    (* before-execution acquisitions: ds lock and argument locks.  Their
       key values (hence stripes) are computable now; return-value locks
       are not, so a method with after-execution acquisitions pessimistically
       takes every stripe guard. *)
    let pre =
      List.filter_map
        (fun (mode, after_exec, key) ->
          if after_exec then None
          else
            Some (mode, match key with None -> Ds | Some k -> Key (k inv)))
        acqs
    in
    let has_after = List.exists (fun (_, ae, _) -> ae) acqs in
    let held_guards =
      if t.nstripes = 0 || has_after then all_sgs
      else
        List.sort_uniq Int.compare
          (List.map (fun (_, obj) -> stripe_idx t obj) pre)
        |> List.map (fun i -> t.stripes.(i).sg)
    in
    Guard.protect_all held_guards (fun () ->
        List.iter
          (fun (mode, obj) ->
            acquire_locked t t.stripes.(stripe_idx t obj) ~txn obj mode)
          pre;
        let r =
          Guard.protect t.mu (fun () ->
              let r = exec () in
              inv.Invocation.ret <- r;
              r)
        in
        (* after-execution acquisitions: return-value locks *)
        List.iter
          (fun (mode, after_exec, key) ->
            if after_exec then
              let obj = match key with None -> Ds | Some k -> Key (k inv) in
              acquire_locked t t.stripes.(stripe_idx t obj) ~txn obj mode)
          acqs;
        r)
  in
  {
    Detector.name =
      Fmt.str "abslock%s(%s)" (if stripes > 0 then "-striped" else "") (Spec.adt spec);
    on_invoke;
    on_commit = (fun txn -> release_all t txn);
    on_abort = (fun txn -> release_all t txn);
    reset =
      (fun () ->
        Guard.protect_all all_sgs (fun () ->
            Array.iter
              (fun (s : stripe) ->
                Obj_tbl.reset s.locks;
                Hashtbl.reset s.held)
              t.stripes));
    snapshot = (fun () -> Obs.snapshot t.obs);
    guards = all_sgs @ [ t.mu ];
  }

module Private = struct
  let detector = detector
end
