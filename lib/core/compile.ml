(** The spec compiler: zero-allocation conflict checks (ROADMAP item 3).

    Detectors evaluate the same handful of commutativity conditions
    millions of times.  The staged {!Formula.compile} already removes the
    AST dispatch, but every call still builds a fresh {!Formula.env} — an
    argument closure, a return closure, an [sfun]/[vfun] closure and the
    record itself — and resolves every [Vfun] through [List.assoc].  On a
    state-free condition that is pure overhead: nothing in the check
    depends on anything but the two invocation records.

    This module specializes each ordered method-pair condition into a flat
    closure [Invocation.t -> Invocation.t -> bool] that reads arguments
    and return values straight out of the records:

    - {b no environment}: state-free conditions ([Formula.is_state_free])
      compile to direct two-invocation code with zero minor-heap
      allocations per check (vfun calls are the one exception — the
      [Value.t list] argument must be built);
    - {b vfuns resolved once}: a spec's value functions are collected into
      an array at compile time and each [Vfun] node captures its slot, so
      no name lookup happens per evaluation;
    - {b int fast path}: comparisons over arithmetic sub-terms are fused
      into unboxed [int] arithmetic when every leaf is an integer at run
      time, falling back to the generic {!Formula.arith_op} path on the
      first non-integer leaf so verdicts are bit-identical to the
      interpreter (including the total division-by-zero semantics);
    - {b state-dependent fallback}: conditions with [Sfun]s keep the
      staged interpreter — they need a gatekeeper's log-backed oracle and
      are out of scope for the fast path (recorded as [Interp]).

    {!Bitmat} is the companion representation change for abstract locks: a
    lock-mode compatibility matrix packed into a [Bytes] bitset, one bit
    per ordered mode pair, replacing the generic [bool array array]
    double-indirection on the acquire path. *)

(* ------------------------------------------------------------------ *)
(* Bit-matrix lock-mode compatibility                                  *)
(* ------------------------------------------------------------------ *)

module Bitmat = struct
  type t = { n : int; bits : Bytes.t }

  let create n =
    if n < 0 then invalid_arg "Compile.Bitmat.create: negative dimension";
    { n; bits = Bytes.make (((n * n) + 7) / 8) '\000' }

  let dim t = t.n

  let index t i j =
    if i < 0 || i >= t.n || j < 0 || j >= t.n then
      invalid_arg
        (Fmt.str "Compile.Bitmat: mode pair (%d,%d) out of range for %d modes"
           i j t.n);
    (i * t.n) + j

  let set t i j b =
    let k = index t i j in
    let byte = Char.code (Bytes.get t.bits (k lsr 3)) in
    let mask = 1 lsl (k land 7) in
    Bytes.set t.bits (k lsr 3)
      (Char.chr (if b then byte lor mask else byte land lnot mask))

  (* The acquire-path read: one multiply, one byte load, one mask.  Bounds
     are enforced by [Bytes.get] (modes come from the lock table, so the
     row/column arithmetic cannot go out of range without the byte index
     doing so too — [n*n] bits never span fewer bytes than any valid k). *)
  let get t i j =
    let k = (i * t.n) + j in
    Char.code (Bytes.get t.bits (k lsr 3)) land (1 lsl (k land 7)) <> 0

  let of_matrix m =
    let n = Array.length m in
    let t = create n in
    Array.iteri
      (fun i row ->
        if Array.length row <> n then
          invalid_arg "Compile.Bitmat.of_matrix: ragged matrix";
        Array.iteri (fun j b -> if b then set t i j true) row)
      m;
    t
end

(* ------------------------------------------------------------------ *)
(* Vfun tables: name lookup at compile time, array slot at run time     *)
(* ------------------------------------------------------------------ *)

type vtable = {
  vnames : string array;
  vimpls : (Value.t list -> Value.t) array;
}

let vtable (spec : Spec.t) : vtable =
  {
    vnames = Array.of_list (List.map fst spec.Spec.vfuns);
    vimpls = Array.of_list (List.map snd spec.Spec.vfuns);
  }

let vfun_slot vt name =
  let rec go i =
    if i >= Array.length vt.vnames then -1
    else if String.equal vt.vnames.(i) name then i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Two-invocation term compilation (state-free fast path)               *)
(* ------------------------------------------------------------------ *)

(* Matches Invocation.env's argument accessor exactly: bounds-checked with
   a Value.Type_error, so compiled and interpreted checks fail (and are
   caught) identically.  The error path lives out of line — keeping the
   accessor body tiny is what lets the compiler inline it into the flat
   comparison closures below. *)
let arg_oob (i : Invocation.t) idx =
  Value.type_error "argument index %d out of range for %s" idx
    i.Invocation.meth.Invocation.name

let[@inline] arg_of (i : Invocation.t) idx =
  let a = i.Invocation.args in
  if idx < 0 || idx >= Array.length a then arg_oob i idx
  else Array.unsafe_get a idx

let rec term vt (t : Formula.term) : Invocation.t -> Invocation.t -> Value.t =
  match t with
  | Formula.Arg (Formula.M1, idx) -> fun i1 _ -> arg_of i1 idx
  | Formula.Arg (Formula.M2, idx) -> fun _ i2 -> arg_of i2 idx
  | Formula.Ret Formula.M1 -> fun i1 _ -> i1.Invocation.ret
  | Formula.Ret Formula.M2 -> fun _ i2 -> i2.Invocation.ret
  | Formula.Const v -> fun _ _ -> v
  | Formula.Sfun _ ->
      (* [condition] only sends state-free formulas here. *)
      invalid_arg "Compile.term: state-dependent term in the fast path"
  | Formula.Vfun (name, args) -> (
      let cargs = List.map (term vt) args in
      match vfun_slot vt name with
      | -1 ->
          (* Same behaviour as Spec.vfun on an unknown name, minus the
             per-eval List.assoc walk for the known ones. *)
          fun _ _ -> raise (Formula.Unsupported ("vfun " ^ name))
      | slot -> (
          let f = vt.vimpls.(slot) in
          (* The argument list is the one unavoidable allocation of a vfun
             call; specialize the common arities so it is a single block. *)
          match cargs with
          | [] -> fun _ _ -> f []
          | [ c1 ] -> fun i1 i2 -> f [ c1 i1 i2 ]
          | [ c1; c2 ] -> fun i1 i2 -> f [ c1 i1 i2; c2 i1 i2 ]
          | _ -> fun i1 i2 -> f (List.map (fun c -> c i1 i2) cargs)))
  | Formula.Arith (op, a, b) ->
      let ca = term vt a and cb = term vt b in
      fun i1 i2 -> Formula.arith_op op (ca i1 i2) (cb i1 i2)

(* Leaf flattening: nearly every comparison in a shipped spec is between
   two leaves (argument, return value or constant).  A closure per AST
   node would pay an indirect call per leaf; instead a leaf-vs-leaf
   comparison carries its operands as data and evaluates them through a
   direct match, so the whole comparison is one flat closure. *)
type leaf =
  | La1 of int  (** M1 argument *)
  | La2 of int  (** M2 argument *)
  | Lr1
  | Lr2
  | Lc of Value.t

let leaf_of = function
  | Formula.Arg (Formula.M1, i) -> Some (La1 i)
  | Formula.Arg (Formula.M2, i) -> Some (La2 i)
  | Formula.Ret Formula.M1 -> Some Lr1
  | Formula.Ret Formula.M2 -> Some Lr2
  | Formula.Const v -> Some (Lc v)
  | Formula.Sfun _ | Formula.Vfun _ | Formula.Arith _ -> None

let[@inline] read_leaf l (i1 : Invocation.t) (i2 : Invocation.t) =
  match l with
  | La1 i -> arg_of i1 i
  | La2 i -> arg_of i2 i
  | Lr1 -> i1.Invocation.ret
  | Lr2 -> i2.Invocation.ret
  | Lc v -> v

type flat = { fop : Formula.cmp; fl : leaf; fr : leaf }

let flat_cmp op a b =
  match (leaf_of a, leaf_of b) with
  | Some fl, Some fr -> Some { fop = op; fl; fr }
  | _ -> None

(* Equality with [neg] folding Ne into the same code, and the
   integer-vs-integer case — virtually every footprint clause — paying an
   inline compare instead of a [Value.equal] call.  Identical verdicts by
   definition. *)
let[@inline] veq_xor neg a b =
  (match (a, b) with
  | Value.Int x, Value.Int y -> Int.equal x y
  | _ -> Value.equal a b)
  <> neg

(* Monomorphized comparison closures.  The non-flambda backend inlines
   too little for a generic leaf walker to run at native speed, so each
   common (operator, leaf, leaf) shape gets its own flat closure body.
   Arms whose pattern mirrors the operand order are safe because the
   mirrored operand ([Lc]/[Lr]) cannot raise, so left-to-right
   evaluation-order semantics (argument bounds errors) are preserved. *)
let flat_closure { fop; fl; fr } : Invocation.t -> Invocation.t -> bool =
  match fop with
  | Formula.Eq | Formula.Ne -> (
      let neg = fop = Formula.Ne in
      match (fl, fr) with
      | La1 i, La2 j ->
          (* the footprint-clause shape — worth writing out in full: the
             backend does not reliably inline [arg_of]/[veq_xor] into the
             closure body, and this arm decides almost every check *)
          fun i1 i2 ->
           let a1 = i1.Invocation.args and a2 = i2.Invocation.args in
           if i < 0 || i >= Array.length a1 then (arg_oob i1 i : bool)
           else if j < 0 || j >= Array.length a2 then arg_oob i2 j
           else
             (match (Array.unsafe_get a1 i, Array.unsafe_get a2 j) with
             | Value.Int x, Value.Int y -> Int.equal x y
             | a, b -> Value.equal a b)
             <> neg
      | La2 i, La1 j -> fun i1 i2 -> veq_xor neg (arg_of i2 i) (arg_of i1 j)
      | La1 i, La1 j -> fun i1 _ -> veq_xor neg (arg_of i1 i) (arg_of i1 j)
      | La2 i, La2 j -> fun _ i2 -> veq_xor neg (arg_of i2 i) (arg_of i2 j)
      | La1 i, Lc v | Lc v, La1 i -> fun i1 _ -> veq_xor neg (arg_of i1 i) v
      | La2 i, Lc v | Lc v, La2 i -> fun _ i2 -> veq_xor neg (arg_of i2 i) v
      | Lr1, Lc v | Lc v, Lr1 -> fun i1 _ -> veq_xor neg i1.Invocation.ret v
      | Lr2, Lc v | Lc v, Lr2 -> fun _ i2 -> veq_xor neg i2.Invocation.ret v
      | Lr1, Lr2 | Lr2, Lr1 ->
          fun i1 i2 -> veq_xor neg i1.Invocation.ret i2.Invocation.ret
      | La1 i, Lr1 | Lr1, La1 i ->
          fun i1 _ -> veq_xor neg (arg_of i1 i) i1.Invocation.ret
      | La1 i, Lr2 | Lr2, La1 i ->
          fun i1 i2 -> veq_xor neg (arg_of i1 i) i2.Invocation.ret
      | La2 i, Lr1 | Lr1, La2 i ->
          fun i1 i2 -> veq_xor neg (arg_of i2 i) i1.Invocation.ret
      | La2 i, Lr2 | Lr2, La2 i ->
          fun _ i2 -> veq_xor neg (arg_of i2 i) i2.Invocation.ret
      | Lr1, Lr1 | Lr2, Lr2 -> fun _ _ -> not neg
      | Lc a, Lc b ->
          let r = veq_xor neg a b in
          fun _ _ -> r)
  | op ->
      (* ordered comparisons between plain leaves are rare in shipped
         specs (ordering usually goes through a vfun like [dist], which
         is not a leaf); the generic reader is fine here *)
      fun i1 i2 -> Formula.cmp_op op (read_leaf fl i1 i2) (read_leaf fr i1 i2)

(* Unboxed-int fusion for comparisons over arithmetic.  [int_term] yields
   a plain-int evaluator that raises [Not_an_int] on the first non-integer
   leaf; the comparison wrapper catches it and re-runs the generic boxed
   path, so the fast path can never change a verdict — only skip the
   per-eval [Value.Int] boxes. *)
exception Not_an_int

let rec int_term vt (t : Formula.term) :
    (Invocation.t -> Invocation.t -> int) option =
  match t with
  | Formula.Const (Value.Int n) -> Some (fun _ _ -> n)
  | Formula.Const _ -> None
  | Formula.Arg _ | Formula.Ret _ ->
      let c = term vt t in
      Some
        (fun i1 i2 ->
          match c i1 i2 with
          | Value.Int n -> n
          | _ -> raise_notrace Not_an_int)
  | Formula.Arith (op, a, b) -> (
      match (int_term vt a, int_term vt b) with
      | Some ca, Some cb ->
          Some
            (match op with
            | Formula.Add -> fun i1 i2 -> ca i1 i2 + cb i1 i2
            | Formula.Sub -> fun i1 i2 -> ca i1 i2 - cb i1 i2
            | Formula.Mul -> fun i1 i2 -> ca i1 i2 * cb i1 i2
            | Formula.Div ->
                (* Total semantics, matching Formula.arith_op: x/0 = 0.
                   Evaluate the numerator first so a non-integer numerator
                   falls back to the generic (float-coercing) path even
                   when the denominator is 0. *)
                fun i1 i2 ->
                 let x = ca i1 i2 in
                 let y = cb i1 i2 in
                 if y = 0 then 0 else x / y)
      | _ -> None)
  | Formula.Sfun _ | Formula.Vfun _ -> None

let rec term_has_arith = function
  | Formula.Arith _ -> true
  | Formula.Arg _ | Formula.Ret _ | Formula.Const _ -> false
  | Formula.Sfun (_, _, args) | Formula.Vfun (_, args) ->
      List.exists term_has_arith args

let int_cmp : Formula.cmp -> int -> int -> bool = function
  | Formula.Eq -> ( = )
  | Formula.Ne -> ( <> )
  | Formula.Lt -> ( < )
  | Formula.Le -> ( <= )
  | Formula.Gt -> ( > )
  | Formula.Ge -> ( >= )

let compile_cmp vt op a b : Invocation.t -> Invocation.t -> bool =
  match flat_cmp op a b with
  (* leaf vs leaf — one flat closure, no inner calls (leaves are never
     arithmetic, so fusion doesn't apply here) *)
  | Some fl -> flat_closure fl
  | None -> (
      let generic =
        let ca = term vt a and cb = term vt b in
        match op with
        | Formula.Eq -> fun i1 i2 -> Value.equal (ca i1 i2) (cb i1 i2)
        | Formula.Ne -> fun i1 i2 -> not (Value.equal (ca i1 i2) (cb i1 i2))
        | op -> fun i1 i2 -> Formula.cmp_op op (ca i1 i2) (cb i1 i2)
      in
      (* The generic path is already allocation-free on Arg/Ret/Const leaves
         (Value.equal/compare build nothing); fusion only pays where Arith
         would otherwise box an intermediate Value.Int per evaluation. *)
      if term_has_arith a || term_has_arith b then
        match (int_term vt a, int_term vt b) with
        | Some ia, Some ib ->
            let c = int_cmp op in
            fun i1 i2 -> (
              match c (ia i1 i2) (ib i1 i2) with
              | verdict -> verdict
              | exception Not_an_int -> generic i1 i2)
        | _ -> generic
      else generic)

let rec formula vt (f : Formula.t) : Invocation.t -> Invocation.t -> bool =
  match f with
  | Formula.True -> fun _ _ -> true
  | Formula.False -> fun _ _ -> false
  | Formula.Cmp (op, a, b) -> compile_cmp vt op a b
  | Formula.Not f ->
      let c = formula vt f in
      fun i1 i2 -> not (c i1 i2)
  | Formula.And (a, b) ->
      let ca = formula vt a and cb = formula vt b in
      fun i1 i2 -> ca i1 i2 && cb i1 i2
  | Formula.Or (a, b) ->
      let ca = formula vt a and cb = formula vt b in
      fun i1 i2 -> ca i1 i2 || cb i1 i2

(* ------------------------------------------------------------------ *)
(* Compiled checks and compiled specs                                   *)
(* ------------------------------------------------------------------ *)

type check =
  | Static of bool
  | Fast of (Invocation.t -> Invocation.t -> bool)
  | Interp of Formula.t * (Formula.env -> bool)

let kind = function
  | Static b -> if b then "static-true" else "static-false"
  | Fast _ -> "fast"
  | Interp _ -> "interp"

let condition_with vt (f : Formula.t) : check =
  match f with
  | Formula.True -> Static true
  | Formula.False -> Static false
  | f when Formula.is_state_free f -> Fast (formula vt f)
  | f -> Interp (f, Formula.compile f)

let compile_condition spec f = condition_with (vtable spec) f

type t = {
  spec : Spec.t;
  vt : vtable;
  table : (string * string, check) Hashtbl.t;
}

let of_spec (spec : Spec.t) : t =
  let vt = vtable spec in
  let table = Hashtbl.create 32 in
  List.iter
    (fun ((m1, m2), f) -> Hashtbl.replace table (m1, m2) (condition_with vt f))
    (Spec.all_conditions spec);
  { spec; vt; table }

let spec t = t.spec
let vfun_names t = Array.copy t.vt.vnames

(* Unspecified pairs default to [false], exactly like Spec.cond. *)
let condition t ~first ~second =
  match Hashtbl.find_opt t.table (first, second) with
  | Some c -> c
  | None -> Static false

let conditions t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t.table []
  |> List.sort (fun (k1, _) (k2, _) -> Stdlib.compare (k1 : string * string) k2)

let check_pure t (c : check) (i1 : Invocation.t) (i2 : Invocation.t) : bool =
  match c with
  | Static b -> b
  | Fast f -> f i1 i2
  | Interp (_, compiled) ->
      compiled
        (Invocation.env
           ~sfun:(fun name _ _ _ -> raise (Formula.Unsupported name))
           ~vfun:(fun name args -> Spec.vfun t.spec name args)
           i1 i2)

(* ------------------------------------------------------------------ *)
(* Single-invocation key compilation (lock keys, shard keys)            *)
(* ------------------------------------------------------------------ *)

(* Semantics match the env-based key evaluators these replace (see
   Footprint/Abstract_lock): any side's Arg reads the one invocation's
   argument array directly, Ret reads its return slot, Sfuns are
   unsupported (keys are state-free by construction). *)
let rec key_term vt (t : Formula.term) : Invocation.t -> Value.t =
  match t with
  | Formula.Arg (_, idx) -> fun inv -> inv.Invocation.args.(idx)
  | Formula.Ret _ -> fun inv -> inv.Invocation.ret
  | Formula.Const v -> fun _ -> v
  | Formula.Sfun (name, _, _) -> fun _ -> raise (Formula.Unsupported name)
  | Formula.Vfun (name, args) -> (
      let cargs = List.map (key_term vt) args in
      match vfun_slot vt name with
      | -1 -> fun _ -> raise (Formula.Unsupported ("vfun " ^ name))
      | slot -> (
          let f = vt.vimpls.(slot) in
          match cargs with
          | [] -> fun _ -> f []
          | [ c1 ] -> fun inv -> f [ c1 inv ]
          | [ c1; c2 ] -> fun inv -> f [ c1 inv; c2 inv ]
          | _ -> fun inv -> f (List.map (fun c -> c inv) cargs)))
  | Formula.Arith (op, a, b) ->
      let ca = key_term vt a and cb = key_term vt b in
      fun inv -> Formula.arith_op op (ca inv) (cb inv)

let key spec t = key_term (vtable spec) t
