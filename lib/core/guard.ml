(** Reentrant, canonically-ordered locks for detector-internal state.

    Every conflict detector serializes its own critical sections — the
    abstract-lock table, a gatekeeper's active set and mutation log, the
    STM's cell table — behind one of these guards instead of a bare
    [Mutex.t].  Two properties make that swap worth a module:

    - {b Reentrancy.}  The domain executor must run a doomed transaction's
      undo log and the detector's [on_abort] as {e one} atomic step (a
      general gatekeeper's undo/redo sweep would otherwise re-apply writes
      the rollback just reverted, from the aborted transaction's
      still-logged invocations).  It does so by taking the detector's
      guards around both; [on_abort] then re-enters the same guard it
      already holds, which a plain mutex would deadlock on.
    - {b Canonical ordering.}  A transaction can span several detectors
      ({!Detector.compose}), so a rollback takes several guards at once.
      {!protect_all} acquires them in globally consistent (creation-id)
      order, so two domains rolling back transactions over overlapping
      detector sets cannot deadlock.

    Ownership is tracked by domain, so a guard is {e not} reentrant across
    systhreads of one domain — detectors never do that. *)

type t = {
  id : int;  (** global creation order; the canonical acquisition order *)
  mu : Mutex.t;
  owner : int Atomic.t;  (** owning domain id, or [-1] *)
  mutable depth : int;  (** re-entries by the owner; written under [mu] *)
}

let ids = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add ids 1;
    mu = Mutex.create ();
    owner = Atomic.make (-1);
    depth = 0;
  }

let id t = t.id
let self () = (Domain.self () :> int)

(** Acquire (blocking), re-entering for free if this domain already holds
    the guard.  Announces itself to {!Schedpoint} first so the virtual
    scheduler can block the acquiring fiber (the real mutex never blocks
    under single-domain exploration — same-domain reentrancy makes it a
    depth counter — so virtual mutual exclusion lives in the scheduler). *)
let lock t =
  Schedpoint.emit (Schedpoint.Acquire t.id);
  let me = self () in
  if Atomic.get t.owner = me then t.depth <- t.depth + 1
  else begin
    Mutex.lock t.mu;
    Atomic.set t.owner me;
    t.depth <- 1
  end

let unlock t =
  Schedpoint.emit (Schedpoint.Release t.id);
  assert (Atomic.get t.owner = self ());
  t.depth <- t.depth - 1;
  if t.depth = 0 then begin
    Atomic.set t.owner (-1);
    Mutex.unlock t.mu
  end

(** [protect t f] runs [f] holding [t]; releases on any exit. *)
let protect t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

(** [protect_all ts f] runs [f] holding every guard in [ts], acquired in
    canonical id order (duplicates are taken once).  This is the executor's
    rollback primitive: with every involved detector's guard held, the undo
    log and [on_abort] form one atomic step. *)
let protect_all ts f =
  let ts = List.sort_uniq (fun a b -> Int.compare a.id b.id) ts in
  let rec go = function
    | [] -> f ()
    | t :: rest -> protect t (fun () -> go rest)
  in
  go ts
