(** Commutativity specifications (paper §2.3).

    A specification maps each {e ordered} pair of methods [(m1, m2)] — read
    "[m1] was invoked first" — to a commutativity condition.  The paper
    writes specifications symmetrically and omits the mirrored halves "for
    brevity" (Fig. 2 footnote); here both orientations are stored
    explicitly, because for state-dependent conditions (union-find, Fig. 5)
    the two orientations are genuinely different formulas.

    Missing entries default to [false] — the sound choice: methods that the
    author said nothing about are assumed to conflict. *)

type t = {
  adt : string;
  methods : Invocation.meth list;
  conditions : (string * string, Formula.t) Hashtbl.t;
  vfuns : (string * (Value.t list -> Value.t)) list;
      (** interpretations of the pure value functions ([dist], [part], …)
          used by this spec's formulas *)
}

let create ?(vfuns = []) ~adt methods =
  { adt; methods; conditions = Hashtbl.create 16; vfuns }

let adt t = t.adt
let methods t = t.methods

let find_meth t name =
  match List.find_opt (fun (m : Invocation.meth) -> m.name = name) t.methods with
  | Some m -> m
  | None -> invalid_arg (Fmt.str "Spec: unknown method %s on %s" name t.adt)

let vfun t name =
  match List.assoc_opt name t.vfuns with
  | Some f -> f
  | None -> raise (Formula.Unsupported ("vfun " ^ name))

(** Register the condition for the ordered pair ([first], [second]). *)
let add_directed t ~first ~second f =
  if not (Formula.well_formed f) then
    invalid_arg
      (Fmt.str "Spec.add_directed: ill-formed condition for (%s,%s): %a" first
         second Formula.pp f);
  ignore (find_meth t first);
  ignore (find_meth t second);
  Hashtbl.replace t.conditions (first, second) f

(** Register a condition for both orientations.  Only valid for state-free
    formulas, whose mirror is a pure renaming; state-dependent conditions
    must be registered with {!add_directed} in each orientation. *)
let add_sym t m1 m2 f =
  if not (Formula.is_state_free f) then
    invalid_arg "Spec.add_sym: state-dependent formula; use add_directed";
  add_directed t ~first:m1 ~second:m2 f;
  if m1 <> m2 then add_directed t ~first:m2 ~second:m1 (Formula.mirror f)

(** The condition for "[first] executed, then [second]".  Defaults to
    [false] (conservative) when unspecified. *)
let cond t ~first ~second =
  match Hashtbl.find_opt t.conditions (first, second) with
  | Some f -> f
  | None -> Formula.False

(* Hashtbl.fold order depends on the hash seed and insertion history, so
   every enumeration of the condition table is sorted by method-name pair
   before anyone sees it: JSON diagnostics, goldens, the spec compiler and
   the CEGIS loop all iterate this list and must not flake across OCaml
   hash-seed changes.  Keys are unique, so sorting by key alone is a total
   deterministic order. *)
let all_conditions t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.conditions []
  |> List.sort (fun (k1, _) (k2, _) -> Stdlib.compare (k1 : string * string) k2)

let pairs = all_conditions

(** Interpretation of a pure value function, resolved once ([None] if the
    spec does not define it) — the spec compiler calls this at compile
    time instead of paying {!vfun}'s [List.assoc] on every evaluation. *)
let vfun_impl t name = List.assoc_opt name t.vfuns

(** Classification of a whole specification: the weakest scheme able to
    implement it (paper §3.4's hierarchy).  A spec is SIMPLE iff all its
    conditions are; ONLINE-CHECKABLE iff all conditions are at most
    online-checkable; GENERAL otherwise. *)
let classify t =
  let worst = ref Formula.Simple in
  List.iter
    (fun ((m1, m2), f) ->
      ignore m1;
      ignore m2;
      match Formula.classify f with
      | Formula.Simple -> ()
      | Formula.Online -> if !worst = Formula.Simple then worst := Formula.Online
      | Formula.General -> worst := Formula.General)
    (pairs t);
  !worst

(** All pairs are covered (including same-method pairs) in both
    orientations; raises otherwise.  Detectors call this at construction
    time. *)
let validate ?(require_total = false) t =
  List.iter
    (fun ((m1, m2), f) ->
      if not (Formula.well_formed f) then
        invalid_arg (Fmt.str "Spec %s: ill-formed condition for (%s,%s)" t.adt m1 m2))
    (pairs t);
  if require_total then
    List.iter
      (fun (m1 : Invocation.meth) ->
        List.iter
          (fun (m2 : Invocation.meth) ->
            if not (Hashtbl.mem t.conditions (m1.name, m2.name)) then
              invalid_arg
                (Fmt.str "Spec %s: missing condition for (%s,%s)" t.adt m1.name
                   m2.name))
          t.methods)
      t.methods

let pp ppf t =
  Fmt.pf ppf "@[<v>spec %s (%a):@," t.adt
    Fmt.(list ~sep:comma Invocation.pp_meth)
    t.methods;
  List.iter
    (fun ((m1, m2), f) ->
      Fmt.pf ppf "  %s ; %s  commute if  %a@," m1 m2 Formula.pp f)
    (pairs t);
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Observed-invocation commutativity (the explorer's independence      *)
(* relation)                                                           *)
(* ------------------------------------------------------------------ *)

(** [commutes t i1 i2] evaluates the condition for "[i1] executed, then
    [i2]" on the two {e observed} invocations.  [Some true] means the pair
    commutes at this point of the lattice — by the paper's Definition 1
    both execution orders reach the same state and return values, so a
    schedule explorer never needs to try the other order.  [Some false]
    means the condition refutes commutativity on these arguments.  [None]
    means the condition cannot be decided from the observations alone:
    it is state-dependent (needs an [Sfun] oracle we don't have here), it
    reads a return value the caller flagged as not yet produced
    ([~ret1_known]/[~ret2_known] default to [true]), or evaluation hit an
    uninterpreted function.  Callers must treat [None] as "may conflict". *)
let commutes ?(ret1_known = true) ?(ret2_known = true) t (i1 : Invocation.t)
    (i2 : Invocation.t) : bool option =
  let f = cond t ~first:i1.Invocation.meth.Invocation.name
      ~second:i2.Invocation.meth.Invocation.name in
  match f with
  | Formula.True -> Some true
  | Formula.False -> Some false
  | _ ->
      let base =
        Invocation.env
          ~sfun:(fun name _ _ _ -> raise (Formula.Unsupported name))
          ~vfun:(fun name args -> vfun t name args)
          i1 i2
      in
      (* An unobserved return value only poisons the conditions that
         actually read it: [eval] short-circuits, so [ne(a1,a2) \/ …ret…]
         still decides commutativity of distinct keys before either
         invocation has executed. *)
      let ret side =
        (match side with
        | Formula.M1 when not ret1_known ->
            raise (Formula.Unsupported "ret(m1) not yet observed")
        | Formula.M2 when not ret2_known ->
            raise (Formula.Unsupported "ret(m2) not yet observed")
        | _ -> ());
        base.Formula.ret side
      in
      let env = { base with Formula.ret } in
      (match Formula.eval env f with
       | b -> Some b
       | exception Formula.Unsupported _ -> None
       | exception Value.Type_error _ -> None)
