(** The spec compiler: zero-allocation conflict checks (ROADMAP item 3).

    Specializes each ordered method-pair commutativity condition into a
    flat closure over the two invocation records — no {!Formula.env}
    construction, vfuns resolved once into an array, comparisons over
    arithmetic fused to unboxed [int] code with an exact fallback to the
    generic interpreter semantics.  State-free conditions check with zero
    minor-heap allocations (vfun argument lists are the one documented
    exception); state-dependent conditions keep the staged interpreter and
    are served through a gatekeeper's log-backed environment as before.

    Verdicts are bit-identical to {!Formula.eval} on every input,
    including the total division-by-zero semantics and the exception
    behaviour on type errors and unsupported functions (see the
    differential suite in [test/test_compile.ml]). *)

(** A lock-mode compatibility matrix packed into a [Bytes] bitset: one bit
    per ordered mode pair, so the abstract-lock acquire path pays a single
    byte load instead of two array indirections. *)
module Bitmat : sig
  type t

  (** [create n] is the all-incompatible matrix over [n] modes. *)
  val create : int -> t

  (** Pack a square [bool array array]; raises [Invalid_argument] on a
      ragged matrix. *)
  val of_matrix : bool array array -> t

  val dim : t -> int
  val set : t -> int -> int -> bool -> unit

  (** [get t held requested] — allocation-free, one byte load. *)
  val get : t -> int -> int -> bool
end

(** A compiled condition.  [Static] needs no evaluation at all; [Fast] is
    the zero-environment two-invocation closure (state-free conditions);
    [Interp] keeps the original formula and its staged interpreter for
    state-dependent conditions, which need a detector-supplied
    environment (log-backed [sfun]s). *)
type check =
  | Static of bool
  | Fast of (Invocation.t -> Invocation.t -> bool)
  | Interp of Formula.t * (Formula.env -> bool)

(** ["static-true" | "static-false" | "fast" | "interp"] — for reports. *)
val kind : check -> string

(** Compile one condition against a spec's vfun table. *)
val compile_condition : Spec.t -> Formula.t -> check

(** A whole compiled spec: every registered ordered pair's condition,
    sharing one vfun array. *)
type t

val of_spec : Spec.t -> t
val spec : t -> Spec.t

(** The vfun names resolved into the compile-time array, in slot order. *)
val vfun_names : t -> string array

(** The compiled condition for "[first] executed, then [second]";
    [Static false] when unspecified (same default as {!Spec.cond}). *)
val condition : t -> first:string -> second:string -> check

(** All compiled (ordered pair, check) entries, deterministically
    sorted. *)
val conditions : t -> ((string * string) * check) list

(** Evaluate a check on two observed invocations with no state oracle:
    [Fast] checks run directly; [Interp] checks are evaluated through
    {!Invocation.env} with an [sfun] that raises {!Formula.Unsupported}
    (the same environment {!Spec.commutes} uses, so this allocates).
    Exceptions propagate as in the interpreter. *)
val check_pure : t -> check -> Invocation.t -> Invocation.t -> bool

(** Compile a state-free single-side key term (lock keys, shard keys) to
    a direct evaluator over one invocation — the zero-environment
    replacement for [Formula.compile_term] + a per-invocation
    {!Formula.env}. *)
val key : Spec.t -> Formula.term -> Invocation.t -> Value.t
