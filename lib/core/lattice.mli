(** The commutativity lattice (paper §2.4).

    Valid commutativity conditions for a method pair form a bounded lattice
    ordered by logical implication, with meet = conjunction, join =
    disjunction, bottom = [false] and top = the precise condition.
    Specifications are ordered pointwise.

    Implication between L1 formulas is undecidable in general, so two
    decision procedures are provided: {!leq_syntactic}, a cheap sufficient
    condition covering the moves the paper performs (dropping disjuncts,
    strengthening clauses, partition coarsening, going to [false]); and
    {!leq_bounded}, exhaustive evaluation over caller-supplied sample
    environments — a bounded model check used by the test suite to verify
    every lattice claim on the example specs. *)

(** {1 Condition-level operations} *)

val meet : Formula.t -> Formula.t -> Formula.t
val join : Formula.t -> Formula.t -> Formula.t
val bot : Formula.t

(** The precise condition plays the role of top; identity placeholder. *)
val top_of : Formula.t -> Formula.t

(** Sufficient syntactic implication check: [leq_syntactic f1 f2 = true]
    implies [f1 => f2].  Covers dropped disjuncts, strengthened
    conjunctions and the partition rule [g(x) != g(y) => x != y]. *)
val leq_syntactic : Formula.t -> Formula.t -> bool

(** [leq_bounded ~envs f1 f2] checks [f1 => f2] on every supplied sample
    environment (environments whose evaluation raises are skipped). *)
val leq_bounded : envs:Formula.env list -> Formula.t -> Formula.t -> bool

val equiv_bounded : envs:Formula.env list -> Formula.t -> Formula.t -> bool

(** Like {!leq_bounded} but [None] when no environment evaluated (every
    sample raised), so vacuous truth is distinguishable from evidence.
    Used by the spec linter, where a vacuously-true implication must not
    justify dropping a disjunct. *)
val leq_bounded_checked :
  envs:Formula.env list -> Formula.t -> Formula.t -> bool option

val equiv_bounded_checked :
  envs:Formula.env list -> Formula.t -> Formula.t -> bool option

(** {1 Specification-level lattice} *)

(** Pointwise order via {!leq_syntactic} (missing entries are [false]). *)
val spec_leq : Spec.t -> Spec.t -> bool

(** Pointwise meet (greatest lower bound). *)
val spec_meet : ?adt:string -> Spec.t -> Spec.t -> Spec.t

(** Pointwise join (least upper bound). *)
val spec_join : ?adt:string -> Spec.t -> Spec.t -> Spec.t

(** ⊥: every condition [false] — implementable as a single global exclusive
    lock (paper §4.1). *)
val spec_bot : adt:string -> Invocation.meth list -> Spec.t
