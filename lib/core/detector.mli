(** Common interface of conflict detectors.

    A detector mediates every method invocation on a protected data
    structure.  [on_invoke inv exec] must decide whether [inv] may proceed
    given the currently active invocations of other transactions (raising
    {!Conflict} otherwise) and run [exec] (the actual data-structure
    operation), recording its return value in [inv.ret].

    Different schemes order these steps differently: abstract locking
    acquires locks {e before} executing, gatekeepers execute first and then
    check (conditions may refer to the return value).  Either way the whole
    of [on_invoke] is atomic with respect to other invocations on the same
    detector.

    When [on_invoke] raises {!Conflict} after [exec] has run, the enclosing
    transaction is doomed; the runtime rolls its effects back through the
    transaction undo log and then calls {!t.on_abort}. *)

exception Conflict of { txn : int; with_ : int; reason : string }

(** [conflict ~txn ~with_ reason] raises {!Conflict}. *)
val conflict : txn:int -> with_:int -> string -> 'a

type t = {
  name : string;
  on_invoke : Invocation.t -> (unit -> Value.t) -> Value.t;
  on_commit : int -> unit;  (** transaction ended successfully: release *)
  on_abort : int -> unit;
      (** transaction rolled back (its effects are already undone when this
          is called): release *)
  reset : unit -> unit;  (** drop all state (between experiments) *)
  snapshot : unit -> Commlat_obs.Obs.snapshot;
      (** current observability counters (lock acquisitions/denials,
          gatekeeper checks/rollbacks, abort causes, …); see
          {!Commlat_obs.Obs} *)
  guards : Guard.t list;
      (** the reentrant guards serializing this detector's internal state
          (and, during [on_invoke], the protected ADT's concrete state).
          The domain executor takes all of them ({!Guard.protect_all})
          around a doomed transaction's rollback + [on_abort] so nothing
          can interleave with the undo log; [on_abort]'s own acquisition
          then re-enters.  Empty for stateless/ad-hoc detectors. *)
}

(** A snapshot hook for detectors with nothing to report (ad-hoc test
    detectors, baselines): always the empty snapshot. *)
val no_snapshot : unit -> Commlat_obs.Obs.snapshot

(** No detection at all: used to measure the plain sequential baseline [T]
    in the paper's performance model (§5). *)
val none : t

(** Compose the transaction-lifecycle view of several detectors, one per
    protected structure: commits, aborts and resets are forwarded to every
    member.  Invocations must still be routed to the member that protects
    the structure being touched; calling [on_invoke] on the composition is
    an error. *)
val compose : t list -> t

(** Implementation detail of {!Commlat_runtime.Protect} (scheme
    [Global_lock]) and of this library's own tests; application code
    should construct detectors through [Protect.protect]. *)
module Private : sig
  (** A single exclusive lock on the whole structure: the scheme the
      abstract-locking construction yields for the ⊥ specification (paper
      §4.1). *)
  val global_lock : ?obs:bool -> unit -> t
end
