(** Diagnostics emitted by the specification analysis pass ([commlat lint]).

    A diagnostic carries a severity, a stable machine-readable code (the
    lint catalogue: ["unsound"], ["dead-disjunct"], …), the specification
    and method pair it concerns, an optional {!Commlat_core.Spec_lang}
    source position, and a rendered message.  Diagnostics print in the
    conventional [file:line:col: severity] form and serialize to JSON so CI
    can gate on them ([commlat lint --format json]). *)

open Commlat_core

type severity = Error | Warning | Info

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  sev : severity;
  code : string;  (** stable lint identifier, e.g. ["unsound"] *)
  spec : string;  (** ADT name of the specification concerned *)
  file : string option;
  pos : Spec_lang.pos option;
  pair : (string * string) option;  (** ordered method pair, if per-pair *)
  msg : string;
}

let make ?file ?pos ?pair ~spec ~sev ~code fmt =
  Format.kasprintf (fun msg -> { sev; code; spec; file; pos; pair; msg }) fmt

let is_error d = d.sev = Error

(** Sort: severity first, then file, source position, pair. *)
let compare_diag a b =
  let c = compare (severity_rank a.sev) (severity_rank b.sev) in
  if c <> 0 then c
  else
    let c = compare a.file b.file in
    if c <> 0 then c
    else
      let pos_key = function
        | Some (p : Spec_lang.pos) -> (p.line, p.col)
        | None -> (max_int, max_int)
      in
      let c = compare (pos_key a.pos) (pos_key b.pos) in
      if c <> 0 then c else compare (a.pair, a.code) (b.pair, b.code)

let sort ds = List.sort compare_diag ds

let pp ppf d =
  (match (d.file, d.pos) with
  | Some f, Some p -> Fmt.pf ppf "%s:%d:%d: " f p.Spec_lang.line p.Spec_lang.col
  | Some f, None -> Fmt.pf ppf "%s: " f
  | None, Some p -> Fmt.pf ppf "line %d, column %d: " p.Spec_lang.line p.Spec_lang.col
  | None, None -> ());
  Fmt.pf ppf "%a [%s]" pp_severity d.sev d.code;
  (match d.pair with
  | Some (m1, m2) -> Fmt.pf ppf " (%s ; %s)" m1 m2
  | None -> ());
  Fmt.pf ppf ": %s" d.msg

(* ---- JSON ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let fields =
    [
      Some (Fmt.str "\"severity\":\"%a\"" pp_severity d.sev);
      Some ("\"code\":" ^ str d.code);
      Some ("\"spec\":" ^ str d.spec);
      Option.map (fun f -> "\"file\":" ^ str f) d.file;
      Option.map
        (fun (p : Spec_lang.pos) -> Fmt.str "\"line\":%d,\"col\":%d" p.line p.col)
        d.pos;
      Option.map
        (fun (m1, m2) -> Fmt.str "\"pair\":[%s,%s]" (str m1) (str m2))
        d.pair;
      Some ("\"message\":" ^ str d.msg);
    ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"

let list_to_json ds = "[" ^ String.concat ",\n " (List.map to_json ds) ^ "]"

(** Summary counts as (errors, warnings, infos). *)
let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.sev with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds
