(** The [commlat lint] driver: run every analysis over a specification and
    collect diagnostics.

    Three layers compose (each usable on its own from tests):

    - {!Structural.lint} — formula-level smells (dead disjuncts,
      misclassification, unit-return references, asymmetric coverage,
      superfluous lock modes);
    - {!Soundness.check_spec} — bounded verification against the registered
      reference semantics ({!Domain}): unsound conditions are errors with
      a concrete counterexample trace, incompleteness is reported as the
      spec's position in the commutativity lattice (info);
    - {!Chain.validate} — strengthening-chain descent across several
      specifications. *)

open Commlat_core

(** A specification together with its provenance (file path and rule
    positions when parsed from a [.spec] file). *)
type source = {
  src_file : string option;
  src_spec : Spec.t;
  src_rules : Spec_lang.rule_info list;
}

let of_spec spec = { src_file = None; src_spec = spec; src_rules = [] }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load a [.spec] file; a parse failure (or unreadable file) comes back as
    a positioned error diagnostic rather than an exception. *)
let load_file path : (source, Diagnostic.t) result =
  match read_file path with
  | exception Sys_error msg ->
      Error
        (Diagnostic.make ~file:path ~spec:"-" ~sev:Diagnostic.Error ~code:"io"
           "cannot read specification: %s" msg)
  | src -> (
      match Spec_lang.parse_with_rules src with
      | spec, rules -> Ok { src_file = Some path; src_spec = spec; src_rules = rules }
      | exception Spec_lang.Parse_error (pos, msg) ->
          Error
            (Diagnostic.make ~file:path ~pos ~spec:"-" ~sev:Diagnostic.Error
               ~code:"parse" "%s" msg))

(* ---- soundness reports -> diagnostics ---- *)

let soundness_diagnostics ?file ~rules (spec : Spec.t)
    (reports : Soundness.pair_report list) : Diagnostic.t list =
  List.concat_map
    (fun (r : Soundness.pair_report) ->
      let m1, m2 = r.Soundness.pr_pair in
      let pos = Spec_lang.rule_pos rules ~first:m1 ~second:m2 in
      let mk sev code fmt =
        Diagnostic.make ?file ?pos ~pair:(m1, m2) ~spec:(Spec.adt spec) ~sev ~code fmt
      in
      let unsound =
        (* keyed on the total, not the retained traces: the finding must
           survive --max-counterexamples 0 *)
        if r.Soundness.pr_unsound_total = 0 then []
        else
          let trace =
            match r.Soundness.pr_unsound with
            | cx :: _ -> "; " ^ Soundness.counterexample_to_string cx
            | [] -> " (re-run with --max-counterexamples > 0 for a trace)"
          in
          [
            mk Diagnostic.Error "unsound"
              "condition admits %d observationally distinguishable \
               interleaving%s%s"
              r.Soundness.pr_unsound_total
              (if r.Soundness.pr_unsound_total = 1 then "" else "s")
              trace;
          ]
      in
      let incomplete =
        if r.Soundness.pr_incomplete > 0 && r.Soundness.pr_unsound_total = 0 then
          [
            mk Diagnostic.Info "incomplete"
              "lattice position: condition rejects %d of %d observably \
               commuting scenario%s — the spec sits strictly below the \
               precise condition for this pair (sound; less parallelism, \
               paper \xc2\xa74)"
              r.Soundness.pr_incomplete r.Soundness.pr_commuting
              (if r.Soundness.pr_commuting = 1 then "" else "s")
          ]
        else []
      in
      let skipped =
        if r.Soundness.pr_skipped > 0 && r.Soundness.pr_scenarios = 0 then
          [
            mk Diagnostic.Warning "uncheckable"
              "no scenario could evaluate this condition against the \
               reference model (%d attempted)"
              r.Soundness.pr_skipped;
          ]
        else []
      in
      let uncovered =
        if r.Soundness.pr_scenarios = 0 && r.Soundness.pr_skipped = 0 then
          [
            mk Diagnostic.Warning "no-scenarios"
              "the reference model generates no scenarios for this pair (are \
               both methods known to the registered domain?)";
          ]
        else []
      in
      unsound @ incomplete @ skipped @ uncovered)
    reports

(** Lint one specification: structural lints always; bounded soundness when
    a reference domain is registered for the spec's ADT name (otherwise an
    info note). *)
let analyze ?max_counterexamples (src : source) : Diagnostic.t list =
  let spec = src.src_spec in
  let domain = Domain.find (Spec.adt spec) in
  let envs = Domain.sample_envs ?domain spec in
  let structural =
    Structural.lint ?file:src.src_file ~rules:src.src_rules ?domain ~envs spec
  in
  let sound =
    match domain with
    | None ->
        [
          Diagnostic.make ?file:src.src_file ~spec:(Spec.adt spec)
            ~sev:Diagnostic.Info ~code:"no-reference-model"
            "no reference model registered for ADT %S — bounded soundness \
             check skipped (structural lints only)"
            (Spec.adt spec);
        ]
    | Some dom ->
        soundness_diagnostics ?file:src.src_file ~rules:src.src_rules spec
          (Soundness.check_spec ?max_counterexamples dom spec)
  in
  Diagnostic.sort (structural @ sound)

(** Programmatic entry point used by the test-suite: lint an in-memory
    specification. *)
let analyze_spec ?max_counterexamples spec =
  analyze ?max_counterexamples (of_spec spec)

(** Validate a strengthening chain of sources, weakest first. *)
let analyze_chain (srcs : source list) : Diagnostic.t list =
  let steps =
    List.map
      (fun s ->
        {
          Chain.label = Option.value ~default:(Spec.adt s.src_spec) s.src_file;
          spec = s.src_spec;
        })
      srcs
  in
  let envs =
    match srcs with
    | s :: _ -> Domain.sample_envs ?domain:(Domain.find (Spec.adt s.src_spec)) s.src_spec
    | [] -> []
  in
  Diagnostic.sort (Chain.validate ~envs steps)

let has_errors = List.exists Diagnostic.is_error
