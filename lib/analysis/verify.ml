(** Unbounded verification of commutativity conditions by product-program
    reachability (ROADMAP item 1; the ORset Boogie proof quoted in
    SNIPPETS.md is the model for the obligation's shape).

    For each ordered method pair [(m1, m2)] with condition [f], the
    obligation is the two-copy product program: from a {e symbolic}
    initial state, run [m1; m2] (the forward copy) and [m2; m1] (the
    reversed copy) and prove that whenever [f] holds of the forward
    observations, both copies produce equal returns and equal abstract
    states.  Unlike the bounded {!Soundness} sweep this quantifies over
    {e all} initial states and arguments, not an enumerated handful.

    The obligation is discharged by symbolic forward execution under a
    {e differencing abstraction}: the behaviour of the pair depends on the
    initial state and arguments only through

    - the {b equality pattern} among the finitely many value terms in play
      (the four argument slots and the values stored at the argument
      keys), enumerated exhaustively as set partitions;
    - the {b presence bits} of the argument slots in the initial state;
    - the {b linear-integer components} (accumulator total, map size),
      carried as normal-form linear expressions over symbolic variables
      so equalities hold universally in the unnamed initial values.

    Everything the two copies touch beyond that is covered by a per-ADT
    {b frame lemma} (reported in the result): a method reads and writes
    only the slots named by its arguments, so slots named by neither
    invocation are untouched by both copies and cancel out of the
    equivalence.  Exhaustiveness of the case analysis plus the frame
    lemma is what turns the finite case sweep into an unbounded proof.

    Verdicts are honest three-way:

    - [Proved n] — every one of the [n] cases discharged;
    - [Refuted r] — some case both satisfies the condition and
      distinguishes the copies, {e and} the materialized concrete witness
      reproduces the divergence on the real reference implementation
      (a symbolic refutation that fails to reproduce is reported as
      [Unknown], never as [Refuted]);
    - [Unknown reason] — the condition mentions constructs outside the
      symbolic fragment (state functions, uninterpreted value functions
      such as [part]), an equivalence could not be decided, or the ADT has
      no symbolic model (union-find and the flow graph need state
      functions respectively a graph abstraction; their conditions remain
      bounded-checked only). *)

open Commlat_core

(* ------------------------------------------------------------------ *)
(* Symbolic values                                                     *)
(* ------------------------------------------------------------------ *)

(** Normal-form linear integer expressions [base + Σ cᵢ·vᵢ] (coefficients
    sorted by variable, never zero).  Equality of normal forms is equality
    for {e every} valuation of the variables — the universality the
    unbounded claim rests on. *)
module Lin = struct
  type t = { base : int; coeffs : (string * int) list }

  let int n = { base = n; coeffs = [] }
  let var v = { base = 0; coeffs = [ (v, 1) ] }

  let rec merge xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (v1, c1) :: t1, (v2, c2) :: t2 ->
        if v1 = v2 then
          let c = c1 + c2 in
          if c = 0 then merge t1 t2 else (v1, c) :: merge t1 t2
        else if v1 < v2 then (v1, c1) :: merge t1 ys
        else (v2, c2) :: merge xs t2

  let add a b = { base = a.base + b.base; coeffs = merge a.coeffs b.coeffs }
  let neg a = { base = -a.base; coeffs = List.map (fun (v, c) -> (v, -c)) a.coeffs }
  let sub a b = add a (neg b)

  let scale k a =
    if k = 0 then int 0
    else { base = k * a.base; coeffs = List.map (fun (v, c) -> (v, k * c)) a.coeffs }
end

(** Symbolic values.  [SAbs t] is an abstract value term whose equalities
    are decided by the case's partition; [SInt] carries a linear
    expression. *)
type sv =
  | SUnit
  | SBool of bool
  | SInt of Lin.t
  | SOpt of sv option
  | SAbs of string

(** Per-case decision context: [cx_repr] maps abstract terms to their
    partition block representative (same representative = equal, different
    = distinct — the enumeration covers every pattern, so within a case
    distinctness is asserted, not unknown); [cx_nonzero]/[cx_distinct]
    record the integer-variable facts the case assumes. *)
type ctx = {
  cx_repr : string -> string;
  cx_nonzero : string -> bool;
  cx_distinct : string -> string -> bool;
}

let lin_eq ctx a b =
  let d = Lin.sub a b in
  match (d.Lin.coeffs, d.Lin.base) with
  | [], base -> Some (base = 0)
  | [ (v, _) ], 0 -> if ctx.cx_nonzero v then Some false else None
  | [ (v1, c1); (v2, c2) ], 0 when c1 + c2 = 0 ->
      if ctx.cx_distinct v1 v2 then Some false else None
  | _ -> None

(** Three-valued equality mirroring {!Value.equal} on the concrete side:
    distinct concrete constructors never compare equal; an abstract term
    against a concrete value is undecidable (sound: reported as
    [Unknown], never guessed). *)
let rec sv_eq ctx a b =
  match (a, b) with
  | SUnit, SUnit -> Some true
  | SBool x, SBool y -> Some (x = y)
  | SInt x, SInt y -> lin_eq ctx x y
  | SOpt None, SOpt None -> Some true
  | SOpt None, SOpt (Some _) | SOpt (Some _), SOpt None -> Some false
  | SOpt (Some x), SOpt (Some y) -> sv_eq ctx x y
  | SAbs x, SAbs y -> Some (ctx.cx_repr x = ctx.cx_repr y)
  | SAbs _, _ | _, SAbs _ -> None
  | _ -> Some false

(* Three-valued logic. *)
let t_not = Option.map not

let t_and a b =
  match (a, b) with
  | Some false, _ | _, Some false -> Some false
  | Some true, Some true -> Some true
  | _ -> None

let t_all = List.fold_left t_and (Some true)

let rec sv_of_value = function
  | Value.Int n -> Some (SInt (Lin.int n))
  | Value.Bool b -> Some (SBool b)
  | Value.Unit -> Some SUnit
  | Value.Opt None -> Some (SOpt None)
  | Value.Opt (Some v) -> Option.map (fun s -> SOpt (Some s)) (sv_of_value v)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation of conditions                                   *)
(* ------------------------------------------------------------------ *)

(** Terms: arguments and returns come from the case, [some] builds
    options, arithmetic folds into {!Lin}.  State functions and other
    value functions are outside the fragment ([None] → the pair's verdict
    degrades to [Unknown] unless the case discharges another way). *)
let rec sterm ~arg ~ret = function
  | Formula.Arg (side, i) -> arg side i
  | Formula.Ret side -> Some (ret side)
  | Formula.Const v -> sv_of_value v
  | Formula.Vfun ("some", [ t ]) ->
      Option.map (fun s -> SOpt (Some s)) (sterm ~arg ~ret t)
  | Formula.Vfun _ | Formula.Sfun _ -> None
  | Formula.Arith (op, a, b) -> (
      match (sterm ~arg ~ret a, sterm ~arg ~ret b) with
      | Some (SInt x), Some (SInt y) -> (
          match op with
          | Formula.Add -> Some (SInt (Lin.add x y))
          | Formula.Sub -> Some (SInt (Lin.sub x y))
          | Formula.Mul when x.Lin.coeffs = [] -> Some (SInt (Lin.scale x.Lin.base y))
          | Formula.Mul when y.Lin.coeffs = [] -> Some (SInt (Lin.scale y.Lin.base x))
          | Formula.Mul | Formula.Div -> None)
      | _ -> None)

let rec seval ctx ~arg ~ret = function
  | Formula.True -> Some true
  | Formula.False -> Some false
  | Formula.Not f -> t_not (seval ctx ~arg ~ret f)
  | Formula.And (a, b) -> t_and (seval ctx ~arg ~ret a) (seval ctx ~arg ~ret b)
  | Formula.Or (a, b) -> (
      match (seval ctx ~arg ~ret a, seval ctx ~arg ~ret b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | Formula.Cmp (op, ta, tb) -> (
      match (sterm ~arg ~ret ta, sterm ~arg ~ret tb) with
      | Some a, Some b -> (
          match op with
          | Formula.Eq -> sv_eq ctx a b
          | Formula.Ne -> t_not (sv_eq ctx a b)
          | Formula.Lt | Formula.Le | Formula.Gt | Formula.Ge -> (
              match (a, b) with
              | SInt x, SInt y -> (
                  let d = Lin.sub x y in
                  match d.Lin.coeffs with
                  | [] ->
                      Some
                        (match op with
                        | Formula.Lt -> d.Lin.base < 0
                        | Formula.Le -> d.Lin.base <= 0
                        | Formula.Gt -> d.Lin.base > 0
                        | _ -> d.Lin.base >= 0)
                  | _ -> None)
              | _ -> None))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)
(* ------------------------------------------------------------------ *)

(** Observations of one copy of the product program: the two returns and
    the abstract-state components the frame lemma does not cancel
    (positionally aligned between the copies by construction). *)
type order_result = { or_r1 : sv; or_r2 : sv; or_state : sv list }

type case = {
  cs_desc : string;
  cs_ctx : ctx;
  cs_arg : Formula.side -> int -> sv option;
  cs_fwd : order_result;  (** m1 then m2 *)
  cs_rev : order_result;  (** m2 then m1 *)
  cs_setup : (string * Value.t list) list;  (** concrete witness: setup *)
  cs_args1 : Value.t list;
  cs_args2 : Value.t list;
}

(** All set partitions of [xs], deterministically ordered. *)
let partitions xs =
  List.fold_left
    (fun parts x ->
      List.concat_map
        (fun p ->
          let rec ins acc = function
            | [] -> [ List.rev (( [ x ] ) :: acc) ]
            | b :: rest ->
                List.rev_append acc ((x :: b) :: rest) :: ins (b :: acc) rest
          in
          ins [] p)
        parts)
    [ [] ] xs

let repr_fn blocks =
  let tbl =
    List.concat_map
      (function [] -> [] | r :: _ as b -> List.map (fun x -> (x, r)) b)
      blocks
  in
  fun x -> match List.assoc_opt x tbl with Some r -> r | None -> x

(** Concrete witness value for a term: its block index, so two terms are
    concretely equal exactly when the partition says so. *)
let witness_value blocks x =
  let rec idx i = function
    | [] -> i
    | b :: rest -> if List.mem x b then i else idx (i + 1) rest
  in
  Value.Int (idx 0 blocks)

let pp_blocks blocks =
  String.concat "" (List.map (fun b -> "{" ^ String.concat "," b ^ "}") blocks)

let no_ints = { cx_repr = Fun.id; cx_nonzero = (fun _ -> false); cx_distinct = (fun _ _ -> false) }

(* ------------------------------------------------------------------ *)
(* Family: set (add/remove/contains over one membership bit per slot)   *)
(* ------------------------------------------------------------------ *)

let set_step name mem =
  match name with
  | "add" -> (SBool (not mem), true)
  | "remove" -> (SBool mem, false)
  | _ (* contains *) -> (SBool mem, mem)

let set_cases m1 m2 =
  List.concat_map
    (fun blocks ->
      let repr = repr_fn blocks in
      let alias = repr "a" = repr "b" in
      List.concat_map
        (fun ma ->
          List.filter_map
            (fun mb ->
              if alias && ma <> mb then None
              else
                let run first_is_m1 =
                  let sa = ref ma and sb = ref mb in
                  let exec_a name =
                    let r, nw = set_step name !sa in
                    sa := nw;
                    if alias then sb := nw;
                    r
                  and exec_b name =
                    let r, nw = set_step name !sb in
                    sb := nw;
                    if alias then sa := nw;
                    r
                  in
                  let r1, r2 =
                    if first_is_m1 then
                      let r1 = exec_a m1 in
                      (r1, exec_b m2)
                    else
                      let r2 = exec_b m2 in
                      (exec_a m1, r2)
                  in
                  { or_r1 = r1; or_r2 = r2; or_state = [ SBool !sa; SBool !sb ] }
                in
                let av = witness_value blocks "a" and bv = witness_value blocks "b" in
                Some
                  {
                    cs_desc =
                      Printf.sprintf "v1[0] %s v2[0]; v1[0] %s S0; v2[0] %s S0"
                        (if alias then "=" else "!=")
                        (if ma then "in" else "notin")
                        (if mb then "in" else "notin");
                    cs_ctx = { no_ints with cx_repr = repr };
                    cs_arg =
                      (fun side i ->
                        match (side, i) with
                        | Formula.M1, 0 -> Some (SAbs "a")
                        | Formula.M2, 0 -> Some (SAbs "b")
                        | _ -> None);
                    cs_fwd = run true;
                    cs_rev = run false;
                    cs_setup =
                      (if ma then [ ("add", [ av ]) ] else [])
                      @ (if mb && not alias then [ ("add", [ bv ]) ] else []);
                    cs_args1 = [ av ];
                    cs_args2 = [ bv ];
                  })
            [ true; false ])
        [ true; false ])
    (partitions [ "a"; "b" ])

(* ------------------------------------------------------------------ *)
(* Family: orset (add/remove over one membership bit per tagged pair)   *)
(* ------------------------------------------------------------------ *)

let orset_step name =
  match name with "add" -> (SUnit, true) | _ (* remove *) -> (SUnit, false)

let orset_cases m1 m2 =
  List.concat_map
    (fun blocks ->
      let repr = repr_fn blocks in
      let alias = repr "e1" = repr "e2" && repr "i1" = repr "i2" in
      List.concat_map
        (fun p1 ->
          List.filter_map
            (fun p2 ->
              if alias && p1 <> p2 then None
              else
                let run first_is_m1 =
                  let s1 = ref p1 and s2 = ref p2 in
                  let exec_1 name =
                    let r, nw = orset_step name in
                    ignore !s1;
                    s1 := nw;
                    if alias then s2 := nw;
                    r
                  and exec_2 name =
                    let r, nw = orset_step name in
                    s2 := nw;
                    if alias then s1 := nw;
                    r
                  in
                  let r1, r2 =
                    if first_is_m1 then
                      let r1 = exec_1 m1 in
                      (r1, exec_2 m2)
                    else
                      let r2 = exec_2 m2 in
                      (exec_1 m1, r2)
                  in
                  { or_r1 = r1; or_r2 = r2; or_state = [ SBool !s1; SBool !s2 ] }
                in
                let v t = witness_value blocks t in
                Some
                  {
                    cs_desc =
                      Printf.sprintf "pairs %s [%s]; p1 %s S0; p2 %s S0"
                        (if alias then "aliased" else "distinct")
                        (pp_blocks blocks)
                        (if p1 then "in" else "notin")
                        (if p2 then "in" else "notin");
                    cs_ctx = { no_ints with cx_repr = repr };
                    cs_arg =
                      (fun side i ->
                        match (side, i) with
                        | Formula.M1, 0 -> Some (SAbs "e1")
                        | Formula.M1, 1 -> Some (SAbs "i1")
                        | Formula.M2, 0 -> Some (SAbs "e2")
                        | Formula.M2, 1 -> Some (SAbs "i2")
                        | _ -> None);
                    cs_fwd = run true;
                    cs_rev = run false;
                    cs_setup =
                      (if p1 then [ ("add", [ v "e1"; v "i1" ]) ] else [])
                      @ (if p2 && not alias then [ ("add", [ v "e2"; v "i2" ]) ] else []);
                    cs_args1 = [ v "e1"; v "i1" ];
                    cs_args2 = [ v "e2"; v "i2" ];
                  })
            [ true; false ])
        [ true; false ])
    (partitions [ "e1"; "i1"; "e2"; "i2" ])

(* ------------------------------------------------------------------ *)
(* Family: accumulator (one symbolic integer, linear effects)           *)
(* ------------------------------------------------------------------ *)

let acc_cases m1 m2 =
  let has_x = m1 = "increment" and has_y = m2 = "increment" in
  let choices b = if b then [ true; false ] else [ false ] in
  List.concat_map
    (fun x0 ->
      List.concat_map
        (fun y0 ->
          List.filter_map
            (fun xy ->
              let consistent =
                ((not (has_x && has_y)) || (not (x0 && y0)) || xy)
                && ((not xy) || x0 = y0)
              in
              if not consistent then None
              else
                let xl = if x0 then Lin.int 0 else Lin.var "x" in
                let yl =
                  if y0 then Lin.int 0 else if xy then xl else Lin.var "y"
                in
                let run first_is_m1 =
                  let total = ref (Lin.var "T") in
                  let exec name l =
                    match name with
                    | "increment" ->
                        total := Lin.add !total l;
                        SUnit
                    | _ (* read *) -> SInt !total
                  in
                  let r1, r2 =
                    if first_is_m1 then
                      let r1 = exec m1 xl in
                      (r1, exec m2 yl)
                    else
                      let r2 = exec m2 yl in
                      (exec m1 xl, r2)
                  in
                  { or_r1 = r1; or_r2 = r2; or_state = [ SInt !total ] }
                in
                let xv = if x0 then 0 else 1 in
                let yv = if y0 then 0 else if xy then xv else 2 in
                let parts =
                  (if has_x then [ Printf.sprintf "v1[0] %s 0" (if x0 then "=" else "!=") ] else [])
                  @ (if has_y then [ Printf.sprintf "v2[0] %s 0" (if y0 then "=" else "!=") ] else [])
                  @
                  if has_x && has_y then
                    [ Printf.sprintf "v1[0] %s v2[0]" (if xy then "=" else "!=") ]
                  else []
                in
                Some
                  {
                    cs_desc = (match parts with [] -> "unconditional" | _ -> String.concat "; " parts);
                    cs_ctx =
                      {
                        cx_repr = Fun.id;
                        cx_nonzero =
                          (fun v ->
                            (v = "x" && has_x && not x0) || (v = "y" && has_y && not y0));
                        cx_distinct =
                          (fun v1 v2 ->
                            has_x && has_y && (not xy)
                            && ((v1 = "x" && v2 = "y") || (v1 = "y" && v2 = "x")));
                      };
                    cs_arg =
                      (fun side i ->
                        match (side, i) with
                        | Formula.M1, 0 when has_x -> Some (SInt xl)
                        | Formula.M2, 0 when has_y -> Some (SInt yl)
                        | _ -> None);
                    cs_fwd = run true;
                    cs_rev = run false;
                    cs_setup = [];
                    cs_args1 = (if has_x then [ Value.Int xv ] else []);
                    cs_args2 = (if has_y then [ Value.Int yv ] else []);
                  })
            (choices (has_x && has_y)))
        (choices has_y))
    (choices has_x)

(* ------------------------------------------------------------------ *)
(* Family: kvmap (one binding slot per key argument, symbolic size)     *)
(* ------------------------------------------------------------------ *)

(** (has key argument, has data argument) per method. *)
let kv_shape = function
  | "put" -> Some (true, true)
  | "get" | "remove" -> Some (true, false)
  | "size" -> Some (false, false)
  | _ -> None

let kvmap_cases m1 m2 =
  let key1, dat1 = Option.get (kv_shape m1) in
  let key2, dat2 = Option.get (kv_shape m2) in
  let choices b = if b then [ true; false ] else [ false ] in
  List.concat_map
    (fun kk ->
      List.concat_map
        (fun p1 ->
          List.concat_map
            (fun p2 ->
              let terms =
                (if key1 then [ "k1" ] else [])
                @ (if key2 then [ "k2" ] else [])
                @ (if dat1 then [ "d1" ] else [])
                @ (if dat2 then [ "d2" ] else [])
                @ (if key1 && p1 then [ "s1" ] else [])
                @ if key2 && p2 && not kk then [ "s2" ] else []
              in
              List.filter_map
                (fun blocks ->
                  let repr = repr_fn blocks in
                  if key1 && key2 && (repr "k1" = repr "k2") <> kk then None
                  else
                    let run first_is_m1 =
                      let cell1 = ref (if key1 && p1 then Some "s1" else None) in
                      let cell2 =
                        if key1 && key2 && kk then cell1
                        else ref (if key2 && p2 then Some "s2" else None)
                      in
                      let n = ref (Lin.var "N") in
                      let sopt = Option.map (fun t -> SAbs t) in
                      let exec name cell data =
                        match name with
                        | "put" ->
                            let old = !cell in
                            cell := Some (Option.get data);
                            if old = None then n := Lin.add !n (Lin.int 1);
                            SOpt (sopt old)
                        | "get" -> SOpt (sopt !cell)
                        | "remove" ->
                            let old = !cell in
                            cell := None;
                            if old <> None then n := Lin.sub !n (Lin.int 1);
                            SOpt (sopt old)
                        | _ (* size *) -> SInt !n
                      in
                      let e1 () = exec m1 cell1 (if dat1 then Some "d1" else None)
                      and e2 () = exec m2 cell2 (if dat2 then Some "d2" else None) in
                      let r1, r2 =
                        if first_is_m1 then
                          let r1 = e1 () in
                          (r1, e2 ())
                        else
                          let r2 = e2 () in
                          (e1 (), r2)
                      in
                      {
                        or_r1 = r1;
                        or_r2 = r2;
                        or_state =
                          (if key1 then [ SOpt (Option.map (fun t -> SAbs t) !cell1) ] else [])
                          @ (if key2 then [ SOpt (Option.map (fun t -> SAbs t) !cell2) ] else [])
                          @ [ SInt !n ];
                      }
                    in
                    let v t = witness_value blocks t in
                    let args_of keyed dat k d =
                      (if keyed then [ v k ] else []) @ if dat then [ v d ] else []
                    in
                    Some
                      {
                        cs_desc =
                          String.concat "; "
                            ((if key1 && key2 then
                                [ (if kk then "v1[0] = v2[0]" else "v1[0] != v2[0]") ]
                              else [])
                            @ (if key1 then [ (if p1 then "k1 bound" else "k1 unbound") ] else [])
                            @ (if key2 then [ (if p2 then "k2 bound" else "k2 unbound") ] else [])
                            @ [ pp_blocks blocks ]);
                        cs_ctx = { no_ints with cx_repr = repr };
                        cs_arg =
                          (fun side i ->
                            match (side, i) with
                            | Formula.M1, 0 when key1 -> Some (SAbs "k1")
                            | Formula.M1, 1 when dat1 -> Some (SAbs "d1")
                            | Formula.M2, 0 when key2 -> Some (SAbs "k2")
                            | Formula.M2, 1 when dat2 -> Some (SAbs "d2")
                            | _ -> None);
                        cs_fwd = run true;
                        cs_rev = run false;
                        cs_setup =
                          (if key1 && p1 then [ ("put", [ v "k1"; v "s1" ]) ] else [])
                          @
                          if key2 && p2 && not kk then [ ("put", [ v "k2"; v "s2" ]) ]
                          else [];
                        cs_args1 = args_of key1 dat1 "k1" "d1";
                        cs_args2 = args_of key2 dat2 "k2" "d2";
                      })
                (partitions terms))
            (if key2 then if kk then [ p1 ] else [ true; false ] else [ false ]))
        (choices key1))
    (choices (key1 && key2))

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)
(* ------------------------------------------------------------------ *)

type refutation = {
  rf_pair : string * string;
  rf_case : string;  (** the symbolic case that produced the witness *)
  rf_setup : (string * Value.t list) list;
  rf_args1 : Value.t list;
  rf_args2 : Value.t list;
  rf_fwd : Soundness.observation;
  rf_rev : Soundness.observation;
}

type verdict =
  | Proved of int  (** all cases discharged; the count is reported *)
  | Refuted of refutation  (** concrete, confirmed counterexample trace *)
  | Unknown of string

type pair_verdict = {
  vf_pair : string * string;
  vf_cond : Formula.t;
  vf_verdict : verdict;
}

type report = {
  vf_adt : string;
  vf_family : string option;  (** symbolic model used; [None] = no model *)
  vf_frame : string;  (** the frame lemma the [Proved] verdicts rest on *)
  vf_pairs : pair_verdict list;
}

let verdict_name = function
  | Proved _ -> "proved"
  | Refuted _ -> "refuted"
  | Unknown _ -> "unknown"

let pp_args = Fmt.(parens (list ~sep:comma Value.pp))

let pp_verdict ppf = function
  | Proved n -> Fmt.pf ppf "proved (%d cases)" n
  | Refuted r ->
      Fmt.pf ppf
        "refuted in case [%s]: from %s, %s%a / %s%a -> fwd r1=%a r2=%a s=%a, rev r1=%a r2=%a s=%a"
        r.rf_case
        (if r.rf_setup = [] then "empty state"
         else
           String.concat "; "
             (List.map
                (fun (m, args) -> Fmt.str "%s%a" m pp_args args)
                r.rf_setup))
        (fst r.rf_pair) pp_args r.rf_args1 (snd r.rf_pair) pp_args r.rf_args2
        Value.pp r.rf_fwd.Soundness.obs_r1 Value.pp r.rf_fwd.Soundness.obs_r2
        Value.pp r.rf_fwd.Soundness.obs_state Value.pp r.rf_rev.Soundness.obs_r1
        Value.pp r.rf_rev.Soundness.obs_r2 Value.pp r.rf_rev.Soundness.obs_state
  | Unknown reason -> Fmt.pf ppf "unknown (%s)" reason

let is_proved = function Proved _ -> true | _ -> false
let is_refuted = function Refuted _ -> true | _ -> false

(** Every pair proved (the gate a "verified" stamp requires). *)
let all_proved r = List.for_all (fun p -> is_proved p.vf_verdict) r.vf_pairs

let any_refuted r = List.exists (fun p -> is_refuted p.vf_verdict) r.vf_pairs

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

type family = Fam_set | Fam_triset | Fam_accumulator | Fam_kvmap | Fam_orset

let family_frame = function
  | Fam_set ->
      "add/remove/contains read and write only the membership bit of their \
       argument; elements named by neither invocation are untouched by both \
       orders"
  | Fam_triset ->
      "take/add/contains read and write only the liveness bit of the id they \
       name; ids named by neither invocation are untouched by both orders \
       (the set model under the claim renaming take = remove)"
  | Fam_orset ->
      "add/remove touch only the (element, id) pair they name; pairs named \
       by neither invocation are untouched by both orders"
  | Fam_accumulator ->
      "the whole state is one integer total; effects are linear updates, \
       compared as normal forms universal in the symbolic initial total"
  | Fam_kvmap ->
      "put/get/remove touch only the binding of their key argument and the \
       size by a constant; keys named by neither invocation are untouched, \
       size is tracked as a symbolic offset"

let family_name = function
  | Fam_set -> "set"
  | Fam_triset -> "triset"
  | Fam_accumulator -> "accumulator"
  | Fam_kvmap -> "kvmap"
  | Fam_orset -> "orset"

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let family_of adt =
  if starts_with "set" adt then Some Fam_set
  else if starts_with "triset" adt then Some Fam_triset
  else if starts_with "accumulator" adt then Some Fam_accumulator
  else if starts_with "kvmap" adt then Some Fam_kvmap
  else if starts_with "orset" adt then Some Fam_orset
  else None

let cases_for fam m1 m2 : (case list, string) result =
  let known ms = List.filter (fun m -> not (List.mem m ms)) [ m1; m2 ] in
  let unknown ms =
    match known ms with
    | [] -> None
    | us -> Some (Printf.sprintf "method %s not in the symbolic model" (List.hd us))
  in
  match fam with
  | Fam_set -> (
      match unknown [ "add"; "remove"; "contains" ] with
      | Some e -> Error e
      | None -> Ok (set_cases m1 m2))
  | Fam_triset -> (
      (* take is claim-and-remove: identical observations, so the set's
         symbolic cases verify it under the renaming.  Witness replay in
         [confirm] still runs the original method names against the triset
         reference domain. *)
      match unknown [ "take"; "add"; "contains" ] with
      | Some e -> Error e
      | None ->
          let rn = function "take" -> "remove" | m -> m in
          Ok (set_cases (rn m1) (rn m2)))
  | Fam_orset -> (
      match unknown [ "add"; "remove" ] with
      | Some e -> Error e
      | None -> Ok (orset_cases m1 m2))
  | Fam_accumulator -> (
      match unknown [ "increment"; "read" ] with
      | Some e -> Error e
      | None -> Ok (acc_cases m1 m2))
  | Fam_kvmap -> (
      match unknown [ "put"; "get"; "remove"; "size" ] with
      | Some e -> Error e
      | None -> Ok (kvmap_cases m1 m2))

(** Replay the materialized witness against the real reference
    implementation.  A refutation is only reported if the concrete run
    reproduces both halves of the claim: the orders observably differ and
    the condition holds of the forward observations. *)
let confirm (dom : Domain.t) (spec : Spec.t) ~first ~second (c : case) cond :
    refutation option =
  match
    ( Soundness.run_order dom c.cs_setup ~swapped:false (first, c.cs_args1)
        (second, c.cs_args2),
      Soundness.run_order dom c.cs_setup ~swapped:true (first, c.cs_args1)
        (second, c.cs_args2) )
  with
  | Some fwd, Some rev when not (Soundness.equivalent fwd rev) -> (
      let env =
        Formula.env
          ~vfun:(Domain.vfun_resolver ~domain:dom spec)
          ~arg:(fun side i ->
            List.nth
              (match side with Formula.M1 -> c.cs_args1 | Formula.M2 -> c.cs_args2)
              i)
          ~ret:(function
            | Formula.M1 -> fwd.Soundness.obs_r1
            | Formula.M2 -> fwd.Soundness.obs_r2)
          ()
      in
      match Formula.eval env cond with
      | true ->
          Some
            {
              rf_pair = (first, second);
              rf_case = c.cs_desc;
              rf_setup = c.cs_setup;
              rf_args1 = c.cs_args1;
              rf_args2 = c.cs_args2;
              rf_fwd = fwd;
              rf_rev = rev;
            }
      | false -> None
      | exception (Formula.Unsupported _ | Value.Type_error _ | Invalid_argument _)
        ->
          None)
  | _ -> None

let equivalence c =
  t_all
    (sv_eq c.cs_ctx c.cs_fwd.or_r1 c.cs_rev.or_r1
    :: sv_eq c.cs_ctx c.cs_fwd.or_r2 c.cs_rev.or_r2
    :: List.map2 (sv_eq c.cs_ctx) c.cs_fwd.or_state c.cs_rev.or_state)

let check_pair (dom : Domain.t option) (spec : Spec.t) fam ~first ~second :
    verdict =
  match cases_for fam first second with
  | Error msg -> Unknown msg
  | Ok cases ->
      let cond = Spec.cond spec ~first ~second in
      let refut = ref None and unknown = ref None in
      let note msg = if !unknown = None then unknown := Some msg in
      List.iter
        (fun c ->
          if !refut = None then
            match equivalence c with
            | Some true -> () (* orders agree unconditionally: discharged *)
            | equiv -> (
                let ret = function
                  | Formula.M1 -> c.cs_fwd.or_r1
                  | Formula.M2 -> c.cs_fwd.or_r2
                in
                match (seval c.cs_ctx ~arg:c.cs_arg ~ret cond, equiv) with
                | Some false, _ -> () (* condition rejects the case: vacuous *)
                | Some true, Some false -> (
                    match dom with
                    | None ->
                        note
                          (Printf.sprintf
                             "refuted symbolically in case [%s] but no reference \
                              domain to confirm the witness"
                             c.cs_desc)
                    | Some dom -> (
                        match confirm dom spec ~first ~second c cond with
                        | Some r -> refut := Some r
                        | None ->
                            note
                              (Printf.sprintf
                                 "symbolic refutation in case [%s] did not \
                                  reproduce concretely"
                                 c.cs_desc)))
                | Some true, _ ->
                    note
                      (Printf.sprintf "equivalence undecidable in case [%s]"
                         c.cs_desc)
                | None, _ ->
                    note
                      (Printf.sprintf
                         "condition not symbolically evaluable in case [%s]"
                         c.cs_desc)))
        cases;
      (match (!refut, !unknown) with
      | Some r, _ -> Refuted r
      | None, Some m -> Unknown m
      | None, None -> Proved (List.length cases))

(** Verify every ordered pair of [spec].  [dom] (defaulting to the
    registered domain for the spec's ADT) is used only to {e confirm}
    refutation witnesses concretely — proofs never depend on it. *)
let verify_spec ?dom (spec : Spec.t) : report =
  let adt = Spec.adt spec in
  let dom = match dom with Some _ as d -> d | None -> Domain.find adt in
  let pairs = List.sort_uniq compare (List.map fst (Spec.pairs spec)) in
  match family_of adt with
  | None ->
      {
        vf_adt = adt;
        vf_family = None;
        vf_frame = "";
        vf_pairs =
          List.map
            (fun (first, second) ->
              {
                vf_pair = (first, second);
                vf_cond = Spec.cond spec ~first ~second;
                vf_verdict =
                  Unknown
                    (Printf.sprintf
                       "no symbolic product-program model for ADT %s" adt);
              })
            pairs;
      }
  | Some fam ->
      {
        vf_adt = adt;
        vf_family = Some (family_name fam);
        vf_frame = family_frame fam;
        vf_pairs =
          List.map
            (fun (first, second) ->
              {
                vf_pair = (first, second);
                vf_cond = Spec.cond spec ~first ~second;
                vf_verdict = check_pair dom spec fam ~first ~second;
              })
            pairs;
      }
