(** Bounded checking domains: executable reference semantics for the ADTs
    whose specifications this repo ships.

    The soundness analysis ({!Soundness}) needs, for a given specification,
    a way to (1) enumerate small initial abstract states, (2) execute
    method invocations against a reference implementation, (3) observe the
    abstract state, and (4) interpret the spec's state functions ([rep],
    [loser], …) against a given state.  This module packages those four
    capabilities as a {e domain} and keeps a registry keyed by the spec's
    ADT name, pre-populated from the substrate ADT library
    ([Iset], [Accumulator], [Kvmap], [Union_find]).

    Domains are deliberately tiny — a handful of states and argument
    values.  That makes the analysis a {e bounded} verifier: a reported
    counterexample is a real execution and therefore definitive, while a
    clean pass only covers the enumerated scenarios (the usual
    small-scope argument: spec bugs of the kinds the lint hunts are
    overwhelmingly exhibited on 0–2 element states). *)

open Commlat_core
open Commlat_adts

(** A live reference-implementation instance.  [apply] invokes a method by
    name, [snapshot] returns a comparable encoding of the {e abstract}
    state, [sfun] interprets the spec's abstract-state functions against
    the current state (raising {!Formula.Unsupported} when the ADT has
    none). *)
type instance = {
  apply : string -> Value.t list -> Value.t;
  snapshot : unit -> Value.t;
  sfun : string -> Value.t list -> Value.t;
}

(** An initial state, described by a label and the setup invocations that
    build it from a fresh instance. *)
type setup = string * (string * Value.t list) list

type t = {
  dom_name : string;
  fresh : unit -> instance;
  states : setup list;
  args_of : string -> Value.t list list;
      (** candidate argument tuples for a method; [[]] for unknown methods
          (the analysis then reports the pair as uncovered) *)
  vfuns : (string * (Value.t list -> Value.t)) list;
      (** fallback interpretations of pure value functions, used when the
          spec itself does not carry one (file-parsed specs usually
          don't) *)
}

let no_sfun name _ = raise (Formula.Unsupported name)

let of_model (m : History.model) =
  { apply = m.History.apply; snapshot = m.History.snapshot; sfun = no_sfun }

(* ------------------------------------------------------------------ *)
(* Built-in domains                                                    *)
(* ------------------------------------------------------------------ *)

let ints is = List.map (fun i -> Value.Int i) is

let set_domain =
  let elems = ints [ 0; 1; 2 ] in
  {
    dom_name = "set";
    fresh = (fun () -> of_model (Iset.model ()));
    states =
      [
        ("{}", []);
        ("{0}", [ ("add", [ Value.Int 0 ]) ]);
        ("{1}", [ ("add", [ Value.Int 1 ]) ]);
        ("{0,1}", [ ("add", [ Value.Int 0 ]); ("add", [ Value.Int 1 ]) ]);
      ];
    args_of =
      (function
      | "add" | "remove" | "contains" -> List.map (fun v -> [ v ]) elems
      | _ -> []);
    vfuns =
      [
        ("part", function
          | [ v ] -> Value.Int (Value.hash v mod 2)
          | _ -> Value.type_error "part/1");
      ];
  }

let accumulator_domain =
  {
    dom_name = "accumulator";
    fresh = (fun () -> of_model (Accumulator.model ()));
    states =
      [
        ("total=0", []);
        ("total=1", [ ("increment", [ Value.Int 1 ]) ]);
        ("total=3", [ ("increment", [ Value.Int 1 ]); ("increment", [ Value.Int 2 ]) ]);
      ];
    args_of =
      (function
      (* 0 exercises the "no-op increment" completeness frontier: Fig. 7's
         condition rejects it even though it observably commutes with read *)
      | "increment" -> List.map (fun v -> [ v ]) (ints [ 0; 1; 2 ])
      | "read" -> [ [] ]
      | _ -> []);
    vfuns = [];
  }

let triset_domain =
  (* the set domain under the claim reading: take = claim-and-remove.
     Same state space as [set_domain] — ids 0..2, seeded up to two live
     triangles — which covers every clause of the precise conditions
     (both-succeed, one-dead, both-dead). *)
  let elems = ints [ 0; 1; 2 ] in
  {
    dom_name = "triset";
    fresh = (fun () -> of_model (Triset.model ()));
    states =
      [
        ("{}", []);
        ("{0}", [ ("add", [ Value.Int 0 ]) ]);
        ("{1}", [ ("add", [ Value.Int 1 ]) ]);
        ("{0,1}", [ ("add", [ Value.Int 0 ]); ("add", [ Value.Int 1 ]) ]);
      ];
    args_of =
      (function
      | "take" | "add" | "contains" -> List.map (fun v -> [ v ]) elems
      | _ -> []);
    vfuns = [];
  }

let kvmap_domain =
  let keys = ints [ 0; 1 ] and data = ints [ 7; 8 ] in
  {
    dom_name = "kvmap";
    fresh = (fun () -> of_model (Kvmap.model ()));
    states =
      [
        ("{}", []);
        ("{0->7}", [ ("put", [ Value.Int 0; Value.Int 7 ]) ]);
        ("{0->8,1->7}",
         [ ("put", [ Value.Int 0; Value.Int 8 ]); ("put", [ Value.Int 1; Value.Int 7 ]) ]);
      ];
    args_of =
      (function
      | "put" -> List.concat_map (fun k -> List.map (fun v -> [ k; v ]) data) keys
      | "get" | "remove" -> List.map (fun k -> [ k ]) keys
      | "size" -> [ [] ]
      | _ -> []);
    vfuns =
      [
        ("some", function
          | [ v ] -> Value.Opt (Some v)
          | _ -> Value.type_error "some/1");
      ];
  }

let union_find_domain =
  let n = 4 in
  let elems = List.init n Fun.id in
  let pairs =
    List.concat_map (fun a -> List.map (fun b -> [ Value.Int a; Value.Int b ]) elems) elems
  in
  let u a b = ("union", [ Value.Int a; Value.Int b ]) in
  {
    dom_name = "union_find";
    fresh =
      (fun () ->
        let t = Union_find.create () in
        ignore (Union_find.create_elements t n);
        {
          apply = (fun name args -> Union_find.exec_raw t name (Array.of_list args));
          (* the abstract state of Fig. 5 is the partition; rank and forest
             shape are concrete bookkeeping (see
             Union_find.partition_snapshot) *)
          snapshot = (fun () -> Union_find.partition_snapshot t);
          sfun = (fun name args -> Union_find.sfun t name args);
        });
    states =
      [
        ("singletons", []);
        ("{01}", [ u 0 1 ]);
        ("{01}{23}", [ u 0 1; u 2 3 ]);
        ("{012}", [ u 0 1; u 1 2 ]);
      ];
    args_of =
      (function
      | "union" -> pairs
      | "find" -> List.map (fun a -> [ Value.Int a ]) elems
      | "create" -> [ [] ]
      | _ -> []);
    vfuns = [];
  }

let orset_domain =
  let elems = ints [ 0; 1 ] and ids = ints [ 0; 1 ] in
  let pairs = List.concat_map (fun e -> List.map (fun i -> [ e; i ]) ids) elems in
  let a e i = ("add", [ Value.Int e; Value.Int i ]) in
  {
    dom_name = "orset";
    fresh = (fun () -> of_model (Orset.model ()));
    states =
      [
        ("{}", []);
        ("{(0,0)}", [ a 0 0 ]);
        ("{(0,0),(0,1)}", [ a 0 0; a 0 1 ]);
        ("{(0,0),(1,0)}", [ a 0 0; a 1 0 ]);
      ];
    args_of = (function "add" | "remove" -> pairs | _ -> []);
    vfuns = [];
  }

let flow_graph_domain =
  (* The model's fixed 4-node network (0->1->2->3 plus a 0->2 chord).  The
     preflow-push conditions make pushes no-ops unless excess and heights
     line up, so the setups seed excess (via the model's analysis-only
     [seed] pseudo-method) and build a descending height profile — states
     where push_flow genuinely moves flow and conflicts are observable. *)
  let nodes = [ 0; 1; 2; 3 ] in
  let node_args = List.map (fun u -> [ Value.Int u ]) nodes in
  let node_pairs =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v -> if u = v then None else Some [ Value.Int u; Value.Int v ])
          nodes)
      nodes
  in
  let seed u amt = ("seed", [ Value.Int u; Value.Int amt ]) in
  let relab u h = ("relabel_to", [ Value.Int u; Value.Int h ]) in
  {
    dom_name = "flow_graph";
    fresh = (fun () -> of_model (Flow_graph.model ()));
    states =
      [
        ("idle", []);
        ("src-seeded", [ seed 0 3; relab 0 2; relab 1 1 ]);
        ("two-active", [ seed 0 2; seed 1 2; relab 0 2; relab 1 1; relab 2 0 ]);
      ];
    args_of =
      (function
      | "get_neighbors" | "height" -> node_args
      | "push_flow" -> node_pairs
      | "relabel_to" ->
          List.concat_map
            (fun u -> List.map (fun h -> [ Value.Int u; Value.Int h ]) [ 0; 1; 2 ])
            nodes
      | _ -> []);
    vfuns =
      [
        ("part", function
          | [ v ] -> Value.Int (Value.to_int v mod 2)
          | _ -> Value.type_error "part/1");
      ];
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register names dom = List.iter (fun n -> Hashtbl.replace registry n dom) names

(** Register a domain under additional ADT names (e.g. a strengthened spec
    of a known ADT). *)
let register_alias = register

let () =
  register [ "set"; "set_rw"; "set_excl"; "set_part2"; "set_part4" ] set_domain;
  register [ "accumulator" ] accumulator_domain;
  register [ "kvmap"; "kvmap_rw" ] kvmap_domain;
  register [ "union_find" ] union_find_domain;
  register [ "orset" ] orset_domain;
  register [ "triset"; "triset_rw" ] triset_domain;
  register
    [ "flow_graph"; "flow_graph_rw"; "flow_graph_ex"; "flow_graph_part2"; "flow_graph_part4" ]
    flow_graph_domain

let find name = Hashtbl.find_opt registry name

(* ------------------------------------------------------------------ *)
(* Generic sample environments                                         *)
(* ------------------------------------------------------------------ *)

(** Resolve a value function: the spec's own interpretation first, then the
    domain's fallbacks. *)
let vfun_resolver ?domain (spec : Spec.t) name args =
  match Spec.vfun spec name args with
  | v -> v
  | exception Formula.Unsupported _ -> (
      match Option.bind domain (fun d -> List.assoc_opt name d.vfuns) with
      | Some f -> f args
      | None -> raise (Formula.Unsupported name))

(** Exhaustive small sample environments for the purely structural bounded
    checks (dead disjuncts, misclassification, chain steps): every
    combination of small values over the four argument slots
    ([v1\[0\]], [v1\[1\]], [v2\[0\]], [v2\[1\]]; higher indices alias
    index mod 2) and the two return slots.  State functions are left
    uninterpreted — environments that reach one are skipped by the bounded
    checkers, and {!Lattice.leq_bounded_checked} reports the vacuous case
    as "no evidence" rather than success. *)
let sample_envs ?domain (spec : Spec.t) : Formula.env list =
  let arg_vals = [ Value.Int 0; Value.Int 1; Value.Bool true; Value.Bool false ] in
  let ret_vals =
    arg_vals
    @ [ Value.Opt None; Value.Opt (Some (Value.Int 0)); Value.Opt (Some (Value.Int 1)) ]
  in
  let vfun = vfun_resolver ?domain spec in
  let envs = ref [] in
  List.iter
    (fun a10 ->
      List.iter
        (fun a11 ->
          List.iter
            (fun a20 ->
              List.iter
                (fun a21 ->
                  List.iter
                    (fun r1 ->
                      List.iter
                        (fun r2 ->
                          let arg side i =
                            match (side, i mod 2) with
                            | Formula.M1, 0 -> a10
                            | Formula.M1, _ -> a11
                            | Formula.M2, 0 -> a20
                            | Formula.M2, _ -> a21
                          in
                          let ret = function Formula.M1 -> r1 | Formula.M2 -> r2 in
                          envs := Formula.env ~vfun ~arg ~ret () :: !envs)
                        ret_vals)
                    ret_vals)
                arg_vals)
            arg_vals)
        arg_vals)
    arg_vals;
  !envs
