(** Bounded soundness/completeness checking of commutativity specifications
    against executable reference semantics (the analysis behind
    [commlat lint]).

    For every ordered method pair with a registered condition, enumerate
    small initial states and argument tuples from the ADT's {!Domain},
    execute both interleavings against the reference implementation, and
    compare:

    - {b unsound} (paper §2.2, Def. 2 violated): the condition holds on the
      forward execution, yet the two orders are observationally
      distinguishable — some return value or the final abstract state
      differs.  This is an error: every detector synthesized from the spec
      would admit a non-serializable schedule.  The counterexample is a
      concrete execution trace and is reported in full.
    - {b incomplete}: the two orders are observationally equivalent but the
      condition is [false].  This is {e not} an error — it is the spec's
      position in the commutativity lattice (a strengthened spec sits
      strictly below the precise top, trading parallelism for cheaper
      detectors, paper §4) — and is reported as an informational lattice
      position.

    The condition is evaluated on the forward execution's observations
    ([s1] = the initial state, [s2] = the state after the first
    invocation, [r1]/[r2] = the forward returns), matching the paper's
    reading of [f_{m1,m2}(s1,v1,r1,s2,v2,r2)]. *)

open Commlat_core

(** One interleaving's observations: both returns plus the final abstract
    state. *)
type observation = { obs_r1 : Value.t; obs_r2 : Value.t; obs_state : Value.t }

type counterexample = {
  cx_state : string;  (** label of the initial state *)
  cx_m1 : string;
  cx_args1 : Value.t list;
  cx_m2 : string;
  cx_args2 : Value.t list;
  cx_fwd : observation;  (** m1 then m2 *)
  cx_rev : observation;  (** m2 then m1 *)
  cx_cond : Formula.t;  (** the condition that (wrongly) admitted the swap *)
}

type pair_report = {
  pr_pair : string * string;
  pr_cond : Formula.t;
  pr_scenarios : int;  (** scenarios whose condition evaluated *)
  pr_commuting : int;  (** observationally equivalent scenarios *)
  pr_incomplete : int;  (** commuting scenarios the condition rejects *)
  pr_unsound : counterexample list;  (** reported counterexamples (capped) *)
  pr_unsound_total : int;
  pr_skipped : int;  (** scenarios whose condition raised *)
}

let pp_args ppf args = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) args

let pp_observation m1 args1 m2 args2 ~flipped ppf o =
  if flipped then
    Fmt.pf ppf "%s%a = %a ; %s%a = %a  -->  state %a" m2 pp_args args2 Value.pp
      o.obs_r2 m1 pp_args args1 Value.pp o.obs_r1 Value.pp o.obs_state
  else
    Fmt.pf ppf "%s%a = %a ; %s%a = %a  -->  state %a" m1 pp_args args1 Value.pp
      o.obs_r1 m2 pp_args args2 Value.pp o.obs_r2 Value.pp o.obs_state

let pp_counterexample ppf cx =
  let what =
    if not (Value.equal cx.cx_fwd.obs_state cx.cx_rev.obs_state) then
      "the final abstract states differ"
    else if not (Value.equal cx.cx_fwd.obs_r1 cx.cx_rev.obs_r1) then
      Fmt.str "%s's return value differs (%a vs %a)" cx.cx_m1 Value.pp
        cx.cx_fwd.obs_r1 Value.pp cx.cx_rev.obs_r1
    else
      Fmt.str "%s's return value differs (%a vs %a)" cx.cx_m2 Value.pp
        cx.cx_fwd.obs_r2 Value.pp cx.cx_rev.obs_r2
  in
  Fmt.pf ppf
    "from state %s:@,  forward: %a@,  swapped: %a@,condition %a holds on the \
     forward observations, but %s"
    cx.cx_state
    (pp_observation cx.cx_m1 cx.cx_args1 cx.cx_m2 cx.cx_args2 ~flipped:false)
    cx.cx_fwd
    (pp_observation cx.cx_m1 cx.cx_args1 cx.cx_m2 cx.cx_args2 ~flipped:true)
    cx.cx_rev Formula.pp cx.cx_cond what

let counterexample_to_string cx = Fmt.str "@[<v>%a@]" pp_counterexample cx

(* ------------------------------------------------------------------ *)
(* Scenario execution                                                  *)
(* ------------------------------------------------------------------ *)

let replay (dom : Domain.t) setup_ops =
  let inst = dom.Domain.fresh () in
  List.iter (fun (op, args) -> ignore (inst.Domain.apply op args)) setup_ops;
  inst

(** Execute [m1(args1); m2(args2)] (or swapped) from the given initial
    state; [None] if the reference implementation rejected an invocation
    (e.g. out-of-domain argument), in which case the scenario is skipped. *)
let run_order dom setup_ops ~swapped (m1, args1) (m2, args2) =
  match
    let inst = replay dom setup_ops in
    if swapped then (
      let r2 = inst.Domain.apply m2 args2 in
      let r1 = inst.Domain.apply m1 args1 in
      { obs_r1 = r1; obs_r2 = r2; obs_state = inst.Domain.snapshot () })
    else
      let r1 = inst.Domain.apply m1 args1 in
      let r2 = inst.Domain.apply m2 args2 in
      { obs_r1 = r1; obs_r2 = r2; obs_state = inst.Domain.snapshot () }
  with
  | obs -> Some obs
  | exception (Value.Type_error _ | Invalid_argument _ | Failure _) -> None

let equivalent a b =
  Value.equal a.obs_r1 b.obs_r1 && Value.equal a.obs_r2 b.obs_r2
  && Value.equal a.obs_state b.obs_state

(** Check one ordered method pair; [max_counterexamples] caps how many
    traces are retained (all are counted). *)
let check_pair ?(max_counterexamples = 3) (dom : Domain.t) (spec : Spec.t)
    ((m1, m2), cond) : pair_report =
  let args1s = dom.Domain.args_of m1 and args2s = dom.Domain.args_of m2 in
  let report =
    ref
      {
        pr_pair = (m1, m2);
        pr_cond = cond;
        pr_scenarios = 0;
        pr_commuting = 0;
        pr_incomplete = 0;
        pr_unsound = [];
        pr_unsound_total = 0;
        pr_skipped = 0;
      }
  in
  List.iter
    (fun (state_label, setup_ops) ->
      List.iter
        (fun args1 ->
          List.iter
            (fun args2 ->
              match
                ( run_order dom setup_ops ~swapped:false (m1, args1) (m2, args2),
                  run_order dom setup_ops ~swapped:true (m1, args1) (m2, args2) )
              with
              | Some fwd, Some rev -> (
                  (* s1 = the initial state, s2 = after m1: reconstructed by
                     replay, built lazily since most conditions are
                     state-free *)
                  let s1_inst = lazy (replay dom setup_ops) in
                  let s2_inst =
                    lazy
                      (let i = replay dom setup_ops in
                       ignore (i.Domain.apply m1 args1);
                       i)
                  in
                  let env =
                    Formula.env
                      ~sfun:(fun name state args _t ->
                        let inst =
                          match state with
                          | Formula.S1 -> Lazy.force s1_inst
                          | Formula.S2 -> Lazy.force s2_inst
                        in
                        inst.Domain.sfun name args)
                      ~vfun:(Domain.vfun_resolver ~domain:dom spec)
                      ~arg:(fun side i ->
                        let args =
                          match side with Formula.M1 -> args1 | Formula.M2 -> args2
                        in
                        List.nth args i)
                      ~ret:(function
                        | Formula.M1 -> fwd.obs_r1 | Formula.M2 -> fwd.obs_r2)
                      ()
                  in
                  match Formula.eval env cond with
                  | exception (Formula.Unsupported _ | Value.Type_error _) ->
                      report := { !report with pr_skipped = !report.pr_skipped + 1 }
                  | admitted ->
                      let r = !report in
                      let r = { r with pr_scenarios = r.pr_scenarios + 1 } in
                      let eq = equivalent fwd rev in
                      let r =
                        if eq then { r with pr_commuting = r.pr_commuting + 1 } else r
                      in
                      let r =
                        if admitted && not eq then
                          let cx =
                            {
                              cx_state = state_label;
                              cx_m1 = m1;
                              cx_args1 = args1;
                              cx_m2 = m2;
                              cx_args2 = args2;
                              cx_fwd = fwd;
                              cx_rev = rev;
                              cx_cond = cond;
                            }
                          in
                          {
                            r with
                            pr_unsound_total = r.pr_unsound_total + 1;
                            pr_unsound =
                              (if List.length r.pr_unsound < max_counterexamples then
                                 r.pr_unsound @ [ cx ]
                               else r.pr_unsound);
                          }
                        else if (not admitted) && eq then
                          { r with pr_incomplete = r.pr_incomplete + 1 }
                        else r
                      in
                      report := r)
              | _ -> report := { !report with pr_skipped = !report.pr_skipped + 1 })
            args2s)
        args1s)
    dom.Domain.states;
  !report

(** Check every registered ordered pair of [spec] against [dom]. *)
let check_spec ?max_counterexamples (dom : Domain.t) (spec : Spec.t) :
    pair_report list =
  List.map (check_pair ?max_counterexamples dom spec) (Spec.pairs spec)
