(** Lattice comparison of a synthesized specification against a
    hand-written one, pair by pair.

    Two grains of comparison, both reported:

    - {b observational} (the primary verdict): the two conditions are
      evaluated over the {e reachable} observation space — every scenario
      environment the bounded oracle generates ({!Synth.scenario_envs}).
      This is the semantically meaningful order: conditions are only ever
      evaluated on real observations, and two syntactically different
      formulas that agree on every reachable observation induce identical
      detectors.  (Example: on the set, [r1 = false] and
      [r1 = false /\ r2 = false] coincide wherever [v1[0] = v2[0]] —
      a second add of an element the first add found present never
      modifies either.)
    - {b syntactic} ({!Commlat_core.Lattice.leq_syntactic} both ways):
      the cheap sufficient check, reported so a reader can tell
      "identical formula" from "observationally equivalent formula".

    A synthesized condition that is strictly {e weaker} observationally
    than the hand-written one means the synthesizer found commutativity
    the hand spec gave away — the hand spec is a strengthening (paper §4),
    not a bug.  Strictly {e stronger} means residual incompleteness (the
    grammar could not express the separator).  [Incomparable] means the
    synthesized condition admits some reachable scenario the hand one
    rejects {e and} vice versa — with a converged synthesis this
    indicates an unsound hand condition and deserves a hard look. *)

open Commlat_core

type relation =
  | Equivalent
  | Synth_weaker  (** synthesized admits more: hand spec is a strengthening *)
  | Synth_stronger  (** synthesized admits less: grammar expressiveness gap *)
  | Incomparable
  | No_evidence  (** no scenario environment evaluated both conditions *)

let relation_name = function
  | Equivalent -> "equivalent"
  | Synth_weaker -> "synth-weaker"
  | Synth_stronger -> "synth-stronger"
  | Incomparable -> "incomparable"
  | No_evidence -> "no-evidence"

let pp_relation ppf r = Fmt.string ppf (relation_name r)

type pair_relation = {
  eq_pair : string * string;
  eq_hand : Formula.t;
  eq_synth : Formula.t;
  eq_relation : relation;  (** observational, over reachable scenarios *)
  eq_syntactic_equal : bool;  (** [leq_syntactic] holds in both directions *)
  eq_envs : int;  (** scenario environments both conditions evaluated on *)
}

(** Is the relation acceptable for a re-derivation gate?  [Equivalent] and
    [Synth_weaker] are: the synthesized spec sits at or above the hand
    spec in the lattice while staying sound. *)
let acceptable = function
  | Equivalent | Synth_weaker -> true
  | Synth_stronger | Incomparable | No_evidence -> false

let eval_opt env f =
  match Formula.eval env f with
  | b -> Some b
  | exception (Formula.Unsupported _ | Value.Type_error _ | Invalid_argument _) ->
      None

(** Compare the conditions of [synth] and [hand] for one ordered pair over
    the reachable observation environments. *)
let compare_pair ~envs ~hand_cond ~synth_cond pair : pair_relation =
  let le_sh = ref true (* synth => hand *) and le_hs = ref true in
  let n = ref 0 in
  List.iter
    (fun env ->
      match (eval_opt env synth_cond, eval_opt env hand_cond) with
      | Some s, Some h ->
          incr n;
          if s && not h then le_sh := false;
          if h && not s then le_hs := false
      | _ -> ())
    envs;
  let relation =
    if !n = 0 then No_evidence
    else
      match (!le_sh, !le_hs) with
      | true, true -> Equivalent
      | false, true -> Synth_weaker
      | true, false -> Synth_stronger
      | false, false -> Incomparable
  in
  {
    eq_pair = pair;
    eq_hand = hand_cond;
    eq_synth = synth_cond;
    eq_relation = relation;
    eq_syntactic_equal =
      Lattice.leq_syntactic synth_cond hand_cond
      && Lattice.leq_syntactic hand_cond synth_cond;
    eq_envs = !n;
  }

(** Compare whole specifications over every ordered pair either spec
    covers, using [dom]'s scenario space as the reachable observation
    sample.  Pairs are compared in sorted order. *)
let compare_specs (dom : Domain.t) ~(hand : Spec.t) ~(synth : Spec.t) :
    pair_relation list =
  let pairs =
    List.sort_uniq compare
      (List.map fst (Spec.pairs hand) @ List.map fst (Spec.pairs synth))
  in
  List.map
    (fun (m1, m2) ->
      let envs = Synth.scenario_envs dom hand (m1, m2) in
      compare_pair ~envs
        ~hand_cond:(Spec.cond hand ~first:m1 ~second:m2)
        ~synth_cond:(Spec.cond synth ~first:m1 ~second:m2)
        (m1, m2))
    pairs
