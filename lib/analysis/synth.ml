(** CEGIS synthesis of commutativity conditions from reference ADT
    semantics (ROADMAP item 1; "Automatic Generation of Precise and Useful
    Commutativity Conditions", PAPERS.md).

    For each method pair the loop is the classic
    counterexample-guided inductive synthesis shape:

    + {b propose}: learn the weakest DNF formula over the {!Grammar} atoms
      that separates the accumulated sample set — [true] on every sample
      that observably commuted, [false] on every sample that did not
      (starting, with no samples, from the optimistic [true]);
    + {b refute}: sweep the bounded checker's scenario space
      ({!Domain} states x argument tuples, executed in both orders exactly
      as {!Soundness} does) and collect scenarios the candidate
      misclassifies — admitted-but-not-commuting (a soundness
      counterexample) or rejected-but-commuting (an incompleteness
      counterexample);
    + {b refine}: add a batch of fresh counterexamples to the sample set
      and re-learn.

    The loop converges when the candidate classifies every scenario the
    bounded oracle can generate — always, because the scenario space is
    finite and every iteration adds at least one fresh sample.  If the
    grammar cannot express the exact separator (union-find's conditions
    need state functions), the learner keeps the candidate {e sound} and
    reports the residual incompleteness instead of over-approximating:
    commuting samples it cannot cover are left rejected, never the other
    way around.

    The synthesized conditions are state-free by construction, so each
    unordered pair is learned once (for [m1 <= m2]) and registered in both
    orientations via {!Commlat_core.Spec.add_sym}.  Mirroring is {e not}
    free, though: return values depend on execution order, so a formula
    exact for [(m1, m2)] observations is not automatically exact when
    mirrored onto [(m2, m1)] (on the set, [contains ; remove] sees
    [r_contains = true] where the reversed order sees [false]).  The loop
    therefore learns each unordered pair {e jointly}: the reversed
    orientation's scenarios join the sample space through a side-swapped
    environment ({!swap_env}), making the learned formula and its mirror
    exact simultaneously. *)

open Commlat_core

(* ------------------------------------------------------------------ *)
(* Scenarios: the bounded oracle's sample space                        *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sc_state : string;
  sc_args1 : Value.t list;
  sc_args2 : Value.t list;
  sc_commutes : bool;
  sc_mirror : bool;
      (** scenario of the reversed pair, viewed through {!swap_env} *)
  sc_env : Formula.env;  (** forward-observation environment *)
}

(** Enumerate every scenario of the ordered pair ([m1], [m2]): initial
    states x argument tuples, both interleavings executed against the
    reference implementation, observational equivalence recorded.  The
    environment binds the {e forward} observations (the same convention as
    {!Soundness.check_pair}), with [s1]/[s2] state functions answered by
    lazy replay. *)
let scenarios (dom : Domain.t) (spec : Spec.t) (m1, m2) : scenario list =
  let args1s = dom.Domain.args_of m1 and args2s = dom.Domain.args_of m2 in
  let acc = ref [] in
  List.iter
    (fun (state_label, setup_ops) ->
      List.iter
        (fun args1 ->
          List.iter
            (fun args2 ->
              match
                ( Soundness.run_order dom setup_ops ~swapped:false (m1, args1)
                    (m2, args2),
                  Soundness.run_order dom setup_ops ~swapped:true (m1, args1)
                    (m2, args2) )
              with
              | Some fwd, Some rev ->
                  let s1_inst = lazy (Soundness.replay dom setup_ops) in
                  let s2_inst =
                    lazy
                      (let i = Soundness.replay dom setup_ops in
                       ignore (i.Domain.apply m1 args1);
                       i)
                  in
                  let env =
                    Formula.env
                      ~sfun:(fun name state args _t ->
                        let inst =
                          match state with
                          | Formula.S1 -> Lazy.force s1_inst
                          | Formula.S2 -> Lazy.force s2_inst
                        in
                        inst.Domain.sfun name args)
                      ~vfun:(Domain.vfun_resolver ~domain:dom spec)
                      ~arg:(fun side i ->
                        let args =
                          match side with
                          | Formula.M1 -> args1
                          | Formula.M2 -> args2
                        in
                        List.nth args i)
                      ~ret:(function
                        | Formula.M1 -> fwd.Soundness.obs_r1
                        | Formula.M2 -> fwd.Soundness.obs_r2)
                      ()
                  in
                  acc :=
                    {
                      sc_state = state_label;
                      sc_args1 = args1;
                      sc_args2 = args2;
                      sc_commutes = Soundness.equivalent fwd rev;
                      sc_mirror = false;
                      sc_env = env;
                    }
                    :: !acc
              | _ -> ())
            args2s)
        args1s)
    dom.Domain.states;
  List.rev !acc

(** The scenario environments alone — the reachable-observation sample
    space {!Equiv} compares specs over. *)
let scenario_envs dom spec pair =
  List.map (fun sc -> sc.sc_env) (scenarios dom spec pair)

(** Side-swapped view of an observation environment: a formula [f] written
    for the pair ([m1], [m2]) evaluates on [swap_env e] exactly as
    [Formula.mirror f] evaluates on [e].  Used to make each unordered
    pair's synthesis {e jointly} exact: return values depend on execution
    order, so a formula exact for one orientation is not automatically
    exact when mirrored onto the other — the reversed orientation's
    scenarios must constrain the learner too. *)
let swap_env (env : Formula.env) : Formula.env =
  let flip = function Formula.M1 -> Formula.M2 | Formula.M2 -> Formula.M1 in
  {
    env with
    Formula.arg = (fun side i -> env.Formula.arg (flip side) i);
    ret = (fun side -> env.Formula.ret (flip side));
  }

let swap_scenario sc = { sc with sc_mirror = true; sc_env = swap_env sc.sc_env }

(* ------------------------------------------------------------------ *)
(* The learner: exact DNF separation over atom valuations              *)
(* ------------------------------------------------------------------ *)

(* Atom valuations are tri-state: an atom whose evaluation raises on a
   sample (unsupported function, type mismatch) is treated conservatively
   — as possibly-true when checking that a disjunct admits no
   non-commuting sample, as false when counting the commuting samples it
   covers. *)
let v_false = 0

and v_true = 1

and v_err = 2

let eval_atom env atom =
  match Formula.eval env atom with
  | true -> v_true
  | false -> v_false
  | exception (Formula.Unsupported _ | Value.Type_error _ | Invalid_argument _) ->
      v_err

type sample = { sm_bits : int array; sm_commutes : bool; sm_scenario : scenario }

let sample_of ~atoms sc =
  {
    sm_bits = Array.of_list (List.map (eval_atom sc.sc_env) atoms);
    sm_commutes = sc.sc_commutes;
    sm_scenario = sc;
  }

(* Does the conjunction of [conj] (atom indices) cover sample [s]? *)
let covers ~lenient conj s =
  List.for_all
    (fun i ->
      let b = s.sm_bits.(i) in
      b = v_true || (lenient && b = v_err))
    conj

(** Greedy specialization: grow one conjunction that admits no negative
    sample while covering as many of [pos] as possible.  Atom choice is
    deterministic: among atoms that strictly shrink the admitted
    negatives, maximize kept positives, then minimal kept negatives, then
    canonical atom order.  [None] if no atom makes progress. *)
let find_disjunct ~n_atoms ~pos ~neg =
  let rec grow conj pos neg =
    if neg = [] then Some (List.rev conj)
    else if List.length conj >= 6 then None
    else
      let best = ref None in
      for i = n_atoms - 1 downto 0 do
        if not (List.mem i conj) then begin
          let neg' = List.filter (covers ~lenient:true [ i ]) neg in
          if List.length neg' < List.length neg then begin
            let pos' = List.filter (covers ~lenient:false [ i ]) pos in
            let score = (List.length pos', -List.length neg') in
            match !best with
            | Some (_, _, _, s) when s >= score -> ()
            | _ -> best := Some (i, pos', neg', score)
          end
        end
      done;
      match !best with
      | None -> None
      | Some (i, pos', neg', _) -> grow (i :: conj) pos' neg'
  in
  grow [] pos neg

(** Learn the weakest separating DNF over [atoms] for the given samples:
    disjuncts are added greedily (largest positive cover first) until
    every commuting sample is covered or no sound disjunct covers the
    remainder.  Returns the disjuncts (as atom-index lists) and the
    positives left uncovered (the learner's expressiveness residue). *)
let learn ~n_atoms (samples : sample list) =
  let pos = List.filter (fun s -> s.sm_commutes) samples in
  let neg = List.filter (fun s -> not s.sm_commutes) samples in
  if neg = [] then (`True, [])
  else if pos = [] then (`False, [])
  else
    let rec cover acc uncovered =
      if uncovered = [] then (List.rev acc, [])
      else
        match find_disjunct ~n_atoms ~pos:uncovered ~neg with
        | None -> (List.rev acc, uncovered)
        | Some conj ->
            let covered, rest =
              List.partition (covers ~lenient:false conj) uncovered
            in
            if covered = [] then (List.rev acc, uncovered)
            else cover (conj :: acc) rest
    in
    let disjuncts, residue = cover [] pos in
    (`Dnf disjuncts, residue)

(* ------------------------------------------------------------------ *)
(* The CEGIS loop                                                      *)
(* ------------------------------------------------------------------ *)

type pair_result = {
  sy_pair : string * string;
  sy_cond : Formula.t;
  sy_iterations : int;  (** candidates proposed (learner invocations) *)
  sy_samples : int;  (** counterexamples accumulated across iterations *)
  sy_scenarios : int;  (** size of the bounded oracle's scenario space *)
  sy_residual_incomplete : int;
      (** commuting scenarios the final condition still rejects: the
          grammar's expressiveness frontier (0 = exact separation) *)
  sy_converged : bool;  (** the final condition misclassifies nothing fresh *)
}

let scenario_key sc = (sc.sc_state, sc.sc_args1, sc.sc_args2, sc.sc_mirror)

let formula_of ~atoms shape =
  let atom_arr = Array.of_list atoms in
  match shape with
  | `True -> Formula.True
  | `False -> Formula.False
  | `Dnf disjuncts ->
      Grammar.dnf_of (List.map (List.map (fun i -> atom_arr.(i))) disjuncts)

(* Candidate evaluation on a scenario: an erroring condition admits
   nothing (matching how detectors must treat an unevaluable condition:
   assume conflict). *)
let admits cand sc =
  match Formula.eval sc.sc_env cand with
  | b -> b
  | exception (Formula.Unsupported _ | Value.Type_error _ | Invalid_argument _) ->
      false

(** Synthesize the condition for one ordered pair by CEGIS against the
    bounded oracle.  The result is sound on the whole scenario space: the
    loop only stops once no admitted-but-not-commuting scenario remains
    outside the sample set, and the learner never admits a non-commuting
    sample. *)
let synthesize_pair ?(batch = 8) ~atoms (pair : string * string)
    (scs : scenario list) : pair_result =
  if scs = [] then
    (* no evidence at all (the domain generates no scenarios for this
       pair): default to the sound "never commute", and do not claim
       convergence *)
    {
      sy_pair = pair;
      sy_cond = Formula.False;
      sy_iterations = 0;
      sy_samples = 0;
      sy_scenarios = 0;
      sy_residual_incomplete = 0;
      sy_converged = false;
    }
  else
  let n_atoms = List.length atoms in
  let seen = Hashtbl.create 64 in
  let samples = ref [] in
  let iterations = ref 0 in
  let rec loop () =
    incr iterations;
    let shape, _residue = learn ~n_atoms !samples in
    let cand = formula_of ~atoms shape in
    let mis =
      List.filter
        (fun sc ->
          admits cand sc <> sc.sc_commutes
          && not (Hashtbl.mem seen (scenario_key sc)))
        scs
    in
    match mis with
    | [] ->
        let residual =
          List.length
            (List.filter (fun sc -> sc.sc_commutes && not (admits cand sc)) scs)
        in
        (cand, residual, true)
    | _ :: _ ->
        (* refine: unsound counterexamples first (they threaten soundness;
           incompleteness merely costs parallelism), then a batch of the
           rest in deterministic scenario order *)
        let unsound, incomplete =
          List.partition (fun sc -> not sc.sc_commutes) mis
        in
        let fresh =
          List.filteri (fun i _ -> i < batch) (unsound @ incomplete)
        in
        List.iter
          (fun sc ->
            Hashtbl.replace seen (scenario_key sc) ();
            samples := sample_of ~atoms sc :: !samples)
          fresh;
        loop ()
  in
  let cond, residual, converged = loop () in
  {
    sy_pair = pair;
    sy_cond = cond;
    sy_iterations = !iterations;
    sy_samples = List.length !samples;
    sy_scenarios = List.length scs;
    sy_residual_incomplete = residual;
    sy_converged = converged;
  }

(* ------------------------------------------------------------------ *)
(* Whole-specification synthesis                                       *)
(* ------------------------------------------------------------------ *)

type report = {
  sy_adt : string;
  sy_spec : Spec.t;  (** the synthesized specification *)
  sy_results : pair_result list;  (** one per unordered pair, [m1 <= m2] *)
}

(** Synthesize a complete specification for [methods] of the ADT that
    [dom] models.  [reference] supplies the value-function
    interpretations ([some], [part], ...) and the ADT name; its
    {e conditions} are never consulted — synthesis starts from the
    method signatures and the executable semantics alone. *)
let synthesize ?batch ?consts (dom : Domain.t) (reference : Spec.t) : report =
  let methods = Spec.methods reference in
  let vfun_names =
    List.sort_uniq compare
      (List.map fst reference.Spec.vfuns @ List.map fst dom.Domain.vfuns)
  in
  let spec =
    Spec.create ~vfuns:reference.Spec.vfuns ~adt:(Spec.adt reference) methods
  in
  let pairs =
    List.concat_map
      (fun (m1 : Invocation.meth) ->
        List.filter_map
          (fun (m2 : Invocation.meth) ->
            if m1.Invocation.name <= m2.Invocation.name then
              Some (m1, m2)
            else None)
          methods)
      methods
  in
  let results =
    List.map
      (fun ((m1 : Invocation.meth), (m2 : Invocation.meth)) ->
        let atoms = Grammar.atoms ?consts ~vfuns:vfun_names m1 m2 in
        let pair = (m1.Invocation.name, m2.Invocation.name) in
        (* joint sample space: forward scenarios plus the reversed pair's
           scenarios through the side-swap, so the registered mirror is
           exact too (see the module comment) *)
        let scs =
          scenarios dom reference pair
          @ List.map swap_scenario
              (scenarios dom reference (snd pair, fst pair))
        in
        let r = synthesize_pair ?batch ~atoms pair scs in
        Spec.add_sym spec m1.Invocation.name m2.Invocation.name r.sy_cond;
        r)
      pairs
  in
  { sy_adt = Spec.adt reference; sy_spec = spec; sy_results = results }
