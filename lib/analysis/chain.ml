(** Strengthening-chain validation: given an ordered list of specifications
    (weakest first, e.g. [set.spec] → [set_rw.spec] → an exclusive
    variant), verify that every step actually {e descends} the
    commutativity lattice — each successive spec's condition implies its
    predecessor's, pointwise over every ordered method pair (paper §2.4,
    §4: only then is a detector sound for the stronger spec also sound for
    the weaker one).

    Each step is checked pair by pair: the cheap syntactic implication
    first ({!Lattice.leq_syntactic}); where that is inconclusive, the
    bounded semantic check over exhaustive small environments.  A bounded
    refutation is a hard error ([chain-broken]); a step provable only
    boundedly is reported as info; a step with no evidence either way (all
    environments raised, e.g. state-dependent conditions) is a warning. *)

open Commlat_core

type step_source = { label : string; spec : Spec.t }

let pair_keys s1 s2 =
  List.sort_uniq Stdlib.compare (List.map fst (Spec.pairs s1) @ List.map fst (Spec.pairs s2))

let validate_step ~envs (upper : step_source) (lower : step_source) :
    Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let upper_methods =
    List.map (fun (m : Invocation.meth) -> m.Invocation.name) (Spec.methods upper.spec)
  in
  let lower_methods =
    List.map (fun (m : Invocation.meth) -> m.Invocation.name) (Spec.methods lower.spec)
  in
  if List.sort compare upper_methods <> List.sort compare lower_methods then
    add
      (Diagnostic.make ~file:lower.label ~spec:(Spec.adt lower.spec)
         ~sev:Diagnostic.Warning ~code:"chain-methods"
         "method sets differ between %s and %s — the lattice order is only \
          defined for specifications of the same ADT"
         upper.label lower.label);
  List.iter
    (fun (m1, m2) ->
      let fu = Spec.cond upper.spec ~first:m1 ~second:m2 in
      let fl = Spec.cond lower.spec ~first:m1 ~second:m2 in
      if Lattice.leq_syntactic fl fu then ()
      else
        match Lattice.leq_bounded_checked ~envs fl fu with
        | Some true ->
            add
              (Diagnostic.make ~file:lower.label ~pair:(m1, m2)
                 ~spec:(Spec.adt lower.spec) ~sev:Diagnostic.Info
                 ~code:"chain-bounded"
                 "step %s -> %s verified only by the bounded check for this \
                  pair (%a => %a holds on all sampled environments)"
                 upper.label lower.label Formula.pp fl Formula.pp fu)
        | Some false ->
            add
              (Diagnostic.make ~file:lower.label ~pair:(m1, m2)
                 ~spec:(Spec.adt lower.spec) ~sev:Diagnostic.Error
                 ~code:"chain-broken"
                 "step %s -> %s does not descend the lattice: %a does not \
                  imply %a — a detector for %s is not sound for %s"
                 upper.label lower.label Formula.pp fl Formula.pp fu
                 (Spec.adt lower.spec) (Spec.adt upper.spec))
        | None ->
            add
              (Diagnostic.make ~file:lower.label ~pair:(m1, m2)
                 ~spec:(Spec.adt lower.spec) ~sev:Diagnostic.Warning
                 ~code:"chain-unverified"
                 "step %s -> %s could not be verified for this pair (no \
                  sample environment evaluates %a => %a)"
                 upper.label lower.label Formula.pp fl Formula.pp fu))
    (pair_keys upper.spec lower.spec);
  (* a descent that is also an ascent is an equivalence, worth knowing *)
  if
    !diags = []
    && Lattice.spec_leq upper.spec lower.spec
    && Lattice.spec_leq lower.spec upper.spec
  then
    add
      (Diagnostic.make ~file:lower.label ~spec:(Spec.adt lower.spec)
         ~sev:Diagnostic.Info ~code:"chain-equal"
         "step %s -> %s is an equivalence, not a strict descent" upper.label
         lower.label);
  List.rev !diags

(** Validate a whole chain, weakest specification first. *)
let validate ~envs (chain : step_source list) : Diagnostic.t list =
  let rec go = function
    | a :: (b :: _ as rest) -> validate_step ~envs a b @ go rest
    | _ -> []
  in
  go chain
