(** Structural lints over commutativity specifications: spec smells that
    need no reference execution, only the formulas themselves (plus, for
    the return-value lint, one sample invocation per method).

    The catalogue (diagnostic codes in brackets):

    - [dead-disjunct] — a top-level disjunct implied by a sibling disjunct
      (checked with {!Lattice.leq_bounded_checked} over exhaustive small
      environments): dropping it leaves the condition semantically
      unchanged, so it is noise — or a sign the author meant something
      else.
    - [misclassification] — a condition whose syntactic class (L1/L3) is
      higher than its semantic content: it is boundedly equivalent to its
      SIMPLE core, or constant folding alone lowers its class.  A cheaper
      detector scheme applies (paper §3.4's hierarchy).
    - [unit-return] — the condition mentions [r1]/[r2] of a method that
      returns no value (every sampled invocation returns [unit]): the
      comparison is degenerate and always compares [unit] to something.
    - [asymmetric-coverage] — a [directed] rule whose mirrored orientation
      has no rule at all, so the mirror silently defaults to "never
      commute"; state-dependent specs must spell out both orientations
      (paper Fig. 5 does).
    - [superfluous-mode] — for SIMPLE specs, lock modes of the synthesized
      abstract-locking scheme that are compatible with every mode and are
      re-derivable as droppable by {!Abstract_lock.reduce} (the paper's
      Fig. 8(a) → 8(b) optimization). *)

open Commlat_core

let cls_rank = function
  | Formula.Simple -> 0
  | Formula.Online -> 1
  | Formula.General -> 2

let diag ?file ~rules ~spec ~pair:(m1, m2) sev code fmt =
  let pos = Spec_lang.rule_pos rules ~first:m1 ~second:m2 in
  Diagnostic.make ?file ?pos ~pair:(m1, m2) ~spec:(Spec.adt spec) ~sev ~code fmt

(* ---- dead / redundant disjuncts ---- *)

let dead_disjuncts ?file ~rules ~envs (spec : Spec.t) ((m1, m2), f) =
  let ds = Formula.disjuncts f in
  if List.length ds < 2 then []
  else
    let implied i di =
      (* a disjunct is dead if some sibling subsumes it; among mutually
         equivalent disjuncts only the later ones are flagged *)
      List.exists
        (fun (j, dj) ->
          j <> i
          && Formula.is_state_free di && Formula.is_state_free dj
          && Lattice.leq_bounded_checked ~envs di dj = Some true
          && (j < i || Lattice.leq_bounded_checked ~envs dj di <> Some true))
        (List.mapi (fun j d -> (j, d)) ds)
    in
    List.concat
      (List.mapi
         (fun i di ->
           if implied i di then
             [
               diag ?file ~rules ~spec ~pair:(m1, m2) Diagnostic.Warning
                 "dead-disjunct"
                 "disjunct %a is implied by a sibling disjunct (bounded check) \
                  — dropping it leaves the condition unchanged"
                 Formula.pp di;
             ]
           else [])
         ds)

(* ---- misclassification ---- *)

let misclassification ?file ~rules ~envs (spec : Spec.t) ((m1, m2), f) =
  let cls = Formula.classify f in
  if cls = Formula.Simple then []
  else
    let core = Strengthen.simple_core f in
    if
      core <> Formula.False
      && Lattice.equiv_bounded_checked ~envs core f = Some true
    then
      [
        diag ?file ~rules ~spec ~pair:(m1, m2) Diagnostic.Warning "misclassification"
          "condition is written in %a form but is boundedly equivalent to its \
           SIMPLE core %a — the cheaper abstract-locking detector applies"
          Formula.pp_cls cls Formula.pp core;
      ]
    else
      let folded = Formula.simplify f in
      if cls_rank (Formula.classify folded) < cls_rank cls then
        [
          diag ?file ~rules ~spec ~pair:(m1, m2) Diagnostic.Warning
            "misclassification"
            "condition simplifies to %a, which is %a rather than %a — a \
             cheaper detector applies"
            Formula.pp folded Formula.pp_cls
            (Formula.classify folded)
            Formula.pp_cls cls;
        ]
      else []

(* ---- return-value references on void methods ---- *)

(** Sample each method once against the reference implementation to learn
    whether it returns a value; [None] when execution fails or no domain
    covers the method. *)
let returns_unit (dom : Domain.t) =
  let cache = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some r -> r
    | None ->
        let r =
          match dom.Domain.args_of name with
          | [] -> None
          | args :: _ -> (
              match
                let inst = dom.Domain.fresh () in
                inst.Domain.apply name args
              with
              | v -> Some (Value.equal v Value.Unit)
              | exception _ -> None)
        in
        Hashtbl.add cache name r;
        r

let unit_returns ?file ~rules ~domain (spec : Spec.t) ((m1, m2), f) =
  match domain with
  | None -> []
  | Some dom ->
      let unit_of = returns_unit dom in
      let check side meth_name =
        if Formula.mentions_ret side f && unit_of meth_name = Some true then
          [
            diag ?file ~rules ~spec ~pair:(m1, m2) Diagnostic.Warning "unit-return"
              "condition references %s, but %s returns no value — the \
               comparison always sees unit"
              (match side with Formula.M1 -> "r1" | Formula.M2 -> "r2")
              meth_name;
          ]
        else []
      in
      check Formula.M1 m1 @ check Formula.M2 m2

(* ---- asymmetric coverage ---- *)

let asymmetric_coverage ?file ~rules (spec : Spec.t) ((m1, m2), _f) =
  if m1 = m2 then []
  else
    let pairs = Spec.pairs spec in
    if List.mem_assoc (m2, m1) pairs then []
    else
      [
        diag ?file ~rules ~spec ~pair:(m1, m2) Diagnostic.Warning
          "asymmetric-coverage"
          "the mirrored pair (%s ; %s) has no rule and defaults to 'never' — \
           state-dependent conditions must spell out both orientations"
          m2 m1;
      ]

(* ---- superfluous lock modes (SIMPLE specs only) ---- *)

let superfluous_modes ?file (spec : Spec.t) =
  if Spec.classify spec <> Formula.Simple then []
  else
    match Abstract_lock.construct spec with
    | exception _ -> []
    | scheme ->
        let superfluous =
          List.filter
            (fun i -> Array.for_all Fun.id scheme.Abstract_lock.compat.(i))
            (List.init (Abstract_lock.n_modes scheme) Fun.id)
        in
        if superfluous = [] then []
        else
          [
            Diagnostic.make ?file ~spec:(Spec.adt spec) ~sev:Diagnostic.Warning
              ~code:"superfluous-mode"
              "the synthesized locking scheme has %d superfluous mode%s \
               (compatible with every mode): %s — `commlat matrix --reduce` \
               drops them (Fig. 8a->8b)"
              (List.length superfluous)
              (if List.length superfluous = 1 then "" else "s")
              (String.concat ", "
                 (List.map (Abstract_lock.mode_name scheme) superfluous));
          ]

(** All structural lints for one specification. *)
let lint ?file ?(rules = []) ?domain ~envs (spec : Spec.t) : Diagnostic.t list =
  let per_pair =
    List.concat_map
      (fun entry ->
        dead_disjuncts ?file ~rules ~envs spec entry
        @ misclassification ?file ~rules ~envs spec entry
        @ unit_returns ?file ~rules ~domain spec entry
        @ asymmetric_coverage ?file ~rules spec entry)
      (Spec.pairs spec)
  in
  per_pair @ superfluous_modes ?file spec
