(** The predicate grammar the commutativity-condition synthesizer draws
    from ("Automatic Generation of Precise and Useful Commutativity
    Conditions", PAPERS.md; ROADMAP item 1).

    Candidate conditions are DNF formulas over a finite set of {e atoms} —
    the (dis)equalities the spec language can express over the two
    invocations' arguments, return values, the registered pure value
    functions, and small constants:

    {v
    v1[i] = v2[j]      v1[i] != v2[j]        cross-invocation arguments
    v1[i] = c          v1[i] != c            arguments vs constants
    r1 = r2            r1 != r2              return values
    r1 = c             r2 != c               returns vs constants
    r1 = f(v1[j])      r2 != f(v2[j])  ...   returns vs value functions
    r1 = v2[j]         r2 != v1[i]    ...    returns vs arguments
    v}

    Every atom is state-free, so every synthesized condition is trivially
    in the undirected (mirrorable) fragment of L1 and round-trips through
    {!Commlat_core.Spec_lang}.  The enumerator canonicalizes: each atom is
    emitted once, with its terms in a fixed orientation, and the whole list
    is sorted by a deterministic cost order (cheap footprint-style argument
    disequalities first — the shape the sharded detectors exploit — then
    return-value observations, then function atoms), so synthesis output
    is reproducible byte-for-byte across runs. *)

open Commlat_core

(* ------------------------------------------------------------------ *)
(* Canonical ordering                                                   *)
(* ------------------------------------------------------------------ *)

let rec term_size = function
  | Formula.Arg _ | Formula.Ret _ | Formula.Const _ -> 1
  | Formula.Sfun (_, _, args) | Formula.Vfun (_, args) ->
      1 + List.fold_left (fun a t -> a + term_size t) 0 args
  | Formula.Arith (_, a, b) -> 1 + term_size a + term_size b

(** Coarse cost classes steering both the canonical order and the
    learner's preference: argument-only atoms are checkable before either
    invocation runs, return atoms need the forward observations, function
    atoms additionally need an interpretation. *)
let atom_rank = function
  | Formula.Cmp (_, l, r) ->
      let rec has_ret = function
        | Formula.Ret _ -> true
        | Formula.Arg _ | Formula.Const _ -> false
        | Formula.Sfun (_, _, args) | Formula.Vfun (_, args) -> List.exists has_ret args
        | Formula.Arith (_, a, b) -> has_ret a || has_ret b
      in
      let rec has_fun = function
        | Formula.Sfun _ | Formula.Vfun _ -> true
        | Formula.Arg _ | Formula.Ret _ | Formula.Const _ -> false
        | Formula.Arith (_, a, b) -> has_fun a || has_fun b
      in
      let f = has_fun l || has_fun r and r' = has_ret l || has_ret r in
      if f then 3 else if r' then 2 else 1
  | _ -> 0

(** Total deterministic order: rank, then size, then the printed form
    (which is injective on canonical atoms). *)
let compare_atom a b =
  let size = function
    | Formula.Cmp (_, l, r) -> term_size l + term_size r
    | _ -> 0
  in
  let c = compare (atom_rank a) (atom_rank b) in
  if c <> 0 then c
  else
    let c = compare (size a) (size b) in
    if c <> 0 then c
    else compare (Formula.to_string a) (Formula.to_string b)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)
(* ------------------------------------------------------------------ *)

let both_polarities l r = [ Formula.eq l r; Formula.ne l r ]

(** Enumerate the canonical atom list for the ordered method pair
    ([m1], [m2]).  [consts] are the literal values atoms may compare
    against (defaults: [false], [true], [None], [0]); [vfuns] names the
    unary pure value functions available to the spec (e.g. kvmap's
    [some]). *)
let atoms ?(consts = [ Value.Bool false; Value.Bool true; Value.Opt None; Value.Int 0 ])
    ?(vfuns = []) (m1 : Invocation.meth) (m2 : Invocation.meth) : Formula.t list =
  let open Formula in
  let args1 = List.init m1.Invocation.arity arg1 in
  let args2 = List.init m2.Invocation.arity arg2 in
  let rets = [ ret1; ret2 ] in
  let acc = ref [] in
  let add l r = acc := both_polarities l r @ !acc in
  (* arguments across the two invocations *)
  List.iter (fun a -> List.iter (fun b -> add a b) args2) args1;
  (* arguments vs constants *)
  List.iter
    (fun a -> List.iter (fun c -> add a (const c)) consts)
    (args1 @ args2);
  (* returns: against each other, constants, and the other side's args *)
  add ret1 ret2;
  List.iter (fun r -> List.iter (fun c -> add r (const c)) consts) rets;
  List.iter (fun a -> add ret2 a) args1;
  List.iter (fun a -> add ret1 a) args2;
  List.iter (fun a -> add ret1 a) args1;
  List.iter (fun a -> add ret2 a) args2;
  (* unary value functions applied to arguments, compared with returns *)
  List.iter
    (fun f ->
      List.iter (fun a -> List.iter (fun r -> add r (vfun f [ a ])) rets) args1;
      List.iter (fun a -> List.iter (fun r -> add r (vfun f [ a ])) rets) args2)
    vfuns;
  (* canonicalize: dedupe by printed form (orientation is fixed by
     construction), then sort *)
  let seen = Hashtbl.create 64 in
  !acc
  |> List.filter (fun a ->
         let k = Formula.to_string a in
         if Hashtbl.mem seen k then false
         else (
           Hashtbl.add seen k ();
           true))
  |> List.sort compare_atom

(* ------------------------------------------------------------------ *)
(* Formula assembly                                                     *)
(* ------------------------------------------------------------------ *)

(** A candidate disjunct: a conjunction of atoms, kept in canonical atom
    order. *)
let conj_of atoms = Formula.conj (List.sort compare_atom atoms)

(** Assemble a DNF condition from learned disjuncts, in canonical order:
    argument-footprint disjuncts first (matching the hand-written specs'
    [v1[0] != v2[0] \/ ...] shape), then by size, then lexicographically.
    Subsumed disjuncts (a strict superset of another disjunct's atoms) are
    dropped — they admit strictly fewer behaviours than their subsumer. *)
let dnf_of (disjuncts : Formula.t list list) : Formula.t =
  let disjuncts = List.map (List.sort_uniq compare_atom) disjuncts in
  let subsumes small big =
    List.for_all (fun a -> List.exists (fun b -> compare_atom a b = 0) big) small
  in
  let minimal =
    List.filter
      (fun d ->
        not
          (List.exists
             (fun d' -> d != d' && subsumes d' d && not (subsumes d d'))
             disjuncts))
      disjuncts
  in
  let key d =
    let rank = List.fold_left (fun a x -> max a (atom_rank x)) 0 d in
    (rank, List.length d, Formula.to_string (conj_of d))
  in
  let sorted =
    List.sort_uniq (fun a b -> compare (key a) (key b)) minimal
  in
  Formula.disj (List.map conj_of sorted)
