(** Detector/runtime observability: counters, histograms and event traces.

    The paper's entire evaluation (§5) is about {e measuring} what each
    point of the commutativity lattice buys — aborts, overhead, available
    parallelism — so every conflict detector and executor in this repo
    reports what it did through one of these registries:

    - {e counters} are monotone atomic ints ([lock_acquisitions],
      [gatekeeper checks], [rollbacks], …) — safe to bump from any domain;
    - {e distributions} are lock-free histograms (count/sum/max plus
      power-of-two buckets) for quantities like STM read-set sizes,
      undo/redo sweep depths and per-round commit counts;
    - {e labeled counts} attribute events to a dynamic key — most
      importantly abort {e causes}: which method pair's commutativity
      condition failed;
    - an optional {e bounded ring buffer} keeps the most recent events for
      post-mortem traces.

    A disabled registry ([enabled = false], or globally via
    {!set_default_enabled}) makes every recording call return after one
    branch, so uninstrumented runs pay essentially nothing.

    {!snapshot} captures the registry as an immutable value that can be
    rendered ({!pp_snapshot}), merged across composed detectors
    ({!merge}), compared for monotonicity ({!leq}), and round-tripped
    through JSON ({!snapshot_to_json} / {!snapshot_of_json}) — the format
    behind the [BENCH_*.json] artifacts and [commlat stats]. *)

(* ------------------------------------------------------------------ *)
(* Registries                                                          *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; cell : int Atomic.t; cactive : bool }

let n_buckets = 32

type dist = {
  dname : string;
  dactive : bool;
  dn : int Atomic.t;
  dsum : int Atomic.t;
  dmax : int Atomic.t;
  buckets : int Atomic.t array;
      (** bucket 0 counts value 0; bucket [i > 0] counts values [v] with
          [2^(i-1) <= v < 2^i] (clamped at the last bucket) *)
}

type t = {
  scope : string;
  enabled : bool;
  mu : Mutex.t;
  mutable counters : counter list;  (** registration order, newest first *)
  mutable dists : dist list;
  labels : (string, (string, int ref) Hashtbl.t) Hashtbl.t;
  trace_cap : int;
  trace : (string * string) array;  (** ring; slot = seq mod cap *)
  mutable trace_seq : int;  (** total events ever recorded *)
}

let default = ref true
let set_default_enabled b = default := b
let default_enabled () = !default

let create ?enabled ?(trace = 0) scope =
  let enabled = match enabled with Some b -> b | None -> !default in
  {
    scope;
    enabled;
    mu = Mutex.create ();
    counters = [];
    dists = [];
    labels = Hashtbl.create 8;
    trace_cap = (if enabled then trace else 0);
    trace = Array.make (max 1 trace) ("", "");
    trace_seq = 0;
  }

let scope t = t.scope
let enabled t = t.enabled

(** Register (or look up) a counter.  Registration takes the registry lock;
    bumping never does. *)
let counter (t : t) name : counter =
  Mutex.protect t.mu (fun () ->
      match List.find_opt (fun c -> c.cname = name) t.counters with
      | Some c -> c
      | None ->
          let c = { cname = name; cell = Atomic.make 0; cactive = t.enabled } in
          t.counters <- c :: t.counters;
          c)

let incr c = if c.cactive then Atomic.incr c.cell
let add c n = if c.cactive then ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let dist (t : t) name : dist =
  Mutex.protect t.mu (fun () ->
      match List.find_opt (fun d -> d.dname = name) t.dists with
      | Some d -> d
      | None ->
          let d =
            {
              dname = name;
              dactive = t.enabled;
              dn = Atomic.make 0;
              dsum = Atomic.make 0;
              dmax = Atomic.make 0;
              buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            }
          in
          t.dists <- d :: t.dists;
          d)

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (n_buckets - 1) (bits 0 v)

let observe d v =
  if d.dactive then begin
    Atomic.incr d.dn;
    ignore (Atomic.fetch_and_add d.dsum v);
    Atomic.incr d.buckets.(bucket_of v);
    let rec raise_max () =
      let cur = Atomic.get d.dmax in
      if v > cur && not (Atomic.compare_and_set d.dmax cur v) then raise_max ()
    in
    raise_max ()
  end

(** Bump the count of [key] under category [cat] (e.g.
    [label obs ~cat:"abort_cause" "union;find"]). *)
let label (t : t) ~cat key =
  if t.enabled then
    Mutex.protect t.mu (fun () ->
        let tbl =
          match Hashtbl.find_opt t.labels cat with
          | Some tbl -> tbl
          | None ->
              let tbl = Hashtbl.create 8 in
              Hashtbl.add t.labels cat tbl;
              tbl
        in
        match Hashtbl.find_opt tbl key with
        | Some r -> r := !r + 1
        | None -> Hashtbl.add tbl key (ref 1))

(** Append an event to the ring buffer (kept only if the registry was
    created with [~trace:n > 0]). *)
let event (t : t) ~tag detail =
  if t.enabled && t.trace_cap > 0 then
    Mutex.protect t.mu (fun () ->
        t.trace.(t.trace_seq mod t.trace_cap) <- (tag, detail);
        t.trace_seq <- t.trace_seq + 1)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type dist_snapshot = {
  count : int;
  sum : int;
  max : int;
  nonzero_buckets : (int * int) list;  (** (bucket index, count), ascending *)
}

type snapshot = {
  snap_scope : string;
  counters : (string * int) list;  (** sorted by name *)
  dists : (string * dist_snapshot) list;  (** sorted by name *)
  labels : (string * (string * int) list) list;
      (** category -> (key, count) list; both levels sorted *)
  events : (int * string * string) list;
      (** (seq, tag, detail), oldest retained first *)
}

let empty scope =
  { snap_scope = scope; counters = []; dists = []; labels = []; events = [] }

let snapshot (t : t) : snapshot =
  Mutex.protect t.mu (fun () ->
      let counters =
        List.map (fun c -> (c.cname, Atomic.get c.cell)) t.counters
        |> List.sort compare
      in
      let dists =
        List.map
          (fun d ->
            let nonzero_buckets =
              Array.to_list (Array.mapi (fun i b -> (i, Atomic.get b)) d.buckets)
              |> List.filter (fun (_, n) -> n > 0)
            in
            ( d.dname,
              {
                count = Atomic.get d.dn;
                sum = Atomic.get d.dsum;
                max = Atomic.get d.dmax;
                nonzero_buckets;
              } ))
          t.dists
        |> List.sort compare
      in
      let labels =
        Hashtbl.fold
          (fun cat tbl acc ->
            let entries =
              Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
              |> List.sort compare
            in
            (cat, entries) :: acc)
          t.labels []
        |> List.sort compare
      in
      let events =
        let total = t.trace_seq in
        let kept = min total t.trace_cap in
        List.init kept (fun i ->
            let seq = total - kept + i in
            let tag, detail = t.trace.(seq mod t.trace_cap) in
            (seq, tag, detail))
      in
      { snap_scope = t.scope; counters; dists; labels; events })

let counter_value (s : snapshot) name =
  Option.value ~default:0 (List.assoc_opt name s.counters)

let label_count (s : snapshot) ~cat key =
  match List.assoc_opt cat s.labels with
  | None -> 0
  | Some entries -> Option.value ~default:0 (List.assoc_opt key entries)

let total_labels (s : snapshot) ~cat =
  match List.assoc_opt cat s.labels with
  | None -> 0
  | Some entries -> List.fold_left (fun acc (_, n) -> acc + n) 0 entries

(** Merge snapshots of composed detectors: counters, distributions and
    labels are summed pointwise (dist [max] takes the max); events are
    dropped (per-member ring buffers do not interleave meaningfully). *)
let merge scope (snaps : snapshot list) : snapshot =
  let sum_assoc lists =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (List.iter (fun (k, v) ->
           match Hashtbl.find_opt tbl k with
           | Some r -> r := !r + v
           | None ->
               Hashtbl.add tbl k (ref v);
               order := k :: !order))
      lists;
    List.sort compare
      (List.map (fun k -> (k, !(Hashtbl.find tbl k))) !order)
  in
  let counters = sum_assoc (List.map (fun s -> s.counters) snaps) in
  let dists =
    let tbl : (string, dist_snapshot ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun s ->
        List.iter
          (fun (name, d) ->
            match Hashtbl.find_opt tbl name with
            | None -> Hashtbl.add tbl name (ref d)
            | Some r ->
                r :=
                  {
                    count = !r.count + d.count;
                    sum = !r.sum + d.sum;
                    max = Stdlib.max !r.max d.max;
                    nonzero_buckets =
                      sum_assoc [ !r.nonzero_buckets; d.nonzero_buckets ];
                  })
          s.dists)
      snaps;
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare
  in
  let labels =
    let cats =
      List.concat_map (fun s -> List.map fst s.labels) snaps
      |> List.sort_uniq compare
    in
    List.map
      (fun cat ->
        (cat, sum_assoc (List.filter_map (fun s -> List.assoc_opt cat s.labels) snaps)))
      cats
  in
  { snap_scope = scope; counters; dists; labels; events = [] }

(** [leq a b]: every counter / dist count / label count of [a] is <= its
    value in [b] — the monotonicity invariant snapshots of a live registry
    must satisfy over time. *)
let leq (a : snapshot) (b : snapshot) : bool =
  List.for_all (fun (name, v) -> v <= counter_value b name) a.counters
  && List.for_all
       (fun (name, d) ->
         match List.assoc_opt name b.dists with
         | None -> d.count = 0
         | Some d' -> d.count <= d'.count && d.sum <= d'.sum && d.max <= d'.max)
       a.dists
  && List.for_all
       (fun (cat, entries) ->
         List.for_all (fun (k, v) -> v <= label_count b ~cat k) entries)
       a.labels

let equal_snapshot (a : snapshot) (b : snapshot) = a = b

let pp_dist ppf (d : dist_snapshot) =
  let mean = if d.count = 0 then 0.0 else float_of_int d.sum /. float_of_int d.count in
  Fmt.pf ppf "n=%d sum=%d max=%d mean=%.2f" d.count d.sum d.max mean;
  if d.nonzero_buckets <> [] then begin
    Fmt.pf ppf " |";
    List.iter
      (fun (i, n) ->
        let lo = if i = 0 then 0 else 1 lsl (i - 1) in
        Fmt.pf ppf " [%d+]:%d" lo n)
      d.nonzero_buckets
  end

let pp_snapshot ppf (s : snapshot) =
  Fmt.pf ppf "@[<v>obs %s@," s.snap_scope;
  List.iter (fun (n, v) -> Fmt.pf ppf "  %-32s %d@," n v) s.counters;
  List.iter (fun (n, d) -> Fmt.pf ppf "  %-32s %a@," n pp_dist d) s.dists;
  List.iter
    (fun (cat, entries) ->
      Fmt.pf ppf "  %s:@," cat;
      List.iter (fun (k, v) -> Fmt.pf ppf "    %-40s %d@," k v) entries)
    s.labels;
  List.iter (fun (seq, tag, detail) -> Fmt.pf ppf "  #%d %s %s@," seq tag detail) s.events;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let snapshot_to_json (s : snapshot) : Jsonx.t =
  let open Jsonx in
  Obj
    [
      ("scope", Str s.snap_scope);
      ("counters", Obj (List.map (fun (n, v) -> (n, Int v)) s.counters));
      ( "dists",
        Obj
          (List.map
             (fun (n, d) ->
               ( n,
                 Obj
                   [
                     ("count", Int d.count);
                     ("sum", Int d.sum);
                     ("max", Int d.max);
                     ( "buckets",
                       List
                         (List.map
                            (fun (i, c) -> List [ Int i; Int c ])
                            d.nonzero_buckets) );
                   ] ))
             s.dists) );
      ( "labels",
        Obj
          (List.map
             (fun (cat, entries) ->
               (cat, Obj (List.map (fun (k, v) -> (k, Int v)) entries)))
             s.labels) );
      ( "events",
        List
          (List.map
             (fun (seq, tag, detail) ->
               List [ Int seq; Str tag; Str detail ])
             s.events) );
    ]

let snapshot_of_json (j : Jsonx.t) : (snapshot, string) result =
  let open Jsonx in
  let ( let* ) r f = Result.bind r f in
  let req name conv =
    match Option.bind (member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "snapshot: missing or bad %S" name)
  in
  let int_assoc what fields =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match to_int v with
        | Some i -> Ok ((k, i) :: acc)
        | None -> Error (Printf.sprintf "snapshot: non-integer in %s" what))
      (Ok []) fields
    |> Result.map List.rev
  in
  let* scope = req "scope" to_str in
  let* counter_fields = req "counters" to_obj in
  let* counters = int_assoc "counters" counter_fields in
  let* dist_fields = req "dists" to_obj in
  let* dists =
    List.fold_left
      (fun acc (name, dj) ->
        let* acc = acc in
        let get f = Option.bind (member f dj) to_int in
        match (get "count", get "sum", get "max", member "buckets" dj) with
        | Some count, Some sum, Some max, Some (List buckets) ->
            let* nonzero_buckets =
              List.fold_left
                (fun acc b ->
                  let* acc = acc in
                  match b with
                  | List [ Int i; Int c ] -> Ok ((i, c) :: acc)
                  | _ -> Error "snapshot: bad bucket")
                (Ok []) buckets
              |> Result.map List.rev
            in
            Ok ((name, { count; sum; max; nonzero_buckets }) :: acc)
        | _ -> Error (Printf.sprintf "snapshot: bad dist %S" name))
      (Ok []) dist_fields
    |> Result.map List.rev
  in
  let* label_fields = req "labels" to_obj in
  let* labels =
    List.fold_left
      (fun acc (cat, ej) ->
        let* acc = acc in
        match to_obj ej with
        | None -> Error (Printf.sprintf "snapshot: bad label category %S" cat)
        | Some entries ->
            let* entries = int_assoc cat entries in
            Ok ((cat, entries) :: acc))
      (Ok []) label_fields
    |> Result.map List.rev
  in
  let* event_items = req "events" to_list in
  let* events =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match e with
        | List [ Int seq; Str tag; Str detail ] -> Ok ((seq, tag, detail) :: acc)
        | _ -> Error "snapshot: bad event")
      (Ok []) event_items
    |> Result.map List.rev
  in
  Ok { snap_scope = scope; counters; dists; labels; events }

(** Does this JSON value look like a serialized snapshot?  (Used by the
    [commlat stats] reader to find snapshots nested inside bench files.) *)
let is_snapshot_json (j : Jsonx.t) =
  Option.is_some (Jsonx.member "scope" j)
  && Option.is_some (Jsonx.member "counters" j)
