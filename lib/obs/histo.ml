(** Log-linear latency histogram: fixed-size, lock-free, mergeable.

    The {!Obs} distributions use power-of-two buckets — fine for counting
    sweep depths, far too coarse for tail latency (p999 inside a 2x-wide
    bucket is a 100% error bar).  This recorder is the HdrHistogram idea
    shrunk to what `commlat load` needs: each power-of-two major bucket is
    split into [sub] linear sub-buckets, so relative error is bounded by
    [1/sub] (~1.6% at the default 64) at every magnitude from 1 unit to
    [2^majors] units.  Units are whatever the caller records —
    [commlat load] records nanoseconds.

    Writers only [Atomic.fetch_and_add] a preallocated slot: recording is
    wait-free, multi-domain safe, and allocation-free, so load-generator
    sender/receiver threads can record from the latency path itself.
    Quantile extraction walks the (bounded, [majors * sub]) bucket array;
    it is approximate in the usual histogram sense — a quantile is
    reported as the upper edge of the bucket containing it. *)

type t = {
  sub : int;  (** linear sub-buckets per power-of-two major *)
  sub_bits : int;
  counts : int Atomic.t array;  (** [majors * sub] slots *)
  total : int Atomic.t;
  sum : int Atomic.t;  (** sum of recorded values (for mean) *)
  max_seen : int Atomic.t;
  overflow : int Atomic.t;  (** values beyond the last major *)
}

let default_majors = 48
let default_sub_bits = 6

let create ?(majors = default_majors) ?(sub_bits = default_sub_bits) () =
  if majors < 1 || majors > 62 then invalid_arg "Histo.create: majors";
  if sub_bits < 0 || sub_bits > 16 then invalid_arg "Histo.create: sub_bits";
  let sub = 1 lsl sub_bits in
  {
    sub;
    sub_bits;
    counts = Array.init (majors * sub) (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
    max_seen = Atomic.make 0;
    overflow = Atomic.make 0;
  }

let majors t = Array.length t.counts / t.sub

(* Slot layout: values below [sub] land in major 0 with linear (exact)
   sub-buckets; a value with top bit k >= sub_bits lands in major
   [k - sub_bits + 1], sub-bucket = next [sub_bits] bits below the top
   bit.  Monotone in the value, and every bucket spans at most
   [bucket_low / sub] units. *)
let slot_of_value t v =
  if v < t.sub then v
  else
    let k = (* position of the highest set bit *)
      let rec top i = if v lsr i = 1 then i else top (i + 1) in
      top t.sub_bits
    in
    let major = k - t.sub_bits + 1 in
    let sub_idx = (v lsr (k - t.sub_bits)) land (t.sub - 1) in
    (major * t.sub) + sub_idx

(* Upper edge of a slot's value range (inclusive): quantiles report this,
   so they never under-estimate. *)
let slot_upper t slot =
  let major = slot / t.sub and sub_idx = slot mod t.sub in
  if major = 0 then sub_idx
  else
    let k = major + t.sub_bits - 1 in
    let width = 1 lsl (k - t.sub_bits) in
    (1 lsl k) + ((sub_idx + 1) * width) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  let slot = slot_of_value t v in
  if slot < Array.length t.counts then
    ignore (Atomic.fetch_and_add t.counts.(slot) 1)
  else ignore (Atomic.fetch_and_add t.overflow 1);
  ignore (Atomic.fetch_and_add t.total 1);
  ignore (Atomic.fetch_and_add t.sum v);
  let rec bump () =
    let cur = Atomic.get t.max_seen in
    if v > cur && not (Atomic.compare_and_set t.max_seen cur v) then bump ()
  in
  bump ()

let total t = Atomic.get t.total
let max_recorded t = Atomic.get t.max_seen

let mean t =
  let n = Atomic.get t.total in
  if n = 0 then 0.0 else float_of_int (Atomic.get t.sum) /. float_of_int n

(** [quantile t q] for [q] in [0, 1]: upper edge of the bucket holding the
    [ceil (q * total)]-th smallest recorded value; [max_recorded] when the
    rank falls among overflowed values; 0 on an empty histogram. *)
let quantile t q =
  let n = Atomic.get t.total in
  if n = 0 then 0
  else
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let len = Array.length t.counts in
    let rec walk slot seen =
      if slot >= len then max_recorded t
      else
        let seen = seen + Atomic.get t.counts.(slot) in
        if seen >= rank then
          (* never report past the true maximum (the last bucket's upper
             edge can overshoot it by the bucket width) *)
          min (slot_upper t slot) (max_recorded t)
        else walk (slot + 1) seen
    in
    walk 0 0

(** Merge [src] into [dst] (same geometry required): per-worker histograms
    fold into one before reporting. *)
let merge_into ~dst src =
  if dst.sub <> src.sub || Array.length dst.counts <> Array.length src.counts
  then invalid_arg "Histo.merge_into: geometry mismatch";
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n > 0 then ignore (Atomic.fetch_and_add dst.counts.(i) n))
    src.counts;
  ignore (Atomic.fetch_and_add dst.total (Atomic.get src.total));
  ignore (Atomic.fetch_and_add dst.sum (Atomic.get src.sum));
  ignore (Atomic.fetch_and_add dst.overflow (Atomic.get src.overflow));
  let m = Atomic.get src.max_seen in
  let rec bump () =
    let cur = Atomic.get dst.max_seen in
    if m > cur && not (Atomic.compare_and_set dst.max_seen cur m) then bump ()
  in
  bump ()

(** Standard latency summary, values scaled by [scale] (e.g. [1e-6] turns
    recorded nanoseconds into milliseconds). *)
let summary_json ?(scale = 1.0) t : Jsonx.t =
  let s q = Jsonx.Float (float_of_int (quantile t q) *. scale) in
  Jsonx.Obj
    [
      ("count", Jsonx.Int (total t));
      ("mean", Jsonx.Float (mean t *. scale));
      ("p50", s 0.50);
      ("p90", s 0.90);
      ("p99", s 0.99);
      ("p999", s 0.999);
      ("max", Jsonx.Float (float_of_int (max_recorded t) *. scale));
    ]
