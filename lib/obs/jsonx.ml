(** A minimal JSON tree, emitter and parser.

    The observability layer and the benchmark harness exchange snapshots as
    JSON files ([BENCH_*.json], `commlat stats`); the container has no JSON
    library baked in, so this module provides the small subset we need:
    integers are kept distinct from floats so counter snapshots round-trip
    exactly, the emitter is deterministic (object field order is preserved),
    and the parser reports byte positions on error. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no inf/nan literals; a non-finite measurement (e.g. an overhead
   ratio against a zero-length baseline) degrades to null. *)
let add_float b f =
  if Float.is_finite f then (
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string b s;
    (* ensure it re-parses as a float, not an int *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string b ".0")
  else Buffer.add_string b "null"

let to_string ?(indent = 2) (j : t) : string =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> add_float b f
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad ((depth + 1) * indent);
            go (depth + 1) item)
          items;
        Buffer.add_char b '\n';
        pad (depth * indent);
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad ((depth + 1) * indent);
            escape_string b k;
            Buffer.add_string b ": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char b '\n';
        pad (depth * indent);
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let parse (src : string) : (t, string) result =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    (* BMP only; surrogate pairs outside \uXXXX escapes are not combined *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then (
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
    else (
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub src !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code ->
                  pos := !pos + 4;
                  utf8_of_code b code
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let s = String.sub src start (!pos - start) in
    let integral =
      String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s
    in
    if integral then
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail "bad number")
    else
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (p, msg) -> Error (Printf.sprintf "at byte %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some nan (* non-finite measurements are emitted as null *)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
