(** Domain-parallel DPOR exploration by work-stealing schedule prefixes.

    The sequential explorer ({!Explore}) walks a {e fixed} tree: each node
    is a schedule prefix plus a sleep set, and the children of a node are
    a deterministic function of the node alone (replay the prefix through
    the deterministic {!Scheduler}, expand backtrack points under
    commutativity pruning — {!Explore.expand}).  That makes the search
    embarrassingly parallel in the work-stealing sense: any domain can
    process any frontier node.  Each worker owns a {!Wsdeque} of nodes; it
    pops from the front (depth-first, like the sequential stack), pushes
    freshly generated children to the front, and when empty steals the
    {e oldest} node from another deque — stolen prefixes are short, so a
    thief receives a large subtree and steal traffic stays low.

    Workers run one virtual scheduler each; {!Schedpoint} hooks are
    domain-local, so replays on different domains do not interact.  All
    cross-domain state is explicit: an atomic run-ticket counter enforces
    the schedule budget exactly, an atomic pending-node count gives exact
    termination (a node is "pending" from push until its children have
    been pushed), a mutex-claimed first-failure slot makes counterexample
    handling deterministic-per-winner (the winner stops the fleet, then
    shrinks alone on its own domain, preserving {!Explore.shrink}
    semantics), and a sharded seen-trace table dedups Mazurkiewicz-
    equivalent traces discovered by different domains.

    Dedup keys are {e canonical}: the happens-before relation of a run
    (program order plus {!Explore.dependent} pairs) is linearized greedily
    by smallest thread id — within one thread the earliest unscheduled
    event is the only ready one, so the choice is total — and the result
    is rendered with {!Trace.render}'s first-appearance normalization.
    Two equivalent traces (same partial order; commuting reorderings
    cannot change responses) therefore produce byte-identical keys on any
    domain.  The table is always maintained (it is how "explored states"
    are counted); the [dedup] flag additionally skips child expansion on a
    hit.

    With [domains = 1] the worker loop degenerates to exactly the
    sequential DFS: same pop order, same run order, same first failure,
    same shrink — the equivalence the test suite pins. *)

module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx
module Wsdeque = Commlat_wsdeque.Wsdeque

type config = {
  base : Explore.config;
  domains : int;  (** worker domains (1 = sequential-equivalent) *)
  dedup : bool;
      (** skip expanding a node whose canonical trace was already
          expanded; the seen table is maintained (and hits counted)
          either way *)
}

let default_config =
  { base = Explore.default_config; domains = 2; dedup = true }

type domain_counters = {
  mutable d_runs : int;  (** schedules this domain executed *)
  mutable d_steps : int;
  mutable d_truncated : int;
  mutable d_pruned : int;
  mutable d_sleep_hits : int;
  mutable d_expanded : int;  (** nodes whose children were generated *)
  mutable d_pushed : int;  (** children pushed to the local deque *)
  mutable d_steals : int;  (** successful steals from other deques *)
  mutable d_steal_misses : int;  (** full sweeps that found nothing *)
  mutable d_dedup_hits : int;
  mutable d_shrink_runs : int;
}

type report = {
  verdict : Explore.failure option;
  c : Explore.counters;  (** aggregated across domains *)
  per_domain : domain_counters array;
  states : int;  (** distinct canonical traces across all domains *)
  dedup_hits : int;
  exhausted : bool;  (** false: the run budget cut the search short *)
  domains : int;
}

(* ------------------------------------------------------------------ *)
(* Canonical trace keys                                                *)
(* ------------------------------------------------------------------ *)

(** The canonical linearization of a run's happens-before partial order:
    greedy smallest-tid topological sort over program order +
    {!Explore.dependent} edges, rendered with first-appearance
    normalization.  Invariant under commuting reorderings. *)
let canonical_key spec (r : Scheduler.result) : string =
  let arr = Array.of_list r.Scheduler.steps in
  let n = Array.length arr in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if
        arr.(i).Trace.s_tid = arr.(j).Trace.s_tid
        || Explore.dependent spec r.Scheduler.executed arr.(i).Trace.s_info
             arr.(j).Trace.s_info
      then begin
        succs.(i) <- j :: succs.(i);
        indeg.(j) <- indeg.(j) + 1
      end
    done
  done;
  let module Ready = Set.Make (struct
    type t = int * int (* (tid, step index) *)

    let compare = compare
  end) in
  let ready = ref Ready.empty in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then ready := Ready.add (arr.(i).Trace.s_tid, i) !ready
  done;
  let order = ref [] in
  while not (Ready.is_empty !ready) do
    let ((_, i) as e) = Ready.min_elt !ready in
    ready := Ready.remove e !ready;
    order := i :: !order;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Ready.add (arr.(j).Trace.s_tid, j) !ready)
      succs.(i)
  done;
  Trace.render (List.rev_map (fun i -> arr.(i)) !order)

(* ------------------------------------------------------------------ *)
(* The sharded seen-trace table                                        *)
(* ------------------------------------------------------------------ *)

module Seen = struct
  type t = {
    tables : (string, unit) Hashtbl.t array;
    locks : Mutex.t array;
  }

  let shards = 64 (* power of two *)

  let create () =
    {
      tables = Array.init shards (fun _ -> Hashtbl.create 64);
      locks = Array.init shards (fun _ -> Mutex.create ());
    }

  (** [add t key] is [true] iff [key] was not present (first sighting). *)
  let add t key =
    let i = Hashtbl.hash key land (shards - 1) in
    Mutex.protect t.locks.(i) (fun () ->
        if Hashtbl.mem t.tables.(i) key then false
        else begin
          Hashtbl.replace t.tables.(i) key ();
          true
        end)

  let cardinal t =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.tables
end

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let fresh_domain_counters () =
  {
    d_runs = 0;
    d_steps = 0;
    d_truncated = 0;
    d_pruned = 0;
    d_sleep_hits = 0;
    d_expanded = 0;
    d_pushed = 0;
    d_steals = 0;
    d_steal_misses = 0;
    d_dedup_hits = 0;
    d_shrink_runs = 0;
  }

let explore ?(config = default_config) ?obs (mk : unit -> Scheduler.instance) :
    report =
  let ndom = max 1 config.domains in
  let max_steps = config.base.Explore.max_steps in
  let max_schedules = config.base.Explore.max_schedules in
  let o_runs, o_pruned, o_sleep =
    match obs with
    | Some o ->
        ( Some (Obs.counter o "schedules_run"),
          Some (Obs.counter o "schedules_pruned"),
          Some (Obs.counter o "sleep_set_hits") )
    | None -> (None, None, None)
  in
  let bump ?(n = 1) cnt =
    match cnt with
    | Some x ->
        for _ = 1 to n do
          Obs.incr x
        done
    | None -> ()
  in
  let spec = (mk ()).Scheduler.spec in
  let deques = Array.init ndom (fun _ -> Wsdeque.create ()) in
  let per_domain = Array.init ndom (fun _ -> fresh_domain_counters ()) in
  let seen = Seen.create () in
  (* nodes pushed but whose processing has not finished; exact because a
     worker increments for every child BEFORE decrementing for the parent *)
  let pending = Atomic.make 1 in
  Wsdeque.push_front deques.(0) { Explore.prefix = []; sleep = [] };
  let tickets = Atomic.make 0 in
  let budget_hit = Atomic.make false in
  let stop = Atomic.make false in
  let found_mu = Mutex.create () in
  let claimed = ref false (* protected by found_mu *) in
  let failure : Explore.failure option ref =
    ref None (* written by the claim winner only; read after joins *)
  in
  let process me node =
    let d = per_domain.(me) in
    if Atomic.get stop then ()
    else if Atomic.fetch_and_add tickets 1 >= max_schedules then begin
      (* budget honesty: this node was frontier work we did NOT run *)
      Atomic.set budget_hit true;
      Atomic.set stop true
    end
    else begin
      let r = Scheduler.run ~max_steps ~schedule:node.Explore.prefix mk in
      d.d_runs <- d.d_runs + 1;
      bump o_runs;
      d.d_steps <- d.d_steps + List.length r.Scheduler.steps;
      if r.Scheduler.status = Scheduler.Truncated then
        d.d_truncated <- d.d_truncated + 1;
      match Explore.failure_of_run r with
      | Some (kind, _) ->
          let win =
            Mutex.protect found_mu (fun () ->
                if !claimed then false
                else begin
                  claimed := true;
                  true
                end)
          in
          if win then begin
            Atomic.set stop true;
            let scratch =
              {
                Explore.runs = 0;
                pruned = 0;
                sleep_hits = 0;
                steps = 0;
                truncated = 0;
                shrink_runs = 0;
              }
            in
            let sched, rr =
              Explore.shrink ~max_steps ~c:scratch mk kind r.Scheduler.choices
            in
            d.d_shrink_runs <- d.d_shrink_runs + scratch.Explore.shrink_runs;
            d.d_steps <- d.d_steps + scratch.Explore.steps;
            let detail =
              match Explore.failure_of_run rr with
              | Some (_, dd) -> dd
              | None -> "failure did not reproduce on shrunk schedule"
            in
            failure :=
              Some
                {
                  Explore.f_kind = kind;
                  f_detail = detail;
                  f_schedule = sched;
                  f_trace = Trace.render rr.Scheduler.steps;
                  f_shrunk_from = List.length r.Scheduler.choices;
                }
          end
      | None ->
          let first_sighting = Seen.add seen (canonical_key spec r) in
          if first_sighting || not config.dedup then begin
            if not first_sighting then d.d_dedup_hits <- d.d_dedup_hits + 1;
            let x = Explore.expand ~por:config.base.Explore.por ~spec r node in
            d.d_pruned <- d.d_pruned + x.Explore.x_pruned;
            bump ~n:x.Explore.x_pruned o_pruned;
            d.d_sleep_hits <- d.d_sleep_hits + x.Explore.x_sleep_hits;
            bump ~n:x.Explore.x_sleep_hits o_sleep;
            d.d_expanded <- d.d_expanded + 1;
            let k = List.length x.Explore.children in
            if k > 0 then begin
              ignore (Atomic.fetch_and_add pending k);
              (* push in generation order: the LAST decision's branch ends
                 up at the front, matching the sequential DFS order *)
              List.iter (Wsdeque.push_front deques.(me)) x.Explore.children
            end;
            d.d_pushed <- d.d_pushed + k
          end
          else d.d_dedup_hits <- d.d_dedup_hits + 1
    end
  in
  let worker me =
    let d = per_domain.(me) in
    let mine = deques.(me) in
    let rec obtain () =
      if Atomic.get stop then None
      else
        match Wsdeque.pop mine with
        | Some n -> Some n
        | None ->
            if Atomic.get pending = 0 then None
            else begin
              let stolen = ref None in
              let k = ref 1 in
              while !stolen = None && !k < ndom do
                (match Wsdeque.steal deques.((me + !k) mod ndom) with
                | Some n ->
                    stolen := Some n;
                    d.d_steals <- d.d_steals + 1
                | None -> ());
                incr k
              done;
              match !stolen with
              | Some n -> Some n
              | None ->
                  d.d_steal_misses <- d.d_steal_misses + 1;
                  Domain.cpu_relax ();
                  obtain ()
            end
    in
    let rec loop () =
      match obtain () with
      | None -> ()
      | Some node ->
          process me node;
          Atomic.decr pending;
          loop ()
    in
    loop ()
  in
  let safe_worker me () =
    try worker me
    with e ->
      (* unblock the other workers before propagating *)
      Atomic.set stop true;
      raise e
  in
  let spawned =
    Array.init (ndom - 1) (fun i -> Domain.spawn (safe_worker (i + 1)))
  in
  let errs = ref [] in
  (try safe_worker 0 () with e -> errs := [ e ]);
  Array.iter
    (fun dmn -> try Domain.join dmn with e -> errs := !errs @ [ e ])
    spawned;
  (match !errs with e :: _ -> raise e | [] -> ());
  let c =
    {
      Explore.runs = 0;
      pruned = 0;
      sleep_hits = 0;
      steps = 0;
      truncated = 0;
      shrink_runs = 0;
    }
  in
  Array.iter
    (fun d ->
      c.Explore.runs <- c.Explore.runs + d.d_runs;
      c.Explore.pruned <- c.Explore.pruned + d.d_pruned;
      c.Explore.sleep_hits <- c.Explore.sleep_hits + d.d_sleep_hits;
      c.Explore.steps <- c.Explore.steps + d.d_steps;
      c.Explore.truncated <- c.Explore.truncated + d.d_truncated;
      c.Explore.shrink_runs <- c.Explore.shrink_runs + d.d_shrink_runs)
    per_domain;
  {
    verdict = !failure;
    c;
    per_domain;
    states = Seen.cardinal seen;
    dedup_hits =
      Array.fold_left (fun acc d -> acc + d.d_dedup_hits) 0 per_domain;
    exhausted = !failure <> None || not (Atomic.get budget_hit);
    domains = ndom;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let json_of_domain i (d : domain_counters) : Jsonx.t =
  Jsonx.Obj
    [
      ("domain", Jsonx.Int i);
      ("runs", Jsonx.Int d.d_runs);
      ("steps", Jsonx.Int d.d_steps);
      ("truncated", Jsonx.Int d.d_truncated);
      ("pruned", Jsonx.Int d.d_pruned);
      ("sleep_hits", Jsonx.Int d.d_sleep_hits);
      ("expanded", Jsonx.Int d.d_expanded);
      ("pushed", Jsonx.Int d.d_pushed);
      ("steals", Jsonx.Int d.d_steals);
      ("steal_misses", Jsonx.Int d.d_steal_misses);
      ("dedup_hits", Jsonx.Int d.d_dedup_hits);
      ("shrink_runs", Jsonx.Int d.d_shrink_runs);
    ]

let json_of_report ~workload ~detector ~txns ~(config : config) ?obs_snapshot
    (r : report) : Jsonx.t =
  let fail_json =
    match r.verdict with
    | None -> Jsonx.Null
    | Some f ->
        Jsonx.Obj
          [
            ("kind", Jsonx.Str f.Explore.f_kind);
            ("detail", Jsonx.Str f.Explore.f_detail);
            ( "schedule",
              Jsonx.List
                (List.map (fun t -> Jsonx.Int t) f.Explore.f_schedule) );
            ("shrunk_from_length", Jsonx.Int f.Explore.f_shrunk_from);
            ("trace", Jsonx.Str f.Explore.f_trace);
          ]
  in
  let dedup_rate =
    if r.c.Explore.runs = 0 then 0.0
    else float_of_int r.dedup_hits /. float_of_int r.c.Explore.runs
  in
  Jsonx.Obj
    ([
       ("schema", Jsonx.Str "commlat-explore-par/1");
       ("workload", Jsonx.Str workload);
       ("detector", Jsonx.Str detector);
       ("txns", Jsonx.Int txns);
       ("domains", Jsonx.Int r.domains);
       ("por", Jsonx.Bool config.base.Explore.por);
       ("dedup", Jsonx.Bool config.dedup);
       ("max_schedules", Jsonx.Int config.base.Explore.max_schedules);
       ("max_steps", Jsonx.Int config.base.Explore.max_steps);
       ("schedules_run", Jsonx.Int r.c.Explore.runs);
       ("schedules_pruned", Jsonx.Int r.c.Explore.pruned);
       ("sleep_set_hits", Jsonx.Int r.c.Explore.sleep_hits);
       ("steps_total", Jsonx.Int r.c.Explore.steps);
       ("truncated_runs", Jsonx.Int r.c.Explore.truncated);
       ("shrink_runs", Jsonx.Int r.c.Explore.shrink_runs);
       ("states", Jsonx.Int r.states);
       ("dedup_hits", Jsonx.Int r.dedup_hits);
       ("dedup_rate", Jsonx.Float dedup_rate);
       ("exhausted", Jsonx.Bool r.exhausted);
       ( "verdict",
         Jsonx.Str
           (match r.verdict with None -> "ok" | Some _ -> "counterexample") );
       ("counterexample", fail_json);
       ("per_domain", Jsonx.List (Array.to_list (Array.mapi json_of_domain r.per_domain)));
     ]
    @
    match obs_snapshot with
    | Some s -> [ ("obs", Obs.snapshot_to_json s) ]
    | None -> [])
