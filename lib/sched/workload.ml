(** Ready-made exploration workloads over the shipped ADTs.

    Each workload is a deterministic plan — [txns] transactions of a few
    method calls each, generated from a seed — plus a factory building a
    fresh instance (ADT, detector via {!Protect.protect}, serializability
    oracle against the ADT's reference {!History.model}) for every run.

    Scheme support follows the lattice: the set and kvmap specs are
    SIMPLE/ONLINE-CHECKABLE, so they explore under the global lock,
    abstract locking and the forward gatekeeper (sharded variants
    included); union-find's spec is GENERAL (state-dependent), so it needs
    the general gatekeeper — or the STM baseline, which traces its
    concrete cells.  Unsupported combinations return [Error] with the
    reason. *)

open Commlat_core
open Commlat_adts
open Commlat_apps
open Commlat_runtime

type t = {
  w_name : string;
  w_detector : string;  (** scheme spelling, for reports *)
  w_txns : int;
  make : unit -> Scheduler.instance;
}

let names = [ "set"; "kvmap"; "union-find"; "swap-set"; "delaunay"; "mixed" ]

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let serializability_oracle (model : History.model) final history =
  if History.serializable model ~final:(final ()) history then None
  else Some "committed history is not serializable against the reference model"

(** One [Boost.invoke] call: the invocation travels through the conflict
    detector with the ADT's undo action registered for rollback. *)
let call ~det ~txn ~undo meth args exec =
  ignore (Boost.invoke det txn ~undo meth args exec)

let check_scheme ~what mk =
  match mk () with
  | (_ : Scheduler.instance) -> Ok ()
  | exception Invalid_argument msg -> Error (Fmt.str "%s: %s" what msg)

(* ------------------------------------------------------------------ *)
(* Set                                                                 *)
(* ------------------------------------------------------------------ *)

let set ?(txns = 3) ?(ops_per_txn = 2) ?(keys = 12) ?(seed = 42)
    (scheme : Protect.scheme) : (t, string) result =
  let rng = Random.State.make [| 0x5e7; seed |] in
  let plan =
    Array.init txns (fun _ ->
        List.init ops_per_txn (fun _ ->
            let k = Random.State.int rng keys in
            let m =
              match Random.State.int rng 3 with
              | 0 -> Iset.m_add
              | 1 -> Iset.m_remove
              | _ -> Iset.m_contains
            in
            (m, k)))
  in
  let spec =
    (* abstract locking needs the SIMPLE strengthening; everything else
       gets the precise Fig. 2 spec *)
    match scheme with
    | Protect.Abstract_lock | Protect.Sharded (Protect.Abstract_lock, _)
    | Protect.Global_lock ->
        Iset.simple_spec ()
    | _ -> Iset.precise_spec ()
  in
  let make () =
    let s = Iset.create () in
    let det =
      Protect.protect ~obs:true ~spec
        ~adt:(Protect.adt ~hooks:(Iset.hooks s) ())
        scheme
    in
    let body ops ~det ~txn =
      List.iter
        (fun ((m : Invocation.meth), k) ->
          call ~det ~txn ~undo:(Iset.undo s) m
            [| Value.Int k |]
            (fun inv -> Iset.exec s m.Invocation.name inv.Invocation.args))
        ops
    in
    let model = Iset.model () in
    let final () = Value.List (Iset.elements s) in
    {
      Scheduler.det;
      spec = Some spec;
      tasks = Array.map (fun ops -> { Scheduler.body = body ops }) plan;
      final;
      oracle = serializability_oracle model final;
    }
  in
  Result.map
    (fun () ->
      { w_name = "set"; w_detector = Protect.scheme_name scheme; w_txns = txns; make })
    (check_scheme ~what:"set" make)

(* ------------------------------------------------------------------ *)
(* Kvmap                                                               *)
(* ------------------------------------------------------------------ *)

let kvmap ?(txns = 3) ?(ops_per_txn = 2) ?(keys = 12) ?(seed = 42)
    (scheme : Protect.scheme) : (t, string) result =
  let rng = Random.State.make [| 0x4b7; seed |] in
  let plan =
    Array.init txns (fun _ ->
        List.init ops_per_txn (fun _ ->
            let k = Value.Int (Random.State.int rng keys) in
            match Random.State.int rng 3 with
            | 0 -> (Kvmap.m_put, [| k; Value.Int (Random.State.int rng 100) |])
            | 1 -> (Kvmap.m_get, [| k |])
            | _ -> (Kvmap.m_remove, [| k |])))
  in
  let spec =
    match scheme with
    | Protect.Abstract_lock | Protect.Sharded (Protect.Abstract_lock, _)
    | Protect.Global_lock ->
        Kvmap.simple_spec ()
    | _ -> Kvmap.precise_spec ()
  in
  let make () =
    let m = Kvmap.create () in
    let det =
      Protect.protect ~obs:true ~spec
        ~adt:(Protect.adt ~hooks:(Kvmap.hooks m) ())
        scheme
    in
    let body ops ~det ~txn =
      List.iter
        (fun ((meth : Invocation.meth), args) ->
          call ~det ~txn ~undo:(Kvmap.undo m) meth args (fun inv ->
              Kvmap.exec m meth.Invocation.name inv.Invocation.args))
        ops
    in
    let model = Kvmap.model () in
    let final () =
      Value.List
        (List.map (fun (k, v) -> Value.Pair (k, v)) (Kvmap.bindings m))
    in
    {
      Scheduler.det;
      spec = Some spec;
      tasks = Array.map (fun ops -> { Scheduler.body = body ops }) plan;
      final;
      oracle = serializability_oracle model final;
    }
  in
  Result.map
    (fun () ->
      { w_name = "kvmap"; w_detector = Protect.scheme_name scheme; w_txns = txns; make })
    (check_scheme ~what:"kvmap" make)

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let union_find ?(txns = 3) ?(ops_per_txn = 2) ?(elements = 8) ?(seed = 42)
    (scheme : Protect.scheme) : (t, string) result =
  let rng = Random.State.make [| 0x0f; seed |] in
  let plan =
    Array.init txns (fun _ ->
        List.init ops_per_txn (fun _ ->
            let a = Random.State.int rng elements in
            if Random.State.int rng 2 = 0 then
              let b = Random.State.int rng elements in
              (Union_find.m_union, [| Value.Int a; Value.Int b |])
            else (Union_find.m_find, [| Value.Int a |])))
  in
  let make () =
    let uf = Union_find.create () in
    ignore (Union_find.create_elements uf elements);
    let spec = Union_find.spec () in
    let det =
      Protect.protect ~obs:true ~spec
        ~adt:
          (Protect.adt ~hooks:(Union_find.hooks uf)
             ~connect_tracer:(Union_find.set_tracer uf) ())
        scheme
    in
    let body ops ~det ~txn =
      List.iter
        (fun ((meth : Invocation.meth), args) ->
          call ~det ~txn ~undo:(Union_find.undo uf) meth args (fun inv ->
              Union_find.exec_logged uf inv))
        ops
    in
    let model = Union_find.model ~elements () in
    let final () = Union_find.partition_snapshot uf in
    {
      Scheduler.det;
      spec = Some spec;
      tasks = Array.map (fun ops -> { Scheduler.body = body ops }) plan;
      final;
      oracle = serializability_oracle model final;
    }
  in
  Result.map
    (fun () ->
      {
        w_name = "union-find";
        w_detector = Protect.scheme_name scheme;
        w_txns = txns;
        make;
      })
    (check_scheme ~what:"union-find" make)

(* ------------------------------------------------------------------ *)
(* Detector hot-swap protocol                                          *)
(* ------------------------------------------------------------------ *)

(** The server's adaptive mode swaps an ADT's detector at an epoch
    boundary — a point with zero open transactions, reached with every
    detector guard held.  This workload puts that protocol itself under
    the explorer: [txns] transactions run over ONE shared set while an
    extra "swapper" fiber repeatedly tries to flip a dispatcher between
    two detectors at different lattice points (a precise forward
    gatekeeper and the global lock).  The flip takes every guard of both
    detectors and only proceeds when no transaction is open — exactly the
    server's barrier condition.  The oracle then demands the {e merged}
    committed history (part admitted by one detector, part by the other)
    be serializable against the reference model.

    [spec = None]: commutativity-based schedule pruning assumes one fixed
    independence relation, which a mid-run detector change invalidates, so
    the sweep explores unpruned.

    [on_swap] is called at every successful flip (across all schedules of
    a sweep), so a test can assert the explorer actually exercised the
    swap and not just its failed attempts. *)
let swap_set ?(txns = 2) ?(ops_per_txn = 2) ?(keys = 2) ?(seed = 42)
    ?(on_swap = fun () -> ()) () : (t, string) result =
  let rng = Random.State.make [| 0x5a4; seed |] in
  let plan =
    Array.init txns (fun _ ->
        List.init ops_per_txn (fun _ ->
            let k = Random.State.int rng keys in
            let m =
              match Random.State.int rng 3 with
              | 0 -> Iset.m_add
              | 1 -> Iset.m_remove
              | _ -> Iset.m_contains
            in
            (m, k)))
  in
  let make () =
    let s = Iset.create () in
    let adt () = Protect.adt ~hooks:(Iset.hooks s) () in
    let det_a =
      Protect.protect ~obs:true ~spec:(Iset.precise_spec ()) ~adt:(adt ())
        Protect.Forward_gk
    in
    let det_b =
      Protect.protect ~obs:true ~spec:(Iset.simple_spec ()) ~adt:(adt ())
        Protect.Global_lock
    in
    let current = ref det_a in
    let open_txns : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let guards = det_a.Detector.guards @ det_b.Detector.guards in
    let dispatcher =
      {
        Detector.name = "swap(fwd-gk|global-lock)";
        on_invoke =
          (fun inv exec ->
            Hashtbl.replace open_txns inv.Invocation.txn ();
            !current.Detector.on_invoke inv exec);
        on_commit =
          (fun txn ->
            Hashtbl.remove open_txns txn;
            (* both: the guard-release/table-drop of whichever detector
               admitted this transaction's invocations must run; the other
               side's is a no-op *)
            det_a.Detector.on_commit txn;
            det_b.Detector.on_commit txn);
        on_abort =
          (fun txn ->
            Hashtbl.remove open_txns txn;
            det_a.Detector.on_abort txn;
            det_b.Detector.on_abort txn);
        reset =
          (fun () ->
            det_a.Detector.reset ();
            det_b.Detector.reset ());
        snapshot = det_a.Detector.snapshot;
        guards;
      }
    in
    let body ops ~det ~txn =
      List.iter
        (fun ((m : Invocation.meth), k) ->
          call ~det ~txn ~undo:(Iset.undo s) m
            [| Value.Int k |]
            (fun inv -> Iset.exec s m.Invocation.name inv.Invocation.args))
        ops
    in
    (* The swapper: the server's barrier in miniature.  Each attempt takes
       every guard of both detectors (Guard.protect_all — acquisition
       order is globally consistent, and each acquire is a yield point the
       explorer can interleave against) and flips only at zero open
       transactions.  Bounded attempts keep the schedule space finite. *)
    let swapper ~det:_ ~txn:_ =
      let rec go attempt =
        let swapped =
          Guard.protect_all guards (fun () ->
              if Hashtbl.length open_txns = 0 then begin
                current := (if !current == det_a then det_b else det_a);
                on_swap ();
                true
              end
              else false)
        in
        if (not swapped) && attempt < 4 then go (attempt + 1)
      in
      go 1
    in
    let model = Iset.model () in
    let final () = Value.List (Iset.elements s) in
    let txn_tasks = Array.map (fun ops -> { Scheduler.body = body ops }) plan in
    {
      Scheduler.det = dispatcher;
      spec = None;
      tasks = Array.append txn_tasks [| { Scheduler.body = swapper } |];
      final;
      oracle = serializability_oracle model final;
    }
  in
  Result.map
    (fun () ->
      {
        w_name = "swap-set";
        w_detector = "fwd-gk|global-lock";
        w_txns = txns + 1;
        make;
      })
    (check_scheme ~what:"swap-set" make)

(* ------------------------------------------------------------------ *)
(* Delaunay mesh refinement                                            *)
(* ------------------------------------------------------------------ *)

(** Real irregular work under the explorer: a small point cloud is
    triangulated, and [txns] transactions each refine a share of the bad
    triangles through {!Commlat_apps.Delaunay.operator} — cavity claims go
    through the protected {!Commlat_adts.Triset}, structural state is read
    dirty and repaired on abort.  On top of the serializability oracle,
    every explored schedule must leave a mesh satisfying the Delaunay
    property (no vertex strictly inside any live triangle's
    circumcircle) — the application-level proof that cavity claiming plus
    rollback really serializes the refinements. *)
let delaunay ?(txns = 2) ?(points = 6) ?(seed = 42) ?(max_pts = 24)
    (scheme : Protect.scheme) : (t, string) result =
  let make () =
    let input = Mesh.points ~seed ~n:points ~size:100.0 () in
    let m = Delaunay.create ~max_pts ~size:100.0 input in
    let det = Delaunay.detector ~obs:true m scheme in
    let seeds = Delaunay.bad_ids m in
    let buckets = Array.make txns [] in
    List.iteri
      (fun i id -> buckets.(i mod txns) <- id :: buckets.(i mod txns))
      seeds;
    let body ids ~det ~txn =
      let q = Queue.create () in
      List.iter (fun id -> Queue.add id q) ids;
      while not (Queue.is_empty q) do
        List.iter
          (fun nid -> Queue.add nid q)
          (Delaunay.operator m det txn (Queue.pop q))
      done
    in
    (* the replay model must start from the post-construction liveness
       set, not the empty one: construction populates [live] outside any
       transaction *)
    let init_ids = Triset.elements m.Delaunay.live in
    let model =
      let s = Triset.create () in
      let fill () = List.iter (fun id -> ignore (Triset.add s id)) init_ids in
      fill ();
      {
        History.reset =
          (fun () ->
            Triset.clear s;
            fill ());
        apply = (fun name args -> Triset.exec s name (Array.of_list args));
        snapshot =
          (fun () ->
            Value.List
              (List.map (fun id -> Value.Int id) (Triset.elements s)));
      }
    in
    let final () =
      Value.List
        (List.map
           (fun id -> Value.Int id)
           (Triset.elements m.Delaunay.live))
    in
    let ser = serializability_oracle model final in
    {
      Scheduler.det;
      spec = Some (Delaunay.spec_for scheme);
      tasks =
        Array.map (fun ids -> { Scheduler.body = body (List.rev ids) }) buckets;
      final;
      oracle =
        (fun history ->
          match ser history with
          | Some _ as e -> e
          | None ->
              Option.map
                (fun v -> "mesh not Delaunay after refinement: " ^ v)
                (Delaunay.delaunay_violation m));
    }
  in
  Result.map
    (fun () ->
      {
        w_name = "delaunay";
        w_detector = Protect.scheme_name scheme;
        w_txns = txns;
        make;
      })
    (check_scheme ~what:"delaunay" make)

(* ------------------------------------------------------------------ *)
(* Mixed: two kvmaps and a set behind one composed detector            *)
(* ------------------------------------------------------------------ *)

let pmeth prefix (m : Invocation.meth) =
  Invocation.meth ~mutates:m.Invocation.mutates
    ~concrete:m.Invocation.concrete ~rollback_log:m.Invocation.rollback_log
    (prefix ^ m.Invocation.name)
    m.Invocation.arity

(** Copy of [src] with every method (and both orientations of every
    condition) renamed under [prefix] — the formulas themselves only speak
    about argument/return positions, so they transfer verbatim. *)
let prefixed_spec ~adt prefix (src : Spec.t) : Spec.t =
  let dst =
    Spec.create ~vfuns:src.Spec.vfuns ~adt
      (List.map (pmeth prefix) (Spec.methods src))
  in
  List.iter
    (fun ((m1, m2), f) ->
      Spec.add_directed dst ~first:(prefix ^ m1) ~second:(prefix ^ m2) f)
    (Spec.all_conditions src);
  dst

(** Union of per-structure specs, with every cross-structure method pair
    declared to commute unconditionally (operations on different
    structures are always independent). *)
let union_spec ~adt (specs : Spec.t list) : Spec.t =
  let dst =
    Spec.create
      ~vfuns:(List.concat_map (fun s -> s.Spec.vfuns) specs)
      ~adt
      (List.concat_map Spec.methods specs)
  in
  List.iter
    (fun s ->
      List.iter
        (fun ((m1, m2), f) -> Spec.add_directed dst ~first:m1 ~second:m2 f)
        (Spec.all_conditions s))
    specs;
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i <> j then
            List.iter
              (fun (m1 : Invocation.meth) ->
                List.iter
                  (fun (m2 : Invocation.meth) ->
                    Spec.add_directed dst ~first:m1.Invocation.name
                      ~second:m2.Invocation.name Formula.True)
                  (Spec.methods sj))
              (Spec.methods si))
        specs)
    specs;
  dst

(** Transactions spanning three structures — two kvmaps ([a.], [b.]) and
    a set ([s.]) — each protected by its own detector, composed through
    {!Detector.compose} with invocations routed by method-name prefix.
    Exercises cross-detector composition: commits and aborts must reach
    every member, while the explorer's independence relation (the union
    spec) knows that operations on different structures always commute. *)
let mixed ?(txns = 3) ?(ops_per_txn = 2) ?(keys = 3) ?(seed = 42)
    (scheme : Protect.scheme) : (t, string) result =
  let rng = Random.State.make [| 0x3171; seed |] in
  let plan =
    Array.init txns (fun _ ->
        List.init ops_per_txn (fun _ ->
            let k = Value.Int (Random.State.int rng keys) in
            match Random.State.int rng 6 with
            | 0 ->
                ("a.", "put", [| k; Value.Int (Random.State.int rng 100) |])
            | 1 -> ("a.", "remove", [| k |])
            | 2 ->
                ("b.", "put", [| k; Value.Int (Random.State.int rng 100) |])
            | 3 -> ("b.", "get", [| k |])
            | 4 -> ("s.", "add", [| k |])
            | _ -> ("s.", "contains", [| k |])))
  in
  let simple =
    match scheme with
    | Protect.Abstract_lock | Protect.Sharded (Protect.Abstract_lock, _)
    | Protect.Global_lock ->
        true
    | _ -> false
  in
  let kv_spec () =
    if simple then Kvmap.simple_spec () else Kvmap.precise_spec ()
  in
  let set_spec () =
    if simple then Iset.simple_spec () else Iset.precise_spec ()
  in
  let spec_a = prefixed_spec ~adt:"mixed_a" "a." (kv_spec ()) in
  let spec_b = prefixed_spec ~adt:"mixed_b" "b." (kv_spec ()) in
  let spec_s = prefixed_spec ~adt:"mixed_s" "s." (set_spec ()) in
  let combined = union_spec ~adt:"mixed" [ spec_a; spec_b; spec_s ] in
  (* member undo/redo hooks see prefixed invocations: strip before
     delegating to the ADT's own plumbing *)
  let strip (inv : Invocation.t) =
    let n = inv.Invocation.meth.Invocation.name in
    {
      inv with
      Invocation.meth =
        {
          inv.Invocation.meth with
          Invocation.name = String.sub n 2 (String.length n - 2);
        };
    }
  in
  let member_hooks undo exec =
    Gatekeeper.hooks
      ~undo:(fun inv -> undo (strip inv))
      ~redo:(fun inv ->
        let i = strip inv in
        ignore (exec i.Invocation.meth.Invocation.name i.Invocation.args))
      (fun name _ -> raise (Formula.Unsupported ("mixed sfun " ^ name)))
  in
  let make () =
    let ma = Kvmap.create ()
    and mb = Kvmap.create ()
    and ss = Iset.create () in
    let det_of spec hooks =
      Protect.protect ~obs:true ~spec ~adt:(Protect.adt ~hooks ()) scheme
    in
    let det_a =
      det_of spec_a (member_hooks (Kvmap.undo ma) (Kvmap.exec ma))
    in
    let det_b =
      det_of spec_b (member_hooks (Kvmap.undo mb) (Kvmap.exec mb))
    in
    let det_s = det_of spec_s (member_hooks (Iset.undo ss) (Iset.exec ss)) in
    let base = Detector.compose [ det_a; det_b; det_s ] in
    let dispatcher =
      {
        base with
        Detector.name = Fmt.str "mixed(%s)" (Protect.scheme_name scheme);
        on_invoke =
          (fun inv exec ->
            let d =
              match inv.Invocation.meth.Invocation.name.[0] with
              | 'a' -> det_a
              | 'b' -> det_b
              | _ -> det_s
            in
            d.Detector.on_invoke inv exec);
      }
    in
    let exec_for prefix name args =
      match prefix with
      | "a." -> Kvmap.exec ma name args
      | "b." -> Kvmap.exec mb name args
      | _ -> Iset.exec ss name args
    in
    let undo_for prefix =
      match prefix with
      | "a." -> fun inv -> Kvmap.undo ma (strip inv)
      | "b." -> fun inv -> Kvmap.undo mb (strip inv)
      | _ -> fun inv -> Iset.undo ss (strip inv)
    in
    let body ops ~det ~txn =
      List.iter
        (fun (prefix, name, args) ->
          call ~det ~txn ~undo:(undo_for prefix)
            (Spec.find_meth combined (prefix ^ name))
            args
            (fun _ -> exec_for prefix name args))
        ops
    in
    let model =
      let a = Kvmap.model ()
      and b = Kvmap.model ()
      and s = Iset.model () in
      {
        History.reset =
          (fun () ->
            a.History.reset ();
            b.History.reset ();
            s.History.reset ());
        apply =
          (fun name args ->
            let base = String.sub name 2 (String.length name - 2) in
            match name.[0] with
            | 'a' -> a.History.apply base args
            | 'b' -> b.History.apply base args
            | _ -> s.History.apply base args);
        snapshot =
          (fun () ->
            Value.List
              [
                a.History.snapshot ();
                b.History.snapshot ();
                s.History.snapshot ();
              ]);
      }
    in
    let final () =
      Value.List
        [
          Value.List
            (List.map (fun (k, v) -> Value.Pair (k, v)) (Kvmap.bindings ma));
          Value.List
            (List.map (fun (k, v) -> Value.Pair (k, v)) (Kvmap.bindings mb));
          Value.List (Iset.elements ss);
        ]
    in
    {
      Scheduler.det = dispatcher;
      spec = Some combined;
      tasks = Array.map (fun ops -> { Scheduler.body = body ops }) plan;
      final;
      oracle = serializability_oracle model final;
    }
  in
  Result.map
    (fun () ->
      {
        w_name = "mixed";
        w_detector = Protect.scheme_name scheme;
        w_txns = txns;
        make;
      })
    (check_scheme ~what:"mixed" make)

(* ------------------------------------------------------------------ *)
(* By name                                                             *)
(* ------------------------------------------------------------------ *)

let by_name ?txns ?ops_per_txn ?seed name (scheme : Protect.scheme) :
    (t, string) result =
  match name with
  | "set" -> set ?txns ?ops_per_txn ?seed scheme
  | "kvmap" -> kvmap ?txns ?ops_per_txn ?seed scheme
  | "union-find" | "union_find" -> union_find ?txns ?ops_per_txn ?seed scheme
  | "delaunay" ->
      (* ops_per_txn has no meaning here: work per transaction is however
         many cavities its share of the bad triangles expands to *)
      ignore ops_per_txn;
      delaunay ?txns ?seed scheme
  | "mixed" -> mixed ?txns ?ops_per_txn ?seed scheme
  | "swap-set" | "swap_set" ->
      (* the swap workload fixes its own detector pair; [scheme] names
         what the rest of the sweep runs and is ignored here *)
      ignore scheme;
      swap_set ?txns ?ops_per_txn ?seed ()
  | other ->
      Error
        (Fmt.str "unknown workload %S (expected %s)" other
           (String.concat ", " names))
