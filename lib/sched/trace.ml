(** Execution traces of the virtual scheduler.

    A trace is the sequence of scheduling decisions one run took: at each
    step, which fiber ran, what synchronization action it performed
    ({!Commlat_core.Schedpoint.action}), in what detector context, and
    which other fibers were enabled (with {e their} pending actions) — the
    alternatives a partial-order-reduction explorer may need to branch to.

    Rendering normalizes every process-global identifier (guard creation
    ids, STM cell ids, transaction ids) to small run-local indices assigned
    in order of first appearance, so two runs of the same schedule render
    to byte-identical text even though the underlying counters keep
    incrementing across runs.  Byte-equality of rendered traces is the
    replay-determinism check. *)

open Commlat_core

(** Where a fiber currently is in the detector protocol.  Lock and STM
    actions inherit the semantic operations of their context: a guard
    acquired inside [In_invoke inv] is "part of" [inv] for the
    independence relation. *)
type ctx =
  | Top  (** outside any detector operation *)
  | In_invoke of Invocation.t
  | In_commit
  | In_abort

(** A fiber's position: its next (pending) or current (executed) action,
    the context it occurs in, and the invocations its current transaction
    attempt has executed so far (newest first) — the operations a commit
    or abort action "carries" for the independence relation. *)
type info = {
  i_action : Schedpoint.action;
  i_ctx : ctx;
  i_invs : Invocation.t list;
}

type step = {
  s_tid : int;
  s_attempt : int;  (** 1-based attempt number of the fiber's transaction *)
  s_info : info;  (** the action this step executed *)
  s_alts : (int * int * info) list;
      (** the other fibers enabled at this decision: (tid, attempt,
          pending action) *)
}

(* ------------------------------------------------------------------ *)
(* Rendering with run-local id normalization                           *)
(* ------------------------------------------------------------------ *)

(** First-appearance normalizer: process-global ids to dense run-local
    ones.  Unseen ids map to [-1] (rendered ["?"]) — used when
    fingerprinting a pending action against a trace {e prefix} that never
    touched its guard. *)
let normalizer () =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let intern i =
    match Hashtbl.find_opt tbl i with
    | Some j -> j
    | None ->
        let j = Hashtbl.length tbl in
        Hashtbl.add tbl i j;
        j
  in
  let peek i = Option.value ~default:(-1) (Hashtbl.find_opt tbl i) in
  (intern, peek)

let pp_norm_id prefix ppf = function
  | -1 -> Fmt.pf ppf "%s?" prefix
  | j -> Fmt.pf ppf "%s%d" prefix j

(** Render one action with [gid]/[cid] id translation.  Transaction ids
    are never printed (callers print [tid.attempt] instead), so output is
    stable across runs. *)
let pp_action ~gid ~cid ppf (a : Schedpoint.action) =
  match a with
  | Schedpoint.Acquire g -> Fmt.pf ppf "acq %a" (pp_norm_id "G") (gid g)
  | Schedpoint.Release g -> Fmt.pf ppf "rel %a" (pp_norm_id "G") (gid g)
  | Schedpoint.Invoke { det; inv } ->
      Fmt.pf ppf "invoke %s(%a)=%a [%s]" inv.Invocation.meth.Invocation.name
        Fmt.(array ~sep:comma Value.pp)
        inv.Invocation.args Value.pp inv.Invocation.ret det
  | Schedpoint.Commit { det; _ } -> Fmt.pf ppf "commit [%s]" det
  | Schedpoint.Abort { det; _ } -> Fmt.pf ppf "abort [%s]" det
  | Schedpoint.Read c -> Fmt.pf ppf "read %a" (pp_norm_id "C") (cid c)
  | Schedpoint.Write c -> Fmt.pf ppf "write %a" (pp_norm_id "C") (cid c)

let action_ids (a : Schedpoint.action) =
  match a with
  | Schedpoint.Acquire g | Schedpoint.Release g -> (Some g, None)
  | Schedpoint.Read c | Schedpoint.Write c -> (None, Some c)
  | _ -> (None, None)

(** Render a full trace, one step per line:
    [<idx> t<tid>.<attempt> <action>]. *)
let render (steps : step list) : string =
  let gintern, _ = normalizer () and cintern, _ = normalizer () in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i st ->
      Buffer.add_string buf
        (Fmt.str "%3d t%d.%d %a@." i st.s_tid st.s_attempt
           (pp_action ~gid:gintern ~cid:cintern)
           st.s_info.i_action))
    steps;
  Buffer.contents buf

(** Fingerprint a (tid, pending action) pair relative to a trace prefix:
    the sleep-set key.  Ids are normalized by first appearance {e in the
    prefix}, so the same logical pending action fingerprints identically
    in a parent run and in the child run that replays the parent's
    choices up to the branch point. *)
let fingerprint (prefix : step list) (tid : int) (info : info) : string =
  let gintern, gpeek = normalizer () and cintern, cpeek = normalizer () in
  List.iter
    (fun st ->
      match action_ids st.s_info.i_action with
      | Some g, _ -> ignore (gintern g)
      | _, Some c -> ignore (cintern c)
      | _ -> ())
    prefix;
  Fmt.str "t%d:%a" tid (pp_action ~gid:gpeek ~cid:cpeek) info.i_action
