(** Deterministic cooperative scheduler over effect-handler fibers.

    A {!instance} is a set of transaction bodies over one conflict
    detector.  {!run} executes them all on a single domain as cooperative
    fibers: a {!Commlat_core.Schedpoint} hook turns every synchronization
    point (guard acquire/release, detector invoke/commit/abort, STM cell
    read/write) into an effect that suspends the performing fiber, and the
    scheduler decides who runs next — following an explicit schedule
    prefix, then a fixed default policy (lowest-numbered enabled fiber).
    Given the same instance factory and the same schedule, a run is fully
    deterministic and its rendered trace is byte-identical.

    Real [Guard] mutexes cannot block here: all fibers share one domain,
    so the guard's same-domain reentrancy turns them into depth counters.
    Mutual exclusion is instead enforced {e virtually} — the scheduler
    tracks a per-guard (owner fiber, depth) map and refuses to run a fiber
    whose pending [Acquire] targets a guard another fiber virtually holds.
    When every unfinished fiber is blocked this way the run reports a
    {!status.Deadlock} with the wait-for cycle: exactly how a lock-order
    inversion (the Abstract_lock ABBA bug the previous release fixed)
    surfaces deterministically.

    The transaction protocol mirrors [Executor.run_domains]: the body runs
    under a fresh [Txn.t]; on success the detector commits; on
    {!Detector.Conflict} the fiber rolls back atomically under every
    involved guard ([Guard.protect_all]) — whose acquisitions are
    themselves yield points, which is precisely what lets the explorer
    interleave an abort against a concurrent invocation — and retries. *)

open Commlat_core
open Commlat_runtime
module Obs = Commlat_obs.Obs

type task = { body : det:Detector.t -> txn:Txn.t -> unit }

(** One runnable concurrency-test workload.  [make] builds a {e fresh}
    instance — new ADT, new detector, new guards — every run: exploration
    replays the workload from its initial state under many schedules. *)
type instance = {
  det : Detector.t;
  spec : Spec.t option;
      (** the commutativity spec driving the explorer's independence
          relation; [None] means "nothing commutes" (explore everything) *)
  tasks : task array;  (** one transaction per fiber; index = tid *)
  final : unit -> Value.t;  (** current abstract state, for oracles *)
  oracle : Invocation.t list -> string option;
      (** post-run check over the committed history (program order within
          each transaction); [Some msg] = counterexample *)
}

type status =
  | Completed
  | Deadlock of (int * int * int) list
      (** wait-for edges: (blocked tid, guard id, holder tid) *)
  | Truncated  (** step budget exhausted (e.g. a retry livelock) *)
  | Crashed of { tid : int; exn_text : string }
      (** a non-[Conflict] exception escaped a fiber *)

type result = {
  status : status;
  choices : int list;  (** the feasible schedule actually executed *)
  steps : Trace.step list;
  committed : Invocation.t list;
  oracle_failure : string option;  (** only checked when [Completed] *)
  snapshot : Obs.snapshot;  (** detector obs counters at end of run *)
  final_state : Value.t;
  executed : (int, unit) Hashtbl.t;
      (** uids of invocations whose [exec] ran (their [ret] is real) *)
}

let pp_status ppf = function
  | Completed -> Fmt.string ppf "completed"
  | Deadlock edges ->
      Fmt.pf ppf "deadlock: %a"
        Fmt.(
          list ~sep:(any "; ") (fun ppf (t, g, h) ->
              pf ppf "t%d waits for g%d held by t%d" t g h))
        edges
  | Truncated -> Fmt.string ppf "truncated (step budget exhausted)"
  | Crashed { tid; exn_text } -> Fmt.pf ppf "t%d crashed: %s" tid exn_text

(* ------------------------------------------------------------------ *)
(* Fibers                                                              *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += Yield : Schedpoint.action -> unit Effect.t

type outcome =
  | O_yield of Schedpoint.action * (unit, outcome) Effect.Deep.continuation
  | O_done
  | O_raise of exn

type fstate =
  | F_pending of Trace.info * (unit, outcome) Effect.Deep.continuation
  | F_done
  | F_crashed of exn

type fiber = {
  tid : int;
  mutable attempt : int;
  mutable ctx : Trace.ctx;
  mutable invs : Invocation.t list;  (** current attempt, newest first *)
  mutable st : fstate;
}

let handler : (unit, outcome) Effect.Deep.handler =
  {
    retc = (fun () -> O_done);
    exnc = (fun e -> O_raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield act ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                O_yield (act, k))
        | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Running one schedule                                                *)
(* ------------------------------------------------------------------ *)

let run ?(max_steps = 10_000) ~schedule (mk : unit -> instance) : result =
  (* Build the instance (detector, guards, ADT) BEFORE installing the
     yield hook: construction-time guard traffic is not part of the
     schedule. *)
  let inst = mk () in
  let current : fiber option ref = ref None in
  let cur () =
    match !current with
    | Some f -> f
    | None -> invalid_arg "Scheduler: detector used outside a fiber"
  in
  let with_ctx c k =
    let fib = cur () in
    let saved = fib.ctx in
    fib.ctx <- c;
    Fun.protect ~finally:(fun () -> fib.ctx <- saved) k
  in
  let executed : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let committed_acc : Invocation.t list ref = ref [] in
  (* Instrumented view of the detector: announces the detector-protocol
     yield points and maintains per-fiber context so lock actions can be
     attributed to the operation performing them.  Guard and STM actions
     announce themselves from inside Guard/Stm. *)
  let det0 = inst.det in
  let idet =
    {
      det0 with
      Detector.on_invoke =
        (fun inv exec ->
          Schedpoint.emit
            (Schedpoint.Invoke { det = det0.Detector.name; inv });
          with_ctx (Trace.In_invoke inv) (fun () ->
              det0.Detector.on_invoke inv (fun () ->
                  let v = exec () in
                  Hashtbl.replace executed inv.Invocation.uid ();
                  let fib = cur () in
                  fib.invs <- inv :: fib.invs;
                  v)));
      on_commit =
        (fun txn ->
          Schedpoint.emit (Schedpoint.Commit { det = det0.Detector.name; txn });
          with_ctx Trace.In_commit (fun () -> det0.Detector.on_commit txn));
      on_abort =
        (fun txn ->
          Schedpoint.emit (Schedpoint.Abort { det = det0.Detector.name; txn });
          with_ctx Trace.In_abort (fun () -> det0.Detector.on_abort txn));
    }
  in
  let make_body fib (task : task) () =
    let rec attempt n =
      fib.attempt <- n;
      fib.invs <- [];
      fib.ctx <- Trace.Top;
      let txn = Txn.fresh () in
      match task.body ~det:idet ~txn with
      | () ->
          idet.Detector.on_commit (Txn.id txn);
          Txn.commit txn;
          committed_acc := !committed_acc @ List.rev fib.invs
      | exception Detector.Conflict _ ->
          Guard.protect_all
            (Txn.guards txn @ idet.Detector.guards)
            (fun () ->
              Txn.rollback txn;
              idet.Detector.on_abort (Txn.id txn));
          attempt (n + 1)
    in
    attempt 1
  in
  let fibers =
    Array.mapi
      (fun tid _ ->
        { tid; attempt = 1; ctx = Trace.Top; invs = []; st = F_done })
      inst.tasks
  in
  let run_fiber fib thunk =
    current := Some fib;
    let out = thunk () in
    current := None;
    match out with
    | O_yield (act, k) ->
        fib.st <- F_pending ({ i_action = act; i_ctx = fib.ctx; i_invs = fib.invs }, k)
    | O_done -> fib.st <- F_done
    | O_raise e -> fib.st <- F_crashed e
  in
  (* Virtual guard ownership: guard id -> (owner tid, depth). *)
  let vown : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let action_enabled fib = function
    | Schedpoint.Acquire g -> (
        match Hashtbl.find_opt vown g with
        | None -> true
        | Some (o, _) -> o = fib.tid)
    | _ -> true
  in
  let apply_virtual fib = function
    | Schedpoint.Acquire g -> (
        match Hashtbl.find_opt vown g with
        | None -> Hashtbl.replace vown g (fib.tid, 1)
        | Some (o, d) ->
            assert (o = fib.tid);
            Hashtbl.replace vown g (o, d + 1))
    | Schedpoint.Release g -> (
        match Hashtbl.find_opt vown g with
        | Some (_, 1) -> Hashtbl.remove vown g
        | Some (o, d) -> Hashtbl.replace vown g (o, d - 1)
        | None -> ())
    | _ -> ()
  in
  let schedule = Array.of_list schedule in
  let steps_rev : Trace.step list ref = ref [] in
  let choices_rev : int list ref = ref [] in
  let nsteps = ref 0 in
  let status = ref Completed in
  Schedpoint.install (fun a -> Effect.perform (Yield a));
  Fun.protect ~finally:Schedpoint.uninstall (fun () ->
      (* Start every fiber to its first yield point, in tid order.  The
         code before the first synchronization action touches no shared
         state, so start order is not a scheduling decision. *)
      Array.iteri
        (fun i fib ->
          run_fiber fib (fun () ->
              Effect.Deep.match_with (make_body fib inst.tasks.(i)) () handler))
        fibers;
      let crashed () =
        Array.fold_left
          (fun acc f ->
            match (acc, f.st) with
            | None, F_crashed e -> Some (f.tid, e)
            | _ -> acc)
          None fibers
      in
      let rec loop pos =
        match crashed () with
        | Some (tid, e) ->
            status := Crashed { tid; exn_text = Printexc.to_string e }
        | None -> (
            let live =
              Array.to_list fibers
              |> List.filter (fun f ->
                     match f.st with F_pending _ -> true | _ -> false)
            in
            if live = [] then ()
            else
              let enabled =
                List.filter
                  (fun f ->
                    match f.st with
                    | F_pending (info, _) ->
                        action_enabled f info.Trace.i_action
                    | _ -> false)
                  live
              in
              match enabled with
              | [] ->
                  (* every unfinished fiber waits on a guard another fiber
                     virtually holds: lock-order deadlock *)
                  status :=
                    Deadlock
                      (List.filter_map
                         (fun f ->
                           match f.st with
                           | F_pending ({ i_action = Schedpoint.Acquire g; _ }, _)
                             -> (
                               match Hashtbl.find_opt vown g with
                               | Some (o, _) -> Some (f.tid, g, o)
                               | None -> None)
                           | _ -> None)
                         live)
              | _ when !nsteps >= max_steps -> status := Truncated
              | _ ->
                  let chosen =
                    let wanted =
                      if pos < Array.length schedule then Some schedule.(pos)
                      else None
                    in
                    match wanted with
                    | Some t
                      when List.exists (fun f -> f.tid = t) enabled ->
                        List.find (fun f -> f.tid = t) enabled
                    | _ ->
                        List.fold_left
                          (fun best f ->
                            if f.tid < best.tid then f else best)
                          (List.hd enabled) enabled
                  in
                  let info, k =
                    match chosen.st with
                    | F_pending (info, k) -> (info, k)
                    | _ -> assert false
                  in
                  let alts =
                    List.filter_map
                      (fun f ->
                        if f.tid = chosen.tid then None
                        else
                          match f.st with
                          | F_pending (i, _) -> Some (f.tid, f.attempt, i)
                          | _ -> None)
                      enabled
                  in
                  steps_rev :=
                    {
                      Trace.s_tid = chosen.tid;
                      s_attempt = chosen.attempt;
                      s_info = info;
                      s_alts = alts;
                    }
                    :: !steps_rev;
                  choices_rev := chosen.tid :: !choices_rev;
                  apply_virtual chosen info.Trace.i_action;
                  incr nsteps;
                  run_fiber chosen (fun () -> Effect.Deep.continue k ());
                  loop (pos + 1))
      in
      loop 0);
  let committed = !committed_acc in
  let oracle_failure =
    match !status with Completed -> inst.oracle committed | _ -> None
  in
  {
    status = !status;
    choices = List.rev !choices_rev;
    steps = List.rev !steps_rev;
    committed;
    oracle_failure;
    snapshot = inst.det.Detector.snapshot ();
    final_state = inst.final ();
    executed;
  }
