(** A seeded lock-order-inversion bug for validating the explorer.

    [detector ~buggy:true ()] is a test-only conflict detector that takes
    two guards in an inconsistent order: invocations nest the acquires
    outer-g2/inner-g1 while the release and abort paths (and the fixed
    variant's invoke path) use the canonical smallest-id-first order
    g1-then-g2 of {!Commlat_core.Guard.protect_all}.  Two concurrent
    transactions can therefore deadlock in the classic ABBA shape — one
    holding g1 and asking for g2, the other holding g2 and asking for g1.

    Under the real runtime the window is a few instructions wide; under
    the virtual scheduler {!Explore.explore} finds it deterministically,
    shrinks it, and the pinned schedule in [test/data/] replays it
    forever.  The conflict rule is deliberately crude (conflict whenever
    another transaction is active) so that aborts — and with them the
    abort-path lock order — are actually exercised. *)

open Commlat_core
open Commlat_adts

(** [detector ~buggy ()] — both variants use the same two fresh guards and
    the same active-set conflict rule; only the acquire nesting in
    [on_invoke] differs. *)
let detector ~buggy () : Detector.t =
  let g1 = Guard.create () in
  let g2 = Guard.create () in
  (* canonical order: protect_all sorts by creation id, so g1 first *)
  let active : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let on_invoke (inv : Invocation.t) (exec : unit -> Value.t) : Value.t =
    let txn = inv.Invocation.txn in
    let locked body =
      if buggy then
        (* BUG: inverts the canonical g1-then-g2 order used everywhere
           else — the other half of an ABBA pair *)
        Guard.protect g2 (fun () -> Guard.protect g1 body)
      else Guard.protect_all [ g1; g2 ] body
    in
    locked (fun () ->
        (* gatekeeper-style: execute first, detect the conflict after —
           the registered undo action then matches what actually ran *)
        Hashtbl.replace active txn ();
        let v = exec () in
        inv.Invocation.ret <- v;
        if Hashtbl.length active > 1 then
          (* Deterministic partner choice: Hashtbl.fold visits buckets in
             hash order, so "last other txn seen" depends on table layout
             (and polymorphic [=] on ints is an accident waiting for a key
             type change).  Pick the lowest-id other transaction instead —
             replayed schedules then always blame the same pair. *)
          let other =
            Hashtbl.fold
              (fun t () acc ->
                if Int.equal t txn then acc
                else if acc < 0 || t < acc then t
                else acc)
              active (-1)
          in
          Detector.conflict ~txn ~with_:other "another transaction is active"
        else v)
  in
  let on_commit txn =
    Guard.protect_all [ g1; g2 ] (fun () -> Hashtbl.remove active txn)
  in
  let on_abort txn =
    Guard.protect_all [ g1; g2 ] (fun () -> Hashtbl.remove active txn)
  in
  {
    Detector.name = (if buggy then "abba-buggy" else "abba-fixed");
    on_invoke;
    on_commit;
    on_abort;
    reset = (fun () -> Hashtbl.reset active);
    snapshot = Detector.no_snapshot;
    guards = [ g1; g2 ];
  }

(** Three single-increment transactions over an {!Accumulator}: the
    smallest workload whose interleavings reach the inversion. *)
let workload ~buggy () : Scheduler.instance =
  let acc = Accumulator.create () in
  let det = detector ~buggy () in
  let body ~det ~txn =
    ignore
      (Commlat_runtime.Boost.invoke det txn ~undo:(Accumulator.undo acc)
         Accumulator.m_increment
         [| Value.Int 1 |]
         (fun inv ->
           Accumulator.exec acc inv.Invocation.meth.Invocation.name
             inv.Invocation.args))
  in
  {
    Scheduler.det;
    spec = None;
    tasks = Array.init 3 (fun _ -> { Scheduler.body });
    final = (fun () -> Value.Int (Accumulator.read acc));
    oracle =
      (fun _history ->
        let v = Accumulator.read acc in
        if v = 3 then None
        else Some (Fmt.str "accumulator is %d after 3 increments" v));
  }
