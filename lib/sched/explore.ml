(** DPOR-style schedule exploration driven by the commutativity lattice.

    The explorer walks the tree of schedules of a {!Scheduler.instance}
    depth-first.  Each node is a schedule prefix; running it (prefix
    choices, then the default lowest-tid policy) yields a concrete trace.
    For every decision point at or beyond the prefix and every enabled
    fiber [t] that was {e not} chosen there, a child prefix ending in [t]
    is pushed — {b unless} partial-order reduction proves the branch
    redundant: if [t]'s pending action is {e independent} of every step
    other fibers execute before [t] next runs, executing it earlier
    commutes step-by-step back to the explored trace, so the branch can
    only reach already-covered behaviours.

    Independence is where the paper's lattice comes in.  Two actions are
    independent when the method invocations they belong to {e commute},
    decided by {!Spec.commutes} on the observed arguments and return
    values — the same commutativity conditions the conflict detectors
    enforce at run time prune the model checker's search space.  Lock and
    STM actions inherit the invocations of their context (an acquire
    performed inside [invoke add(3)] is part of that [add]); commit/abort
    actions carry every invocation of their transaction; actions whose
    commutativity cannot be established (no spec, state-dependent
    condition, unobserved return value) are conservatively dependent.
    Same-guard acquires by provably-commuting operations are thus {e not}
    reordered — sound because a correct detector serializes commuting
    critical sections into equivalent orders — while any action reachable
    from an abort path (whose operations include the conflicting
    invocation) stays dependent, which is exactly what lets the explorer
    reach lock-order-inversion deadlocks between invocations and aborts.

    A sleep-set refinement prunes sibling re-exploration: after the
    subtree choosing fiber [c] at decision [k] is scheduled, the sibling
    branches at [k] carry [(c, fingerprint of c's pending action)] as
    {e asleep}; within such a branch, re-branching to a still-asleep fiber
    is skipped (counted as a sleep-set hit) until some executed action
    dependent with its sleeping action wakes it.

    Failing runs (deadlock, crash, oracle violation) are shrunk greedily —
    prefix truncation, then single-choice deletion to a fixpoint — and
    reported with a replayable schedule and a rendered trace. *)

open Commlat_core
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx
module Diagnostic = Commlat_analysis.Diagnostic

type config = {
  por : bool;  (** commutativity pruning (false = explore everything) *)
  max_schedules : int;  (** run budget for the exploration phase *)
  max_steps : int;  (** per-run step budget (catches retry livelocks) *)
}

let default_config = { por = true; max_schedules = 2000; max_steps = 2000 }

type counters = {
  mutable runs : int;  (** schedules actually executed *)
  mutable pruned : int;  (** branches dropped by commutativity pruning *)
  mutable sleep_hits : int;  (** branches dropped by the sleep set *)
  mutable steps : int;  (** total steps across all runs *)
  mutable truncated : int;  (** runs that hit the step budget *)
  mutable shrink_runs : int;  (** extra runs spent shrinking *)
}

type failure = {
  f_kind : string;  (** ["deadlock"] | ["crash"] | ["oracle"] *)
  f_detail : string;
  f_schedule : int list;  (** shrunk, replayable *)
  f_trace : string;  (** rendered trace of the shrunk failing run *)
  f_shrunk_from : int;  (** length of the schedule before shrinking *)
}

type report = {
  verdict : failure option;  (** [None] = no counterexample found *)
  c : counters;
  exhausted : bool;  (** false: the run budget cut the search short *)
}

(* ------------------------------------------------------------------ *)
(* The independence relation                                           *)
(* ------------------------------------------------------------------ *)

(** The invocations an action belongs to, for commutativity purposes. *)
let ops_of (info : Trace.info) : Invocation.t list =
  match info.Trace.i_action with
  | Schedpoint.Invoke { inv; _ } -> [ inv ]
  | Schedpoint.Commit _ | Schedpoint.Abort _ -> info.Trace.i_invs
  | Schedpoint.Acquire _ | Schedpoint.Release _ | Schedpoint.Read _
  | Schedpoint.Write _ -> (
      match info.Trace.i_ctx with
      | Trace.In_invoke inv -> [ inv ]
      | Trace.In_commit | Trace.In_abort -> info.Trace.i_invs
      | Trace.Top -> [])

(** Do [i1] (observed first) and [i2] provably commute?  [executed] marks
    the invocations whose return values are real. *)
let commute_pair spec executed (i1 : Invocation.t) (i2 : Invocation.t) =
  match spec with
  | None -> false
  | Some s -> (
      let known i = Hashtbl.mem executed i.Invocation.uid in
      match
        Spec.commutes ~ret1_known:(known i1) ~ret2_known:(known i2) s i1 i2
      with
      | Some true -> true
      | Some false | None -> false)

(** [dependent spec executed earlier later]: may the two actions fail to
    commute?  [earlier] executed (or would execute) before [later]. *)
let dependent spec executed (earlier : Trace.info) (later : Trace.info) =
  let a1 = earlier.Trace.i_action and a2 = later.Trace.i_action in
  match (a1, a2) with
  (* distinct guards never interact as locks *)
  | ( (Schedpoint.Acquire g1 | Schedpoint.Release g1),
      (Schedpoint.Acquire g2 | Schedpoint.Release g2) )
    when g1 <> g2 -> false
  (* STM cells: read/read is independent; anything else on one cell is a
     data conflict *)
  | ( (Schedpoint.Read c1 | Schedpoint.Write c1),
      (Schedpoint.Read c2 | Schedpoint.Write c2) ) ->
      c1 = c2
      && not
           (match (a1, a2) with
           | Schedpoint.Read _, Schedpoint.Read _ -> true
           | _ -> false)
  | _ ->
      (* Same guard, or detector-protocol actions: dependent unless every
         pair of the invocations they belong to provably commutes.  An
         empty operation list (action outside any invocation, e.g. a
         commit that never invoked) is conservatively dependent. *)
      let ops1 = ops_of earlier and ops2 = ops_of later in
      not
        (ops1 <> [] && ops2 <> []
        && List.for_all
             (fun i1 ->
               List.for_all (fun i2 -> commute_pair spec executed i1 i2) ops2)
             ops1)

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

let failure_of_run (r : Scheduler.result) : (string * string) option =
  match r.Scheduler.status with
  | Scheduler.Deadlock _ ->
      Some ("deadlock", Fmt.str "%a" Scheduler.pp_status r.Scheduler.status)
  | Scheduler.Crashed _ ->
      Some ("crash", Fmt.str "%a" Scheduler.pp_status r.Scheduler.status)
  | Scheduler.Completed -> (
      match r.Scheduler.oracle_failure with
      | Some msg -> Some ("oracle", msg)
      | None -> None)
  | Scheduler.Truncated -> None

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(** Greedy shrink: shortest failing prefix first (the tail is replaced by
    the deterministic default policy), then delete single choices to a
    fixpoint.  Same failure {e kind} counts as "still failing". *)
let shrink ~max_steps ~(c : counters) mk kind (schedule : int list) :
    int list * Scheduler.result =
  let fails sched =
    c.shrink_runs <- c.shrink_runs + 1;
    let r = Scheduler.run ~max_steps ~schedule:sched mk in
    c.steps <- c.steps + List.length r.Scheduler.steps;
    match failure_of_run r with
    | Some (k, _) when k = kind -> Some r
    | _ -> None
  in
  let arr = Array.of_list schedule in
  let n = Array.length arr in
  (* shortest failing prefix, linear scan from the front *)
  let best = ref (schedule, None) in
  (try
     for len = 0 to n - 1 do
       let cand = Array.to_list (Array.sub arr 0 len) in
       match fails cand with
       | Some r ->
           best := (cand, Some r);
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  let cur = ref (fst !best) in
  (* single-choice deletion to fixpoint *)
  let improved = ref true in
  while !improved do
    improved := false;
    let a = Array.of_list !cur in
    (try
       for i = 0 to Array.length a - 1 do
         let cand =
           Array.to_list a |> List.filteri (fun j _ -> j <> i)
         in
         match fails cand with
         | Some r ->
             cur := cand;
             best := (cand, Some r);
             improved := true;
             raise Exit
         | None -> ()
       done
     with Exit -> ())
  done;
  let final_sched = !cur in
  match snd !best with
  | Some r -> (final_sched, r)
  | None ->
      (* nothing shorter failed; re-run the original for its trace *)
      let r = Scheduler.run ~max_steps ~schedule:final_sched mk in
      c.shrink_runs <- c.shrink_runs + 1;
      (final_sched, r)

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type node = { prefix : int list; sleep : (int * string) list }

(** What {!expand} found at one node: child prefixes in {e generation
    order} (outermost decision's first alternative first) plus how many
    branches commutativity pruning and the sleep set dropped. *)
type expansion = {
  children : node list;
  x_pruned : int;
  x_sleep_hits : int;
}

(** Generate the backtrack children of [node] from the run [r] it
    produced: for every decision at or beyond the prefix and every enabled
    alternative fiber, a child prefix — unless partial-order reduction or
    the sleep set proves the branch redundant.  Pure with respect to the
    caller's bookkeeping; shared by the sequential DFS below and the
    parallel explorer ({!Pexplore}). *)
let expand ~por ~spec (r : Scheduler.result) (node : node) : expansion =
  let x_pruned = ref 0 and x_sleep_hits = ref 0 in
  let steps = Array.of_list r.Scheduler.steps in
  let nsteps = Array.length steps in
  let choices = Array.of_list r.Scheduler.choices in
  let plen = List.length node.prefix in
  (* next index >= k at which fiber t executes, or nsteps *)
  let next_exec k t =
    let rec go j =
      if j >= nsteps then nsteps
      else if steps.(j).Trace.s_tid = t then j
      else go (j + 1)
    in
    go k
  in
  let must_branch k t (alt : Trace.info) =
    if not por then true
    else begin
      let m = next_exec k t in
      let rec scan j =
        j < m
        && (dependent spec r.Scheduler.executed steps.(j).Trace.s_info alt
           || scan (j + 1))
      in
      scan k
    end
  in
  (* sleep bookkeeping: walk decisions in order, waking entries when a
     dependent action executes; collect children *)
  let children = ref [] in
  let asleep = ref node.sleep in
  let prefix_steps = ref [] (* steps.(0..k-1), reversed *) in
  for k = 0 to nsteps - 1 do
    let st = steps.(k) in
    (if k >= plen then
       let explored_here =
         (* siblings already scheduled at this decision: the chosen fiber
            first, then alternatives as we push them *)
         ref
           [
             ( st.Trace.s_tid,
               Trace.fingerprint (List.rev !prefix_steps) st.Trace.s_tid
                 st.Trace.s_info );
           ]
       in
       List.iter
         (fun (t, _att, alt) ->
           let fp = Trace.fingerprint (List.rev !prefix_steps) t alt in
           if List.mem (t, fp) !asleep then incr x_sleep_hits
           else if not (must_branch k t alt) then incr x_pruned
           else begin
             let child_prefix =
               Array.to_list (Array.sub choices 0 k) @ [ t ]
             in
             children :=
               { prefix = child_prefix; sleep = !explored_here } :: !children;
             explored_here := (t, fp) :: !explored_here
           end)
         st.Trace.s_alts);
    (* wake sleeping entries the executed step conflicts with *)
    asleep :=
      List.filter
        (fun (t, fp) ->
          if t = st.Trace.s_tid then false
          else
            match
              List.find_opt (fun (t', _, _) -> t' = t) st.Trace.s_alts
            with
            | Some (_, _, pend)
              when Trace.fingerprint (List.rev !prefix_steps) t pend = fp ->
                not (dependent spec r.Scheduler.executed st.Trace.s_info pend)
            | _ -> true)
        !asleep;
    prefix_steps := st :: !prefix_steps
  done;
  {
    children = List.rev !children;
    x_pruned = !x_pruned;
    x_sleep_hits = !x_sleep_hits;
  }

let explore ?(config = default_config) ?obs (mk : unit -> Scheduler.instance) :
    report =
  let c =
    {
      runs = 0;
      pruned = 0;
      sleep_hits = 0;
      steps = 0;
      truncated = 0;
      shrink_runs = 0;
    }
  in
  let o_runs, o_pruned, o_sleep =
    match obs with
    | Some o ->
        ( Some (Obs.counter o "schedules_run"),
          Some (Obs.counter o "schedules_pruned"),
          Some (Obs.counter o "sleep_set_hits") )
    | None -> (None, None, None)
  in
  let bump cnt = match cnt with Some x -> Obs.incr x | None -> () in
  let stack = ref [ { prefix = []; sleep = [] } ] in
  let found : failure option ref = ref None in
  let spec = (mk ()).Scheduler.spec in
  while !found = None && !stack <> [] && c.runs < config.max_schedules do
    match !stack with
    | [] -> ()
    | node :: rest ->
        stack := rest;
        let r =
          Scheduler.run ~max_steps:config.max_steps ~schedule:node.prefix mk
        in
        c.runs <- c.runs + 1;
        bump o_runs;
        c.steps <- c.steps + List.length r.Scheduler.steps;
        (if r.Scheduler.status = Scheduler.Truncated then
           c.truncated <- c.truncated + 1);
        (match failure_of_run r with
        | Some (kind, _) ->
            let sched, rr =
              shrink ~max_steps:config.max_steps ~c mk kind
                r.Scheduler.choices
            in
            let detail =
              match failure_of_run rr with
              | Some (_, d) -> d
              | None -> "failure did not reproduce on shrunk schedule"
            in
            found :=
              Some
                {
                  f_kind = kind;
                  f_detail = detail;
                  f_schedule = sched;
                  f_trace = Trace.render rr.Scheduler.steps;
                  f_shrunk_from = List.length r.Scheduler.choices;
                }
        | None ->
            (* generate children at decisions >= |prefix| *)
            let x = expand ~por:config.por ~spec r node in
            c.pruned <- c.pruned + x.x_pruned;
            for _ = 1 to x.x_pruned do
              bump o_pruned
            done;
            c.sleep_hits <- c.sleep_hits + x.x_sleep_hits;
            for _ = 1 to x.x_sleep_hits do
              bump o_sleep
            done;
            (* depth-first: push children so the LAST decision's branches
               are explored first *)
            stack := List.rev_append x.children !stack)
  done;
  {
    verdict = !found;
    c;
    exhausted = (!found <> None) || !stack = [];
  }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(** Replay one schedule; used by the CLI's [--replay] and the pinned
    regression tests. *)
let replay ?(max_steps = default_config.max_steps) ~schedule mk :
    Scheduler.result =
  Scheduler.run ~max_steps ~schedule mk

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let diagnostics_of_failure ~workload (f : failure) : Diagnostic.t list =
  [
    Diagnostic.make ~spec:workload ~sev:Diagnostic.Error ~code:f.f_kind
      "schedule %s: %s (shrunk from %d to %d choices)"
      (String.concat "," (List.map string_of_int f.f_schedule))
      f.f_detail f.f_shrunk_from
      (List.length f.f_schedule);
  ]

let json_of_report ~workload ~detector ~txns ~(config : config) ?obs_snapshot
    (r : report) : Jsonx.t =
  let fail_json =
    match r.verdict with
    | None -> Jsonx.Null
    | Some f ->
        Jsonx.Obj
          [
            ("kind", Jsonx.Str f.f_kind);
            ("detail", Jsonx.Str f.f_detail);
            ( "schedule",
              Jsonx.List (List.map (fun t -> Jsonx.Int t) f.f_schedule) );
            ("shrunk_from_length", Jsonx.Int f.f_shrunk_from);
            ("trace", Jsonx.Str f.f_trace);
          ]
  in
  Jsonx.Obj
    ([
       ("schema", Jsonx.Str "commlat-explore/1");
       ("workload", Jsonx.Str workload);
       ("detector", Jsonx.Str detector);
       ("txns", Jsonx.Int txns);
       ("por", Jsonx.Bool config.por);
       ("max_schedules", Jsonx.Int config.max_schedules);
       ("max_steps", Jsonx.Int config.max_steps);
       ("schedules_run", Jsonx.Int r.c.runs);
       ("schedules_pruned", Jsonx.Int r.c.pruned);
       ("sleep_set_hits", Jsonx.Int r.c.sleep_hits);
       ("steps_total", Jsonx.Int r.c.steps);
       ("truncated_runs", Jsonx.Int r.c.truncated);
       ("shrink_runs", Jsonx.Int r.c.shrink_runs);
       ("exhausted", Jsonx.Bool r.exhausted);
       ( "verdict",
         Jsonx.Str (match r.verdict with None -> "ok" | Some _ -> "counterexample")
       );
       ("counterexample", fail_json);
     ]
    @ match obs_snapshot with
      | Some s -> [ ("obs", Obs.snapshot_to_json s) ]
      | None -> [])
