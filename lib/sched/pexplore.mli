(** Domain-parallel DPOR exploration by work-stealing schedule prefixes.

    Parallelizes {!Explore} across OCaml domains.  The search tree is a
    fixed function of the workload ({!Scheduler.run} is deterministic and
    {!Explore.expand} is pure), so any domain can process any frontier
    node: each worker owns a {!Commlat_wsdeque.Wsdeque} of
    prefix-plus-sleep-set nodes, pops depth-first from the front, pushes
    children back to the front, and steals the oldest (shortest-prefix =
    largest-subtree) node from a victim when empty.  {!Commlat_core.Schedpoint}
    hooks are domain-local, so each worker replays schedules through its
    own virtual scheduler without interference.

    Guarantees preserved from the sequential explorer:

    - {b budget honesty} — an atomic run-ticket counter makes
      [max_schedules] exact across domains, and [exhausted] is [false]
      whenever the budget cut frontier work;
    - {b counterexamples} — the first failure to be claimed stops the
      fleet and is shrunk by the claiming domain with
      {!Explore.shrink} (same greedy prefix-truncation + deletion);
    - {b determinism at [domains = 1]} — the single worker visits nodes
      in exactly the sequential DFS order, so verdict, schedule, counters
      and shrink result match {!Explore.explore}.

    Across domains, a sharded seen-trace table keyed on the {e canonical
    linearization} of each run's happens-before order (greedy minimal-tid
    topological sort, first-appearance-normalized rendering) counts
    distinct Mazurkiewicz traces ("states") and, when [dedup] is set,
    skips re-expanding a trace another domain already expanded. *)

open Commlat_core
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

type config = {
  base : Explore.config;  (** por / max_schedules / max_steps *)
  domains : int;  (** worker domains (1 = sequential-equivalent) *)
  dedup : bool;
      (** skip expanding a node whose canonical trace was already
          expanded; the seen table is maintained (and hits counted)
          either way *)
}

(** [{ base = Explore.default_config; domains = 2; dedup = true }] *)
val default_config : config

type domain_counters = {
  mutable d_runs : int;  (** schedules this domain executed *)
  mutable d_steps : int;
  mutable d_truncated : int;
  mutable d_pruned : int;
  mutable d_sleep_hits : int;
  mutable d_expanded : int;  (** nodes whose children were generated *)
  mutable d_pushed : int;  (** children pushed to the local deque *)
  mutable d_steals : int;  (** successful steals from other deques *)
  mutable d_steal_misses : int;  (** full sweeps that found nothing *)
  mutable d_dedup_hits : int;
  mutable d_shrink_runs : int;
}

type report = {
  verdict : Explore.failure option;
  c : Explore.counters;  (** aggregated across domains *)
  per_domain : domain_counters array;
  states : int;  (** distinct canonical traces across all domains *)
  dedup_hits : int;
  exhausted : bool;  (** false: the run budget cut the search short *)
  domains : int;
}

(** The canonical linearization key of one run; exposed for tests (two
    runs are Mazurkiewicz-equivalent iff their keys are equal). *)
val canonical_key : Spec.t option -> Scheduler.result -> string

(** Explore [mk]'s schedule tree on [config.domains] domains.  [obs], when
    given, receives the same [schedules_run] / [schedules_pruned] /
    [sleep_set_hits] counters as the sequential explorer (bumped from all
    domains). *)
val explore :
  ?config:config ->
  ?obs:Obs.t ->
  (unit -> Scheduler.instance) ->
  report

(** JSON document (schema ["commlat-explore-par/1"]): everything the
    sequential report carries plus [domains], [states], [dedup_hits],
    [dedup_rate] and a [per_domain] array of steal/expand counters. *)
val json_of_report :
  workload:string ->
  detector:string ->
  txns:int ->
  config:config ->
  ?obs_snapshot:Obs.snapshot ->
  report ->
  Jsonx.t
