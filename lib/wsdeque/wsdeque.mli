(** Per-domain work deques for the domain executor.

    Each worker owns one deque: it pops from the front (so conflict
    victims pushed back to the front retry first) and pushes freshly
    produced work to the back; idle workers steal from the {e back} of
    other deques, taking the oldest work and leaving the owner's hot retry
    items alone.

    The implementation is a mutex per deque over a two-list deque, with an
    atomic size so the empty check on the steal path costs one load
    instead of a lock acquisition; safe under any interleaving. *)

type 'a t

val create : unit -> 'a t

(** Current number of items (exact, but instantly stale — use only as a
    fast-path hint). *)
val size : 'a t -> int

val push_front : 'a t -> 'a -> unit
val push_back : 'a t -> 'a -> unit
val push_back_all : 'a t -> 'a list -> unit

(** Owner end: front first, then the oldest of the back list. *)
val pop : 'a t -> 'a option

(** Thief end: newest of the back list, falling back to the owner's front
    when the back is empty. *)
val steal : 'a t -> 'a option
