(** Per-domain work deques for the domain executor.

    Each worker owns one deque: it pops from the front (so conflict victims
    pushed back to the front retry first — the same contention-management
    policy as {!Executor.run_rounds}) and pushes freshly produced work to
    the back; idle workers steal from the {e back} of other deques, taking
    the oldest work and leaving the owner's hot retry items alone.

    The implementation is a mutex per deque over a two-list deque, with an
    atomic size so the empty check on the steal path costs one load instead
    of a lock acquisition.  A lock-free Chase–Lev deque would cut the
    constant factor; at operator granularities measured in microseconds the
    mutex is far from the critical path, and the mutex version is obviously
    correct under any interleaving — the property the executor's
    termination protocol leans on. *)

type 'a t = {
  mu : Mutex.t;
  mutable front : 'a list;  (** owner end, next-to-pop first *)
  mutable back : 'a list;  (** thief end, newest-pushed first *)
  size : int Atomic.t;
}

let create () =
  { mu = Mutex.create (); front = []; back = []; size = Atomic.make 0 }

(** Current number of items (exact, but instantly stale — use only as a
    fast-path hint). *)
let size t = Atomic.get t.size

let push_front t x =
  Mutex.protect t.mu (fun () ->
      t.front <- x :: t.front;
      Atomic.incr t.size)

let push_back t x =
  Mutex.protect t.mu (fun () ->
      t.back <- x :: t.back;
      Atomic.incr t.size)

let push_back_all t = function
  | [] -> ()
  | xs ->
      Mutex.protect t.mu (fun () ->
          List.iter
            (fun x ->
              t.back <- x :: t.back;
              Atomic.incr t.size)
            xs)

(** Owner end: front first, then the oldest of the back list. *)
let pop t =
  if Atomic.get t.size = 0 then None
  else
    Mutex.protect t.mu (fun () ->
        match t.front with
        | x :: rest ->
            t.front <- rest;
            Atomic.decr t.size;
            Some x
        | [] -> (
            match List.rev t.back with
            | [] -> None
            | x :: rest ->
                t.front <- rest;
                t.back <- [];
                Atomic.decr t.size;
                Some x))

(** Thief end: newest of the back list, falling back to the owner's front
    when the back is empty.  Any item is a valid steal; preferring the back
    keeps retry-first items with their owner. *)
let steal t =
  if Atomic.get t.size = 0 then None
  else
    Mutex.protect t.mu (fun () ->
        match t.back with
        | x :: rest ->
            t.back <- rest;
            Atomic.decr t.size;
            Some x
        | [] -> (
            match t.front with
            | x :: rest ->
                t.front <- rest;
                Atomic.decr t.size;
                Some x
            | [] -> None))
