(* Tests of general gatekeeping (paper §3.3.2) on union-find — the spec
   whose conditions (1)-(2) evaluate state functions of s1 with information
   from the later invocation, forcing state rollback. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let check_bool = Alcotest.(check bool)

let mk ?(elements = 8) () =
  let uf = Union_find.create () in
  ignore (Union_find.create_elements uf elements);
  let det, gk = Gatekeeper.Private.general ~hooks:(Union_find.hooks uf) (Union_find.spec ()) in
  (uf, det, gk)

let invoke det uf txn name args =
  let meth =
    List.find (fun (x : Invocation.meth) -> x.name = name) Union_find.methods
  in
  let inv =
    Invocation.make ~txn meth (Array.of_list (List.map (fun i -> Value.Int i) args))
  in
  det.Detector.on_invoke inv (fun () -> Union_find.exec_logged uf inv)

(* ------------------------------------------------------------- *)
(* Rollback is both exercised and necessary                       *)
(* ------------------------------------------------------------- *)

(* txn1 unions 0-1 (loser 1) then 0-2 (loser 2).  txn2's find(1) must
   conflict: rep(s1, 1) evaluated in the state BEFORE union(0,1) is 1,
   which equals the union's loser.  Evaluating rep in the CURRENT state
   would give 0 and wrongly admit the find — so this test passes only if
   the gatekeeper actually reconstructs s1. *)
let test_rollback_necessary () =
  let uf, det, gk = mk () in
  ignore (invoke det uf 1 "union" [ 0; 1 ]);
  ignore (invoke det uf 1 "union" [ 0; 2 ]);
  check_bool "find of displaced element conflicts" true
    (match invoke det uf 2 "find" [ 1 ] with
    | _ -> false
    | exception Detector.Conflict _ -> true);
  check_bool "rollback actually used" true (Gatekeeper.rollback_count gk > 0);
  det.Detector.on_abort 2;
  (* find of an untouched element is admitted *)
  ignore (invoke det uf 3 "find" [ 5 ]);
  det.Detector.on_commit 1;
  det.Detector.on_commit 3;
  (* state must be intact after all the undo/redo cycles *)
  check_bool "0,1,2 merged" true
    (Union_find.same_set uf 0 1 && Union_find.same_set uf 0 2);
  check_bool "others untouched" false (Union_find.same_set uf 3 4)

(* rollback/redo leaves the concrete forest byte-identical in behaviour:
   run a mixed workload, then compare against an undisturbed replica *)
let test_rollback_restores_state =
  QCheck.Test.make ~name:"undo/redo cycles preserve the forest" ~count:100
    QCheck.(
      make
        ~print:(fun l -> Fmt.str "%d ops" (List.length l))
        Gen.(list_size (int_bound 12) (pair (int_bound 7) (int_bound 7))))
    (fun unions ->
      let uf, det, _gk = mk () in
      let reference = Union_find.create () in
      ignore (Union_find.create_elements reference 8);
      (* txn1 performs unions through the gatekeeper; each interleaved find
         runs as a fresh short transaction that ends immediately — its check
         still triggers rollback probes against txn1's live unions *)
      List.iteri
        (fun i (a, b) ->
          ignore (invoke det uf 1 "union" [ a; b ]);
          ignore (Union_find.union reference a b);
          let probe = 100 + i in
          (match invoke det uf probe "find" [ (a + i) mod 8 ] with
          | _ -> det.Detector.on_commit probe
          | exception Detector.Conflict _ -> det.Detector.on_abort probe))
        unions;
      det.Detector.on_commit 1;
      (* partitions agree with the undisturbed reference *)
      List.for_all
        (fun (x, y) ->
          Union_find.same_set uf x y = Union_find.same_set reference x y)
        (List.concat_map (fun x -> List.map (fun y -> (x, y)) [ 0; 1; 2; 3; 4; 5; 6; 7 ])
           [ 0; 1; 2; 3; 4; 5; 6; 7 ]))

(* union/union commutativity decisions match the Fig. 5 condition evaluated
   on the pre-state *)
let test_union_union_condition =
  QCheck.Test.make ~name:"union/union conflicts match Fig.5 (1)" ~count:500
    QCheck.(
      make
        ~print:(fun (p, (a, b), (c, d)) ->
          Fmt.str "prefix=%d u1=(%d,%d) u2=(%d,%d)" (List.length p) a b c d)
        Gen.(
          tup3
            (list_size (int_bound 4) (pair (int_bound 7) (int_bound 7)))
            (pair (int_bound 7) (int_bound 7))
            (pair (int_bound 7) (int_bound 7))))
    (fun (prefix, (a, b), (c, d)) ->
      let uf, det, _ = mk () in
      List.iter (fun (x, y) -> ignore (Union_find.union uf x y)) prefix;
      (* ground truth BEFORE any speculative op *)
      let loser1 = Union_find.loser uf a b in
      let repc = Union_find.rep uf c and repd = Union_find.rep uf d in
      let expect_commute = repc <> loser1 && repd <> loser1 in
      ignore (invoke det uf 1 "union" [ a; b ]);
      let conflict =
        match invoke det uf 2 "union" [ c; d ] with
        | _ -> false
        | exception Detector.Conflict _ -> true
      in
      conflict = not expect_commute)

(* ------------------------------------------------------------- *)
(* Executor-level: committed histories are serializable           *)
(* ------------------------------------------------------------- *)

(* Custom union-find oracle: unions must return the same booleans, finds
   must return a representative of the same set (representative identity is
   auxiliary "hidden" state, paper §2.2), and the final partition must
   match. *)
let uf_serializable ~elements (history : Invocation.t list) ~(final : Value.t) =
  let txns = History.txns_of history in
  let replay order =
    let uf = Union_find.create () in
    ignore (Union_find.create_elements uf elements);
    let ok = ref true in
    List.iter
      (fun txn ->
        List.iter
          (fun (i : Invocation.t) ->
            if i.txn = txn && !ok then
              match (i.meth.Invocation.name, Array.to_list i.args) with
              | "union", [ a; b ] ->
                  let r = Union_find.union uf (Value.to_int a) (Value.to_int b) in
                  if not (Value.equal (Value.Bool r) i.ret) then ok := false
              | "find", [ a ] ->
                  ignore (Union_find.find uf (Value.to_int a));
                  (* the recorded return must denote the element's set in
                     the replay state (rep identity is hidden state) *)
                  if not (Union_find.same_set uf (Value.to_int a) (Value.to_int i.ret))
                  then ok := false
              | _ -> ok := false)
          history)
      order;
    !ok && Value.equal (Union_find.partition_snapshot uf) final
  in
  List.exists replay (History.permutations txns)

let test_executor_serializable =
  QCheck.Test.make ~name:"committed union-find histories are serializable"
    ~count:50
    QCheck.(
      make
        ~print:(fun l -> Fmt.str "%d txns" (List.length l))
        Gen.(
          list_size
            (int_bound 4 >|= fun n -> n + 2)
            (list_size
               (int_bound 2 >|= fun n -> n + 1)
               (oneof
                  [
                    map2 (fun a b -> ("union", [ a; b ])) (int_bound 7) (int_bound 7);
                    map (fun a -> ("find", [ a ])) (int_bound 7);
                  ]))))
    (fun txn_specs ->
      let uf, det, _ = mk () in
      let recorded = ref [] in
      let operator (txn : Txn.t) ops =
        let invs =
          List.map
            (fun (m, args) ->
              let meth =
                List.find (fun (x : Invocation.meth) -> x.name = m) Union_find.methods
              in
              let inv =
                Invocation.make ~txn:(Txn.id txn) meth
                  (Array.of_list (List.map (fun i -> Value.Int i) args))
              in
              Txn.push_undo txn (fun () -> Union_find.undo uf inv);
              ignore (det.Detector.on_invoke inv (fun () -> Union_find.exec_logged uf inv));
              inv)
            ops
        in
        recorded := !recorded @ invs;
        []
      in
      ignore (Executor.run_rounds ~processors:3 ~detector:det ~operator txn_specs);
      uf_serializable ~elements:8 !recorded
        ~final:(Union_find.partition_snapshot uf))

let suite =
  [
    Alcotest.test_case "rollback is necessary and used" `Quick
      test_rollback_necessary;
    QCheck_alcotest.to_alcotest test_rollback_restores_state;
    QCheck_alcotest.to_alcotest test_union_union_condition;
    QCheck_alcotest.to_alcotest test_executor_serializable;
  ]
