(* Tests of the speculative executors: round semantics, retry policy,
   accounting, the ParaMeter profile, and real-domain execution. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* an operator over the accumulator: each item increments once *)
let acc_operator acc det (txn : Txn.t) x =
  Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
  Txn.push_undo txn (fun () -> Accumulator.increment acc (-x));
  []

let test_all_commute () =
  (* increments all commute: one round at P >= n, zero aborts *)
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let items = List.init 10 (fun i -> i + 1) in
  let s = Executor.run_rounds ~processors:16 ~detector:det ~operator:(acc_operator acc det) items in
  check_int "one round" 1 (Executor.rounds_exn s);
  check_int "no aborts" 0 s.Executor.aborted;
  check_int "all committed" 10 s.Executor.committed;
  check_int "total" 55 (Accumulator.read acc)

let test_serialized_by_global_lock () =
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Global_lock in
  let items = List.init 10 (fun i -> i + 1) in
  let s = Executor.run_rounds ~processors:4 ~detector:det ~operator:(acc_operator acc det) items in
  (* each round admits exactly the first txn; the other three abort *)
  check_int "10 rounds" 10 (Executor.rounds_exn s);
  check_bool "aborts happened" true (s.Executor.aborted > 0);
  check_int "total correct despite aborts" 55 (Accumulator.read acc)

let test_first_in_round_commits () =
  (* progress guarantee: with the retry-at-front policy the executor always
     terminates even under a global lock at high processor counts *)
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Global_lock in
  let items = List.init 50 (fun i -> i) in
  let s =
    Executor.run_rounds ~processors:max_int ~detector:det
      ~operator:(acc_operator acc det) items
  in
  check_int "50 rounds (1 commit each)" 50 (Executor.rounds_exn s)

let test_new_work () =
  (* operator spawns a child item until a depth limit: work counted *)
  let det = Detector.none in
  let s =
    Executor.run_rounds ~processors:2 ~detector:det
      ~operator:(fun _txn d -> if d > 0 then [ d - 1 ] else [])
      [ 3; 3 ]
  in
  check_int "committed = all spawned" 8 s.Executor.committed

let test_cost_accounting () =
  let det = Detector.none in
  let s =
    Executor.run_rounds ~processors:2 ~cost:(fun x -> float_of_int x) ~detector:det
      ~operator:(fun _ _ -> [])
      [ 1; 5; 2; 2 ]
  in
  (* rounds: [1;5] [2;2]; makespan = 5 + 2 *)
  check_int "rounds" 2 (Executor.rounds_exn s);
  Alcotest.(check (float 1e-9)) "makespan" 7.0 s.Executor.makespan;
  Alcotest.(check (float 1e-9)) "total work" 10.0 s.Executor.total_work

let test_rollback_on_abort () =
  (* aborted txn's increment must be rolled back exactly once *)
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Global_lock in
  let items = [ 1; 2; 3; 4 ] in
  ignore (Executor.run_rounds ~processors:4 ~detector:det ~operator:(acc_operator acc det) items);
  check_int "sum exact" 10 (Accumulator.read acc)

(* ------------------------------------------------------------- *)
(* ParaMeter profile                                              *)
(* ------------------------------------------------------------- *)

let test_parameter_independent () =
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let p =
    Parameter.profile ~detector:det ~operator:(acc_operator acc det)
      (List.init 64 (fun i -> i))
  in
  check_int "critical path 1" 1 p.Parameter.critical_path;
  Alcotest.(check (float 1e-9)) "parallelism 64" 64.0 p.Parameter.parallelism

let test_parameter_serial () =
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Global_lock in
  let p =
    Parameter.profile ~detector:det ~operator:(acc_operator acc det)
      (List.init 16 (fun i -> i))
  in
  check_int "critical path = n" 16 p.Parameter.critical_path;
  Alcotest.(check (float 1e-9)) "parallelism 1" 1.0 p.Parameter.parallelism

(* ------------------------------------------------------------- *)
(* Domain-based executor                                          *)
(* ------------------------------------------------------------- *)

let test_domains_accumulator () =
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let items = List.init 100 (fun i -> i + 1) in
  let s =
    Executor.run_domains ~domains:3 ~detector:det
      ~operator:(fun det txn x ->
        Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
        Txn.push_undo txn (fun () -> Accumulator.increment acc (-x));
        [])
      items
  in
  check_int "all committed" 100 s.Executor.committed;
  check_int "sum" 5050 (Accumulator.read acc)

let test_domains_set_gatekeeper () =
  let set = Iset.create () in
  let det =
    Protect.protect ~spec:(Iset.precise_spec ())
      ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
      Protect.Forward_gk
  in
  let items = List.init 200 (fun i -> i mod 20) in
  let s =
    Executor.run_domains ~domains:3 ~detector:det
      ~operator:(fun det txn v ->
        let exec name (inv : Invocation.t) = Iset.exec set name inv.Invocation.args in
        ignore
          (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add
             [| Value.Int v |] (exec "add"));
        [])
      items
  in
  check_int "all eventually committed" 200 s.Executor.committed;
  check_int "20 distinct elements" 20 (Iset.cardinal set)

let test_domains_boruvka () =
  (* end-to-end concurrency check: MST on real domains with the general
     gatekeeper *)
  let open Commlat_apps in
  let mesh = Mesh.generate ~rows:6 ~cols:6 () in
  let t = Boruvka.create ~mesh () in
  let det =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
      Protect.General_gk
  in
  let s =
    Executor.run_domains ~domains:2
      ~detector:(Boruvka.full_detector t det)
      ~operator:(fun _wrapped txn item -> Boruvka.operator t det txn item)
      (List.init mesh.Mesh.nodes Fun.id)
  in
  ignore s;
  Alcotest.(check int)
    "mst weight matches kruskal"
    (Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges)
    (Boruvka.mst_weight t.Boruvka.mst)

exception Boom

let test_domains_operator_exception () =
  (* regression: a non-Conflict exception from the operator used to kill
     one worker inside its critical section while every other domain spun
     forever on [pending > 0] — this test HANGS on that code.  The fix
     rolls the poisoned transaction back, stops all workers and re-raises
     from run_domains after the domains have joined. *)
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let operator det txn x =
    Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
    Txn.push_undo txn (fun () -> Accumulator.increment acc (-x));
    if x = 13 then raise Boom;
    []
  in
  (match
     Executor.run_domains ~domains:3 ~detector:det ~operator
       (List.init 100 (fun i -> i + 1))
   with
  | _ -> Alcotest.fail "operator exception must re-raise from run_domains"
  | exception Boom -> ())

let test_domains_exception_rolls_back () =
  (* the poisoned transaction's effects must be undone before the
     exception escapes: with the poison as only work item, the shared
     state ends exactly where it started *)
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let operator det txn x =
    Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
    Txn.push_undo txn (fun () -> Accumulator.increment acc (-x));
    raise Boom
  in
  (match Executor.run_domains ~domains:2 ~detector:det ~operator [ 7 ] with
  | _ -> Alcotest.fail "operator exception must re-raise from run_domains"
  | exception Boom -> ());
  check_int "poisoned increment rolled back" 0 (Accumulator.read acc)

let suite =
  [
    Alcotest.test_case "independent txns: one round" `Quick test_all_commute;
    Alcotest.test_case "global lock serializes" `Quick test_serialized_by_global_lock;
    Alcotest.test_case "progress under max parallelism" `Quick
      test_first_in_round_commits;
    Alcotest.test_case "operator-generated work" `Quick test_new_work;
    Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
    Alcotest.test_case "rollback on abort" `Quick test_rollback_on_abort;
    Alcotest.test_case "ParaMeter: independent work" `Quick test_parameter_independent;
    Alcotest.test_case "ParaMeter: serialized work" `Quick test_parameter_serial;
    Alcotest.test_case "domains: accumulator" `Quick test_domains_accumulator;
    Alcotest.test_case "domains: set gatekeeper" `Quick test_domains_set_gatekeeper;
    Alcotest.test_case "domains: boruvka" `Quick test_domains_boruvka;
    Alcotest.test_case "domains: operator exception re-raised (no livelock)"
      `Quick test_domains_operator_exception;
    Alcotest.test_case "domains: operator exception rolls back" `Quick
      test_domains_exception_rolls_back;
  ]
