(* Tests of the key-value map ADT: spec soundness against ground truth,
   derived SIMPLE core, detectors, serializability. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let check_bool = Alcotest.(check bool)

let test_basics () =
  let t = Kvmap.create () in
  Alcotest.(check bool) "empty get" true (Kvmap.get t (Value.Int 1) = None);
  Alcotest.(check bool) "put fresh" true (Kvmap.put t (Value.Int 1) (Value.Str "a") = None);
  Alcotest.(check bool) "put replace" true
    (Kvmap.put t (Value.Int 1) (Value.Str "b") = Some (Value.Str "a"));
  Alcotest.(check int) "size" 1 (Kvmap.size t);
  Alcotest.(check bool) "remove" true
    (Kvmap.remove t (Value.Int 1) = Some (Value.Str "b"));
  Alcotest.(check int) "size 0" 0 (Kvmap.size t)

let test_undo () =
  let t = Kvmap.create () in
  ignore (Kvmap.put t (Value.Int 1) (Value.Str "a"));
  let inv = Invocation.make ~txn:1 Kvmap.m_put [| Value.Int 1; Value.Str "b" |] in
  inv.Invocation.ret <- Kvmap.exec t "put" inv.Invocation.args;
  check_bool "replaced" true (Kvmap.get t (Value.Int 1) = Some (Value.Str "b"));
  Kvmap.undo t inv;
  check_bool "restored" true (Kvmap.get t (Value.Int 1) = Some (Value.Str "a"));
  let inv2 = Invocation.make ~txn:1 Kvmap.m_remove [| Value.Int 1 |] in
  inv2.Invocation.ret <- Kvmap.exec t "remove" inv2.Invocation.args;
  Kvmap.undo t inv2;
  check_bool "remove undone" true (Kvmap.get t (Value.Int 1) = Some (Value.Str "a"))

let test_classification () =
  check_bool "precise is ONLINE" true
    (Spec.classify (Kvmap.precise_spec ()) = Formula.Online);
  check_bool "simple core is SIMPLE" true
    (Spec.classify (Kvmap.simple_spec ()) = Formula.Simple);
  check_bool "core is a strengthening" true
    (Strengthen.check_strengthening ~stronger:(Kvmap.simple_spec ())
       ~weaker:(Kvmap.precise_spec ()))

(* soundness of the precise spec against ground-truth commutativity *)
let gen_case =
  let open QCheck.Gen in
  let key = map (fun i -> Value.Int i) (int_bound 2) in
  let v = map (fun i -> Value.Str (string_of_int i)) (int_bound 1) in
  let op =
    oneof
      [
        map2 (fun k x -> ("put", [ k; x ])) key v;
        map (fun k -> ("get", [ k ])) key;
        map (fun k -> ("remove", [ k ])) key;
        return ("size", []);
      ]
  in
  QCheck.make
    ~print:(fun ((m1, _), (m2, _), prefix) ->
      Fmt.str "%s;%s after %d ops" m1 m2 (List.length prefix))
    (tup3 op op (list_size (int_bound 4) op))

let test_spec_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"kvmap precise spec is sound" ~count:2000 gen_case
       (fun ((m1, a1), (m2, a2), prefix) ->
         let spec = Kvmap.precise_spec () in
         let model = Kvmap.model () in
         model.History.reset ();
         List.iter (fun (m, args) -> ignore (model.History.apply m args)) prefix;
         let r1 = model.History.apply m1 a1 in
         let r2 = model.History.apply m2 a2 in
         let env =
           Formula.env
             ~vfun:(Spec.vfun spec)
             ~arg:(fun side i ->
               List.nth (match side with Formula.M1 -> a1 | Formula.M2 -> a2) i)
             ~ret:(function Formula.M1 -> r1 | Formula.M2 -> r2)
             ()
         in
         let cond = Formula.eval env (Spec.cond spec ~first:m1 ~second:m2) in
         (not cond)
         || History.commute_in_state model ~prefix (m1, a1) (m2, a2)))

(* serializability under the forward gatekeeper built from the precise spec *)
let test_executor_serializable =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"committed kvmap histories are serializable"
       ~count:40
       QCheck.(
         make
           ~print:(fun l -> Fmt.str "%d txns" (List.length l))
           Gen.(
             list_size
               (int_bound 4 >|= fun n -> n + 2)
               (list_size
                  (int_bound 2 >|= fun n -> n + 1)
                  (oneof
                     [
                       map2
                         (fun k v -> ("put", [| Value.Int k; Value.Int v |]))
                         (int_bound 2) (int_bound 2);
                       map (fun k -> ("get", [| Value.Int k |])) (int_bound 2);
                       map (fun k -> ("remove", [| Value.Int k |])) (int_bound 2);
                     ]))))
       (fun txn_specs ->
         let t = Kvmap.create () in
         let det =
           Protect.protect ~spec:(Kvmap.precise_spec ())
             ~adt:(Protect.adt ~hooks:(Kvmap.hooks t) ())
             Protect.Forward_gk
         in
         let recorded = ref [] in
         let operator (txn : Txn.t) ops =
           let invs =
             List.map
               (fun (m, args) ->
                 let meth =
                   List.find (fun (x : Invocation.meth) -> x.Invocation.name = m) Kvmap.methods
                 in
                 let inv = Invocation.make ~txn:(Txn.id txn) meth args in
                 if meth.Invocation.concrete then
                   Txn.push_undo txn (fun () -> Kvmap.undo t inv);
                 ignore (det.Detector.on_invoke inv (fun () -> Kvmap.exec t m inv.Invocation.args));
                 inv)
               ops
           in
           recorded := !recorded @ invs;
           []
         in
         ignore (Executor.run_rounds ~processors:3 ~detector:det ~operator txn_specs);
         let final =
           Value.List (List.map (fun (k, v) -> Value.Pair (k, v)) (Kvmap.bindings t))
         in
         History.serializable (Kvmap.model ()) ~final !recorded))

(* the derived SIMPLE core is lockable and runs *)
let test_lock_scheme () =
  let t = Kvmap.create () in
  let det =
    Protect.protect ~spec:(Kvmap.simple_spec ()) ~adt:(Protect.adt ())
      Protect.Abstract_lock
  in
  let invoke txn m args =
    let meth = List.find (fun (x : Invocation.meth) -> x.Invocation.name = m) Kvmap.methods in
    let inv = Invocation.make ~txn meth args in
    det.Detector.on_invoke inv (fun () -> Kvmap.exec t m inv.Invocation.args)
  in
  ignore (invoke 1 "put" [| Value.Int 1; Value.Str "x" |]);
  ignore (invoke 2 "put" [| Value.Int 2; Value.Str "y" |]);
  check_bool "same key conflicts" true
    (match invoke 3 "get" [| Value.Int 1 |] with
    | _ -> false
    | exception Detector.Conflict _ -> true);
  det.Detector.on_commit 1;
  det.Detector.on_commit 2;
  det.Detector.on_abort 3;
  ignore (invoke 3 "get" [| Value.Int 1 |]);
  det.Detector.on_commit 3

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "undo" `Quick test_undo;
    Alcotest.test_case "classification + derived core" `Quick test_classification;
    test_spec_sound;
    test_executor_serializable;
    Alcotest.test_case "derived lock scheme" `Quick test_lock_scheme;
  ]
