(* Tests of the observability layer (lib/obs): registry semantics, no-op
   mode, snapshot monotonicity and JSON round-trips, the executor's [?obs]
   hooks agreeing with its own stats, and the per-detector wiring
   (abstract locks, gatekeepers, STM, global lock). *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
module Obs = Commlat_obs.Obs
module Jsonx = Commlat_obs.Jsonx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------- *)
(* Registry semantics                                             *)
(* ------------------------------------------------------------- *)

let test_counters_and_dists () =
  let t = Obs.create ~enabled:true "unit" in
  let c = Obs.counter t "hits" in
  Obs.incr c;
  Obs.incr c;
  Obs.add c 3;
  check_int "counter value" 5 (Obs.value c);
  check_bool "counter registration is idempotent" true (Obs.counter t "hits" == c);
  let d = Obs.dist t "sizes" in
  List.iter (Obs.observe d) [ 0; 1; 2; 4; 4; 9 ];
  let s = Obs.snapshot t in
  check_int "snapshot counter" 5 (Obs.counter_value s "hits");
  let ds = List.assoc "sizes" s.Obs.dists in
  check_int "dist n" 6 ds.Obs.count;
  check_int "dist sum" 20 ds.Obs.sum;
  check_int "dist max" 9 ds.Obs.max;
  Obs.label t ~cat:"abort_cause" "add;add";
  Obs.label t ~cat:"abort_cause" "add;add";
  Obs.label t ~cat:"abort_cause" "add;remove";
  let s = Obs.snapshot t in
  check_int "label count" 2 (Obs.label_count s ~cat:"abort_cause" "add;add");
  check_int "label total" 3 (Obs.total_labels s ~cat:"abort_cause")

let test_disabled_registry_records_nothing () =
  let t = Obs.create ~enabled:false ~trace:8 "off" in
  let c = Obs.counter t "hits" in
  Obs.incr c;
  Obs.add c 10;
  let d = Obs.dist t "sizes" in
  Obs.observe d 42;
  Obs.label t ~cat:"abort_cause" "x";
  Obs.event t ~tag:"abort" "x";
  let s = Obs.snapshot t in
  check_int "counter stays 0" 0 (Obs.counter_value s "hits");
  check_int "dist stays empty" 0 (List.assoc "sizes" s.Obs.dists).Obs.count;
  check_bool "no labels" true (s.Obs.labels = []);
  check_bool "no events" true (s.Obs.events = [])

let test_trace_ring_bounded () =
  let t = Obs.create ~enabled:true ~trace:4 "ring" in
  for i = 1 to 10 do
    Obs.event t ~tag:"e" (string_of_int i)
  done;
  let s = Obs.snapshot t in
  check_int "only the cap is retained" 4 (List.length s.Obs.events);
  check_bool "newest events survive" true
    (List.map (fun (_, _, d) -> d) s.Obs.events = [ "7"; "8"; "9"; "10" ])

let test_snapshot_monotone () =
  let t = Obs.create ~enabled:true "mono" in
  let c = Obs.counter t "n" in
  let d = Obs.dist t "v" in
  Obs.incr c;
  Obs.observe d 3;
  let s1 = Obs.snapshot t in
  Obs.incr c;
  Obs.observe d 5;
  Obs.label t ~cat:"k" "a";
  let s2 = Obs.snapshot t in
  check_bool "s1 <= s2" true (Obs.leq s1 s2);
  check_bool "s2 </= s1" false (Obs.leq s2 s1);
  check_bool "reflexive" true (Obs.leq s2 s2)

let test_merge_sums () =
  let mk n =
    let t = Obs.create ~enabled:true "m" in
    Obs.add (Obs.counter t "c") n;
    Obs.observe (Obs.dist t "d") n;
    Obs.label t ~cat:"cat" "k";
    Obs.snapshot t
  in
  let m = Obs.merge "merged" [ mk 2; mk 5 ] in
  check_int "counters summed" 7 (Obs.counter_value m "c");
  let d = List.assoc "d" m.Obs.dists in
  check_int "dist counts summed" 2 d.Obs.count;
  check_int "dist sums summed" 7 d.Obs.sum;
  check_int "dist max is max" 5 d.Obs.max;
  check_int "labels summed" 2 (Obs.label_count m ~cat:"cat" "k")

(* ------------------------------------------------------------- *)
(* JSON round-trip                                                *)
(* ------------------------------------------------------------- *)

let rich_snapshot () =
  let t = Obs.create ~enabled:true ~trace:4 "rich" in
  Obs.add (Obs.counter t "alpha") 7;
  Obs.incr (Obs.counter t "beta");
  List.iter (Obs.observe (Obs.dist t "depths")) [ 0; 1; 17; 300 ];
  Obs.label t ~cat:"abort_cause" "union;find";
  Obs.label t ~cat:"abort_cause" "union;find";
  Obs.label t ~cat:"lock_acquire" "elem(3):write";
  Obs.event t ~tag:"abort" "w/w on cell 4";
  Obs.event t ~tag:"abort" "held elem(1)";
  Obs.snapshot t

let test_json_roundtrip () =
  let s = rich_snapshot () in
  let txt = Jsonx.to_string ~indent:2 (Obs.snapshot_to_json s) in
  match Jsonx.parse txt with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok j -> (
      check_bool "recognized as a snapshot" true (Obs.is_snapshot_json j);
      match Obs.snapshot_of_json j with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok s' -> check_bool "round-trips exactly" true (Obs.equal_snapshot s s'))

let test_json_rejects_garbage () =
  check_bool "not a snapshot" true
    (Result.is_error (Obs.snapshot_of_json (Jsonx.Obj [ ("scope", Jsonx.Int 3) ])));
  check_bool "parse error reported" true
    (Result.is_error (Jsonx.parse "{\"scope\": }"))

(* ------------------------------------------------------------- *)
(* Executor hooks                                                 *)
(* ------------------------------------------------------------- *)

let acc_operator acc det (txn : Txn.t) x =
  Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
  Txn.push_undo txn (fun () -> Accumulator.increment acc (-x));
  []

let test_executor_obs_matches_stats () =
  let obs = Obs.create ~enabled:true ~trace:8 "exec" in
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Global_lock in
  let s =
    Executor.run_rounds ~processors:4 ~obs ~detector:det
      ~operator:(acc_operator acc det)
      (List.init 12 (fun i -> i + 1))
  in
  let snap = Obs.snapshot obs in
  check_int "committed agrees" s.Executor.committed
    (Obs.counter_value snap "committed");
  check_int "aborted agrees" s.Executor.aborted (Obs.counter_value snap "aborted");
  check_int "rounds agrees" (Executor.rounds_exn s) (Obs.counter_value snap "rounds");
  check_bool "workload actually contended" true (s.Executor.aborted > 0);
  check_bool "abort events traced" true (snap.Obs.events <> []);
  let rc = List.assoc "round_commits" snap.Obs.dists in
  check_int "round_commits histogram covers every round" (Executor.rounds_exn s)
    rc.Obs.count;
  check_int "round_commits histogram sums to committed" s.Executor.committed
    rc.Obs.sum

let test_executor_domains_obs () =
  let obs = Obs.create ~enabled:true "domains" in
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let s =
    Executor.run_domains ~domains:3 ~obs ~detector:det
      ~operator:(fun det txn x -> acc_operator acc det txn x)
      (List.init 50 (fun i -> i + 1))
  in
  let snap = Obs.snapshot obs in
  check_int "committed agrees" s.Executor.committed
    (Obs.counter_value snap "committed");
  check_int "aborted agrees" s.Executor.aborted (Obs.counter_value snap "aborted");
  check_int "retries agree (one retry per abort)" s.Executor.aborted
    (Obs.counter_value snap "retries");
  (* a free-running parallel execution has no rounds: the snapshot must
     omit the round-based fields entirely, not render them as zeros *)
  check_bool "no rounds counter" false (List.mem_assoc "rounds" snap.Obs.counters);
  check_bool "no round_commits histogram" false
    (List.mem_assoc "round_commits" snap.Obs.dists);
  check_bool "no round_aborts histogram" false
    (List.mem_assoc "round_aborts" snap.Obs.dists);
  let dc = List.assoc "domain_commits" snap.Obs.dists in
  check_int "domain_commits: one sample per domain" 3 dc.Obs.count;
  check_int "domain_commits sums to committed" s.Executor.committed dc.Obs.sum

(* ------------------------------------------------------------- *)
(* Detector wiring                                                *)
(* ------------------------------------------------------------- *)

let set_operator set det (txn : Txn.t) (v : int) =
  let exec name (inv : Invocation.t) = Iset.exec set name inv.Invocation.args in
  ignore
    (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add [| Value.Int v |]
       (exec "add"));
  []

let test_global_lock_snapshot () =
  let acc = Accumulator.create () in
  let det = Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ()) Protect.Global_lock in
  let s =
    Executor.run_rounds ~processors:4 ~detector:det
      ~operator:(acc_operator acc det)
      (List.init 10 (fun i -> i + 1))
  in
  let snap = det.Detector.snapshot () in
  check_int "one acquisition per commit" s.Executor.committed
    (Obs.counter_value snap "lock_acquisitions");
  check_int "one denial per abort" s.Executor.aborted
    (Obs.counter_value snap "lock_denials");
  check_int "abort causes attributed" s.Executor.aborted
    (Obs.total_labels snap ~cat:"abort_cause")

let test_abstract_lock_snapshot () =
  (* uncontended: distinct keys, no denials *)
  let set = Iset.create () in
  let det = Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let s =
    Executor.run_rounds ~processors:4 ~detector:det
      ~operator:(set_operator set det) (List.init 30 Fun.id)
  in
  let snap = det.Detector.snapshot () in
  check_int "no aborts" 0 s.Executor.aborted;
  check_int "one acquisition per add" 30
    (Obs.counter_value snap "lock_acquisitions");
  check_int "no denials" 0 (Obs.counter_value snap "lock_denials");
  (* contended: everything hits the same key *)
  let set = Iset.create () in
  let det = Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ()) Protect.Abstract_lock in
  let s =
    Executor.run_rounds ~processors:4 ~detector:det
      ~operator:(set_operator set det)
      (List.init 20 (fun _ -> 5))
  in
  let snap = det.Detector.snapshot () in
  check_bool "contention aborts" true (s.Executor.aborted > 0);
  check_int "denials = aborts (one op per txn)" s.Executor.aborted
    (Obs.counter_value snap "lock_denials");
  check_int "abort causes recorded" s.Executor.aborted
    (Obs.total_labels snap ~cat:"abort_cause")

let test_gatekeeper_snapshot () =
  let set = Iset.create () in
  let det, gk = Gatekeeper.Private.forward ~hooks:(Iset.hooks set) (Iset.precise_spec ()) in
  let s =
    Executor.run_rounds ~processors:4 ~detector:det
      ~operator:(set_operator set det)
      (List.init 40 (fun i -> i mod 4))
  in
  let snap = det.Detector.snapshot () in
  check_int "every attempt logged" (s.Executor.committed + s.Executor.aborted)
    (Obs.counter_value snap "invocations");
  check_bool "conditions were checked" true (Obs.counter_value snap "checks" > 0);
  check_int "conflicts = aborts (one op per txn)" s.Executor.aborted
    (Obs.counter_value snap "conflicts");
  check_int "forward gatekeeper never rolls back"
    (Gatekeeper.rollback_count gk)
    (Obs.counter_value snap "rollbacks")

let test_general_gatekeeper_rollbacks () =
  (* boruvka under the general gatekeeper: the rollback counter in the
     snapshot must equal the gatekeeper's own instrumented count *)
  let open Commlat_apps in
  let mesh = Mesh.generate ~rows:8 ~cols:8 () in
  let t = Boruvka.create ~mesh () in
  let det, gk =
    Gatekeeper.Private.general ~hooks:(Union_find.hooks t.Boruvka.uf) (Union_find.spec ())
  in
  let _s =
    Executor.run_rounds ~processors:8
      ~detector:(Boruvka.full_detector t det)
      ~operator:(Boruvka.operator t det)
      (List.init mesh.Mesh.nodes Fun.id)
  in
  let snap = det.Detector.snapshot () in
  check_int "snapshot rollbacks = rollback_count"
    (Gatekeeper.rollback_count gk)
    (Obs.counter_value snap "rollbacks");
  check_bool "sweeps happened under contention" true
    (Gatekeeper.rollback_count gk > 0);
  let sweep = List.assoc "sweep_depth" snap.Obs.dists in
  check_int "one sweep-depth sample per rollback"
    (Gatekeeper.rollback_count gk) sweep.Obs.count

let test_stm_snapshot () =
  (* a toy traced one-cell ADT: every operation reads and writes cell 0,
     so concurrent transactions conflict at the memory level *)
  let tr = ref Mem_trace.null in
  let stm_det =
    (* the spec argument is ignored by the STM baseline *)
    Protect.protect ~spec:(Accumulator.spec ())
      ~adt:(Protect.adt ~connect_tracer:(fun t -> tr := t) ())
      Protect.Stm
  in
  let tracer = !tr in
  let cell = ref 0 in
  let meth = Invocation.meth "op" 0 in
  let operator (txn : Txn.t) (x : int) =
    Txn.push_undo txn (fun () -> cell := !cell - x);
    let inv = Invocation.make ~txn:(Txn.id txn) meth [||] in
    ignore
      (stm_det.Detector.on_invoke inv (fun () ->
           tracer.Mem_trace.read 0;
           let v = !cell in
           tracer.Mem_trace.write 0;
           cell := v + x;
           Value.Unit));
    []
  in
  let s =
    Executor.run_rounds ~processors:4 ~detector:stm_det ~operator
      (List.init 20 (fun i -> i + 1))
  in
  let snap = stm_det.Detector.snapshot () in
  check_int "invocations = attempts" (s.Executor.committed + s.Executor.aborted)
    (Obs.counter_value snap "invocations");
  let writes = List.assoc "write_set" snap.Obs.dists in
  check_int "one write-set sample per invocation"
    (s.Executor.committed + s.Executor.aborted)
    writes.Obs.count;
  check_bool "contention produced conflicts" true
    (Obs.counter_value snap "conflicts" > 0);
  check_bool "conflict kinds attributed" true
    (Obs.total_labels snap ~cat:"abort_cause" > 0)

let test_compose_merges_snapshots () =
  let mk () =
    Protect.protect ~spec:(Accumulator.spec ()) ~adt:(Protect.adt ())
      Protect.Global_lock
  in
  let d1 = mk () and d2 = mk () in
  let acc = Accumulator.create () in
  List.iter
    (fun det ->
      ignore
        (Executor.run_rounds ~processors:2 ~detector:det
           ~operator:(acc_operator acc det)
           (List.init 5 (fun i -> i + 1))))
    [ d1; d2 ];
  let merged = (Detector.compose [ d1; d2 ]).Detector.snapshot () in
  check_int "acquisitions summed across members"
    (Obs.counter_value (d1.Detector.snapshot ()) "lock_acquisitions"
    + Obs.counter_value (d2.Detector.snapshot ()) "lock_acquisitions")
    (Obs.counter_value merged "lock_acquisitions")

(* ------------------------------------------------------------- *)
(* No-op mode: results are identical, observation is free         *)
(* ------------------------------------------------------------- *)

let test_noop_mode_identical_results () =
  let open Commlat_apps in
  let observable (r : Set_micro.result) =
    ( r.Set_micro.stats.Executor.committed,
      r.Set_micro.stats.Executor.aborted,
      Executor.rounds_exn r.Set_micro.stats,
      r.Set_micro.abort_pct )
  in
  let run () = Set_micro.run ~threads:4 ~classes:10 ~n:2000 `Rw in
  let on = run () in
  Obs.set_default_enabled false;
  let off =
    Fun.protect ~finally:(fun () -> Obs.set_default_enabled true) run
  in
  check_bool "same committed/aborted/rounds/abort%" true
    (observable on = observable off);
  check_bool "instrumented run recorded acquisitions" true
    (Obs.counter_value on.Set_micro.snapshot "lock_acquisitions" > 0);
  check_int "disabled run recorded nothing" 0
    (Obs.counter_value off.Set_micro.snapshot "lock_acquisitions")

let suite =
  [
    Alcotest.test_case "counters, dists, labels" `Quick test_counters_and_dists;
    Alcotest.test_case "disabled registry records nothing" `Quick
      test_disabled_registry_records_nothing;
    Alcotest.test_case "trace ring is bounded" `Quick test_trace_ring_bounded;
    Alcotest.test_case "snapshots are monotone" `Quick test_snapshot_monotone;
    Alcotest.test_case "merge sums snapshots" `Quick test_merge_sums;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "executor obs = executor stats" `Quick
      test_executor_obs_matches_stats;
    Alcotest.test_case "domain executor obs = stats" `Quick
      test_executor_domains_obs;
    Alcotest.test_case "global lock wiring" `Quick test_global_lock_snapshot;
    Alcotest.test_case "abstract lock wiring" `Quick test_abstract_lock_snapshot;
    Alcotest.test_case "forward gatekeeper wiring" `Quick test_gatekeeper_snapshot;
    Alcotest.test_case "general gatekeeper rollback wiring" `Quick
      test_general_gatekeeper_rollbacks;
    Alcotest.test_case "stm wiring" `Quick test_stm_snapshot;
    Alcotest.test_case "compose merges snapshots" `Quick
      test_compose_merges_snapshots;
    Alcotest.test_case "no-op mode: identical results, zero counters" `Quick
      test_noop_mode_identical_results;
  ]
