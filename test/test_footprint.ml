(** Equality-footprint analysis ({!Commlat_core.Footprint}) over every
    shipped specification, plus runtime shard-routing checks: keyed
    invocations go to hash shards ([shard_inserts]), keyless ones to the
    overflow shard ([overflow_inserts]). *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
module Obs = Commlat_obs.Obs

let specs_dir = "../examples/specs"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load file = Spec_lang.parse (read_file (Filename.concat specs_dir file))

(* The expected footprint of every shipped spec: method -> key term (None =
   keyless, routed to the overflow shard).  [test_shipped_specs] also fails
   if a spec file exists without an entry here, so new specs must declare
   their expected footprint. *)
let expected =
  [
    ("accumulator.spec", [ ("increment", None); ("read", None) ]);
    ( "flow_graph.spec",
      (* push_flow's conditions are conjunctions of disequalities — no
         single clause makes them true, so it cannot be keyed and is
         demoted; the single-node methods then key on their node. *)
      [
        ("get_neighbors", Some "v1[0]");
        ("height", Some "v1[0]");
        ("push_flow", None);
        ("relabel_to", Some "v1[0]");
      ] );
    ( "orset.spec",
      (* add;remove offers two clauses (element and tag); the element is
         chosen for both sides *)
      [ ("add", Some "v1[0]"); ("remove", Some "v1[0]") ] );
    ( "kdtree.spec",
      [
        ("add", Some "v1[0]");
        ("remove", Some "v1[0]");
        ("contains", Some "v1[0]");
        ("nearest", None);
      ] );
    ( "kvmap.spec",
      [
        ("put", Some "v1[0]");
        ("get", Some "v1[0]");
        ("remove", Some "v1[0]");
        ("size", None);
      ] );
    ( "set.spec",
      [ ("add", Some "v1[0]"); ("remove", Some "v1[0]"); ("contains", Some "v1[0]") ]
    );
    ( "set_rw.spec",
      [ ("add", Some "v1[0]"); ("remove", Some "v1[0]"); ("contains", Some "v1[0]") ]
    );
    ("union_find.spec", [ ("union", None); ("find", None); ("create", None) ]);
    ( "triset.spec",
      (* the Delaunay worklist: the cavity footprint is the id set, so
         every method keys on its id argument *)
      [ ("take", Some "v1[0]"); ("add", Some "v1[0]"); ("contains", Some "v1[0]") ]
    );
  ]

let test_shipped_specs () =
  (* every shipped spec has an expectation *)
  Sys.readdir specs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".spec")
  |> List.iter (fun f ->
         Alcotest.(check bool)
           (f ^ " has a footprint expectation")
           true
           (List.mem_assoc f expected));
  List.iter
    (fun (file, methods) ->
      let spec = load file in
      let fp = Footprint.analyze spec in
      List.iter
        (fun (m, key) ->
          match key with
          | None ->
              Alcotest.(check bool) (file ^ ": " ^ m ^ " keyless") false
                (Footprint.keyed fp m);
              Alcotest.(check bool)
                (file ^ ": " ^ m ^ " has no key term")
                true
                (Footprint.key_term fp m = None)
          | Some term ->
              Alcotest.(check bool) (file ^ ": " ^ m ^ " keyed") true
                (Footprint.keyed fp m);
              Alcotest.(check string)
                (file ^ ": " ^ m ^ " key term")
                term
                (match Footprint.key_term fp m with
                | Some t -> Fmt.str "%a" Formula.pp_term t
                | None -> "<keyless>"))
        methods;
      Alcotest.(check bool) (file ^ " all_keyless")
        (List.for_all (fun (_, k) -> k = None) methods)
        (Footprint.all_keyless fp))
    expected

(* shard_of: keyed invocations with equal key values land in the same
   shard in [0, nshards), regardless of method; keyless ones return None. *)
let test_shard_of () =
  let spec = load "set.spec" in
  let fp = Footprint.analyze spec in
  let meth name =
    List.find (fun (m : Invocation.meth) -> m.name = name) (Spec.methods spec)
  in
  let nshards = 8 in
  for v = 0 to 99 do
    let inv m = Invocation.make ~txn:1 (meth m) [| Value.Int v |] in
    let s_add = Footprint.shard_of fp ~nshards (inv "add") in
    let s_con = Footprint.shard_of fp ~nshards (inv "contains") in
    (match s_add with
    | Some i ->
        Alcotest.(check bool) "shard in range" true (i >= 0 && i < nshards)
    | None -> Alcotest.fail "add is keyed; expected a shard");
    Alcotest.(check bool)
      (Fmt.str "add/contains of %d share a shard" v)
      true (s_add = s_con)
  done;
  (* kdtree's nearest is keyless: overflow regardless of arguments *)
  let kd = load "kdtree.spec" in
  let kfp = Footprint.analyze kd in
  let nearest =
    List.find (fun (m : Invocation.meth) -> m.name = "nearest") (Spec.methods kd)
  in
  Alcotest.(check bool) "nearest -> overflow" true
    (Footprint.shard_of kfp ~nshards (Invocation.make ~txn:1 nearest [| Value.Int 3 |])
    = None)

(* The mixed workload's union spec lives outside the .spec files (its
   prefixed method names aren't spec-lang identifiers), so its footprint
   expectations are checked here: every member method keys on the first
   argument of its unprefixed original, and the cross-structure
   commute-always pairs must not demote anything to the overflow shard. *)
let test_mixed_workload_footprint () =
  let w =
    match
      Commlat_sched.Workload.mixed ~txns:2 ~ops_per_txn:2 ~keys:2 ~seed:42
        Protect.Forward_gk
    with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let spec =
    match (w.Commlat_sched.Workload.make ()).Commlat_sched.Scheduler.spec with
    | Some s -> s
    | None -> Alcotest.fail "mixed workload must carry its union spec"
  in
  let fp = Footprint.analyze spec in
  List.iter
    (fun m ->
      Alcotest.(check bool) ("mixed: " ^ m ^ " keyed") true (Footprint.keyed fp m);
      Alcotest.(check string)
        ("mixed: " ^ m ^ " key term")
        "v1[0]"
        (match Footprint.key_term fp m with
        | Some t -> Fmt.str "%a" Formula.pp_term t
        | None -> "<keyless>"))
    [
      "a.put"; "a.get"; "a.remove"; "b.put"; "b.get"; "b.remove";
      "s.add"; "s.remove"; "s.contains";
    ];
  (* size reads the whole map: keyless in kvmap.spec, keyless here too *)
  List.iter
    (fun m ->
      Alcotest.(check bool) ("mixed: " ^ m ^ " keyless") false
        (Footprint.keyed fp m))
    [ "a.size"; "b.size" ];
  Alcotest.(check bool) "mixed: not all keyless" false (Footprint.all_keyless fp)

let counter snap name =
  match List.assoc_opt name snap.Obs.counters with Some n -> n | None -> 0

(* A keyed workload through a sharded forward gatekeeper: every insert is
   a shard insert, none overflow. *)
let test_runtime_keyed_routing () =
  let set = Iset.create () in
  let det =
    Protect.protect ~obs:true ~spec:(Iset.precise_spec ())
      ~adt:(Protect.adt ~hooks:(Iset.hooks set) ())
      (Protect.Sharded (Protect.Forward_gk, 8))
  in
  for _ = 1 to 16 do
    let txn = Txn.fresh () in
    let t = Txn.id txn in
    ignore
      (Boost.invoke det txn
         ~undo:(Iset.undo set)
         Iset.m_add
         [| Value.Int t |]
         (fun inv -> Iset.exec set "add" inv.Invocation.args));
    det.Detector.on_commit (Txn.id txn)
  done;
  let snap = det.Detector.snapshot () in
  Alcotest.(check int) "all inserts keyed" 16 (counter snap "shard_inserts");
  Alcotest.(check int) "no overflow inserts" 0 (counter snap "overflow_inserts")

(* The accumulator spec (paper Fig. 7) has no usable equality footprint:
   every invocation must land in the overflow shard. *)
let test_runtime_keyless_routing () =
  let spec = load "accumulator.spec" in
  let acc = ref 0 in
  let det, _gk =
    Gatekeeper.forward_sharded ~nshards:8 ~obs:true
      ~hooks:(Gatekeeper.hooks (fun _ _ -> Value.Unit))
      spec
  in
  let incr_m =
    List.find (fun (m : Invocation.meth) -> m.name = "increment") (Spec.methods spec)
  in
  for t = 1 to 12 do
    let txn = t in
    let inv = Invocation.make ~txn incr_m [| Value.Int t |] in
    ignore
      (det.Detector.on_invoke inv (fun () ->
           incr acc;
           Value.Unit));
    det.Detector.on_commit txn
  done;
  Alcotest.(check int) "all increments executed" 12 !acc;
  let snap = det.Detector.snapshot () in
  Alcotest.(check int) "no keyed inserts" 0 (counter snap "shard_inserts");
  Alcotest.(check int) "all in overflow shard" 12 (counter snap "overflow_inserts")

let suite =
  [
    Alcotest.test_case "shipped specs footprints" `Quick test_shipped_specs;
    Alcotest.test_case "shard_of consistency" `Quick test_shard_of;
    Alcotest.test_case "mixed workload footprints" `Quick
      test_mixed_workload_footprint;
    Alcotest.test_case "keyed workload routing" `Quick test_runtime_keyed_routing;
    Alcotest.test_case "keyless workload routing" `Quick test_runtime_keyless_routing;
  ]
