(* Tests of the object-granularity STM baseline, including the paper's
   headline contrast: path-compressed finds conflict at the memory level
   but commute semantically. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let check_bool = Alcotest.(check bool)

(* a toy traced "cell array" ADT *)
let mk_cells n =
  let cells = Array.make n 0 in
  fun (tracer : Mem_trace.t) ->
    let read i =
      tracer.Mem_trace.read i;
      cells.(i)
    in
    let write i v =
      tracer.Mem_trace.write i;
      cells.(i) <- v
    in
    (read, write)

(* the STM scheme ignores the spec; route the tracer out through
   Protect.protect as applications do *)
let stm_create () =
  let tr = ref Mem_trace.null in
  let det =
    Protect.protect
      ~spec:(Iset.exclusive_spec ())
      ~adt:(Protect.adt ~connect_tracer:(fun t -> tr := t) ())
      Protect.Stm
  in
  (det, !tr)

let meth_op = Invocation.meth "op" 0

let invoke det txn body =
  let inv = Invocation.make ~txn meth_op [||] in
  det.Detector.on_invoke inv (fun () ->
      body ();
      Value.Unit)

let test_rw_conflicts () =
  let det, tracer = stm_create () in
  let read, write = mk_cells 8 tracer in
  (* txn1 reads cell 0; txn2 writing cell 0 conflicts *)
  ignore (invoke det 1 (fun () -> ignore (read 0)));
  check_bool "w after r conflicts" true
    (match invoke det 2 (fun () -> write 0 5) with
    | _ -> false
    | exception Detector.Conflict _ -> true);
  det.Detector.on_abort 2;
  (* reader/reader share *)
  ignore (invoke det 3 (fun () -> ignore (read 0)));
  det.Detector.on_commit 1;
  det.Detector.on_commit 3;
  (* after release, the writer goes through *)
  ignore (invoke det 4 (fun () -> write 0 5));
  det.Detector.on_commit 4

let test_ww_conflicts () =
  let det, tracer = stm_create () in
  let _read, write = mk_cells 8 tracer in
  ignore (invoke det 1 (fun () -> write 1 1));
  check_bool "w/w conflicts" true
    (match invoke det 2 (fun () -> write 1 2) with
    | _ -> false
    | exception Detector.Conflict _ -> true);
  det.Detector.on_abort 2;
  (* reading a written cell conflicts *)
  let read, _ = mk_cells 8 tracer in
  check_bool "r after w conflicts" true
    (match invoke det 3 (fun () -> ignore (read 1)) with
    | _ -> false
    | exception Detector.Conflict _ -> true)

let test_same_txn_free () =
  let det, tracer = stm_create () in
  let read, write = mk_cells 8 tracer in
  ignore (invoke det 1 (fun () -> write 2 1));
  ignore (invoke det 1 (fun () -> ignore (read 2)));
  ignore (invoke det 1 (fun () -> write 2 3));
  det.Detector.on_commit 1

(* The paper's §1 motivating example: two finds on the same chain commute
   semantically (gatekeeper admits them) but path compression makes them
   collide at the memory level (STM aborts one). *)
let test_find_find_contrast () =
  let mk () =
    let uf = Union_find.create () in
    ignore (Union_find.create_elements uf 8);
    (* 3 -> 2 -> 0: element 3 is at depth two, so the first find(3)
       compresses (a concrete write) and the second find(3) reads the
       written cell *)
    ignore (Union_find.union uf 0 1);
    ignore (Union_find.union uf 2 3);
    ignore (Union_find.union uf 0 2);
    uf
  in
  (* STM: conflict *)
  let uf1 = mk () in
  let det_ml, tracer = stm_create () in
  Union_find.set_tracer uf1 tracer;
  let find det uf txn x =
    let inv = Invocation.make ~txn Union_find.m_find [| Value.Int x |] in
    ignore (det.Detector.on_invoke inv (fun () -> Union_find.exec_logged uf inv))
  in
  find det_ml uf1 1 3;
  let stm_conflict =
    match find det_ml uf1 2 3 with
    | _ -> false
    | exception Detector.Conflict _ -> true
  in
  check_bool "STM: concurrent finds conflict (path compression)" true stm_conflict;
  (* general gatekeeper: no conflict (finds always commute, Fig. 5 (4)) *)
  let uf2 = mk () in
  let det_gk =
    Protect.protect ~spec:(Union_find.spec ())
      ~adt:(Protect.adt ~hooks:(Union_find.hooks uf2) ())
      Protect.General_gk
  in
  find det_gk uf2 1 3;
  find det_gk uf2 2 3;
  det_gk.Detector.on_commit 1;
  det_gk.Detector.on_commit 2;
  check_bool "gatekeeper admits both finds" true true

(* STM-protected histories through the executor remain serializable *)
let test_stm_executor_serializable =
  QCheck.Test.make ~name:"STM-committed set histories are serializable" ~count:40
    QCheck.(
      make
        ~print:(fun l -> Fmt.str "%d txns" (List.length l))
        Gen.(
          list_size
            (int_bound 4 >|= fun n -> n + 2)
            (list_size
               (int_bound 2 >|= fun n -> n + 1)
               (pair (oneofl [ "add"; "remove"; "contains" ]) (int_bound 2)))))
    (fun txn_specs ->
      (* the hash-set impl is not traced, so wrap it in explicit cells: use
         union-find-free approach — trace the set through a cell per key *)
      let det, tracer = stm_create () in
      let set = Iset.create () in
      let recorded = ref [] in
      let operator (txn : Txn.t) ops =
        let invs =
          List.map
            (fun (m, v) ->
              let meth =
                List.find (fun (x : Invocation.meth) -> x.name = m) Iset.methods
              in
              let inv = Invocation.make ~txn:(Txn.id txn) meth [| Value.Int v |] in
              if meth.Invocation.concrete then
                Txn.push_undo txn (fun () -> Iset.undo set inv);
              ignore
                (det.Detector.on_invoke inv (fun () ->
                     (* manual per-key cell tracing *)
                     (match m with
                     | "contains" -> tracer.Mem_trace.read v
                     | _ -> tracer.Mem_trace.write v);
                     Iset.exec set m inv.Invocation.args));
              inv)
            ops
        in
        recorded := !recorded @ invs;
        []
      in
      ignore (Executor.run_rounds ~processors:3 ~detector:det ~operator txn_specs);
      History.serializable (Iset.model ())
        ~final:(Value.List (Iset.elements set))
        !recorded)

let suite =
  [
    Alcotest.test_case "read/write conflicts" `Quick test_rw_conflicts;
    Alcotest.test_case "write/write conflicts" `Quick test_ww_conflicts;
    Alcotest.test_case "same txn free" `Quick test_same_txn_free;
    Alcotest.test_case "find/find: STM conflicts, gatekeeper admits" `Quick
      test_find_find_contrast;
    QCheck_alcotest.to_alcotest test_stm_executor_serializable;
  ]
