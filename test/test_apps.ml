(* End-to-end application tests: every speculative run is validated against
   a sequential reference algorithm, across detectors and processor
   counts. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
open Commlat_apps

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------- *)
(* Generators                                                     *)
(* ------------------------------------------------------------- *)

let test_genrmf_shape () =
  let g = Genrmf.generate ~a:3 ~b:4 () in
  check_int "nodes" 36 g.Genrmf.n;
  check_int "source" 0 g.Genrmf.source;
  check_int "sink" 35 g.Genrmf.sink;
  (* 12 in-frame bidirectional pairs per frame * 4 frames * 2 directions +
     9 inter-frame * 3 gaps *)
  check_int "edges" ((12 * 4 * 2) + (9 * 3)) (List.length g.Genrmf.edges);
  (* deterministic *)
  let g' = Genrmf.generate ~a:3 ~b:4 () in
  check_bool "deterministic" true (g.Genrmf.edges = g'.Genrmf.edges)

let test_mesh_shape () =
  let m = Mesh.generate ~rows:4 ~cols:5 () in
  check_int "nodes" 20 m.Mesh.nodes;
  check_int "edges" ((4 * 4) + (3 * 5)) (Array.length m.Mesh.edges);
  (* distinct weights -> unique MST *)
  let ws = Array.to_list (Array.map (fun (_, _, w) -> w) m.Mesh.edges) in
  check_int "weights distinct" (List.length ws) (List.length (List.sort_uniq Int.compare ws))

let test_mesh_generate_invariants () =
  (* grid edge count rows*(cols-1) + (rows-1)*cols, distinct permutation
     weights, deterministic per seed *)
  List.iter
    (fun (rows, cols, seed) ->
      let m = Mesh.generate ~rows ~cols ~seed () in
      check_int "nodes" (rows * cols) m.Mesh.nodes;
      check_int "edges"
        ((rows * (cols - 1)) + ((rows - 1) * cols))
        (Array.length m.Mesh.edges);
      let ws =
        Array.to_list (Array.map (fun (_, _, w) -> w) m.Mesh.edges)
        |> List.sort compare
      in
      Alcotest.(check (list int))
        "weights are a permutation of 0..m-1"
        (List.init (Array.length m.Mesh.edges) Fun.id)
        ws;
      Array.iter
        (fun (u, v, _) ->
          check_bool "endpoints in range" true
            (u >= 0 && u < m.Mesh.nodes && v >= 0 && v < m.Mesh.nodes && u <> v))
        m.Mesh.edges;
      let m' = Mesh.generate ~rows ~cols ~seed () in
      check_bool "same seed, same mesh" true (m = m');
      let m'' = Mesh.generate ~rows ~cols ~seed:(seed + 1) () in
      check_bool "different seed, different weights" true (m <> m''))
    [ (3, 4, 1); (5, 5, 7); (2, 9, 42) ]

let test_mesh_points_invariants () =
  List.iter
    (fun (n, seed) ->
      let ps = Mesh.points ~seed ~n ~size:100.0 () in
      check_int "count" n (Array.length ps);
      Array.iter
        (fun (x, y) ->
          check_bool "inside the margin band" true
            (x >= 12.5 && x <= 87.5 && y >= 12.5 && y <= 87.5))
        ps;
      let distinct =
        Array.to_list ps |> List.sort_uniq compare |> List.length
      in
      check_int "pairwise distinct" n distinct;
      check_bool "same seed, same cloud" true (ps = Mesh.points ~seed ~n ~size:100.0 ()))
    [ (5, 11); (40, 3); (100, 42) ]

(* ------------------------------------------------------------- *)
(* Delaunay mesh refinement                                       *)
(* ------------------------------------------------------------- *)

let test_delaunay_create_is_delaunay () =
  List.iter
    (fun (n, seed) ->
      let t =
        Delaunay.create ~size:100.0 (Mesh.points ~seed ~n ~size:100.0 ())
      in
      Alcotest.(check (option string))
        (Fmt.str "n=%d seed=%d: triangulation is Delaunay" n seed)
        None
        (Delaunay.delaunay_violation t);
      check_bool "area tiles the box" true
        (Float.abs (Delaunay.area_total t -. 10000.0) < 1e-6))
    [ (4, 11); (7, 42); (12, 3); (25, 7) ]

let test_delaunay_refine_seq () =
  (* sequential refinement reaches quiescence: no refinable bad triangle
     is left, the Delaunay property holds, the box stays tiled *)
  List.iter
    (fun (n, seed) ->
      let t =
        Delaunay.create ~max_pts:128 ~size:100.0
          (Mesh.points ~seed ~n ~size:100.0 ())
      in
      Delaunay.refine_seq t;
      check_int (Fmt.str "n=%d seed=%d: no bad triangles left" n seed) 0
        (List.length (Delaunay.bad_ids t));
      Alcotest.(check (option string))
        "refined mesh is Delaunay" None
        (Delaunay.delaunay_violation t);
      check_bool "area preserved" true
        (Float.abs (Delaunay.area_total t -. 10000.0) < 1e-6);
      check_bool "liveness set mirrors the triangle table" true
        (List.sort compare (Triset.elements t.Delaunay.live)
        = List.sort compare
            (List.map fst (Delaunay.live_tris t))))
    [ (7, 42); (12, 3); (20, 7) ]

let test_delaunay_parallel_refine () =
  (* the detector-mediated operator on real domains, every scheme: same
     quiescence + Delaunay-property guarantees as sequential, with aborts
     retried *)
  List.iter
    (fun scheme ->
      let t =
        Delaunay.create ~max_pts:128 ~size:100.0
          (Mesh.points ~seed:42 ~n:12 ~size:100.0 ())
      in
      let det = Delaunay.detector ~obs:true t scheme in
      let stats = Delaunay.refine ~processors:4 ~detector:det t in
      let name = Protect.scheme_name scheme in
      check_int (name ^ ": refined to quiescence") 0
        (List.length (Delaunay.bad_ids t));
      Alcotest.(check (option string))
        (name ^ ": mesh is Delaunay") None
        (Delaunay.delaunay_violation t);
      check_bool (name ^ ": area preserved") true
        (Float.abs (Delaunay.area_total t -. 10000.0) < 1e-6);
      check_bool (name ^ ": work was committed") true
        (stats.Executor.committed > 0))
    [
      Protect.Forward_gk;
      Protect.General_gk;
      Protect.Abstract_lock;
      Protect.Global_lock;
      Protect.Sharded (Protect.Forward_gk, 8);
    ]

let test_reference_maxflow () =
  (* hand-checked: classic 6-node example *)
  let edges =
    [ (0, 1, 16); (0, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, 5, 20); (4, 5, 4) ]
  in
  check_int "CLRS maxflow" 23 (Reference.max_flow ~n:6 ~source:0 ~sink:5 edges)

let test_reference_kruskal () =
  let edges = [| (0, 1, 1); (1, 2, 2); (0, 2, 3); (2, 3, 4) |] in
  check_int "mst weight" 7 (Reference.mst_weight ~n:4 edges);
  check_int "mst edges" 3 (List.length (Reference.kruskal ~n:4 edges))

(* ------------------------------------------------------------- *)
(* Preflow-push                                                   *)
(* ------------------------------------------------------------- *)

let preflow_detector (p : Preflow_push.problem) = function
  | `Rw ->
      Protect.protect ~spec:(Flow_graph.spec_rw ()) ~adt:(Protect.adt ())
        Protect.Abstract_lock
  | `Ex ->
      Protect.protect ~spec:(Flow_graph.spec_exclusive ()) ~adt:(Protect.adt ())
        Protect.Abstract_lock
  | `Part ->
      Protect.protect
        ~spec:(Flow_graph.spec_partitioned ~nparts:32 ())
        ~adt:(Protect.adt ()) Protect.Abstract_lock
  | `Global ->
      Protect.protect ~spec:(Flow_graph.spec_rw ()) ~adt:(Protect.adt ())
        Protect.Global_lock
  | `None ->
      ignore p;
      Detector.none

let test_preflow_all_variants () =
  List.iter
    (fun (a, b, seed) ->
      let inp = Genrmf.generate ~a ~b ~seed () in
      let expected =
        Reference.max_flow ~n:inp.Genrmf.n ~source:inp.Genrmf.source
          ~sink:inp.Genrmf.sink inp.Genrmf.edges
      in
      List.iter
        (fun variant ->
          let p = Preflow_push.of_genrmf inp in
          let det = preflow_detector p variant in
          let flow, _ = Preflow_push.run ~processors:4 ~detector:det p in
          check_int (Fmt.str "flow a=%d b=%d" a b) expected flow)
        [ `Rw; `Ex; `Part; `Global; `None ])
    [ (2, 3, 1); (3, 4, 2); (2, 5, 3) ]

let test_preflow_processor_sweep () =
  let inp = Genrmf.generate ~a:3 ~b:3 ~seed:9 () in
  let expected =
    Reference.max_flow ~n:inp.Genrmf.n ~source:inp.Genrmf.source
      ~sink:inp.Genrmf.sink inp.Genrmf.edges
  in
  List.iter
    (fun procs ->
      let p = Preflow_push.of_genrmf inp in
      let det = preflow_detector p `Rw in
      let flow, _ = Preflow_push.run ~processors:procs ~detector:det p in
      check_int (Fmt.str "flow at P=%d" procs) expected flow)
    [ 1; 2; 8; 64 ]

let test_preflow_parallelism_ordering () =
  (* more precise specs admit at least as much parallelism (paper Table 1
     direction): parallelism(rw) >= parallelism(ex) on the same input *)
  let inp = Genrmf.generate ~a:3 ~b:3 ~seed:5 () in
  let prof variant =
    let p = Preflow_push.of_genrmf inp in
    let det = preflow_detector p variant in
    (Preflow_push.profile ~detector:det p).Parameter.parallelism
  in
  let rw = prof `Rw and ex = prof `Ex in
  check_bool (Fmt.str "rw (%.2f) >= ex (%.2f)" rw ex) true (rw >= ex -. 1e-9)

(* ------------------------------------------------------------- *)
(* Boruvka                                                        *)
(* ------------------------------------------------------------- *)

let boruvka_detectors (t : Boruvka.t) = function
  | `Gk ->
      Protect.protect ~spec:(Union_find.spec ())
        ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
        Protect.General_gk
  | `Ml ->
      Protect.protect ~spec:(Union_find.spec ())
        ~adt:(Protect.adt ~connect_tracer:(Union_find.set_tracer t.Boruvka.uf) ())
        Protect.Stm
  | `Global ->
      Protect.protect ~spec:(Union_find.spec ()) ~adt:(Protect.adt ())
        Protect.Global_lock
  | `None -> Detector.none

let run_boruvka mesh variant ~processors =
  let t = Boruvka.create ~mesh () in
  let det = boruvka_detectors t variant in
  let stats =
    Executor.run_rounds ~processors
      ~detector:(Boruvka.full_detector t det)
      ~operator:(Boruvka.operator t det)
      (List.init mesh.Mesh.nodes Fun.id)
  in
  (t, stats)

let test_boruvka_all_variants () =
  List.iter
    (fun (rows, cols, seed) ->
      let mesh = Mesh.generate ~rows ~cols ~seed () in
      let expected = Reference.kruskal ~n:mesh.Mesh.nodes mesh.Mesh.edges in
      let expected_w = List.fold_left (fun acc (_, _, w) -> acc + w) 0 expected in
      List.iter
        (fun variant ->
          let t, _ = run_boruvka mesh variant ~processors:4 in
          check_int "weight = kruskal" expected_w (Boruvka.mst_weight t.Boruvka.mst);
          check_int "edge count" (mesh.Mesh.nodes - 1)
            (List.length t.Boruvka.mst);
          (* weights are distinct, so the MST is unique: compare edge sets *)
          let norm es =
            List.sort compare
              (List.map (fun (u, v, w) -> (min u v, max u v, w)) es)
          in
          check_bool "same edges" true (norm t.Boruvka.mst = norm expected))
        [ `Gk; `Ml; `Global; `None ])
    [ (4, 4, 1); (5, 7, 2); (8, 3, 3) ]

let test_boruvka_processor_sweep () =
  let mesh = Mesh.generate ~rows:6 ~cols:6 ~seed:4 () in
  let expected_w = Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges in
  List.iter
    (fun procs ->
      let t, _ = run_boruvka mesh `Gk ~processors:procs in
      check_int (Fmt.str "weight at P=%d" procs) expected_w
        (Boruvka.mst_weight t.Boruvka.mst))
    [ 1; 3; 16 ]

(* ------------------------------------------------------------- *)
(* Clustering                                                     *)
(* ------------------------------------------------------------- *)

let clustering_detector (t : Clustering.t) = function
  | `Gk ->
      Protect.protect ~spec:(Kdtree.spec ())
        ~adt:(Protect.adt ~hooks:(Kdtree.hooks t.Clustering.tree) ())
        Protect.Forward_gk
  | `Ml ->
      Protect.protect ~spec:(Kdtree.spec ())
        ~adt:
          (Protect.adt ~connect_tracer:(Kdtree.set_tracer t.Clustering.tree) ())
        Protect.Stm
  | `Global ->
      Protect.protect ~spec:(Kdtree.spec ()) ~adt:(Protect.adt ())
        Protect.Global_lock
  | `None -> Detector.none

let run_clustering pts variant ~processors =
  let t = Clustering.create ~dims:2 () in
  Clustering.load t pts;
  let det = clustering_detector t variant in
  let stats =
    Executor.run_rounds ~processors ~detector:det
      ~operator:(Clustering.operator t det) (Array.to_list pts)
  in
  (t, stats)

let test_clustering_all_variants () =
  let pts = Point.random_cloud ~seed:11 ~dim:2 48 in
  List.iter
    (fun variant ->
      let t, _ = run_clustering pts variant ~processors:4 in
      check_int "n-1 merges" (Array.length pts - 1)
        (List.length t.Clustering.dendrogram);
      check_int "one cluster left" 1 (Kdtree.size t.Clustering.tree))
    [ `Gk; `Ml; `Global; `None ]

let test_clustering_deterministic_at_p1 () =
  (* at P=1 every detector admits everything, so all detectors produce the
     same dendrogram as the plain sequential run *)
  let pts = Point.random_cloud ~seed:12 ~dim:2 32 in
  let dendro variant =
    let t, _ = run_clustering pts variant ~processors:1 in
    List.rev t.Clustering.dendrogram
  in
  let base = dendro `None in
  List.iter
    (fun variant ->
      check_bool "same dendrogram" true (dendro variant = base))
    [ `Gk; `Ml; `Global ]

let test_clustering_dendrogram_validity () =
  (* each merge combines two points that were live at merge time *)
  let pts = Point.random_cloud ~seed:13 ~dim:2 40 in
  let t, _ = run_clustering pts `Gk ~processors:4 in
  (* replay the dendrogram over a naive set *)
  let live = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.replace live (Array.to_list p) ()) pts;
  List.iter
    (fun (a, b, c) ->
      check_bool "a live" true (Hashtbl.mem live (Array.to_list a));
      check_bool "b live" true (Hashtbl.mem live (Array.to_list b));
      Hashtbl.remove live (Array.to_list a);
      Hashtbl.remove live (Array.to_list b);
      Hashtbl.replace live (Array.to_list c) ())
    (List.rev t.Clustering.dendrogram);
  check_int "single survivor" 1 (Hashtbl.length live)

(* ------------------------------------------------------------- *)
(* Set microbenchmark                                             *)
(* ------------------------------------------------------------- *)

let test_set_micro_distinct_no_aborts () =
  (* paper Table 2(a): with all-distinct keys, every scheme except the
     global lock is abort-free *)
  List.iter
    (fun s ->
      let r = Set_micro.run ~threads:4 ~classes:0 ~n:400 s in
      Alcotest.(check (float 1e-9))
        (Fmt.str "%s abort-free" (Set_micro.scheme_name s))
        0.0 r.Set_micro.abort_pct)
    [ `Exclusive; `Rw; `Gatekeeper ];
  let g = Set_micro.run ~threads:4 ~classes:0 ~n:400 `Global in
  check_bool "global lock aborts" true (g.Set_micro.abort_pct > 10.0)

let test_set_micro_repeats_ordering () =
  (* paper Table 2(b): abort ratio ordering gatekeeper <= rw <= exclusive
     <= global *)
  let ratios =
    List.map
      (fun s -> (Set_micro.run ~threads:4 ~classes:10 ~n:2000 s).Set_micro.abort_pct)
      [ `Gatekeeper; `Rw; `Exclusive; `Global ]
  in
  match ratios with
  | [ gk; rw; ex; gl ] ->
      check_bool (Fmt.str "gk(%.2f) <= rw(%.2f)" gk rw) true (gk <= rw +. 1e-9);
      check_bool (Fmt.str "rw(%.2f) <= ex(%.2f)" rw ex) true (rw <= ex +. 1e-9);
      check_bool (Fmt.str "ex(%.2f) <= global(%.2f)" ex gl) true (ex <= gl +. 1e-9)
  | _ -> assert false

let test_set_micro_final_state () =
  (* the surviving set contents are exactly the keys whose adds committed:
     under any detector the final set equals the sequential result *)
  let seq = Set_micro.run ~threads:1 ~classes:10 ~n:1000 `Gatekeeper in
  ignore seq;
  (* run all schemes at P=4: final abstract state must be identical because
     the op mix is fixed: every added key ends up present *)
  let result s =
    let set = Iset.create () in
    let det = Set_micro.detector_of set s in
    let ops = Set_micro.ops ~classes:10 1000 in
    ignore
      (Executor.run_rounds ~processors:4 ~detector:det
         ~operator:(Set_micro.operator set det) ops);
    List.map Value.to_int (Iset.elements set)
  in
  let base = result `Global in
  List.iter
    (fun s -> check_bool "same final set" true (result s = base))
    [ `Exclusive; `Rw; `Gatekeeper ]

let suite =
  [
    Alcotest.test_case "genrmf shape" `Quick test_genrmf_shape;
    Alcotest.test_case "mesh shape" `Quick test_mesh_shape;
    Alcotest.test_case "reference maxflow" `Quick test_reference_maxflow;
    Alcotest.test_case "reference kruskal" `Quick test_reference_kruskal;
    Alcotest.test_case "preflow: all variants correct" `Slow test_preflow_all_variants;
    Alcotest.test_case "preflow: processor sweep" `Quick test_preflow_processor_sweep;
    Alcotest.test_case "preflow: parallelism ordering" `Quick
      test_preflow_parallelism_ordering;
    Alcotest.test_case "boruvka: all variants = kruskal" `Slow
      test_boruvka_all_variants;
    Alcotest.test_case "boruvka: processor sweep" `Quick test_boruvka_processor_sweep;
    Alcotest.test_case "clustering: all variants complete" `Slow
      test_clustering_all_variants;
    Alcotest.test_case "clustering: deterministic at P=1" `Quick
      test_clustering_deterministic_at_p1;
    Alcotest.test_case "clustering: dendrogram validity" `Quick
      test_clustering_dendrogram_validity;
    Alcotest.test_case "set-micro: distinct input abort-free" `Quick
      test_set_micro_distinct_no_aborts;
    Alcotest.test_case "set-micro: abort ordering on repeats" `Quick
      test_set_micro_repeats_ordering;
    Alcotest.test_case "set-micro: final state agreement" `Quick
      test_set_micro_final_state;
    Alcotest.test_case "mesh: generate invariants" `Quick
      test_mesh_generate_invariants;
    Alcotest.test_case "mesh: point cloud invariants" `Quick
      test_mesh_points_invariants;
    Alcotest.test_case "delaunay: construction is Delaunay" `Quick
      test_delaunay_create_is_delaunay;
    Alcotest.test_case "delaunay: sequential refinement" `Quick
      test_delaunay_refine_seq;
    Alcotest.test_case "delaunay: parallel refinement all schemes" `Quick
      test_delaunay_parallel_refine;
  ]
