(* Tests of the remaining runtime pieces: Txn, Boost, Detector.compose,
   executor edge cases and failure injection. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Txn ---------------- *)

let test_txn_rollback_order () =
  let txn = Txn.fresh () in
  let log = ref [] in
  Txn.push_undo txn (fun () -> log := 1 :: !log);
  Txn.push_undo txn (fun () -> log := 2 :: !log);
  Txn.push_undo txn (fun () -> log := 3 :: !log);
  Txn.rollback txn;
  Alcotest.(check (list int)) "newest-first" [ 1; 2; 3 ] !log;
  check_bool "status" true (Txn.status txn = Txn.Aborted);
  (* undo list cleared: a second rollback is a no-op *)
  Txn.rollback txn;
  Alcotest.(check (list int)) "no double undo" [ 1; 2; 3 ] !log

let test_txn_commit_clears () =
  let txn = Txn.fresh () in
  let fired = ref false in
  Txn.push_undo txn (fun () -> fired := true);
  Txn.commit txn;
  Txn.rollback txn;
  check_bool "commit discards undo actions" false !fired

let test_txn_ids_unique () =
  let a = Txn.fresh () and b = Txn.fresh () in
  check_bool "fresh ids differ" true (Txn.id a <> Txn.id b)

(* ---------------- Boost ---------------- *)

let test_boost_undo_on_post_exec_conflict () =
  (* a detector that always conflicts AFTER executing: Boost must have
     registered the undo beforehand so rollback reverses the effect *)
  let evil =
    {
      Detector.name = "evil";
      on_invoke =
        (fun inv exec ->
          inv.Invocation.ret <- exec ();
          Detector.conflict ~txn:inv.Invocation.txn ~with_:0 "always");
      on_commit = ignore;
      on_abort = ignore;
      reset = ignore;
      snapshot = Detector.no_snapshot;
      guards = [];
    }
  in
  let set = Iset.create () in
  let txn = Txn.fresh () in
  (match
     Boost.invoke evil txn ~undo:(Iset.undo set) Iset.m_add [| Value.Int 7 |]
       (fun inv -> Iset.exec set "add" inv.Invocation.args)
   with
  | _ -> Alcotest.fail "expected conflict"
  | exception Detector.Conflict _ -> ());
  check_bool "effect applied before rollback" true (Iset.contains set (Value.Int 7));
  Txn.rollback txn;
  check_bool "rolled back" false (Iset.contains set (Value.Int 7))

let test_boost_no_undo_when_never_executed () =
  (* pre-execution conflict (abstract locks): ret stays Unit, undo no-op *)
  let set = Iset.create () in
  let det =
    Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt:(Protect.adt ())
      Protect.Abstract_lock
  in
  let t1 = Txn.fresh () and t2 = Txn.fresh () in
  ignore
    (Boost.invoke det t1 ~undo:(Iset.undo set) Iset.m_add [| Value.Int 1 |]
       (fun inv -> Iset.exec set "add" inv.Invocation.args));
  (match
     Boost.invoke det t2 ~undo:(Iset.undo set) Iset.m_add [| Value.Int 1 |]
       (fun inv -> Iset.exec set "add" inv.Invocation.args)
   with
  | _ -> Alcotest.fail "expected conflict"
  | exception Detector.Conflict _ -> ());
  Txn.rollback t2;
  check_bool "element still present (t1's)" true (Iset.contains set (Value.Int 1))

(* ---------------- Detector.compose ---------------- *)

let test_compose () =
  let releases = ref [] in
  let mk name =
    {
      Detector.name;
      on_invoke = (fun _ exec -> exec ());
      on_commit = (fun txn -> releases := (name, `C, txn) :: !releases);
      on_abort = (fun txn -> releases := (name, `A, txn) :: !releases);
      reset = ignore;
      snapshot = Detector.no_snapshot;
      guards = [];
    }
  in
  let c = Detector.compose [ mk "a"; mk "b" ] in
  c.Detector.on_commit 7;
  c.Detector.on_abort 9;
  check_bool "both members released" true
    (List.mem ("a", `C, 7) !releases
    && List.mem ("b", `C, 7) !releases
    && List.mem ("a", `A, 9) !releases
    && List.mem ("b", `A, 9) !releases);
  Alcotest.check_raises "on_invoke rejected"
    (Invalid_argument "Detector.compose: route invocations to a member detector")
    (fun () ->
      ignore
        (c.Detector.on_invoke
           (Invocation.make ~txn:1 (Invocation.meth "m" 0) [||])
           (fun () -> Value.Unit)))

(* ---------------- executor edge cases ---------------- *)

let test_empty_worklist () =
  let s =
    Executor.run_rounds ~processors:4 ~detector:Detector.none
      ~operator:(fun _ _ -> [])
      []
  in
  check_int "no rounds" 0 (Executor.rounds_exn s);
  check_int "no commits" 0 s.Executor.committed

let test_retry_at_front () =
  (* items: A conflicts while X is active; after X commits, A runs first
     (retry-at-front) — observable through execution order *)
  let order = ref [] in
  let det =
    Protect.protect ~spec:(Iset.exclusive_spec ()) ~adt:(Protect.adt ())
      Protect.Global_lock
  in
  let operator (txn : Txn.t) item =
    order := item :: !order;
    (* touch the structure so the lock engages *)
    let inv = Invocation.make ~txn:(Txn.id txn) (Invocation.meth "op" 0) [||] in
    ignore (det.Detector.on_invoke inv (fun () -> Value.Unit));
    []
  in
  ignore (Executor.run_rounds ~processors:3 ~detector:det ~operator [ "a"; "b"; "c" ]);
  (* round 1: a commits, b and c abort; round 2 (retry at front): b first *)
  Alcotest.(check (list string))
    "execution order" [ "a"; "b"; "c"; "b"; "c"; "c" ]
    (List.rev !order)

(* failure injection: a non-Conflict exception from the operator must
   propagate (it is a bug in the operator, not speculation) *)
let test_operator_exception_propagates () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore
        (Executor.run_rounds ~processors:2 ~detector:Detector.none
           ~operator:(fun _ _ -> failwith "boom")
           [ 1 ]))

(* stats invariants on a random workload *)
let test_stats_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"executor stats invariants" ~count:100
       QCheck.(
         make
           ~print:(fun (p, items) -> Fmt.str "P=%d n=%d" p (List.length items))
           Gen.(pair (int_range 1 8) (list_size (int_bound 30) (int_bound 5))))
       (fun (p, items) ->
         let set = Iset.create () in
         let det =
           Protect.protect ~spec:(Iset.simple_spec ()) ~adt:(Protect.adt ())
             Protect.Abstract_lock
         in
         let s =
           Executor.run_rounds ~processors:p ~detector:det
             ~operator:(fun txn v ->
               ignore
                 (Boost.invoke det txn ~undo:(Iset.undo set) Iset.m_add
                    [| Value.Int v |]
                    (fun inv -> Iset.exec set "add" inv.Invocation.args));
               [])
             items
         in
         s.Executor.committed = List.length items
         && Executor.rounds_exn s >= (List.length items + p - 1) / p
         && s.Executor.makespan <= s.Executor.total_work +. 1e-9
         && Executor.parallelism s
            <= (float_of_int p +. 1e-9)))

(* ---------------- Stats helpers ---------------- *)

let test_model_runtime () =
  (* T * o / min(a, p) *)
  Alcotest.(check (float 1e-9))
    "parallelism-bound" 2.0
    (Stats.model_runtime ~t_seq:4.0 ~overhead:2.0 ~parallelism:16.0 ~processors:4);
  Alcotest.(check (float 1e-9))
    "a_d-bound" 4.0
    (Stats.model_runtime ~t_seq:4.0 ~overhead:2.0 ~parallelism:2.0 ~processors:8)

let test_mem_trace_collector () =
  let c = Mem_trace.collector () in
  c.Mem_trace.tracer.Mem_trace.read 3;
  c.Mem_trace.tracer.Mem_trace.read 3;
  c.Mem_trace.tracer.Mem_trace.write 5;
  Alcotest.(check (list int)) "reads dedup" [ 3 ] (Mem_trace.read_list c);
  Alcotest.(check (list int)) "writes" [ 5 ] (Mem_trace.write_list c);
  Mem_trace.clear c;
  Alcotest.(check (list int)) "cleared" [] (Mem_trace.read_list c)

let suite =
  [
    Alcotest.test_case "txn rollback order" `Quick test_txn_rollback_order;
    Alcotest.test_case "txn commit clears undo" `Quick test_txn_commit_clears;
    Alcotest.test_case "txn ids unique" `Quick test_txn_ids_unique;
    Alcotest.test_case "boost: undo on post-exec conflict" `Quick
      test_boost_undo_on_post_exec_conflict;
    Alcotest.test_case "boost: no effect on pre-exec conflict" `Quick
      test_boost_no_undo_when_never_executed;
    Alcotest.test_case "detector compose" `Quick test_compose;
    Alcotest.test_case "empty worklist" `Quick test_empty_worklist;
    Alcotest.test_case "retry at front policy" `Quick test_retry_at_front;
    Alcotest.test_case "operator exceptions propagate" `Quick
      test_operator_exception_propagates;
    test_stats_invariants;
    Alcotest.test_case "performance model" `Quick test_model_runtime;
    Alcotest.test_case "mem-trace collector" `Quick test_mem_trace_collector;
  ]
