(* Tests for the L1/L2/L3 formula machinery: evaluation, classification,
   mirroring, simplification, primitive-function extraction. *)

open Commlat_core
open Formula

(* A simple fixed environment: m1 = f(10, 20)/true, m2 = g(10)/false, with
   one state function "sq" squaring its argument, tagged by state. *)
let env0 =
  Formula.env
    ~sfun:(fun name state args _t ->
      match (name, state, args) with
      | "sq", S1, [ Value.Int x ] -> Value.Int (x * x)
      | "sq", S2, [ Value.Int x ] -> Value.Int (x * x * 10)
      | _ -> raise (Unsupported name))
    ~vfun:(fun name args ->
      match (name, args) with
      | "sum", [ Value.Int a; Value.Int b ] -> Value.Int (a + b)
      | _ -> raise (Unsupported name))
    ~arg:(fun side i ->
      match (side, i) with
      | M1, 0 -> Value.Int 10
      | M1, 1 -> Value.Int 20
      | M2, 0 -> Value.Int 10
      | _ -> Value.type_error "bad arg")
    ~ret:(function M1 -> Value.Bool true | M2 -> Value.Bool false)
    ()

let check_bool = Alcotest.(check bool)

let test_eval_terms () =
  check_bool "arg equality" true (eval env0 (eq (arg1 0) (arg2 0)));
  check_bool "arg inequality" true (eval env0 (ne (arg1 1) (arg2 0)));
  check_bool "ret" true (eval env0 (eq ret1 (cbool true)));
  check_bool "arith" true
    (eval env0 (eq (Arith (Add, arg1 0, arg1 1)) (cint 30)));
  check_bool "vfun" true (eval env0 (eq (vfun "sum" [ arg1 0; arg1 1 ]) (cint 30)));
  check_bool "sfun s1" true (eval env0 (eq (sfun "sq" S1 [ arg1 0 ]) (cint 100)));
  check_bool "sfun s2" true (eval env0 (eq (sfun "sq" S2 [ arg1 0 ]) (cint 1000)));
  check_bool "lt" true (eval env0 (lt (arg1 0) (arg1 1)));
  check_bool "connectives" true
    (eval env0 (Not (And (True, Or (False, Not True)))))

let test_division () =
  check_bool "int div" true (eval env0 (eq (Arith (Div, cint 7, cint 2)) (cint 3)));
  (* Division is total: x/0 = 0 for ints (no exception may escape a
     gatekeeper check mid-protocol), IEEE inf/nan for floats. *)
  check_bool "int div by zero is 0" true
    (eval env0 (eq (Arith (Div, cint 7, cint 0)) (cint 0)));
  check_bool "int div by zero, negative numerator" true
    (eval env0 (eq (Arith (Div, cint (-7), cint 0)) (cint 0)));
  check_bool "float div by zero is +inf" true
    (eval env0
       (gt
          (Arith (Div, Const (Value.Float 1.), cint 0))
          (Const (Value.Float 1e300))))

(* ---- classification ---- *)

let test_classify () =
  let simple = And (ne (arg1 0) (arg2 0), ne (Ret M1) (arg2 1)) in
  check_bool "simple" true (is_simple simple);
  check_bool "false is simple" true (is_simple False);
  check_bool "true is simple" true (is_simple True);
  (* an equality (not disequality) is not a SIMPLE clause *)
  check_bool "eq not simple" false (is_simple (eq (arg1 0) (arg2 0)));
  (* disjunction is not SIMPLE but is online-checkable when state-free *)
  let f = Or (ne (arg1 0) (arg2 0), eq ret1 (cbool false)) in
  check_bool "or not simple" false (is_simple f);
  check_bool "or online" true (is_online f);
  Alcotest.check Alcotest.string "classify or" "ONLINE-CHECKABLE"
    (Fmt.str "%a" pp_cls (classify f));
  (* s1-function of m1-only values: online *)
  let f1 = ne (sfun "loser" S1 [ arg1 0; arg1 1 ]) (arg2 0) in
  check_bool "f1 online" true (is_online f1);
  (* s1-function of an m2 value: general *)
  let fgen = ne (sfun "rep" S1 [ arg2 0 ]) (sfun "loser" S1 [ arg1 0; arg1 1 ]) in
  check_bool "general not online" false (is_online fgen);
  check_bool "general classify" true (classify fgen = General);
  (* s2-functions may use anything *)
  let f2 = eq (sfun "rep" S2 [ arg1 0 ]) (sfun "rep" S2 [ arg2 0 ]) in
  check_bool "s2 online" true (is_online f2);
  (* partition-derived clauses are SIMPLE *)
  let fp = ne (vfun "part" [ arg1 0 ]) (vfun "part" [ arg2 0 ]) in
  check_bool "partition simple" true (is_simple fp)

let test_example_spec_classes () =
  let open Commlat_adts in
  check_bool "set precise online" true
    (Spec.classify (Iset.precise_spec ()) = Online);
  check_bool "set fig3 simple" true (Spec.classify (Iset.simple_spec ()) = Simple);
  check_bool "set exclusive simple" true
    (Spec.classify (Iset.exclusive_spec ()) = Simple);
  check_bool "set partitioned simple" true
    (Spec.classify (Iset.partitioned_spec ~nparts:8 ()) = Simple);
  check_bool "accumulator simple" true (Spec.classify (Accumulator.spec ()) = Simple);
  check_bool "kdtree online" true (Spec.classify (Kdtree.spec ()) = Online);
  check_bool "kdtree not simple" false (Spec.classify (Kdtree.spec ()) = Simple);
  check_bool "union-find general" true (Spec.classify (Union_find.spec ()) = General);
  check_bool "flow rw simple" true (Spec.classify (Flow_graph.spec_rw ()) = Simple);
  check_bool "flow ex simple" true
    (Spec.classify (Flow_graph.spec_exclusive ()) = Simple);
  check_bool "flow part simple" true
    (Spec.classify (Flow_graph.spec_partitioned ~nparts:32 ()) = Simple)

(* ---- mirror ---- *)

let test_mirror () =
  let f = Or (ne (arg1 0) (arg2 0), eq ret1 (cbool false)) in
  let m = mirror f in
  check_bool "mirror shape" true
    (Formula.equal m (Or (ne (arg2 0) (arg1 0), eq ret2 (cbool false))));
  check_bool "mirror involution" true (Formula.equal (mirror m) f);
  Alcotest.check_raises "mirror rejects state"
    (Invalid_argument "Formula.mirror: state-dependent formula") (fun () ->
      ignore (mirror (ne (sfun "rep" S1 [ arg1 0 ]) (arg2 0))))

(* ---- extraction ---- *)

let test_extraction () =
  (* union-find condition (1) *)
  let cond1 =
    And
      ( ne (sfun "rep" S1 [ arg2 0 ]) (sfun "loser" S1 [ arg1 0; arg1 1 ]),
        ne (sfun "rep" S1 [ arg2 1 ]) (sfun "loser" S1 [ arg1 0; arg1 1 ]) )
  in
  let f1s = f1_functions cond1 in
  check_bool "loser is loggable" true
    (List.exists (fun (n, _, _) -> n = "loser") f1s);
  check_bool "rep(s1, m2-arg) not loggable" false
    (List.exists (fun (n, _, _) -> n = "rep") f1s);
  let rb = rollback_functions cond1 in
  check_bool "rep needs rollback" true (List.exists (fun (n, _, _) -> n = "rep") rb);
  check_bool "loser no rollback" false
    (List.exists (fun (n, _, _) -> n = "loser") rb)

(* ---- simplify preserves semantics ---- *)

(* random state-free formulas over the env above *)
let gen_formula : Formula.t QCheck.arbitrary =
  let open QCheck.Gen in
  let term =
    oneofl [ arg1 0; arg1 1; arg2 0; ret1; ret2; cint 10; cint 20; cbool true ]
  in
  let atom =
    oneof
      [
        return True;
        return False;
        map2 (fun a b -> eq a b) term term;
        map2 (fun a b -> ne a b) term term;
      ]
  in
  let rec form n =
    if n = 0 then atom
    else
      frequency
        [
          (2, atom);
          (1, map2 (fun a b -> And (a, b)) (form (n - 1)) (form (n - 1)));
          (1, map2 (fun a b -> Or (a, b)) (form (n - 1)) (form (n - 1)));
          (1, map (fun a -> Not a) (form (n - 1)));
        ]
  in
  QCheck.make ~print:Formula.to_string (form 3)

let suite =
  [
    Alcotest.test_case "eval terms" `Quick test_eval_terms;
    Alcotest.test_case "division" `Quick test_division;
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "example spec classes" `Quick test_example_spec_classes;
    Alcotest.test_case "mirror" `Quick test_mirror;
    Alcotest.test_case "C_m extraction" `Quick test_extraction;
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"simplify preserves evaluation" ~count:300
         gen_formula (fun f -> eval env0 (simplify f) = eval env0 f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mirror twice is identity (state-free)" ~count:300
         gen_formula (fun f -> Formula.equal (mirror (mirror f)) f));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"well_formed on generated formulas" ~count:300
         gen_formula well_formed);
  ]
