(* Differential tests of the spec compiler (Compile, ROADMAP item 3):
   compiled checks must be verdict- and exception-identical to the Formula
   interpreter on every input — randomized invocations over every shipped
   and file-parsed spec, reference-domain scenarios with real executed
   return values, the total division-by-zero semantics, and the
   out-of-range argument error path.  Plus Bitmat unit tests and the
   gatekeeper batch log scan. *)

open Commlat_core
open Commlat_adts
open Commlat_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------- *)
(* Bitmat                                                         *)
(* ------------------------------------------------------------- *)

let test_bitmat_basics () =
  let m = Compile.Bitmat.create 5 in
  check_int "dim" 5 (Compile.Bitmat.dim m);
  for i = 0 to 4 do
    for j = 0 to 4 do
      check_bool "fresh matrix is all-incompatible" false (Compile.Bitmat.get m i j)
    done
  done;
  Compile.Bitmat.set m 1 3 true;
  Compile.Bitmat.set m 4 0 true;
  check_bool "set bit reads back" true (Compile.Bitmat.get m 1 3);
  check_bool "matrix is directed: mirror bit untouched" false
    (Compile.Bitmat.get m 3 1);
  check_bool "other bit reads back" true (Compile.Bitmat.get m 4 0);
  Compile.Bitmat.set m 1 3 false;
  check_bool "cleared bit reads back" false (Compile.Bitmat.get m 1 3);
  check_bool "clearing one bit keeps others" true (Compile.Bitmat.get m 4 0)

let test_bitmat_of_matrix () =
  (* a random boolean matrix round-trips bit for bit, including dims that
     straddle byte boundaries *)
  let rng = Random.State.make [| 0xb17; 0x9a7 |] in
  List.iter
    (fun n ->
      let a =
        Array.init n (fun _ -> Array.init n (fun _ -> Random.State.bool rng))
      in
      let m = Compile.Bitmat.of_matrix a in
      check_int "dim" n (Compile.Bitmat.dim m);
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          check_bool
            (Fmt.str "bit (%d,%d) of %dx%d" i j n n)
            a.(i).(j)
            (Compile.Bitmat.get m i j)
        done
      done)
    [ 1; 2; 3; 7; 8; 9; 16; 33 ];
  check_bool "ragged matrix rejected" true
    (match Compile.Bitmat.of_matrix [| [| true; false |]; [| true |] |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------- *)
(* Differential harness                                           *)
(* ------------------------------------------------------------- *)

(* Verdict-or-exception-class of one evaluation.  The compiler promises
   the same class (not necessarily the same message) as the
   interpreter. *)
type outcome = V of bool | Type_err | Unsup | Other of string

let outcome f =
  match f () with
  | b -> V b
  | exception Value.Type_error _ -> Type_err
  | exception Formula.Unsupported _ -> Unsup
  | exception e -> Other (Printexc.to_string e)

let pp_outcome = function
  | V b -> string_of_bool b
  | Type_err -> "Type_error"
  | Unsup -> "Unsupported"
  | Other s -> s

let sfun_pure name _ _ _ = raise (Formula.Unsupported name)

(* The reference: the plain interpreter over an Invocation.env with no
   state oracle — exactly what Compile.check_pure promises to match. *)
let interp_outcome spec f i1 i2 =
  outcome (fun () ->
      Formula.eval (Invocation.env ~sfun:sfun_pure ~vfun:(Spec.vfun spec) i1 i2) f)

let val_pool =
  [|
    Value.Int (-1);
    Value.Int 0;
    Value.Int 1;
    Value.Int 2;
    Value.Int 7;
    Value.Bool true;
    Value.Bool false;
    Value.Opt None;
    Value.Opt (Some (Value.Int 1));
    Value.Str "k";
  |]

let rand_val rng = val_pool.(Random.State.int rng (Array.length val_pool))

let rand_inv rng ~txn (m : Invocation.meth) =
  let inv =
    Invocation.make ~txn m
      (Array.init m.Invocation.arity (fun _ -> rand_val rng))
  in
  inv.Invocation.ret <- rand_val rng;
  inv

let fail_mismatch name m1n m2n want got i1 i2 =
  Alcotest.failf "%s %s;%s: interpreter %s, compiled %s on@.  %a@.  %a" name m1n
    m2n (pp_outcome want) (pp_outcome got) Invocation.pp i1 Invocation.pp i2

(* Every ordered pair of [spec], [rounds] random invocation pairs each:
   Compile.check_pure must agree with the interpreter in verdict or
   exception class. *)
let differential ?(rounds = 60) rng name (spec : Spec.t) =
  let cspec = Compile.of_spec spec in
  let checked = ref 0 in
  List.iter
    (fun ((m1n, m2n), f) ->
      let m1 = Spec.find_meth spec m1n and m2 = Spec.find_meth spec m2n in
      let check = Compile.condition cspec ~first:m1n ~second:m2n in
      for _ = 1 to rounds do
        let i1 = rand_inv rng ~txn:1 m1 and i2 = rand_inv rng ~txn:2 m2 in
        let want = interp_outcome spec f i1 i2 in
        let got = outcome (fun () -> Compile.check_pure cspec check i1 i2) in
        incr checked;
        if want <> got then fail_mismatch name m1n m2n want got i1 i2
      done)
    (Spec.pairs spec);
  check_bool (name ^ ": exercised at least one pair") true (!checked > 0)

let shipped : (string * (unit -> Spec.t)) list =
  [
    ("iset-precise", Iset.precise_spec);
    ("iset-simple", Iset.simple_spec);
    ("iset-exclusive", Iset.exclusive_spec);
    ("iset-part4", fun () -> Iset.partitioned_spec ~nparts:4 ());
    ("accumulator", Accumulator.spec);
    ("kvmap-precise", Kvmap.precise_spec);
    ("kvmap-simple", Kvmap.simple_spec);
    ("orset", Orset.spec);
    ("union-find", Union_find.spec);
    ("kdtree", Kdtree.spec);
    ("flow-graph-rw", Flow_graph.spec_rw);
    ("flow-graph-excl", Flow_graph.spec_exclusive);
    ("flow-graph-part4", fun () -> Flow_graph.spec_partitioned ~nparts:4 ());
  ]

let test_differential_shipped () =
  let rng = Random.State.make [| 0xc0; 0x4a; 1 |] in
  List.iter (fun (name, mk) -> differential rng name (mk ())) shipped

(* Every spec file the repo ships (hand-written and synthesized) parses
   and compiles to the interpreter's semantics.  File-parsed specs carry
   no vfun interpretations, so conditions with vfuns must raise
   Unsupported identically in both engines. *)

let specs_dir =
  let rec find dir n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat dir "examples/specs/set.spec") then
      Some dir
    else find (Filename.concat dir "..") (n - 1)
  in
  find "." 6

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_differential_parsed () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let ls sub =
        let d = Filename.concat dir sub in
        if Sys.file_exists d && Sys.is_directory d then
          Sys.readdir d |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".spec")
          |> List.map (Filename.concat d)
        else []
      in
      let files =
        List.sort compare (ls "examples/specs" @ ls "examples/specs/synth")
      in
      check_bool "found shipped spec files" true (List.length files >= 10);
      let rng = Random.State.make [| 0x5eed; 2 |] in
      List.iter
        (fun path ->
          let spec = Spec_lang.parse (read_file path) in
          differential ~rounds:30 rng path spec)
        files

(* Reference-domain scenarios: arguments the bounded checkers use and
   return values produced by actually executing the methods (i1 first) on
   a reference instance — the verdicts a production gatekeeper would
   compute. *)
let test_differential_scenarios () =
  let checked = ref 0 in
  List.iter
    (fun (name, mk) ->
      let spec = mk () in
      match Domain.find (Spec.adt spec) with
      | None -> ()
      | Some dom ->
          let cspec = Compile.of_spec spec in
          List.iter
            (fun ((m1n, m2n), f) ->
              let m1 = Spec.find_meth spec m1n
              and m2 = Spec.find_meth spec m2n in
              let check = Compile.condition cspec ~first:m1n ~second:m2n in
              List.iter
                (fun (_state, setup) ->
                  List.iter
                    (fun args1 ->
                      List.iter
                        (fun args2 ->
                          let inst = dom.Domain.fresh () in
                          List.iter
                            (fun (m, args) ->
                              ignore (inst.Domain.apply m args))
                            setup;
                          let r1 = inst.Domain.apply m1n args1 in
                          let r2 = inst.Domain.apply m2n args2 in
                          let i1 =
                            Invocation.make ~txn:1 m1 (Array.of_list args1)
                          in
                          let i2 =
                            Invocation.make ~txn:2 m2 (Array.of_list args2)
                          in
                          i1.Invocation.ret <- r1;
                          i2.Invocation.ret <- r2;
                          let want = interp_outcome spec f i1 i2 in
                          let got =
                            outcome (fun () ->
                                Compile.check_pure cspec check i1 i2)
                          in
                          incr checked;
                          if want <> got then
                            fail_mismatch name m1n m2n want got i1 i2)
                        (dom.Domain.args_of m2n))
                    (dom.Domain.args_of m1n))
                dom.Domain.states)
            (Spec.pairs spec))
    shipped;
  check_bool "scenario differential is nonvacuous" true (!checked > 1000)

(* ------------------------------------------------------------- *)
(* Random state-free formulas                                     *)
(* ------------------------------------------------------------- *)

(* Structured random formulas over two 2-ary methods: arithmetic fusion,
   all six comparison operators, boolean composition, and (via the value
   pool's bools/options/strings) the interpreter's type errors.  An
   occasional out-of-range argument index exercises the bounds-check
   error path. *)

let rand_spec () =
  Spec.create ~adt:"rand" [ Invocation.meth "m" 2; Invocation.meth "n" 2 ]

let rec gen_term rng depth =
  let open Formula in
  let leaf () =
    match Random.State.int rng 10 with
    | 0 -> Arg (M1, 0)
    | 1 -> Arg (M1, 1)
    | 2 -> Arg (M2, 0)
    | 3 -> Arg (M2, 1)
    | 4 -> Ret M1
    | 5 -> Ret M2
    | 6 -> Const (Value.Int (Random.State.int rng 5 - 2))
    | 7 -> Const (Value.Bool (Random.State.bool rng))
    | 8 -> Const (Value.Opt None)
    | _ -> Arg ((if Random.State.bool rng then M1 else M2), 2 + Random.State.int rng 2)
  in
  if depth = 0 || Random.State.int rng 3 > 0 then leaf ()
  else
    let op =
      match Random.State.int rng 4 with
      | 0 -> Add
      | 1 -> Sub
      | 2 -> Mul
      | _ -> Div
    in
    Arith (op, gen_term rng (depth - 1), gen_term rng (depth - 1))

let rec gen_formula rng depth =
  let open Formula in
  let cmp () =
    let op =
      match Random.State.int rng 6 with
      | 0 -> Eq
      | 1 -> Ne
      | 2 -> Lt
      | 3 -> Le
      | 4 -> Gt
      | _ -> Ge
    in
    Cmp (op, gen_term rng 2, gen_term rng 2)
  in
  if depth = 0 then cmp ()
  else
    match Random.State.int rng 6 with
    | 0 -> True
    | 1 -> False
    | 2 -> Not (gen_formula rng (depth - 1))
    | 3 -> And (gen_formula rng (depth - 1), gen_formula rng (depth - 1))
    | 4 -> Or (gen_formula rng (depth - 1), gen_formula rng (depth - 1))
    | _ -> cmp ()

let run_check spec check i1 i2 =
  match check with
  | Compile.Static b -> b
  | Compile.Fast g -> g i1 i2
  | Compile.Interp (_, staged) ->
      staged (Invocation.env ~sfun:sfun_pure ~vfun:(Spec.vfun spec) i1 i2)

let test_differential_random_formulas () =
  let rng = Random.State.make [| 0xf0f; 3 |] in
  let spec = rand_spec () in
  let m = Spec.find_meth spec "m" and n = Spec.find_meth spec "n" in
  for _ = 1 to 500 do
    let f = gen_formula rng 3 in
    let check = Compile.compile_condition spec f in
    for _ = 1 to 20 do
      let i1 = rand_inv rng ~txn:1 m and i2 = rand_inv rng ~txn:2 n in
      let want = interp_outcome spec f i1 i2 in
      let got = outcome (fun () -> run_check spec check i1 i2) in
      if want <> got then
        Alcotest.failf "random formula %s: interpreter %s, compiled %s on@.  %a@.  %a"
          (Formula.to_string f) (pp_outcome want) (pp_outcome got)
          Invocation.pp i1 Invocation.pp i2
    done
  done

(* ------------------------------------------------------------- *)
(* Directed semantics tests                                       *)
(* ------------------------------------------------------------- *)

let inv_of spec name args =
  let inv = Invocation.make ~txn:1 (Spec.find_meth spec name) args in
  inv.Invocation.ret <- Value.Unit;
  inv

let test_div_by_zero_total () =
  let open Formula in
  let spec = rand_spec () in
  let both f i1 i2 =
    let want = interp_outcome spec f i1 i2 in
    let got =
      outcome (fun () -> run_check spec (Compile.compile_condition spec f) i1 i2)
    in
    check_bool ("agree on " ^ Formula.to_string f) true (want = got);
    want
  in
  (* x / 0 = 0, totally, for every x — the documented semantics *)
  List.iter
    (fun x ->
      let i1 = inv_of spec "m" [| Value.Int x; Value.Int 0 |] in
      let i2 = inv_of spec "n" [| Value.Int 0; Value.Int 0 |] in
      check_bool
        (Fmt.str "%d / 0 = 0 in both engines" x)
        true
        (both (eq (Arith (Div, arg1 0, cint 0)) (cint 0)) i1 i2 = V true);
      check_bool
        (Fmt.str "%d / v1[1]=0 = 0 via argument divisor" x)
        true
        (both (eq (Arith (Div, arg1 0, arg1 1)) (cint 0)) i1 i2 = V true))
    [ -3; 0; 5; max_int ];
  (* division by zero buried inside a fused arithmetic chain *)
  let i1 = inv_of spec "m" [| Value.Int 9; Value.Int 0 |] in
  let i2 = inv_of spec "n" [| Value.Int 4; Value.Int 2 |] in
  check_bool "9/0 + 1 = 1 through nested fusion" true
    (both (eq (Arith (Add, Arith (Div, arg1 0, arg1 1), cint 1)) (cint 1)) i1 i2
    = V true);
  (* a nonzero divisor still divides *)
  check_bool "4 / 2 = 2 unchanged" true
    (both (eq (Arith (Div, arg2 0, arg2 1)) (cint 2)) i1 i2 = V true)

let test_arg_out_of_range () =
  let open Formula in
  let spec = rand_spec () in
  let i1 = inv_of spec "m" [| Value.Int 1; Value.Int 2 |] in
  let i2 = inv_of spec "n" [| Value.Int 3; Value.Int 4 |] in
  List.iter
    (fun f ->
      let want = interp_outcome spec f i1 i2 in
      let got =
        outcome (fun () ->
            run_check spec (Compile.compile_condition spec f) i1 i2)
      in
      check_bool
        (Formula.to_string f ^ ": both raise Type_error")
        true
        (want = Type_err && got = Type_err))
    [
      eq (Arg (M1, 5)) (cint 0);
      eq (cint 0) (Arg (M2, 9));
      eq (Arith (Add, Arg (M1, 7), cint 1)) (cint 1);
    ]

let test_key_compilation () =
  let spec = Iset.precise_spec () in
  let inv = inv_of spec "add" [| Value.Int 42 |] in
  check_bool "compiled key term reads the argument" true
    (Value.equal (Value.Int 42) (Compile.key spec (Formula.arg1 0) inv));
  check_bool "compiled constant key" true
    (Value.equal (Value.Int 7) (Compile.key spec (Formula.cint 7) inv))

(* ------------------------------------------------------------- *)
(* Compiled-kind expectations                                     *)
(* ------------------------------------------------------------- *)

let test_kinds () =
  (* the set's precise spec is state-free: everything compiles to Fast or
     Static, nothing is left to the interpreter *)
  let c = Compile.of_spec (Iset.precise_spec ()) in
  List.iter
    (fun ((m1, m2), ch) ->
      check_bool
        (Fmt.str "set %s;%s is not interpreted" m1 m2)
        true
        (match ch with Compile.Interp _ -> false | _ -> true))
    (Compile.conditions c);
  (* union-find is state-dependent: its non-static conditions must stay on
     the interpreter *)
  let uf = Compile.of_spec (Union_find.spec ()) in
  check_bool "union-find keeps interpreted conditions" true
    (List.exists
       (fun (_, ch) -> match ch with Compile.Interp _ -> true | _ -> false)
       (Compile.conditions uf));
  (* unspecified pairs default to Static false, like Spec.cond *)
  check_bool "unknown pair is static-false" true
    (match Compile.condition c ~first:"add" ~second:"nosuch" with
    | Compile.Static false -> true
    | _ -> false);
  (* kdtree's dist vfun gets a table slot *)
  let kd = Compile.of_spec (Kdtree.spec ()) in
  check_bool "kdtree vfun table has dist" true
    (Array.exists (String.equal "dist") (Compile.vfun_names kd))

(* ------------------------------------------------------------- *)
(* Gatekeeper batch log scan                                      *)
(* ------------------------------------------------------------- *)

let test_batch_check () =
  List.iter
    (fun compiled ->
      let set = Iset.create () in
      let det, gk =
        Gatekeeper.Private.forward ~compiled ~hooks:(Iset.hooks set)
          (Iset.precise_spec ())
      in
      check_bool "is_compiled reflects the flag" compiled
        (Gatekeeper.is_compiled gk);
      (* txn 1 adds 1 through the normal invoke path; its entry stays
         active (no commit) *)
      let meth m =
        List.find (fun (x : Invocation.meth) -> x.Invocation.name = m)
          Iset.methods
      in
      let inv1 = Invocation.make ~txn:1 (meth "add") [| Value.Int 1 |] in
      ignore
        (det.Detector.on_invoke inv1 (fun () ->
             Iset.exec set "add" inv1.Invocation.args));
      (* an executed invocation checked through the batch scan directly *)
      let mk m v =
        let inv = Invocation.make ~txn:2 (meth m) [| Value.Int v |] in
        inv.Invocation.ret <- Iset.exec set m inv.Invocation.args;
        inv
      in
      check_bool
        (Fmt.str "disjoint add passes the batch scan (compiled=%b)" compiled)
        true
        (match Gatekeeper.batch_check gk (mk "add" 2) with
        | () -> true
        | exception Detector.Conflict _ -> false);
      check_bool
        (Fmt.str "remove of active element conflicts (compiled=%b)" compiled)
        true
        (match Gatekeeper.batch_check gk (mk "remove" 1) with
        | () -> false
        | exception Detector.Conflict _ -> true))
    [ false; true ]

let suite =
  [
    Alcotest.test_case "bitmat basics" `Quick test_bitmat_basics;
    Alcotest.test_case "bitmat of_matrix roundtrip" `Quick test_bitmat_of_matrix;
    Alcotest.test_case "differential: shipped specs" `Quick
      test_differential_shipped;
    Alcotest.test_case "differential: parsed spec files" `Quick
      test_differential_parsed;
    Alcotest.test_case "differential: domain scenarios" `Quick
      test_differential_scenarios;
    Alcotest.test_case "differential: random formulas" `Quick
      test_differential_random_formulas;
    Alcotest.test_case "div-by-zero is total in both engines" `Quick
      test_div_by_zero_total;
    Alcotest.test_case "arg out of range raises in both engines" `Quick
      test_arg_out_of_range;
    Alcotest.test_case "compiled key terms" `Quick test_key_compilation;
    Alcotest.test_case "compiled kinds" `Quick test_kinds;
    Alcotest.test_case "gatekeeper batch_check" `Quick test_batch_check;
  ]
