(* Tests of the partially persistent union-find and of the versioned
   general gatekeeper built on it.  The strongest property: on random
   concurrent workloads, the versioned gatekeeper makes EXACTLY the same
   conflict decisions as the rollback-based one. *)

open Commlat_core
open Commlat_adts

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* helper: a fake detector-stamped union invocation applied directly *)
let apply_union (t : Union_find_versioned.t) ~seq a b =
  let inv =
    Invocation.make ~txn:0 Union_find.m_union [| Value.Int a; Value.Int b |]
  in
  inv.Invocation.seq <- seq;
  let r = Union_find_versioned.exec_logged t inv in
  (Value.to_bool r, inv)

let test_rep_at_basics () =
  let t = Union_find_versioned.create () in
  ignore (Union_find_versioned.create_elements t 6);
  let _, _ = apply_union t ~seq:10 0 1 in
  let _, _ = apply_union t ~seq:20 2 3 in
  let _, _ = apply_union t ~seq:30 0 2 in
  (* before anything: everyone is their own rep *)
  List.iter
    (fun x -> check_int (Fmt.str "rep_at 5 %d" x) x (Union_find_versioned.rep_at t ~seq:5 x))
    [ 0; 1; 2; 3; 4; 5 ];
  (* between the first and second union *)
  check_int "rep_at 15 of 1" (Union_find_versioned.rep_at t ~seq:15 0)
    (Union_find_versioned.rep_at t ~seq:15 1);
  check_int "rep_at 15 of 3 still 3" 3 (Union_find_versioned.rep_at t ~seq:15 3);
  (* at the very seq of a union, its effect is excluded (pre-state) *)
  check_int "rep_at 10 of 1 is 1" 1 (Union_find_versioned.rep_at t ~seq:10 1);
  (* after all unions: 0,1,2,3 in one set *)
  let r = Union_find_versioned.rep_at t ~seq:100 0 in
  List.iter
    (fun x -> check_int (Fmt.str "rep_at 100 %d" x) r (Union_find_versioned.rep_at t ~seq:100 x))
    [ 1; 2; 3 ]

let test_rank_at () =
  let t = Union_find_versioned.create () in
  ignore (Union_find_versioned.create_elements t 4);
  check_int "initial rank" 0 (Union_find_versioned.rank_at t ~seq:5 0);
  let _, _ = apply_union t ~seq:10 0 1 in
  (* tie: winner's rank bumped to 1 at seq 10 *)
  check_int "rank before" 0 (Union_find_versioned.rank_at t ~seq:10 0);
  check_int "rank after" 1 (Union_find_versioned.rank_at t ~seq:11 0)

let test_undo_removes_records () =
  let t = Union_find_versioned.create () in
  ignore (Union_find_versioned.create_elements t 4);
  let _, inv = apply_union t ~seq:10 0 1 in
  check_bool "merged" true
    (Union_find_versioned.rep_at t ~seq:99 0 = Union_find_versioned.rep_at t ~seq:99 1);
  Union_find_versioned.undo t inv;
  check_bool "history gone after undo" false
    (Union_find_versioned.rep_at t ~seq:99 0 = Union_find_versioned.rep_at t ~seq:99 1);
  check_bool "live state restored" false
    (Union_find.same_set (Union_find_versioned.base t) 0 1);
  Union_find_versioned.redo t inv;
  check_bool "redo restores history" true
    (Union_find_versioned.rep_at t ~seq:99 0 = Union_find_versioned.rep_at t ~seq:99 1)

(* rep_at/loser_at agree with a replayed snapshot at every point in time *)
let test_versioned_vs_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"rep_at/rank_at agree with a replay at every stamp"
       ~count:200
       QCheck.(
         make
           ~print:(fun l -> Fmt.str "%d unions" (List.length l))
           Gen.(list_size (int_bound 15) (pair (int_bound 9) (int_bound 9))))
       (fun unions ->
         let n = 10 in
         let t = Union_find_versioned.create () in
         ignore (Union_find_versioned.create_elements t n);
         List.iteri (fun i (a, b) -> ignore (apply_union t ~seq:(i + 1) a b)) unions;
         (* for each prefix length k, replay the prefix on a fresh plain
            union-find and compare the partition implied by rep_at *)
         let rec prefix k l = if k = 0 then [] else match l with [] -> [] | x :: r -> x :: prefix (k - 1) r in
         List.for_all
           (fun k ->
             let fresh = Union_find.create () in
             ignore (Union_find.create_elements fresh n);
             List.iter (fun (a, b) -> ignore (Union_find.union fresh a b)) (prefix k unions);
             List.for_all
               (fun x ->
                 List.for_all
                   (fun y ->
                     Union_find.same_set fresh x y
                     = (Union_find_versioned.rep_at t ~seq:(k + 1) x
                        = Union_find_versioned.rep_at t ~seq:(k + 1) y))
                   (List.init n Fun.id))
               (List.init n Fun.id))
           (List.init (List.length unions + 1) Fun.id)))

(* The versioned gatekeeper decides conflicts exactly like the rollback
   one — up to and including the FIRST conflict.  Beyond it the comparison
   is ill-posed: aborting a transaction whose unions interleaved with
   admitted rank-overlapping unions leaves representative/rank "hidden
   state" (paper §2.2) that legitimately differs between execution
   mechanisms even though both remain partition-sound. *)
let test_gatekeepers_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"versioned and rollback gatekeepers agree up to the first conflict"
       ~count:300
       QCheck.(
         make
           ~print:(fun l -> Fmt.str "%d ops" (List.length l))
           Gen.(
             list_size (int_bound 20)
               (tup3 (int_bound 3 >|= fun t -> t + 1) (* txn 1..4 *)
                  (oneofl [ `Union; `Find ])
                  (pair (int_bound 9) (int_bound 9)))))
       (fun ops ->
         let n = 10 in
         let run kind =
           let results = ref [] in
           let mk_rollback () =
             let uf = Union_find.create () in
             ignore (Union_find.create_elements uf n);
             let det, _ =
               Gatekeeper.Private.general ~hooks:(Union_find.hooks uf) (Union_find.spec ())
             in
             (det, (fun inv -> Union_find.exec_logged uf inv), Union_find.undo uf)
           in
           let mk_versioned () =
             let t = Union_find_versioned.create () in
             ignore (Union_find_versioned.create_elements t n);
             let det, _ =
               Gatekeeper.Private.general
                 ~hooks:(Union_find_versioned.hooks t)
                 (Union_find.spec ())
             in
             ( det,
               (fun inv -> Union_find_versioned.exec_logged t inv),
               Union_find_versioned.undo t )
           in
           let det, exec, undo_fn =
             match kind with `R -> mk_rollback () | `V -> mk_versioned ()
           in
           ignore undo_fn;
           (try
              List.iteri
                (fun i (txn, op, (a, b)) ->
                  let meth, args =
                    match op with
                    | `Union -> (Union_find.m_union, [| Value.Int a; Value.Int b |])
                    | `Find -> (Union_find.m_find, [| Value.Int a |])
                  in
                  let inv = Invocation.make ~txn meth args in
                  match det.Detector.on_invoke inv (fun () -> exec inv) with
                  | v -> results := (i, `Ok v) :: !results
                  | exception Detector.Conflict _ ->
                      results := (i, `Conflict) :: !results;
                      raise Exit)
                ops
            with Exit -> ());
           !results
         in
         run `R = run `V))

let suite =
  [
    Alcotest.test_case "rep_at basics" `Quick test_rep_at_basics;
    Alcotest.test_case "rank_at" `Quick test_rank_at;
    Alcotest.test_case "undo/redo maintain the index" `Quick
      test_undo_removes_records;
    test_versioned_vs_replay;
    test_gatekeepers_agree;
  ]
