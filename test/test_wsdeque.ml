(* The work-stealing deque as a standalone library (lib/wsdeque): these
   tests target Commlat_wsdeque directly — the runtime re-exports it
   unchanged, and lib/sched's parallel explorer depends on it without
   pulling the rest of the runtime in. *)

open Commlat_wsdeque

let check_int = Alcotest.(check int)

let test_order () =
  let d = Wsdeque.create () in
  Wsdeque.push_back_all d [ 1; 2; 3 ];
  Wsdeque.push_front d 0;
  check_int "size" 4 (Wsdeque.size d);
  (* steal before any pop: a pop migrates the back list to the front, after
     which thieves and the owner contend on the same end *)
  Alcotest.(check (option int)) "steal takes the newest-pushed back" (Some 3)
    (Wsdeque.steal d);
  Alcotest.(check (option int)) "front pops first" (Some 0) (Wsdeque.pop d);
  Alcotest.(check (option int)) "then FIFO" (Some 1) (Wsdeque.pop d);
  Alcotest.(check (option int)) "pop drains the rest" (Some 2) (Wsdeque.pop d);
  Alcotest.(check (option int)) "empty pop" None (Wsdeque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Wsdeque.steal d);
  check_int "empty size" 0 (Wsdeque.size d)

let test_steal_falls_back_to_front () =
  let d = Wsdeque.create () in
  Wsdeque.push_front d 1;
  Alcotest.(check (option int)) "steal from front when back empty" (Some 1)
    (Wsdeque.steal d)

let test_concurrent_drain () =
  (* one producer deque, three thieves + the owner: every item taken
     exactly once *)
  let d = Wsdeque.create () in
  let n = 10_000 in
  Wsdeque.push_back_all d (List.init n Fun.id);
  let taken = Atomic.make 0 in
  let drain take () =
    let rec go () =
      match take d with
      | Some _ ->
          Atomic.incr taken;
          go ()
      | None -> ()
    in
    go ()
  in
  let ds = List.init 3 (fun _ -> Domain.spawn (drain Wsdeque.steal)) in
  drain Wsdeque.pop ();
  List.iter Domain.join ds;
  check_int "each item taken exactly once" n (Atomic.get taken);
  check_int "deque empty" 0 (Wsdeque.size d)

let test_runtime_reexport () =
  (* Commlat_runtime.Wsdeque is the same module: values flow across *)
  let d = Commlat_runtime.Wsdeque.create () in
  Commlat_runtime.Wsdeque.push_front d 9;
  Alcotest.(check (option int)) "re-export is the same deque" (Some 9)
    (Wsdeque.pop d)

let suite =
  [
    Alcotest.test_case "wsdeque: order" `Quick test_order;
    Alcotest.test_case "wsdeque: steal falls back to front" `Quick
      test_steal_falls_back_to_front;
    Alcotest.test_case "wsdeque: concurrent drain" `Quick test_concurrent_drain;
    Alcotest.test_case "wsdeque: runtime re-export" `Quick test_runtime_reexport;
  ]
