(* Tests of the abstract-locking construction (paper §3.2, Theorem 1):
   the synthesized scheme is sound AND complete w.r.t. any SIMPLE spec,
   non-SIMPLE specs are rejected, the Fig. 8 accumulator matrix comes out
   exactly, and the runtime lock table enforces two-phase behaviour. *)

open Commlat_core
open Commlat_adts

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- *)
(* Fig. 8: the accumulator worked example                         *)
(* ------------------------------------------------------------- *)

let mode_index scheme name =
  let rec go i =
    if i >= Abstract_lock.n_modes scheme then None
    else if Abstract_lock.mode_name scheme i = name then Some i
    else go (i + 1)
  in
  go 0

let test_accumulator_matrix () =
  let scheme = Abstract_lock.construct (Accumulator.spec ()) in
  let idx name =
    match mode_index scheme name with
    | Some i -> i
    | None -> Alcotest.failf "mode %s missing" name
  in
  let inc_ds = idx "increment:ds" and read_ds = idx "read:ds" in
  let inc_x = idx "increment:v1[0]" and read_ret = idx "read:r1" in
  check_bool "inc:ds X read:ds" false scheme.Abstract_lock.compat.(inc_ds).(read_ds);
  check_bool "symmetric" false scheme.Abstract_lock.compat.(read_ds).(inc_ds);
  check_bool "inc:ds ok inc:ds" true scheme.Abstract_lock.compat.(inc_ds).(inc_ds);
  check_bool "read:ds ok read:ds" true scheme.Abstract_lock.compat.(read_ds).(read_ds);
  check_bool "inc:x all ok" true
    (Array.for_all Fun.id scheme.Abstract_lock.compat.(inc_x));
  check_bool "read:ret all ok" true
    (Array.for_all Fun.id scheme.Abstract_lock.compat.(read_ret));
  (* the reduction drops the superfluous argument/return modes (Fig. 8b) *)
  let reduced = Abstract_lock.reduce scheme in
  let acqs m = Hashtbl.find reduced.Abstract_lock.acquisitions m in
  Alcotest.(check int) "increment acquires 1 lock" 1 (List.length (acqs "increment"));
  Alcotest.(check int) "read acquires 1 lock" 1 (List.length (acqs "read"))

let test_rejects_non_simple () =
  check_bool "precise set spec rejected" true
    (match Abstract_lock.construct (Iset.precise_spec ()) with
    | exception Abstract_lock.Not_simple _ -> true
    | _ -> false);
  check_bool "kdtree spec rejected" true
    (match Abstract_lock.construct (Kdtree.spec ()) with
    | exception Abstract_lock.Not_simple _ -> true
    | _ -> false)

(* ------------------------------------------------------------- *)
(* Theorem 1: soundness and completeness for SIMPLE specs         *)
(* ------------------------------------------------------------- *)

(* For a pair of freshly started transactions each performing one method
   invocation, the lock scheme conflicts iff the spec's condition is false.
   (This is the pairwise statement of soundness + completeness; longer
   histories are covered by the executor serializability tests.) *)
let lock_conflicts_iff_formula ~spec ~set (m1, a1) (m2, a2) =
  let det = Abstract_lock.Private.detector (spec ()) in
  (* fresh set per trial keeps ground truth well-defined *)
  Iset.clear set;
  ignore (Iset.add set (Value.Int 0));
  ignore (Iset.add set (Value.Int 2));
  let r1 = ref Value.Unit and r2 = ref Value.Unit in
  let invoke txn m a rref =
    let meth =
      List.find (fun (x : Invocation.meth) -> x.name = m) Iset.methods
    in
    let inv = Invocation.make ~txn meth [| a |] in
    let v = det.Detector.on_invoke inv (fun () -> Iset.exec set m inv.Invocation.args) in
    rref := v;
    v
  in
  let conflict =
    match
      ignore (invoke 1 m1 a1 r1);
      ignore (invoke 2 m2 a2 r2)
    with
    | () -> false
    | exception Detector.Conflict _ -> true
  in
  det.Detector.on_abort 1;
  det.Detector.on_abort 2;
  (* evaluate the formula on what actually happened (note: on conflict the
     second invocation still executed under locking? no — locks are checked
     BEFORE execution, so r2 is unset; the formula for SIMPLE specs only
     uses arguments, never returns) *)
  let env =
    Formula.env
      ~vfun:(Spec.vfun (spec ()))
      ~arg:(fun side _ -> match side with Formula.M1 -> a1 | Formula.M2 -> a2)
      ~ret:(function Formula.M1 -> !r1 | Formula.M2 -> !r2)
      ()
  in
  let commutes = Formula.eval env (Spec.cond (spec ()) ~first:m1 ~second:m2) in
  conflict = not commutes

let gen_pair =
  let open QCheck.Gen in
  let meth = oneofl [ "add"; "remove"; "contains" ] in
  let elt = map (fun i -> Value.Int i) (int_bound 3) in
  QCheck.make
    ~print:(fun (m1, a1, m2, a2) ->
      Fmt.str "%s(%a) vs %s(%a)" m1 Value.pp a1 m2 Value.pp a2)
    (tup4 meth elt meth elt)

let theorem1_test name specf =
  let set = Iset.create () in
  QCheck.Test.make ~name ~count:500 gen_pair (fun (m1, a1, m2, a2) ->
      lock_conflicts_iff_formula ~spec:specf ~set (m1, a1) (m2, a2))

(* ------------------------------------------------------------- *)
(* Runtime lock-table behaviour                                   *)
(* ------------------------------------------------------------- *)

let test_release_on_end () =
  let set = Iset.create () in
  let det = Abstract_lock.Private.detector (Iset.simple_spec ()) in
  let add txn v =
    let inv = Invocation.make ~txn Iset.m_add [| Value.Int v |] in
    ignore (det.Detector.on_invoke inv (fun () -> Iset.exec set "add" inv.Invocation.args))
  in
  add 1 5;
  check_bool "conflicting add blocked" true
    (match add 2 5 with () -> false | exception Detector.Conflict _ -> true);
  det.Detector.on_commit 1;
  (* after release the same key is free *)
  add 2 5;
  det.Detector.on_commit 2

let test_reentrant_same_txn () =
  let set = Iset.create () in
  let det = Abstract_lock.Private.detector (Iset.exclusive_spec ()) in
  let add txn v =
    let inv = Invocation.make ~txn Iset.m_add [| Value.Int v |] in
    ignore (det.Detector.on_invoke inv (fun () -> Iset.exec set "add" inv.Invocation.args))
  in
  (* same transaction may re-acquire its own locks *)
  add 7 1;
  add 7 1;
  det.Detector.on_commit 7

let test_partition_collisions () =
  (* two distinct keys in the same partition must conflict under the
     partitioned scheme *)
  let nparts = 2 in
  let set = Iset.create () in
  let det = Abstract_lock.Private.detector (Iset.partitioned_spec ~nparts ()) in
  (* find two ints with equal hash mod nparts but different values *)
  let k1 = 0 in
  let k2 =
    let rec go i =
      if
        i <> k1
        && Value.hash (Value.Int i) mod nparts = Value.hash (Value.Int k1) mod nparts
      then i
      else go (i + 1)
    in
    go 1
  in
  let add txn v =
    let inv = Invocation.make ~txn Iset.m_add [| Value.Int v |] in
    ignore (det.Detector.on_invoke inv (fun () -> Iset.exec set "add" inv.Invocation.args))
  in
  add 1 k1;
  check_bool "same-partition keys conflict" true
    (match add 2 k2 with () -> false | exception Detector.Conflict _ -> true);
  det.Detector.on_abort 2;
  det.Detector.on_commit 1

let test_global_lock_detector () =
  let det = Detector.Private.global_lock () in
  let touch txn =
    let inv = Invocation.make ~txn (Invocation.meth "op" 0) [||] in
    ignore (det.Detector.on_invoke inv (fun () -> Value.Unit))
  in
  touch 1;
  check_bool "second txn blocked" true
    (match touch 2 with () -> false | exception Detector.Conflict _ -> true);
  det.Detector.on_commit 1;
  touch 2

let suite =
  [
    Alcotest.test_case "Fig.8 accumulator matrix" `Quick test_accumulator_matrix;
    Alcotest.test_case "non-SIMPLE specs rejected" `Quick test_rejects_non_simple;
    QCheck_alcotest.to_alcotest
      (theorem1_test "Theorem 1 for Fig.3 (rw) locks" Iset.simple_spec);
    QCheck_alcotest.to_alcotest
      (theorem1_test "Theorem 1 for exclusive locks" Iset.exclusive_spec);
    QCheck_alcotest.to_alcotest
      (theorem1_test "Theorem 1 for partitioned locks" (fun () ->
           Iset.partitioned_spec ~nparts:2 ()));
    Alcotest.test_case "locks released on txn end" `Quick test_release_on_end;
    Alcotest.test_case "reentrant within a txn" `Quick test_reentrant_same_txn;
    Alcotest.test_case "partition collisions conflict" `Quick
      test_partition_collisions;
    Alcotest.test_case "global-lock detector" `Quick test_global_lock_detector;
  ]
