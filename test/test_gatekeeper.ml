(* Tests of forward gatekeeping (paper §3.3.1): sound AND complete w.r.t.
   its specification, implementation-agnostic (protects any concrete set
   layout), log lifecycle, and executor-level serializability. *)

open Commlat_core
open Commlat_adts
open Commlat_runtime

let check_bool = Alcotest.(check bool)

let mk_set_gk ?(impl = `Hash) () =
  let set = Iset.create ~impl () in
  let det, gk = Gatekeeper.Private.forward ~hooks:(Iset.hooks set) (Iset.precise_spec ()) in
  (set, det, gk)

let invoke det set txn m v =
  let meth = List.find (fun (x : Invocation.meth) -> x.name = m) Iset.methods in
  let inv = Invocation.make ~txn meth [| Value.Int v |] in
  det.Detector.on_invoke inv (fun () -> Iset.exec set m inv.Invocation.args)

(* ------------------------------------------------------------- *)
(* Pairwise soundness AND completeness against Fig. 2             *)
(* ------------------------------------------------------------- *)

(* The gatekeeper evaluates the precise condition directly, so for two
   transactions with one invocation each: conflict iff the condition (on
   the actual returns) is false. *)
(* Build the invocations ourselves so [inv.ret] is readable even when the
   check conflicts (the gatekeeper executes before checking). *)
let gk_matches_formula (m1, v1) (m2, v2) prefix =
  let set, det, _ = mk_set_gk () in
  List.iter (fun v -> ignore (Iset.add set (Value.Int v))) prefix;
  let meth m = List.find (fun (x : Invocation.meth) -> x.name = m) Iset.methods in
  let inv1 = Invocation.make ~txn:1 (meth m1) [| Value.Int v1 |] in
  ignore (det.Detector.on_invoke inv1 (fun () -> Iset.exec set m1 inv1.Invocation.args));
  let inv2 = Invocation.make ~txn:2 (meth m2) [| Value.Int v2 |] in
  let conflict =
    match det.Detector.on_invoke inv2 (fun () -> Iset.exec set m2 inv2.Invocation.args) with
    | _ -> false
    | exception Detector.Conflict _ -> true
  in
  let spec = Iset.precise_spec () in
  let env =
    Formula.env
      ~vfun:(Spec.vfun spec)
      ~arg:(fun side _ ->
        match side with
        | Formula.M1 -> Value.Int v1
        | Formula.M2 -> Value.Int v2)
      ~ret:(function
        | Formula.M1 -> inv1.Invocation.ret
        | Formula.M2 -> inv2.Invocation.ret)
      ()
  in
  let commutes = Formula.eval env (Spec.cond spec ~first:m1 ~second:m2) in
  conflict = not commutes

let gen_case =
  let open QCheck.Gen in
  let meth = oneofl [ "add"; "remove"; "contains" ] in
  let elt = int_bound 2 in
  QCheck.make
    ~print:(fun (m1, v1, m2, v2, prefix) ->
      Fmt.str "%s(%d); %s(%d) prefix=%a" m1 v1 m2 v2 Fmt.(Dump.list int) prefix)
    (tup5 meth elt meth elt (list_size (int_bound 3) (int_bound 2)))

let test_gk_precise =
  QCheck.Test.make ~name:"forward gatekeeper = precise condition (sound+complete)"
    ~count:800 gen_case (fun (m1, v1, m2, v2, prefix) ->
      gk_matches_formula (m1, v1) (m2, v2) prefix)

(* completeness witness the paper highlights: concurrent non-mutating adds
   of the same element proceed under the gatekeeper (but not under locks) *)
let test_double_add_admitted () =
  let set, det, _ = mk_set_gk () in
  ignore (Iset.add set (Value.Int 1));
  ignore (invoke det set 1 "add" 1);
  (* second txn's add of the same (present) element: commutes per Fig. 2 *)
  ignore (invoke det set 2 "add" 1);
  det.Detector.on_commit 1;
  det.Detector.on_commit 2;
  check_bool "both proceeded" true true

let test_mutating_add_conflicts () =
  let set, det, _ = mk_set_gk () in
  ignore (invoke det set 1 "add" 1);
  check_bool "mutating double add conflicts" true
    (match invoke det set 2 "add" 1 with
    | _ -> false
    | exception Detector.Conflict _ -> true)

(* same txn never self-conflicts *)
let test_same_txn () =
  let set, det, _ = mk_set_gk () in
  ignore (invoke det set 1 "add" 1);
  ignore (invoke det set 1 "remove" 1);
  ignore (invoke det set 1 "add" 1);
  det.Detector.on_commit 1;
  check_bool "ok" true true

(* logs removed on txn end: the blocked op succeeds afterwards *)
let test_log_lifecycle () =
  let set, det, gk = mk_set_gk () in
  ignore (invoke det set 1 "add" 1);
  check_bool "blocked while t1 active" true
    (match invoke det set 2 "remove" 1 with
    | _ -> false
    | exception Detector.Conflict _ -> true);
  det.Detector.on_abort 2;
  det.Detector.on_commit 1;
  ignore (invoke det set 2 "remove" 1);
  det.Detector.on_commit 2;
  Alcotest.(check int) "no leftover rollbacks" 0 (Gatekeeper.rollback_count gk)

(* the same gatekeeper construction protects the linked-list implementation
   identically (paper: gatekeepers see the ADT as a black box) *)
let test_impl_agnostic =
  QCheck.Test.make ~name:"gatekeeper behaviour identical across set impls"
    ~count:300 gen_case (fun (m1, v1, m2, v2, prefix) ->
      let run impl =
        let set, det, _ = mk_set_gk ~impl () in
        List.iter (fun v -> ignore (Iset.add set (Value.Int v))) prefix;
        let a = try Some (Value.to_bool (invoke det set 1 m1 v1)) with _ -> None in
        let b = try Some (Value.to_bool (invoke det set 2 m2 v2)) with Detector.Conflict _ -> None in
        (a, b, List.sort Value.compare (Iset.elements set))
      in
      run `Hash = run `List)

let test_forward_rejects_general () =
  let uf = Union_find.create () in
  check_bool "union-find spec needs general gatekeeper" true
    (match Gatekeeper.Private.forward ~hooks:(Union_find.hooks uf) (Union_find.spec ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------- *)
(* Executor-level serializability under the gatekeeper            *)
(* ------------------------------------------------------------- *)

(* Random multi-op transactions on a shared set through the bulk-
   synchronous executor; every committed history must be serializable. *)
let test_executor_serializable =
  QCheck.Test.make ~name:"committed gatekeeper histories are serializable"
    ~count:60
    QCheck.(
      make
        ~print:(fun ops ->
          Fmt.str "%d txns" (List.length ops))
        Gen.(
          list_size (int_bound 6 >|= fun n -> n + 2)
            (list_size (int_bound 3 >|= fun n -> n + 1)
               (pair (oneofl [ "add"; "remove"; "contains" ]) (int_bound 2)))))
    (fun txn_specs ->
      let set, det, _ = mk_set_gk () in
      let recorded : Invocation.t list ref = ref [] in
      let recorded_txns = ref [] in
      let operator (txn : Txn.t) ops =
        let invs =
          List.map
            (fun (m, v) ->
              let meth =
                List.find (fun (x : Invocation.meth) -> x.name = m) Iset.methods
              in
              let inv = Invocation.make ~txn:(Txn.id txn) meth [| Value.Int v |] in
              if meth.Invocation.concrete then
                Txn.push_undo txn (fun () -> Iset.undo set inv);
              ignore (det.Detector.on_invoke inv (fun () -> Iset.exec set m inv.Invocation.args));
              inv)
            ops
        in
        recorded := !recorded @ invs;
        recorded_txns := Txn.id txn :: !recorded_txns;
        []
      in
      let _stats =
        Executor.run_rounds ~processors:3 ~detector:det ~operator txn_specs
      in
      (* keep only committed transactions' invocations: retried txns appear
         multiple times; the executor assigns a fresh txn id per attempt and
         recorded was appended inside the operator even for attempts that
         later conflicted... an attempt that conflicts raises BEFORE the
         operator returns, so its invs were never appended.  Partially
         executed invocations of aborted attempts were rolled back. *)
      let final = Value.List (Iset.elements set) in
      History.serializable (Iset.model ()) ~final !recorded)

(* ------------------------------------------------------------- *)
(* C_m construction                                               *)
(* ------------------------------------------------------------- *)

(* Pin the C_m log sets computed from the union-find spec: [loser(a,b)]
   appears in both the (union,union) and (union,find) conditions but must
   be logged exactly ONCE per union invocation (the dedup used to be
   quadratic List.mem; this pins the hash-set rewrite to the same
   contents).  [rep(s1, arg2 ...)] mentions m2, so it is a rollback
   function, never part of C_m. *)
let test_cm_union_find () =
  let uf = Union_find.create () in
  let _det, gk =
    Gatekeeper.Private.general ~hooks:(Union_find.hooks uf) (Union_find.spec ())
  in
  let open Formula in
  Alcotest.(check bool)
    "C_union = { loser(arg1 0, arg1 1) }" true
    (Gatekeeper.cm_functions gk "union" = [ ("loser", [ arg1 0; arg1 1 ]) ]);
  Alcotest.(check bool)
    "C_find = {} (find's conditions need only ret1 or rollback fns)" true
    (Gatekeeper.cm_functions gk "find" = []);
  Alcotest.(check bool)
    "C_create = {}" true
    (Gatekeeper.cm_functions gk "create" = []);
  Alcotest.(check bool)
    "unknown method has empty C_m" true
    (Gatekeeper.cm_functions gk "no_such_method" = [])

(* ------------------------------------------------------------- *)
(* Live-state transfer (detector hot-swap)                        *)
(* ------------------------------------------------------------- *)

(* [active_invocations] + [adopt] move open transactions from one
   gatekeeper to a freshly built successor over the same ADT: conflicts
   the predecessor would report must keep being reported after the
   move, and commits through the successor must release them. *)
let test_adopt_open_txns () =
  let set, det_a, gk_a = mk_set_gk () in
  ignore (invoke det_a set 1 "add" 1);
  ignore (invoke det_a set 2 "add" 2);
  let invs = Gatekeeper.active_invocations gk_a in
  Alcotest.(check int) "two open invocations" 2 (List.length invs);
  check_bool "active list is in execution order" true
    (List.map (fun (i : Invocation.t) -> i.txn) invs = [ 1; 2 ]);
  (* successor over the same live set; give it activity of its own FIRST
     so restamping provably appends after existing seqs *)
  let det_b, gk_b =
    Gatekeeper.Private.forward ~hooks:(Iset.hooks set) (Iset.precise_spec ())
  in
  ignore (invoke det_b set 10 "contains" 0);
  Gatekeeper.adopt gk_b invs;
  check_bool "restamp preserves relative order, after own entries" true
    (List.map
       (fun (i : Invocation.t) -> i.txn)
       (Gatekeeper.active_invocations gk_b)
    = [ 10; 1; 2 ]);
  (* the adopted add(1) still blocks a remove(1) from another txn *)
  check_bool "adopted invocation still conflicts" true
    (match invoke det_b set 3 "remove" 1 with
    | _ -> false
    | exception Detector.Conflict _ -> true);
  det_b.Detector.on_abort 3;
  (* committing THROUGH the successor releases the adopted entry *)
  det_b.Detector.on_commit 1;
  ignore (invoke det_b set 3 "remove" 1);
  det_b.Detector.on_commit 3;
  det_b.Detector.on_commit 2;
  det_b.Detector.on_commit 10;
  check_bool "no entries left after all commits" true
    (Gatekeeper.active_invocations gk_b = [])

(* The same transfer across the striped/coarse boundary, in all four
   directions: a striped successor re-shards adopted entries by footprint
   (and re-homes rollback_log methods into per-shard mutation logs); the
   conflicts reported must be identical whichever representations the
   predecessor and successor use. *)
let test_adopt_striped_coarse () =
  let mk_coarse set =
    Gatekeeper.Private.forward ~hooks:(Iset.hooks set) (Iset.precise_spec ())
  and mk_striped set =
    Gatekeeper.forward_sharded ~nshards:4 ~hooks:(Iset.hooks set)
      (Iset.precise_spec ())
  in
  let scenario mk_from mk_to =
    let set = Iset.create () in
    let det_a, gk_a = mk_from set in
    let inv det txn m v =
      let meth = List.find (fun (x : Invocation.meth) -> x.name = m) Iset.methods in
      let i = Invocation.make ~txn meth [| Value.Int v |] in
      det.Detector.on_invoke i (fun () -> Iset.exec set m i.Invocation.args)
    in
    (* open mutations landing in distinct footprint shards *)
    ignore (inv det_a 1 "add" 1);
    ignore (inv det_a 1 "add" 5);
    ignore (inv det_a 2 "add" 2);
    let det_b, gk_b = mk_to set in
    Gatekeeper.adopt gk_b (Gatekeeper.active_invocations gk_a);
    let outcome txn m v =
      match inv det_b txn m v with
      | _ -> det_b.Detector.on_abort txn; `Ok
      | exception Detector.Conflict _ -> det_b.Detector.on_abort txn; `Conflict
    in
    let probes =
      [ outcome 7 "remove" 1; outcome 8 "remove" 2; outcome 9 "contains" 3;
        outcome 11 "add" 5 ]
    in
    det_b.Detector.on_commit 1;
    det_b.Detector.on_commit 2;
    let after = [ outcome 12 "remove" 1; outcome 13 "remove" 2 ] in
    (probes, after, List.sort Value.compare (Iset.elements set))
  in
  let reference = scenario mk_coarse mk_coarse in
  check_bool "probes conflict while adopted txns are open" true
    (let probes, _, _ = reference in
     probes = [ `Conflict; `Conflict; `Ok; `Conflict ]);
  check_bool "probes pass once adopted txns commit" true
    (let _, after, _ = reference in
     after = [ `Ok; `Ok ]);
  List.iter
    (fun (name, mk_from, mk_to) ->
      check_bool name true (scenario mk_from mk_to = reference))
    [
      ("coarse->striped", mk_coarse, mk_striped);
      ("striped->coarse", mk_striped, mk_coarse);
      ("striped->striped", mk_striped, mk_striped);
    ]

let suite =
  [
    QCheck_alcotest.to_alcotest test_gk_precise;
    Alcotest.test_case "non-mutating double add admitted" `Quick
      test_double_add_admitted;
    Alcotest.test_case "mutating double add conflicts" `Quick
      test_mutating_add_conflicts;
    Alcotest.test_case "same txn never self-conflicts" `Quick test_same_txn;
    Alcotest.test_case "log lifecycle" `Quick test_log_lifecycle;
    QCheck_alcotest.to_alcotest test_impl_agnostic;
    Alcotest.test_case "forward rejects GENERAL specs" `Quick
      test_forward_rejects_general;
    QCheck_alcotest.to_alcotest test_executor_serializable;
    Alcotest.test_case "C_m pinned for union-find" `Quick test_cm_union_find;
    Alcotest.test_case "adopt: open txns transfer between gatekeepers" `Quick
      test_adopt_open_txns;
    Alcotest.test_case "adopt: striped<->coarse equivalence" `Quick
      test_adopt_striped_coarse;
  ]

