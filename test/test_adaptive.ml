(* Tests of the adaptive detector selection (the paper's §5 future-work
   system). *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
open Commlat_apps

let check_bool = Alcotest.(check bool)

(* Candidates for the set microbenchmark on a contended input. *)
let set_candidate scheme n classes : Set_micro.op Adaptive.candidate =
  ignore n;
  {
    Adaptive.name = Set_micro.scheme_name scheme;
    prepare =
      (fun () ->
        let set = Iset.create () in
        let det = Set_micro.detector_of set scheme in
        (det, Set_micro.operator set det, Set_micro.ops ~classes n));
  }

(* a deterministic discrimination test: one candidate's detector burns
   artificial time per invocation, the other is free — adaptive must pick
   the free one and run the workload to completion *)
let slow_detector () =
  {
    Detector.name = "slow";
    on_invoke =
      (fun inv exec ->
        (* busy-work: the candidate is functionally fine, just expensive *)
        let acc = ref 0 in
        for i = 0 to 20_000 do
          acc := !acc + i
        done;
        ignore !acc;
        let r = exec () in
        inv.Invocation.ret <- r;
        r);
    on_commit = ignore;
    on_abort = ignore;
    reset = ignore;
    snapshot = Detector.no_snapshot;
    guards = [];
  }

let test_picks_the_cheap_candidate () =
  let mk name slow : int Adaptive.candidate =
    {
      Adaptive.name;
      prepare =
        (fun () ->
          let acc = Accumulator.create () in
          let det = if slow then slow_detector () else Detector.none in
          let operator (txn : Txn.t) x =
            Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
            []
          in
          (det, operator, List.init 512 Fun.id));
    }
  in
  let decision, stats =
    Adaptive.run ~processors:4 ~sample_size:128 [ mk "slow" true; mk "fast" false ]
  in
  Alcotest.(check string) "winner" "fast" decision.Adaptive.winner.Adaptive.name;
  check_bool "full run completed" true (stats.Executor.committed = 512)

let test_scores_all_candidates () =
  let candidates = List.map (fun s -> set_candidate s 500 0) Set_micro.all_schemes in
  let decision = Adaptive.choose ~processors:4 ~sample_size:100 candidates in
  Alcotest.(check int)
    "one score per candidate"
    (List.length Set_micro.all_schemes)
    (List.length decision.Adaptive.scores);
  List.iter
    (fun (_, s) -> check_bool "finite score" true (Float.is_finite s))
    decision.Adaptive.scores

let test_empty_candidates () =
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Adaptive.choose: no candidates") (fun () ->
      ignore (Adaptive.choose ([] : unit Adaptive.candidate list)))

(* a candidate that runs a trivial workload instantly *)
let trivial name : int Adaptive.candidate =
  {
    Adaptive.name;
    prepare = (fun () -> (Detector.none, (fun _ _ -> []), [ 1; 2; 3 ]));
  }

let test_duplicate_names_rejected () =
  (* regression: scoring went through List.assoc on names, so two
     candidates named the same silently shared the first one's score *)
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Adaptive.choose: duplicate candidate name \"twin\"")
    (fun () ->
      ignore (Adaptive.choose ~sample_size:3 [ trivial "twin"; trivial "twin" ]))

let test_empty_name_rejected () =
  Alcotest.check_raises "empty name"
    (Invalid_argument "Adaptive.choose: empty candidate name") (fun () ->
      ignore (Adaptive.choose ~sample_size:3 [ trivial "" ]))

let test_scores_are_per_candidate () =
  (* the slow candidate must carry the worse score even though scoring no
     longer looks anything up by name *)
  let mk name slow : int Adaptive.candidate =
    {
      Adaptive.name;
      prepare =
        (fun () ->
          let det = if slow then slow_detector () else Detector.none in
          let acc = Accumulator.create () in
          let operator (txn : Txn.t) x =
            Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
            []
          in
          (det, operator, List.init 256 Fun.id));
    }
  in
  let d = Adaptive.choose ~sample_size:128 [ mk "slow" true; mk "fast" false ] in
  let score n = List.assoc n d.Adaptive.scores in
  check_bool "slow candidate scored worse" true (score "slow" > score "fast");
  Alcotest.(check string) "winner" "fast" d.Adaptive.winner.Adaptive.name

(* Boruvka: adaptive choice between the general gatekeeper and the STM
   baseline still computes a correct MST. *)
let test_boruvka_adaptive () =
  let mesh = Mesh.generate ~rows:10 ~cols:10 () in
  let result = ref [] in
  let mk name variant : int Adaptive.candidate =
    {
      Adaptive.name;
      prepare =
        (fun () ->
          let t = Boruvka.create ~mesh () in
          let det =
            match variant with
            | `Gk ->
                Protect.protect ~spec:(Union_find.spec ())
                  ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
                  Protect.General_gk
            | `Ml ->
                Protect.protect ~spec:(Union_find.spec ())
                  ~adt:
                    (Protect.adt
                       ~connect_tracer:(Union_find.set_tracer t.Boruvka.uf)
                       ())
                  Protect.Stm
          in
          result := [];
          let operator txn item =
            let out = Boruvka.operator t det txn item in
            result := t.Boruvka.mst;
            out
          in
          ( Boruvka.full_detector t det,
            operator,
            List.init mesh.Mesh.nodes Fun.id ))
    }
  in
  let decision, stats =
    Adaptive.run ~processors:4 ~sample_size:32 [ mk "uf-gk" `Gk; mk "uf-ml" `Ml ]
  in
  ignore stats;
  ignore decision;
  Alcotest.(check int)
    "mst weight"
    (Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges)
    (Boruvka.mst_weight !result)

let suite =
  [
    Alcotest.test_case "picks the cheap candidate" `Quick
      test_picks_the_cheap_candidate;
    Alcotest.test_case "scores all candidates" `Quick test_scores_all_candidates;
    Alcotest.test_case "rejects empty candidate list" `Quick test_empty_candidates;
    Alcotest.test_case "rejects duplicate candidate names" `Quick
      test_duplicate_names_rejected;
    Alcotest.test_case "rejects empty candidate name" `Quick test_empty_name_rejected;
    Alcotest.test_case "scores stay with their candidate" `Quick
      test_scores_are_per_candidate;
    Alcotest.test_case "boruvka adaptive run is correct" `Quick
      test_boruvka_adaptive;
  ]
