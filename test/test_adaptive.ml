(* Tests of the adaptive detector selection (the paper's §5 future-work
   system). *)

open Commlat_core
open Commlat_adts
open Commlat_runtime
open Commlat_apps

let check_bool = Alcotest.(check bool)
let offline ?(processors = 4) sample_size =
  Adaptive.Offline_sample { processors; sample_size }

(* Candidates for the set microbenchmark on a contended input. *)
let set_candidate scheme n classes : Set_micro.op Adaptive.candidate =
  ignore n;
  {
    Adaptive.name = Set_micro.scheme_name scheme;
    prepare =
      (fun () ->
        let set = Iset.create () in
        let det = Set_micro.detector_of set scheme in
        (det, Set_micro.operator set det, Set_micro.ops ~classes n));
  }

(* a deterministic discrimination test: one candidate's detector burns
   artificial time per invocation, the other is free — adaptive must pick
   the free one and run the workload to completion *)
let slow_detector () =
  {
    Detector.name = "slow";
    on_invoke =
      (fun inv exec ->
        (* busy-work: the candidate is functionally fine, just expensive *)
        let acc = ref 0 in
        for i = 0 to 20_000 do
          acc := !acc + i
        done;
        ignore !acc;
        let r = exec () in
        inv.Invocation.ret <- r;
        r);
    on_commit = ignore;
    on_abort = ignore;
    reset = ignore;
    snapshot = Detector.no_snapshot;
    guards = [];
  }

let test_picks_the_cheap_candidate () =
  let mk name slow : int Adaptive.candidate =
    {
      Adaptive.name;
      prepare =
        (fun () ->
          let acc = Accumulator.create () in
          let det = if slow then slow_detector () else Detector.none in
          let operator (txn : Txn.t) x =
            Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
            []
          in
          (det, operator, List.init 512 Fun.id));
    }
  in
  let decision, stats =
    Adaptive.run ~policy:(offline 128) [ mk "slow" true; mk "fast" false ]
  in
  Alcotest.(check string) "winner" "fast" decision.Adaptive.winner.Adaptive.name;
  check_bool "offline decisions carry no transitions" true
    (decision.Adaptive.transitions = []);
  check_bool "full run completed" true (stats.Executor.committed = 512)

let test_scores_all_candidates () =
  let candidates = List.map (fun s -> set_candidate s 500 0) Set_micro.all_schemes in
  let decision = Adaptive.choose ~policy:(offline 100) candidates in
  Alcotest.(check int)
    "one score per candidate"
    (List.length Set_micro.all_schemes)
    (List.length decision.Adaptive.scores);
  List.iter
    (fun (_, s) -> check_bool "finite score" true (Float.is_finite s))
    decision.Adaptive.scores

let test_empty_candidates () =
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Adaptive.choose: no candidates") (fun () ->
      ignore (Adaptive.choose ([] : unit Adaptive.candidate list)))

(* a candidate that runs a trivial workload instantly *)
let trivial name : int Adaptive.candidate =
  {
    Adaptive.name;
    prepare = (fun () -> (Detector.none, (fun _ _ -> []), [ 1; 2; 3 ]));
  }

let test_duplicate_names_rejected () =
  (* regression: scoring went through List.assoc on names, so two
     candidates named the same silently shared the first one's score *)
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Adaptive.choose: duplicate candidate name \"twin\"")
    (fun () ->
      ignore
        (Adaptive.choose ~policy:(offline 3) [ trivial "twin"; trivial "twin" ]))

let test_empty_name_rejected () =
  Alcotest.check_raises "empty name"
    (Invalid_argument "Adaptive.choose: empty candidate name") (fun () ->
      ignore (Adaptive.choose ~policy:(offline 3) [ trivial "" ]))

let test_scores_are_per_candidate () =
  (* the slow candidate must carry the worse score even though scoring no
     longer looks anything up by name *)
  let mk name slow : int Adaptive.candidate =
    {
      Adaptive.name;
      prepare =
        (fun () ->
          let det = if slow then slow_detector () else Detector.none in
          let acc = Accumulator.create () in
          let operator (txn : Txn.t) x =
            Accumulator.invoke_increment det acc ~txn:(Txn.id txn) x;
            []
          in
          (det, operator, List.init 256 Fun.id));
    }
  in
  let d = Adaptive.choose ~policy:(offline 128) [ mk "slow" true; mk "fast" false ] in
  let score n = List.assoc n d.Adaptive.scores in
  check_bool "slow candidate scored worse" true (score "slow" > score "fast");
  Alcotest.(check string) "winner" "fast" d.Adaptive.winner.Adaptive.name

(* Boruvka: adaptive choice between the general gatekeeper and the STM
   baseline still computes a correct MST. *)
let test_boruvka_adaptive () =
  let mesh = Mesh.generate ~rows:10 ~cols:10 () in
  let result = ref [] in
  let mk name variant : int Adaptive.candidate =
    {
      Adaptive.name;
      prepare =
        (fun () ->
          let t = Boruvka.create ~mesh () in
          let det =
            match variant with
            | `Gk ->
                Protect.protect ~spec:(Union_find.spec ())
                  ~adt:(Protect.adt ~hooks:(Union_find.hooks t.Boruvka.uf) ())
                  Protect.General_gk
            | `Ml ->
                Protect.protect ~spec:(Union_find.spec ())
                  ~adt:
                    (Protect.adt
                       ~connect_tracer:(Union_find.set_tracer t.Boruvka.uf)
                       ())
                  Protect.Stm
          in
          result := [];
          let operator txn item =
            let out = Boruvka.operator t det txn item in
            result := t.Boruvka.mst;
            out
          in
          ( Boruvka.full_detector t det,
            operator,
            List.init mesh.Mesh.nodes Fun.id ))
    }
  in
  let decision, stats =
    Adaptive.run ~policy:(offline 32) [ mk "uf-gk" `Gk; mk "uf-ml" `Ml ]
  in
  ignore stats;
  ignore decision;
  Alcotest.(check int)
    "mst weight"
    (Reference.mst_weight ~n:mesh.Mesh.nodes mesh.Mesh.edges)
    (Boruvka.mst_weight !result)

(* ---------------------------------------------------------------- *)
(* The online hysteresis controller, on synthetic signal streams      *)
(* ---------------------------------------------------------------- *)

let policy = Adaptive.Online { strengthen_above = 2.0; weaken_above = 0.1; cooldown = 2 }

let window ?(inv = 1000) ?(conflicts = 0) ?(checks = 0) () =
  {
    Adaptive.no_signals with
    Adaptive.s_invocations = inv;
    s_conflicts = conflicts;
    s_checks = checks;
  }

let test_controller_strengthens_on_check_cost () =
  let c = Adaptive.controller ~policy [ "precise"; "simple"; "part" ] in
  Alcotest.(check string) "starts precise" "precise" (Adaptive.current_level c);
  (* conflict-free but check-heavy: 5 checks per invocation *)
  let v = Adaptive.observe c (window ~checks:5000 ()) in
  check_bool "strengthens" true (v = Adaptive.Strengthen);
  Alcotest.(check string) "moved to simple" "simple" (Adaptive.current_level c);
  (* cooldown: the next check-heavy window must hold *)
  let v = Adaptive.observe c (window ~checks:5000 ()) in
  check_bool "cooldown holds" true (v = Adaptive.Hold);
  (* cooldown expired: climbs to the coarsest level and stays there *)
  let v = Adaptive.observe c (window ~checks:5000 ()) in
  check_bool "second strengthen" true (v = Adaptive.Strengthen);
  Alcotest.(check string) "at part" "part" (Adaptive.current_level c);
  for _ = 1 to 5 do
    let v = Adaptive.observe c (window ~checks:5000 ()) in
    check_bool "no level above part" true (v = Adaptive.Hold)
  done

let test_controller_weakens_on_aborts () =
  let c = Adaptive.controller ~policy [ "precise"; "simple" ] in
  ignore (Adaptive.observe c (window ~checks:5000 ()));
  Alcotest.(check string) "strengthened" "simple" (Adaptive.current_level c);
  (* abort ratio 0.3 > 0.1: weaken immediately, cooldown notwithstanding *)
  let v = Adaptive.observe c (window ~conflicts:300 ~checks:100 ()) in
  check_bool "weakens" true (v = Adaptive.Weaken);
  Alcotest.(check string) "back to precise" "precise" (Adaptive.current_level c);
  let ts = Adaptive.transitions c in
  Alcotest.(check int) "two transitions" 2 (List.length ts);
  check_bool "first is strengthen" true
    ((List.hd ts).Adaptive.t_verdict = Adaptive.Strengthen);
  check_bool "second is weaken" true
    ((List.nth ts 1).Adaptive.t_verdict = Adaptive.Weaken)

let test_controller_hysteresis_no_thrash () =
  (* a steady phase where the strong level aborts and the weak level is
     check-heavy: after one weaken, the controller must NOT strengthen
     back while the workload still looks hot (the burned level) *)
  let c = Adaptive.controller ~policy [ "precise"; "simple" ] in
  ignore (Adaptive.observe c (window ~checks:5000 ()));
  ignore (Adaptive.observe c (window ~conflicts:300 ()));
  Alcotest.(check string) "weakened" "precise" (Adaptive.current_level c);
  (* check-heavy windows with a trickle of conflicts: simple stays burned *)
  for _ = 1 to 10 do
    let v = Adaptive.observe c (window ~conflicts:1 ~checks:5000 ()) in
    check_bool "holds at precise" true (v = Adaptive.Hold)
  done;
  Alcotest.(check int) "exactly two transitions" 2
    (List.length (Adaptive.transitions c));
  (* calm windows clear the burn; a later check-heavy phase may strengthen *)
  for _ = 1 to 3 do
    ignore (Adaptive.observe c (window ~checks:100 ()))
  done;
  let v = Adaptive.observe c (window ~checks:5000 ()) in
  check_bool "re-strengthens after calm" true (v = Adaptive.Strengthen)

let test_controller_idle_holds () =
  let c = Adaptive.controller ~policy [ "precise"; "simple" ] in
  for _ = 1 to 5 do
    let v = Adaptive.observe c (window ~inv:0 ()) in
    check_bool "idle window holds" true (v = Adaptive.Hold)
  done;
  Alcotest.(check int) "no transitions" 0 (List.length (Adaptive.transitions c))

let test_controller_rejects_bad_args () =
  Alcotest.check_raises "offline policy rejected"
    (Invalid_argument "Adaptive.controller: needs an Online policy") (fun () ->
      ignore (Adaptive.controller ~policy:(offline 8) [ "a"; "b" ]));
  Alcotest.check_raises "single level rejected"
    (Invalid_argument "Adaptive.controller: needs at least two levels")
    (fun () -> ignore (Adaptive.controller [ "only" ]));
  Alcotest.check_raises "online choose rejected"
    (Invalid_argument
       "Adaptive.choose: Online policy has no sampling phase (drive a \
        controller with observe instead)") (fun () ->
      ignore
        (Adaptive.choose ~policy:Adaptive.default_online
           ([] : unit Adaptive.candidate list)))

let suite =
  [
    Alcotest.test_case "picks the cheap candidate" `Quick
      test_picks_the_cheap_candidate;
    Alcotest.test_case "scores all candidates" `Quick test_scores_all_candidates;
    Alcotest.test_case "rejects empty candidate list" `Quick test_empty_candidates;
    Alcotest.test_case "rejects duplicate candidate names" `Quick
      test_duplicate_names_rejected;
    Alcotest.test_case "rejects empty candidate name" `Quick test_empty_name_rejected;
    Alcotest.test_case "scores stay with their candidate" `Quick
      test_scores_are_per_candidate;
    Alcotest.test_case "boruvka adaptive run is correct" `Quick
      test_boruvka_adaptive;
    Alcotest.test_case "controller strengthens on check cost" `Quick
      test_controller_strengthens_on_check_cost;
    Alcotest.test_case "controller weakens on aborts" `Quick
      test_controller_weakens_on_aborts;
    Alcotest.test_case "controller hysteresis does not thrash" `Quick
      test_controller_hysteresis_no_thrash;
    Alcotest.test_case "controller holds when idle" `Quick
      test_controller_idle_holds;
    Alcotest.test_case "controller rejects bad arguments" `Quick
      test_controller_rejects_bad_args;
  ]
