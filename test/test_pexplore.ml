(* Parallel DPOR explorer (lib/sched/pexplore): sequential equivalence at
   domains=1, domain-count invariance of explored states and violations,
   canonical-trace dedup keys, and the seeded ABBA bug under parallel
   search. *)

open Commlat_runtime
open Commlat_sched

let mk_set ?(txns = 3) ?(keys = 3) ?(seed = 7) scheme =
  match Workload.set ~txns ~ops_per_txn:2 ~keys ~seed scheme with
  | Ok w -> w
  | Error e -> Alcotest.fail e

(* union-find under the general gatekeeper branches without abort/retry
   tails, so these seeds exhaust their (nontrivial) schedule trees *)
let mk_uf seed =
  match Workload.union_find ~txns:2 ~seed Protect.General_gk with
  | Ok w -> w
  | Error e -> Alcotest.fail e

let pconfig ?(por = true) ?(max_schedules = 2000) ?(dedup = true) domains =
  {
    Pexplore.base = { Explore.default_config with por; max_schedules };
    domains;
    dedup;
  }

(* ---- domains=1 (dedup off) is the sequential explorer, counter for
   counter and verdict for verdict ---- *)

let test_seq_equiv_clean () =
  List.iter
    (fun scheme ->
      let w = mk_set scheme in
      let name = Protect.scheme_name scheme in
      let cfg = { Explore.default_config with max_schedules = 400 } in
      let rs = Explore.explore ~config:cfg w.Workload.make in
      let rp =
        Pexplore.explore
          ~config:{ Pexplore.base = cfg; domains = 1; dedup = false }
          w.Workload.make
      in
      Alcotest.(check bool)
        (name ^ ": verdict matches sequential")
        true
        (rs.Explore.verdict = rp.Pexplore.verdict);
      Alcotest.(check int)
        (name ^ ": runs match sequential")
        rs.Explore.c.Explore.runs rp.Pexplore.c.Explore.runs;
      Alcotest.(check int)
        (name ^ ": pruned match sequential")
        rs.Explore.c.Explore.pruned rp.Pexplore.c.Explore.pruned;
      Alcotest.(check int)
        (name ^ ": sleep hits match sequential")
        rs.Explore.c.Explore.sleep_hits rp.Pexplore.c.Explore.sleep_hits;
      Alcotest.(check int)
        (name ^ ": steps match sequential")
        rs.Explore.c.Explore.steps rp.Pexplore.c.Explore.steps;
      Alcotest.(check bool)
        (name ^ ": exhausted matches sequential")
        rs.Explore.exhausted rp.Pexplore.exhausted)
    [ Protect.Forward_gk; Protect.Abstract_lock ]

let test_seq_equiv_abba () =
  let buggy () = Seeded.workload ~buggy:true () in
  let rs = Explore.explore buggy in
  let rp =
    Pexplore.explore
      ~config:
        { Pexplore.base = Explore.default_config; domains = 1; dedup = false }
      buggy
  in
  match (rs.Explore.verdict, rp.Pexplore.verdict) with
  | Some fs, Some fp ->
      Alcotest.(check string) "same kind" fs.Explore.f_kind fp.Explore.f_kind;
      Alcotest.(check (list int))
        "same shrunk schedule" fs.Explore.f_schedule fp.Explore.f_schedule;
      Alcotest.(check string) "same trace" fs.Explore.f_trace fp.Explore.f_trace;
      Alcotest.(check int)
        "same runs before the failure" rs.Explore.c.Explore.runs
        rp.Pexplore.c.Explore.runs
  | _ -> Alcotest.fail "both explorers must find the seeded ABBA deadlock"

(* ---- the search tree is fixed, so states and violations cannot depend
   on the domain count (the BENCH gate, in-process) ---- *)

let test_domain_count_invariance () =
  let workloads =
    [
      ("uf/s1", fun () -> mk_uf 1);
      ("uf/s10", fun () -> mk_uf 10);
      ( "set/fwd-gk",
        fun () -> mk_set ~txns:2 ~keys:4 ~seed:1 Protect.Forward_gk );
      ( "delaunay/s17",
        fun () ->
          match
            Workload.delaunay ~txns:2 ~points:6 ~seed:17 ~max_pts:24
              Protect.Forward_gk
          with
          | Ok w -> w
          | Error e -> Alcotest.fail e );
      ( "mixed/s42",
        fun () ->
          match
            Workload.mixed ~txns:3 ~ops_per_txn:2 ~keys:3 ~seed:42
              Protect.Forward_gk
          with
          | Ok w -> w
          | Error e -> Alcotest.fail e );
    ]
  in
  List.iter
    (fun (name, w) ->
      let base =
        Pexplore.explore
          ~config:(pconfig ~max_schedules:25000 1)
          (w ()).Workload.make
      in
      Alcotest.(check bool) (name ^ ": baseline exhausts") true
        base.Pexplore.exhausted;
      List.iter
        (fun domains ->
          let r =
            Pexplore.explore
              ~config:(pconfig ~max_schedules:25000 domains)
              (w ()).Workload.make
          in
          Alcotest.(check bool)
            (Fmt.str "%s: exhausted at %d domains" name domains)
            true r.Pexplore.exhausted;
          Alcotest.(check int)
            (Fmt.str "%s: states at %d domains match sequential" name domains)
            base.Pexplore.states r.Pexplore.states;
          Alcotest.(check bool)
            (Fmt.str "%s: no violation at %d domains" name domains)
            true
            (r.Pexplore.verdict = None && base.Pexplore.verdict = None))
        [ 2; 4 ])
    workloads

(* ---- canonical keys quotient by Mazurkiewicz equivalence: turning POR
   off explores more interleavings but the same set of traces ---- *)

let test_states_por_invariant () =
  let w () = mk_uf 1 in
  let rp =
    Pexplore.explore
      ~config:(pconfig ~por:true ~max_schedules:25000 1)
      (w ()).Workload.make
  in
  let rn =
    Pexplore.explore
      ~config:(pconfig ~por:false ~dedup:false ~max_schedules:25000 1)
      (w ()).Workload.make
  in
  Alcotest.(check bool) "por run exhausts" true rp.Pexplore.exhausted;
  Alcotest.(check bool) "no-por run exhausts" true rn.Pexplore.exhausted;
  Alcotest.(check int)
    (Fmt.str "same canonical states with and without POR (%d runs vs %d)"
       rp.Pexplore.c.Explore.runs rn.Pexplore.c.Explore.runs)
    rp.Pexplore.states rn.Pexplore.states;
  (* without pruning, equivalent interleavings are re-executed — the
     canonical key must recognize them *)
  Alcotest.(check bool)
    (Fmt.str "no-por run dedups equivalent traces (%d hits)"
       rn.Pexplore.dedup_hits)
    true
    (rn.Pexplore.dedup_hits > 0)

(* ---- the seeded ABBA bug under parallel search ---- *)

let test_abba_parallel () =
  let buggy () = Seeded.workload ~buggy:true () in
  let r = Pexplore.explore ~config:(pconfig 4) buggy in
  match r.Pexplore.verdict with
  | None -> Alcotest.fail "seeded ABBA deadlock not found at 4 domains"
  | Some f ->
      Alcotest.(check string) "kind is deadlock" "deadlock" f.Explore.f_kind;
      Alcotest.(check bool)
        "shrunk <= original" true
        (List.length f.Explore.f_schedule <= f.Explore.f_shrunk_from);
      let rr = Explore.replay ~schedule:f.Explore.f_schedule buggy in
      (match rr.Scheduler.status with
      | Scheduler.Deadlock _ -> ()
      | st ->
          Alcotest.fail
            (Fmt.str "shrunk schedule replayed to %a, not deadlock"
               Scheduler.pp_status st))

(* ---- budget honesty across domains: the ticket counter caps runs
   exactly and reports the cut ---- *)

let test_budget_exact () =
  List.iter
    (fun domains ->
      let w = mk_set ~keys:2 ~seed:3 Protect.Forward_gk in
      let r =
        Pexplore.explore
          ~config:(pconfig ~max_schedules:5 domains)
          w.Workload.make
      in
      Alcotest.(check int)
        (Fmt.str "exactly 5 runs at %d domains" domains)
        5 r.Pexplore.c.Explore.runs;
      Alcotest.(check bool)
        (Fmt.str "budget cut reported at %d domains" domains)
        false r.Pexplore.exhausted)
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "pexplore-seq-equiv-clean" `Quick test_seq_equiv_clean;
    Alcotest.test_case "pexplore-seq-equiv-abba" `Quick test_seq_equiv_abba;
    Alcotest.test_case "pexplore-domain-invariance" `Quick
      test_domain_count_invariance;
    Alcotest.test_case "pexplore-states-por-invariant" `Quick
      test_states_por_invariant;
    Alcotest.test_case "pexplore-abba-parallel" `Quick test_abba_parallel;
    Alcotest.test_case "pexplore-budget-exact" `Quick test_budget_exact;
  ]
