(* Tests of the synthesis-and-verification pipeline behind `commlat
   synth`: the predicate grammar's canonical enumerator, the CEGIS loop,
   the lattice diff against hand-written specs, the unbounded
   product-program verifier, spec_lang round-trips over every shipped
   spec, and the mirror symmetry of Spec.commutes. *)

open Commlat_core
open Commlat_adts
open Commlat_analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let specs_dir =
  let rec find dir n =
    if n = 0 then None
    else if Sys.file_exists (Filename.concat dir "examples/specs/set.spec") then
      Some dir
    else find (Filename.concat dir "..") (n - 1)
  in
  find "." 6

let domain_of spec =
  match Domain.find (Spec.adt spec) with
  | Some d -> d
  | None -> Alcotest.failf "no domain for %s" (Spec.adt spec)

(* ---- grammar ---- *)

let test_grammar_canonical () =
  let m_add = Invocation.meth "add" 1 in
  let atoms = Grammar.atoms m_add m_add in
  (* deterministic: two enumerations agree *)
  check_bool "stable" true (atoms = Grammar.atoms m_add m_add);
  (* deduplicated by printed form *)
  let printed = List.map Formula.to_string atoms in
  check_int "no duplicates" (List.length printed)
    (List.length (List.sort_uniq compare printed));
  (* sorted by the canonical cost order: argument-only atoms first *)
  let ranks = List.map Grammar.atom_rank atoms in
  check_bool "rank-sorted" true (List.sort compare ranks = ranks);
  check_int "cheapest rank is argument-only" 1 (List.hd ranks)

let test_grammar_dnf_subsumption () =
  let open Formula in
  let a = ne (arg1 0) (arg2 0) and b = eq ret1 ret2 in
  (* [a] subsumes [a /\ b]: the longer disjunct admits strictly less *)
  let f = Grammar.dnf_of [ [ a ]; [ a; b ] ] in
  check_bool "subsumed disjunct dropped" true
    (Formula.to_string f = Formula.to_string (Grammar.dnf_of [ [ a ] ]))

(* ---- synthesis ---- *)

let synth_report spec =
  let dom = domain_of spec in
  (dom, Synth.synthesize dom spec)

let assert_converged name (r : Synth.report) =
  List.iter
    (fun (p : Synth.pair_result) ->
      check_bool
        (Fmt.str "%s %s;%s converged" name (fst p.Synth.sy_pair)
           (snd p.Synth.sy_pair))
        true p.Synth.sy_converged;
      check_int
        (Fmt.str "%s %s;%s residual" name (fst p.Synth.sy_pair)
           (snd p.Synth.sy_pair))
        0 p.Synth.sy_residual_incomplete)
    r.Synth.sy_results

let assert_acceptable name dom ~hand (r : Synth.report) =
  List.iter
    (fun (e : Equiv.pair_relation) ->
      check_bool
        (Fmt.str "%s %s;%s relation %s acceptable" name (fst e.Equiv.eq_pair)
           (snd e.Equiv.eq_pair)
           (Equiv.relation_name e.Equiv.eq_relation))
        true
        (Equiv.acceptable e.Equiv.eq_relation))
    (Equiv.compare_specs dom ~hand ~synth:r.Synth.sy_spec)

let test_synthesize_set () =
  let dom, r = synth_report (Iset.precise_spec ()) in
  assert_converged "set" r;
  assert_acceptable "set" dom ~hand:(Iset.precise_spec ()) r

let test_synthesize_accumulator () =
  let dom, r = synth_report (Accumulator.spec ()) in
  assert_converged "accumulator" r;
  assert_acceptable "accumulator" dom ~hand:(Accumulator.spec ()) r;
  (* the synthesized increment;read condition is *weaker* than Fig. 7's
     "never": it finds the no-op increment frontier v1[0] = 0 *)
  check_bool "increment;read more precise than Fig. 7" true
    (Formula.to_string
       (Spec.cond r.Synth.sy_spec ~first:"increment" ~second:"read")
    = "v1[0] = 0")

let test_synthesize_kvmap () =
  let dom, r = synth_report (Kvmap.precise_spec ()) in
  assert_converged "kvmap" r;
  assert_acceptable "kvmap" dom ~hand:(Kvmap.precise_spec ()) r

let test_synthesize_orset () =
  let dom, r = synth_report (Orset.spec ()) in
  assert_converged "orset" r;
  assert_acceptable "orset" dom ~hand:(Orset.spec ()) r;
  (* re-derives the Boogie freshness side condition exactly *)
  check_bool "add;remove is the tagged-pair disequality" true
    (Formula.to_string (Spec.cond r.Synth.sy_spec ~first:"add" ~second:"remove")
    = Formula.to_string (Spec.cond (Orset.spec ()) ~first:"add" ~second:"remove"))

let test_synthesize_no_evidence () =
  (* a method the domain generates no scenarios for must synthesize the
     sound "never commutes", not an optimistic "always" *)
  let meths = [ Invocation.meth "add" 1; Invocation.meth "frobnicate" 1 ] in
  let reference = Spec.create ~adt:"set" meths in
  Spec.add_sym reference "add" "add" Formula.True;
  Spec.add_sym reference "add" "frobnicate" Formula.True;
  Spec.add_sym reference "frobnicate" "frobnicate" Formula.True;
  let dom = domain_of reference in
  let r = Synth.synthesize dom reference in
  let p =
    List.find
      (fun (p : Synth.pair_result) -> fst p.Synth.sy_pair = "frobnicate")
      r.Synth.sy_results
  in
  check_bool "no-evidence pair not converged" false p.Synth.sy_converged;
  check_bool "no-evidence pair condition is False" true
    (Spec.cond r.Synth.sy_spec ~first:"frobnicate" ~second:"frobnicate"
    = Formula.False)

(* ---- unbounded verification ---- *)

let assert_all_proved name spec =
  let v = Verify.verify_spec spec in
  List.iter
    (fun (p : Verify.pair_verdict) ->
      check_bool
        (Fmt.str "%s %s;%s %s" name (fst p.Verify.vf_pair)
           (snd p.Verify.vf_pair)
           (Verify.verdict_name p.Verify.vf_verdict))
        true
        (Verify.is_proved p.Verify.vf_verdict))
    v.Verify.vf_pairs;
  check_bool (name ^ " all_proved") true (Verify.all_proved v)

let test_verify_proves_hand_specs () =
  assert_all_proved "set" (Iset.precise_spec ());
  assert_all_proved "accumulator" (Accumulator.spec ());
  assert_all_proved "kvmap" (Kvmap.precise_spec ());
  assert_all_proved "orset" (Orset.spec ())

let test_verify_proves_synthesized_specs () =
  List.iter
    (fun spec ->
      let _, r = synth_report spec in
      assert_all_proved ("synth-" ^ Spec.adt spec) r.Synth.sy_spec)
    [ Iset.precise_spec (); Accumulator.spec (); Kvmap.precise_spec (); Orset.spec () ]

let test_verify_refutes_unsound_spec () =
  (* claiming add;remove always commute on the set is wrong, and the
     refutation must come with a concretely confirmed trace *)
  let s = Spec.create ~adt:"set" Iset.methods in
  List.iter
    (fun (m1, m2) -> Spec.add_sym s m1 m2 Formula.True)
    [ ("add", "add"); ("add", "remove"); ("add", "contains");
      ("contains", "contains"); ("contains", "remove"); ("remove", "remove") ];
  let v = Verify.verify_spec s in
  check_bool "unsound spec refuted" true (Verify.any_refuted v);
  let p =
    List.find
      (fun (p : Verify.pair_verdict) -> p.Verify.vf_pair = ("add", "remove"))
      v.Verify.vf_pairs
  in
  (match p.Verify.vf_verdict with
  | Verify.Refuted r ->
      (* the trace is a real execution: forward and reversed observations
         genuinely differ *)
      check_bool "trace diverges" false
        (Soundness.equivalent r.Verify.rf_fwd r.Verify.rf_rev)
  | v -> Alcotest.failf "add;remove: expected refuted, got %s" (Verify.verdict_name v));
  (* contains;contains genuinely always commutes: proved even here *)
  let p =
    List.find
      (fun (p : Verify.pair_verdict) ->
        p.Verify.vf_pair = ("contains", "contains"))
      v.Verify.vf_pairs
  in
  check_bool "contains;contains still proved" true
    (Verify.is_proved p.Verify.vf_verdict)

let test_verify_unknown_outside_fragment () =
  (* union-find conditions need state functions: no symbolic model, and
     the verifier must say so instead of guessing *)
  let v = Verify.verify_spec (Union_find.spec ()) in
  check_bool "union_find has no family" true (v.Verify.vf_family = None);
  List.iter
    (fun (p : Verify.pair_verdict) ->
      check_bool
        (Fmt.str "union_find %s;%s unknown" (fst p.Verify.vf_pair)
           (snd p.Verify.vf_pair))
        true
        (match p.Verify.vf_verdict with Verify.Unknown _ -> true | _ -> false))
    v.Verify.vf_pairs

(* ---- spec_lang round-trip over every shipped spec ---- *)

let shipped_specs dir =
  let ls sub =
    let d = Filename.concat dir sub in
    if Sys.file_exists d && Sys.is_directory d then
      Sys.readdir d |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".spec")
      |> List.map (Filename.concat d)
    else []
  in
  List.sort compare (ls "examples/specs" @ ls "examples/specs/synth")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_roundtrip_shipped_specs () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
      let files = shipped_specs dir in
      check_bool "found shipped specs" true (List.length files >= 10);
      List.iter
        (fun path ->
          let spec = Spec_lang.parse (read_file path) in
          let printed = Fmt.str "%a" Spec_lang.print_spec spec in
          let spec' = Spec_lang.parse printed in
          check_bool (path ^ ": adt survives") true (Spec.adt spec = Spec.adt spec');
          let conds s =
            List.sort compare
              (List.map
                 (fun ((m1, m2), f) -> (m1, m2, Formula.to_string f))
                 (Spec.pairs s))
          in
          check_bool (path ^ ": conditions survive") true (conds spec = conds spec'))
        files

(* ---- Spec.commutes mirror symmetry ---- *)

let test_commutes_symmetry () =
  (* for add_sym-registered specs the condition for (m2, m1) is the mirror
     of the condition for (m1, m2), so deciding commutativity of two
     observed invocations must not depend on which one is passed first *)
  let vals = [ Value.Int 0; Value.Int 1; Value.Bool true; Value.Bool false ] in
  let rets =
    vals @ [ Value.Unit; Value.Opt None; Value.Opt (Some (Value.Int 0)) ]
  in
  let invocations spec =
    List.concat_map
      (fun (m : Invocation.meth) ->
        let rec tuples n =
          if n = 0 then [ [] ]
          else
            List.concat_map (fun t -> List.map (fun v -> v :: t) vals) (tuples (n - 1))
        in
        List.concat_map
          (fun args ->
            List.map
              (fun r ->
                let i = Invocation.make ~txn:0 m (Array.of_list args) in
                i.Invocation.ret <- r;
                i)
              rets)
          (tuples m.Invocation.arity))
      (Spec.methods spec)
  in
  List.iter
    (fun spec ->
      let invs = invocations spec in
      List.iter
        (fun i1 ->
          List.iter
            (fun i2 ->
              check_bool
                (Fmt.str "%s: commutes %s/%s symmetric" (Spec.adt spec)
                   i1.Invocation.meth.Invocation.name
                   i2.Invocation.meth.Invocation.name)
                true
                (Spec.commutes spec i1 i2 = Spec.commutes spec i2 i1))
            invs)
        invs)
    [ Iset.precise_spec (); Accumulator.spec (); Orset.spec () ]

(* ---- lint --max-counterexamples determinism (satellite) ---- *)

let test_lint_max_counterexamples () =
  match specs_dir with
  | None -> Alcotest.skip ()
  | Some dir -> (
      let path = Filename.concat dir "examples/specs/bad/set_unsound.spec" in
      if not (Sys.file_exists path) then Alcotest.skip ()
      else
        match Lint.load_file path with
        | Error d -> Alcotest.failf "cannot load bad spec: %a" Diagnostic.pp d
        | Ok src ->
            let run n = Diagnostic.sort (Lint.analyze ~max_counterexamples:n src) in
            (* deterministic: same input, same diagnostics, same order *)
            check_bool "deterministic" true (run 3 = run 3);
            (* the cap trims traces, never the error verdict *)
            check_bool "errors survive cap 0" true (Lint.has_errors (run 0));
            check_bool "cap 0 is no larger than cap 3" true
              (List.length (run 0) <= List.length (run 3)))

let suite =
  [
    Alcotest.test_case "grammar: canonical atom enumeration" `Quick
      test_grammar_canonical;
    Alcotest.test_case "grammar: dnf subsumption" `Quick
      test_grammar_dnf_subsumption;
    Alcotest.test_case "synthesize: set" `Quick test_synthesize_set;
    Alcotest.test_case "synthesize: accumulator" `Quick
      test_synthesize_accumulator;
    Alcotest.test_case "synthesize: kvmap" `Slow test_synthesize_kvmap;
    Alcotest.test_case "synthesize: orset" `Quick test_synthesize_orset;
    Alcotest.test_case "synthesize: no evidence means False" `Quick
      test_synthesize_no_evidence;
    Alcotest.test_case "verify: proves the hand-written specs" `Quick
      test_verify_proves_hand_specs;
    Alcotest.test_case "verify: proves the synthesized specs" `Slow
      test_verify_proves_synthesized_specs;
    Alcotest.test_case "verify: refutes an unsound spec with a trace" `Quick
      test_verify_refutes_unsound_spec;
    Alcotest.test_case "verify: unknown outside the fragment" `Quick
      test_verify_unknown_outside_fragment;
    Alcotest.test_case "spec_lang: every shipped spec round-trips" `Quick
      test_roundtrip_shipped_specs;
    Alcotest.test_case "Spec.commutes is mirror-symmetric" `Quick
      test_commutes_symmetry;
    Alcotest.test_case "lint: --max-counterexamples is deterministic" `Quick
      test_lint_max_counterexamples;
  ]
